package robustperiod

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// Property: detected periods always lie in [2, n/2] and come back
// sorted ascending without duplicates, for any input.
func TestPeriodsWellFormedProperty(t *testing.T) {
	f := func(seed int64, kind uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 128 + int(kind%4)*137
		x := make([]float64, n)
		switch kind % 3 {
		case 0: // noise
			for i := range x {
				x[i] = rng.NormFloat64()
			}
		case 1: // periodic + noise
			p := 8 + rng.Intn(n/4)
			for i := range x {
				x[i] = math.Sin(2*math.Pi*float64(i)/float64(p)) + 0.3*rng.NormFloat64()
			}
		default: // trend + spikes
			for i := range x {
				x[i] = 0.1 * float64(i)
				if rng.Float64() < 0.05 {
					x[i] += rng.NormFloat64() * 20
				}
			}
		}
		ps, err := Detect(x, nil)
		if err != nil {
			return false
		}
		for i, p := range ps {
			if p < 2 || p > n/2 {
				return false
			}
			if i > 0 && ps[i] <= ps[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: detection is invariant under affine transforms of the
// data (a·x + b with a > 0): the preprocessing normalizes scale and
// the HP filter is linear.
func TestAffineInvarianceProperty(t *testing.T) {
	base := synth(900, []int{36}, 0.2, 0.02, 61)
	ref, err := Detect(base, nil)
	if err != nil {
		t.Fatal(err)
	}
	f := func(aRaw, bRaw int16) bool {
		a := 0.01 + math.Abs(float64(aRaw))/100
		b := float64(bRaw)
		y := make([]float64, len(base))
		for i, v := range base {
			y[i] = a*v + b
		}
		got, err := Detect(y, nil)
		if err != nil {
			return false
		}
		if len(got) != len(ref) {
			return false
		}
		for i := range got {
			if got[i] != ref[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// Property: negating the series (a < 0) must not change the detected
// periods either — periodicity has no sign.
func TestNegationInvariance(t *testing.T) {
	x := synth(800, []int{25, 100}, 0.2, 0.01, 62)
	ref, err := Detect(x, nil)
	if err != nil {
		t.Fatal(err)
	}
	neg := make([]float64, len(x))
	for i, v := range x {
		neg[i] = -v
	}
	got, err := Detect(neg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(ref) {
		t.Fatalf("negation changed detection: %v vs %v", got, ref)
	}
	for i := range got {
		if got[i] != ref[i] {
			t.Fatalf("negation changed detection: %v vs %v", got, ref)
		}
	}
}

// Property: appending whole extra cycles of a clean periodic signal
// never makes the period disappear.
func TestMoreCyclesNeverHurt(t *testing.T) {
	period := 32
	for _, cycles := range []int{8, 16, 32} {
		n := cycles * period
		x := make([]float64, n)
		rng := rand.New(rand.NewSource(63))
		for i := range x {
			x[i] = math.Sin(2*math.Pi*float64(i)/float64(period)) + 0.2*rng.NormFloat64()
		}
		ps, err := Detect(x, nil)
		if err != nil {
			t.Fatal(err)
		}
		ok := false
		for _, p := range ps {
			if p >= period-1 && p <= period+1 {
				ok = true
			}
		}
		if !ok {
			t.Errorf("%d cycles: period %d not found (%v)", cycles, period, ps)
		}
	}
}
