package robustperiod

import (
	"encoding/binary"
	"math"
	"testing"
)

// bytesToSeries decodes a fuzz payload into a finite float series.
func bytesToSeries(data []byte) []float64 {
	n := len(data) / 8
	if n == 0 {
		return nil
	}
	out := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		v := math.Float64frombits(binary.LittleEndian.Uint64(data[i*8:]))
		if math.IsNaN(v) || math.IsInf(v, 0) {
			v = 0
		}
		// Clamp to a sane dynamic range; the detector's contract is
		// finite input.
		if v > 1e12 {
			v = 1e12
		}
		if v < -1e12 {
			v = -1e12
		}
		out = append(out, v)
	}
	return out
}

// FuzzDetect asserts the whole pipeline never panics and always honors
// its output contract (periods sorted, within [2, n/2]) on arbitrary
// finite input.
func FuzzDetect(f *testing.F) {
	seed := make([]byte, 64*8)
	for i := 0; i < 64; i++ {
		binary.LittleEndian.PutUint64(seed[i*8:], math.Float64bits(math.Sin(float64(i)/3)))
	}
	f.Add(seed)
	f.Add(make([]byte, 16*8)) // zeros
	f.Fuzz(func(t *testing.T, data []byte) {
		x := bytesToSeries(data)
		if len(x) > 4096 {
			x = x[:4096]
		}
		ps, err := Detect(x, nil)
		if err != nil {
			return // short/degenerate inputs may error; they must not panic
		}
		n := len(x)
		for i, p := range ps {
			if p < 2 || p > n/2 {
				t.Fatalf("period %d out of range for n=%d", p, n)
			}
			if i > 0 && ps[i] <= ps[i-1] {
				t.Fatalf("periods not strictly ascending: %v", ps)
			}
		}
	})
}

// bytesToRaggedSeries decodes a fuzz payload keeping NaN (the missing
// marker) but clamping Inf and extreme magnitudes, for the
// missing-data targets below. bytesToSeries zeroes NaN and would hide
// the gap-handling paths entirely.
func bytesToRaggedSeries(data []byte) []float64 {
	n := len(data) / 8
	out := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		v := math.Float64frombits(binary.LittleEndian.Uint64(data[i*8:]))
		switch {
		case math.IsNaN(v):
			// keep: this is the hole the fill path must survive
		case math.IsInf(v, 0) || v > 1e12:
			v = 1e12
		case v < -1e12:
			v = -1e12
		}
		out = append(out, v)
	}
	return out
}

// FuzzInterpolate asserts the public gap-filling helper never panics
// and always returns a fully finite series with a consistent mask, no
// matter how the NaN runs land (edges, everything-NaN, no-NaN).
func FuzzInterpolate(f *testing.F) {
	seed := make([]byte, 32*8)
	for i := 0; i < 32; i++ {
		v := math.Sin(float64(i) / 2)
		if i%5 == 0 {
			v = math.NaN()
		}
		binary.LittleEndian.PutUint64(seed[i*8:], math.Float64bits(v))
	}
	f.Add(seed)
	f.Add([]byte{})
	allNaN := make([]byte, 8*8)
	for i := 0; i < 8; i++ {
		binary.LittleEndian.PutUint64(allNaN[i*8:], math.Float64bits(math.NaN()))
	}
	f.Add(allNaN)
	f.Fuzz(func(t *testing.T, data []byte) {
		x := bytesToRaggedSeries(data)
		if len(x) > 4096 {
			x = x[:4096]
		}
		filled, mask := Interpolate(x)
		if len(filled) != len(x) || len(mask) != len(x) {
			t.Fatalf("length mismatch: in=%d out=%d mask=%d", len(x), len(filled), len(mask))
		}
		for i, v := range filled {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("non-finite output at %d: %v", i, v)
			}
			if mask[i] != math.IsNaN(x[i]) {
				t.Fatalf("mask[%d] = %v but input NaN = %v", i, mask[i], math.IsNaN(x[i]))
			}
			if !mask[i] && v != x[i] {
				t.Fatalf("surviving sample %d rewritten: %v -> %v", i, x[i], v)
			}
		}
	})
}

// FuzzDetectFilled asserts the whole pipeline with FillMissing never
// panics on gap-bearing input: every outcome is either a valid period
// set or a structured sentinel error.
func FuzzDetectFilled(f *testing.F) {
	seed := make([]byte, 96*8)
	for i := 0; i < 96; i++ {
		v := math.Sin(float64(i) / 3)
		if i%11 == 0 {
			v = math.NaN()
		}
		binary.LittleEndian.PutUint64(seed[i*8:], math.Float64bits(v))
	}
	f.Add(seed)
	f.Fuzz(func(t *testing.T, data []byte) {
		x := bytesToRaggedSeries(data)
		if len(x) > 4096 {
			x = x[:4096]
		}
		ps, err := Detect(x, &Options{FillMissing: true})
		if err != nil {
			return // short, too-sparse or Inf-bearing inputs error; they must not panic
		}
		n := len(x)
		for i, p := range ps {
			if p < 2 || p > n/2 {
				t.Fatalf("period %d out of range for n=%d", p, n)
			}
			if i > 0 && ps[i] <= ps[i-1] {
				t.Fatalf("periods not strictly ascending: %v", ps)
			}
		}
	})
}

// FuzzDecompose asserts the decomposition identity holds for any
// finite input and any admissible period.
func FuzzDecompose(f *testing.F) {
	seed := make([]byte, 128*8)
	for i := 0; i < 128; i++ {
		binary.LittleEndian.PutUint64(seed[i*8:], math.Float64bits(math.Cos(float64(i)/5)))
	}
	f.Add(seed, uint8(16))
	f.Fuzz(func(t *testing.T, data []byte, pRaw uint8) {
		x := bytesToSeries(data)
		if len(x) > 2048 {
			x = x[:2048]
		}
		p := 2 + int(pRaw)%64
		dec, err := Decompose(x, []int{p}, DecomposeOptions{})
		if err != nil {
			return
		}
		scale := 0.0
		for _, v := range x {
			if a := math.Abs(v); a > scale {
				scale = a
			}
		}
		tol := 1e-6 * (scale + 1)
		for i := range x {
			sum := dec.Trend[i] + dec.Remainder[i] + dec.Seasonals[0][i]
			if math.Abs(sum-x[i]) > tol {
				t.Fatalf("identity broken at %d: %v vs %v", i, sum, x[i])
			}
		}
	})
}
