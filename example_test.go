package robustperiod_test

import (
	"fmt"
	"math"

	"robustperiod"
)

// A clean two-period series makes the API's happy path visible: hourly
// data with daily (24) and weekly (168) cycles.
func twoPeriodSeries() []float64 {
	x := make([]float64, 1344)
	for i := range x {
		x[i] = 3*math.Sin(2*math.Pi*float64(i)/24) + 5*math.Sin(2*math.Pi*float64(i)/168)
	}
	return x
}

func ExampleDetect() {
	periods, err := robustperiod.Detect(twoPeriodSeries(), nil)
	if err != nil {
		panic(err)
	}
	fmt.Println(periods)
	// Output: [24 168]
}

func ExampleDetectDetails() {
	res, err := robustperiod.DetectDetails(twoPeriodSeries(), nil)
	if err != nil {
		panic(err)
	}
	fmt.Println("periods:", res.Periods)
	fmt.Println("levels analysed:", len(res.Levels) > 0)
	// Output:
	// periods: [24 168]
	// levels analysed: true
}

func ExampleDecompose() {
	series := twoPeriodSeries()
	dec, err := robustperiod.Decompose(series, []int{24, 168}, robustperiod.DecomposeOptions{})
	if err != nil {
		panic(err)
	}
	// The decomposition reconstructs the series exactly.
	maxErr := 0.0
	for i := range series {
		sum := dec.Trend[i] + dec.Remainder[i]
		for _, s := range dec.Seasonals {
			sum += s[i]
		}
		if d := math.Abs(sum - series[i]); d > maxErr {
			maxErr = d
		}
	}
	fmt.Println("components:", len(dec.Seasonals), "exact:", maxErr < 1e-9)
	// Output: components: 2 exact: true
}

func ExampleDetectAnomalies() {
	series := twoPeriodSeries()
	series[700] += 40 // an incident
	res, err := robustperiod.DetectAnomalies(series, []int{24, 168}, robustperiod.AnomalyOptions{})
	if err != nil {
		panic(err)
	}
	for _, a := range res.Anomalies {
		fmt.Println("anomaly at", a.Index)
	}
	// Output: anomaly at 700
}
