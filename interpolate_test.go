package robustperiod

import (
	"math"
	"testing"
)

func TestInterpolateFillsGaps(t *testing.T) {
	nan := math.NaN()
	y := []float64{1, nan, nan, 4, 5, nan, 7}
	got, mask := Interpolate(y)
	want := []float64{1, 2, 3, 4, 5, 6, 7}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("idx %d: got %v want %v", i, got[i], want[i])
		}
	}
	wantMask := []bool{false, true, true, false, false, true, false}
	for i := range wantMask {
		if mask[i] != wantMask[i] {
			t.Fatalf("mask %v", mask)
		}
	}
	// Original untouched.
	if !math.IsNaN(y[1]) {
		t.Error("input mutated")
	}
}

func TestInterpolateEdges(t *testing.T) {
	nan := math.NaN()
	got, _ := Interpolate([]float64{nan, nan, 5, 6, nan})
	want := []float64{5, 5, 5, 6, 6}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("edge fill: got %v want %v", got, want)
		}
	}
}

func TestInterpolateAllNaN(t *testing.T) {
	nan := math.NaN()
	got, mask := Interpolate([]float64{nan, nan, nan})
	for i := range got {
		if got[i] != 0 || !mask[i] {
			t.Fatalf("all-NaN: got %v mask %v", got, mask)
		}
	}
}

func TestInterpolateThenDetect(t *testing.T) {
	// End-to-end: a periodic series with 15% NaN gaps still detects.
	n := 1000
	y := make([]float64, n)
	for i := range y {
		y[i] = math.Sin(2 * math.Pi * float64(i) / 50)
	}
	for i := 0; i < n; i += 7 {
		y[i] = math.NaN()
	}
	filled, _ := Interpolate(y)
	ps, err := Detect(filled, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) == 0 || ps[0] < 48 || ps[0] > 52 {
		t.Errorf("periods after interpolation: %v", ps)
	}
}
