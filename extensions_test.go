package robustperiod

import (
	"math"
	"math/rand"
	"testing"
)

func TestPublicDecompose(t *testing.T) {
	x := synth(800, []int{40}, 0.1, 0, 51)
	dec, err := Decompose(x, []int{40}, DecomposeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		sum := dec.Trend[i] + dec.Remainder[i]
		for _, s := range dec.Seasonals {
			sum += s[i]
		}
		if math.Abs(sum-x[i]) > 1e-9 {
			t.Fatal("public decompose identity broken")
		}
	}
}

func TestPublicDetectAnomalies(t *testing.T) {
	x := synth(800, []int{40}, 0.1, 0, 52)
	x[333] += 12
	res, err := DetectAnomalies(x, []int{40}, AnomalyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, a := range res.Anomalies {
		if a.Index == 333 {
			found = true
		}
	}
	if !found {
		t.Error("public anomaly API missed the injected spike")
	}
}

func TestPublicMonitor(t *testing.T) {
	mon := NewMonitor(512, 64, nil)
	rng := rand.New(rand.NewSource(53))
	var first *MonitorEvent
	for i := 0; i < 700; i++ {
		v := math.Sin(2*math.Pi*float64(i)/32) + 0.1*rng.NormFloat64()
		ev, err := mon.Push(v)
		if err != nil {
			t.Fatal(err)
		}
		if ev != nil && first == nil {
			first = ev
		}
	}
	if first == nil || first.Kind != PeriodsDetected {
		t.Fatalf("first event: %+v", first)
	}
	if len(first.Periods) != 1 || first.Periods[0] < 31 || first.Periods[0] > 33 {
		t.Errorf("periods %v", first.Periods)
	}
}
