package robustperiod

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

func TestDetectAutoShortSeriesUnchanged(t *testing.T) {
	x := synth(1000, []int{50}, 0.1, 0, 71)
	direct, err := Detect(x, nil)
	if err != nil {
		t.Fatal(err)
	}
	auto, err := DetectAuto(x, 5000, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(direct) != len(auto) {
		t.Fatalf("short series should be identical: %v vs %v", direct, auto)
	}
	for i := range direct {
		if direct[i] != auto[i] {
			t.Fatalf("short series should be identical: %v vs %v", direct, auto)
		}
	}
}

func TestDetectAutoLongSeries(t *testing.T) {
	// 40k points with a period of 2880 (two-day cycle at minute
	// resolution): full detection at this length would be slow and the
	// filter bank deep; the downsampled path must land within 1%.
	rng := rand.New(rand.NewSource(72))
	n := 40000
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Sin(2*math.Pi*float64(i)/2880) + 0.3*rng.NormFloat64()
		if rng.Float64() < 0.01 {
			x[i] += 8
		}
	}
	periods, err := DetectAuto(x, 5000, nil)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, p := range periods {
		if math.Abs(float64(p-2880)) <= 0.01*2880 {
			found = true
		}
	}
	if !found {
		t.Errorf("periods = %v, want ~2880", periods)
	}
}

func TestDetectAutoRefinementBeatsScaling(t *testing.T) {
	// Period 1000 in 30k points: decimation factor 6 gives ±6-sample
	// granularity; refinement should recover near-exact accuracy.
	rng := rand.New(rand.NewSource(73))
	n := 30000
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Sin(2*math.Pi*float64(i)/1000) + 0.2*rng.NormFloat64()
	}
	periods, err := DetectAuto(x, 5000, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(periods) == 0 {
		t.Fatal("nothing detected")
	}
	sort.Ints(periods)
	best := periods[0]
	for _, p := range periods {
		if math.Abs(float64(p-1000)) < math.Abs(float64(best-1000)) {
			best = p
		}
	}
	if math.Abs(float64(best-1000)) > 3 {
		t.Errorf("refined period %d, want within ±3 of 1000", best)
	}
}

func TestDetectAutoNoiseQuiet(t *testing.T) {
	rng := rand.New(rand.NewSource(74))
	x := make([]float64, 20000)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	periods, err := DetectAuto(x, 4000, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(periods) > 1 {
		t.Errorf("noise produced %v", periods)
	}
}

func TestBlockMeans(t *testing.T) {
	x := []float64{1, 3, 5, 7, 9}
	got := blockMeans(x, 2)
	want := []float64{2, 6, 9}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v want %v", got, want)
		}
	}
	id := blockMeans(x, 1)
	for i := range x {
		if id[i] != x[i] {
			t.Fatal("k=1 should be identity")
		}
	}
}
