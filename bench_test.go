// Benchmarks regenerating every table and figure of the paper's
// evaluation section (§4), plus the ablation benches called out in
// DESIGN.md §5. Each BenchmarkTableN/BenchmarkFigureN target runs the
// corresponding experiment driver on a small corpus per iteration; run
// cmd/rpbench for the full-size, human-readable versions.
package robustperiod

import (
	"testing"

	"robustperiod/internal/core"
	"robustperiod/internal/eval"
	"robustperiod/internal/spectrum"
	"robustperiod/internal/synthetic"
	"robustperiod/internal/wavelet"
)

const benchTrials = 3

func BenchmarkTable1SinglePeriodPrecision(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = eval.Table1(benchTrials, int64(i))
	}
}

func BenchmarkTable2MultiPeriodF1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = eval.Table2(benchTrials, int64(i))
	}
}

func BenchmarkTable3SquareTriangleF1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = eval.Table3(benchTrials, int64(i))
	}
}

func BenchmarkTable4CloudDatasets(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = eval.Table4(int64(i))
	}
}

func BenchmarkTable5Ablations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = eval.Table5(benchTrials, int64(i))
	}
}

func BenchmarkTable6Forecasting(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = eval.Table6(2, int64(i))
	}
}

func BenchmarkTable7RunningTime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = eval.Table7(benchTrials, int64(i))
	}
}

func BenchmarkTable8F1VersusLength(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = eval.Table8(benchTrials, int64(i))
	}
}

func BenchmarkFigure5Intermediates(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = eval.Figure5(int64(i))
	}
}

func BenchmarkFigure6PeriodogramSchemes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = eval.Figure6(int64(i))
	}
}

// Per-detector timing at the paper's three lengths (the substance of
// Table 7, as individual benchmark lines).

func benchDetectAtLength(b *testing.B, n int) {
	b.Helper()
	periods := []int{20, 50, 100}
	cfg := synthetic.PaperConfig(n, synthetic.Sine, periods, 0.1, 0.01, 42)
	x := synthetic.Generate(cfg)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Detect(x, core.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRobustPeriodN500(b *testing.B)  { benchDetectAtLength(b, 500) }
func BenchmarkRobustPeriodN1000(b *testing.B) { benchDetectAtLength(b, 1000) }
func BenchmarkRobustPeriodN2000(b *testing.B) { benchDetectAtLength(b, 2000) }

// Ablation benches (DESIGN.md §5).

// BenchmarkAblationSolverIRLS vs ...ADMM: same optimum, different cost.
func benchSolver(b *testing.B, solver spectrum.Solver) {
	b.Helper()
	cfg := synthetic.PaperConfig(1000, synthetic.Sine, []int{50}, 0.5, 0.05, 7)
	x := synthetic.Generate(cfg)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := spectrum.MPeriodogram(x, 10, 50, spectrum.Options{
			Loss: spectrum.LossHuber, Solver: solver,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationSolverIRLS(b *testing.B) { benchSolver(b, spectrum.SolverIRLS) }
func BenchmarkAblationSolverADMM(b *testing.B) { benchSolver(b, spectrum.SolverADMM) }

// BenchmarkAblationPassband vs FullBand: the paper's §3.4.1 speedup.
func benchBand(b *testing.B, full bool) {
	b.Helper()
	cfg := synthetic.PaperConfig(1000, synthetic.Sine, []int{20, 50, 100}, 0.1, 0.01, 8)
	x := synthetic.Generate(cfg)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Detect(x, core.Options{FullRobustBand: full}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationPassbandOnly(b *testing.B) { benchBand(b, false) }
func BenchmarkAblationFullBand(b *testing.B)     { benchBand(b, true) }

// BenchmarkAblationACF: Wiener–Khinchin O(N log N) vs direct O(N²).
func BenchmarkAblationACFWienerKhinchin(b *testing.B) {
	cfg := synthetic.PaperConfig(4096, synthetic.Sine, []int{100}, 0.3, 0.02, 9)
	x := synthetic.Generate(cfg)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := spectrum.HuberACF(x, spectrum.Options{Loss: spectrum.LossL2}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationACFDirect(b *testing.B) {
	cfg := synthetic.PaperConfig(4096, synthetic.Sine, []int{100}, 0.3, 0.02, 9)
	x := synthetic.Generate(cfg)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		spectrum.DirectACF(x)
	}
}

// BenchmarkAblationWavelet: Daubechies width vs pipeline cost.
func benchWavelet(b *testing.B, k wavelet.Kind) {
	b.Helper()
	cfg := synthetic.PaperConfig(1000, synthetic.Sine, []int{20, 50, 100}, 0.1, 0.01, 10)
	x := synthetic.Generate(cfg)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Detect(x, core.Options{Wavelet: k}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationBoundary: circular-only vs circular-with-reflection
// fallback (the fallback costs one extra MODWT plus re-detection on
// failed levels; DESIGN.md §6.13 documents why it exists).
func benchBoundary(b *testing.B, circularOnly bool) {
	b.Helper()
	cfg := synthetic.PaperConfig(1000, synthetic.Sine, []int{144}, 0.2, 0.01, 11)
	x := synthetic.Generate(cfg)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Detect(x, core.Options{CircularBoundary: circularOnly}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationBoundaryCircularOnly(b *testing.B) { benchBoundary(b, true) }
func BenchmarkAblationBoundaryWithFallback(b *testing.B) { benchBoundary(b, false) }

// BenchmarkParallelDetect vs sequential: the Options.Parallel path.
func BenchmarkDetectSequential(b *testing.B) {
	cfg := synthetic.PaperConfig(2000, synthetic.Sine, []int{20, 50, 100}, 0.3, 0.02, 12)
	x := synthetic.Generate(cfg)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Detect(x, core.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDetectParallel(b *testing.B) {
	cfg := synthetic.PaperConfig(2000, synthetic.Sine, []int{20, 50, 100}, 0.3, 0.02, 12)
	x := synthetic.Generate(cfg)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Detect(x, core.Options{Parallel: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDetectAuto: the §4.5.1 deployment path (downsample + refine)
// against full-resolution detection on a 40k-point series.
func BenchmarkDetectAutoLongSeries(b *testing.B) {
	cfg := synthetic.PaperConfig(40000, synthetic.Sine, []int{2880}, 0.2, 0.01, 13)
	x := synthetic.Generate(cfg)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DetectAuto(x, 5000, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationWaveletHaar(b *testing.B) { benchWavelet(b, wavelet.Haar) }
func BenchmarkAblationWaveletD4(b *testing.B)   { benchWavelet(b, wavelet.Daub4) }
func BenchmarkAblationWaveletD8(b *testing.B)   { benchWavelet(b, wavelet.Daub8) }
func BenchmarkAblationWaveletD12(b *testing.B)  { benchWavelet(b, wavelet.Daub12) }
