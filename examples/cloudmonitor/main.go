// Command cloudmonitor runs RobustPeriod over the six cloud-monitoring
// surrogate datasets of the paper's Fig. 4 / Table 4 — database
// response time, file-exchange counts, Flink TPS, execution job counts
// (daily + weekly), and two CPU-usage series with 10.5% and 20.5%
// block-missing data — and reports the detected periods next to the
// ground truth. This is the auto-scaling use case from the paper's
// introduction: a detected period feeds capacity planning.
package main

import (
	"fmt"
	"log"

	"robustperiod"
	"robustperiod/internal/synthetic"
)

func main() {
	fmt.Println("RobustPeriod on cloud-monitoring surrogates (paper Fig. 4 / Table 4)")
	fmt.Println()
	for _, ds := range synthetic.CloudAll(7) {
		periods, err := robustperiod.Detect(ds.X, nil)
		if err != nil {
			log.Fatalf("%s: %v", ds.Name, err)
		}
		status := "MISS"
		if matches(periods, ds.Truth) {
			status = "OK"
		}
		fmt.Printf("%-22s n=%-5d truth=%-10v detected=%-12v %s\n",
			ds.Name, len(ds.X), ds.Truth, periods, status)
	}
	fmt.Println()
	fmt.Println("a detected daily period of length T lets an autoscaler pre-provision")
	fmt.Println("capacity ahead of each cycle peak instead of reacting to it")
}

// matches accepts a detection set that covers every truth within 2%.
func matches(got, truth []int) bool {
	for _, tr := range truth {
		ok := false
		for _, g := range got {
			d := g - tr
			if d < 0 {
				d = -d
			}
			if float64(d) <= 0.02*float64(tr)+1 {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}
