// Command streaming demonstrates sliding-window periodicity
// monitoring: observations arrive one at a time, detection re-runs
// every 128 points over the trailing 512, and the monitor emits an
// event whenever the period set changes. The simulated workload shifts
// its cycle length mid-stream (a deployment changed the batch cadence
// from 64 to 96 minutes) and then degenerates into noise (the job
// crashed); the monitor narrates all three regimes.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"robustperiod/internal/core"
	"robustperiod/internal/stream"
)

func main() {
	rng := rand.New(rand.NewSource(3))
	// A stricter Fisher α than the batch default: the monitor re-tests
	// every stride, so per-test false-positive probability multiplies
	// into flicker on aperiodic regimes.
	opts := core.Options{}
	opts.Detect.Alpha = 1e-4
	mon := stream.NewMonitor(512, 128, opts)
	// Require two consecutive agreeing re-detections before an event:
	// a handful of narrow-band noise cycles can fool one window, but
	// rarely two disjoint strides in a row.
	mon.SetConfirm(2)

	emit := func(regime string, gen func(i int) float64, count int, base int) {
		for i := 0; i < count; i++ {
			ev, err := mon.Push(gen(base + i))
			if err != nil {
				log.Fatal(err)
			}
			if ev != nil {
				fmt.Printf("t=%-5d [%s] %-9s periods %v -> %v\n",
					ev.At, regime, ev.Kind, ev.Prev, ev.Periods)
			}
		}
	}

	cycle := func(period float64) func(int) float64 {
		return func(i int) float64 {
			return 10 + 4*math.Sin(2*math.Pi*float64(i)/period) + 0.4*rng.NormFloat64()
		}
	}

	emit("cadence 64 ", cycle(64), 1024, 0)
	emit("cadence 96 ", cycle(96), 1024, 1024)
	emit("crashed    ", func(int) float64 { return 10 + rng.NormFloat64() }, 1024, 0)

	fmt.Printf("\nfinal state: periods=%v after %d observations\n", mon.Current(), mon.Seen())
}
