// Command service shows the serving layer end to end: it starts the
// rpserved HTTP service in-process on an ephemeral port, submits a
// single detection and a batch over JSON — exactly what an external
// client would send with curl — runs the async job flow (submit, poll
// honoring Retry-After, fetch the result), and reads the metrics
// endpoint. The repeated request demonstrates the LRU result cache.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"math"
	"math/rand"
	"net"
	"net/http"
	"strconv"
	"time"

	"robustperiod/internal/obs"
	"robustperiod/internal/serve"
)

func main() {
	// An hourly metric with daily (24) and weekly (168) cycles, as in
	// the quickstart example.
	rng := rand.New(rand.NewSource(1))
	n := 1344
	series := make([]float64, n)
	for i := range series {
		series[i] = 50 +
			3*math.Sin(2*math.Pi*float64(i)/24) +
			5*math.Sin(2*math.Pi*float64(i)/168) +
			0.5*rng.NormFloat64()
	}

	// Start the service on an ephemeral local port.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv, err := serve.New(serve.Config{})
	if err != nil {
		log.Fatal(err)
	}
	ctx, stop := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ctx, ln) }()
	base := fmt.Sprintf("http://%s", ln.Addr())
	fmt.Println("rpserved listening on", base)

	// POST /v1/detect — twice, to show the result cache.
	for i := 0; i < 2; i++ {
		var resp struct {
			Periods   []int   `json:"periods"`
			Cached    bool    `json:"cached"`
			ElapsedMS float64 `json:"elapsedMs"`
		}
		postJSON(base+"/v1/detect", map[string]any{"series": series}, &resp)
		fmt.Printf("detect: periods=%v cached=%v elapsed=%.2fms\n",
			resp.Periods, resp.Cached, resp.ElapsedMS)
	}

	// POST /v1/detect/batch — several series in one request, fanned
	// out across the worker pool.
	batch := [][]float64{series[:672], series[:1008], series}
	var batchResp struct {
		Results []struct {
			Index   int   `json:"index"`
			Periods []int `json:"periods"`
			Cached  bool  `json:"cached"`
		} `json:"results"`
	}
	postJSON(base+"/v1/detect/batch", map[string]any{"series": batch}, &batchResp)
	for _, r := range batchResp.Results {
		fmt.Printf("batch[%d]: periods=%v cached=%v\n", r.Index, r.Periods, r.Cached)
	}

	// POST /v1/jobs — the async path: submit, poll with a backoff that
	// honors the server's Retry-After hint, then read the result.
	asyncDetect(base, series)

	// GET /metrics — the Prometheus exposition, parsed with the
	// in-repo reader: request, cache, and async-job counters.
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		log.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		log.Fatal(err)
	}
	fams, err := obs.ParseExposition(raw)
	if err != nil {
		log.Fatal(err)
	}
	for _, name := range []string{"rp_requests_total", "rp_cache_hits_total", "rp_jobs_submitted_total"} {
		total := 0.0
		if f := obs.FindFamily(fams, name); f != nil {
			for _, s := range f.Samples {
				total += s.Value
			}
		}
		fmt.Printf("metrics: %s = %g\n", name, total)
	}

	// Graceful shutdown: stop accepting, drain, exit.
	stop()
	if err := <-done; err != nil {
		log.Fatal(err)
	}
	fmt.Println("service drained cleanly")
}

// asyncDetect runs the submit-then-poll flow of the async job API: a
// 202 with the job ID and status URL, polls paced by the Retry-After
// header (the server's own backlog-aware estimate), and prints the
// result once the job lands.
func asyncDetect(base string, series []float64) {
	body, err := json.Marshal(map[string]any{"series": series})
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	var sub struct {
		JobID     string `json:"jobId"`
		State     string `json:"state"`
		StatusURL string `json:"statusUrl"`
	}
	err = json.NewDecoder(resp.Body).Decode(&sub)
	resp.Body.Close()
	if err != nil {
		log.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		log.Fatalf("POST /v1/jobs: %s", resp.Status)
	}
	fmt.Printf("job %s accepted (%s), polling %s\n", sub.JobID, sub.State, sub.StatusURL)

	for {
		resp, err := http.Get(base + sub.StatusURL)
		if err != nil {
			log.Fatal(err)
		}
		var st struct {
			State     string  `json:"state"`
			Coalesced bool    `json:"coalesced"`
			ElapsedMS float64 `json:"elapsedMs"`
			Result    *struct {
				Periods []int `json:"periods"`
			} `json:"result"`
			Error *struct {
				Code    string `json:"code"`
				Message string `json:"message"`
			} `json:"error"`
		}
		retryAfter := resp.Header.Get("Retry-After")
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			log.Fatal(err)
		}
		switch st.State {
		case "done":
			fmt.Printf("job %s done: periods=%v coalesced=%v elapsed=%.2fms\n",
				sub.JobID, st.Result.Periods, st.Coalesced, st.ElapsedMS)
			return
		case "failed":
			log.Fatalf("job %s failed: %s: %s", sub.JobID, st.Error.Code, st.Error.Message)
		}
		// Still queued or running: the server says how long to back
		// off. Real clients sleep the full hint; this demo caps it so
		// the example finishes promptly.
		wait := time.Second
		if secs, err := strconv.Atoi(retryAfter); err == nil && secs > 0 {
			wait = time.Duration(secs) * time.Second
		}
		if wait > 100*time.Millisecond {
			wait = 100 * time.Millisecond
		}
		time.Sleep(wait)
	}
}

func postJSON(url string, body, out any) {
	b, err := json.Marshal(body)
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("POST %s: %s", url, resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		log.Fatal(err)
	}
}
