// Command service shows the serving layer end to end: it starts the
// rpserved HTTP service in-process on an ephemeral port, submits a
// single detection and a batch over JSON — exactly what an external
// client would send with curl — and reads the metrics endpoint. The
// repeated request demonstrates the LRU result cache.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log"
	"math"
	"math/rand"
	"net"
	"net/http"

	"robustperiod/internal/serve"
)

func main() {
	// An hourly metric with daily (24) and weekly (168) cycles, as in
	// the quickstart example.
	rng := rand.New(rand.NewSource(1))
	n := 1344
	series := make([]float64, n)
	for i := range series {
		series[i] = 50 +
			3*math.Sin(2*math.Pi*float64(i)/24) +
			5*math.Sin(2*math.Pi*float64(i)/168) +
			0.5*rng.NormFloat64()
	}

	// Start the service on an ephemeral local port.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := serve.New(serve.Config{})
	ctx, stop := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ctx, ln) }()
	base := fmt.Sprintf("http://%s", ln.Addr())
	fmt.Println("rpserved listening on", base)

	// POST /v1/detect — twice, to show the result cache.
	for i := 0; i < 2; i++ {
		var resp struct {
			Periods   []int   `json:"periods"`
			Cached    bool    `json:"cached"`
			ElapsedMS float64 `json:"elapsedMs"`
		}
		postJSON(base+"/v1/detect", map[string]any{"series": series}, &resp)
		fmt.Printf("detect: periods=%v cached=%v elapsed=%.2fms\n",
			resp.Periods, resp.Cached, resp.ElapsedMS)
	}

	// POST /v1/detect/batch — several series in one request, fanned
	// out across the worker pool.
	batch := [][]float64{series[:672], series[:1008], series}
	var batchResp struct {
		Results []struct {
			Index   int   `json:"index"`
			Periods []int `json:"periods"`
			Cached  bool  `json:"cached"`
		} `json:"results"`
	}
	postJSON(base+"/v1/detect/batch", map[string]any{"series": batch}, &batchResp)
	for _, r := range batchResp.Results {
		fmt.Printf("batch[%d]: periods=%v cached=%v\n", r.Index, r.Periods, r.Cached)
	}

	// GET /metrics — request and cache counters.
	var metrics map[string]any
	getJSON(base+"/metrics", &metrics)
	fmt.Printf("metrics: requests=%v cache_hits=%v cache_misses=%v\n",
		metrics["requests"], metrics["cache_hits"], metrics["cache_misses"])

	// Graceful shutdown: stop accepting, drain, exit.
	stop()
	if err := <-done; err != nil {
		log.Fatal(err)
	}
	fmt.Println("service drained cleanly")
}

func postJSON(url string, body, out any) {
	b, err := json.Marshal(body)
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("POST %s: %s", url, resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		log.Fatal(err)
	}
}

func getJSON(url string, out any) {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		log.Fatal(err)
	}
}
