// Command forecasting demonstrates the paper's downstream task (§4.4):
// periodicity detection feeding a multi-seasonal forecaster. It builds
// a Yahoo-A4-like series (periods 12, 24, 168 plus trend changes and
// outliers), detects its periods with RobustPeriod, trains the
// multi-seasonal exponential-smoothing model on the first half with
// (a) the detected periods, (b) a deliberately wrong period, and (c)
// no periods at all, then compares forecast accuracy on the held-out
// half — showing how detection quality propagates to forecast quality.
package main

import (
	"fmt"
	"log"

	"robustperiod"
	"robustperiod/internal/forecast"
	"robustperiod/internal/synthetic"
)

func main() {
	series := synthetic.YahooA4Corpus(1, 11)[0]
	n := len(series.X)
	train, test := series.X[:n/2], series.X[n/2:]
	h := 168

	detected, err := robustperiod.Detect(train, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("truth periods:    %v\n", series.Truth)
	fmt.Printf("detected periods: %v\n\n", detected)

	candidates := []struct {
		name    string
		periods []int
	}{
		{"detected (RobustPeriod)", detected},
		{"wrong period {37}", []int{37}},
		{"no seasonality", nil},
	}
	fmt.Printf("%-26s %-10s %s\n", "periods fed to forecaster", "RMSE", "MAE")
	for _, c := range candidates {
		var fc []float64
		if len(c.periods) == 0 {
			fc, err = forecast.Mean{}.Forecast(train, h)
		} else {
			fc, err = (forecast.MultiSeasonal{Periods: c.periods}).Forecast(train, h)
		}
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-26s %-10.3f %.3f\n",
			c.name, forecast.RMSE(fc, test[:h]), forecast.MAE(fc, test[:h]))
	}
	fmt.Println()
	fmt.Println("correct periods give the lowest error; a wrong or missing period")
	fmt.Println("degrades the forecast — the effect Table 6 of the paper measures")
}
