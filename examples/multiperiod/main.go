// Command multiperiod reproduces the paper's running example (Fig. 3a
// and Fig. 5): a synthetic series with three interlaced periods (20,
// 50, 100), a triangle trend, Gaussian noise and impulsive outliers.
// It prints the full per-level diagnostic table — wavelet variance,
// Fisher p-value, periodogram candidate, ACF validation — and the
// final set of detected periods, so you can watch the MODWT decouple
// the components exactly as the paper's Fig. 5 shows.
package main

import (
	"fmt"
	"log"

	"robustperiod"
	"robustperiod/internal/synthetic"
)

func main() {
	cfg := synthetic.PaperConfig(1000, synthetic.Sine, []int{20, 50, 100}, 0.1, 0.01, 42)
	x := synthetic.Generate(cfg)

	res, err := robustperiod.DetectDetails(x, &robustperiod.Options{EnergyShare: 1})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("RobustPeriod on the paper's 3-periodic synthetic series (truth: 20, 50, 100)")
	fmt.Println()
	fmt.Printf("%-6s %-11s %-9s %-10s %-6s %-6s %-6s %s\n",
		"level", "waveletVar", "selected", "p-value", "per_T", "acf_T", "fin_T", "periodic")
	for _, lv := range res.Levels {
		d := lv.Detection
		fmt.Printf("%-6d %-11.4f %-9v %-10.2e %-6d %-6d %-6d %v\n",
			lv.Level, lv.Variance.Variance, lv.Selected,
			d.PValue, d.Candidate, d.ACFPeriod, d.Final, d.Periodic)
	}
	fmt.Println()
	fmt.Println("final periods:", res.Periods)

	// Show where each detected period's energy lived.
	fmt.Println()
	fmt.Println("octave bands: level j isolates periods in [2^j, 2^(j+1)):")
	for _, lv := range res.Levels {
		if lv.Detection.Periodic {
			fmt.Printf("  level %d band [%d, %d) -> period %d\n",
				lv.Level, 1<<uint(lv.Level), 1<<uint(lv.Level+1), lv.Detection.Final)
		}
	}
}
