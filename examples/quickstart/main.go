// Command quickstart is the smallest possible RobustPeriod program: it
// builds a noisy two-period series (daily 24 and weekly 168, as in a
// typical hourly operations metric), detects its periodicities with
// the default configuration, and prints them.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"robustperiod"
)

func main() {
	// An hourly metric: daily and weekly cycles, noise, a few spikes.
	rng := rand.New(rand.NewSource(1))
	n := 1344 // 8 weeks of hourly data
	series := make([]float64, n)
	for i := range series {
		daily := 3 * math.Sin(2*math.Pi*float64(i)/24)
		weekly := 5 * math.Sin(2*math.Pi*float64(i)/168)
		noise := 0.5 * rng.NormFloat64()
		series[i] = 50 + daily + weekly + noise
		if rng.Float64() < 0.01 {
			series[i] += 30 // monitoring spike
		}
	}

	periods, err := robustperiod.Detect(series, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("detected periods:", periods) // expect [24 168]

	// The same detection with diagnostics: wavelet variances per level.
	res, err := robustperiod.DetectDetails(series, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("per-level wavelet variance (the paper's Fig. 5b):")
	for _, lv := range res.Levels {
		bar := ""
		for i := 0; i < int(lv.Variance.Variance*100); i++ {
			bar += "#"
		}
		fmt.Printf("  level %2d  %.4f %s\n", lv.Level, lv.Variance.Variance, bar)
	}
}
