// Command anomaly demonstrates the paper's motivating monitoring
// application: periodicity-aware anomaly detection. A week of minute-
// level request-rate data (daily period 1440) is corrupted with
// latency spikes and a short outage; RobustPeriod detects the period,
// the series is decomposed into trend + seasonal + remainder, and
// points whose remainder exceeds 4 robust standard deviations are
// flagged — spikes and outage alike, without the daily swing causing
// false alarms.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"robustperiod"
	"robustperiod/internal/anomaly"
)

func main() {
	rng := rand.New(rand.NewSource(7))
	n := 5 * 1440 // five days, minute resolution
	series := make([]float64, n)
	for i := range series {
		daily := math.Sin(2*math.Pi*float64(i)/1440 - math.Pi/2) // night trough, midday peak
		series[i] = 500 + 200*daily + 12*rng.NormFloat64()
	}
	// Inject incidents: three spikes and one 20-minute outage.
	spikes := []int{1234, 3456, 6100}
	for _, i := range spikes {
		series[i] += 320
	}
	outageStart := 4600
	for i := outageStart; i < outageStart+20; i++ {
		series[i] -= 400
	}

	periods, err := robustperiod.Detect(series, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("detected periods: %v (truth: 1440)\n\n", periods)

	// Threshold 6: detection found the period to ~1%, and the residual
	// phase drift of an approximate period leaves a little structure
	// in the remainder; alerting a notch above the statistical minimum
	// keeps the pager quiet without hiding real incidents (which score
	// 20-30 here).
	res, err := anomaly.Detect(series, periods, anomaly.Options{Threshold: 6})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d anomalous points (|remainder| > 6 robust σ, σ=%.1f):\n", len(res.Anomalies), res.Scale)
	prevIdx := -10
	for _, a := range res.Anomalies {
		kind := "spike"
		if a.Value < a.Expected {
			kind = "dip"
		}
		cont := ""
		if a.Index == prevIdx+1 {
			cont = " (cont.)"
		}
		fmt.Printf("  t=%-5d value=%7.1f expected=%7.1f score=%5.1f %s%s\n",
			a.Index, a.Value, a.Expected, a.Score, kind, cont)
		prevIdx = a.Index
	}
	fmt.Println()
	fmt.Println("note: the 200-unit daily swing never alarms — only deviations")
	fmt.Println("from the *expected* position in the cycle do")
}
