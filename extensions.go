package robustperiod

import (
	"math"

	"robustperiod/internal/anomaly"
	"robustperiod/internal/core"
	"robustperiod/internal/decompose"
	"robustperiod/internal/stream"
	"robustperiod/internal/synthetic"
)

// Decomposition re-exports the robust multi-period seasonal-trend
// decomposition result (trend + one seasonal component per period +
// remainder).
type Decomposition = decompose.Result

// DecomposeOptions configures Decompose.
type DecomposeOptions = decompose.Options

// Decompose splits y additively into trend, one seasonal component per
// detected period, and a remainder, using per-phase medians so
// outliers land in the remainder. Pass the periods from Detect.
func Decompose(y []float64, periods []int, opts DecomposeOptions) (*Decomposition, error) {
	return decompose.Decompose(y, periods, opts)
}

// Anomaly is one flagged point: its observed value, the value the
// trend+seasonal model expected, and the robust z-score.
type Anomaly = anomaly.Point

// AnomalyOptions configures DetectAnomalies.
type AnomalyOptions = anomaly.Options

// AnomalyResult carries the flagged points plus the decomposition they
// were scored against.
type AnomalyResult = anomaly.Result

// DetectAnomalies flags points whose decomposition remainder exceeds
// the threshold (in robust standard deviations). periods usually come
// from Detect; an empty list reduces to trend-residual thresholding.
func DetectAnomalies(y []float64, periods []int, opts AnomalyOptions) (*AnomalyResult, error) {
	return anomaly.Detect(y, periods, opts)
}

// Monitor watches a stream of observations and emits an event whenever
// the detected period set changes; see NewMonitor.
type Monitor = stream.Monitor

// MonitorEvent is a change notification from a Monitor.
type MonitorEvent = stream.Event

// Monitor event kinds.
const (
	PeriodsDetected = stream.PeriodsDetected
	PeriodsChanged  = stream.PeriodsChanged
	PeriodsLost     = stream.PeriodsLost
)

// Interpolate returns a copy of y with every NaN run replaced by
// linear interpolation between its surviving neighbours (flat
// extension at the edges), plus the mask of filled positions. This is
// the paper's treatment of the block-missing CPU-usage datasets
// ("linearly interpolated before sent to different periodicity
// detection algorithms"); RobustPeriod tolerates the interpolation
// artifacts that break the baselines (Table 4). A series that is
// entirely NaN is returned as zeros.
func Interpolate(y []float64) ([]float64, []bool) {
	out := make([]float64, len(y))
	mask := make([]bool, len(y))
	allNaN := true
	for i, v := range y {
		if math.IsNaN(v) {
			mask[i] = true
			out[i] = 0
		} else {
			out[i] = v
			allNaN = false
		}
	}
	if allNaN {
		return out, mask
	}
	synthetic.InterpolateMasked(out, mask)
	return out, mask
}

// NewMonitor creates a sliding-window periodicity monitor: detection
// re-runs over the trailing window every stride observations and
// Push returns an event when the period set changes. opts may be nil
// for defaults; use Monitor.SetConfirm to debounce borderline windows.
func NewMonitor(window, stride int, opts *Options) *Monitor {
	var o core.Options
	if opts != nil {
		o = *opts
	}
	return stream.NewMonitor(window, stride, o)
}
