package robustperiod

import (
	"math"
	"math/rand"
	"testing"

	"robustperiod/internal/anomaly"
	"robustperiod/internal/baselines"
	"robustperiod/internal/core"
	"robustperiod/internal/decompose"
	"robustperiod/internal/eval"
	"robustperiod/internal/forecast"
	"robustperiod/internal/stream"
	"robustperiod/internal/synthetic"
)

// TestIntegrationDetectDecomposeForecast drives the full downstream
// chain on one realistic series: detect periods → decompose → forecast
// with the detected periods → verify the forecast beats a seasonal-
// blind baseline. This is the end-to-end story of the paper's §4.4.
func TestIntegrationDetectDecomposeForecast(t *testing.T) {
	s := synthetic.YahooA4Corpus(1, 21)[0]
	n := len(s.X)
	train, test := s.X[:n/2], s.X[n/2:n/2+168]

	periods, err := Detect(train, nil)
	if err != nil {
		t.Fatal(err)
	}
	c := eval.Match(periods, s.Truth, 0.02)
	if c.Recall() < 0.66 {
		t.Fatalf("detected %v of truth %v (recall %.2f)", periods, s.Truth, c.Recall())
	}

	dec, err := decompose.Decompose(train, periods, decompose.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Remainder should be small relative to the seasonal signal.
	var remE, seasE float64
	seas := dec.Seasonal()
	for i := 100; i < len(train)-100; i++ {
		remE += dec.Remainder[i] * dec.Remainder[i]
		seasE += seas[i] * seas[i]
	}
	if remE > seasE {
		t.Errorf("decomposition remainder energy %v exceeds seasonal %v", remE, seasE)
	}

	fc, err := (forecast.MultiSeasonal{Periods: periods}).Forecast(train, len(test))
	if err != nil {
		t.Fatal(err)
	}
	blind, err := forecast.Mean{}.Forecast(train, len(test))
	if err != nil {
		t.Fatal(err)
	}
	if forecast.RMSE(fc, test) >= forecast.RMSE(blind, test) {
		t.Errorf("seasonal forecast (%v) should beat blind mean (%v)",
			forecast.RMSE(fc, test), forecast.RMSE(blind, test))
	}
}

// TestIntegrationAnomalyOnCloudData runs detection + anomaly scoring
// on a cloud surrogate and checks the injected outage surfaces.
func TestIntegrationAnomalyOnCloudData(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	n := 4 * 288
	x := make([]float64, n)
	for i := range x {
		x[i] = 100 + 8*math.Sin(2*math.Pi*float64(i)/288) + rng.NormFloat64()
	}
	for i := 600; i < 615; i++ {
		x[i] -= 60 // outage
	}
	periods, err := Detect(x, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(periods) == 0 {
		t.Fatal("no period detected")
	}
	res, err := anomaly.Detect(x, periods, anomaly.Options{Threshold: 6})
	if err != nil {
		t.Fatal(err)
	}
	inOutage := 0
	for _, a := range res.Anomalies {
		if a.Index >= 600 && a.Index < 615 {
			inOutage++
		}
	}
	if inOutage < 12 {
		t.Errorf("only %d/15 outage points flagged", inOutage)
	}
	if extras := len(res.Anomalies) - inOutage; extras > 3 {
		t.Errorf("%d false alarms", extras)
	}
}

// TestIntegrationStreamAgreesWithBatch: the monitor's steady-state
// answer must match a batch detection over the same window.
func TestIntegrationStreamAgreesWithBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	series := make([]float64, 1500)
	for i := range series {
		series[i] = math.Sin(2*math.Pi*float64(i)/48) + 0.2*rng.NormFloat64()
	}
	mon := stream.NewMonitor(512, 100, core.Options{})
	for _, v := range series {
		if _, err := mon.Push(v); err != nil {
			t.Fatal(err)
		}
	}
	batch, err := Detect(series[len(series)-512:], nil)
	if err != nil {
		t.Fatal(err)
	}
	monPs := mon.Current()
	if len(monPs) != len(batch) {
		t.Fatalf("monitor %v vs batch %v", monPs, batch)
	}
	for i := range monPs {
		d := monPs[i] - batch[i]
		if d < -2 || d > 2 {
			t.Fatalf("monitor %v vs batch %v", monPs, batch)
		}
	}
}

// TestIntegrationBaselinesOnSharedCorpus smoke-checks that the full
// detector set runs on a shared corpus through the evaluation harness
// and that RobustPeriod ranks first — the paper's headline, asserted
// at small scale on every `go test` run.
func TestIntegrationBaselinesOnSharedCorpus(t *testing.T) {
	corpus := synthetic.SinCorpus(6, 1000, synthetic.Sine, []int{20, 50, 100}, 0.5, 0.05, 77)
	detectors := []baselines.Detector{
		baselines.Siegel{},
		baselines.AutoPeriod{Seed: 5},
		baselines.WaveletFisher{},
		baselines.RobustPeriod{},
	}
	best, bestF1 := "", -1.0
	for _, d := range detectors {
		f1 := eval.Run(d, corpus, 0.02, true).Metrics.F1
		if f1 > bestF1 {
			best, bestF1 = d.Name(), f1
		}
	}
	if best != "RobustPeriod" {
		t.Errorf("headline violated: %s won with F1 %.2f", best, bestF1)
	}
}
