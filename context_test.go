package robustperiod

import (
	"context"
	"errors"
	"math"
	"reflect"
	"testing"
	"time"
)

func ctxTestSeries(n, period int) []float64 {
	y := make([]float64, n)
	for i := range y {
		y[i] = math.Sin(2*math.Pi*float64(i)/float64(period)) +
			0.1*math.Sin(2*math.Pi*float64(i)/7.3) // deterministic clutter
	}
	return y
}

func TestDetectContextMatchesDetect(t *testing.T) {
	y := ctxTestSeries(480, 24)
	want, err := Detect(y, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DetectContext(context.Background(), y, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("DetectContext = %v, Detect = %v", got, want)
	}
}

func TestDetectContextAlreadyCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := DetectContext(ctx, ctxTestSeries(480, 24), nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestDetectContextDeadlinePrompt(t *testing.T) {
	y := ctxTestSeries(1<<14, 128)
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := DetectDetailsContext(ctx, y, nil)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("cancellation took %v for a 1ms deadline", elapsed)
	}
}

func TestDetectContextNilContext(t *testing.T) {
	// A nil ctx must behave like context.Background, not panic.
	got, err := DetectContext(nil, ctxTestSeries(480, 24), nil) //nolint:staticcheck
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 {
		t.Error("no periods detected with nil context")
	}
}

func TestDetectSingleShortSeries(t *testing.T) {
	for n := 0; n < MinSingleLen; n++ {
		_, err := DetectSingle(make([]float64, n), nil)
		if err == nil {
			t.Errorf("n=%d: want error, got nil", n)
		}
	}
	// At the boundary the detector must accept the series.
	if _, err := DetectSingle(ctxTestSeries(MinSingleLen, 4), nil); err != nil {
		t.Errorf("n=%d: unexpected error %v", MinSingleLen, err)
	}
}

func TestParseWavelet(t *testing.T) {
	cases := map[string]WaveletKind{
		"haar": Haar, "db1": Haar, "db2": Daub4, "db4": Daub8,
		"DB10": Daub20, "la8": LA8, "LA16": LA16,
	}
	for name, want := range cases {
		got, err := ParseWavelet(name)
		if err != nil || got != want {
			t.Errorf("ParseWavelet(%q) = %v, %v; want %v", name, got, err, want)
		}
	}
	for _, bad := range []string{"", "db99", "sym4", "haarx"} {
		if _, err := ParseWavelet(bad); err == nil {
			t.Errorf("ParseWavelet(%q) should error", bad)
		}
	}
	// Every advertised name must round-trip through the parser.
	for _, name := range WaveletNames() {
		k, err := ParseWavelet(name)
		if err != nil {
			t.Errorf("advertised name %q does not parse: %v", name, err)
		}
		if k.String() != name {
			t.Errorf("round trip %q -> %v -> %q", name, k, k.String())
		}
	}
}
