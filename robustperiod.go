// Package robustperiod detects single and multiple periodicities in
// noisy real-world time series. It is a from-scratch Go implementation
// of the RobustPeriod algorithm (Wen et al., SIGMOD 2021):
//
//  1. the series is detrended with a Hodrick–Prescott filter and
//     normalized with a winsorizing Ψ transform;
//  2. a maximal overlap discrete wavelet transform (MODWT) decouples
//     interlaced periodic components into octave levels, which are
//     ranked by a robust (biweight) unbiased wavelet variance;
//  3. each promising level is tested with Fisher's g-test on a
//     Huber-periodogram, and the candidate period is validated and
//     refined by the Huber-ACF (computed in O(N log N) from the
//     periodogram via the Wiener–Khinchin theorem).
//
// The package is pure standard library. The simplest entry point:
//
//	periods, err := robustperiod.Detect(series, nil)
//
// For diagnostics (per-level periodograms, ACFs, wavelet variances —
// everything in the paper's Fig. 5) use DetectDetails.
package robustperiod

import (
	"context"
	"fmt"

	"robustperiod/internal/core"
	"robustperiod/internal/detect"
	"robustperiod/internal/spectrum"
	"robustperiod/internal/trace"
	"robustperiod/internal/wavelet"
)

// Options configures detection; the zero value reproduces the paper's
// default configuration. See the field documentation in
// internal/core.Options (the type is aliased so every field is usable
// directly).
type Options = core.Options

// Result carries the detected periods plus full per-level diagnostics.
type Result = core.Result

// LevelDetail is the per-wavelet-level diagnostic record.
type LevelDetail = core.LevelDetail

// WaveletKind names a Daubechies filter family.
type WaveletKind = wavelet.Kind

// Wavelet families accepted in Options.Wavelet. DaubN has N filter
// taps (N/2 vanishing moments), so Daub8 is the conventional "db4";
// LA8/LA16 are the least-asymmetric (symlet) variants.
const (
	Haar   = wavelet.Haar
	Daub4  = wavelet.Daub4
	Daub6  = wavelet.Daub6
	Daub8  = wavelet.Daub8
	Daub10 = wavelet.Daub10
	Daub12 = wavelet.Daub12
	Daub16 = wavelet.Daub16
	Daub20 = wavelet.Daub20
	LA8    = wavelet.LA8
	LA16   = wavelet.LA16
)

// ParseWavelet maps a conventional wavelet name ("haar", "db2" …
// "db10", "la8", "la16"; case-insensitive) to its WaveletKind, and
// errors on unknown names. WaveletNames lists the accepted set in the
// same spelling, for building help text.
func ParseWavelet(name string) (WaveletKind, error) { return wavelet.ParseKind(name) }

// WaveletNames returns the canonical names accepted by ParseWavelet.
func WaveletNames() []string { return wavelet.KindNames() }

// Detect runs RobustPeriod on y and returns the detected period
// lengths in ascending order (empty when the series is aperiodic).
// opts may be nil for defaults.
func Detect(y []float64, opts *Options) ([]int, error) {
	res, err := DetectDetails(y, opts)
	if err != nil {
		return nil, err
	}
	return res.Periods, nil
}

// DetectDetails runs RobustPeriod and returns the full result,
// including per-level wavelet variances, hybrid Huber-periodograms,
// Huber-ACFs and the Fisher-test verdicts (the paper's Fig. 5).
func DetectDetails(y []float64, opts *Options) (*Result, error) {
	return DetectDetailsContext(context.Background(), y, opts)
}

// DetectContext is Detect with cooperative cancellation: when ctx is
// cancelled or its deadline passes, detection aborts between pipeline
// stages and inside the per-frequency robust regressions, returning
// ctx.Err() (context.Canceled or context.DeadlineExceeded) promptly
// instead of finishing the periodogram work. Intended for serving
// contexts where an abandoned request must stop burning CPU.
func DetectContext(ctx context.Context, y []float64, opts *Options) ([]int, error) {
	res, err := DetectDetailsContext(ctx, y, opts)
	if err != nil {
		return nil, err
	}
	return res.Periods, nil
}

// DetectDetailsContext is DetectDetails with cooperative cancellation;
// see DetectContext.
func DetectDetailsContext(ctx context.Context, y []float64, opts *Options) (*Result, error) {
	var o Options
	if opts != nil {
		o = *opts
	}
	return core.DetectContext(ctx, y, o)
}

// Trace collects per-stage observability data from one or more
// detections: wall time, heap-allocation counts and stage-specific
// diagnostics (HP-filter IRLS iterations, MODWT boundary
// coefficients, per-frequency solver iteration totals, Fisher/ACF
// accept–reject tallies). Create one with NewTrace, set it on
// Options.Trace, run a detection, and read Result.Trace (or call
// Summary on the trace directly). A nil Trace costs nothing.
type Trace = trace.Trace

// NewTrace returns an empty Trace whose total-time clock starts now.
func NewTrace() *Trace { return trace.New() }

// TraceSummary is the finished per-stage view of a Trace; returned in
// Result.Trace after a traced detection.
type TraceSummary = trace.Summary

// TraceStage is one merged stage record of a TraceSummary.
type TraceStage = trace.Stage

// TraceLevel records one wavelet level's verdict trail in a
// TraceSummary.
type TraceLevel = trace.LevelOutcome

// Canonical pipeline stage names appearing in a TraceSummary, in
// execution order (the paper's Fig. 1).
const (
	StageHPFilter    = trace.StageHPFilter
	StageMODWT       = trace.StageMODWT
	StageRanking     = trace.StageRanking
	StagePeriodogram = trace.StagePeriodogram
	StageValidation  = trace.StageValidation
)

// PipelineStages lists the canonical stage names in pipeline order.
func PipelineStages() []string { return trace.PipelineStages() }

// Degradation records one graceful-degradation event of a detection:
// the pipeline substituted a cheaper or more conservative step instead
// of failing. Result.Degraded lists them; an empty list means a clean
// full-quality run.
type Degradation = core.Degradation

// Degradation reasons appearing in Result.Degraded.
const (
	ReasonConstantSeries     = core.ReasonConstantSeries
	ReasonTrendResidue       = core.ReasonTrendResidue
	ReasonScalingBandResidue = core.ReasonScalingBandResidue
	ReasonHPRobustFallback   = core.ReasonHPRobustFallback
	ReasonMODWTFailed        = core.ReasonMODWTFailed
	ReasonLevelFailed        = core.ReasonLevelFailed
	ReasonLevelPanic         = core.ReasonLevelPanic
	ReasonBudgetExceeded     = detect.ReasonBudgetExceeded
	ReasonSolverFailed       = detect.ReasonSolverFailed
)

// Sentinel errors for structurally invalid input; match with
// errors.Is. ErrNonFinite covers Inf always and NaN unless
// Options.FillMissing is set; ErrTooManyMissing covers series more
// than half NaN, which interpolation cannot honestly repair.
var (
	ErrNonFinite      = core.ErrNonFinite
	ErrTooManyMissing = core.ErrTooManyMissing
)

// SingleResult reports a standalone single-periodicity detection.
type SingleResult = detect.Result

// MinSingleLen is the shortest series DetectSingle accepts: the
// detector needs a handful of spectral bins for Fisher's test and at
// least two observable repetitions of any reportable period.
const MinSingleLen = 8

// DetectSingle runs the robust single-period detector directly on a
// series without the wavelet decomposition — useful when at most one
// periodicity is expected. The robust periodogram is evaluated on the
// entire usable frequency band. Series shorter than MinSingleLen
// samples are rejected with a clear error rather than handed to the
// spectral machinery.
func DetectSingle(y []float64, opts *Options) (SingleResult, error) {
	if len(y) < MinSingleLen {
		return SingleResult{}, fmt.Errorf(
			"robustperiod: DetectSingle needs at least %d samples, got %d", MinSingleLen, len(y))
	}
	var o Options
	if opts != nil {
		o = *opts
	}
	cfg := o.Detect
	if o.NonRobust {
		cfg.MPOpts.Loss = spectrum.LossL2
	}
	if o.StageBudget > 0 {
		cfg.Budget = o.StageBudget
	}
	return detect.Single(y, 1, len(y)-1, cfg)
}
