package anomaly

import (
	"math"
	"math/rand"
	"testing"
)

func periodicSeries(n, period int, noise float64, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	x := make([]float64, n)
	for i := range x {
		x[i] = 10 + 3*math.Sin(2*math.Pi*float64(i)/float64(period)) + noise*rng.NormFloat64()
	}
	return x
}

func TestDetectFindsInjectedSpikes(t *testing.T) {
	x := periodicSeries(1000, 50, 0.2, 1)
	injected := []int{123, 456, 789}
	for _, i := range injected {
		x[i] += 15
	}
	res, err := Detect(x, []int{50}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	found := map[int]bool{}
	for _, a := range res.Anomalies {
		found[a.Index] = true
		if a.Score <= 4 {
			t.Errorf("flagged point with score %v <= threshold", a.Score)
		}
	}
	for _, i := range injected {
		if !found[i] {
			t.Errorf("missed injected anomaly at %d", i)
		}
	}
	// False positives should be rare: at threshold 4, well under 1%.
	if extras := len(res.Anomalies) - len(injected); extras > 5 {
		t.Errorf("%d extra anomalies flagged", extras)
	}
}

func TestDetectDipAnomalies(t *testing.T) {
	x := periodicSeries(800, 40, 0.2, 2)
	x[400] -= 12 // a dip, not a spike
	res, err := Detect(x, []int{40}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, a := range res.Anomalies {
		if a.Index == 400 {
			found = true
			if a.Value >= a.Expected {
				t.Error("dip should sit below its expectation")
			}
		}
	}
	if !found {
		t.Error("dip not detected")
	}
}

func TestDetectCleanSeriesQuiet(t *testing.T) {
	x := periodicSeries(1000, 50, 0.3, 3)
	res, err := Detect(x, []int{50}, Options{Threshold: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Anomalies) > 2 {
		t.Errorf("%d anomalies on clean data", len(res.Anomalies))
	}
}

func TestDetectExpectedValueAccuracy(t *testing.T) {
	x := periodicSeries(1000, 50, 0.1, 4)
	x[500] += 20
	res, err := Detect(x, []int{50}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range res.Anomalies {
		if a.Index != 500 {
			continue
		}
		truth := 10 + 3*math.Sin(2*math.Pi*500.0/50)
		if math.Abs(a.Expected-truth) > 0.5 {
			t.Errorf("expected value %v, truth %v", a.Expected, truth)
		}
	}
}

func TestDetectThresholdMonotone(t *testing.T) {
	x := periodicSeries(1000, 50, 0.3, 5)
	rng := rand.New(rand.NewSource(6))
	for k := 0; k < 10; k++ {
		x[rng.Intn(len(x))] += 8
	}
	lo, err := Detect(x, []int{50}, Options{Threshold: 3})
	if err != nil {
		t.Fatal(err)
	}
	hi, err := Detect(x, []int{50}, Options{Threshold: 6})
	if err != nil {
		t.Fatal(err)
	}
	if len(hi.Anomalies) > len(lo.Anomalies) {
		t.Errorf("higher threshold found more anomalies (%d > %d)",
			len(hi.Anomalies), len(lo.Anomalies))
	}
}

func TestDetectErrorPropagation(t *testing.T) {
	if _, err := Detect(make([]float64, 4), []int{2}, Options{}); err == nil {
		t.Error("expected error from decomposition")
	}
}

func TestDetectZeroScale(t *testing.T) {
	// A perfectly periodic series decomposes exactly; scale is 0 and
	// no anomalies can be scored.
	x := make([]float64, 200)
	for i := range x {
		x[i] = math.Sin(2 * math.Pi * float64(i) / 20)
	}
	res, err := Detect(x, []int{20}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Scale != 0 && len(res.Anomalies) > 0 {
		// Tiny numerical remainder is fine; only fail on misbehaviour.
		for _, a := range res.Anomalies {
			t.Errorf("anomaly on perfect series at %d score %v", a.Index, a.Score)
		}
	}
}

func BenchmarkDetect(b *testing.B) {
	x := periodicSeries(2000, 50, 0.3, 7)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Detect(x, []int{50}, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}
