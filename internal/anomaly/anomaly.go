// Package anomaly implements residual-based anomaly detection for
// periodic time series — the monitoring application that motivates
// RobustPeriod's deployment (workload anomaly detection for cloud
// databases). The series is decomposed into trend + seasonal
// components using its detected periods; points whose remainder
// deviates by more than Threshold robust standard deviations (MADN of
// the remainder) are flagged.
package anomaly

import (
	"fmt"
	"math"

	"robustperiod/internal/decompose"
	"robustperiod/internal/stat/robust"
)

// Point is one flagged anomaly.
type Point struct {
	Index    int
	Value    float64 // observed value
	Expected float64 // trend + seasonal reconstruction at Index
	Score    float64 // |remainder| / MADN(remainder), > Threshold
}

// Options tunes detection.
type Options struct {
	// Threshold in robust standard deviations; <= 0 means 4.
	Threshold float64
	// MinDeviation is an absolute floor expressed as a fraction of the
	// raw series' robust scale: a point is only anomalous if its
	// remainder also exceeds MinDeviation·MADN(y). This keeps
	// numerically-perfect decompositions (remainder scale ≈ 0) from
	// flagging microscopic filter residue. <= 0 means 0.02.
	MinDeviation float64
	// Decompose is passed through to the underlying decomposition.
	Decompose decompose.Options
}

// Result carries the flagged anomalies and the decomposition they were
// scored against.
type Result struct {
	Anomalies     []Point
	Decomposition *decompose.Result
	Scale         float64 // MADN of the remainder
}

// Detect flags anomalies in y given its period lengths (pass the
// output of the robustperiod detector; an empty period list reduces to
// trend-residual thresholding).
func Detect(y []float64, periods []int, opts Options) (*Result, error) {
	threshold := opts.Threshold
	if threshold <= 0 {
		threshold = 4
	}
	minDev := opts.MinDeviation
	if minDev <= 0 {
		minDev = 0.02
	}
	dec, err := decompose.Decompose(y, periods, opts.Decompose)
	if err != nil {
		return nil, fmt.Errorf("anomaly: %w", err)
	}
	scale := robust.MADN(dec.Remainder)
	if scale == 0 {
		// Perfectly explained series: any non-zero remainder is anomalous,
		// but with no scale there is nothing to normalize by.
		return &Result{Decomposition: dec, Scale: 0}, nil
	}
	floor := minDev * robust.MADN(y)
	res := &Result{Decomposition: dec, Scale: scale}
	for i, r := range dec.Remainder {
		score := math.Abs(r) / scale
		if score > threshold && math.Abs(r) > floor {
			res.Anomalies = append(res.Anomalies, Point{
				Index:    i,
				Value:    y[i],
				Expected: y[i] - r,
				Score:    score,
			})
		}
	}
	return res, nil
}
