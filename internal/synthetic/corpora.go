package synthetic

import (
	"fmt"
	"math"
	"math/rand"
)

// Labeled pairs a generated series with its ground-truth periods.
type Labeled struct {
	Name  string
	X     []float64
	Truth []int
}

// SinCorpus generates the paper's Table 1/2 synthetic collections:
// count series of length n with the given shape, true periods, noise
// variance and outlier ratio.
func SinCorpus(count, n int, shape WaveShape, periods []int, sigma2, eta float64, seed int64) []Labeled {
	out := make([]Labeled, count)
	for i := range out {
		cfg := PaperConfig(n, shape, periods, sigma2, eta, seed+int64(i)*7919)
		out[i] = Labeled{
			Name:  fmt.Sprintf("%s-%d", shape, i),
			X:     Generate(cfg),
			Truth: append([]int(nil), periods...),
		}
	}
	return out
}

// CRANCorpus surrogates the 82-series CRAN single-period collection
// used in Table 1: real-world-like series with lengths in [16, 3024]
// and period lengths in [2, 52], mixing waveform shapes, trend
// strength, noise levels and a deliberately hard subset (the published
// corpus yields only ~0.44–0.61 precision for every method).
func CRANCorpus(seed int64) []Labeled {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Labeled, 0, 82)
	for i := 0; i < 82; i++ {
		period := 2 + rng.Intn(51) // [2, 52]
		// Lengths follow the published spread: many short series, a
		// few long ones, always at least ~3 cycles when possible.
		var n int
		switch {
		case i%7 == 0:
			n = 16 + rng.Intn(48)
		case i%7 < 4:
			n = 64 + rng.Intn(200)
		default:
			n = 300 + rng.Intn(2724)
		}
		if n < 3*period {
			n = 3*period + rng.Intn(2*period+1)
		}
		shape := WaveShape(rng.Intn(3))
		amp := 1.0
		noise := 0.05 + rng.Float64()*0.3
		trend := 0.0
		if rng.Float64() < 0.5 {
			trend = rng.Float64() * 5
		}
		// Hard subset: ~40% of series get noise comparable to signal,
		// mimicking the messy real-world members of the corpus.
		if rng.Float64() < 0.4 {
			noise = 0.8 + rng.Float64()*1.5
		}
		cfg := Config{
			N: n,
			Components: []Component{{
				Shape: shape, Period: float64(period), Amplitude: amp, Phase: math.NaN(),
			}},
			TrendLinearSlope: trend,
			NoiseSigma2:      noise,
			OutlierRate:      0.01,
			OutlierMag:       6,
			Seed:             seed + int64(i)*104729,
		}
		out = append(out, Labeled{
			Name:  fmt.Sprintf("cran-%02d", i),
			X:     Generate(cfg),
			Truth: []int{period},
		})
	}
	return out
}

// YahooA3Corpus surrogates the Yahoo Webscope S5 A3 benchmark used in
// Table 2: count series of 1680 points carrying the three interlaced
// periods 12, 24 and 168 with moderate noise and sparse outliers.
func YahooA3Corpus(count int, seed int64) []Labeled {
	return yahooCorpus(count, seed, false)
}

// YahooA4Corpus surrogates Yahoo A4, which adds changepoints and trend
// on top of A3's three seasonalities, making it strictly harder.
func YahooA4Corpus(count int, seed int64) []Labeled {
	return yahooCorpus(count, seed, true)
}

func yahooCorpus(count int, seed int64, changepoints bool) []Labeled {
	out := make([]Labeled, count)
	name := "yahooA3"
	if changepoints {
		name = "yahooA4"
	}
	for i := range out {
		rng := rand.New(rand.NewSource(seed + int64(i)*6007))
		cfg := Config{
			N: 1680,
			Components: []Component{
				{Shape: Sine, Period: 12, Amplitude: 0.6 + rng.Float64()*0.6, Phase: math.NaN()},
				{Shape: Sine, Period: 24, Amplitude: 0.8 + rng.Float64()*0.8, Phase: math.NaN()},
				{Shape: Sine, Period: 168, Amplitude: 1.0 + rng.Float64()*1.2, Phase: math.NaN()},
			},
			NoiseSigma2: 0.15 + rng.Float64()*0.2,
			OutlierRate: 0.01,
			OutlierMag:  8,
			Seed:        seed + int64(i)*6007 + 1,
		}
		if changepoints {
			cfg.TrendLinearSlope = (rng.Float64() - 0.5) * 8
			cfg.TrendSteps = []Step{
				{At: 400 + rng.Intn(400), Delta: (rng.Float64() - 0.5) * 6},
				{At: 900 + rng.Intn(500), Delta: (rng.Float64() - 0.5) * 6},
			}
			cfg.OutlierRate = 0.02
		}
		out[i] = Labeled{
			Name:  fmt.Sprintf("%s-%03d", name, i),
			X:     Generate(cfg),
			Truth: []int{12, 24, 168},
		}
	}
	return out
}

// RetailCorpus generates the paper's §1 motivating scenario: daily
// sales of an online retailer with weekly seasonality whose level
// "changes dramatically when big promotion happens such as black
// Friday". Each series covers two years of daily data (period 7, with
// a yearly envelope), plus a handful of multi-day promotion bursts an
// order of magnitude above the baseline.
func RetailCorpus(count int, seed int64) []Labeled {
	out := make([]Labeled, count)
	for i := range out {
		rng := rand.New(rand.NewSource(seed + int64(i)*7793))
		n := 730
		x := make([]float64, n)
		for t := 0; t < n; t++ {
			weekly := math.Sin(2*math.Pi*float64(t)/7 + 0.4)
			// Slow annual envelope modulating demand.
			annual := 1 + 0.3*math.Sin(2*math.Pi*float64(t)/365)
			x[t] = 100*annual + 25*weekly*annual + 6*rng.NormFloat64()
		}
		// Promotion bursts: 2-4 events of 2-5 days at 5-10× the swing.
		events := 2 + rng.Intn(3)
		for e := 0; e < events; e++ {
			start := rng.Intn(n - 6)
			dur := 2 + rng.Intn(4)
			lift := 150 + rng.Float64()*250
			for t := start; t < start+dur && t < n; t++ {
				x[t] += lift
			}
		}
		out[i] = Labeled{
			Name:  fmt.Sprintf("retail-%02d", i),
			X:     x,
			Truth: []int{7},
		}
	}
	return out
}

// Cloud monitoring surrogates (Fig. 4 / Table 4). Each mimics the
// stated length, true period(s), and pathologies of one panel.

// CloudData1 surrogates "Database Job RT" (N=4000, T=720): a daily
// pattern with sharp load peaks, heavy right-skewed spikes and noise.
func CloudData1(seed int64) Labeled {
	rng := rand.New(rand.NewSource(seed))
	n := 4000
	x := make([]float64, n)
	for i := range x {
		pos := math.Mod(float64(i), 720) / 720
		// Sharp asymmetric daily peak plus a broad base wave.
		base := math.Sin(2 * math.Pi * pos)
		peak := math.Exp(-math.Pow((pos-0.3)/0.05, 2)) * 4
		x[i] = 2*base + peak + 0.4*rng.NormFloat64()
		if rng.Float64() < 0.03 {
			x[i] += rng.Float64() * 12 // response-time spikes are one-sided
		}
	}
	return Labeled{Name: "cloud1-db-rt", X: x, Truth: []int{720}}
}

// CloudData2 surrogates "File Exchange Count" (N=4000, T=288): a
// near-flat baseline with a modest periodic swing and deep outage dips.
func CloudData2(seed int64) Labeled {
	rng := rand.New(rand.NewSource(seed))
	n := 4000
	x := make([]float64, n)
	for i := range x {
		pos := float64(i) / 288
		x[i] = 100 + 3*math.Sin(2*math.Pi*pos) + 0.8*rng.NormFloat64()
		if rng.Float64() < 0.01 {
			x[i] -= 10 + rng.Float64()*25 // dips
		}
	}
	// One sustained outage block.
	start := 1500 + rng.Intn(500)
	for i := start; i < start+40 && i < n; i++ {
		x[i] -= 30
	}
	return Labeled{Name: "cloud2-file-exchange", X: x, Truth: []int{288}}
}

// CloudData3 surrogates "Flink Job TPS" (N=1000, T=144): a clean daily
// throughput wave with bursty noise and occasional zero-drops.
func CloudData3(seed int64) Labeled {
	rng := rand.New(rand.NewSource(seed))
	n := 1000
	x := make([]float64, n)
	for i := range x {
		pos := float64(i) / 144
		level := 20 + 12*math.Sin(2*math.Pi*pos) + 4*math.Sin(4*math.Pi*pos+1)
		x[i] = level + 1.5*rng.NormFloat64()
		if rng.Float64() < 0.01 {
			x[i] = rng.Float64() * 3 // drop to ~0
		}
	}
	return Labeled{Name: "cloud3-flink-tps", X: x, Truth: []int{144}}
}

// CloudData4 surrogates "Execution Job Count" (N=1000, T = 24 and
// 168): hourly samples with daily and weekly periodicity.
func CloudData4(seed int64) Labeled {
	rng := rand.New(rand.NewSource(seed))
	n := 1000
	x := make([]float64, n)
	for i := range x {
		daily := math.Sin(2 * math.Pi * float64(i) / 24)
		weekly := math.Sin(2*math.Pi*float64(i)/168 + 0.7)
		x[i] = 300 + 120*daily + 180*weekly + 25*rng.NormFloat64()
		if rng.Float64() < 0.015 {
			x[i] += rng.Float64() * 400
		}
		if x[i] < 0 {
			x[i] = 0
		}
	}
	return Labeled{Name: "cloud4-job-count", X: x, Truth: []int{24, 168}}
}

// CloudData5 surrogates "CPU Usage, 10.5% missing" (N=7000, T=1440):
// minute-level CPU utilisation with a daily cycle, noise, outliers and
// 10.5% block-missing samples refilled by linear interpolation.
func CloudData5(seed int64) Labeled {
	return cloudCPU(seed, 0.105, "cloud5-cpu-miss10")
}

// CloudData6 surrogates "CPU Usage, 20.5% missing" (N=7000, T=1440).
func CloudData6(seed int64) Labeled {
	return cloudCPU(seed, 0.205, "cloud6-cpu-miss20")
}

func cloudCPU(seed int64, missFrac float64, name string) Labeled {
	rng := rand.New(rand.NewSource(seed))
	n := 7000
	x := make([]float64, n)
	for i := range x {
		frac := math.Mod(float64(i), 1440) / 1440
		// Business-hours hump: an asymmetric but strictly 1440-periodic
		// daily shape (harmonics are phase-locked to the fundamental).
		usage := 0.25 + 0.45*math.Exp(-math.Pow((frac-0.45)/0.22, 2))
		usage += 0.05 * rng.NormFloat64()
		if rng.Float64() < 0.02 {
			usage += rng.Float64() * 0.4
		}
		x[i] = math.Max(0, math.Min(1, usage))
	}
	filled, _ := BlockMissing(x, missFrac, 120, seed+99)
	return Labeled{Name: name, X: filled, Truth: []int{1440}}
}

// CloudAll returns the six cloud surrogates in paper order.
func CloudAll(seed int64) []Labeled {
	return []Labeled{
		CloudData1(seed + 1), CloudData2(seed + 2), CloudData3(seed + 3),
		CloudData4(seed + 4), CloudData5(seed + 5), CloudData6(seed + 6),
	}
}
