package synthetic

import (
	"math"
	"testing"
	"testing/quick"
)

func TestGenerateDeterministic(t *testing.T) {
	cfg := PaperConfig(500, Sine, []int{20, 50}, 0.5, 0.05, 42)
	a := Generate(cfg)
	b := Generate(cfg)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed must reproduce the series")
		}
	}
	cfg2 := cfg
	cfg2.Seed = 43
	c := Generate(cfg2)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds should differ")
	}
}

func TestGenerateCleanSineProperties(t *testing.T) {
	cfg := Config{
		N:          200,
		Components: []Component{{Shape: Sine, Period: 40, Amplitude: 2, Phase: 0}},
	}
	x := Generate(cfg)
	// Exact periodic repetition.
	for i := 0; i+40 < len(x); i++ {
		if math.Abs(x[i]-x[i+40]) > 1e-9 {
			t.Fatalf("sine not periodic at %d", i)
		}
	}
	// Amplitude respected.
	max := 0.0
	for _, v := range x {
		if math.Abs(v) > max {
			max = math.Abs(v)
		}
	}
	if max > 2+1e-9 || max < 1.9 {
		t.Errorf("max amplitude %v, want ~2", max)
	}
}

func TestSquareAndTriangleShapes(t *testing.T) {
	sq := Generate(Config{N: 100, Components: []Component{{Shape: Square, Period: 20, Amplitude: 1, Phase: 0}}})
	// Square: only ±1 values.
	for i, v := range sq {
		if math.Abs(math.Abs(v)-1) > 1e-12 {
			t.Fatalf("square value %v at %d", v, i)
		}
	}
	// Period check.
	for i := 0; i+20 < len(sq); i++ {
		if sq[i] != sq[i+20] {
			t.Fatal("square not periodic")
		}
	}
	tr := Generate(Config{N: 100, Components: []Component{{Shape: Triangle, Period: 20, Amplitude: 1, Phase: 0}}})
	for i := 0; i+20 < len(tr); i++ {
		if math.Abs(tr[i]-tr[i+20]) > 1e-9 {
			t.Fatal("triangle not periodic")
		}
	}
	// Triangle range is [−1, 1] and hits both extremes.
	lo, hi := 1.0, -1.0
	for _, v := range tr {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	if lo > -0.95 || hi < 0.95 {
		t.Errorf("triangle range [%v,%v]", lo, hi)
	}
}

func TestSawtoothAndPulseShapes(t *testing.T) {
	saw := Generate(Config{N: 100, Components: []Component{{Shape: Sawtooth, Period: 20, Amplitude: 1, Phase: 0}}})
	for i := 0; i+20 < len(saw); i++ {
		if math.Abs(saw[i]-saw[i+20]) > 1e-9 {
			t.Fatal("sawtooth not periodic")
		}
	}
	// Ramps from −1 toward +1 within a cycle.
	if saw[0] != -1 || saw[19] <= saw[1] {
		t.Errorf("sawtooth ramp wrong: %v ... %v", saw[0], saw[19])
	}
	pulse := Generate(Config{N: 100, Components: []Component{{Shape: Pulse, Period: 20, Amplitude: 1, Phase: 0}}})
	for i := 0; i+20 < len(pulse); i++ {
		if pulse[i] != pulse[i+20] {
			t.Fatal("pulse not periodic")
		}
	}
	// ~10% high samples per cycle, zero mean over a cycle.
	high := 0
	sum := 0.0
	for i := 0; i < 20; i++ {
		if pulse[i] > 0 {
			high++
		}
		sum += pulse[i]
	}
	if high != 2 {
		t.Errorf("pulse duty cycle: %d/20 high", high)
	}
	if math.Abs(sum) > 1e-9 {
		t.Errorf("pulse cycle mean %v, want 0", sum)
	}
	if Sawtooth.String() != "sawtooth" || Pulse.String() != "pulse" {
		t.Error("names wrong")
	}
}

func TestTrendComponents(t *testing.T) {
	x := Generate(Config{N: 100, TrendTriangleAmp: 10})
	if math.Abs(x[0]) > 0.3 || math.Abs(x[50]-10) > 0.3 {
		t.Errorf("triangle trend wrong: x[0]=%v x[50]=%v", x[0], x[50])
	}
	y := Generate(Config{N: 100, TrendLinearSlope: 5})
	if math.Abs(y[99]-5*99.0/100) > 1e-9 || y[0] != 0 {
		t.Errorf("linear trend wrong: %v %v", y[0], y[99])
	}
	z := Generate(Config{N: 100, TrendSteps: []Step{{At: 50, Delta: 3}}})
	if z[49] != 0 || z[50] != 3 || z[99] != 3 {
		t.Errorf("step trend wrong: %v %v %v", z[49], z[50], z[99])
	}
}

func TestNoiseVariance(t *testing.T) {
	x := Generate(Config{N: 100000, NoiseSigma2: 2, Seed: 7})
	var s, ss float64
	for _, v := range x {
		s += v
		ss += v * v
	}
	mean := s / float64(len(x))
	varv := ss/float64(len(x)) - mean*mean
	if math.Abs(varv-2) > 0.08 {
		t.Errorf("noise variance %v, want ~2", varv)
	}
}

func TestOutlierRate(t *testing.T) {
	x := Generate(Config{N: 50000, OutlierRate: 0.1, OutlierMag: 10, Seed: 8})
	count := 0
	for _, v := range x {
		if v != 0 {
			count++
		}
	}
	rate := float64(count) / float64(len(x))
	if math.Abs(rate-0.1) > 0.01 {
		t.Errorf("outlier rate %v, want ~0.1", rate)
	}
}

func TestBlockMissing(t *testing.T) {
	x := make([]float64, 1000)
	for i := range x {
		x[i] = float64(i % 50)
	}
	filled, mask := BlockMissing(x, 0.2, 30, 9)
	missing := 0
	for _, m := range mask {
		if m {
			missing++
		}
	}
	if missing < 150 || missing > 300 {
		t.Errorf("missing count %d, want ≈200", missing)
	}
	// No NaNs, interpolation bounded by neighbours' range.
	for i, v := range filled {
		if math.IsNaN(v) {
			t.Fatalf("NaN at %d", i)
		}
		if v < -0.001 || v > 49.001 {
			t.Fatalf("interpolated value %v out of range at %d", v, i)
		}
	}
	// Non-missing entries unchanged.
	for i := range x {
		if !mask[i] && filled[i] != x[i] {
			t.Fatalf("surviving sample modified at %d", i)
		}
	}
}

func TestBlockMissingEdges(t *testing.T) {
	x := []float64{1, 2, 3}
	out, mask := BlockMissing(x, 0, 10, 1)
	for i := range x {
		if out[i] != x[i] || mask[i] {
			t.Fatal("frac=0 must be identity")
		}
	}
	// Interpolation at series edges: force-missing via interpolate.
	y := []float64{0, 0, 5, 0, 0}
	m := []bool{true, true, false, true, true}
	interpolate(y, m)
	for _, v := range y {
		if v != 5 {
			t.Fatalf("edge extension wrong: %v", y)
		}
	}
}

func TestCRANCorpusShape(t *testing.T) {
	corpus := CRANCorpus(1)
	if len(corpus) != 82 {
		t.Fatalf("%d series, want 82", len(corpus))
	}
	for _, s := range corpus {
		if len(s.Truth) != 1 {
			t.Fatalf("%s: single-period corpus must have 1 truth", s.Name)
		}
		p := s.Truth[0]
		if p < 2 || p > 52 {
			t.Errorf("%s: period %d outside [2,52]", s.Name, p)
		}
		if len(s.X) < 16 || len(s.X) > 3200 {
			t.Errorf("%s: length %d outside published range", s.Name, len(s.X))
		}
		if len(s.X) < 2*p {
			t.Errorf("%s: fewer than 2 cycles (n=%d, T=%d)", s.Name, len(s.X), p)
		}
	}
}

func TestYahooCorpora(t *testing.T) {
	for _, c := range [][]Labeled{YahooA3Corpus(5, 2), YahooA4Corpus(5, 3)} {
		if len(c) != 5 {
			t.Fatal("count ignored")
		}
		for _, s := range c {
			if len(s.X) != 1680 {
				t.Errorf("%s: length %d, want 1680", s.Name, len(s.X))
			}
			if len(s.Truth) != 3 || s.Truth[0] != 12 || s.Truth[1] != 24 || s.Truth[2] != 168 {
				t.Errorf("%s: truth %v", s.Name, s.Truth)
			}
		}
	}
}

func TestCloudSurrogates(t *testing.T) {
	all := CloudAll(7)
	if len(all) != 6 {
		t.Fatal("want 6 datasets")
	}
	wantN := []int{4000, 4000, 1000, 1000, 7000, 7000}
	wantT := [][]int{{720}, {288}, {144}, {24, 168}, {1440}, {1440}}
	for i, s := range all {
		if len(s.X) != wantN[i] {
			t.Errorf("%s: n=%d want %d", s.Name, len(s.X), wantN[i])
		}
		if len(s.Truth) != len(wantT[i]) {
			t.Errorf("%s: truth %v want %v", s.Name, s.Truth, wantT[i])
		}
		for j := range s.Truth {
			if s.Truth[j] != wantT[i][j] {
				t.Errorf("%s: truth %v want %v", s.Name, s.Truth, wantT[i])
			}
		}
		for j, v := range s.X {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("%s: bad value at %d", s.Name, j)
			}
		}
	}
	// CPU usage stays in [0, 1] even after interpolation.
	for _, s := range all[4:] {
		for i, v := range s.X {
			if v < -1e-9 || v > 1+1e-9 {
				t.Errorf("%s: CPU usage %v out of [0,1] at %d", s.Name, v, i)
			}
		}
	}
}

func TestRetailCorpus(t *testing.T) {
	c := RetailCorpus(8, 5)
	if len(c) != 8 {
		t.Fatal("count")
	}
	for _, s := range c {
		if len(s.X) != 730 || len(s.Truth) != 1 || s.Truth[0] != 7 {
			t.Fatalf("%s: shape wrong", s.Name)
		}
		// Sales are positive and have visible promotion spikes.
		maxV, minV := s.X[0], s.X[0]
		for _, v := range s.X {
			maxV = math.Max(maxV, v)
			minV = math.Min(minV, v)
		}
		if minV < 0 {
			t.Errorf("%s: negative sales %v", s.Name, minV)
		}
		if maxV < 250 {
			t.Errorf("%s: no promotion burst visible (max %v)", s.Name, maxV)
		}
	}
}

func TestSinCorpus(t *testing.T) {
	c := SinCorpus(10, 500, Square, []int{20, 50}, 0.1, 0.01, 11)
	if len(c) != 10 {
		t.Fatal("count")
	}
	seen := map[string]bool{}
	for _, s := range c {
		if seen[s.Name] {
			t.Error("duplicate name")
		}
		seen[s.Name] = true
		if len(s.X) != 500 || len(s.Truth) != 2 {
			t.Error("shape wrong")
		}
	}
	// Distinct seeds → distinct series.
	if c[0].X[0] == c[1].X[0] && c[0].X[1] == c[1].X[1] && c[0].X[2] == c[1].X[2] {
		t.Error("series look identical across corpus members")
	}
}

func TestWaveShapeString(t *testing.T) {
	if Sine.String() != "sine" || Square.String() != "square" || Triangle.String() != "triangle" {
		t.Error("strings wrong")
	}
}

// Property: interpolate never produces values outside the convex hull
// of the surviving samples.
func TestInterpolateBoundedProperty(t *testing.T) {
	f := func(seedRaw uint16, fracRaw uint8) bool {
		seed := int64(seedRaw)
		frac := float64(fracRaw%60) / 100
		x := Generate(Config{N: 300, Components: []Component{{Shape: Sine, Period: 30, Amplitude: 1, Phase: 0}}, NoiseSigma2: 0.1, Seed: seed})
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, v := range x {
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
		filled, _ := BlockMissing(x, frac, 20, seed)
		for _, v := range filled {
			if v < lo-1e-9 || v > hi+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
