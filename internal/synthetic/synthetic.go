// Package synthetic generates every workload of the paper's
// evaluation: the Fig. 3a multi-periodic synthetic series (sinusoidal,
// square and triangle waves with trend, noise and outliers), and
// surrogate corpora standing in for datasets we cannot ship — the CRAN
// single-period collection, the Yahoo Webscope S5 A3/A4 multi-period
// sets, and the six Alibaba cloud-monitoring series of Fig. 4
// (including the block-missing CPU-usage pair). All generators are
// fully deterministic given a seed.
package synthetic

import (
	"math"
	"math/rand"
)

// WaveShape selects the base periodic waveform.
type WaveShape int

// Supported waveforms. The paper evaluates sinusoidal waves plus
// square and triangle waves as harder non-sinusoidal cases (§4.1.2);
// sawtooth and pulse trains extend the bench to the remaining classic
// shapes (ramped load patterns and cron-style activity spikes).
const (
	Sine WaveShape = iota
	Square
	Triangle
	Sawtooth
	Pulse
)

func (w WaveShape) String() string {
	switch w {
	case Sine:
		return "sine"
	case Square:
		return "square"
	case Triangle:
		return "triangle"
	case Sawtooth:
		return "sawtooth"
	case Pulse:
		return "pulse"
	default:
		return "wave?"
	}
}

// Component is one periodic component of a generated series.
type Component struct {
	Shape     WaveShape
	Period    float64
	Amplitude float64
	Phase     float64 // radians; NaN means "randomize from the seed"
}

// Step is an abrupt trend level shift at a given index.
type Step struct {
	At    int
	Delta float64
}

// Config describes a synthetic series.
type Config struct {
	N          int
	Components []Component

	// TrendTriangleAmp adds the paper's triangle trend (0→amp→0 over
	// the series).
	TrendTriangleAmp float64
	// TrendLinearSlope adds slope·t/N · N = slope per full series.
	TrendLinearSlope float64
	// TrendSteps adds abrupt level shifts (changing-trend scenarios).
	TrendSteps []Step

	// NoiseSigma2 is the Gaussian noise variance σ²_n.
	NoiseSigma2 float64
	// OutlierRate is the per-sample spike probability η.
	OutlierRate float64
	// OutlierMag scales spike magnitudes (uniform in ±OutlierMag);
	// <= 0 with OutlierRate > 0 means 10, the paper's scale.
	OutlierMag float64

	Seed int64
}

// Generate renders the configured series.
func Generate(cfg Config) []float64 {
	rng := rand.New(rand.NewSource(cfg.Seed))
	x := make([]float64, cfg.N)
	for _, c := range cfg.Components {
		phase := c.Phase
		if math.IsNaN(phase) {
			phase = rng.Float64() * 2 * math.Pi
		}
		addWave(x, c.Shape, c.Period, c.Amplitude, phase)
	}
	if cfg.TrendTriangleAmp != 0 {
		for i := range x {
			frac := float64(i) / float64(cfg.N)
			x[i] += cfg.TrendTriangleAmp * (1 - math.Abs(2*frac-1))
		}
	}
	if cfg.TrendLinearSlope != 0 {
		for i := range x {
			x[i] += cfg.TrendLinearSlope * float64(i) / float64(cfg.N)
		}
	}
	for _, s := range cfg.TrendSteps {
		for i := s.At; i < cfg.N && i >= 0; i++ {
			x[i] += s.Delta
		}
	}
	if cfg.NoiseSigma2 > 0 {
		sd := math.Sqrt(cfg.NoiseSigma2)
		for i := range x {
			x[i] += sd * rng.NormFloat64()
		}
	}
	if cfg.OutlierRate > 0 {
		mag := cfg.OutlierMag
		if mag <= 0 {
			mag = 10
		}
		for i := range x {
			if rng.Float64() < cfg.OutlierRate {
				x[i] += (rng.Float64()*2 - 1) * mag
			}
		}
	}
	return x
}

// addWave accumulates one waveform into x. Phase is expressed in
// radians for all shapes (converted to a cycle offset for the
// piecewise shapes).
func addWave(x []float64, shape WaveShape, period, amp, phase float64) {
	if period <= 0 || amp == 0 {
		return
	}
	cycleOff := phase / (2 * math.Pi)
	for i := range x {
		pos := float64(i)/period + cycleOff
		frac := pos - math.Floor(pos)
		switch shape {
		case Sine:
			x[i] += amp * math.Sin(2*math.Pi*pos)
		case Square:
			if frac < 0.5 {
				x[i] += amp
			} else {
				x[i] -= amp
			}
		case Triangle:
			// 0→1→0→−1→0 over one cycle.
			x[i] += amp * (1 - 4*math.Abs(frac-0.5)) * -1
		case Sawtooth:
			// Linear ramp −1→1 with a reset each cycle.
			x[i] += amp * (2*frac - 1)
		case Pulse:
			// A short spike occupying the first 10% of the cycle
			// (cron-job style activity), zero-mean over one cycle.
			// The epsilon keeps the duty-cycle comparison consistent
			// across cycles when pos accumulates rounding error.
			if frac < 0.1-1e-12 {
				x[i] += amp * 0.9
			} else {
				x[i] -= amp * 0.1
			}
		}
	}
}

// PaperConfig returns the paper's Fig. 3a generator: waves with the
// given shape and periods (amplitude 1, random phases), triangle trend
// of amplitude 10, noise variance sigma2 and outlier ratio eta.
func PaperConfig(n int, shape WaveShape, periods []int, sigma2, eta float64, seed int64) Config {
	comps := make([]Component, len(periods))
	for i, p := range periods {
		comps[i] = Component{Shape: shape, Period: float64(p), Amplitude: 1, Phase: math.NaN()}
	}
	return Config{
		N:                n,
		Components:       comps,
		TrendTriangleAmp: 10,
		NoiseSigma2:      sigma2,
		OutlierRate:      eta,
		OutlierMag:       10,
		Seed:             seed,
	}
}

// BlockMissing knocks out random blocks totalling ≈frac of the series
// and refills them by linear interpolation, replicating the paper's
// treatment of the CPU-usage datasets ("linearly interpolated before
// sent to different periodicity detection algorithms"). It returns the
// interpolated series and the boolean missing mask.
func BlockMissing(x []float64, frac float64, blockLen int, seed int64) ([]float64, []bool) {
	n := len(x)
	out := append([]float64(nil), x...)
	mask := make([]bool, n)
	if frac <= 0 || blockLen < 1 || n == 0 {
		return out, mask
	}
	rng := rand.New(rand.NewSource(seed))
	target := int(frac * float64(n))
	missing := 0
	for attempts := 0; missing < target && attempts < 10*n; attempts++ {
		start := rng.Intn(n)
		for i := start; i < start+blockLen && i < n; i++ {
			if !mask[i] {
				mask[i] = true
				missing++
			}
		}
	}
	interpolate(out, mask)
	return out, mask
}

// InterpolateMasked fills masked runs linearly between their surviving
// neighbours (flat extension at the series edges), in place. Exposed
// for the public missing-data helper.
func InterpolateMasked(x []float64, mask []bool) { interpolate(x, mask) }

// interpolate fills masked runs linearly between their surviving
// neighbours (flat extension at the series edges).
func interpolate(x []float64, mask []bool) {
	n := len(x)
	i := 0
	for i < n {
		if !mask[i] {
			i++
			continue
		}
		start := i
		for i < n && mask[i] {
			i++
		}
		// Run is [start, i).
		var left, right float64
		haveLeft := start > 0
		haveRight := i < n
		if haveLeft {
			left = x[start-1]
		}
		if haveRight {
			right = x[i]
		}
		switch {
		case haveLeft && haveRight:
			run := float64(i - start + 1)
			for j := start; j < i; j++ {
				t := float64(j-start+1) / run
				x[j] = left + t*(right-left)
			}
		case haveLeft:
			for j := start; j < i; j++ {
				x[j] = left
			}
		case haveRight:
			for j := start; j < i; j++ {
				x[j] = right
			}
		}
	}
}
