package detect

import (
	"math"
	"math/rand"
	"testing"

	"robustperiod/internal/spectrum"
)

func sinusoid(n int, period float64) []float64 {
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Sin(2 * math.Pi * float64(i) / period)
	}
	return x
}

func corrupt(x []float64, sigma float64, spikes int, mag float64, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	out := append([]float64(nil), x...)
	for i := range out {
		out[i] += sigma * rng.NormFloat64()
	}
	for i := 0; i < spikes; i++ {
		out[rng.Intn(len(out))] += mag
	}
	return out
}

func fullBand(n int) (int, int) { return 1, n - 1 }

func TestFisherTestDetectsPeak(t *testing.T) {
	x := sinusoid(512, 64)
	p := spectrum.Periodogram(x)
	g, pv, kHat := FisherTest(p)
	if kHat != 8 { // 512/64
		t.Errorf("kHat = %d, want 8", kHat)
	}
	if pv > 1e-10 {
		t.Errorf("p-value %v too large for a pure sinusoid", pv)
	}
	if g < 0.9 {
		t.Errorf("g = %v, want near 1", g)
	}
}

func TestFisherTestWhiteNoiseNotSignificant(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	reject := 0
	trials := 200
	for tr := 0; tr < trials; tr++ {
		x := make([]float64, 256)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		_, pv, _ := FisherTest(spectrum.Periodogram(x))
		if pv < 0.05 {
			reject++
		}
	}
	// The test should hold its nominal level approximately.
	if reject > trials/10 {
		t.Errorf("rejected %d/%d at alpha=0.05", reject, trials)
	}
}

func TestFisherTestDegenerate(t *testing.T) {
	if _, pv, _ := FisherTest([]float64{1, 2}); pv != 1 {
		t.Error("short input should be insignificant")
	}
	if _, pv, _ := FisherTest([]float64{0, 0, 0, 0}); pv != 1 {
		t.Error("all-zero input should be insignificant")
	}
}

func TestSingleCleanSinusoid(t *testing.T) {
	n := 1000
	x := sinusoid(n, 100)
	kLo, kHi := fullBand(n)
	res, err := Single(x, kLo, kHi, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Periodic {
		t.Fatalf("clean sinusoid not detected: %+v", res)
	}
	if res.Final < 98 || res.Final > 102 {
		t.Errorf("Final = %d, want ~100", res.Final)
	}
	if res.Candidate < 95 || res.Candidate > 105 {
		t.Errorf("Candidate = %d, want ~100", res.Candidate)
	}
}

func TestSingleNoisySinusoidWithOutliers(t *testing.T) {
	n := 1000
	x := corrupt(sinusoid(n, 50), 0.3, 20, 8, 2)
	res, err := Single(x, 1, n-1, Config{MPOpts: spectrum.Options{Loss: spectrum.LossHuber}})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Periodic {
		t.Fatalf("noisy sinusoid not detected: %+v", res)
	}
	if res.Final < 48 || res.Final > 52 {
		t.Errorf("Final = %d, want ~50", res.Final)
	}
}

func TestSingleWhiteNoiseRejected(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	falsePos := 0
	for tr := 0; tr < 20; tr++ {
		x := make([]float64, 400)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		res, err := Single(x, 1, 399, Config{Alpha: 0.01})
		if err != nil {
			t.Fatal(err)
		}
		if res.Periodic {
			falsePos++
		}
	}
	if falsePos > 2 {
		t.Errorf("%d/20 false positives on white noise", falsePos)
	}
}

func TestSingleLinearTrendRejected(t *testing.T) {
	// A pure trend has no periodicity; Fisher's argmax lands at k=1..2
	// whose implied period exceeds n/2 and must be rejected.
	n := 600
	x := make([]float64, n)
	for i := range x {
		x[i] = 0.01 * float64(i)
	}
	res, err := Single(x, 1, n-1, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Periodic {
		t.Errorf("trend misread as periodic: %+v", res)
	}
}

func TestSingleTooShort(t *testing.T) {
	if _, err := Single([]float64{1, 2, 3}, 1, 2, Config{}); err == nil {
		t.Error("expected error")
	}
}

func TestSinglePassbandRestriction(t *testing.T) {
	// With the robust band restricted away from the true frequency the
	// classical ordinates still carry the peak, so detection survives
	// (the hybrid only swaps ordinates inside the band).
	n := 800
	x := corrupt(sinusoid(n, 80), 0.2, 0, 0, 4)
	// True frequency index in padded spectrum: 2n/80 = 20.
	res, err := Single(x, 15, 25, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Periodic || res.Final < 78 || res.Final > 82 {
		t.Errorf("passband detection failed: %+v", res)
	}
}

func TestSquareWaveDetected(t *testing.T) {
	n := 1000
	x := make([]float64, n)
	for i := range x {
		if (i/50)%2 == 0 {
			x[i] = 1
		} else {
			x[i] = -1
		}
	}
	res, err := Single(x, 1, n-1, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Periodic {
		t.Fatalf("square wave not detected: %+v", res)
	}
	if res.Final < 98 || res.Final > 102 {
		t.Errorf("square wave period = %d, want ~100", res.Final)
	}
}

func TestCandidateRange(t *testing.T) {
	n := 500
	lo, hi := CandidateRange(n, 10)
	// Period at k=10 is 100; neighbors 1000/11≈90.9 and 1000/9≈111.1.
	if lo > 100 || hi < 100 {
		t.Errorf("range [%v,%v] excludes its own bin period", lo, hi)
	}
	if lo < 90 || hi > 113 {
		t.Errorf("range [%v,%v] too wide", lo, hi)
	}
	// A doubled period is rejected.
	if 202 <= hi {
		t.Errorf("range [%v,%v] fails to reject a doubled period", lo, hi)
	}
	// k=1 caps at n.
	_, hiK1 := CandidateRange(n, 1)
	if hiK1 != float64(n) {
		t.Errorf("k=1 hi = %v, want %v", hiK1, n)
	}
}

func TestAcceptRangeExtendsOnlyWithStrongNeighbor(t *testing.T) {
	n := 500
	half := make([]float64, n+1)
	// Lone argmax at k=10: acceptance equals the single-bin interval.
	half[10] = 100
	lo, hi := acceptRange(half, n, 10)
	cLo, cHi := CandidateRange(n, 10)
	if lo != cLo || hi != cHi {
		t.Errorf("lone peak should keep single-bin range: [%v,%v] vs [%v,%v]", lo, hi, cLo, cHi)
	}
	// A comparable neighbour at k=11 extends the low side: the true
	// period 1000/10.5 ≈ 95.2 must now be accepted from the k=10
	// argmax as well.
	half[11] = 80
	lo, _ = acceptRange(half, n, 10)
	if 95.2 < lo {
		t.Errorf("between-bins period 95.2 still rejected: lo=%v", lo)
	}
	// And symmetrically from the k=11 argmax.
	half[10], half[11] = 80, 100
	_, hi = acceptRange(half, n, 11)
	if 95.2 > hi {
		t.Errorf("between-bins period 95.2 rejected from k=11: hi=%v", hi)
	}
}

func TestACFPersistsSeparatesNoiseFromSignal(t *testing.T) {
	n := 512
	// Deterministic periodicity: ACF stays high at every multiple.
	acfSig := make([]float64, n)
	for i := range acfSig {
		acfSig[i] = math.Cos(2 * math.Pi * float64(i) / 40)
	}
	if !acfPersists(acfSig, 40, 0.3) {
		t.Error("deterministic ACF should persist")
	}
	// Band-passed noise: pseudo-periodic with a decaying envelope.
	acfNoise := make([]float64, n)
	for i := range acfNoise {
		decay := math.Exp(-float64(i) / 50) // correlation length ~1.25 periods
		acfNoise[i] = decay * math.Cos(2*math.Pi*float64(i)/40)
	}
	if acfPersists(acfNoise, 40, 0.3) {
		t.Error("decaying pseudo-periodic ACF should fail persistence")
	}
	// Periods too long to observe the 2nd multiple pass by default.
	if !acfPersists(acfSig[:70], 40, 0.3) {
		t.Error("unobservable multiples should not reject")
	}
}

func TestACFMedianPeriodEdgeCases(t *testing.T) {
	cfg := Config{}.withDefaults()
	// Flat ACF: no peaks.
	flat := make([]float64, 200)
	if got := acfMedianPeriod(flat, 20, cfg); got != 0 {
		t.Errorf("flat ACF gave %d", got)
	}
	// Single peak: its own lag is the estimate.
	single := make([]float64, 200)
	single[50] = 1
	if got := acfMedianPeriod(single, 50, cfg); got != 50 {
		t.Errorf("single peak gave %d", got)
	}
	// Leading sub-MinPeriod artifacts are dropped.
	withLead := make([]float64, 200)
	withLead[1] = 1
	withLead[60], withLead[120] = 0.9, 0.85
	if got := acfMedianPeriod(withLead, 60, cfg); got != 60 {
		t.Errorf("lead artifact handling gave %d", got)
	}
}

func TestResultDiagnosticsPopulated(t *testing.T) {
	n := 512
	x := sinusoid(n, 64)
	res, err := Single(x, 1, n-1, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Periodogram) != n+1 {
		t.Errorf("periodogram length %d, want %d", len(res.Periodogram), n+1)
	}
	if len(res.ACF) != n {
		t.Errorf("ACF length %d, want %d", len(res.ACF), n)
	}
	if math.Abs(res.ACF[0]-1) > 1e-9 {
		t.Errorf("ACF[0] = %v", res.ACF[0])
	}
}

func BenchmarkSingleFullBand(b *testing.B) {
	x := corrupt(sinusoid(1000, 100), 0.3, 20, 8, 5)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Single(x, 1, 999, Config{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSinglePassband(b *testing.B) {
	x := corrupt(sinusoid(1000, 100), 0.3, 20, 8, 5)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Single(x, 15, 31, Config{}); err != nil {
			b.Fatal(err)
		}
	}
}
