// Package detect implements RobustPeriod's robust single-periodicity
// detection stage (§3.4): Fisher's g-test on the Huber-periodogram of
// the zero-padded series generates a period candidate, and the
// Huber-ACF (obtained from the same periodogram via Wiener–Khinchin)
// validates and refines it through the median inter-peak distance
// (Huber-ACF-Med).
package detect

import (
	"context"
	"errors"
	"fmt"
	"math"
	"time"

	"robustperiod/internal/peaks"
	"robustperiod/internal/spectrum"
	"robustperiod/internal/stat/dist"
	"robustperiod/internal/stat/robust"
	"robustperiod/internal/trace"
)

// Config tunes the single-period detector.
type Config struct {
	// Alpha is the Fisher-test significance level; <= 0 means 0.01.
	Alpha float64
	// ACFHeight is the minimum ACF peak height; <= 0 means 0.3.
	ACFHeight float64
	// MinPeriod rejects candidates shorter than this; < 2 means 2.
	MinPeriod int
	// Parallel fans the robust periodogram's per-frequency regressions
	// out over all CPUs.
	Parallel bool
	// Trace, when non-nil, times the periodogram and validation stages
	// and tallies Fisher/ACF verdicts. Same-named stages from
	// concurrent per-level detections merge into one accumulator.
	Trace *trace.Trace
	// Budget bounds the wall time of this detection's robust
	// periodogram solve. When the budget expires (and the caller's own
	// context, MPOpts.Ctx, is still live) the detector falls back to
	// the classical periodogram instead of erroring; the robust ACF
	// validation still runs on the result. <= 0 means unbounded.
	Budget time.Duration
	// NoFallback disables the degraded classical-periodogram fallback:
	// budget exhaustion and solver failures surface as errors.
	NoFallback bool
	// MPOpts configures the robust periodogram.
	MPOpts spectrum.Options
}

func (c Config) withDefaults() Config {
	if c.Alpha <= 0 {
		c.Alpha = 0.01
	}
	if c.ACFHeight <= 0 {
		c.ACFHeight = 0.3
	}
	if c.MinPeriod < 2 {
		c.MinPeriod = 2
	}
	return c
}

// Result reports everything the detector learned about one series
// (one wavelet level in the full pipeline). The field names mirror the
// paper's Fig. 5 annotations.
type Result struct {
	Candidate int     // per_T: period implied by the Fisher argmax (0 = test failed)
	KHat      int     // argmax frequency index in the padded spectrum
	GStat     float64 // Fisher g statistic
	PValue    float64 // exact Fisher p-value
	ACFPeriod int     // acf_T: median ACF inter-peak distance (0 = no peaks)
	Final     int     // fin_T: validated period (0 = rejected)
	Periodic  bool    // the level's overall verdict

	// Degraded names the reason this detection fell back to the
	// classical periodogram ("" = full-quality robust path): one of
	// ReasonBudgetExceeded or ReasonSolverFailed.
	Degraded string

	Periodogram []float64 // half-range hybrid (robust-in-band) periodogram
	ACF         []float64 // Huber-ACF, lags 0..N−1
}

// Degradation reasons reported in Result.Degraded.
const (
	// ReasonBudgetExceeded: the robust solve blew its stage budget.
	ReasonBudgetExceeded = "periodogram_budget_exceeded"
	// ReasonSolverFailed: the robust regression failed (divergence or
	// an injected solver fault).
	ReasonSolverFailed = "robust_solver_failed"
)

// FisherTest runs Fisher's g-test on half-range periodogram ordinates
// p[1:] (p[0], the DC term, is ignored). It returns the statistic, the
// exact p-value, and the argmax index into p.
func FisherTest(p []float64) (g, pValue float64, kHat int) {
	if len(p) < 3 {
		return 0, 1, 0
	}
	sum := 0.0
	kHat = 1
	for k := 1; k < len(p); k++ {
		sum += p[k]
		if p[k] > p[kHat] {
			kHat = k
		}
	}
	if sum <= 0 {
		return 0, 1, 0
	}
	g = p[kHat] / sum
	n := len(p) - 1
	return g, dist.FisherGPValue(g, n), kHat
}

// Single detects at most one periodicity in x. The robust
// M-periodogram is evaluated exactly on padded-frequency indices
// [kLo, kHi] (the caller passes the wavelet level's nominal passband;
// pass 1 and 2*len(x) to robustify the whole band), with the classical
// periodogram elsewhere, following §3.4.1.
func Single(x []float64, kLo, kHi int, cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	n := len(x)
	if n < 8 {
		return Result{}, fmt.Errorf("detect: series too short (%d)", n)
	}
	// Centre the series so the DC ordinate vanishes: the ACF is defined
	// on centred data, and an uncentred mean would dominate the
	// Wiener–Khinchin inversion. (Wavelet coefficients arriving from
	// the pipeline are already near zero-mean; this also makes the
	// detector safe for standalone use.)
	mean := 0.0
	for _, v := range x {
		mean += v
	}
	mean /= float64(n)
	padded := make([]float64, 2*n)
	for i, v := range x {
		padded[i] = v - mean
	}
	// Resolve the Huber threshold from the unpadded series: the padded
	// half is structurally zero and would drag a MAD-based ζ toward
	// zero, over-shrinking every robust ordinate relative to the
	// classical ones outside the band and breaking Fisher's test.
	if cfg.MPOpts.Zeta <= 0 {
		s := robust.MADN(padded[:n])
		if s == 0 {
			s = math.Sqrt(robust.Variance(padded[:n]))
		}
		if s == 0 {
			s = 1
		}
		cfg.MPOpts.Zeta = 1.345 * s
	}
	// Fit the robust harmonic regressions on the real samples only;
	// the padding exists for the frequency grid and the Wiener–Khinchin
	// inversion, and including its structural zeros in the loss would
	// shrink strong ordinates more than weak ones.
	cfg.MPOpts.FitLength = n
	cfg.MPOpts.Parallel = cfg.MPOpts.Parallel || cfg.Parallel
	if cfg.MPOpts.Trace == nil {
		cfg.MPOpts.Trace = cfg.Trace
	}
	// Arm the Fisher prefilter at the significance level this detection
	// will test at: frequencies certified below the acceptance floor
	// fall back to the cheap clipped-series ordinate (see
	// spectrum/prefilter.go). Callers can force the exact path with
	// MPOpts.NoPrefilter.
	if cfg.MPOpts.PrefilterAlpha == 0 {
		cfg.MPOpts.PrefilterAlpha = cfg.Alpha
	}

	stp := cfg.Trace.StartStage(trace.StagePeriodogram)
	half, degraded, err := hybridWithBudget(padded, kLo, kHi, cfg)
	if err != nil {
		stp.End()
		return Result{}, err
	}
	res := Result{Periodogram: half, Degraded: degraded}

	g, pv, kHat := FisherTest(half)
	res.GStat, res.PValue, res.KHat = g, pv, kHat
	if kHat > 0 {
		cand := int(math.Round(float64(2*n) / float64(kHat)))
		// A valid period must repeat at least twice in the unpadded
		// series and not be degenerate.
		if cand >= cfg.MinPeriod && cand <= n/2 {
			res.Candidate = cand
		}
	}
	stp.End()
	cfg.Trace.CountBool(trace.StagePeriodogram, pv < cfg.Alpha, "fisher_pass", "fisher_reject")

	stv := cfg.Trace.StartStage(trace.StageValidation)
	acf, err := spectrum.ACFFromPeriodogram(spectrum.FullRange(half), n)
	if err != nil {
		stv.End()
		return Result{}, err
	}
	res.ACF = acf

	if pv >= cfg.Alpha || res.Candidate == 0 {
		stv.End()
		return res, nil
	}

	res.ACFPeriod = acfMedianPeriod(acf, res.Candidate, cfg)
	if res.ACFPeriod != 0 {
		lo, hi := acceptRange(half, n, kHat)
		if float64(res.ACFPeriod) >= lo && float64(res.ACFPeriod) <= hi &&
			res.ACFPeriod >= cfg.MinPeriod && res.ACFPeriod <= n/2 &&
			acfPersists(acf, res.ACFPeriod, cfg.ACFHeight) {
			res.Final = res.ACFPeriod
			res.Periodic = true
		}
	}
	stv.End()
	cfg.Trace.CountBool(trace.StageValidation, res.Periodic, "acf_accept", "acf_reject")
	return res, nil
}

// hybridWithBudget runs the hybrid robust periodogram under
// cfg.Budget and, unless cfg.NoFallback, degrades to the classical
// periodogram when the robust solve fails or exhausts its budget
// while the caller's own context is still live. The returned string
// is the degradation reason ("" on the full-quality path).
func hybridWithBudget(padded []float64, kLo, kHi int, cfg Config) ([]float64, string, error) {
	mp := cfg.MPOpts
	parent := mp.Ctx
	var cancel context.CancelFunc
	if cfg.Budget > 0 && mp.Loss != spectrum.LossL2 {
		base := parent
		if base == nil {
			base = context.Background()
		}
		mp.Ctx, cancel = context.WithTimeout(base, cfg.Budget)
	}
	half, err := spectrum.HybridPeriodogram(padded, kLo, kHi, mp)
	if cancel != nil {
		cancel()
	}
	if err == nil {
		return half, "", nil
	}
	// The caller's own context expiring is a genuine cancellation —
	// the request is dead, so a degraded answer helps no one.
	if parent != nil && parent.Err() != nil {
		return nil, "", parent.Err()
	}
	if cfg.NoFallback || cfg.MPOpts.Loss == spectrum.LossL2 {
		return nil, "", err
	}
	reason := ReasonSolverFailed
	if errors.Is(err, context.DeadlineExceeded) {
		reason = ReasonBudgetExceeded
	}
	l2 := cfg.MPOpts
	l2.Loss = spectrum.LossL2
	half, err2 := spectrum.HybridPeriodogram(padded, kLo, kHi, l2)
	if err2 != nil {
		return nil, "", err
	}
	cfg.Trace.Count(trace.StagePeriodogram, "degraded_fallbacks", 1)
	return half, reason, nil
}

// acfPersists checks that the autocorrelation stays elevated at the
// second and third multiples of the candidate period. This is the
// gate that separates genuine periodicity from band-passed noise: the
// detector runs on wavelet coefficients, and band-limited noise is
// pseudo-periodic at the band's centre frequency for about one
// correlation length (~1.5 cycles) — its ACF envelope then collapses
// (first sinc zero at 1.5 cycles, sidelobes below ~0.2 afterwards),
// while a deterministic periodicity keeps near-constant ACF peaks at
// every multiple. Without this check Fisher's test — whose white-noise
// null is void on band-passed data — plus a one-cycle ACF bump lets
// roughly a third of pure-noise windows through.
func acfPersists(acf []float64, period int, height float64) bool {
	n := len(acf)
	need := height * 0.8
	checked := false
	for m := 2; m <= 3; m++ {
		lag := m * period
		if lag >= n-1 {
			break
		}
		checked = true
		w := period / 20
		if w < 2 {
			w = 2
		}
		best := math.Inf(-1)
		for i := lag - w; i <= lag+w && i < n; i++ {
			if i >= 1 && acf[i] > best {
				best = acf[i]
			}
		}
		if best < need {
			return false
		}
	}
	// Periods too long to observe a second multiple pass by default;
	// they already required several observed cycles elsewhere.
	_ = checked
	return true
}

// acfMedianPeriod summarizes the ACF peak structure as the median
// distance between qualifying peaks (Huber-ACF-Med).
func acfMedianPeriod(acf []float64, candidate int, cfg Config) int {
	n := len(acf)
	// Unbiased ACF estimates explode at the largest lags; keep the
	// well-estimated 3/4 and never fewer than two candidate multiples.
	limit := n * 3 / 4
	if limit < 2*candidate+2 {
		limit = minInt(n, 2*candidate+2)
	}
	minDist := candidate / 4
	if minDist < 2 {
		minDist = 2
	}
	idx := peaks.Find(acf[:limit], peaks.Options{
		Height:      cfg.ACFHeight,
		MinDistance: minDist,
	})
	// Drop lag-0 adjacency artifacts: a peak closer than MinPeriod to
	// zero cannot start a period.
	for len(idx) > 0 && idx[0] < cfg.MinPeriod {
		idx = idx[1:]
	}
	if len(idx) == 0 {
		return 0
	}
	if len(idx) == 1 {
		// A single peak is its own distance estimate from lag 0.
		return idx[0]
	}
	return peaks.MedianDistance(idx)
}

// CandidateRange returns the period interval R_k that the periodogram
// bin kHat can resolve for a padded series of length 2n (§3.4.2): the
// midpoints toward the neighbouring bins, widened by 1% of the period
// (at least one sample) because for long periods observed over few
// cycles the ACF peak-spacing estimate carries more jitter than one
// sample.
func CandidateRange(n, kHat int) (lo, hi float64) {
	np := float64(2 * n)
	k := float64(kHat)
	slack := math.Max(1, 0.01*np/k)
	lo = 0.5*(np/(k+1)+np/k) - slack
	if kHat <= 1 {
		hi = float64(n)
	} else {
		hi = 0.5*(np/k+np/(k-1)) + slack
	}
	return lo, hi
}

// acceptRange is CandidateRange extended over the argmax's neighbour
// bins when they hold comparable power. A true frequency midway
// between two bins splits its energy across both, and the Fisher
// argmax lands on either one depending on the window phase while the
// (correct) ACF distance falls in the other bin's half-interval; the
// paper's single-bin interval then rejects it and detection flickers
// with the window offset. Noise argmaxes rarely have a comparable
// neighbour, so the acceptance region stays narrow for them.
func acceptRange(half []float64, n, kHat int) (lo, hi float64) {
	kL, kR := kHat, kHat
	if kHat-1 >= 1 && half[kHat-1] >= 0.5*half[kHat] {
		kL = kHat - 1
	}
	if kHat+1 < len(half) && half[kHat+1] >= 0.5*half[kHat] {
		kR = kHat + 1
	}
	lo, _ = CandidateRange(n, kR)
	_, hi = CandidateRange(n, kL)
	return lo, hi
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
