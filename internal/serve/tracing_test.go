package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"robustperiod/internal/obs"
	"robustperiod/internal/registry"
	"robustperiod/internal/trace"
)

// tracedBody is a small valid detect request reused by the tracing
// tests.
const tracedBody = `{"series":[1,2,3,4,1,2,3,4,1,2,3,4,1,2,3,4,1,2,3,4,1,2,3,4,1,2,3,4,1,2,3,4]}`

// postTraced posts a detect request carrying the given traceparent
// (empty skips the header) and returns the response.
func postTraced(t *testing.T, url, traceparent string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url+"/v1/detect", strings.NewReader(tracedBody))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if traceparent != "" {
		req.Header.Set("traceparent", traceparent)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp
}

// fetchTrace polls /debug/traces/{id} until the trace is committed
// (the span store commit runs in a deferred hook after the response
// bytes are already on the wire).
func fetchTrace(t *testing.T, debugURL, traceID string) TraceEntry {
	t.Helper()
	var entry TraceEntry
	deadline := time.Now().Add(2 * time.Second)
	for {
		res, err := http.Get(debugURL + "/debug/traces/" + traceID)
		if err != nil {
			t.Fatal(err)
		}
		ok := res.StatusCode == http.StatusOK
		if ok {
			if err := json.NewDecoder(res.Body).Decode(&entry); err != nil {
				t.Fatal(err)
			}
		}
		res.Body.Close()
		if ok {
			return entry
		}
		if time.Now().After(deadline) {
			t.Fatalf("trace %s never appeared in the span store", traceID)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestTraceparentRoundTrip drives the whole correlation chain: an
// incoming sampled W3C traceparent is continued (same trace ID, fresh
// span ID, echoed in the response), and /debug/traces/{traceid}
// returns a span tree whose root is parented under the remote span
// and which contains the queue-wait, execution, and pipeline-stage
// spans.
func TestTraceparentRoundTrip(t *testing.T) {
	s, ts := newTestServer(t, Config{TraceSampleEvery: -1})
	dbg := httptest.NewServer(s.DebugHandler())
	defer dbg.Close()

	const traceID = "4bf92f3577b34da6a3ce929d0e0e4736"
	const remoteSpan = "00f067aa0ba902b7"
	resp := postTraced(t, ts.URL, "00-"+traceID+"-"+remoteSpan+"-01")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("detect status = %d", resp.StatusCode)
	}
	echo := resp.Header.Get("traceparent")
	tp, ok := trace.ParseTraceparent(echo)
	if !ok {
		t.Fatalf("response traceparent %q does not parse", echo)
	}
	if got := fmt.Sprintf("%x", tp.TraceID); got != traceID {
		t.Fatalf("response trace ID = %s, want the incoming %s", got, traceID)
	}
	if got := tp.SpanID.String(); got == remoteSpan {
		t.Fatal("server echoed the remote span ID instead of minting its own")
	}
	if !tp.Sampled {
		t.Fatal("sampled flag lost on the echo")
	}

	entry := fetchTrace(t, dbg.URL, traceID)
	if entry.Endpoint != epDetect || entry.Status != http.StatusOK || entry.Outcome != "ok" {
		t.Fatalf("trace listing facts wrong: %+v", entry)
	}
	byName := map[string]TraceSpan{}
	for _, sp := range entry.Spans {
		byName[sp.Name] = sp
	}
	root, ok := byName[registry.SpanRequest]
	if !ok {
		t.Fatalf("no root %q span: %v", registry.SpanRequest, names(entry.Spans))
	}
	if root.Parent != remoteSpan {
		t.Fatalf("root span parent = %q, want the remote caller's span %q", root.Parent, remoteSpan)
	}
	if root.ID != tp.SpanID.String() {
		t.Fatalf("root span ID %q differs from the echoed traceparent span %q", root.ID, tp.SpanID)
	}
	for _, name := range []string{registry.SpanQueueWait, registry.SpanJobExec} {
		sp, ok := byName[name]
		if !ok {
			t.Fatalf("no %q span: %v", name, names(entry.Spans))
		}
		if sp.Parent != root.ID {
			t.Fatalf("%q span parented under %q, want root %q", name, sp.Parent, root.ID)
		}
	}
	// The pipeline stage timers emit spans with zero call-site changes
	// via Trace.AttachSpans; a detection has at least a periodogram.
	stages := 0
	for name := range byName {
		switch name {
		case registry.SpanRequest, registry.SpanQueueWait, registry.SpanJobExec:
		default:
			stages++
		}
	}
	if stages == 0 {
		t.Fatalf("no pipeline stage spans in the trace: %v", names(entry.Spans))
	}
}

func names(spans []TraceSpan) []string {
	out := make([]string, len(spans))
	for i, sp := range spans {
		out[i] = sp.Name
	}
	return out
}

// TestHeadSamplingMintsTrace pins the no-incoming-header path: with
// head sampling on every request the server mints a trace context,
// echoes it, and retains the trace.
func TestHeadSamplingMintsTrace(t *testing.T) {
	s, ts := newTestServer(t, Config{TraceSampleEvery: 1})
	dbg := httptest.NewServer(s.DebugHandler())
	defer dbg.Close()

	resp := postTraced(t, ts.URL, "")
	tp, ok := trace.ParseTraceparent(resp.Header.Get("traceparent"))
	if !ok || !tp.Sampled {
		t.Fatalf("minted traceparent missing or unsampled: %q", resp.Header.Get("traceparent"))
	}
	entry := fetchTrace(t, dbg.URL, tp.TraceIDString())
	if entry.SpanCount == 0 {
		t.Fatal("retained trace has no spans")
	}

	// An unsampled request must stay header-free.
	s2, ts2 := newTestServer(t, Config{TraceSampleEvery: -1})
	_ = s2
	resp2 := postTraced(t, ts2.URL, "")
	if h := resp2.Header.Get("traceparent"); h != "" {
		t.Fatalf("sampled-out request echoed a traceparent: %q", h)
	}
}

// TestOpenMetricsExemplars drives content negotiation and the
// exemplar path end to end: after a sampled request, an OpenMetrics
// scrape is conformant and carries the request's trace ID as a bucket
// exemplar on the latency histogram, while a plain 0.0.4 scrape of
// the same state carries none.
func TestOpenMetricsExemplars(t *testing.T) {
	_, ts := newTestServer(t, Config{TraceSampleEvery: 1})

	resp := postTraced(t, ts.URL, "")
	tp, ok := trace.ParseTraceparent(resp.Header.Get("traceparent"))
	if !ok {
		t.Fatal("request was not sampled")
	}

	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/metrics", nil)
	req.Header.Set("Accept", "application/openmetrics-text; version=1.0.0")
	res, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(res.Body); err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if ct := res.Header.Get("Content-Type"); ct != obs.OpenMetricsContentType {
		t.Fatalf("negotiated Content-Type = %q", ct)
	}
	if err := obs.CheckOpenMetrics(buf.Bytes()); err != nil {
		t.Fatalf("OM scrape not conformant: %v", err)
	}
	if !strings.Contains(buf.String(), `trace_id="`+tp.TraceIDString()+`"`) {
		t.Fatalf("sampled request's trace ID %s not present as an exemplar", tp.TraceIDString())
	}

	// Plain scrape: 0.0.4 content type, no exemplars, no EOF.
	res2, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var buf2 bytes.Buffer
	if _, err := buf2.ReadFrom(res2.Body); err != nil {
		t.Fatal(err)
	}
	res2.Body.Close()
	if ct := res2.Header.Get("Content-Type"); ct != obs.PromContentType {
		t.Fatalf("default Content-Type = %q", ct)
	}
	if strings.Contains(buf2.String(), "trace_id") || strings.Contains(buf2.String(), "# EOF") {
		t.Fatal("OpenMetrics constructs leaked into the 0.0.4 scrape")
	}
	if err := obs.CheckExposition(buf2.Bytes()); err != nil {
		t.Fatalf("0.0.4 scrape not conformant: %v", err)
	}
}

// TestTenantCardinalityCap floods the tenant counter with 10k
// distinct API keys and pins that the scrape stays bounded: the
// overflow folds into the "other" label instead of minting 10k
// series. The HTTP path is exercised with a handful of keys; the
// flood goes through the same observe method directly.
func TestTenantCardinalityCap(t *testing.T) {
	s, ts := newTestServer(t, Config{TenantMaxLabels: 8})

	// HTTP path: a known key lands under itself.
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/detect", strings.NewReader(tracedBody))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(TenantHeader, "team-a")
	res, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()

	for i := 0; i < 10_000; i++ {
		s.tenants.observe(fmt.Sprintf("key-%d", i))
	}

	fams := metricsSnapshot(t, ts.URL)
	fam := obs.FindFamily(fams, "rp_tenant_requests_total")
	if fam == nil {
		t.Fatal("rp_tenant_requests_total missing from the scrape")
	}
	if len(fam.Samples) > 10 { // max 8 tracked + default pre-seed counts toward max; + other
		t.Fatalf("tenant series unbounded after 10k keys: %d series", len(fam.Samples))
	}
	var other, teamA float64
	foundOther := false
	for _, smp := range fam.Samples {
		switch smp.Labels["tenant"] {
		case tenantOther:
			other, foundOther = smp.Value, true
		case "team-a":
			teamA = smp.Value
		}
	}
	if !foundOther || other < 9000 {
		t.Fatalf("overflow keys did not fold into %q: %v", tenantOther, fam.Samples)
	}
	if teamA != 1 {
		t.Fatalf("tracked tenant team-a count = %v, want 1", teamA)
	}
}

// TestDebugRequestFilters pins the /debug/requests query parameters:
// outcome and tenant narrow the listing, limit caps it.
func TestDebugRequestFilters(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	dbg := httptest.NewServer(s.DebugHandler())
	defer dbg.Close()

	send := func(tenant, body string) {
		req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/detect", strings.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set(TenantHeader, tenant)
		res, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		res.Body.Close()
	}
	send("team-a", tracedBody)
	send("team-a", `{"series":[]}`) // error outcome
	send("team-b", tracedBody)

	list := func(query string) []RequestRecord {
		res, err := http.Get(dbg.URL + "/debug/requests" + query)
		if err != nil {
			t.Fatal(err)
		}
		defer res.Body.Close()
		var out struct {
			Requests []RequestRecord `json:"requests"`
		}
		if err := json.NewDecoder(res.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return out.Requests
	}

	if got := list("?outcome=error"); len(got) != 1 || got[0].Tenant != "team-a" || got[0].Outcome != "error" {
		t.Fatalf("outcome=error filter: %+v", got)
	}
	if got := list("?tenant=team-b"); len(got) != 1 || got[0].Tenant != "team-b" {
		t.Fatalf("tenant=team-b filter: %+v", got)
	}
	if got := list("?tenant=team-a&outcome=ok"); len(got) != 1 || got[0].Outcome != "ok" {
		t.Fatalf("combined filter: %+v", got)
	}
	if got := list("?limit=2"); len(got) != 2 {
		t.Fatalf("limit=2 returned %d records", len(got))
	}
	// Trace listing filters ride the same snapshot machinery.
	res, err := http.Get(dbg.URL + "/debug/traces?outcome=error&limit=5")
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != http.StatusOK {
		t.Fatalf("/debug/traces with filters = %d", res.StatusCode)
	}
}

// TestSampledOutPathAllocationFree pins the zero-alloc contract of
// the tracing hot path: for an unsampled request, traceparent
// parsing, span-ID minting, the sampling decision, tenant
// canonicalization, and every nil-recording span call must allocate
// nothing.
func TestSampledOutPathAllocationFree(t *testing.T) {
	s, err := New(Config{TraceSampleEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.tenants.observe("team-a") // pre-track so the steady state is a map hit

	header := "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-00"
	var nilRec *trace.Recording
	start := time.Now()
	allocs := testing.AllocsPerRun(200, func() {
		tp, ok := trace.ParseTraceparent(header)
		if !ok || tp.Sampled {
			t.Fatal("parse failed")
		}
		_ = s.mintSpanID()
		if s.sampleTrace() {
			t.Fatal("sampling disabled yet sampled")
		}
		if got := s.tenants.observe("team-a"); got != "team-a" {
			t.Fatal("tenant canonicalization changed")
		}
		id := nilRec.AddSpan(registry.SpanQueueWait, trace.SpanID{}, start, time.Millisecond)
		nilRec.Annotate(id)
		nilRec.FinishRoot(registry.SpanRequest, tp.SpanID, start, time.Millisecond)
	})
	if allocs != 0 {
		t.Fatalf("sampled-out tracing path allocates %v times per request, want 0", allocs)
	}
}

// TestWALSpansInAsyncSubmitTrace submits a durable async job under a
// sampled trace and pins that the WAL append and fsync show up as
// spans: the fsync latency a client pays at admission is attributable
// in the span tree.
func TestWALSpansInAsyncSubmitTrace(t *testing.T) {
	s, ts := newTestServer(t, Config{
		TraceSampleEvery: 1,
		JobsDataDir:      t.TempDir(),
	})
	dbg := httptest.NewServer(s.DebugHandler())
	defer dbg.Close()

	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/jobs", strings.NewReader(tracedBody))
	req.Header.Set("Content-Type", "application/json")
	res, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != http.StatusAccepted {
		t.Fatalf("job submit = %d", res.StatusCode)
	}
	tp, ok := trace.ParseTraceparent(res.Header.Get("traceparent"))
	if !ok {
		t.Fatal("job submit was not sampled")
	}
	entry := fetchTrace(t, dbg.URL, tp.TraceIDString())
	found := map[string]bool{}
	var appendID, fsyncParent string
	for _, sp := range entry.Spans {
		found[sp.Name] = true
		if sp.Name == registry.SpanWALAppend {
			appendID = sp.ID
		}
		if sp.Name == registry.SpanWALFsync {
			fsyncParent = sp.Parent
		}
	}
	if !found[registry.SpanWALAppend] || !found[registry.SpanWALFsync] {
		t.Fatalf("WAL spans missing from async submit trace: %v", names(entry.Spans))
	}
	if fsyncParent != appendID {
		t.Fatalf("wal_fsync parented under %q, want the wal_append span %q", fsyncParent, appendID)
	}
	_ = context.Background()
}
