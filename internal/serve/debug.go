// The debug listener: net/http/pprof profiling and the expvar JSON
// dump, served on a separate address so profiling endpoints are never
// exposed on the public API port.
package serve

import (
	"fmt"
	"net/http"
	"net/http/pprof"
)

// DebugHandler returns the handler served on Config.DebugAddr:
//
//	GET /debug/pprof/          pprof index (profile, heap, goroutine,
//	                           block, mutex, trace, cmdline, symbol)
//	GET /debug/vars            this server's expvar metrics, same JSON
//	                           object as /metrics on the API listener
//
// The pprof handlers are mounted explicitly on a private mux — the
// net/http/pprof side-effect registration on http.DefaultServeMux is
// not relied upon, so importing this package never leaks profiling
// endpoints into an embedding application's default mux routes.
func (s *Server) DebugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintln(w, s.metrics.vars.String())
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "robustperiod debug listener")
		fmt.Fprintln(w, "  /debug/pprof/   profiling")
		fmt.Fprintln(w, "  /debug/vars     expvar metrics")
	})
	return mux
}
