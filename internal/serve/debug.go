// The debug listener: net/http/pprof profiling, the expvar JSON dump,
// and the flight-recorder surfaces, served on a separate address so
// introspection endpoints are never exposed on the public API port.
package serve

import (
	"fmt"
	"net/http"
	"net/http/pprof"
	"strings"
	"time"

	"robustperiod"
	"robustperiod/internal/obs"
)

// RequestRecord is the JSON form of one flight-recorder entry, as
// served by /debug/requests and /debug/requests/{id}.
type RequestRecord struct {
	ID            string                     `json:"id"`
	Time          time.Time                  `json:"time"`
	Endpoint      string                     `json:"endpoint"`
	Status        int                        `json:"status"`
	Outcome       string                     `json:"outcome"` // ok | degraded | error
	DurationMs    float64                    `json:"durationMs"`
	SeriesLen     int                        `json:"seriesLen,omitempty"`
	BatchSize     int                        `json:"batchSize,omitempty"`
	OptionsDigest string                     `json:"optionsDigest"`
	Cached        bool                       `json:"cached"`
	ErrorCode     string                     `json:"errorCode,omitempty"`
	DegradedCount int                        `json:"degradedCount,omitempty"`
	ItemErrors    int                        `json:"itemErrors,omitempty"`
	FaultPoints   []string                   `json:"faultPoints,omitempty"`
	Degraded      []robustperiod.Degradation `json:"degraded,omitempty"`
	Trace         *TraceSummary              `json:"trace,omitempty"`
}

// toRequestRecord converts a recorder entry to wire form, unboxing
// the serving layer's degradation and trace annotations.
func toRequestRecord(rec obs.Record, full bool) RequestRecord {
	out := RequestRecord{
		ID:            rec.ID.String(),
		Time:          rec.Time,
		Endpoint:      rec.Endpoint,
		Status:        rec.Status,
		Outcome:       rec.Outcome(),
		DurationMs:    float64(rec.Duration) / float64(time.Millisecond),
		SeriesLen:     rec.SeriesLen,
		BatchSize:     rec.BatchSize,
		OptionsDigest: fmt.Sprintf("%016x", rec.OptionsDigest),
		Cached:        rec.Cached,
		ErrorCode:     rec.ErrorCode,
		DegradedCount: rec.DegradedCount,
		ItemErrors:    rec.ItemErrors,
		FaultPoints:   rec.FaultPoints,
	}
	if !full {
		return out
	}
	if degs, ok := rec.Degraded.([]robustperiod.Degradation); ok {
		out.Degraded = degs
	}
	if ts, ok := rec.Trace.(*robustperiod.TraceSummary); ok {
		out.Trace = toTraceSummary(ts)
	}
	return out
}

// handleRequestList serves GET /debug/requests: the flight recorder's
// retained records, newest first, without the bulky per-record trace
// (fetch one record by ID for that).
func (s *Server) handleRequestList(w http.ResponseWriter, r *http.Request) {
	max := 0
	if v := r.URL.Query().Get("max"); v != "" {
		fmt.Sscanf(v, "%d", &max)
	}
	recs := s.recorder.Snapshot(max)
	out := make([]RequestRecord, len(recs))
	for i, rec := range recs {
		out[i] = toRequestRecord(rec, false)
	}
	writeJSON(w, http.StatusOK, map[string]any{"requests": out})
}

// handleRequestByID serves GET /debug/requests/{id}: the full
// post-mortem record — per-stage trace, degradation annotations,
// fault hits — for the request that returned this X-Request-ID.
func (s *Server) handleRequestByID(w http.ResponseWriter, r *http.Request) {
	raw := strings.TrimPrefix(r.URL.Path, "/debug/requests/")
	id, ok := obs.ParseID(raw)
	if !ok {
		writeError(w, http.StatusBadRequest, "bad_request_id",
			"%q is not a request ID (32 hex characters)", raw)
		return
	}
	rec, ok := s.recorder.Lookup(id)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown_request_id",
			"request %s is not in the flight recorder (evicted or never seen)", raw)
		return
	}
	writeJSON(w, http.StatusOK, toRequestRecord(rec, true))
}

// DebugHandler returns the handler served on Config.DebugAddr:
//
//	GET /debug/pprof/          pprof index (profile, heap, goroutine,
//	                           block, mutex, trace, cmdline, symbol)
//	GET /debug/vars            this server's expvar metrics as one
//	                           JSON object (the pre-Prometheus
//	                           /metrics view)
//	GET /debug/requests        flight recorder: recent + pinned
//	                           request records, newest first
//	GET /debug/requests/{id}   one record by X-Request-ID, with the
//	                           per-stage trace and degradations
//
// The pprof handlers are mounted explicitly on a private mux — the
// net/http/pprof side-effect registration on http.DefaultServeMux is
// not relied upon, so importing this package never leaks profiling
// endpoints into an embedding application's default mux routes.
func (s *Server) DebugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintln(w, s.metrics.vars.String())
	})
	mux.HandleFunc("GET /debug/requests", s.handleRequestList)
	mux.HandleFunc("GET /debug/requests/{id}", s.handleRequestByID)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "robustperiod debug listener")
		fmt.Fprintln(w, "  /debug/pprof/         profiling")
		fmt.Fprintln(w, "  /debug/vars           expvar metrics (JSON)")
		fmt.Fprintln(w, "  /debug/requests       flight recorder (recent requests)")
		fmt.Fprintln(w, "  /debug/requests/{id}  one request by X-Request-ID")
	})
	return mux
}
