// The debug listener: net/http/pprof profiling, the expvar JSON dump,
// and the flight-recorder surfaces, served on a separate address so
// introspection endpoints are never exposed on the public API port.
package serve

import (
	"fmt"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"time"

	"robustperiod"
	"robustperiod/internal/obs"
	"robustperiod/internal/trace"
)

// RequestRecord is the JSON form of one flight-recorder entry, as
// served by /debug/requests and /debug/requests/{id}.
type RequestRecord struct {
	ID            string                     `json:"id"`
	Time          time.Time                  `json:"time"`
	Endpoint      string                     `json:"endpoint"`
	Tenant        string                     `json:"tenant,omitempty"`
	Status        int                        `json:"status"`
	Outcome       string                     `json:"outcome"` // ok | degraded | error
	DurationMs    float64                    `json:"durationMs"`
	SeriesLen     int                        `json:"seriesLen,omitempty"`
	BatchSize     int                        `json:"batchSize,omitempty"`
	OptionsDigest string                     `json:"optionsDigest"`
	Cached        bool                       `json:"cached"`
	ErrorCode     string                     `json:"errorCode,omitempty"`
	DegradedCount int                        `json:"degradedCount,omitempty"`
	ItemErrors    int                        `json:"itemErrors,omitempty"`
	FaultPoints   []string                   `json:"faultPoints,omitempty"`
	Degraded      []robustperiod.Degradation `json:"degraded,omitempty"`
	Trace         *TraceSummary              `json:"trace,omitempty"`
}

// toRequestRecord converts a recorder entry to wire form, unboxing
// the serving layer's degradation and trace annotations.
func toRequestRecord(rec obs.Record, full bool) RequestRecord {
	out := RequestRecord{
		ID:            rec.ID.String(),
		Time:          rec.Time,
		Endpoint:      rec.Endpoint,
		Tenant:        rec.Tenant,
		Status:        rec.Status,
		Outcome:       rec.Outcome(),
		DurationMs:    float64(rec.Duration) / float64(time.Millisecond),
		SeriesLen:     rec.SeriesLen,
		BatchSize:     rec.BatchSize,
		OptionsDigest: fmt.Sprintf("%016x", rec.OptionsDigest),
		Cached:        rec.Cached,
		ErrorCode:     rec.ErrorCode,
		DegradedCount: rec.DegradedCount,
		ItemErrors:    rec.ItemErrors,
		FaultPoints:   rec.FaultPoints,
	}
	if !full {
		return out
	}
	if degs, ok := rec.Degraded.([]robustperiod.Degradation); ok {
		out.Degraded = degs
	}
	if ts, ok := rec.Trace.(*robustperiod.TraceSummary); ok {
		out.Trace = toTraceSummary(ts)
	}
	return out
}

// handleRequestList serves GET /debug/requests: the flight recorder's
// retained records, newest first, without the bulky per-record trace
// (fetch one record by ID for that). Query parameters narrow the
// listing: ?limit= (alias ?max=) caps the result, ?outcome= keeps
// only ok/degraded/error records, ?tenant= keeps one tenant.
func (s *Server) handleRequestList(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	limit := 0
	if v := q.Get("limit"); v != "" {
		limit, _ = strconv.Atoi(v)
	} else if v := q.Get("max"); v != "" {
		limit, _ = strconv.Atoi(v)
	}
	outcome, tenant := q.Get("outcome"), q.Get("tenant")
	// Filter over the full snapshot, then cut: limit bounds the
	// matches returned, not the records scanned.
	recs := s.recorder.Snapshot(0)
	out := make([]RequestRecord, 0, len(recs))
	for _, rec := range recs {
		if outcome != "" && rec.Outcome() != outcome {
			continue
		}
		if tenant != "" && rec.Tenant != tenant {
			continue
		}
		out = append(out, toRequestRecord(rec, false))
		if limit > 0 && len(out) >= limit {
			break
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"requests": out})
}

// handleRequestByID serves GET /debug/requests/{id}: the full
// post-mortem record — per-stage trace, degradation annotations,
// fault hits — for the request that returned this X-Request-ID.
func (s *Server) handleRequestByID(w http.ResponseWriter, r *http.Request) {
	raw := strings.TrimPrefix(r.URL.Path, "/debug/requests/")
	id, ok := obs.ParseID(raw)
	if !ok {
		writeError(w, http.StatusBadRequest, "bad_request_id",
			"%q is not a request ID (32 hex characters)", raw)
		return
	}
	rec, ok := s.recorder.Lookup(id)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown_request_id",
			"request %s is not in the flight recorder (evicted or never seen)", raw)
		return
	}
	writeJSON(w, http.StatusOK, toRequestRecord(rec, true))
}

// TraceSpan is the JSON form of one span of a retained trace.
type TraceSpan struct {
	Name       string       `json:"name"`
	ID         string       `json:"id"`
	Parent     string       `json:"parent,omitempty"` // absent on the trace root
	Start      time.Time    `json:"start"`
	DurationMs float64      `json:"durationMs"`
	Attrs      []trace.Attr `json:"attrs,omitempty"`
}

// TraceEntry is the JSON form of one retained trace: listing facts on
// /debug/traces, plus the span tree on /debug/traces/{traceid}.
type TraceEntry struct {
	TraceID    string      `json:"traceId"`
	Time       time.Time   `json:"time"`
	DurationMs float64     `json:"durationMs"`
	Endpoint   string      `json:"endpoint"`
	Tenant     string      `json:"tenant"`
	Status     int         `json:"status"`
	Outcome    string      `json:"outcome"`
	SpanCount  int         `json:"spanCount"`
	Dropped    int         `json:"dropped,omitempty"`
	Spans      []TraceSpan `json:"spans,omitempty"`
}

// toTraceEntry converts a retained trace to wire form; withSpans
// inlines the span tree.
func toTraceEntry(rec trace.TraceRecord, withSpans bool) TraceEntry {
	out := TraceEntry{
		TraceID:    trace.SpanContext{TraceID: rec.TraceID}.TraceIDString(),
		Time:       rec.Time,
		DurationMs: float64(rec.Duration) / float64(time.Millisecond),
		Endpoint:   rec.Endpoint,
		Tenant:     rec.Tenant,
		Status:     rec.Status,
		Outcome:    rec.Outcome,
		SpanCount:  len(rec.Spans),
		Dropped:    rec.Dropped,
	}
	if !withSpans {
		return out
	}
	out.Spans = make([]TraceSpan, len(rec.Spans))
	for i, sp := range rec.Spans {
		ts := TraceSpan{
			Name:       sp.Name,
			ID:         sp.ID.String(),
			Start:      sp.Start,
			DurationMs: float64(sp.Duration) / float64(time.Millisecond),
			Attrs:      sp.Attrs,
		}
		if !sp.Parent.IsZero() {
			ts.Parent = sp.Parent.String()
		}
		out.Spans[i] = ts
	}
	return out
}

// handleTraceList serves GET /debug/traces: the trace flight
// recorder's retained traces, newest first, without span trees.
// Query parameters narrow the listing: ?limit=, ?outcome=
// (ok/degraded/error), ?tenant=, and ?min_ms= (keep only traces at
// least this slow).
func (s *Server) handleTraceList(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	var f trace.Filter
	if v := q.Get("limit"); v != "" {
		f.Limit, _ = strconv.Atoi(v)
	}
	f.Outcome = q.Get("outcome")
	f.Tenant = q.Get("tenant")
	if v := q.Get("min_ms"); v != "" {
		ms, err := strconv.ParseFloat(v, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad_min_ms",
				"%q is not a millisecond duration", v)
			return
		}
		f.MinDuration = time.Duration(ms * float64(time.Millisecond))
	}
	recs := s.spans.Snapshot(f)
	out := make([]TraceEntry, len(recs))
	for i, rec := range recs {
		out[i] = toTraceEntry(rec, false)
	}
	writeJSON(w, http.StatusOK, map[string]any{"traces": out})
}

// handleTraceByID serves GET /debug/traces/{traceid}: the full span
// tree of one trace, addressed by the 32-hex trace ID the request's
// traceparent response header carried.
func (s *Server) handleTraceByID(w http.ResponseWriter, r *http.Request) {
	raw := r.PathValue("traceid")
	id, ok := obs.ParseID(raw)
	if !ok {
		writeError(w, http.StatusBadRequest, "bad_trace_id",
			"%q is not a trace ID (32 hex characters)", raw)
		return
	}
	rec, ok := s.spans.Lookup([16]byte(id))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown_trace_id",
			"trace %s is not in the trace flight recorder (evicted or never sampled)", raw)
		return
	}
	writeJSON(w, http.StatusOK, toTraceEntry(rec, true))
}

// handleSLO serves GET /debug/slo: every objective's evaluated
// multi-window burn-rate state, the rollup, and the post-mortem
// profile captures retained on disk.
func (s *Server) handleSLO(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"objectives":      s.sloEng.Status(),
		"firing":          s.sloEng.Firing(),
		"profileCaptures": s.profiles.Captures(),
	})
}

// DebugHandler returns the handler served on Config.DebugAddr:
//
//	GET /debug/pprof/          pprof index (profile, heap, goroutine,
//	                           block, mutex, trace, cmdline, symbol)
//	GET /debug/vars            this server's expvar metrics as one
//	                           JSON object (the pre-Prometheus
//	                           /metrics view)
//	GET /debug/requests        flight recorder: recent + pinned
//	                           request records, newest first
//	                           (?limit= ?outcome= ?tenant=)
//	GET /debug/requests/{id}   one record by X-Request-ID, with the
//	                           per-stage trace and degradations
//	GET /debug/traces          trace flight recorder: sampled span
//	                           trees, newest first
//	                           (?limit= ?outcome= ?tenant= ?min_ms=)
//	GET /debug/traces/{id}     one span tree by 32-hex trace ID
//	GET /debug/slo             evaluated SLO burn rates and retained
//	                           profile captures
//
// The pprof handlers are mounted explicitly on a private mux — the
// net/http/pprof side-effect registration on http.DefaultServeMux is
// not relied upon, so importing this package never leaks profiling
// endpoints into an embedding application's default mux routes.
func (s *Server) DebugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintln(w, s.metrics.vars.String())
	})
	mux.HandleFunc("GET /debug/requests", s.handleRequestList)
	mux.HandleFunc("GET /debug/requests/{id}", s.handleRequestByID)
	mux.HandleFunc("GET /debug/traces", s.handleTraceList)
	mux.HandleFunc("GET /debug/traces/{traceid}", s.handleTraceByID)
	mux.HandleFunc("GET /debug/slo", s.handleSLO)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "robustperiod debug listener")
		fmt.Fprintln(w, "  /debug/pprof/         profiling")
		fmt.Fprintln(w, "  /debug/vars           expvar metrics (JSON)")
		fmt.Fprintln(w, "  /debug/requests       flight recorder (recent requests)")
		fmt.Fprintln(w, "  /debug/requests/{id}  one request by X-Request-ID")
		fmt.Fprintln(w, "  /debug/traces         trace flight recorder (sampled span trees)")
		fmt.Fprintln(w, "  /debug/traces/{id}    one span tree by trace ID")
		fmt.Fprintln(w, "  /debug/slo            SLO burn rates and profile captures")
	})
	return mux
}
