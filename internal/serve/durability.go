// WAL codec for the async job store: how serve-layer payloads and
// results cross a process restart. Payloads persist the validated
// request (series + wire options + details flag) and recompute the
// cache fingerprint on decode; results persist the wire-form answer
// (periods, level details, degradations, filled fraction) rather
// than the full pipeline Result, which carries non-serializable
// trace state and far more intermediate data than a poll needs.
package serve

import (
	"encoding/json"
	"fmt"

	"robustperiod"
)

// persistedPayload is the durable form of a jobPayload.
type persistedPayload struct {
	Series  []float64   `json:"series"`
	Options *APIOptions `json:"options,omitempty"`
	Details bool        `json:"details,omitempty"`
}

// persistedResult is the durable form of a finished detection: the
// wire-level answer a status poll needs, detached from the in-memory
// pipeline Result. Levels are always encoded; the status handler
// gates them on the restored payload's details flag, mirroring the
// in-memory path.
type persistedResult struct {
	Periods        []int                      `json:"periods"`
	Levels         []LevelDetail              `json:"levels,omitempty"`
	Degraded       []robustperiod.Degradation `json:"degraded,omitempty"`
	FilledFraction float64                    `json:"filledFraction,omitempty"`
}

// walCodec implements jobs.Codec for the serve layer.
type walCodec struct{}

func (walCodec) EncodePayload(payload any) ([]byte, error) {
	jp, ok := payload.(*jobPayload)
	if !ok {
		return nil, fmt.Errorf("serve: cannot persist payload of type %T", payload)
	}
	return json.Marshal(persistedPayload{
		Series:  jp.series,
		Options: jp.apiOpts,
		Details: jp.details,
	})
}

func (walCodec) DecodePayload(data []byte) (any, error) {
	var pp persistedPayload
	if err := json.Unmarshal(data, &pp); err != nil {
		return nil, fmt.Errorf("serve: decode persisted payload: %w", err)
	}
	// Re-validate the restored options: a record written by a newer
	// build (or corrupted in a CRC-colliding way) must not smuggle an
	// unvalidated request into the executor.
	if _, err := pp.Options.toOptions(); err != nil {
		return nil, fmt.Errorf("serve: persisted payload options: %w", err)
	}
	key := requestKey(pp.Series, pp.Options.canonicalTag())
	return &jobPayload{series: pp.Series, apiOpts: pp.Options, key: key, details: pp.Details}, nil
}

func (walCodec) EncodeResult(res any) ([]byte, error) {
	switch r := res.(type) {
	case *robustperiod.Result:
		return json.Marshal(persistedResult{
			Periods:        nonNil(r.Periods),
			Levels:         resultLevels(r),
			Degraded:       r.Degraded,
			FilledFraction: r.FilledFraction,
		})
	case *persistedResult:
		// A recovered job's result compacting back into a snapshot.
		return json.Marshal(r)
	default:
		return nil, fmt.Errorf("serve: cannot persist result of type %T", res)
	}
}

func (walCodec) DecodeResult(data []byte) (any, error) {
	var pr persistedResult
	if err := json.Unmarshal(data, &pr); err != nil {
		return nil, fmt.Errorf("serve: decode persisted result: %w", err)
	}
	return &pr, nil
}
