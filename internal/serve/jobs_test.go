package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"robustperiod/internal/faults"
	"robustperiod/internal/obs"
	"robustperiod/internal/registry"
)

// getJob polls GET /v1/jobs/{id} once.
func getJob(t *testing.T, base, id string) (*http.Response, JobStatusResponse) {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st JobStatusResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatalf("decode job status: %v", err)
		}
	}
	return resp, st
}

// awaitJob polls until the job reaches a terminal state.
func awaitJob(t *testing.T, base, id string) JobStatusResponse {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, st := getJob(t, base, id)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("poll status = %d", resp.StatusCode)
		}
		if st.State == "done" || st.State == "failed" {
			return st
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish", id)
	return JobStatusResponse{}
}

// submitJob posts one async submission and returns the 202 envelope.
func submitJob(t *testing.T, base, body, tenant string) JobSubmitResponse {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, base+"/v1/jobs", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if tenant != "" {
		req.Header.Set(TenantHeader, tenant)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d, want 202", resp.StatusCode)
	}
	var sub JobSubmitResponse
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatalf("decode submit response: %v", err)
	}
	if sub.JobID == "" || sub.StatusURL != "/v1/jobs/"+sub.JobID {
		t.Fatalf("malformed submit response %+v", sub)
	}
	if loc := resp.Header.Get("Location"); loc != sub.StatusURL {
		t.Fatalf("Location = %q, want %q", loc, sub.StatusURL)
	}
	return sub
}

// metricsText fetches the Prometheus exposition.
func metricsText(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestJobsSubmitPollResult is the end-to-end happy path: 202, poll
// through to done, and a result matching the synchronous endpoint.
func TestJobsSubmitPollResult(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	series := sineSeries(512, 24, 1)
	body := detectBody(t, series, nil, true)

	sub := submitJob(t, ts.URL, body, "team-metrics")
	st := awaitJob(t, ts.URL, sub.JobID)
	if st.State != "done" || st.Result == nil {
		t.Fatalf("job finished %q (result %v), want done", st.State, st.Result)
	}
	if len(st.Result.Levels) == 0 {
		t.Fatal("details=true submission lost its level details")
	}
	if st.ElapsedMS <= 0 {
		t.Fatalf("elapsedMs = %v, want > 0", st.ElapsedMS)
	}

	// The synchronous endpoint must agree (and hit the cache the async
	// run filled).
	resp, syncBody := postJSON(t, ts.URL+"/v1/detect", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sync detect status = %d", resp.StatusCode)
	}
	var syncResp DetectResponse
	if err := json.Unmarshal(syncBody, &syncResp); err != nil {
		t.Fatal(err)
	}
	if !syncResp.Cached {
		t.Fatal("sync detect after async job missed the shared cache")
	}
	if fmt.Sprint(syncResp.Periods) != fmt.Sprint(st.Result.Periods) {
		t.Fatalf("async periods %v != sync periods %v", st.Result.Periods, syncResp.Periods)
	}

	prom := metricsText(t, ts.URL)
	for _, want := range []string{
		"rp_jobs_submitted_total 1",
		`rp_jobs_completed_total{outcome="ok"} 1`,
	} {
		if !strings.Contains(prom, want) {
			t.Errorf("metrics exposition missing %q", want)
		}
	}
	fams, err := obs.ParseExposition([]byte(prom))
	if err != nil {
		t.Fatal(err)
	}
	ewma := obs.FindFamily(fams, registry.MetricAdmissionJobTime)
	if ewma == nil || len(ewma.Samples) != 1 {
		t.Fatal("rp_admission_job_time_seconds missing from exposition")
	}
	// One sub-second detection ran, so a seconds-unit gauge must be
	// tiny; a huge value means the nanosecond EWMA leaked unconverted.
	if v := ewma.Samples[0].Value; v <= 0 || v > 60 {
		t.Errorf("rp_admission_job_time_seconds = %g, want within (0, 60]", v)
	}
}

// TestJobsCoalesceHTTP: identical concurrent submissions coalesce onto
// one execution; a jobs/exec delay holds the flight open so the
// followers deterministically find it in flight.
func TestJobsCoalesceHTTP(t *testing.T) {
	faults.Enable(faults.MustParse(faults.PointJobsExec + ":delay=400ms"))
	t.Cleanup(faults.Disable)
	_, ts := newTestServer(t, Config{})
	body := detectBody(t, sineSeries(256, 16, 2), nil, false)

	leader := submitJob(t, ts.URL, body, "dashboards")
	const followers = 7
	subs := make([]JobSubmitResponse, followers)
	var wg sync.WaitGroup
	for i := 0; i < followers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			subs[i] = submitJob(t, ts.URL, body, "alerting")
		}(i)
	}
	wg.Wait()

	want := awaitJob(t, ts.URL, leader.JobID)
	if want.State != "done" {
		t.Fatalf("leader finished %q", want.State)
	}
	if want.Coalesced {
		t.Fatal("leader reported coalesced")
	}
	for i, sub := range subs {
		st := awaitJob(t, ts.URL, sub.JobID)
		if st.State != "done" {
			t.Fatalf("follower %d finished %q", i, st.State)
		}
		if !st.Coalesced {
			t.Fatalf("follower %d was not coalesced", i)
		}
		if fmt.Sprint(st.Result.Periods) != fmt.Sprint(want.Result.Periods) {
			t.Fatalf("follower %d periods %v != leader %v", i, st.Result.Periods, want.Result.Periods)
		}
	}
	prom := metricsText(t, ts.URL)
	if !strings.Contains(prom, fmt.Sprintf("rp_jobs_coalesced_total %d", followers)) {
		t.Errorf("metrics exposition does not report %d coalesced jobs", followers)
	}
	if !strings.Contains(prom, fmt.Sprintf("rp_jobs_submitted_total %d", followers+1)) {
		t.Errorf("metrics exposition does not report %d submissions", followers+1)
	}
}

// TestJobsFaultTenantShed: the per-tenant bound sheds with 429 +
// Retry-After while other tenants still get through (fair-share
// admission, not a global gate).
func TestJobsFaultTenantShed(t *testing.T) {
	// Hold executions so the first job stays live for the whole test.
	faults.Enable(faults.MustParse(faults.PointJobsExec + ":delay=2s"))
	t.Cleanup(faults.Disable)
	_, ts := newTestServer(t, Config{JobsPerTenant: 1})
	bodyA := detectBody(t, sineSeries(256, 16, 3), nil, false)
	bodyB := detectBody(t, sineSeries(256, 16, 4), nil, false)
	bodyC := detectBody(t, sineSeries(256, 16, 5), nil, false)

	submitJob(t, ts.URL, bodyA, "greedy")

	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/jobs", strings.NewReader(bodyB))
	req.Header.Set(TenantHeader, "greedy")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-bound submit status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	var env struct {
		Error *APIError `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil || env.Error == nil {
		t.Fatalf("429 without error envelope: %v", err)
	}
	if env.Error.Code != "tenant_overloaded" {
		t.Fatalf("shed code = %q, want tenant_overloaded", env.Error.Code)
	}

	// A different API key is unaffected by the greedy tenant's bound.
	submitJob(t, ts.URL, bodyC, "polite")
	prom := metricsText(t, ts.URL)
	if !strings.Contains(prom, "rp_jobs_shed_total 1") {
		t.Error("metrics exposition does not report the shed submission")
	}
}

// TestJobsChaosExecFailure: an injected jobs/exec failure surfaces as
// a failed job with a structured error, and the failure is pinned in
// the store (still pollable) rather than lost.
func TestJobsChaosExecFailure(t *testing.T) {
	faults.Enable(faults.MustParse(faults.PointJobsExec + ":error"))
	t.Cleanup(faults.Disable)
	_, ts := newTestServer(t, Config{})
	sub := submitJob(t, ts.URL, detectBody(t, sineSeries(256, 16, 6), nil, false), "")
	st := awaitJob(t, ts.URL, sub.JobID)
	if st.State != "failed" || st.Error == nil {
		t.Fatalf("job under exec fault = %+v, want failed with error", st)
	}
	if st.Error.Code != "internal_error" {
		t.Fatalf("error code = %q, want internal_error", st.Error.Code)
	}
	prom := metricsText(t, ts.URL)
	if !strings.Contains(prom, `rp_jobs_completed_total{outcome="failed"} 1`) {
		t.Error("metrics exposition does not report the failed job")
	}
}

// TestJobsChaosStoreFault: an injected jobs/store failure rejects the
// submission with a 500 before any job state exists.
func TestJobsChaosStoreFault(t *testing.T) {
	faults.Enable(faults.MustParse(faults.PointJobsStore + ":error"))
	t.Cleanup(faults.Disable)
	_, ts := newTestServer(t, Config{BreakerThreshold: -1})
	resp, body := postJSON(t, ts.URL+"/v1/jobs", detectBody(t, sineSeries(256, 16, 7), nil, false))
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("submit under store fault = %d, want 500 (body %s)", resp.StatusCode, body)
	}
	if code := errCode(t, body); code != "internal_error" {
		t.Fatalf("error code = %q", code)
	}
	prom := metricsText(t, ts.URL)
	if !strings.Contains(prom, "rp_jobs_submitted_total 0") {
		t.Error("store fault still counted a submission")
	}
}

// TestJobsBadRequests covers the validation surface shared with
// /v1/detect plus the job-ID parse.
func TestJobsBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxSeriesLen: 128})
	cases := []struct {
		name     string
		body     string
		wantCode string
	}{
		{"empty series", `{"series":[]}`, "empty_series"},
		{"bad json", `{"series":[1,2`, "bad_json"},
		{"series too long", detectBody(t, make([]float64, 200), nil, false), "series_too_long"},
		{"unknown wavelet", `{"series":[1,2,3],"options":{"wavelet":"db99"}}`, "bad_options"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := postJSON(t, ts.URL+"/v1/jobs", tc.body)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status = %d, want 400 (body %s)", resp.StatusCode, body)
			}
			if code := errCode(t, body); code != tc.wantCode {
				t.Errorf("code = %q want %q", code, tc.wantCode)
			}
		})
	}

	resp, body := getPath(t, ts.URL, "/v1/jobs/not-a-job-id")
	if resp.StatusCode != http.StatusBadRequest || errCode(t, body) != "bad_job_id" {
		t.Fatalf("bad id: status %d body %s", resp.StatusCode, body)
	}
	resp, body = getPath(t, ts.URL, "/v1/jobs/"+strings.Repeat("ab", 16))
	if resp.StatusCode != http.StatusNotFound || errCode(t, body) != "job_not_found" {
		t.Fatalf("unknown id: status %d body %s", resp.StatusCode, body)
	}
}

func getPath(t *testing.T, base, path string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(base + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

// TestJobsDrainingPollStaysUp: a draining server sheds new
// submissions with 503 but keeps finished results pollable — async
// clients must be able to collect across a rolling restart's drain.
func TestJobsDrainingPollStaysUp(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	sub := submitJob(t, ts.URL, detectBody(t, sineSeries(256, 16, 8), nil, false), "")
	if st := awaitJob(t, ts.URL, sub.JobID); st.State != "done" {
		t.Fatalf("job finished %q", st.State)
	}
	s.draining.Store(true)
	resp, body := postJSON(t, ts.URL+"/v1/jobs", detectBody(t, sineSeries(256, 16, 9), nil, false))
	if resp.StatusCode != http.StatusServiceUnavailable || errCode(t, body) != "shutting_down" {
		t.Fatalf("draining submit: status %d body %s", resp.StatusCode, body)
	}
	pollResp, st := getJob(t, ts.URL, sub.JobID)
	if pollResp.StatusCode != http.StatusOK || st.State != "done" {
		t.Fatalf("draining poll: status %d state %q", pollResp.StatusCode, st.State)
	}
}

// TestJobsRetryAfterWhilePending: a queued or running job's status
// response carries a Retry-After hint for the polling backoff.
func TestJobsRetryAfterWhilePending(t *testing.T) {
	faults.Enable(faults.MustParse(faults.PointJobsExec + ":delay=1s"))
	t.Cleanup(faults.Disable)
	_, ts := newTestServer(t, Config{})
	sub := submitJob(t, ts.URL, detectBody(t, sineSeries(256, 16, 10), nil, false), "")
	resp, st := getJob(t, ts.URL, sub.JobID)
	if st.State != "queued" && st.State != "running" {
		t.Skipf("job already %q; nothing to assert", st.State)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("pending job status without Retry-After")
	}
}
