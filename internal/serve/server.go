// Package serve is the always-on serving layer over the robustperiod
// library: a JSON HTTP API with a bounded worker pool, an LRU result
// cache, per-request timeouts and cancellation, expvar metrics, and
// graceful drain on shutdown. It is the deployment shape the paper's
// motivating scenario (large-scale cloud monitoring) actually runs:
// many independent series arriving concurrently at one detector.
//
// The package is pure standard library, like everything else in this
// repository.
package serve

import (
	"context"
	"log/slog"
	"math"
	"net"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"robustperiod/internal/faults"
	"robustperiod/internal/jobs"
	"robustperiod/internal/obs"
	"robustperiod/internal/registry"
	"robustperiod/internal/slo"
	"robustperiod/internal/trace"
	"robustperiod/internal/wal"
)

// Config tunes the service. The zero value is production-safe.
type Config struct {
	// Addr is the listen address; "" means ":8080".
	Addr string
	// DebugAddr, when non-empty, serves the debug listener
	// (net/http/pprof under /debug/pprof/, expvar under /debug/vars)
	// on a separate address — keep it on loopback or an internal
	// interface; profiling endpoints do not belong on the API port.
	// Empty disables the debug listener.
	DebugAddr string
	// RequestTimeout bounds the compute time of one request (detect
	// or batch); 0 means 30s. The deadline propagates into the robust
	// periodogram solvers via context, so a timed-out request stops
	// consuming a worker almost immediately.
	RequestTimeout time.Duration
	// DrainTimeout bounds the graceful-shutdown drain; 0 means 30s.
	DrainTimeout time.Duration
	// MaxBodyBytes caps a request body; 0 means 8 MiB.
	MaxBodyBytes int64
	// MaxSeriesLen caps the points of one series; 0 means 1<<20.
	MaxSeriesLen int
	// MaxBatch caps the series count of one batch request; 0 means 256.
	MaxBatch int
	// Workers sizes the detection worker pool; 0 means GOMAXPROCS.
	Workers int
	// QueueLen bounds the pending-job queue; 0 means 4×Workers.
	QueueLen int
	// CacheSize is the LRU result-cache capacity in entries; 0 means
	// 1024, negative disables caching.
	CacheSize int
	// BreakerThreshold is the number of consecutive internal (500)
	// failures on a compute endpoint that opens its circuit breaker;
	// 0 means 5, negative disables the breakers.
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker waits before
	// half-opening to admit a probe request; 0 means 5s.
	BreakerCooldown time.Duration
	// Logger receives the server's structured logs (request admission,
	// degradation and fault events, access samples), each correlated by
	// request_id. Nil disables logging.
	Logger *slog.Logger
	// AccessLogEvery samples the per-request access log: every Nth
	// completed compute request is logged at info level. Requests that
	// erred, degraded, or hit a fault point are always logged
	// regardless of sampling. 0 means 64; 1 logs every request;
	// negative disables access sampling (exceptional requests still
	// log).
	AccessLogEvery int
	// RecorderSize is how many recent request records the post-mortem
	// flight recorder retains (plus as many pinned error/degraded
	// records); 0 means 256. The recorder is always on.
	RecorderSize int
	// JobsQueue bounds undispatched async job executions across all
	// tenants; 0 means 4096.
	JobsQueue int
	// JobsPerTenant bounds one API key's live (queued, coalesced,
	// running) async jobs; 0 means JobsQueue/4.
	JobsPerTenant int
	// JobsTTL is how long finished async jobs stay pollable; 0 means 5m.
	JobsTTL time.Duration
	// JobsStore bounds retained finished async jobs; 0 means 4096.
	JobsStore int
	// JobsQuantum is the fair-share deficit-round-robin budget per
	// tenant visit, in series points; 0 means 4096.
	JobsQuantum int
	// JobsDataDir enables durable async jobs: submissions, state
	// transitions, and results persist to a write-ahead log +
	// snapshot in this directory and are recovered on startup. Empty
	// keeps the job tier fully in-memory.
	JobsDataDir string
	// JobsFsync is the WAL fsync policy when JobsDataDir is set:
	// "always" (default), "never", or a positive Go duration for
	// interval fsync (e.g. "100ms").
	JobsFsync string
	// TraceSampleEvery head-samples every Nth compute request into the
	// span flight recorder; 0 means 16, 1 samples every request,
	// negative disables head sampling. A request arriving with a
	// sampled W3C traceparent header is always recorded regardless.
	TraceSampleEvery int
	// TraceStoreSize bounds the trace flight recorder (recent ring plus
	// as many pinned error/degraded traces); 0 means 256.
	TraceStoreSize int
	// SLOInterval is the burn-rate engine's sampling cadence; 0 means 10s.
	SLOInterval time.Duration
	// SLOLatencyTarget is the latency objective's threshold: the
	// latency SLO counts a request good when it finished under this
	// bound; 0 means 500ms.
	SLOLatencyTarget time.Duration
	// SLOWindows overrides the burn-rate alerting windows; nil selects
	// the SRE-workbook defaults (5m/1h at 14.4x, 30m/6h at 6x).
	SLOWindows []slo.Window
	// ProfileDir enables post-mortem profile capture: a fast-burn SLO
	// alert writes CPU and heap profiles into a bounded ring of capture
	// directories under this path. Empty disables capture.
	ProfileDir string
	// ProfileMax bounds retained capture directories; 0 means 8.
	ProfileMax int
	// ProfileCPU is the CPU-profile window of one capture; 0 means 2s.
	ProfileCPU time.Duration
	// TenantMaxLabels caps the distinct tenant labels tracked from
	// X-API-Key before unknown keys fold into "other"; 0 means 64.
	TenantMaxLabels int
}

func (c Config) withDefaults() Config {
	if c.Addr == "" {
		c.Addr = ":8080"
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 30 * time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 8 << 20
	}
	if c.MaxSeriesLen == 0 {
		c.MaxSeriesLen = 1 << 20
	}
	if c.MaxBatch == 0 {
		c.MaxBatch = 256
	}
	if c.CacheSize == 0 {
		c.CacheSize = 1024
	}
	if c.AccessLogEvery == 0 {
		c.AccessLogEvery = 64
	}
	if c.RecorderSize <= 0 {
		c.RecorderSize = 256
	}
	if c.TraceSampleEvery == 0 {
		c.TraceSampleEvery = 16
	}
	if c.TraceStoreSize <= 0 {
		c.TraceStoreSize = 256
	}
	if c.SLOInterval <= 0 {
		c.SLOInterval = 10 * time.Second
	}
	if c.SLOLatencyTarget <= 0 {
		c.SLOLatencyTarget = 500 * time.Millisecond
	}
	if c.TenantMaxLabels <= 0 {
		c.TenantMaxLabels = 64
	}
	return c
}

// endpoint labels used in metrics.
const (
	epDetect    = "detect"
	epBatch     = "batch"
	epJobs      = "jobs"
	epJobStatus = "job_status"
	epHealthz   = "healthz"
	epMetrics   = "metrics"
)

// Server is one instance of the detection service. Create with New,
// serve with Run (or mount Handler in an existing server), and Close
// when done.
type Server struct {
	cfg     Config
	mux     *http.ServeMux
	pool    *workerPool
	cache   *resultCache
	metrics *metrics

	// Observability: request-ID generator, structured logger, the
	// always-on flight recorder, and the access-log sampling counter.
	idGen     *obs.IDGen
	logger    *slog.Logger
	recorder  *obs.Recorder
	accessCtr atomic.Uint64

	// jobs is the async submit-then-poll tier (POST /v1/jobs), and
	// jobLatQ its submit-to-completion latency quantile estimator.
	jobs    *jobs.Manager
	jobLatQ *obs.Quantiles

	// Span tracing: the trace flight recorder behind /debug/traces,
	// the head-sampling counter, and the tenant-label cap shared by
	// metrics and recorders.
	spans    *trace.SpanStore
	traceCtr atomic.Uint64
	tenants  *tenantCounts

	// SLO burn-rate engine, its ticker-stop channel, and the
	// post-mortem profile ring its fast-burn edge hook writes into.
	sloEng   *slo.Engine
	sloDone  chan struct{}
	sloStop  sync.Once
	profiles *slo.ProfileRing

	// breakers guard the compute endpoints (nil entries never trip).
	breakers map[string]*breaker
	// draining flips once shutdown begins: compute requests arriving
	// after that are shed with 503 instead of racing the pool close.
	draining atomic.Bool
	// jobEWMA is an exponentially-weighted moving average of one
	// detection's service time (float64 bits), feeding the admission
	// controller's queue-wait estimate.
	jobEWMA atomic.Uint64
}

// New assembles a Server from cfg. It errors when the durable job
// store cannot start: a bad fsync policy, an unusable data directory,
// or a replay failure (corrupt snapshot, injected wal/replay fault).
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:      cfg,
		pool:     newWorkerPool(cfg.Workers, cfg.QueueLen),
		cache:    newResultCache(cfg.CacheSize),
		idGen:    obs.NewIDGen(),
		logger:   cfg.Logger,
		recorder: obs.NewRecorder(cfg.RecorderSize),
		jobLatQ:  obs.NewQuantiles(),
		spans:    trace.NewSpanStore(cfg.TraceStoreSize),
		tenants:  newTenantCounts(cfg.TenantMaxLabels),
	}
	if cfg.ProfileDir != "" {
		s.profiles = slo.NewProfileRing(cfg.ProfileDir, cfg.ProfileMax, cfg.ProfileCPU)
	}
	var durability *jobs.Durability
	if cfg.JobsDataDir != "" {
		policy, interval, err := wal.ParsePolicy(cfg.JobsFsync)
		if err != nil {
			s.pool.close()
			return nil, err
		}
		durability = &jobs.Durability{
			Dir:          cfg.JobsDataDir,
			Codec:        walCodec{},
			Policy:       policy,
			SyncInterval: interval,
		}
	}
	// The async tier shares the server's ID mint (one job ID namespace
	// with request IDs) and executes exclusively on the worker pool —
	// PoolSubmit blocks while the pool is saturated, so the fair-share
	// dispatcher provides natural backpressure instead of a deep queue.
	// Recovered queued jobs from a previous process re-enter through
	// the same path during jobs.Open.
	mgr, err := jobs.Open(jobs.Config{
		Exec:               s.execJob,
		PoolSubmit:         func(run func()) error { return s.pool.submit(context.Background(), run) },
		Timeout:            cfg.RequestTimeout,
		TTL:                cfg.JobsTTL,
		StoreCap:           cfg.JobsStore,
		MaxQueued:          cfg.JobsQueue,
		MaxQueuedPerTenant: cfg.JobsPerTenant,
		Quantum:            cfg.JobsQuantum,
		OnDone:             s.onJobDone,
		IDs:                s.idGen,
		Durability:         durability,
	})
	if err != nil {
		s.pool.close()
		return nil, err
	}
	s.jobs = mgr
	s.breakers = map[string]*breaker{
		epDetect: newBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown),
		epBatch:  newBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown),
		epJobs:   newBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown),
	}
	s.metrics = newMetrics(
		[]string{epDetect, epBatch, epJobs, epJobStatus, epHealthz, epMetrics},
		s.pool.depth, s.cache.len,
	)
	s.metrics.registerBreakers(s.breakers)
	s.metrics.registerCacheCorruptions(s.cache.corrupted)
	// The EWMA is kept in nanoseconds (duration arithmetic in admit and
	// jobRetrySeconds); the _seconds gauge converts at the edge.
	s.metrics.registerJobs(s.jobs, s.jobLatQ, func() float64 {
		return math.Float64frombits(s.jobEWMA.Load()) / float64(time.Second)
	})
	s.metrics.registerTracing(s.tenants)
	// The SLO engine samples the metrics counters just registered:
	// availability counts every compute request not answered with an
	// error or shed status, latency counts requests finishing under the
	// configured bound. A fast-burn rising edge captures profiles.
	s.sloEng = slo.New(slo.Config{
		Objectives: []slo.Objective{
			{Name: "availability", Target: 0.999, Source: s.availabilitySource},
			{Name: "latency", Target: 0.99, Source: s.latencySource},
		},
		Windows:    cfg.SLOWindows,
		Interval:   cfg.SLOInterval,
		OnFastBurn: s.onFastBurn,
	})
	s.metrics.registerSLO(s.sloEng)
	s.sloDone = make(chan struct{})
	go s.sloEng.Run(s.sloDone)
	s.mux = http.NewServeMux()
	s.mux.Handle("POST /v1/detect", s.instrument(epDetect, s.handleDetect))
	s.mux.Handle("POST /v1/detect/batch", s.instrument(epBatch, s.handleBatch))
	s.mux.Handle("POST /v1/jobs", s.instrument(epJobs, s.handleJobSubmit))
	s.mux.Handle("GET /v1/jobs/{id}", s.instrument(epJobStatus, s.handleJobStatus))
	s.mux.Handle("GET /healthz", s.instrument(epHealthz, s.handleHealthz))
	s.mux.Handle("GET /metrics", s.instrument(epMetrics, s.handleMetrics))
	return s, nil
}

// Handler returns the fully-instrumented HTTP handler, for mounting
// the service inside another server (or an httptest.Server).
func (s *Server) Handler() http.Handler { return s.mux }

// Close stops the async job manager (failing still-queued jobs) and
// then the worker pool after draining in-flight executions. Call after
// the HTTP listener has stopped accepting requests. Idempotent.
func (s *Server) Close() {
	s.draining.Store(true)
	s.sloStop.Do(func() { close(s.sloDone) })
	// Order matters: the job manager must stop dispatching before the
	// pool closes (its dispatcher blocks in pool.submit under load);
	// executions already on the pool finish inside the pool drain.
	s.jobs.Close()
	s.pool.close()
}

// availabilitySource feeds the availability SLO: good is every
// compute-endpoint request that was not answered with an error status
// (shed 429/503 responses land in the error counters too, so a shed
// request burns budget — overload is an availability failure from the
// client's side of the wire).
func (s *Server) availabilitySource() (good, total float64) {
	for _, ep := range []string{epDetect, epBatch, epJobs} {
		req := expvarInt(s.metrics.requests, ep)
		errs := expvarInt(s.metrics.errors, ep)
		total += req
		good += req - errs
	}
	return good, total
}

// latencySource feeds the latency SLO from the compute endpoints'
// latency histograms: good is every request that finished within the
// configured target.
func (s *Server) latencySource() (good, total float64) {
	targetMS := float64(s.cfg.SLOLatencyTarget) / float64(time.Millisecond)
	for _, ep := range []string{epDetect, epBatch, epJobs} {
		g, t := s.metrics.latency[ep].countUnder(targetMS)
		good += g
		total += t
	}
	return good, total
}

// onFastBurn is the SLO engine's rising-edge hook: log the page-worthy
// event and capture post-mortem profiles. The capture blocks for the
// CPU-profile window, so it runs off the engine's tick goroutine.
func (s *Server) onFastBurn(objective string) {
	if s.logger != nil {
		s.logger.Warn("slo fast burn", slog.String("objective", objective))
	}
	if s.profiles == nil {
		return
	}
	//lint:ignore rplint/goroleak capture is bounded by the CPU-profile window and must outlive the engine tick that triggered it; tying it to the run ctx would abort the post-mortem it exists to take
	go func() {
		dir, err := s.profiles.Capture("fast_burn-" + objective)
		switch {
		case err != nil:
			if s.logger != nil {
				s.logger.Error("profile capture failed",
					slog.String("objective", objective), slog.Any("error", err))
			}
		case dir != "":
			s.metrics.profileCaptures.Add(1)
			if s.logger != nil {
				s.logger.Warn("captured post-mortem profiles",
					slog.String("objective", objective), slog.String("dir", dir))
			}
		}
	}()
}

// mintSpanID derives a fresh span ID from the server's request-ID
// mint (the low half of a 128-bit splitmix64 ID is itself uniformly
// distributed).
func (s *Server) mintSpanID() trace.SpanID {
	id := s.idGen.Next()
	var sp trace.SpanID
	copy(sp[:], id[8:])
	if sp.IsZero() { // the all-zero span ID is invalid on the wire
		sp[7] = 1
	}
	return sp
}

// sampleTrace is the head-sampling decision for a request without an
// incoming sampled trace context.
func (s *Server) sampleTrace() bool {
	n := s.cfg.TraceSampleEvery
	if n <= 0 {
		return false
	}
	if n == 1 {
		return true
	}
	return s.traceCtr.Add(1)%uint64(n) == 1
}

// statusRecorder captures the response status for metrics.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

// computeEndpoint reports whether ep admits detection work (and
// therefore falls under overload protection); health, metrics, and
// job polling stay reachable while draining or broken — that is when
// they matter most (finished async results must remain retrievable
// through a drain).
func computeEndpoint(ep string) bool {
	return ep == epDetect || ep == epBatch || ep == epJobs
}

// instrument wraps a handler with the request-size limit, the
// per-endpoint metrics (request count, error count, in-flight gauge,
// latency histogram), and — on the compute endpoints — the
// observability scope (a request ID minted at admission, propagated
// via context into the pipeline, returned in X-Request-ID, and
// committed to the flight recorder at completion) plus the overload
// protections: the draining gate, the circuit breaker, and a
// panic-recovery net that turns a handler panic into a structured 500
// instead of a torn connection.
func (s *Server) instrument(ep string, h http.HandlerFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		s.metrics.inFlight.Add(1)
		defer s.metrics.inFlight.Add(-1)
		if r.Body != nil {
			r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
		}
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		exemplarTrace := "" // trace ID riding the latency histogram, sampled requests only
		defer func() { s.metrics.observe(ep, time.Since(start), rec.status, exemplarTrace) }()

		if computeEndpoint(ep) {
			// Mint the correlation ID at admission — before any gate can
			// reject the request — so even a shed 503 is retrievable from
			// the flight recorder by the ID the client received.
			scope := &obs.Scope{
				ID:       s.idGen.Next(),
				Logger:   s.logger,
				Endpoint: ep,
				Start:    start,
			}
			scope.Tenant = s.tenants.observe(r.Header.Get(TenantHeader))
			// W3C trace context: continue an incoming traceparent (same
			// trace ID, fresh span ID, remote span as the root's parent)
			// or mint a context from the request ID. An incoming sampled
			// flag forces recording; otherwise head sampling decides. The
			// sampled-out path allocates nothing: the nil *Recording is
			// carried through the whole pipeline by pointer compares.
			tp, hasTP := trace.ParseTraceparent(r.Header.Get("traceparent"))
			sc := trace.SpanContext{SpanID: s.mintSpanID()}
			if hasTP {
				sc.TraceID = tp.TraceID
			} else {
				sc.TraceID = [16]byte(scope.ID)
			}
			sc.Sampled = (hasTP && tp.Sampled) || s.sampleTrace()
			var spanRec *trace.Recording
			var remoteParent trace.SpanID
			if hasTP {
				remoteParent = tp.SpanID
			}
			if sc.Sampled {
				spanRec = trace.NewRecording(sc, 0)
				scope.Spans = spanRec
				s.metrics.tracesSampled.Add(1)
				exemplarTrace = sc.TraceIDString()
			}
			// Echo the (possibly minted) context so the caller can fetch
			// /debug/traces/{traceid}; requests that neither carried nor
			// sampled a trace stay header-free and allocation-free.
			if hasTP || sc.Sampled {
				rec.Header().Set("traceparent", sc.Traceparent())
			}
			rec.Header().Set("X-Request-ID", scope.ID.String())
			r = r.WithContext(obs.NewContext(r.Context(), scope))
			defer s.finishRequest(scope, spanRec, remoteParent, rec, start)

			if s.draining.Load() {
				s.metrics.shed.Add(ep, 1)
				scope.ErrorCode = "shutting_down"
				writeError(rec, http.StatusServiceUnavailable, "shutting_down",
					"server is draining; retry against another instance")
				return
			}
			br := s.breakers[ep]
			if !br.allow() {
				s.metrics.shed.Add(ep, 1)
				scope.ErrorCode = "breaker_open"
				rec.Header().Set("Retry-After", strconv.Itoa(br.retryAfter()))
				writeError(rec, http.StatusServiceUnavailable, "breaker_open",
					"endpoint suspended after repeated internal failures")
				return
			}
			defer func() {
				if v := recover(); v != nil {
					s.metrics.panicsRecovered.Add(1)
					scope.ErrorCode = "internal_panic"
					scope.Log(r.Context(), slog.LevelError, "handler panicked",
						slog.Any("panic", v))
					// Headers may already be gone; WriteHeader is then a
					// no-op and the client sees a truncated body, but the
					// breaker and metrics still record an internal failure.
					rec.status = http.StatusInternalServerError
					writeError(rec, http.StatusInternalServerError, "internal_panic",
						"request handler panicked: %v", v)
				}
				br.finish(rec.status == http.StatusInternalServerError)
			}()
			// Fault point "serve/handler": an unexpected failure inside
			// the HTTP layer itself (before any detection work).
			if err := faults.Check(faults.PointServeHandler); err != nil {
				scope.AddFault(faults.PointServeHandler)
				scope.ErrorCode = "internal_error"
				writeError(rec, http.StatusInternalServerError, "internal_error",
					"%v", err)
				return
			}
		}
		h(rec, r)
	})
}

// finishRequest commits one completed compute request to the flight
// recorders — the request record always, the span tree when the
// request was sampled — and emits the sampled access log. Runs
// deferred from instrument, after the handler (and the panic-recovery
// net) finished annotating the scope.
func (s *Server) finishRequest(scope *obs.Scope, spanRec *trace.Recording, remoteParent trace.SpanID, rec *statusRecorder, start time.Time) {
	record := obs.Record{
		ID:            scope.ID,
		Time:          start,
		Endpoint:      scope.Endpoint,
		Tenant:        scope.Tenant,
		Status:        rec.status,
		Duration:      time.Since(start),
		SeriesLen:     scope.SeriesLen,
		BatchSize:     scope.BatchSize,
		OptionsDigest: scope.OptionsDigest,
		Cached:        scope.Cached,
		ErrorCode:     scope.ErrorCode,
		DegradedCount: scope.DegradedCount,
		ItemErrors:    scope.ItemErrors,
		FaultPoints:   scope.Faults(),
		Degraded:      scope.Degraded,
		Trace:         scope.Trace,
	}
	s.recorder.Record(&record)
	if spanRec != nil {
		spanRec.FinishRoot(registry.SpanRequest, remoteParent, start, record.Duration,
			trace.Attr{Key: "endpoint", Value: scope.Endpoint},
			trace.Attr{Key: "status", Value: strconv.Itoa(rec.status)},
			trace.Attr{Key: "tenant", Value: scope.Tenant},
			trace.Attr{Key: "request_id", Value: scope.ID.String()},
		)
		tr := trace.TraceRecord{
			TraceID:  spanRec.Context().TraceID,
			Time:     start,
			Duration: record.Duration,
			Endpoint: scope.Endpoint,
			Tenant:   scope.Tenant,
			Status:   rec.status,
			Outcome:  record.Outcome(),
			Spans:    spanRec.Spans(),
			Dropped:  spanRec.Dropped(),
		}
		s.spans.Add(&tr)
		s.metrics.traceSpans.Add(int64(len(tr.Spans)))
	}
	if s.logger == nil {
		return
	}
	// Exceptional requests always log; healthy ones are sampled.
	exceptional := record.Interesting()
	if !exceptional {
		if s.cfg.AccessLogEvery < 1 {
			return
		}
		if s.accessCtr.Add(1)%uint64(s.cfg.AccessLogEvery) != 0 {
			return
		}
	}
	level := slog.LevelInfo
	if record.Status >= 500 {
		level = slog.LevelError
	} else if exceptional {
		level = slog.LevelWarn
	}
	attrs := []slog.Attr{
		slog.String("endpoint", record.Endpoint),
		slog.Int("status", record.Status),
		slog.Duration("duration", record.Duration),
		slog.Bool("cached", record.Cached),
	}
	if record.ErrorCode != "" {
		attrs = append(attrs, slog.String("error_code", record.ErrorCode))
	}
	if record.DegradedCount > 0 {
		attrs = append(attrs, slog.Int("degraded", record.DegradedCount))
	}
	if record.ItemErrors > 0 {
		attrs = append(attrs, slog.Int("item_errors", record.ItemErrors))
	}
	if len(record.FaultPoints) > 0 {
		attrs = append(attrs, slog.Any("fault_points", record.FaultPoints))
	}
	scope.Log(context.Background(), level, "request", attrs...)
}

// ewmaAlpha is the smoothing factor of the detection service-time
// average feeding the admission controller.
const ewmaAlpha = 0.2

// observeJobTime folds one detection's service time into the EWMA.
func (s *Server) observeJobTime(d time.Duration) {
	for {
		old := s.jobEWMA.Load()
		prev := math.Float64frombits(old)
		next := float64(d)
		if old != 0 {
			next = ewmaAlpha*float64(d) + (1-ewmaAlpha)*prev
		}
		if s.jobEWMA.CompareAndSwap(old, math.Float64bits(next)) {
			return
		}
	}
}

// admit decides whether a compute request may enter the worker queue.
// It sheds (returning a Retry-After value in seconds) when the queue
// is already full, or when the estimated wait for a new job — queued
// jobs times the average service time, spread over the workers —
// already exceeds the request timeout, meaning the request would only
// occupy queue space until its own deadline kills it. Shedding at the
// door with 429 keeps the queue short enough that accepted requests
// still finish in time; it is the difference between a slow service
// and a collapsed one.
func (s *Server) admit() (retryAfter int, ok bool) {
	if s.pool.saturated() {
		return 1, false
	}
	avg := math.Float64frombits(s.jobEWMA.Load())
	if avg <= 0 {
		return 0, true
	}
	wait := time.Duration(float64(s.pool.depth()) * avg / float64(s.pool.workers))
	if wait <= s.cfg.RequestTimeout {
		return 0, true
	}
	secs := int((wait - s.cfg.RequestTimeout + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	if secs > 60 {
		secs = 60
	}
	return secs, false
}

// Run listens on cfg.Addr and serves until ctx is cancelled (e.g. by
// SIGTERM via signal.NotifyContext), then shuts down gracefully:
// the listener closes, in-flight requests get up to DrainTimeout to
// finish, and the worker pool drains. Returns nil on a clean drain.
func (s *Server) Run(ctx context.Context) error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return err
	}
	// The bound address is logged (not just configured) so operators —
	// and the e2e harness — can discover the actual port when the
	// config asked for :0.
	if s.logger != nil {
		s.logger.Info("api listening", slog.String("addr", ln.Addr().String()))
	}
	if s.cfg.DebugAddr != "" {
		dln, err := net.Listen("tcp", s.cfg.DebugAddr)
		if err != nil {
			ln.Close()
			return err
		}
		if s.logger != nil {
			s.logger.Info("debug listening", slog.String("addr", dln.Addr().String()))
		}
		// The debug server lives and dies with the run context; it has
		// no in-flight work worth draining, so Close (not Shutdown) is
		// enough.
		dbg := &http.Server{Handler: s.DebugHandler(), ReadHeaderTimeout: 10 * time.Second}
		//lint:ignore rplint/goroleak Serve returns when the deferred dbg.Close() below closes the listener; the lifecycle tie is the listener, not a ctx
		go func() { _ = dbg.Serve(dln) }()
		defer dbg.Close()
	}
	return s.Serve(ctx, ln)
}

// Serve is Run on a caller-provided listener (useful for tests and
// examples that need an ephemeral port).
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	// Request contexts deliberately do not inherit the run context:
	// graceful shutdown should let in-flight detections finish inside
	// the drain window, not abort them the instant SIGTERM arrives.
	// Each request is still bounded by RequestTimeout.
	srv := &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	errCh := make(chan error, 1)
	//lint:ignore rplint/goroleak Serve returns when Shutdown/Close below closes the listener and the buffered errCh lets the send complete; the lifecycle tie is the listener, not a ctx
	go func() { errCh <- srv.Serve(ln) }()

	select {
	case err := <-errCh:
		s.Close()
		return err
	case <-ctx.Done():
	}
	// Flip the draining gate before Shutdown: requests already inside
	// a handler finish normally within the drain window, but compute
	// requests that have not started yet are shed with a structured
	// 503 instead of racing the worker-pool close.
	s.draining.Store(true)
	drainCtx, cancel := context.WithTimeout(context.Background(), s.cfg.DrainTimeout)
	defer cancel()
	err := srv.Shutdown(drainCtx)
	s.Close()
	if err != nil {
		return err
	}
	<-errCh // Serve has returned http.ErrServerClosed
	return nil
}
