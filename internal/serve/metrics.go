package serve

import (
	"expvar"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"

	"robustperiod/internal/jobs"
	"robustperiod/internal/obs"
	"robustperiod/internal/registry"
	"robustperiod/internal/slo"
	"robustperiod/internal/trace"
)

// latencyBucketsMS are the endpoint-histogram bucket upper bounds, in
// milliseconds. The spread covers everything from a cache hit (<1ms)
// to a robust periodogram over a very long series (tens of seconds).
var latencyBucketsMS = []float64{1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000, 30000}

// stageBucketsMS are the pipeline-stage bucket upper bounds, in
// milliseconds. Stages are one to two orders of magnitude faster than
// whole requests — the HP filter or variance ranking over a modest
// series finishes in tens of microseconds — so the stage histograms
// start at 10µs instead of 1ms; sharing the endpoint buckets would
// collapse most stages into the first bucket and hide every
// regression below a millisecond.
var stageBucketsMS = []float64{0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000, 5000}

// histogram is a fixed-bucket latency histogram implementing
// expvar.Var, so it can live inside an expvar.Map and render itself
// as JSON on /debug/vars. The same counts back the Prometheus
// exposition on /metrics.
type histogram struct {
	bounds []float64 // upper bounds in milliseconds
	mu     sync.Mutex
	counts []uint64 // one per bucket, plus a final +Inf bucket
	total  uint64
	sumMS  float64
	// ex holds the latest exemplar per bucket (seconds), lazily
	// allocated on the first traced observation so histograms that
	// never see a sampled request stay exemplar-free.
	ex []bucketExemplar
}

// bucketExemplar is the newest sampled observation of one bucket: the
// trace to look at when asking "what does a request in this latency
// band look like".
type bucketExemplar struct {
	traceID string
	value   float64 // seconds, <= the bucket bound by construction
	ts      float64 // unix seconds
}

func newHistogram(bounds []float64) *histogram {
	return &histogram{bounds: bounds, counts: make([]uint64, len(bounds)+1)}
}

// Observe records one request duration.
func (h *histogram) Observe(d time.Duration) {
	h.ObserveTraced(d, "", time.Time{})
}

// ObserveTraced records one duration and, when the observation came
// from a sampled request, pins its trace ID as the bucket's exemplar.
func (h *histogram) ObserveTraced(d time.Duration, traceID string, now time.Time) {
	ms := float64(d) / float64(time.Millisecond)
	i := sort.SearchFloat64s(h.bounds, ms)
	h.mu.Lock()
	h.counts[i]++
	h.total++
	h.sumMS += ms
	if traceID != "" {
		if h.ex == nil {
			h.ex = make([]bucketExemplar, len(h.counts))
		}
		h.ex[i] = bucketExemplar{
			traceID: traceID,
			value:   ms / 1000,
			ts:      float64(now.UnixMilli()) / 1000,
		}
	}
	h.mu.Unlock()
}

// countUnder reports how many observations landed in buckets bounded
// at or under boundMS, and the total observation count — the latency
// SLO's good/total pair.
func (h *histogram) countUnder(boundMS float64) (under, total float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for i, b := range h.bounds {
		if b <= boundMS {
			under += float64(h.counts[i])
		}
	}
	return under, float64(h.total)
}

// snapshot copies the counts and per-bucket exemplars for rendering
// outside the lock; ex is nil when no traced observation ever landed.
func (h *histogram) snapshot() (counts []uint64, total uint64, sumMS float64, ex []obs.Exemplar) {
	h.mu.Lock()
	defer h.mu.Unlock()
	counts = make([]uint64, len(h.counts))
	copy(counts, h.counts)
	if h.ex != nil {
		ex = make([]obs.Exemplar, len(h.counts))
		for i, e := range h.ex {
			if e.traceID == "" {
				continue
			}
			ex[i] = obs.Exemplar{
				Labels: []obs.Label{{Name: "trace_id", Value: e.traceID}},
				Value:  e.value,
				Ts:     e.ts,
			}
		}
	}
	return counts, h.total, h.sumMS, ex
}

// String renders the histogram as a JSON object with cumulative
// bucket counts (Prometheus-style "le" semantics).
func (h *histogram) String() string {
	h.mu.Lock()
	defer h.mu.Unlock()
	var b strings.Builder
	fmt.Fprintf(&b, `{"count":%d,"sumMs":%.3f,"buckets":{`, h.total, h.sumMS)
	cum := uint64(0)
	for i, bound := range h.bounds {
		cum += h.counts[i]
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `"le%g":%d`, bound, cum)
	}
	fmt.Fprintf(&b, `,"leInf":%d}}`, h.total)
	return b.String()
}

// metrics aggregates every counter the service exports. The vars live
// in a per-Server expvar.Map rather than the process-global expvar
// registry, so multiple servers (e.g. in tests) never collide on
// Publish and /debug/vars reports exactly one server's view. The same
// state renders as Prometheus text exposition on GET /metrics.
type metrics struct {
	vars *expvar.Map

	requests        *expvar.Map // per-endpoint request counters
	errors          *expvar.Map // per-endpoint error (non-2xx) counters
	shed            *expvar.Map // per-endpoint load-shed counters (429/503 before compute)
	inFlight        *expvar.Int
	cacheHits       *expvar.Int
	cacheMisses     *expvar.Int
	panicsRecovered *expvar.Int
	degradedTotal   *expvar.Int           // detections that returned degradation annotations
	latency         map[string]*histogram // per-endpoint
	stageLat        map[string]*histogram // per pipeline stage

	// Streaming P50/P90/P99 estimates (P² algorithm), observed in
	// seconds, alongside the fixed-bucket histograms: the histograms
	// give Prometheus aggregatable data, the quantiles give an instant
	// answer without a query engine.
	latQ   map[string]*obs.Quantiles // per-endpoint
	stageQ map[string]*obs.Quantiles // per pipeline stage

	endpoints []string // sorted, for deterministic exposition order
	stages    []string

	// Snapshot hooks into the rest of the server, for the gauge
	// families of the exposition.
	queueDepth  func() int
	cacheLen    func() int
	corruptions func() int64
	breakers    map[string]*breaker

	// Async job tier hooks (registerJobs).
	jobsMgr *jobs.Manager
	jobLatQ *obs.Quantiles
	jobEWMA func() float64

	// Span tracing and tenant accounting (registerTracing).
	tracesSampled *expvar.Int
	traceSpans    *expvar.Int
	tenants       *tenantCounts

	// SLO engine hooks (registerSLO).
	sloStatus       func() []slo.Status
	profileCaptures *expvar.Int

	runtime *obs.RuntimeSampler
}

func newMetrics(endpoints []string, queueDepth, cacheLen func() int) *metrics {
	m := &metrics{
		vars:            new(expvar.Map).Init(),
		requests:        new(expvar.Map).Init(),
		errors:          new(expvar.Map).Init(),
		shed:            new(expvar.Map).Init(),
		inFlight:        new(expvar.Int),
		cacheHits:       new(expvar.Int),
		cacheMisses:     new(expvar.Int),
		panicsRecovered: new(expvar.Int),
		degradedTotal:   new(expvar.Int),
		tracesSampled:   new(expvar.Int),
		traceSpans:      new(expvar.Int),
		profileCaptures: new(expvar.Int),
		latency:         make(map[string]*histogram, len(endpoints)),
		latQ:            make(map[string]*obs.Quantiles, len(endpoints)),
		stageQ:          make(map[string]*obs.Quantiles),
		queueDepth:      queueDepth,
		cacheLen:        cacheLen,
		runtime:         obs.NewRuntimeSampler(),
	}
	m.endpoints = append(m.endpoints, endpoints...)
	sort.Strings(m.endpoints)
	lat := new(expvar.Map).Init()
	for _, ep := range endpoints {
		m.requests.Add(ep, 0)
		m.errors.Add(ep, 0)
		m.shed.Add(ep, 0)
		h := newHistogram(latencyBucketsMS)
		m.latency[ep] = h
		lat.Set(ep, h)
		m.latQ[ep] = obs.NewQuantiles()
	}
	// Per-stage histograms are keyed by the fixed canonical stage set
	// and registered exactly once, here, into this server's private
	// expvar map — restarting or running several servers (tests) never
	// re-publishes a name.
	m.stageLat = make(map[string]*histogram)
	stageLat := new(expvar.Map).Init()
	for _, st := range trace.PipelineStages() {
		h := newHistogram(stageBucketsMS)
		m.stageLat[st] = h
		stageLat.Set(st, h)
		m.stageQ[st] = obs.NewQuantiles()
		m.stages = append(m.stages, st)
	}
	sort.Strings(m.stages)
	m.vars.Set("stage_latency_ms", stageLat)
	m.vars.Set("requests", m.requests)
	m.vars.Set("errors", m.errors)
	m.vars.Set("requests_shed_total", m.shed)
	m.vars.Set("in_flight", m.inFlight)
	m.vars.Set("cache_hits", m.cacheHits)
	m.vars.Set("cache_misses", m.cacheMisses)
	m.vars.Set("panics_recovered", m.panicsRecovered)
	m.vars.Set("degraded_total", m.degradedTotal)
	m.vars.Set("latency_ms", lat)
	m.vars.Set("worker_queue_depth", expvar.Func(func() any { return queueDepth() }))
	m.vars.Set("cache_entries", expvar.Func(func() any { return cacheLen() }))
	return m
}

// registerBreakers exposes each compute endpoint's breaker state
// ("closed"/"open"/"half-open") and cumulative open count on
// /debug/vars and, numerically, on the Prometheus exposition.
func (m *metrics) registerBreakers(breakers map[string]*breaker) {
	m.breakers = breakers
	states := new(expvar.Map).Init()
	opens := new(expvar.Map).Init()
	for ep, br := range breakers {
		br := br
		states.Set(ep, expvar.Func(func() any { s, _ := br.snapshot(); return s }))
		opens.Set(ep, expvar.Func(func() any { _, n := br.snapshot(); return n }))
	}
	m.vars.Set("breaker_state", states)
	m.vars.Set("breaker_opens_total", opens)
}

// registerCacheCorruptions exposes the count of cache entries dropped
// by the integrity check on read.
func (m *metrics) registerCacheCorruptions(f func() int64) {
	m.corruptions = f
	m.vars.Set("cache_corruptions", expvar.Func(func() any { return f() }))
}

// registerJobs exposes the async job tier: cumulative counters, queue
// depth and per-state gauges, the submit-to-completion latency
// quantiles, and the admission controller's EWMA service-time
// estimate, on both /debug/vars and the Prometheus exposition.
func (m *metrics) registerJobs(mgr *jobs.Manager, latQ *obs.Quantiles, ewma func() float64) {
	m.jobsMgr = mgr
	m.jobLatQ = latQ
	m.jobEWMA = ewma
	m.vars.Set("jobs", expvar.Func(func() any {
		c := mgr.Counters()
		return map[string]any{
			"submitted":   c.Submitted,
			"coalesced":   c.Coalesced,
			"executions":  c.Executions,
			"done_ok":     c.DoneOK,
			"done_failed": c.DoneFailed,
			"expired":     c.Expired,
			"shed":        c.Shed,
			"queue_depth": mgr.QueueDepth(),
			"states":      mgr.StateCounts(),
		}
	}))
	m.vars.Set("jobs_wal", expvar.Func(func() any {
		ws := mgr.WALStats()
		if !ws.Enabled {
			return map[string]any{"enabled": false}
		}
		return map[string]any{
			"enabled":        true,
			"appends":        ws.Appends,
			"append_errs":    ws.AppendErrs,
			"fsyncs":         ws.Fsyncs,
			"sync_errs":      ws.SyncErrs,
			"bytes":          ws.Bytes,
			"replay_records": ws.ReplayRecords,
			"compactions":    ws.Compactions,
			"encode_errs":    ws.EncodeErrs,
			"recovered":      ws.Recovered,
			"lost":           ws.Lost,
		}
	}))
	m.vars.Set("admission_job_time_seconds", expvar.Func(func() any { return ewma() }))
}

// registerTracing exposes the span-tracing counters and the capped
// per-tenant request counts on /debug/vars and, via writeProm, the
// exposition.
func (m *metrics) registerTracing(t *tenantCounts) {
	m.tenants = t
	m.vars.Set("traces_sampled_total", m.tracesSampled)
	m.vars.Set("trace_spans_total", m.traceSpans)
	m.vars.Set("tenant_requests", expvar.Func(func() any {
		labels, counts := t.snapshot()
		out := make(map[string]uint64, len(labels))
		for i, l := range labels {
			out[l] = counts[i]
		}
		return out
	}))
}

// registerSLO exposes the burn-rate engine's evaluated objectives and
// the post-mortem capture counter.
func (m *metrics) registerSLO(eng *slo.Engine) {
	m.sloStatus = eng.Status
	m.vars.Set("slo", expvar.Func(func() any { return eng.Status() }))
	m.vars.Set("slo_profile_captures_total", m.profileCaptures)
}

// observeStages folds one detection's per-stage wall times into the
// stage latency histograms and quantile estimators, pinning the
// sampled request's trace ID as each stage bucket's exemplar. Stages
// outside the canonical pipeline set are ignored (the histogram keys
// are fixed at construction).
func (m *metrics) observeStages(s *trace.Summary, traceID string) {
	if s == nil {
		return
	}
	now := time.Time{}
	if traceID != "" {
		now = time.Now()
	}
	for _, st := range s.Stages {
		if h, ok := m.stageLat[st.Name]; ok {
			h.ObserveTraced(st.Duration, traceID, now)
		}
		m.stageQ[st.Name].Observe(st.Duration.Seconds())
	}
}

// annotateStageQuantiles fills a wire trace's per-stage P50/P90/P99
// fields from the server-wide streaming estimators, converted to the
// milliseconds the wire trace speaks.
func (m *metrics) annotateStageQuantiles(ts *TraceSummary) {
	if ts == nil {
		return
	}
	for i := range ts.Stages {
		q := m.stageQ[ts.Stages[i].Stage]
		if q.Count() == 0 {
			continue
		}
		v := q.Values()
		ts.Stages[i].P50Ms = v[0] * 1000
		ts.Stages[i].P90Ms = v[1] * 1000
		ts.Stages[i].P99Ms = v[2] * 1000
	}
}

// observe records one finished request on endpoint ep. traceID is the
// sampled request's trace ID (empty when unsampled) and becomes the
// latency bucket's exemplar.
func (m *metrics) observe(ep string, d time.Duration, status int, traceID string) {
	m.requests.Add(ep, 1)
	if status >= 400 {
		m.errors.Add(ep, 1)
	}
	if h, ok := m.latency[ep]; ok {
		now := time.Time{}
		if traceID != "" {
			now = time.Now()
		}
		h.ObserveTraced(d, traceID, now)
	}
	m.latQ[ep].Observe(d.Seconds())
}

// expvarInt reads the counter registered for key in an expvar map of
// *expvar.Int values.
func expvarInt(m *expvar.Map, key string) float64 {
	if v, ok := m.Get(key).(*expvar.Int); ok {
		return float64(v.Value())
	}
	return 0
}

// breakerStateCode maps a breaker state name to the numeric gauge the
// exposition reports.
func breakerStateCode(state string) float64 {
	switch state {
	case breakerStateName(breakerOpen):
		return 1
	case breakerStateName(breakerHalfOpen):
		return 2
	default:
		return 0
	}
}

// promHistogram renders one histogram series, converting the
// millisecond-denominated buckets to base-unit seconds and attaching
// the per-bucket trace-ID exemplars (emitted only in OpenMetrics
// mode; the writer drops them in 0.0.4 output).
func promHistogram(p *obs.PromWriter, name string, labels []obs.Label, h *histogram) {
	counts, _, sumMS, ex := h.snapshot()
	boundsSec := make([]float64, len(h.bounds))
	for i, b := range h.bounds {
		boundsSec[i] = b / 1000
	}
	p.HistogramExemplars(name, labels, boundsSec, counts, sumMS/1000, ex)
}

// writeProm renders the full text exposition — Prometheus 0.0.4, or
// OpenMetrics 1.0 with bucket exemplars and the terminal # EOF when
// openMetrics is set: build info, request/error/shed counters,
// gauges, breaker states, tenant and tracing counters, SLO burn
// rates, latency and stage histograms (seconds), streaming quantiles,
// and the runtime gauges. Families and series are emitted in sorted
// label order so scrapes are diffable.
func (m *metrics) writeProm(w io.Writer, openMetrics bool) error {
	p := obs.NewPromWriter(w)
	if openMetrics {
		p = obs.NewOpenMetricsWriter(w)
	}
	obs.GetBuildInfo().WriteProm(p)

	p.Family(registry.MetricRequestsTotal, "HTTP requests served, by endpoint.", "counter")
	for _, ep := range m.endpoints {
		p.Sample(registry.MetricRequestsTotal, []obs.Label{{Name: "endpoint", Value: ep}}, expvarInt(m.requests, ep))
	}
	p.Family(registry.MetricRequestErrorsTotal, "Requests answered with status >= 400, by endpoint.", "counter")
	for _, ep := range m.endpoints {
		p.Sample(registry.MetricRequestErrorsTotal, []obs.Label{{Name: "endpoint", Value: ep}}, expvarInt(m.errors, ep))
	}
	p.Family(registry.MetricRequestsShedTotal, "Requests shed before compute (429 or 503), by endpoint.", "counter")
	for _, ep := range m.endpoints {
		p.Sample(registry.MetricRequestsShedTotal, []obs.Label{{Name: "endpoint", Value: ep}}, expvarInt(m.shed, ep))
	}

	p.Family(registry.MetricRequestsInFlight, "Requests currently inside a handler.", "gauge")
	p.Sample(registry.MetricRequestsInFlight, nil, float64(m.inFlight.Value()))
	p.Family(registry.MetricWorkerQueueDepth, "Detection jobs waiting in the worker queue.", "gauge")
	p.Sample(registry.MetricWorkerQueueDepth, nil, float64(m.queueDepth()))
	p.Family(registry.MetricCacheEntries, "Entries currently in the result cache.", "gauge")
	p.Sample(registry.MetricCacheEntries, nil, float64(m.cacheLen()))

	p.Family(registry.MetricCacheHitsTotal, "Result-cache hits.", "counter")
	p.Sample(registry.MetricCacheHitsTotal, nil, float64(m.cacheHits.Value()))
	p.Family(registry.MetricCacheMissesTotal, "Result-cache misses.", "counter")
	p.Sample(registry.MetricCacheMissesTotal, nil, float64(m.cacheMisses.Value()))
	if m.corruptions != nil {
		p.Family(registry.MetricCacheCorruptionsTotal, "Cache entries dropped by the integrity check on read.", "counter")
		p.Sample(registry.MetricCacheCorruptionsTotal, nil, float64(m.corruptions()))
	}
	p.Family(registry.MetricPanicsRecoveredTotal, "Panics recovered in handlers and detection workers.", "counter")
	p.Sample(registry.MetricPanicsRecoveredTotal, nil, float64(m.panicsRecovered.Value()))
	p.Family(registry.MetricDegradedTotal, "Detections that returned graceful-degradation annotations.", "counter")
	p.Sample(registry.MetricDegradedTotal, nil, float64(m.degradedTotal.Value()))

	if len(m.breakers) > 0 {
		eps := make([]string, 0, len(m.breakers))
		for ep := range m.breakers {
			eps = append(eps, ep)
		}
		sort.Strings(eps)
		p.Family(registry.MetricBreakerState, "Circuit-breaker state by endpoint: 0 closed, 1 open, 2 half-open.", "gauge")
		for _, ep := range eps {
			state, _ := m.breakers[ep].snapshot()
			p.Sample(registry.MetricBreakerState, []obs.Label{{Name: "endpoint", Value: ep}}, breakerStateCode(state))
		}
		p.Family(registry.MetricBreakerOpensTotal, "Circuit-breaker open transitions by endpoint.", "counter")
		for _, ep := range eps {
			_, opens := m.breakers[ep].snapshot()
			p.Sample(registry.MetricBreakerOpensTotal, []obs.Label{{Name: "endpoint", Value: ep}}, float64(opens))
		}
	}

	if m.jobEWMA != nil {
		p.Family(registry.MetricAdmissionJobTime, "EWMA estimate of one detection's service time feeding the admission controller's Retry-After values.", "gauge")
		p.Sample(registry.MetricAdmissionJobTime, nil, m.jobEWMA())
	}
	if m.jobsMgr != nil {
		c := m.jobsMgr.Counters()
		p.Family(registry.MetricJobsSubmittedTotal, "Async job submissions accepted (coalesced followers included).", "counter")
		p.Sample(registry.MetricJobsSubmittedTotal, nil, float64(c.Submitted))
		p.Family(registry.MetricJobsCoalescedTotal, "Async jobs that coalesced onto an identical in-flight execution.", "counter")
		p.Sample(registry.MetricJobsCoalescedTotal, nil, float64(c.Coalesced))
		p.Family(registry.MetricJobsCompletedTotal, "Async jobs reaching a terminal state, by outcome (ok or failed).", "counter")
		p.Sample(registry.MetricJobsCompletedTotal, []obs.Label{{Name: "outcome", Value: "ok"}}, float64(c.DoneOK))
		p.Sample(registry.MetricJobsCompletedTotal, []obs.Label{{Name: "outcome", Value: "failed"}}, float64(c.DoneFailed))
		p.Family(registry.MetricJobsExpiredTotal, "Terminal async jobs reaped from the store after their TTL.", "counter")
		p.Sample(registry.MetricJobsExpiredTotal, nil, float64(c.Expired))
		p.Family(registry.MetricJobsShedTotal, "Async job submissions rejected by the fair-share admission bounds.", "counter")
		p.Sample(registry.MetricJobsShedTotal, nil, float64(c.Shed))
		p.Family(registry.MetricJobsQueueDepth, "Async job executions waiting in the fair-share queues.", "gauge")
		p.Sample(registry.MetricJobsQueueDepth, nil, float64(m.jobsMgr.QueueDepth()))
		states := m.jobsMgr.StateCounts()
		p.Family(registry.MetricJobsState, "Async jobs currently retained, by state (queued, running, done, failed).", "gauge")
		for _, st := range jobs.StateNames() {
			p.Sample(registry.MetricJobsState, []obs.Label{{Name: "state", Value: st}}, float64(states[st]))
		}
		p.Family(registry.MetricJobLatencyQuantile, "Streaming submit-to-completion job-latency quantile estimates (P2 algorithm).", "gauge")
		p.QuantileGauges(registry.MetricJobLatencyQuantile, nil, m.jobLatQ)
		if ws := m.jobsMgr.WALStats(); ws.Enabled {
			p.Family(registry.MetricWALAppendsTotal, "Records appended to the jobs write-ahead log.", "counter")
			p.Sample(registry.MetricWALAppendsTotal, nil, float64(ws.Appends))
			p.Family(registry.MetricWALFsyncsTotal, "Fsyncs issued by the jobs write-ahead log.", "counter")
			p.Sample(registry.MetricWALFsyncsTotal, nil, float64(ws.Fsyncs))
			p.Family(registry.MetricWALBytes, "Size of the current jobs write-ahead-log segment in bytes.", "gauge")
			p.Sample(registry.MetricWALBytes, nil, float64(ws.Bytes))
			p.Family(registry.MetricWALReplayRecordsTotal, "Log records decoded during startup replay.", "counter")
			p.Sample(registry.MetricWALReplayRecordsTotal, nil, float64(ws.ReplayRecords))
			p.Family(registry.MetricJobsRecoveredTotal, "Jobs restored to a pollable state by crash recovery (finished results plus re-enqueued submissions).", "counter")
			p.Sample(registry.MetricJobsRecoveredTotal, nil, float64(ws.Recovered))
			p.Family(registry.MetricJobsLostTotal, "Jobs that were mid-execution at a crash and failed as lost to restart.", "counter")
			p.Sample(registry.MetricJobsLostTotal, nil, float64(ws.Lost))
		}
	}

	if m.tenants != nil {
		p.Family(registry.MetricTenantRequestsTotal, "Requests by tenant; unknown API keys beyond the tracked set fold into the other label.", "counter")
		labels, counts := m.tenants.snapshot()
		for i, l := range labels {
			p.Sample(registry.MetricTenantRequestsTotal, []obs.Label{{Name: "tenant", Value: l}}, float64(counts[i]))
		}
	}
	p.Family(registry.MetricTracesSampledTotal, "Requests whose span tree was sampled into the trace flight recorder.", "counter")
	p.Sample(registry.MetricTracesSampledTotal, nil, float64(m.tracesSampled.Value()))
	p.Family(registry.MetricTraceSpansTotal, "Spans recorded into the trace flight recorder.", "counter")
	p.Sample(registry.MetricTraceSpansTotal, nil, float64(m.traceSpans.Value()))

	if m.sloStatus != nil {
		sts := m.sloStatus()
		p.Family(registry.MetricSLOObjective, "Configured SLO objective (target good-event fraction), by SLO.", "gauge")
		for _, st := range sts {
			p.Sample(registry.MetricSLOObjective, []obs.Label{{Name: "slo", Value: st.Name}}, st.Target)
		}
		p.Family(registry.MetricSLOBurnRate, "Error-budget burn rate by SLO and window (1 means burning exactly the budget).", "gauge")
		for _, st := range sts {
			for _, ws := range st.Windows {
				p.Sample(registry.MetricSLOBurnRate,
					[]obs.Label{{Name: "slo", Value: st.Name}, {Name: "window", Value: ws.ShortStr}}, ws.ShortBurn)
				p.Sample(registry.MetricSLOBurnRate,
					[]obs.Label{{Name: "slo", Value: st.Name}, {Name: "window", Value: ws.LongStr}}, ws.LongBurn)
			}
		}
		p.Family(registry.MetricSLOErrorBudgetRemaining, "Fraction of the SLO error budget remaining over the long window, by SLO.", "gauge")
		for _, st := range sts {
			p.Sample(registry.MetricSLOErrorBudgetRemaining, []obs.Label{{Name: "slo", Value: st.Name}}, st.BudgetRemaining)
		}
		p.Family(registry.MetricSLOAlert, "SLO alert state by SLO and severity: 1 while the multi-window burn-rate condition holds.", "gauge")
		for _, st := range sts {
			for _, ws := range st.Windows {
				v := 0.0
				if ws.Firing {
					v = 1
				}
				p.Sample(registry.MetricSLOAlert,
					[]obs.Label{{Name: "severity", Value: ws.Severity}, {Name: "slo", Value: st.Name}}, v)
			}
		}
		p.Family(registry.MetricSLOProfileCapturesTotal, "pprof profile captures triggered by fast-burn SLO alerts.", "counter")
		p.Sample(registry.MetricSLOProfileCapturesTotal, nil, float64(m.profileCaptures.Value()))
	}

	p.Family(registry.MetricRequestDuration, "Request latency by endpoint.", "histogram")
	for _, ep := range m.endpoints {
		promHistogram(p, registry.MetricRequestDuration, []obs.Label{{Name: "endpoint", Value: ep}}, m.latency[ep])
	}
	p.Family(registry.MetricStageDuration, "Pipeline stage latency by stage (microsecond-resolution low buckets).", "histogram")
	for _, st := range m.stages {
		promHistogram(p, registry.MetricStageDuration, []obs.Label{{Name: "stage", Value: st}}, m.stageLat[st])
	}

	p.Family(registry.MetricRequestLatencyQuantile, "Streaming request-latency quantile estimates (P2 algorithm) by endpoint.", "gauge")
	for _, ep := range m.endpoints {
		p.QuantileGauges(registry.MetricRequestLatencyQuantile, []obs.Label{{Name: "endpoint", Value: ep}}, m.latQ[ep])
	}
	p.Family(registry.MetricStageLatencyQuantile, "Streaming stage-latency quantile estimates (P2 algorithm) by stage.", "gauge")
	for _, st := range m.stages {
		p.QuantileGauges(registry.MetricStageLatencyQuantile, []obs.Label{{Name: "stage", Value: st}}, m.stageQ[st])
	}

	m.runtime.WriteProm(p)
	p.EOF()
	return p.Err()
}
