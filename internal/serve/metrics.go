package serve

import (
	"expvar"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"robustperiod/internal/trace"
)

// latencyBucketsMS are the histogram bucket upper bounds, in
// milliseconds. The spread covers everything from a cache hit (<1ms)
// to a robust periodogram over a very long series (tens of seconds).
var latencyBucketsMS = []float64{1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000, 30000}

// histogram is a fixed-bucket latency histogram implementing
// expvar.Var, so it can live inside an expvar.Map and render itself
// as JSON on /metrics.
type histogram struct {
	mu     sync.Mutex
	counts []uint64 // one per bucket, plus a final +Inf bucket
	total  uint64
	sumMS  float64
}

func newHistogram() *histogram {
	return &histogram{counts: make([]uint64, len(latencyBucketsMS)+1)}
}

// Observe records one request duration.
func (h *histogram) Observe(d time.Duration) {
	ms := float64(d) / float64(time.Millisecond)
	i := sort.SearchFloat64s(latencyBucketsMS, ms)
	h.mu.Lock()
	h.counts[i]++
	h.total++
	h.sumMS += ms
	h.mu.Unlock()
}

// String renders the histogram as a JSON object with cumulative
// bucket counts (Prometheus-style "le" semantics).
func (h *histogram) String() string {
	h.mu.Lock()
	defer h.mu.Unlock()
	var b strings.Builder
	fmt.Fprintf(&b, `{"count":%d,"sumMs":%.3f,"buckets":{`, h.total, h.sumMS)
	cum := uint64(0)
	for i, bound := range latencyBucketsMS {
		cum += h.counts[i]
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `"le%g":%d`, bound, cum)
	}
	fmt.Fprintf(&b, `,"leInf":%d}}`, h.total)
	return b.String()
}

// metrics aggregates every counter the service exports. The vars live
// in a per-Server expvar.Map rather than the process-global expvar
// registry, so multiple servers (e.g. in tests) never collide on
// Publish and /metrics reports exactly one server's view.
type metrics struct {
	vars *expvar.Map

	requests        *expvar.Map // per-endpoint request counters
	errors          *expvar.Map // per-endpoint error (non-2xx) counters
	shed            *expvar.Map // per-endpoint load-shed counters (429/503 before compute)
	inFlight        *expvar.Int
	cacheHits       *expvar.Int
	cacheMisses     *expvar.Int
	panicsRecovered *expvar.Int
	degradedTotal   *expvar.Int           // detections that returned degradation annotations
	latency         map[string]*histogram // per-endpoint
	stageLat        map[string]*histogram // per pipeline stage
}

func newMetrics(endpoints []string, queueDepth, cacheLen func() int) *metrics {
	m := &metrics{
		vars:            new(expvar.Map).Init(),
		requests:        new(expvar.Map).Init(),
		errors:          new(expvar.Map).Init(),
		shed:            new(expvar.Map).Init(),
		inFlight:        new(expvar.Int),
		cacheHits:       new(expvar.Int),
		cacheMisses:     new(expvar.Int),
		panicsRecovered: new(expvar.Int),
		degradedTotal:   new(expvar.Int),
		latency:         make(map[string]*histogram, len(endpoints)),
	}
	lat := new(expvar.Map).Init()
	for _, ep := range endpoints {
		m.requests.Add(ep, 0)
		m.errors.Add(ep, 0)
		m.shed.Add(ep, 0)
		h := newHistogram()
		m.latency[ep] = h
		lat.Set(ep, h)
	}
	// Per-stage histograms are keyed by the fixed canonical stage set
	// and registered exactly once, here, into this server's private
	// expvar map — restarting or running several servers (tests) never
	// re-publishes a name.
	m.stageLat = make(map[string]*histogram)
	stageLat := new(expvar.Map).Init()
	for _, st := range trace.PipelineStages() {
		h := newHistogram()
		m.stageLat[st] = h
		stageLat.Set(st, h)
	}
	m.vars.Set("stage_latency_ms", stageLat)
	m.vars.Set("requests", m.requests)
	m.vars.Set("errors", m.errors)
	m.vars.Set("requests_shed_total", m.shed)
	m.vars.Set("in_flight", m.inFlight)
	m.vars.Set("cache_hits", m.cacheHits)
	m.vars.Set("cache_misses", m.cacheMisses)
	m.vars.Set("panics_recovered", m.panicsRecovered)
	m.vars.Set("degraded_total", m.degradedTotal)
	m.vars.Set("latency_ms", lat)
	m.vars.Set("worker_queue_depth", expvar.Func(func() any { return queueDepth() }))
	m.vars.Set("cache_entries", expvar.Func(func() any { return cacheLen() }))
	return m
}

// registerBreakers exposes each compute endpoint's breaker state
// ("closed"/"open"/"half-open") and cumulative open count on /metrics.
func (m *metrics) registerBreakers(breakers map[string]*breaker) {
	states := new(expvar.Map).Init()
	opens := new(expvar.Map).Init()
	for ep, br := range breakers {
		br := br
		states.Set(ep, expvar.Func(func() any { s, _ := br.snapshot(); return s }))
		opens.Set(ep, expvar.Func(func() any { _, n := br.snapshot(); return n }))
	}
	m.vars.Set("breaker_state", states)
	m.vars.Set("breaker_opens_total", opens)
}

// registerCacheCorruptions exposes the count of cache entries dropped
// by the integrity check on read.
func (m *metrics) registerCacheCorruptions(f func() int64) {
	m.vars.Set("cache_corruptions", expvar.Func(func() any { return f() }))
}

// observeStages folds one detection's per-stage wall times into the
// stage latency histograms. Stages outside the canonical pipeline set
// are ignored (the histogram keys are fixed at construction).
func (m *metrics) observeStages(s *trace.Summary) {
	if s == nil {
		return
	}
	for _, st := range s.Stages {
		if h, ok := m.stageLat[st.Name]; ok {
			h.Observe(st.Duration)
		}
	}
}

// observe records one finished request on endpoint ep.
func (m *metrics) observe(ep string, d time.Duration, status int) {
	m.requests.Add(ep, 1)
	if status >= 400 {
		m.errors.Add(ep, 1)
	}
	if h, ok := m.latency[ep]; ok {
		h.Observe(d)
	}
}
