package serve

import (
	"context"
	"errors"
	"runtime"
	"sync"
)

// errPoolClosed is returned by submit after close has been called.
var errPoolClosed = errors.New("serve: worker pool closed")

// workerPool bounds the number of detections running at once. HTTP
// handler goroutines are cheap and unbounded; the CPU-heavy robust
// periodogram work is not, so every detection — single or batch item —
// funnels through this fixed set of workers. The queue gives short
// bursts somewhere to wait; sustained overload surfaces as submit
// blocking until the caller's context expires (backpressure, not
// collapse).
type workerPool struct {
	jobs    chan func()
	workers int
	wg      sync.WaitGroup

	// mu serializes channel-close against in-flight sends: submitters
	// hold the read side for the whole send, close takes the write
	// side before closing the channel, so a send on a closed channel
	// is impossible. Blocked submitters never deadlock close: the
	// workers keep draining the queue until the channel is closed,
	// which frees every pending send first.
	mu     sync.RWMutex
	closed bool
}

// newWorkerPool starts workers goroutines (<= 0 means GOMAXPROCS)
// with a queue of queueLen pending jobs (<= 0 means 4× workers).
func newWorkerPool(workers, queueLen int) *workerPool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if queueLen <= 0 {
		queueLen = 4 * workers
	}
	p := &workerPool{jobs: make(chan func(), queueLen), workers: workers}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer p.wg.Done()
			for job := range p.jobs {
				job()
			}
		}()
	}
	return p
}

// submit enqueues job, blocking while the queue is full. It fails
// with ctx.Err() when the caller gives up first, or errPoolClosed
// after close.
func (p *workerPool) submit(ctx context.Context, job func()) error {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.closed {
		return errPoolClosed
	}
	select {
	case p.jobs <- job:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// depth reports the number of queued (not yet started) jobs.
func (p *workerPool) depth() int { return len(p.jobs) }

// saturated reports whether the pending-job queue is full — the
// admission controller's cheapest overload signal.
func (p *workerPool) saturated() bool { return len(p.jobs) == cap(p.jobs) }

// close stops accepting jobs, runs everything already queued, and
// waits for the workers to drain. Safe to call more than once; call
// after the HTTP server has stopped accepting requests.
func (p *workerPool) close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	close(p.jobs)
	p.mu.Unlock()
	p.wg.Wait()
}
