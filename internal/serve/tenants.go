// Tenant-label cardinality cap. The tenant label on
// rp_tenant_requests_total comes straight from the X-API-Key header,
// which an abusive (or merely buggy) client can vary per request; an
// unbounded label would let one client grow the scrape by a series
// per request until the metrics pipeline falls over. The cap tracks
// the first max distinct keys it sees and folds every key beyond
// them into the reserved "other" label, so the exposition stays
// bounded no matter what arrives on the wire.
package serve

import (
	"sort"
	"sync"
)

// tenantOther is the fold-in label for unknown API keys beyond the
// tracked set.
const tenantOther = "other"

// tenantCounts is the capped per-tenant request counter behind
// rp_tenant_requests_total and the tenant fields of the request and
// trace flight recorders.
type tenantCounts struct {
	mu     sync.Mutex
	counts map[string]uint64
	max    int
}

// newTenantCounts builds a counter tracking up to max distinct tenant
// labels (plus "other"); max <= 0 selects 64. The default tenant is
// pre-seeded so keyless traffic never competes for a slot.
func newTenantCounts(max int) *tenantCounts {
	if max <= 0 {
		max = 64
	}
	t := &tenantCounts{counts: make(map[string]uint64, max+1), max: max}
	t.counts[defaultTenant] = 0
	return t
}

// observe canonicalizes one request's tenant: the empty key maps to
// the default tenant, a key already tracked (or arriving while slots
// remain) counts under itself, and anything else folds into "other".
// Returns the canonical label the request should carry everywhere —
// metrics, flight recorder, spans. Allocation-free for known keys.
func (t *tenantCounts) observe(key string) string {
	if key == "" {
		key = defaultTenant
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.counts[key]; !ok && len(t.counts) >= t.max {
		key = tenantOther
	}
	t.counts[key]++
	return key
}

// snapshot returns the tracked labels in sorted order with their
// counts, for the exposition and /debug/vars.
func (t *tenantCounts) snapshot() ([]string, []uint64) {
	t.mu.Lock()
	labels := make([]string, 0, len(t.counts))
	for k := range t.counts {
		labels = append(labels, k)
	}
	sort.Strings(labels)
	counts := make([]uint64, len(labels))
	for i, l := range labels {
		counts[i] = t.counts[l]
	}
	t.mu.Unlock()
	return labels, counts
}
