package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"robustperiod"
	"robustperiod/internal/obs"
)

// sineSeries builds a deterministic noisy sinusoid of the given
// period; phase seeds keep distinct series distinct for the cache.
func sineSeries(n, period int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	y := make([]float64, n)
	for i := range y {
		y[i] = 10*math.Sin(2*math.Pi*float64(i)/float64(period)) + 0.3*rng.NormFloat64()
	}
	return y
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func postJSON(t *testing.T, url string, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

func detectBody(t *testing.T, series []float64, opts *APIOptions, details bool) string {
	t.Helper()
	b, err := json.Marshal(DetectRequest{Series: series, Options: opts, Details: details})
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func errCode(t *testing.T, body []byte) string {
	t.Helper()
	var env struct {
		Error *APIError `json:"error"`
	}
	if err := json.Unmarshal(body, &env); err != nil || env.Error == nil {
		t.Fatalf("no error envelope in %s", body)
	}
	return env.Error.Code
}

func TestDetectHandlerBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxBodyBytes: 4096, MaxSeriesLen: 128})
	cases := []struct {
		name       string
		body       string
		wantStatus int
		wantCode   string
	}{
		{"invalid json", `{"series":[1,2`, http.StatusBadRequest, "bad_json"},
		{"nan literal", `{"series":[NaN,1,2]}`, http.StatusBadRequest, "bad_json"},
		{"inf literal", `{"series":[Infinity]}`, http.StatusBadRequest, "bad_json"},
		{"unknown field", `{"serie":[1,2,3]}`, http.StatusBadRequest, "bad_json"},
		{"empty series", `{"series":[]}`, http.StatusBadRequest, "empty_series"},
		{"missing series", `{}`, http.StatusBadRequest, "empty_series"},
		{"series too long", detectBody(t, make([]float64, 200), nil, false), http.StatusBadRequest, "series_too_long"},
		{"unknown wavelet", `{"series":[1,2,3],"options":{"wavelet":"db99"}}`, http.StatusBadRequest, "bad_options"},
		{"oversized body", `{"series":[` + strings.Repeat("1,", 4000) + `1]}`,
			http.StatusRequestEntityTooLarge, "body_too_large"},
		{"too short for detector", `{"series":[1,2,3]}`, http.StatusBadRequest, "detect_failed"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := postJSON(t, ts.URL+"/v1/detect", tc.body)
			if resp.StatusCode != tc.wantStatus {
				t.Fatalf("status = %d want %d (body %s)", resp.StatusCode, tc.wantStatus, body)
			}
			if code := errCode(t, body); code != tc.wantCode {
				t.Errorf("code = %q want %q", code, tc.wantCode)
			}
		})
	}
}

func TestValidateSeriesNonFinite(t *testing.T) {
	// Strict JSON cannot carry NaN/Inf, but other entry points can;
	// the validator must catch them before the detector.
	if err := validateSeries([]float64{1, math.NaN(), 3}, 0, false); err == nil || err.Code != "non_finite_value" {
		t.Errorf("NaN: got %v", err)
	}
	if err := validateSeries([]float64{math.Inf(1)}, 0, false); err == nil || err.Code != "non_finite_value" {
		t.Errorf("Inf: got %v", err)
	}
	if err := validateSeries([]float64{1, 2, 3}, 0, false); err != nil {
		t.Errorf("finite: got %v", err)
	}
	// fill_missing admits NaN (bounded) but never Inf.
	if err := validateSeries([]float64{1, math.NaN(), 3}, 0, true); err != nil {
		t.Errorf("NaN with fill: got %v", err)
	}
	if err := validateSeries([]float64{math.Inf(-1), 1}, 0, true); err == nil || err.Code != "non_finite_value" {
		t.Errorf("Inf with fill: got %v", err)
	}
	if err := validateSeries([]float64{math.NaN(), math.NaN(), 3}, 0, true); err == nil || err.Code != "too_many_missing" {
		t.Errorf("mostly missing: got %v", err)
	}
}

func TestMethodNotAllowed(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/v1/detect")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/detect = %d, want 405", resp.StatusCode)
	}
}

func TestDetectMatchesLibrary(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	series := sineSeries(480, 24, 2)
	want, err := robustperiod.Detect(series, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, body := postJSON(t, ts.URL+"/v1/detect", detectBody(t, series, nil, true))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var got DetectResponse
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Periods, want) {
		t.Errorf("periods = %v, direct Detect = %v", got.Periods, want)
	}
	if got.Cached {
		t.Error("first request reported cached")
	}
	if len(got.Levels) == 0 {
		t.Error("details requested but no levels returned")
	}
}

func TestBatchConcurrentCorrectness(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	batch := [][]float64{
		sineSeries(480, 24, 3),
		sineSeries(512, 32, 4),
		sineSeries(400, 20, 5),
		sineSeries(480, 48, 6),
	}
	wants := make([][]int, len(batch))
	for i, series := range batch {
		w, err := robustperiod.Detect(series, nil)
		if err != nil {
			t.Fatal(err)
		}
		if w == nil {
			w = []int{}
		}
		wants[i] = w
	}
	// One bad series in the middle must fail alone.
	batch = append(batch[:2], append([][]float64{{}}, batch[2:]...)...)
	wants = append(wants[:2], append([][]int{nil}, wants[2:]...)...)

	b, _ := json.Marshal(BatchRequest{Series: batch})
	resp, body := postJSON(t, ts.URL+"/v1/detect/batch", string(b))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var got BatchResponse
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	if len(got.Results) != len(batch) {
		t.Fatalf("got %d results, want %d", len(got.Results), len(batch))
	}
	for i, item := range got.Results {
		if item.Index != i {
			t.Errorf("result %d has index %d", i, item.Index)
		}
		if wants[i] == nil {
			if item.Error == nil || item.Error.Code != "empty_series" {
				t.Errorf("result %d: want empty_series error, got %+v", i, item.Error)
			}
			continue
		}
		if item.Error != nil {
			t.Errorf("result %d: unexpected error %v", i, item.Error)
			continue
		}
		if !reflect.DeepEqual(item.Periods, wants[i]) {
			t.Errorf("result %d periods = %v, direct Detect = %v", i, item.Periods, wants[i])
		}
	}
}

// metricsSnapshot fetches GET /metrics, runs the exposition through
// the Prometheus text-format conformance checker, and returns the
// parsed families.
func metricsSnapshot(t *testing.T, url string) []obs.PromFamily {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if err := obs.CheckExposition(body); err != nil {
		t.Fatalf("/metrics fails conformance: %v", err)
	}
	fams, err := obs.ParseExposition(body)
	if err != nil {
		t.Fatal(err)
	}
	return fams
}

// promValue returns the value of the sample with the given name whose
// label set includes every name=value pair in kv (alternating). Fails
// the test when no such sample exists.
func promValue(t *testing.T, fams []obs.PromFamily, sample string, kv ...string) float64 {
	t.Helper()
	for i := range fams {
		for _, s := range fams[i].Samples {
			if s.Name != sample {
				continue
			}
			match := true
			for j := 0; j+1 < len(kv); j += 2 {
				if s.Label(kv[j]) != kv[j+1] {
					match = false
					break
				}
			}
			if match {
				return s.Value
			}
		}
	}
	t.Fatalf("no sample %s %v in exposition", sample, kv)
	return 0
}

func TestCacheHitAndMetrics(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	series := sineSeries(480, 24, 7)
	body := detectBody(t, series, nil, false)

	_, first := postJSON(t, ts.URL+"/v1/detect", body)
	resp, second := postJSON(t, ts.URL+"/v1/detect", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, second)
	}
	var r1, r2 DetectResponse
	if err := json.Unmarshal(first, &r1); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(second, &r2); err != nil {
		t.Fatal(err)
	}
	if r1.Cached {
		t.Error("first request reported cached")
	}
	if !r2.Cached {
		t.Error("warm repeat not served from cache")
	}
	if !reflect.DeepEqual(r1.Periods, r2.Periods) {
		t.Errorf("cached periods %v != fresh periods %v", r2.Periods, r1.Periods)
	}

	// Same series, different options: must be a distinct cache entry.
	resp, third := postJSON(t, ts.URL+"/v1/detect",
		detectBody(t, series, &APIOptions{EnergyShare: 1}, false))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, third)
	}
	var r3 DetectResponse
	if err := json.Unmarshal(third, &r3); err != nil {
		t.Fatal(err)
	}
	if r3.Cached {
		t.Error("different options served from cache")
	}

	m := metricsSnapshot(t, ts.URL)
	if hits := promValue(t, m, "rp_cache_hits_total"); hits < 1 {
		t.Errorf("rp_cache_hits_total = %v, want >= 1", hits)
	}
	if misses := promValue(t, m, "rp_cache_misses_total"); misses < 2 {
		t.Errorf("rp_cache_misses_total = %v, want >= 2", misses)
	}
	if reqs := promValue(t, m, "rp_requests_total", "endpoint", "detect"); reqs < 3 {
		t.Errorf("rp_requests_total{endpoint=detect} = %v, want >= 3", reqs)
	}
	if cnt := promValue(t, m, "rp_request_duration_seconds_count", "endpoint", "detect"); cnt < 3 {
		t.Errorf("rp_request_duration_seconds_count{endpoint=detect} = %v, want >= 3", cnt)
	}
}

func TestCacheEvictionThroughHandlers(t *testing.T) {
	_, ts := newTestServer(t, Config{CacheSize: 2})
	a := detectBody(t, sineSeries(256, 16, 10), nil, false)
	b := detectBody(t, sineSeries(256, 16, 11), nil, false)
	c := detectBody(t, sineSeries(256, 16, 12), nil, false)

	cachedOf := func(body string) bool {
		t.Helper()
		resp, raw := postJSON(t, ts.URL+"/v1/detect", body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", resp.StatusCode, raw)
		}
		var r DetectResponse
		if err := json.Unmarshal(raw, &r); err != nil {
			t.Fatal(err)
		}
		return r.Cached
	}

	if cachedOf(a) || cachedOf(b) {
		t.Fatal("cold requests reported cached")
	}
	if !cachedOf(a) {
		t.Error("a should be cached (LRU order [a b])")
	}
	// Inserting c evicts b (the least recently used), not a.
	if cachedOf(c) {
		t.Error("cold c reported cached")
	}
	if !cachedOf(a) {
		t.Error("a evicted although it was the most recently used")
	}
	if cachedOf(b) {
		t.Error("b survived although it was the LRU at eviction time")
	}
}

func TestDetectContextCancelsPromptly(t *testing.T) {
	// A service must be able to abandon work: a 1ms deadline on a
	// long series has to surface context.DeadlineExceeded long before
	// the detection could have finished.
	series := sineSeries(1<<14, 128, 13)
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := robustperiod.DetectContext(ctx, series, nil)
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if elapsed > 2*time.Second {
		t.Errorf("cancellation took %v; the deadline was 1ms", elapsed)
	}
}

func TestHandlerRequestTimeout(t *testing.T) {
	_, ts := newTestServer(t, Config{RequestTimeout: time.Millisecond})
	series := sineSeries(1<<14, 128, 14)
	resp, body := postJSON(t, ts.URL+"/v1/detect", detectBody(t, series, nil, false))
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504 (body %s)", resp.StatusCode, body)
	}
	if code := errCode(t, body); code != "deadline_exceeded" {
		t.Errorf("code = %q, want deadline_exceeded", code)
	}
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}
	var v map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil || v["status"] != "ok" {
		t.Fatalf("healthz body = %v, %v", v, err)
	}
}

func TestGracefulServeShutdown(t *testing.T) {
	s, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.Serve(ctx, ln) }()

	url := fmt.Sprintf("http://%s", ln.Addr())
	resp, err := http.Get(url + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Serve returned %v on graceful shutdown", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Serve did not drain within 10s")
	}
}
