package serve

import (
	"container/list"
	"encoding/binary"
	"hash/fnv"
	"math"
	"sync"
	"sync/atomic"

	"robustperiod"
	"robustperiod/internal/faults"
)

// cacheKey identifies one (series, options) detection request. Two
// independent FNV hashes (FNV-1a and FNV-1) plus the series length
// give an effective ~128-bit fingerprint, so accidental collisions
// between distinct requests are out of reach without storing the
// series itself in the cache.
type cacheKey struct {
	h1, h2 uint64
	n      int
}

// requestKey fingerprints a detection request. optsTag must be a
// canonical encoding of the options (the handler uses the normalized
// JSON of the request's options object).
func requestKey(series []float64, optsTag []byte) cacheKey {
	a := fnv.New64a()
	b := fnv.New64()
	var buf [8]byte
	for _, v := range series {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		a.Write(buf[:])
		b.Write(buf[:])
	}
	// Separator avoids ambiguity between series bytes and options tag.
	a.Write([]byte{0xff})
	b.Write([]byte{0xff})
	a.Write(optsTag)
	b.Write(optsTag)
	return cacheKey{h1: a.Sum64(), h2: b.Sum64(), n: len(series)}
}

// resultCache is a strict-LRU memo of detection results, safe for
// concurrent use. A nil *resultCache is a valid always-miss cache.
type resultCache struct {
	mu          sync.Mutex
	cap         int
	ll          *list.List // front = most recently used
	items       map[cacheKey]*list.Element
	corruptions atomic.Int64 // entries dropped by the read-side integrity check
}

type cacheEntry struct {
	key cacheKey
	res *robustperiod.Result
}

// newResultCache returns a cache holding at most capacity results;
// capacity <= 0 disables caching (returns nil).
func newResultCache(capacity int) *resultCache {
	if capacity <= 0 {
		return nil
	}
	return &resultCache{
		cap:   capacity,
		ll:    list.New(),
		items: make(map[cacheKey]*list.Element, capacity),
	}
}

// get returns the cached result for k, refreshing its recency.
func (c *resultCache) get(k cacheKey) (*robustperiod.Result, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[k]
	if !ok {
		return nil, false
	}
	// Fault point "serve/cache": a corrupted entry detected on read.
	// The self-healing response is to discard it and recompute — a
	// cache must never be able to serve garbage or take the service
	// down, only to miss.
	if err := faults.Check(faults.PointServeCache); err != nil {
		c.ll.Remove(el)
		delete(c.items, k)
		c.corruptions.Add(1)
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).res, true
}

// add inserts (or refreshes) a result, evicting the least recently
// used entry when over capacity.
func (c *resultCache) add(k cacheKey, res *robustperiod.Result) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[k]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*cacheEntry).res = res
		return
	}
	el := c.ll.PushFront(&cacheEntry{key: k, res: res})
	c.items[k] = el
	if c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
	}
}

// corrupted reports the number of entries dropped by the read-side
// integrity check. Works on a nil (disabled) cache.
func (c *resultCache) corrupted() int64 {
	if c == nil {
		return 0
	}
	return c.corruptions.Load()
}

// len reports the number of cached entries.
func (c *resultCache) len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
