package serve

import (
	"sync"
	"time"
)

// Circuit breaker states. The wire/metrics form is the lowercase name;
// the numeric order is part of the /metrics contract (0 healthy).
const (
	breakerClosed = iota
	breakerOpen
	breakerHalfOpen
)

func breakerStateName(s int) string {
	switch s {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// breaker is a per-endpoint circuit breaker over internal (5xx-class)
// failures. Closed it counts consecutive failures; at threshold it
// opens and rejects requests outright — a backend that is panicking or
// erroring on every request does not deserve the remaining queue
// capacity. After cooldown it half-opens: exactly one probe request is
// let through, and its verdict decides between closing (recovered) and
// re-opening (still broken). Client-caused failures (4xx, timeouts,
// cancellations) never count — a flood of bad input must not take the
// endpoint down for well-formed requests.
type breaker struct {
	threshold int              // consecutive failures to open
	cooldown  time.Duration    // open → half-open delay
	now       func() time.Time // injectable clock for tests

	mu       sync.Mutex
	state    int
	failures int       // consecutive failures while closed
	openedAt time.Time // when the breaker last opened
	probing  bool      // the single half-open probe is in flight
	opens    int64     // cumulative open transitions
}

// newBreaker returns a breaker, or nil (never trips) when threshold
// is negative.
func newBreaker(threshold int, cooldown time.Duration) *breaker {
	if threshold < 0 {
		return nil
	}
	if threshold == 0 {
		threshold = 5
	}
	if cooldown <= 0 {
		cooldown = 5 * time.Second
	}
	return &breaker{threshold: threshold, cooldown: cooldown, now: time.Now}
}

// allow reports whether a request may proceed. In the open state it
// returns false until cooldown has elapsed, then admits exactly one
// probe (transitioning to half-open); in half-open it rejects
// everything but that probe. A nil breaker always allows.
func (b *breaker) allow() bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if b.now().Sub(b.openedAt) < b.cooldown {
			return false
		}
		b.state = breakerHalfOpen
		b.probing = true
		return true
	default: // half-open
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

// finish records the outcome of a request previously admitted by
// allow. failed must be true only for internal failures.
func (b *breaker) finish(failed bool) {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		if !failed {
			b.failures = 0
			return
		}
		b.failures++
		if b.failures >= b.threshold {
			b.state = breakerOpen
			b.openedAt = b.now()
			b.opens++
		}
	case breakerHalfOpen:
		b.probing = false
		if failed {
			b.state = breakerOpen
			b.openedAt = b.now()
			b.opens++
			return
		}
		b.state = breakerClosed
		b.failures = 0
	case breakerOpen:
		// A request admitted before the trip finished after it; its
		// outcome carries no information about recovery.
	}
}

// retryAfter returns how long until the breaker will next admit a
// probe, rounded up to whole seconds (minimum 1) for a Retry-After
// header.
func (b *breaker) retryAfter() int {
	if b == nil {
		return 1
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	remain := b.cooldown - b.now().Sub(b.openedAt)
	if remain <= 0 {
		return 1
	}
	secs := int((remain + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}

// snapshot returns the current state name and the cumulative number
// of open transitions, for metrics.
func (b *breaker) snapshot() (state string, opens int64) {
	if b == nil {
		return breakerStateName(breakerClosed), 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return breakerStateName(b.state), b.opens
}
