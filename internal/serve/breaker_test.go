package serve

import (
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"robustperiod/internal/faults"
)

// fakeClock drives a breaker through time without sleeping.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func TestBreakerLifecycle(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	b := newBreaker(3, 5*time.Second)
	b.now = clk.now

	// Closed: failures below threshold keep admitting.
	for i := 0; i < 2; i++ {
		if !b.allow() {
			t.Fatalf("closed breaker rejected request %d", i)
		}
		b.finish(true)
	}
	// A success resets the consecutive count.
	if !b.allow() {
		t.Fatal("closed breaker rejected")
	}
	b.finish(false)
	for i := 0; i < 2; i++ {
		b.allow()
		b.finish(true)
	}
	if s, _ := b.snapshot(); s != "closed" {
		t.Fatalf("state = %s after reset + 2 failures, want closed", s)
	}

	// Third consecutive failure opens.
	b.allow()
	b.finish(true)
	if s, opens := b.snapshot(); s != "open" || opens != 1 {
		t.Fatalf("state = %s opens = %d, want open/1", s, opens)
	}
	if b.allow() {
		t.Fatal("open breaker admitted a request before cooldown")
	}
	if ra := b.retryAfter(); ra < 1 || ra > 5 {
		t.Errorf("retryAfter = %d, want within cooldown", ra)
	}

	// After cooldown: exactly one half-open probe.
	clk.advance(5 * time.Second)
	if !b.allow() {
		t.Fatal("cooled-down breaker rejected the probe")
	}
	if s, _ := b.snapshot(); s != "half-open" {
		t.Fatalf("state = %s, want half-open", s)
	}
	if b.allow() {
		t.Fatal("half-open breaker admitted a second request during the probe")
	}

	// Failed probe re-opens and restarts the cooldown.
	b.finish(true)
	if s, opens := b.snapshot(); s != "open" || opens != 2 {
		t.Fatalf("state = %s opens = %d after failed probe, want open/2", s, opens)
	}
	if b.allow() {
		t.Fatal("re-opened breaker admitted a request")
	}

	// Successful probe closes.
	clk.advance(5 * time.Second)
	if !b.allow() {
		t.Fatal("second probe rejected")
	}
	b.finish(false)
	if s, _ := b.snapshot(); s != "closed" {
		t.Fatalf("state = %s after successful probe, want closed", s)
	}
	if !b.allow() {
		t.Fatal("recovered breaker rejected a request")
	}
	b.finish(false)
}

func TestBreakerDisabledAndDefaults(t *testing.T) {
	if b := newBreaker(-1, 0); b != nil {
		t.Error("negative threshold should disable (nil breaker)")
	}
	var b *breaker
	if !b.allow() {
		t.Error("nil breaker must always allow")
	}
	b.finish(true) // must not panic
	if s, opens := b.snapshot(); s != "closed" || opens != 0 {
		t.Errorf("nil snapshot = %s/%d", s, opens)
	}
	if d := newBreaker(0, 0); d.threshold != 5 || d.cooldown != 5*time.Second {
		t.Errorf("defaults = %d/%v, want 5/5s", d.threshold, d.cooldown)
	}
}

// TestBreakerOpensAndRecoversOverHTTP drives the detect endpoint's
// breaker through a full failure/recovery cycle with injected worker
// faults: consecutive 500s open it, requests are then rejected with a
// structured 503 + Retry-After, and after cooldown one probe closes
// it again at full quality.
func TestBreakerOpensAndRecoversOverHTTP(t *testing.T) {
	_, ts := newTestServer(t, Config{
		BreakerThreshold: 3,
		BreakerCooldown:  50 * time.Millisecond,
		CacheSize:        -1,
	})
	series := sineSeries(256, 32, 77)
	body := detectBody(t, series, nil, false)

	faults.Enable(faults.MustParse("serve/worker:error"))
	t.Cleanup(faults.Disable)
	for i := 0; i < 3; i++ {
		resp, b := postJSON(t, ts.URL+"/v1/detect", body)
		if resp.StatusCode != http.StatusInternalServerError {
			t.Fatalf("faulted request %d: status = %d (%s), want 500", i, resp.StatusCode, b)
		}
		if code := errCode(t, b); code != "internal_error" {
			t.Fatalf("faulted request %d: code = %q", i, code)
		}
	}

	// Breaker is now open: rejected before any work, with Retry-After.
	resp, b := postJSON(t, ts.URL+"/v1/detect", body)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("open breaker: status = %d (%s), want 503", resp.StatusCode, b)
	}
	if code := errCode(t, b); code != "breaker_open" {
		t.Fatalf("open breaker: code = %q", code)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("open breaker response missing Retry-After")
	}
	// The batch endpoint's breaker is independent and still closed.
	resp, _ = postJSON(t, ts.URL+"/v1/detect/batch", `{"series":[[1,2],[3]]}`)
	if resp.StatusCode == http.StatusServiceUnavailable {
		t.Error("batch endpoint tripped by detect endpoint failures")
	}

	// Heal the backend, wait out the cooldown, and recover.
	faults.Disable()
	time.Sleep(60 * time.Millisecond)
	resp, b = postJSON(t, ts.URL+"/v1/detect", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("probe after cooldown: status = %d (%s), want 200", resp.StatusCode, b)
	}
	var out DetectResponse
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Degraded) != 0 {
		t.Errorf("recovered service returned degraded result: %v", out.Degraded)
	}
	resp, _ = postJSON(t, ts.URL+"/v1/detect", body)
	if resp.StatusCode != http.StatusOK {
		t.Errorf("post-recovery request: status = %d, want 200", resp.StatusCode)
	}
}
