package serve

import (
	"context"
	"net"
	"net/http"
	"sync"
	"testing"
	"time"

	"robustperiod/internal/faults"
)

// TestOverloadSheds429 saturates a deliberately tiny service and
// checks the admission controller: excess requests are rejected up
// front with 429 + Retry-After instead of queueing past the deadline,
// some requests still succeed, the shed counter advances, and once
// the pressure is gone the service is back to full quality.
func TestOverloadSheds429(t *testing.T) {
	_, ts := newTestServer(t, Config{
		Workers:          1,
		QueueLen:         1,
		BreakerThreshold: -1, // isolate admission control from the breaker
		CacheSize:        -1,
	})
	series := sineSeries(256, 32, 55)
	body := detectBody(t, series, nil, false)

	faults.Enable(faults.MustParse("serve/worker:delay=300ms"))
	t.Cleanup(faults.Disable)

	const burst = 10
	var (
		wg         sync.WaitGroup
		mu         sync.Mutex
		oks, sheds int
	)
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, b := postJSON(t, ts.URL+"/v1/detect", body)
			mu.Lock()
			defer mu.Unlock()
			switch resp.StatusCode {
			case http.StatusOK:
				oks++
			case http.StatusTooManyRequests:
				sheds++
				if code := errCode(t, b); code != "overloaded" {
					t.Errorf("429 code = %q, want overloaded", code)
				}
				if resp.Header.Get("Retry-After") == "" {
					t.Error("429 without Retry-After header")
				}
			default:
				t.Errorf("unexpected status %d (%s)", resp.StatusCode, b)
			}
		}()
	}
	wg.Wait()
	if oks == 0 {
		t.Error("overloaded service served no requests at all")
	}
	if sheds == 0 {
		t.Fatalf("burst of %d on a 1-worker/1-slot service shed nothing (%d ok)", burst, oks)
	}
	m := metricsSnapshot(t, ts.URL)
	if n := promValue(t, m, "rp_requests_shed_total", "endpoint", "detect"); n < float64(sheds) {
		t.Errorf("rp_requests_shed_total{endpoint=detect} = %v, want >= %d", n, sheds)
	}

	// Pressure gone: the same request is admitted and fully served.
	faults.Disable()
	resp, b := postJSON(t, ts.URL+"/v1/detect", body)
	if resp.StatusCode != http.StatusOK {
		t.Errorf("post-overload request: %d (%s), want 200", resp.StatusCode, b)
	}
}

// TestDrainingGateSheds503 pins the draining gate in isolation: a
// draining server sheds compute requests with a structured 503 while
// health and metrics stay reachable.
func TestDrainingGateSheds503(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	s.draining.Store(true)
	body := detectBody(t, sineSeries(256, 32, 57), nil, false)
	resp, b := postJSON(t, ts.URL+"/v1/detect", body)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining detect: %d (%s), want 503", resp.StatusCode, b)
	}
	if code := errCode(t, b); code != "shutting_down" {
		t.Errorf("draining code = %q, want shutting_down", code)
	}
	resp, _ = postJSON(t, ts.URL+"/v1/detect/batch", `{"series":[[1,2,3]]}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("draining batch: %d, want 503", resp.StatusCode)
	}
	hr, err := http.Get(ts.URL + "/healthz")
	if err != nil || hr.StatusCode != http.StatusOK {
		t.Errorf("healthz unreachable while draining: %v %v", err, hr)
	}
	if hr != nil {
		hr.Body.Close()
	}
	mr, err := http.Get(ts.URL + "/metrics")
	if err != nil || mr.StatusCode != http.StatusOK {
		t.Errorf("metrics unreachable while draining: %v %v", err, mr)
	}
	if mr != nil {
		mr.Body.Close()
	}
}

// TestShutdownUnderLoad cancels a running Serve mid-burst: requests
// already inside a handler finish with 200 inside the drain window,
// later requests are shed (503) or refused (listener closed), Serve
// returns nil, and Close stays idempotent.
func TestShutdownUnderLoad(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{
		Workers:      2,
		CacheSize:    -1,
		DrainTimeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	serveErr := make(chan error, 1)
	go func() { serveErr <- s.Serve(ctx, ln) }()
	base := "http://" + ln.Addr().String()

	// Slow every detection down so the burst is still in flight when
	// the shutdown lands.
	faults.Enable(faults.MustParse("serve/worker:delay=250ms"))
	t.Cleanup(faults.Disable)

	body := detectBody(t, sineSeries(256, 32, 59), nil, false)
	const burst = 2 // matches Workers: both run, none queues
	inFlight := make(chan int, burst)
	var wg sync.WaitGroup
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, _ := postJSON(t, base+"/v1/detect", body)
			inFlight <- resp.StatusCode
		}()
	}

	time.Sleep(100 * time.Millisecond) // burst is now inside handlers
	cancel()
	wg.Wait()
	close(inFlight)
	for code := range inFlight {
		if code != http.StatusOK {
			t.Errorf("in-flight request aborted by shutdown: %d, want 200", code)
		}
	}

	if err := <-serveErr; err != nil {
		t.Errorf("Serve returned %v, want nil on graceful shutdown", err)
	}

	// The listener is closed; a new request must fail to connect (or,
	// on a lingering keep-alive, be shed) — never hang.
	client := &http.Client{Timeout: 2 * time.Second}
	resp, err := client.Post(base+"/v1/detect", "application/json", nil)
	if err == nil {
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Errorf("post-shutdown request: %d, want refused or 503", resp.StatusCode)
		}
		resp.Body.Close()
	}

	// Close after Serve's own Close, twice more: idempotent.
	s.Close()
	s.Close()
}
