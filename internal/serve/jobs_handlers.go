// Async job API: submit-then-poll detection for clients that cannot
// hold a connection open for a long robust periodogram run.
//
//	POST /v1/jobs       accept a detect request  -> 202 + job ID
//	GET  /v1/jobs/{id}  poll status              -> state, or the Result
//
// Submissions are keyed by the result cache's (series, options)
// fingerprint and coalesced by internal/jobs: concurrent identical
// submissions ride one pipeline execution; dequeue is fair-share
// across tenants (the X-API-Key header).
package serve

import (
	"context"
	"errors"
	"math"
	"net/http"
	"strconv"
	"time"

	"robustperiod"
	"robustperiod/internal/jobs"
	"robustperiod/internal/obs"
)

// TenantHeader names a submission's tenant for fair-share scheduling.
// Absent or empty headers share the default tenant.
const TenantHeader = "X-API-Key"

// defaultTenant buckets submissions that carry no API key.
const defaultTenant = "default"

// jobPayload is what a submission hands the async executor: the
// validated request plus its precomputed cache key.
type jobPayload struct {
	series  []float64
	apiOpts *APIOptions
	key     cacheKey
	details bool
}

// JobSubmitResponse is the 202 body of POST /v1/jobs.
type JobSubmitResponse struct {
	JobID     string `json:"jobId"`
	State     string `json:"state"`
	StatusURL string `json:"statusUrl"`
}

// JobStatusResponse is the body of GET /v1/jobs/{id}. Result is set
// once the job is done; Error once it failed; both stay nil while the
// job is queued or running (poll again after Retry-After seconds).
type JobStatusResponse struct {
	JobID     string          `json:"jobId"`
	State     string          `json:"state"`
	Coalesced bool            `json:"coalesced,omitempty"`
	QueuedMS  float64         `json:"queuedMs,omitempty"`  // submit -> execution start
	ElapsedMS float64         `json:"elapsedMs,omitempty"` // submit -> terminal state
	Result    *DetectResponse `json:"result,omitempty"`
	Error     *APIError       `json:"error,omitempty"`
}

// execJob is the jobs.Manager's pipeline entry point, running on a
// worker-pool goroutine: cache lookup, then a traced detection, then
// cache fill — the async twin of runDetection without the pool round
// trip (the dispatcher already placed us on a worker).
func (s *Server) execJob(ctx context.Context, payload any) (any, bool, error) {
	jp, ok := payload.(*jobPayload)
	if !ok {
		return nil, false, errors.New("serve: malformed async job payload")
	}
	if res, ok := s.cache.get(jp.key); ok {
		s.metrics.cacheHits.Add(1)
		return res, len(res.Degraded) > 0, nil
	}
	s.metrics.cacheMisses.Add(1)
	opts, err := jp.apiOpts.toOptions()
	if err != nil {
		return nil, false, &APIError{Code: "bad_options", Message: err.Error()}
	}
	if opts == nil {
		opts = &robustperiod.Options{}
	}
	opts.Trace = robustperiod.NewTrace()
	start := time.Now()
	res, err := robustperiod.DetectDetailsContext(ctx, jp.series, opts)
	if err != nil {
		return nil, false, err
	}
	s.observeJobTime(time.Since(start))
	if len(res.Degraded) > 0 {
		s.metrics.degradedTotal.Add(1)
	}
	// Async executions run after their submitting request finished, so
	// there is no live span recording to pin exemplars from.
	s.metrics.observeStages(res.Trace, "")
	s.cache.add(jp.key, res)
	return res, len(res.Degraded) > 0, nil
}

// onJobDone feeds terminal jobs into the submit-to-completion latency
// quantile estimator (the jobs.Manager fires it outside its lock).
func (s *Server) onJobDone(j jobs.Job) {
	if !j.Finished.IsZero() && !j.Submitted.IsZero() {
		s.jobLatQ.Observe(j.Finished.Sub(j.Submitted).Seconds())
	}
}

// jobKey converts the result cache's fingerprint into the coalescing
// key of internal/jobs.
func jobKey(k cacheKey) jobs.Key { return jobs.Key{H1: k.h1, H2: k.h2, N: k.n} }

// handleJobSubmit serves POST /v1/jobs: validate like /v1/detect,
// then enqueue instead of compute and answer 202 with the job ID.
func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	scope := obs.FromContext(r.Context())
	var req DetectRequest
	if !decodeBody(w, r, &req) {
		if scope != nil {
			scope.ErrorCode = "bad_request"
		}
		return
	}
	if scope != nil {
		scope.SeriesLen = len(req.Series)
		scope.OptionsDigest = req.Options.digest()
	}
	if apiErr := validateSeries(req.Series, s.cfg.MaxSeriesLen, req.Options.fillMissing()); apiErr != nil {
		if scope != nil {
			scope.ErrorCode = apiErr.Code
		}
		writeJSON(w, http.StatusBadRequest, map[string]*APIError{"error": apiErr})
		return
	}
	if _, err := req.Options.toOptions(); err != nil {
		if scope != nil {
			scope.ErrorCode = "bad_options"
		}
		writeError(w, http.StatusBadRequest, "bad_options", "%v", err)
		return
	}
	tenant := r.Header.Get(TenantHeader)
	if tenant == "" {
		tenant = defaultTenant
	}
	key := requestKey(req.Series, req.Options.canonicalTag())
	payload := &jobPayload{series: req.Series, apiOpts: req.Options, key: key, details: req.Details}
	j, err := s.jobs.Submit(r.Context(), tenant, jobKey(key), len(req.Series), payload)
	if err != nil {
		status, apiErr := toJobSubmitError(err)
		if scope != nil {
			scope.ErrorCode = apiErr.Code
		}
		if status == http.StatusTooManyRequests {
			s.metrics.shed.Add(epJobs, 1)
			w.Header().Set("Retry-After", strconv.Itoa(s.jobRetrySeconds()))
		}
		writeJSON(w, status, map[string]*APIError{"error": apiErr})
		return
	}
	id := j.ID.String()
	w.Header().Set("Location", "/v1/jobs/"+id)
	writeJSON(w, http.StatusAccepted, JobSubmitResponse{
		JobID:     id,
		State:     j.State.String(),
		StatusURL: "/v1/jobs/" + id,
	})
}

// toJobSubmitError maps a jobs.Manager submission failure onto a
// status and structured error.
func toJobSubmitError(err error) (int, *APIError) {
	switch {
	case errors.Is(err, jobs.ErrTenantQueueFull):
		return http.StatusTooManyRequests, &APIError{Code: "tenant_overloaded",
			Message: "this API key's pending-job bound is reached; retry later"}
	case errors.Is(err, jobs.ErrQueueFull):
		return http.StatusTooManyRequests, &APIError{Code: "overloaded",
			Message: "async job queue is full; retry later"}
	case errors.Is(err, jobs.ErrClosed):
		return http.StatusServiceUnavailable, &APIError{Code: "shutting_down",
			Message: "server is draining; retry against another instance"}
	default:
		return http.StatusInternalServerError, &APIError{Code: "internal_error", Message: err.Error()}
	}
}

// jobRetrySeconds estimates how long a polling or shed client should
// wait before its next attempt: the async backlog times the EWMA
// service time, spread over the workers, clamped to [1, 30] seconds.
func (s *Server) jobRetrySeconds() int {
	avg := math.Float64frombits(s.jobEWMA.Load())
	wait := time.Second
	if avg > 0 {
		backlog := s.jobs.QueueDepth() + s.pool.depth()
		wait = time.Duration(float64(backlog+1) * avg / float64(s.pool.workers))
	}
	secs := int((wait + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	if secs > 30 {
		secs = 30
	}
	return secs
}

// handleJobStatus serves GET /v1/jobs/{id}. Deliberately not gated by
// draining: results must stay retrievable while the server drains.
func (s *Server) handleJobStatus(w http.ResponseWriter, r *http.Request) {
	id, ok := obs.ParseID(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusBadRequest, "bad_job_id",
			"job id must be 32 hex characters")
		return
	}
	j, ok := s.jobs.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, "job_not_found",
			"no such job (it may have expired); resubmit to POST /v1/jobs")
		return
	}
	resp := JobStatusResponse{
		JobID:     j.ID.String(),
		State:     j.State.String(),
		Coalesced: j.Coalesced,
	}
	switch j.State {
	case jobs.StateQueued, jobs.StateRunning:
		w.Header().Set("Retry-After", strconv.Itoa(s.jobRetrySeconds()))
	case jobs.StateDone:
		resp.ElapsedMS = float64(j.Finished.Sub(j.Submitted)) / float64(time.Millisecond)
		if !j.Started.IsZero() {
			resp.QueuedMS = float64(j.Started.Sub(j.Submitted)) / float64(time.Millisecond)
		}
		switch res := j.Result.(type) {
		case *robustperiod.Result:
			resp.Result = &DetectResponse{
				Periods:        nonNil(res.Periods),
				ElapsedMS:      resp.ElapsedMS,
				Degraded:       res.Degraded,
				FilledFraction: res.FilledFraction,
			}
			if jp, ok := j.Payload.(*jobPayload); ok && jp.details {
				resp.Result.Levels = resultLevels(res)
			}
		case *persistedResult:
			// A result restored by crash recovery: already in wire
			// form, with the same details gating as the live path.
			resp.Result = &DetectResponse{
				Periods:        nonNil(res.Periods),
				ElapsedMS:      resp.ElapsedMS,
				Degraded:       res.Degraded,
				FilledFraction: res.FilledFraction,
			}
			if jp, ok := j.Payload.(*jobPayload); ok && jp.details {
				resp.Result.Levels = res.Levels
			}
		}
	case jobs.StateFailed:
		resp.ElapsedMS = float64(j.Finished.Sub(j.Submitted)) / float64(time.Millisecond)
		_, resp.Error = toAPIError(j.Err)
	}
	writeJSON(w, http.StatusOK, resp)
}
