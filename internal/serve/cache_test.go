package serve

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"robustperiod"
)

func keyOf(seed float64) cacheKey {
	return requestKey([]float64{seed, seed + 1, seed + 2}, []byte("null"))
}

func TestLRUEvictionOrder(t *testing.T) {
	c := newResultCache(2)
	ra, rb, rc := &robustperiod.Result{}, &robustperiod.Result{}, &robustperiod.Result{}
	ka, kb, kc := keyOf(1), keyOf(2), keyOf(3)

	c.add(ka, ra)
	c.add(kb, rb)
	if got, ok := c.get(ka); !ok || got != ra {
		t.Fatal("a missing after insert")
	}
	// a was just used, so adding c must evict b.
	c.add(kc, rc)
	if _, ok := c.get(kb); ok {
		t.Error("b survived eviction although it was LRU")
	}
	if _, ok := c.get(ka); !ok {
		t.Error("a evicted although it was MRU")
	}
	if _, ok := c.get(kc); !ok {
		t.Error("c missing right after insert")
	}
	if c.len() != 2 {
		t.Errorf("len = %d, want 2", c.len())
	}
}

func TestLRURefreshExisting(t *testing.T) {
	c := newResultCache(2)
	k := keyOf(4)
	r1 := &robustperiod.Result{}
	r2 := &robustperiod.Result{Periods: []int{7}}
	c.add(k, r1)
	c.add(k, r2)
	if c.len() != 1 {
		t.Fatalf("len = %d, want 1 (re-add must not duplicate)", c.len())
	}
	if got, _ := c.get(k); got != r2 {
		t.Error("re-add did not replace the value")
	}
}

func TestNilCacheIsAlwaysMiss(t *testing.T) {
	var c *resultCache // CacheSize < 0 path
	if _, ok := c.get(keyOf(5)); ok {
		t.Error("nil cache returned a hit")
	}
	c.add(keyOf(5), &robustperiod.Result{}) // must not panic
	if c.len() != 0 {
		t.Error("nil cache has entries")
	}
}

func TestRequestKeyDistinguishesOptionsAndSeries(t *testing.T) {
	s1 := []float64{1, 2, 3}
	s2 := []float64{1, 2, 4}
	if requestKey(s1, []byte("null")) == requestKey(s2, []byte("null")) {
		t.Error("different series collide")
	}
	if requestKey(s1, []byte("null")) == requestKey(s1, []byte(`{"alpha":0.05}`)) {
		t.Error("different options collide")
	}
	if requestKey(s1, []byte("null")) != requestKey([]float64{1, 2, 3}, []byte("null")) {
		t.Error("identical requests do not collide")
	}
}

func TestWorkerPoolRunsEverythingOnce(t *testing.T) {
	p := newWorkerPool(4, 8)
	var ran atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 100; i++ {
		wg.Add(1)
		if err := p.submit(context.Background(), func() {
			defer wg.Done()
			ran.Add(1)
		}); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	if ran.Load() != 100 {
		t.Errorf("ran %d jobs, want 100", ran.Load())
	}
	p.close()
	if err := p.submit(context.Background(), func() {}); err != errPoolClosed {
		t.Errorf("submit after close = %v, want errPoolClosed", err)
	}
	p.close() // second close must be a no-op
}

func TestWorkerPoolSubmitHonorsContext(t *testing.T) {
	// One worker stuck on a slow job plus a full queue: submit must
	// give up when the caller's context expires, not block forever.
	p := newWorkerPool(1, 1)
	defer p.close()
	release := make(chan struct{})
	if err := p.submit(context.Background(), func() { <-release }); err != nil {
		t.Fatal(err)
	}
	if err := p.submit(context.Background(), func() {}); err != nil {
		t.Fatal(err) // fills the queue
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if err := p.submit(ctx, func() {}); err != context.DeadlineExceeded {
		t.Errorf("submit on full queue = %v, want DeadlineExceeded", err)
	}
	close(release)
}
