// HTTP handlers and the JSON wire types of the detection API.
//
// Endpoints:
//
//	POST /v1/detect        one series  -> periods (+ per-level details)
//	POST /v1/detect/batch  many series -> one result per series
//	GET  /healthz          liveness
//	GET  /metrics          Prometheus text exposition (version 0.0.4)
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"net/http"
	"strconv"
	"sync"
	"time"

	"robustperiod"
	"robustperiod/internal/faults"
	"robustperiod/internal/jobs"
	"robustperiod/internal/obs"
	"robustperiod/internal/registry"
	"robustperiod/internal/trace"
)

// APIOptions is the JSON surface of robustperiod.Options. Every field
// is optional; the zero value reproduces the paper's defaults. It is
// deliberately flat — the nested library config (detect.Config,
// spectrum.Options) is an implementation detail clients should not
// couple to.
type APIOptions struct {
	Lambda           float64 `json:"lambda,omitempty"`
	ClipC            float64 `json:"clipC,omitempty"`
	Wavelet          string  `json:"wavelet,omitempty"` // "haar", "db2".."db10", "la8", "la16"
	MaxLevels        int     `json:"maxLevels,omitempty"`
	EnergyShare      float64 `json:"energyShare,omitempty"`
	Alpha            float64 `json:"alpha,omitempty"`     // Fisher significance level
	ACFHeight        float64 `json:"acfHeight,omitempty"` // minimum ACF peak height
	MinPeriod        int     `json:"minPeriod,omitempty"`
	SkipPreprocess   bool    `json:"skipPreprocess,omitempty"`
	RobustTrend      bool    `json:"robustTrend,omitempty"`
	FullRobustBand   bool    `json:"fullRobustBand,omitempty"`
	NonRobust        bool    `json:"nonRobust,omitempty"`
	NoHarmonicFilter bool    `json:"noHarmonicFilter,omitempty"`
	CircularBoundary bool    `json:"circularBoundary,omitempty"`
	// FillMissing interpolates NaN gaps in the series instead of
	// rejecting them; the response reports the filled share. Series
	// more than half missing are still rejected.
	FillMissing bool `json:"fill_missing,omitempty"`
}

// fillMissing reports the fill_missing flag, treating a nil options
// object as the default (off).
func (o *APIOptions) fillMissing() bool { return o != nil && o.FillMissing }

// toOptions converts the wire options to library options. A nil
// receiver yields the defaults.
func (o *APIOptions) toOptions() (*robustperiod.Options, error) {
	if o == nil {
		return nil, nil
	}
	opts := &robustperiod.Options{
		Lambda:           o.Lambda,
		ClipC:            o.ClipC,
		MaxLevels:        o.MaxLevels,
		EnergyShare:      o.EnergyShare,
		SkipPreprocess:   o.SkipPreprocess,
		RobustTrend:      o.RobustTrend,
		FullRobustBand:   o.FullRobustBand,
		NonRobust:        o.NonRobust,
		NoHarmonicFilter: o.NoHarmonicFilter,
		CircularBoundary: o.CircularBoundary,
		FillMissing:      o.FillMissing,
	}
	if o.Wavelet != "" {
		k, err := robustperiod.ParseWavelet(o.Wavelet)
		if err != nil {
			return nil, err
		}
		opts.Wavelet = k
	}
	opts.Detect.Alpha = o.Alpha
	opts.Detect.ACFHeight = o.ACFHeight
	opts.Detect.MinPeriod = o.MinPeriod
	return opts, nil
}

// canonicalTag returns the canonical byte encoding of the options for
// cache keying: JSON of the struct (fixed field order, omitempty), or
// "null" for defaults — so {"options":{}} and a missing options object
// hash identically.
func (o *APIOptions) canonicalTag() []byte {
	if o == nil || *o == (APIOptions{}) {
		return []byte("null")
	}
	b, _ := json.Marshal(o)
	return b
}

// digest hashes the canonical options encoding (FNV-1a) for the
// flight-recorder record: two requests with the same digest ran with
// identical options.
func (o *APIOptions) digest() uint64 {
	h := fnv.New64a()
	_, _ = h.Write(o.canonicalTag())
	return h.Sum64()
}

// DetectRequest is the body of POST /v1/detect.
type DetectRequest struct {
	Series  []float64   `json:"series"`
	Options *APIOptions `json:"options,omitempty"`
	Details bool        `json:"details,omitempty"`
}

// BatchRequest is the body of POST /v1/detect/batch: many series
// sharing one options object, detected concurrently on the worker
// pool.
type BatchRequest struct {
	Series  [][]float64 `json:"series"`
	Options *APIOptions `json:"options,omitempty"`
	Details bool        `json:"details,omitempty"`
}

// LevelDetail is the per-wavelet-level diagnostic row of a response
// (the paper's Fig. 5 table, without the bulky periodogram/ACF
// arrays).
type LevelDetail struct {
	Level     int     `json:"level"`
	Variance  float64 `json:"variance"`
	Selected  bool    `json:"selected"`
	PValue    float64 `json:"pValue"`
	Candidate int     `json:"candidate"`
	ACFPeriod int     `json:"acfPeriod"`
	Final     int     `json:"final"`
	Periodic  bool    `json:"periodic"`
}

// DetectResponse is the body of a successful POST /v1/detect.
type DetectResponse struct {
	Periods   []int         `json:"periods"`
	Cached    bool          `json:"cached"`
	ElapsedMS float64       `json:"elapsedMs"`
	Levels    []LevelDetail `json:"levels,omitempty"`
	// Degraded lists the pipeline's graceful-degradation events for
	// this detection; absent on a clean full-quality run. A populated
	// list means the periods are a best-effort answer.
	Degraded []robustperiod.Degradation `json:"degraded,omitempty"`
	// FilledFraction is the share of input samples that were NaN and
	// interpolated (fill_missing only).
	FilledFraction float64 `json:"filledFraction,omitempty"`
	// Trace carries per-stage timings when the request asked for them
	// with ?debug=1.
	Trace *TraceSummary `json:"trace,omitempty"`
}

// TraceStage is the wire form of one pipeline stage's accumulated
// timing in a ?debug=1 response. The P50/P90/P99 fields carry the
// server's streaming estimates of this stage's latency across all
// requests (not just this one), so a debug response situates its own
// timings against the fleet-wide distribution.
type TraceStage struct {
	Stage    string           `json:"stage"`
	Calls    int64            `json:"calls"`
	Ms       float64          `json:"ms"`
	Allocs   uint64           `json:"allocs"`
	Counters map[string]int64 `json:"counters,omitempty"`
	P50Ms    float64          `json:"p50Ms,omitempty"`
	P90Ms    float64          `json:"p90Ms,omitempty"`
	P99Ms    float64          `json:"p99Ms,omitempty"`
}

// TraceLevel is the wire form of one wavelet level's verdict trail.
type TraceLevel struct {
	Level    int     `json:"level"`
	Variance float64 `json:"variance"`
	Boundary int     `json:"boundary"`
	Selected bool    `json:"selected"`
	Fisher   bool    `json:"fisher"`
	Periodic bool    `json:"periodic"`
	Period   int     `json:"period,omitempty"`
}

// TraceSummary is the wire form of a detection's stage trace.
type TraceSummary struct {
	TotalMs float64      `json:"totalMs"`
	Stages  []TraceStage `json:"stages"`
	Levels  []TraceLevel `json:"levels,omitempty"`
}

// toTraceSummary converts the library trace summary to wire form.
func toTraceSummary(s *robustperiod.TraceSummary) *TraceSummary {
	if s == nil {
		return nil
	}
	out := &TraceSummary{TotalMs: float64(s.Total) / float64(time.Millisecond)}
	for _, st := range s.Stages {
		out.Stages = append(out.Stages, TraceStage{
			Stage:    st.Name,
			Calls:    st.Calls,
			Ms:       float64(st.Duration) / float64(time.Millisecond),
			Allocs:   st.Allocs,
			Counters: st.Counters,
		})
	}
	for _, lv := range s.Levels {
		out.Levels = append(out.Levels, TraceLevel{
			Level:    lv.Level,
			Variance: lv.Variance,
			Boundary: lv.Boundary,
			Selected: lv.Selected,
			Fisher:   lv.Fisher,
			Periodic: lv.Periodic,
			Period:   lv.Period,
		})
	}
	return out
}

// BatchItem is one entry of a batch response, in request order.
// Exactly one of Error or Periods is meaningful.
type BatchItem struct {
	Index          int                        `json:"index"`
	Periods        []int                      `json:"periods"`
	Cached         bool                       `json:"cached"`
	Levels         []LevelDetail              `json:"levels,omitempty"`
	Degraded       []robustperiod.Degradation `json:"degraded,omitempty"`
	FilledFraction float64                    `json:"filledFraction,omitempty"`
	Error          *APIError                  `json:"error,omitempty"`
}

// BatchResponse is the body of a successful POST /v1/detect/batch.
type BatchResponse struct {
	Results   []BatchItem `json:"results"`
	ElapsedMS float64     `json:"elapsedMs"`
}

// APIError is the structured error envelope every non-2xx response
// carries under the "error" key.
type APIError struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

func (e *APIError) Error() string { return e.Code + ": " + e.Message }

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, code, format string, args ...any) {
	writeJSON(w, status, map[string]*APIError{
		"error": {Code: code, Message: fmt.Sprintf(format, args...)},
	})
}

// decodeBody decodes one JSON value from an already size-limited body,
// translating the failure modes into structured responses. It returns
// false after writing the error response itself.
func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var maxErr *http.MaxBytesError
		if errors.As(err, &maxErr) {
			writeError(w, http.StatusRequestEntityTooLarge, "body_too_large",
				"request body exceeds %d bytes", maxErr.Limit)
			return false
		}
		writeError(w, http.StatusBadRequest, "bad_json", "invalid request body: %v", err)
		return false
	}
	return true
}

// validateSeries rejects series the detector cannot accept, before
// any CPU is spent: empty input, non-finite values (unrepresentable
// in strict JSON, but reachable through other encodings), and
// over-long series that would monopolize a worker. With allowNaN
// (the request set fill_missing) NaN gaps pass through to the
// library's interpolation, but Inf never does, and a series more than
// half missing is rejected here with the same taxonomy the library
// uses.
func validateSeries(series []float64, maxLen int, allowNaN bool) *APIError {
	if len(series) == 0 {
		return &APIError{Code: "empty_series", Message: "series must contain at least one value"}
	}
	if maxLen > 0 && len(series) > maxLen {
		return &APIError{
			Code:    "series_too_long",
			Message: fmt.Sprintf("series has %d points, limit is %d", len(series), maxLen),
		}
	}
	missing := 0
	for i, v := range series {
		if math.IsInf(v, 0) {
			return &APIError{
				Code:    "non_finite_value",
				Message: fmt.Sprintf("series[%d] is infinite", i),
			}
		}
		if math.IsNaN(v) {
			if !allowNaN {
				return &APIError{
					Code:    "non_finite_value",
					Message: fmt.Sprintf("series[%d] is not finite; fill gaps before submitting or set options.fill_missing", i),
				}
			}
			missing++
		}
	}
	if missing*2 > len(series) {
		return &APIError{
			Code:    "too_many_missing",
			Message: fmt.Sprintf("%d of %d samples are missing; refusing to interpolate more than half a series", missing, len(series)),
		}
	}
	return nil
}

// detOut is a worker's answer to one detection job.
type detOut struct {
	res *robustperiod.Result
	err error
}

// runDetection serves one series: cache lookup, then a pool-bounded
// DetectDetailsContext, then cache fill. It reports whether the
// answer came from the cache. Every computed (non-cached) detection
// runs with a stage trace attached — the per-stage wall times feed
// the stage_latency_ms histograms, and ?debug=1 responses inline the
// summary. bypassCache skips both cache read and fill, so a debug
// request always reports timings of an actual run, never a memoized
// result.
func (s *Server) runDetection(ctx context.Context, series []float64, apiOpts *APIOptions, bypassCache bool) (*robustperiod.Result, bool, error) {
	opts, err := apiOpts.toOptions()
	if err != nil {
		return nil, false, &APIError{Code: "bad_options", Message: err.Error()}
	}
	var key cacheKey
	if !bypassCache {
		key = requestKey(series, apiOpts.canonicalTag())
		if res, ok := s.cache.get(key); ok {
			s.metrics.cacheHits.Add(1)
			return res, true, nil
		}
		s.metrics.cacheMisses.Add(1)
	}
	if opts == nil {
		opts = &robustperiod.Options{}
	}
	opts.Trace = robustperiod.NewTrace()
	// When the request is sampled, attach its span recording to the
	// stage trace — every pipeline stage timer then also emits a span,
	// with zero changes at the core/spectrum call sites — and time the
	// queue wait and the execution as spans of their own.
	var spanRec *trace.Recording
	var rootID trace.SpanID
	if scope := obs.FromContext(ctx); scope != nil {
		if rec, ok := scope.Spans.(*trace.Recording); ok && rec != nil {
			spanRec = rec
			rootID = rec.Context().SpanID
			opts.Trace.AttachSpans(rec, rootID)
		}
	}
	var submitted time.Time
	if spanRec != nil {
		submitted = time.Now()
	}

	out := make(chan detOut, 1)
	job := func() {
		if spanRec != nil {
			spanRec.AddSpan(registry.SpanQueueWait, rootID, submitted, time.Since(submitted))
		}
		// A panic inside the detection must not kill the worker
		// goroutine — that would permanently shrink the pool. It is
		// converted to an error the handler maps to a structured 500.
		defer func() {
			if v := recover(); v != nil {
				s.metrics.panicsRecovered.Add(1)
				out <- detOut{err: &workerPanicError{val: v}}
			}
		}()
		// Fault point "serve/worker": a failure between dequeue and
		// the library call (a poisoned job, a dead dependency).
		if err := faults.Check(faults.PointServeWorker); err != nil {
			obs.FromContext(ctx).AddFault(faults.PointServeWorker)
			out <- detOut{err: err}
			return
		}
		jobStart := time.Now()
		res, err := robustperiod.DetectDetailsContext(ctx, series, opts)
		if spanRec != nil {
			spanRec.AddSpan(registry.SpanJobExec, rootID, jobStart, time.Since(jobStart))
		}
		if err == nil {
			s.observeJobTime(time.Since(jobStart))
		}
		out <- detOut{res: res, err: err}
	}
	if err := s.pool.submit(ctx, job); err != nil {
		return nil, false, err
	}
	o := <-out
	if o.err != nil {
		return nil, false, o.err
	}
	if len(o.res.Degraded) > 0 {
		s.metrics.degradedTotal.Add(1)
	}
	exTrace := ""
	if spanRec != nil {
		exTrace = spanRec.Context().TraceIDString()
	}
	s.metrics.observeStages(o.res.Trace, exTrace)
	if !bypassCache {
		s.cache.add(key, o.res)
	}
	return o.res, false, nil
}

// workerPanicError wraps a panic recovered inside a detection worker.
type workerPanicError struct{ val any }

func (e *workerPanicError) Error() string {
	return fmt.Sprintf("detection worker panicked: %v", e.val)
}

// toAPIError maps a detection failure onto a status and a structured
// error. An *APIError passes through unwrapped so its message is not
// double-prefixed with the code.
func toAPIError(err error) (int, *APIError) {
	var apiErr *APIError
	var panicErr *workerPanicError
	switch {
	case errors.As(err, &apiErr):
		return http.StatusBadRequest, apiErr
	case errors.As(err, &panicErr):
		return http.StatusInternalServerError, &APIError{Code: "internal_panic", Message: err.Error()}
	case faults.IsInjected(err):
		// An injected fault that nothing downstream could absorb is an
		// internal failure, never the client's.
		return http.StatusInternalServerError, &APIError{Code: "internal_error", Message: err.Error()}
	case errors.Is(err, robustperiod.ErrTooManyMissing):
		return http.StatusBadRequest, &APIError{Code: "too_many_missing", Message: err.Error()}
	case errors.Is(err, robustperiod.ErrNonFinite):
		return http.StatusBadRequest, &APIError{Code: "non_finite_value", Message: err.Error()}
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout, &APIError{Code: "deadline_exceeded", Message: err.Error()}
	case errors.Is(err, context.Canceled):
		// Client went away; the status is written to a dead connection
		// but keeps logs and metrics truthful.
		return 499, &APIError{Code: "client_closed_request", Message: err.Error()}
	case errors.Is(err, jobs.ErrLostToRestart):
		// The process died mid-execution and crash recovery restored
		// the job as failed; the computation itself must be redone.
		return http.StatusServiceUnavailable, &APIError{Code: "lost_to_restart",
			Message: "the server restarted while this job was executing; resubmit to POST /v1/jobs"}
	case errors.Is(err, errPoolClosed), errors.Is(err, jobs.ErrClosed):
		return http.StatusServiceUnavailable, &APIError{Code: "shutting_down", Message: err.Error()}
	default:
		return http.StatusBadRequest, &APIError{Code: "detect_failed", Message: err.Error()}
	}
}

func resultLevels(res *robustperiod.Result) []LevelDetail {
	levels := make([]LevelDetail, 0, len(res.Levels))
	for _, lv := range res.Levels {
		d := lv.Detection
		levels = append(levels, LevelDetail{
			Level:     lv.Level,
			Variance:  lv.Variance.Variance,
			Selected:  lv.Selected,
			PValue:    d.PValue,
			Candidate: d.Candidate,
			ACFPeriod: d.ACFPeriod,
			Final:     d.Final,
			Periodic:  d.Periodic,
		})
	}
	return levels
}

// nonNil maps a nil period slice to an empty one, for stable JSON
// ("periods":[] rather than "periods":null).
func nonNil(p []int) []int {
	if p == nil {
		return []int{}
	}
	return p
}

// handleDetect serves POST /v1/detect.
func (s *Server) handleDetect(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	scope := obs.FromContext(r.Context())
	var req DetectRequest
	if !decodeBody(w, r, &req) {
		if scope != nil {
			scope.ErrorCode = "bad_request"
		}
		return
	}
	if scope != nil {
		scope.SeriesLen = len(req.Series)
		scope.OptionsDigest = req.Options.digest()
	}
	if apiErr := validateSeries(req.Series, s.cfg.MaxSeriesLen, req.Options.fillMissing()); apiErr != nil {
		if scope != nil {
			scope.ErrorCode = apiErr.Code
		}
		writeJSON(w, http.StatusBadRequest, map[string]*APIError{"error": apiErr})
		return
	}
	if retry, ok := s.admit(); !ok {
		s.metrics.shed.Add(epDetect, 1)
		if scope != nil {
			scope.ErrorCode = "overloaded"
		}
		w.Header().Set("Retry-After", strconv.Itoa(retry))
		writeError(w, http.StatusTooManyRequests, "overloaded",
			"worker queue is full; retry after %d s", retry)
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()

	// ?debug=1 inlines the per-stage trace into the response; such a
	// request bypasses the result cache so the timings describe a real
	// run of this exact request.
	debug := r.URL.Query().Get("debug") == "1"
	res, cached, err := s.runDetection(ctx, req.Series, req.Options, debug)
	if err != nil {
		status, apiErr := toAPIError(err)
		if scope != nil {
			scope.ErrorCode = apiErr.Code
		}
		writeJSON(w, status, map[string]*APIError{"error": apiErr})
		return
	}
	if scope != nil {
		scope.Cached = cached
		scope.DegradedCount = len(res.Degraded)
		if len(res.Degraded) > 0 {
			scope.Degraded = res.Degraded
		}
		if res.Trace != nil {
			scope.Trace = res.Trace
		}
	}
	resp := DetectResponse{
		Periods:        nonNil(res.Periods),
		Cached:         cached,
		ElapsedMS:      float64(time.Since(start)) / float64(time.Millisecond),
		Degraded:       res.Degraded,
		FilledFraction: res.FilledFraction,
	}
	if req.Details {
		resp.Levels = resultLevels(res)
	}
	if debug {
		resp.Trace = toTraceSummary(res.Trace)
		s.metrics.annotateStageQuantiles(resp.Trace)
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleBatch serves POST /v1/detect/batch: every series is its own
// pool job, so a batch uses as many cores as are free, and one bad
// series fails only its own slot.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	scope := obs.FromContext(r.Context())
	var req BatchRequest
	if !decodeBody(w, r, &req) {
		if scope != nil {
			scope.ErrorCode = "bad_request"
		}
		return
	}
	if scope != nil {
		scope.BatchSize = len(req.Series)
		scope.OptionsDigest = req.Options.digest()
	}
	if len(req.Series) == 0 {
		if scope != nil {
			scope.ErrorCode = "empty_batch"
		}
		writeError(w, http.StatusBadRequest, "empty_batch", "batch must contain at least one series")
		return
	}
	if s.cfg.MaxBatch > 0 && len(req.Series) > s.cfg.MaxBatch {
		if scope != nil {
			scope.ErrorCode = "batch_too_large"
		}
		writeError(w, http.StatusBadRequest, "batch_too_large",
			"batch has %d series, limit is %d", len(req.Series), s.cfg.MaxBatch)
		return
	}
	// One admission decision covers the whole batch: a half-accepted
	// batch is worse than a shed one (the client must retry anyway).
	if retry, ok := s.admit(); !ok {
		s.metrics.shed.Add(epBatch, 1)
		if scope != nil {
			scope.ErrorCode = "overloaded"
		}
		w.Header().Set("Retry-After", strconv.Itoa(retry))
		writeError(w, http.StatusTooManyRequests, "overloaded",
			"worker queue is full; retry after %d s", retry)
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()

	items := make([]BatchItem, len(req.Series))
	var wg sync.WaitGroup
	for i, series := range req.Series {
		items[i].Index = i
		items[i].Periods = []int{}
		if apiErr := validateSeries(series, s.cfg.MaxSeriesLen, req.Options.fillMissing()); apiErr != nil {
			items[i].Error = apiErr
			continue
		}
		wg.Add(1)
		i, series := i, series
		go func() {
			defer wg.Done()
			res, cached, err := s.runDetection(ctx, series, req.Options, false)
			if err != nil {
				_, items[i].Error = toAPIError(err)
				return
			}
			items[i].Periods = nonNil(res.Periods)
			items[i].Cached = cached
			items[i].Degraded = res.Degraded
			items[i].FilledFraction = res.FilledFraction
			if req.Details {
				items[i].Levels = resultLevels(res)
			}
		}()
	}
	wg.Wait()
	if scope != nil {
		var degraded []robustperiod.Degradation
		for i := range items {
			if items[i].Error != nil {
				scope.ItemErrors++
			}
			scope.DegradedCount += len(items[i].Degraded)
			degraded = append(degraded, items[i].Degraded...)
		}
		if len(degraded) > 0 {
			scope.Degraded = degraded
		}
	}
	writeJSON(w, http.StatusOK, BatchResponse{
		Results:   items,
		ElapsedMS: float64(time.Since(start)) / float64(time.Millisecond),
	})
}

// handleHealthz serves GET /healthz. While an SLO burn-rate alert is
// firing the service reports degraded-but-up: still 200 (the process
// serves traffic; flapping a load balancer on a burn alert would turn
// a partial outage into a full one), but with the evaluated SLO state
// inlined so probes and humans see what is burning.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	if s.sloEng.Firing() {
		writeJSON(w, http.StatusOK, map[string]any{
			"status": "degraded",
			"slo":    s.sloEng.Status(),
		})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleMetrics serves GET /metrics, content-negotiated: OpenMetrics
// 1.0 with trace-ID bucket exemplars when the scraper asks for it
// (Accept: application/openmetrics-text), the classic Prometheus
// 0.0.4 text format otherwise. The expvar JSON view of the same
// counters stays available on the debug listener at /debug/vars.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	ct := obs.NegotiateContentType(r.Header.Get("Accept"))
	w.Header().Set("Content-Type", ct)
	_ = s.metrics.writeProm(w, ct == obs.OpenMetricsContentType)
}
