package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestSLOFastBurnDegradesHealthAndCapturesProfile drives the SLO
// pipeline end to end inside the server: a burst of failing requests
// burns the availability budget, a manual engine tick (the background
// ticker is parked on a one-hour interval to keep the test
// deterministic) trips the fast-burn alert, /healthz flips to
// degraded-but-up, /debug/slo reports the firing objective, the
// rp_slo_* families show it on the scrape, and the alert's pprof
// capture lands in the on-disk ring.
func TestSLOFastBurnDegradesHealthAndCapturesProfile(t *testing.T) {
	dir := t.TempDir()
	s, ts := newTestServer(t, Config{
		SLOInterval: time.Hour,
		ProfileDir:  dir,
		ProfileCPU:  10 * time.Millisecond,
	})
	dbg := httptest.NewServer(s.DebugHandler())
	defer dbg.Close()

	// Healthy first: /healthz is plain ok before any burn.
	res, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health map[string]any
	if err := json.NewDecoder(res.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if health["status"] != "ok" {
		t.Fatalf("pre-burn health = %v", health["status"])
	}

	// 100% error traffic: empty series fails validation with a 400,
	// which lands in the per-endpoint error counter the availability
	// SLO reads.
	for i := 0; i < 20; i++ {
		r, err := http.Post(ts.URL+"/v1/detect", "application/json",
			strings.NewReader(`{"series":[]}`))
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if r.StatusCode != http.StatusBadRequest {
			t.Fatalf("expected 400, got %d", r.StatusCode)
		}
	}

	// Two ticks: the first seeds the counter series, the second
	// computes window rates (the short-history fallback uses the
	// oldest sample, so an all-error series fires immediately).
	s.sloEng.Tick()
	s.sloEng.Tick()
	if !s.sloEng.Firing() {
		t.Fatalf("availability fast burn did not fire: %+v", s.sloEng.Status())
	}

	// /healthz degrades but stays 200: load balancers keep routing,
	// operators see the objective that is burning.
	res, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	health = map[string]any{}
	if err := json.NewDecoder(res.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != http.StatusOK {
		t.Fatalf("degraded /healthz must stay 200, got %d", res.StatusCode)
	}
	if health["status"] != "degraded" {
		t.Fatalf("post-burn health = %v", health["status"])
	}

	// /debug/slo mirrors the engine.
	res, err = http.Get(dbg.URL + "/debug/slo")
	if err != nil {
		t.Fatal(err)
	}
	var sloBody struct {
		Firing     bool `json:"firing"`
		Objectives []struct {
			Name    string `json:"name"`
			Windows []struct {
				Firing bool `json:"firing"`
			} `json:"windows"`
		} `json:"objectives"`
	}
	if err := json.NewDecoder(res.Body).Decode(&sloBody); err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if !sloBody.Firing {
		t.Fatalf("/debug/slo firing=false while engine fires")
	}

	// Scrape: the alert gauge is 1 for availability.
	scrape, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw := make([]byte, 1<<20)
	n, _ := scrape.Body.Read(raw)
	for {
		m, err := scrape.Body.Read(raw[n:])
		n += m
		if err != nil || n == len(raw) {
			break
		}
	}
	scrape.Body.Close()
	text := string(raw[:n])
	if !strings.Contains(text, `rp_slo_alert{severity="fast",slo="availability"} 1`) {
		t.Fatalf("rp_slo_alert not firing on the scrape:\n%s", grepLines(text, "rp_slo_"))
	}
	if !strings.Contains(text, `rp_slo_burn_rate{slo="availability"`) {
		t.Fatalf("rp_slo_burn_rate missing:\n%s", grepLines(text, "rp_slo_"))
	}

	// The rising edge captured a profile bundle into the ring
	// (asynchronously — the CPU window blocks ~ProfileCPU).
	deadline := time.Now().Add(5 * time.Second)
	for {
		entries, _ := os.ReadDir(dir)
		found := false
		for _, e := range entries {
			if !e.IsDir() || !strings.Contains(e.Name(), "fast_burn-availability") {
				continue
			}
			if _, err := os.Stat(filepath.Join(dir, e.Name(), "cpu.pprof")); err == nil {
				found = true
			}
		}
		if found {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no fast-burn profile capture landed in %s", dir)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// A second tick while still firing must not capture again (the
	// trigger is edge-, not level-, sensitive).
	before := len(s.profiles.Captures())
	s.sloEng.Tick()
	time.Sleep(50 * time.Millisecond)
	if after := len(s.profiles.Captures()); after != before {
		t.Fatalf("level-triggered recapture: %d -> %d", before, after)
	}
}

// grepLines filters text to lines containing substr, for test
// failure output.
func grepLines(text, substr string) string {
	var out []string
	for _, ln := range strings.Split(text, "\n") {
		if strings.Contains(ln, substr) {
			out = append(out, ln)
		}
	}
	return strings.Join(out, "\n")
}
