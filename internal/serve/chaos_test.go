package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"testing"
	"time"

	"robustperiod/internal/faults"
)

// chaosSweep is the contract every fault point must satisfy: with the
// point firing probabilistically under concurrent load, the service
// never crashes, never returns a malformed response, and only ever
// fails with the structured error envelope. After disarming, it
// returns to full quality.
func TestChaosEveryFaultPoint(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos sweep is slow")
	}
	series := sineSeries(512, 64, 99)
	for _, point := range faults.Points() {
		for _, action := range []string{"error", "panic"} {
			point, action := point, action
			t.Run(fmt.Sprintf("%s_%s", point, action), func(t *testing.T) {
				// Breakers stay enabled at default threshold so the sweep
				// also proves they cannot wedge the service permanently:
				// the recovery phase waits out the cooldown.
				_, ts := newTestServer(t, Config{
					CacheSize:       64,
					BreakerCooldown: 50 * time.Millisecond,
				})
				body := detectBody(t, series, nil, false)

				faults.Enable(faults.MustParse(point + ":" + action + ":p=0.5:seed=7"))
				t.Cleanup(faults.Disable)

				const (
					goroutines = 4
					perG       = 6
				)
				var wg sync.WaitGroup
				errs := make(chan string, goroutines*perG)
				for g := 0; g < goroutines; g++ {
					wg.Add(1)
					go func(g int) {
						defer wg.Done()
						for i := 0; i < perG; i++ {
							resp, b := postJSON(t, ts.URL+"/v1/detect", body)
							var env struct {
								Error   *APIError `json:"error"`
								Periods []int     `json:"periods"`
							}
							if err := json.Unmarshal(b, &env); err != nil {
								errs <- fmt.Sprintf("malformed response (status %d): %s", resp.StatusCode, b)
								continue
							}
							switch {
							case resp.StatusCode == http.StatusOK:
								if env.Periods == nil {
									errs <- "200 without periods"
								}
							case env.Error == nil:
								errs <- fmt.Sprintf("status %d without error envelope: %s", resp.StatusCode, b)
							case resp.StatusCode >= 500 && resp.StatusCode != http.StatusServiceUnavailable &&
								resp.StatusCode != http.StatusInternalServerError:
								errs <- fmt.Sprintf("unexpected status %d (%s)", resp.StatusCode, env.Error.Code)
							}
						}
					}(g)
				}
				wg.Wait()
				close(errs)
				for e := range errs {
					t.Error(e)
				}

				// Disarm and prove full recovery: within a few breaker
				// cooldowns the endpoint serves clean 200s again. A fresh
				// series sidesteps any degraded result cached during the
				// fault phase.
				faults.Disable()
				fresh := detectBody(t, sineSeries(512, 64, 1000), nil, false)
				deadline := time.Now().Add(5 * time.Second)
				for {
					resp, b := postJSON(t, ts.URL+"/v1/detect", fresh)
					if resp.StatusCode == http.StatusOK {
						var out DetectResponse
						if err := json.Unmarshal(b, &out); err != nil {
							t.Fatalf("recovery response malformed: %v", err)
						}
						if len(out.Degraded) != 0 {
							t.Errorf("recovered service still degraded: %v", out.Degraded)
						}
						break
					}
					if time.Now().After(deadline) {
						t.Fatalf("service did not recover after disarming %s (%d: %s)", point, resp.StatusCode, b)
					}
					time.Sleep(20 * time.Millisecond)
				}
			})
		}
	}
}

// TestChaosCacheCorruptionSelfHeals checks the cache-specific
// behavior behind the sweep: a corrupted entry is dropped, counted,
// and recomputed — the client still gets the right answer.
func TestChaosCacheCorruptionSelfHeals(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	series := sineSeries(512, 64, 101)
	body := detectBody(t, series, nil, false)

	// Prime the cache, then corrupt every read.
	resp, b := postJSON(t, ts.URL+"/v1/detect", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("prime: %d (%s)", resp.StatusCode, b)
	}
	var first DetectResponse
	if err := json.Unmarshal(b, &first); err != nil {
		t.Fatal(err)
	}

	faults.Enable(faults.MustParse("serve/cache:error"))
	t.Cleanup(faults.Disable)
	resp, b = postJSON(t, ts.URL+"/v1/detect", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("corrupted read: %d (%s)", resp.StatusCode, b)
	}
	var second DetectResponse
	if err := json.Unmarshal(b, &second); err != nil {
		t.Fatal(err)
	}
	if second.Cached {
		t.Error("corrupted entry served as a cache hit")
	}
	if fmt.Sprint(second.Periods) != fmt.Sprint(first.Periods) {
		t.Errorf("recomputed periods %v != original %v", second.Periods, first.Periods)
	}
	if n := s.cache.corrupted(); n == 0 {
		t.Error("corruption counter did not advance")
	}
}

// TestMetricsExposeRobustnessCounters pins the /metrics families of
// the overload-protection layer: shed counters, breaker gauges, panic
// and degradation counters all present and consistent in the
// Prometheus exposition.
func TestMetricsExposeRobustnessCounters(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	m := metricsSnapshot(t, ts.URL)
	for _, ep := range []string{"detect", "batch"} {
		if n := promValue(t, m, "rp_requests_shed_total", "endpoint", ep); n != 0 {
			t.Errorf("rp_requests_shed_total{endpoint=%s} = %v on a fresh server", ep, n)
		}
		// 0 = closed, 1 = open, 2 = half-open.
		if state := promValue(t, m, "rp_breaker_state", "endpoint", ep); state != 0 {
			t.Errorf("rp_breaker_state{endpoint=%s} = %v, want 0 (closed)", ep, state)
		}
		promValue(t, m, "rp_breaker_opens_total", "endpoint", ep)
	}
	for _, name := range []string{"rp_panics_recovered_total", "rp_degraded_total", "rp_cache_corruptions_total"} {
		promValue(t, m, name)
	}
}

// TestWorkerPanicRecovery proves a panicking detection does not kill
// its worker goroutine: the client gets a structured 500 and the pool
// still serves the next request.
func TestWorkerPanicRecovery(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, BreakerThreshold: -1, CacheSize: -1})
	series := sineSeries(256, 32, 103)
	body := detectBody(t, series, nil, false)

	faults.Enable(faults.MustParse("serve/worker:panic:times=2"))
	t.Cleanup(faults.Disable)
	for i := 0; i < 2; i++ {
		resp, b := postJSON(t, ts.URL+"/v1/detect", body)
		if resp.StatusCode != http.StatusInternalServerError {
			t.Fatalf("panicked request %d: %d (%s)", i, resp.StatusCode, b)
		}
		if code := errCode(t, b); code != "internal_panic" {
			t.Errorf("panicked request %d: code = %q, want internal_panic", i, code)
		}
	}
	// With only one worker, a leaked panic would have deadlocked this.
	resp, b := postJSON(t, ts.URL+"/v1/detect", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("request after panics: %d (%s)", resp.StatusCode, b)
	}
}

// TestDegradedDetectionOverHTTP: with the robust solver broken the
// API still answers 200 with the right period, annotated as degraded,
// and degraded_total advances.
func TestDegradedDetectionOverHTTP(t *testing.T) {
	_, ts := newTestServer(t, Config{CacheSize: -1})
	series := sineSeries(1024, 64, 107)
	body := detectBody(t, series, nil, false)

	faults.Enable(faults.MustParse("spectrum/solver:error"))
	t.Cleanup(faults.Disable)
	resp, b := postJSON(t, ts.URL+"/v1/detect", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("degraded detection: %d (%s)", resp.StatusCode, b)
	}
	var out DetectResponse
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Degraded) == 0 {
		t.Fatal("no degradation annotation in response")
	}
	found := false
	for _, p := range out.Periods {
		if p >= 62 && p <= 66 {
			found = true
		}
	}
	if !found {
		t.Errorf("degraded detection lost period 64: %v", out.Periods)
	}
	m := metricsSnapshot(t, ts.URL)
	if n := promValue(t, m, "rp_degraded_total"); n < 1 {
		t.Errorf("rp_degraded_total = %v, want >= 1", n)
	}
}

// TestFillMissingOverHTTP: strict JSON cannot carry NaN, so the
// gap-bearing paths of fill_missing are covered at the validateSeries
// and library layers. What the wire can test: the option on a
// complete series is accepted and reports filledFraction 0.
func TestFillMissingOverHTTP(t *testing.T) {
	_, ts := newTestServer(t, Config{CacheSize: -1})
	series := sineSeries(600, 50, 109)
	b, _ := json.Marshal(DetectRequest{Series: series, Options: &APIOptions{FillMissing: true}})
	resp, body := postJSON(t, ts.URL+"/v1/detect", string(b))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fill_missing on clean series: %d (%s)", resp.StatusCode, body)
	}
	var out DetectResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.FilledFraction != 0 {
		t.Errorf("filledFraction = %g on a complete series", out.FilledFraction)
	}
}
