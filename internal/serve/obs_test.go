package serve

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"robustperiod/internal/faults"
	"robustperiod/internal/obs"
)

// debugServer exposes the flight-recorder surfaces of an existing
// Server on their own test listener.
func debugServer(t *testing.T, s *Server) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(s.DebugHandler())
	t.Cleanup(ts.Close)
	return ts
}

// fetchRecord retrieves one flight-recorder entry by the ID a client
// read from X-Request-ID.
func fetchRecord(t *testing.T, debugURL, id string) (int, RequestRecord) {
	t.Helper()
	res, err := http.Get(debugURL + "/debug/requests/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	var rec RequestRecord
	if res.StatusCode == http.StatusOK {
		if err := json.NewDecoder(res.Body).Decode(&rec); err != nil {
			t.Fatal(err)
		}
	}
	return res.StatusCode, rec
}

// TestRequestIDRoundTrip pins the correlation contract end to end: a
// detect response carries a parseable X-Request-ID, and that exact ID
// retrieves the request's full post-mortem record — per-stage trace
// included — from the debug listener.
func TestRequestIDRoundTrip(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	dbg := debugServer(t, s)

	resp, raw := postJSON(t, ts.URL+"/v1/detect", detectBody(t, sineSeries(480, 24, 11), nil, false))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("detect: %d (%s)", resp.StatusCode, raw)
	}
	id := resp.Header.Get("X-Request-ID")
	if id == "" {
		t.Fatal("200 response without X-Request-ID")
	}
	if _, ok := obs.ParseID(id); !ok {
		t.Fatalf("X-Request-ID %q is not a valid request ID", id)
	}

	status, rec := fetchRecord(t, dbg.URL, id)
	if status != http.StatusOK {
		t.Fatalf("GET /debug/requests/%s -> %d", id, status)
	}
	if rec.ID != id {
		t.Errorf("record ID %q != header %q", rec.ID, id)
	}
	if rec.Endpoint != "detect" || rec.Status != http.StatusOK || rec.Outcome != "ok" {
		t.Errorf("record = %+v, want detect/200/ok", rec)
	}
	if rec.SeriesLen != 480 {
		t.Errorf("record seriesLen = %d, want 480", rec.SeriesLen)
	}
	if rec.Trace == nil || len(rec.Trace.Stages) == 0 {
		t.Errorf("record carries no per-stage trace: %+v", rec.Trace)
	}
	if rec.DurationMs <= 0 {
		t.Errorf("record durationMs = %v", rec.DurationMs)
	}

	// Non-compute endpoints never mint IDs or touch the recorder.
	hr, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hr.Body.Close()
	if got := hr.Header.Get("X-Request-ID"); got != "" {
		t.Errorf("healthz minted a request ID: %q", got)
	}
}

// TestErrorRequestsRetrievableByID pins the acceptance criterion for
// failures: every 4xx and 5xx response is retrievable from the flight
// recorder by the client's X-Request-ID, annotated with the error code
// (and, for injected faults, the fault point that fired).
func TestErrorRequestsRetrievableByID(t *testing.T) {
	s, ts := newTestServer(t, Config{BreakerThreshold: -1})
	dbg := debugServer(t, s)

	// A malformed body: 400 bad_request.
	resp, _ := postJSON(t, ts.URL+"/v1/detect", "{")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed body: %d, want 400", resp.StatusCode)
	}
	badID := resp.Header.Get("X-Request-ID")
	if badID == "" {
		t.Fatal("400 response without X-Request-ID")
	}
	status, rec := fetchRecord(t, dbg.URL, badID)
	if status != http.StatusOK {
		t.Fatalf("lookup of 400 record -> %d", status)
	}
	if rec.Status != http.StatusBadRequest || rec.ErrorCode != "bad_request" || rec.Outcome != "error" {
		t.Errorf("400 record = %+v, want status 400, errorCode bad_request, outcome error", rec)
	}

	// An injected worker fault: 500 with the fault point on record.
	faults.Enable(faults.MustParse("serve/worker:error:times=1"))
	t.Cleanup(faults.Disable)
	resp, raw := postJSON(t, ts.URL+"/v1/detect", detectBody(t, sineSeries(256, 32, 13), nil, false))
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("faulted detect: %d (%s), want 500", resp.StatusCode, raw)
	}
	faultID := resp.Header.Get("X-Request-ID")
	status, rec = fetchRecord(t, dbg.URL, faultID)
	if status != http.StatusOK {
		t.Fatalf("lookup of faulted record -> %d", status)
	}
	if rec.Status != http.StatusInternalServerError || rec.Outcome != "error" {
		t.Errorf("faulted record = %+v, want status 500, outcome error", rec)
	}
	found := false
	for _, p := range rec.FaultPoints {
		if p == string(faults.PointServeWorker) {
			found = true
		}
	}
	if !found {
		t.Errorf("faulted record faultPoints = %v, want %s", rec.FaultPoints, faults.PointServeWorker)
	}
}

// TestDegradedRequestRecord: a request served 200 but degraded (robust
// solver broken, fallback engaged) is pinned in the recorder with its
// degradation annotations and stage trace.
func TestDegradedRequestRecord(t *testing.T) {
	s, ts := newTestServer(t, Config{CacheSize: -1})
	dbg := debugServer(t, s)

	faults.Enable(faults.MustParse("spectrum/solver:error"))
	t.Cleanup(faults.Disable)
	resp, raw := postJSON(t, ts.URL+"/v1/detect", detectBody(t, sineSeries(1024, 64, 17), nil, false))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("degraded detect: %d (%s)", resp.StatusCode, raw)
	}
	id := resp.Header.Get("X-Request-ID")
	status, rec := fetchRecord(t, dbg.URL, id)
	if status != http.StatusOK {
		t.Fatalf("lookup of degraded record -> %d", status)
	}
	if rec.Outcome != "degraded" {
		t.Errorf("outcome = %q, want degraded", rec.Outcome)
	}
	if rec.DegradedCount < 1 || len(rec.Degraded) == 0 {
		t.Errorf("degraded record lost its annotations: count=%d degraded=%v",
			rec.DegradedCount, rec.Degraded)
	}
	if rec.Trace == nil || len(rec.Trace.Stages) == 0 {
		t.Error("degraded record carries no stage trace")
	}
}

// TestRequestListAndLookupErrors covers the list surface and the two
// lookup failure modes: a syntactically bad ID (400) and a valid but
// unknown one (404).
func TestRequestListAndLookupErrors(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	dbg := debugServer(t, s)

	body := detectBody(t, sineSeries(480, 24, 19), nil, false)
	var lastID string
	for i := 0; i < 3; i++ {
		resp, _ := postJSON(t, ts.URL+"/v1/detect", body)
		lastID = resp.Header.Get("X-Request-ID")
	}

	res, err := http.Get(dbg.URL + "/debug/requests")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	var list struct {
		Requests []RequestRecord `json:"requests"`
	}
	if err := json.NewDecoder(res.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if len(list.Requests) != 3 {
		t.Fatalf("list has %d records, want 3", len(list.Requests))
	}
	if list.Requests[0].ID != lastID {
		t.Errorf("list not newest-first: first=%s, last request=%s", list.Requests[0].ID, lastID)
	}
	for _, r := range list.Requests {
		if r.Trace != nil {
			t.Error("list records should omit the bulky trace")
		}
	}

	if status, _ := fetchRecord(t, dbg.URL, "not-hex"); status != http.StatusBadRequest {
		t.Errorf("bad ID lookup -> %d, want 400", status)
	}
	if status, _ := fetchRecord(t, dbg.URL, "0123456789abcdef0123456789abcdef"); status != http.StatusNotFound {
		t.Errorf("unknown ID lookup -> %d, want 404", status)
	}
}

// logLine is one decoded JSON access-log record.
type logLine struct {
	Msg       string `json:"msg"`
	Level     string `json:"level"`
	RequestID string `json:"request_id"`
	Endpoint  string `json:"endpoint"`
	Status    int    `json:"status"`
	ErrorCode string `json:"error_code"`
}

func accessLines(t *testing.T, buf *bytes.Buffer) []logLine {
	t.Helper()
	var out []logLine
	for _, line := range strings.Split(buf.String(), "\n") {
		if strings.TrimSpace(line) == "" {
			continue
		}
		var l logLine
		if err := json.Unmarshal([]byte(line), &l); err != nil {
			t.Fatalf("non-JSON log line %q: %v", line, err)
		}
		if l.Msg == "request" {
			out = append(out, l)
		}
	}
	return out
}

// TestAccessLogSamplingAndCorrelation: with sampling at 1 every
// request logs one line carrying the same request_id the client saw;
// with sampling disabled healthy requests are silent but exceptional
// ones still log, at Warn or above.
func TestAccessLogSamplingAndCorrelation(t *testing.T) {
	var buf bytes.Buffer
	logger, err := obs.NewLogger("json", slog.LevelInfo, &buf)
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Config{Logger: logger, AccessLogEvery: 1})
	resp, _ := postJSON(t, ts.URL+"/v1/detect", detectBody(t, sineSeries(480, 24, 23), nil, false))
	lines := accessLines(t, &buf)
	if len(lines) != 1 {
		t.Fatalf("AccessLogEvery=1: %d access lines, want 1 (%s)", len(lines), buf.String())
	}
	if lines[0].RequestID != resp.Header.Get("X-Request-ID") {
		t.Errorf("log request_id %q != header %q", lines[0].RequestID, resp.Header.Get("X-Request-ID"))
	}
	if lines[0].Endpoint != "detect" || lines[0].Status != http.StatusOK {
		t.Errorf("access line = %+v", lines[0])
	}

	buf.Reset()
	_, ts2 := newTestServer(t, Config{Logger: logger, AccessLogEvery: -1})
	postJSON(t, ts2.URL+"/v1/detect", detectBody(t, sineSeries(480, 24, 23), nil, false))
	if lines := accessLines(t, &buf); len(lines) != 0 {
		t.Fatalf("sampling disabled but healthy request logged: %+v", lines)
	}
	resp, _ = postJSON(t, ts2.URL+"/v1/detect", "{")
	lines = accessLines(t, &buf)
	if len(lines) != 1 {
		t.Fatalf("exceptional request not logged with sampling disabled (%s)", buf.String())
	}
	if lines[0].Level != "WARN" || lines[0].ErrorCode != "bad_request" {
		t.Errorf("exceptional access line = %+v, want level WARN, error_code bad_request", lines[0])
	}
	if lines[0].RequestID != resp.Header.Get("X-Request-ID") {
		t.Errorf("exceptional log request_id %q != header %q",
			lines[0].RequestID, resp.Header.Get("X-Request-ID"))
	}
}

// TestDebugTraceCarriesQuantiles: a ?debug=1 response situates its
// own stage timings against the server's streaming quantile
// estimates, so every stage entry carries p50 <= p90 <= p99.
func TestDebugTraceCarriesQuantiles(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	body := detectBody(t, sineSeries(600, 50, 31), nil, false)
	postJSON(t, ts.URL+"/v1/detect", body) // seed the estimators

	_, raw := postJSON(t, ts.URL+"/v1/detect?debug=1", body)
	var dr DetectResponse
	if err := json.Unmarshal(raw, &dr); err != nil {
		t.Fatal(err)
	}
	if dr.Trace == nil || len(dr.Trace.Stages) == 0 {
		t.Fatalf("debug response has no trace: %s", raw)
	}
	for _, st := range dr.Trace.Stages {
		if st.P50Ms <= 0 {
			t.Errorf("stage %q p50Ms = %v, want > 0", st.Stage, st.P50Ms)
		}
		if st.P50Ms > st.P90Ms || st.P90Ms > st.P99Ms {
			t.Errorf("stage %q quantiles not monotone: p50=%v p90=%v p99=%v",
				st.Stage, st.P50Ms, st.P90Ms, st.P99Ms)
		}
	}
}

// TestMetricsConformantAfterMixedTraffic scrapes /metrics after ok,
// cached, degraded, batch and error traffic and runs the full
// Prometheus text-format conformance check plus spot checks on the
// quantile series the traffic must have populated.
func TestMetricsConformantAfterMixedTraffic(t *testing.T) {
	_, ts := newTestServer(t, Config{BreakerThreshold: -1})
	body := detectBody(t, sineSeries(480, 24, 29), nil, false)
	postJSON(t, ts.URL+"/v1/detect", body)
	postJSON(t, ts.URL+"/v1/detect", body) // cache hit
	postJSON(t, ts.URL+"/v1/detect", "{")  // 400
	postJSON(t, ts.URL+"/v1/detect/batch", `{"series":[[1,2,3,4,5,6,7,8]]}`)

	m := metricsSnapshot(t, ts.URL) // CheckExposition runs inside
	for _, q := range []string{"0.5", "0.9", "0.99"} {
		promValue(t, m, "rp_request_latency_seconds_quantile", "endpoint", "detect", "q", q)
	}
	if n := promValue(t, m, "rp_request_errors_total", "endpoint", "detect"); n < 1 {
		t.Errorf("rp_request_errors_total{endpoint=detect} = %v after a 400", n)
	}
	if n := promValue(t, m, "rp_build_info"); n != 1 {
		t.Errorf("rp_build_info = %v, want 1", n)
	}
	promValue(t, m, "rp_go_goroutines")
}
