package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"robustperiod/internal/obs"
	"robustperiod/internal/trace"
)

// debugSeries is long enough to exercise every pipeline stage: HP
// detrending, several MODWT levels, ranking, per-level periodogram
// and ACF validation.
func debugSeries() []float64 { return sineSeries(600, 50, 42) }

// TestDebugQueryInlinesStageTrace checks the ?debug=1 contract: the
// response carries per-stage timings covering every canonical
// pipeline stage exactly once, and a plain request carries none.
func TestDebugQueryInlinesStageTrace(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	body := detectBody(t, debugSeries(), nil, false)

	resp, raw := postJSON(t, ts.URL+"/v1/detect?debug=1", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	var dr DetectResponse
	if err := json.Unmarshal(raw, &dr); err != nil {
		t.Fatal(err)
	}
	if dr.Trace == nil {
		t.Fatalf("debug response has no trace: %s", raw)
	}
	seen := map[string]int{}
	for _, st := range dr.Trace.Stages {
		seen[st.Stage]++
	}
	for _, name := range trace.PipelineStages() {
		if seen[name] != 1 {
			t.Errorf("stage %q appears %d times, want exactly 1 (trace: %+v)",
				name, seen[name], dr.Trace.Stages)
		}
	}
	if dr.Trace.TotalMs <= 0 {
		t.Fatalf("totalMs %v not positive", dr.Trace.TotalMs)
	}
	for _, st := range dr.Trace.Stages {
		if st.Calls < 1 {
			t.Errorf("stage %q has %d calls", st.Stage, st.Calls)
		}
	}
	if len(dr.Trace.Levels) == 0 {
		t.Fatal("debug trace has no per-level outcomes")
	}

	// A debug request must report a real run, not a memoized one —
	// even straight after the same series was served and cached.
	resp2, raw2 := postJSON(t, ts.URL+"/v1/detect?debug=1", body)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp2.StatusCode)
	}
	var dr2 DetectResponse
	if err := json.Unmarshal(raw2, &dr2); err != nil {
		t.Fatal(err)
	}
	if dr2.Cached {
		t.Fatal("debug request served from cache")
	}
	if dr2.Trace == nil {
		t.Fatal("repeated debug request lost its trace")
	}

	// Plain requests never carry a trace.
	_, rawPlain := postJSON(t, ts.URL+"/v1/detect", body)
	var plain DetectResponse
	if err := json.Unmarshal(rawPlain, &plain); err != nil {
		t.Fatal(err)
	}
	if plain.Trace != nil {
		t.Fatal("non-debug response carries a trace")
	}
}

// TestDebugAndPlainAgree checks that the debug path (which bypasses
// the cache and attaches a trace) returns the same periods as the
// plain path.
func TestDebugAndPlainAgree(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	body := detectBody(t, debugSeries(), nil, false)

	var plain, dbg DetectResponse
	_, rawPlain := postJSON(t, ts.URL+"/v1/detect", body)
	_, rawDbg := postJSON(t, ts.URL+"/v1/detect?debug=1", body)
	if err := json.Unmarshal(rawPlain, &plain); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(rawDbg, &dbg); err != nil {
		t.Fatal(err)
	}
	if len(plain.Periods) == 0 {
		t.Fatalf("no periods detected: %s", rawPlain)
	}
	if len(plain.Periods) != len(dbg.Periods) {
		t.Fatalf("debug changed the detection: %v vs %v", plain.Periods, dbg.Periods)
	}
	for i := range plain.Periods {
		if plain.Periods[i] != dbg.Periods[i] {
			t.Fatalf("debug changed the detection: %v vs %v", plain.Periods, dbg.Periods)
		}
	}
}

// TestStageHistogramsOnMetrics checks every served detection feeds the
// per-stage histograms and quantile estimators, and that the full
// canonical stage set is present on /metrics from the moment the
// server starts.
func TestStageHistogramsOnMetrics(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	postJSON(t, ts.URL+"/v1/detect", detectBody(t, debugSeries(), nil, false))

	// An invalid request must not disturb the stage histograms.
	if resp, _ := postJSON(t, ts.URL+"/v1/detect", "{"); resp.StatusCode == http.StatusOK {
		t.Fatal("malformed body accepted")
	}

	m := metricsSnapshot(t, ts.URL)
	for _, name := range trace.PipelineStages() {
		if cnt := promValue(t, m, "rp_stage_duration_seconds_count", "stage", name); cnt < 1 {
			t.Errorf("stage %q histogram empty after a served detection", name)
		}
		for _, q := range []string{"0.5", "0.9", "0.99"} {
			promValue(t, m, "rp_stage_latency_seconds_quantile", "stage", name, "q", q)
		}
	}
	// Satellite check: stage histograms carry sub-millisecond buckets,
	// so fast stages are not all collapsed into the first bucket the
	// endpoint histograms use (1ms).
	f := obs.FindFamily(m, "rp_stage_duration_seconds")
	if f == nil {
		t.Fatal("rp_stage_duration_seconds family missing")
	}
	subMS := 0
	for _, s := range f.Samples {
		le := s.Label("le")
		if le == "" || le == "+Inf" {
			continue
		}
		var bound float64
		fmt.Sscanf(le, "%g", &bound)
		if bound > 0 && bound < 0.001 {
			subMS++
		}
	}
	if subMS == 0 {
		t.Error("stage histograms have no sub-millisecond buckets")
	}
}

// TestStageHistogramsRegisteredOncePerServer pins the restart
// behavior the expvar package punishes globally: constructing,
// serving with, closing and re-constructing servers must not panic on
// duplicate metric names, because every server owns a private expvar
// map. (A process-global expvar.Publish of the same name panics.)
func TestStageHistogramsRegisteredOncePerServer(t *testing.T) {
	for i := 0; i < 3; i++ {
		s, err := New(Config{})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(s.Handler())
		m := metricsSnapshot(t, ts.URL)
		if obs.FindFamily(m, "rp_stage_duration_seconds") == nil {
			t.Fatalf("restart %d: rp_stage_duration_seconds missing", i)
		}
		ts.Close()
		s.Close()
	}
}

// TestDebugHandlerSurfaces checks the separate debug listener serves
// the pprof index, a profile endpoint, and the expvar dump.
func TestDebugHandlerSurfaces(t *testing.T) {
	s, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.DebugHandler())
	defer ts.Close()

	for _, path := range []string{"/", "/debug/pprof/", "/debug/vars"} {
		res, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		if res.StatusCode != http.StatusOK {
			t.Fatalf("GET %s -> %d", path, res.StatusCode)
		}
		res.Body.Close()
	}

	res, err := http.Get(ts.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	idx, err := io.ReadAll(res.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(idx), "goroutine") {
		t.Fatal("pprof index does not list profiles")
	}

	// The expvar dump on the debug listener is the same object as the
	// API /metrics, including the stage histograms.
	res2, err := http.Get(ts.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	defer res2.Body.Close()
	var m map[string]json.RawMessage
	if err := json.NewDecoder(res2.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	if _, ok := m["stage_latency_ms"]; !ok {
		t.Fatal("debug /debug/vars missing stage_latency_ms")
	}
}
