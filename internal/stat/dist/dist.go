// Package dist provides the probability distributions and significance
// tests RobustPeriod relies on: the normal and chi-square CDFs, the
// exact null distribution of Fisher's g-statistic for periodogram
// ordinates, and the Siegel multi-period threshold derived from it.
package dist

import (
	"math"
	"sort"
)

// NormalCDF returns P(Z <= x) for a standard normal Z.
func NormalCDF(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}

// NormalQuantile returns the x with NormalCDF(x) = p, using the
// Acklam rational approximation refined by one Halley step. It returns
// ±Inf for p at {0,1} and NaN outside [0,1].
func NormalQuantile(p float64) float64 {
	switch {
	case math.IsNaN(p) || p < 0 || p > 1:
		return math.NaN()
	case p == 0:
		return math.Inf(-1)
	//lint:ignore rplint/floateq boundary of the quantile domain: exactly 1.0 maps to +Inf; any nearby value takes the Acklam path
	case p == 1:
		return math.Inf(1)
	}
	// Acklam's approximation.
	const (
		pLow  = 0.02425
		pHigh = 1 - pLow
	)
	var x float64
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02, 1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02, 6.680131188771972e+01, -1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00, -2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00}
	d := [4]float64{7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00, 3.754408661907416e+00}
	switch {
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		x = (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= pHigh:
		q := p - 0.5
		r := q * q
		x = (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		x = -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}
	// One Halley refinement.
	e := NormalCDF(x) - p
	u := e * math.Sqrt(2*math.Pi) * math.Exp(x*x/2)
	x = x - u/(1+x*u/2)
	return x
}

// GammaLowerRegularized returns P(a, x), the regularized lower
// incomplete gamma function, via the series expansion for x < a+1 and
// the continued fraction otherwise (Numerical Recipes style).
func GammaLowerRegularized(a, x float64) float64 {
	switch {
	case x < 0 || a <= 0:
		return math.NaN()
	case x == 0:
		return 0
	}
	if x < a+1 {
		return gammaSeries(a, x)
	}
	return 1 - gammaContinuedFraction(a, x)
}

func gammaSeries(a, x float64) float64 {
	lg, _ := math.Lgamma(a)
	ap := a
	sum := 1 / a
	del := sum
	for i := 0; i < 500; i++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*1e-15 {
			break
		}
	}
	return sum * math.Exp(-x+a*math.Log(x)-lg)
}

func gammaContinuedFraction(a, x float64) float64 {
	const tiny = 1e-300
	lg, _ := math.Lgamma(a)
	b := x + 1 - a
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i < 500; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < 1e-15 {
			break
		}
	}
	return math.Exp(-x+a*math.Log(x)-lg) * h
}

// ChiSquareCDF returns P(X <= x) for a chi-square variable with k
// degrees of freedom.
func ChiSquareCDF(x float64, k float64) float64 {
	if x <= 0 {
		return 0
	}
	return GammaLowerRegularized(k/2, x/2)
}

// LogChoose returns ln C(n, k) via lgamma.
func LogChoose(n, k int) float64 {
	if k < 0 || k > n {
		return math.Inf(-1)
	}
	ln, _ := math.Lgamma(float64(n) + 1)
	lk, _ := math.Lgamma(float64(k) + 1)
	lnk, _ := math.Lgamma(float64(n-k) + 1)
	return ln - lk - lnk
}

// FisherGPValue returns the exact null tail probability P(g >= g0) of
// Fisher's g-statistic computed over n periodogram ordinates:
//
//	P(g >= g0) = Σ_{k=1}^{⌊1/g0⌋∧n} (−1)^{k−1} C(n,k) (1 − k·g0)^{n−1}
//
// evaluated in log space term by term. The result is clamped to [0, 1].
// g0 outside (0, 1] returns 1 (any g is at least 1/n under the null).
func FisherGPValue(g0 float64, n int) float64 {
	if n <= 1 || g0 <= 0 {
		return 1
	}
	if g0 >= 1 {
		// g can equal 1 only in degenerate cases; tail mass is the
		// single k=1 term at the boundary, which is 0.
		return 0
	}
	kMax := int(1 / g0)
	if kMax > n {
		kMax = n
	}
	sum := 0.0
	comp := 0.0 // Kahan compensation
	for k := 1; k <= kMax; k++ {
		base := 1 - float64(k)*g0
		if base <= 0 {
			break
		}
		logTerm := LogChoose(n, k) + float64(n-1)*math.Log(base)
		term := math.Exp(logTerm)
		if k%2 == 0 {
			term = -term
		}
		y := term - comp
		t := sum + y
		comp = (t - sum) - y
		sum = t
		// Terms decay geometrically once C(n,k) growth is beaten by the
		// (1−k·g0)^{n−1} decay; stop when negligible.
		if math.Abs(term) < 1e-18 && k > 2 {
			break
		}
	}
	if sum < 0 {
		return 0
	}
	if sum > 1 {
		return 1
	}
	return sum
}

// FisherGCritical returns the critical value g_α with
// P(g >= g_α) = alpha under the null, found by bisection. It is used
// both for Fisher's test and as the base of the Siegel threshold.
func FisherGCritical(alpha float64, n int) float64 {
	if n <= 1 {
		return 1
	}
	lo, hi := 1/float64(n), 1.0
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if FisherGPValue(mid, n) > alpha {
			lo = mid
		} else {
			hi = mid
		}
		if hi-lo < 1e-12 {
			break
		}
	}
	return (lo + hi) / 2
}

// KSStatisticNormal returns the Kolmogorov–Smirnov statistic of x
// against a normal distribution with the given mean and standard
// deviation: D = sup |F̂(x) − Φ((x−μ)/σ)|. x is not modified.
func KSStatisticNormal(x []float64, mean, sd float64) float64 {
	n := len(x)
	if n == 0 || sd <= 0 {
		return 1
	}
	buf := append([]float64(nil), x...)
	sort.Float64s(buf)
	d := 0.0
	for i, v := range buf {
		cdf := NormalCDF((v - mean) / sd)
		lo := float64(i) / float64(n)
		hi := float64(i+1) / float64(n)
		if diff := math.Abs(cdf - lo); diff > d {
			d = diff
		}
		if diff := math.Abs(cdf - hi); diff > d {
			d = diff
		}
	}
	return d
}

// KSPValue returns the asymptotic Kolmogorov tail probability
// P(D > d) for sample size n via the Kolmogorov series
// 2 Σ (−1)^{k−1} exp(−2k²λ²) with λ = d(√n + 0.12 + 0.11/√n)
// (Stephens' small-sample correction).
func KSPValue(d float64, n int) float64 {
	if n <= 0 || d <= 0 {
		return 1
	}
	sn := math.Sqrt(float64(n))
	lambda := d * (sn + 0.12 + 0.11/sn)
	sum := 0.0
	for k := 1; k <= 100; k++ {
		term := 2 * math.Exp(-2*float64(k*k)*lambda*lambda)
		if k%2 == 0 {
			term = -term
		}
		sum += term
		if math.Abs(term) < 1e-12 {
			break
		}
	}
	if sum < 0 {
		return 0
	}
	if sum > 1 {
		return 1
	}
	return sum
}

// SiegelThreshold returns the per-ordinate threshold t = λ·g_α used by
// Siegel's compound periodicity test (Siegel 1980, Walden 1992):
// every normalized ordinate p̃_k = P_k/ΣP exceeding t is declared a
// periodic component. λ=0.6 is Siegel's recommended value for multiple
// periodicities.
func SiegelThreshold(alpha, lambda float64, n int) float64 {
	return lambda * FisherGCritical(alpha, n)
}
