package dist

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

func close(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestNormalCDFKnownValues(t *testing.T) {
	cases := []struct{ x, want float64 }{
		{0, 0.5},
		{1, 0.8413447460685429},
		{-1, 0.15865525393145705},
		{1.959963984540054, 0.975},
		{-3, 0.0013498980316300933},
	}
	for _, c := range cases {
		if got := NormalCDF(c.x); !close(got, c.want, 1e-12) {
			t.Errorf("NormalCDF(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestNormalQuantileInvertsCDF(t *testing.T) {
	for _, p := range []float64{1e-10, 1e-6, 0.001, 0.01, 0.025, 0.2, 0.5, 0.8, 0.975, 0.999, 1 - 1e-9} {
		x := NormalQuantile(p)
		if got := NormalCDF(x); !close(got, p, 1e-9*math.Max(1, 1/p)) {
			t.Errorf("CDF(Quantile(%v)) = %v", p, got)
		}
	}
	if !math.IsInf(NormalQuantile(0), -1) || !math.IsInf(NormalQuantile(1), 1) {
		t.Error("quantile boundary values wrong")
	}
	if !math.IsNaN(NormalQuantile(-0.1)) || !math.IsNaN(NormalQuantile(1.1)) {
		t.Error("quantile should be NaN outside [0,1]")
	}
}

func TestChiSquareCDFKnownValues(t *testing.T) {
	// Reference values from standard tables.
	cases := []struct {
		x, k, want float64
	}{
		{0, 2, 0},
		{2, 2, 1 - math.Exp(-1)}, // chi2(2) is Exp(1/2)
		{3.841458820694124, 1, 0.95},
		{5.991464547107979, 2, 0.95},
		{18.307038053275146, 10, 0.95},
	}
	for _, c := range cases {
		if got := ChiSquareCDF(c.x, c.k); !close(got, c.want, 1e-9) {
			t.Errorf("ChiSquareCDF(%v,%v) = %v, want %v", c.x, c.k, got, c.want)
		}
	}
	if ChiSquareCDF(-1, 3) != 0 {
		t.Error("negative x should give 0")
	}
}

func TestGammaLowerRegularizedEdges(t *testing.T) {
	if GammaLowerRegularized(2, 0) != 0 {
		t.Error("P(a,0) should be 0")
	}
	if !math.IsNaN(GammaLowerRegularized(-1, 1)) || !math.IsNaN(GammaLowerRegularized(1, -1)) {
		t.Error("invalid args should be NaN")
	}
	// P(1, x) = 1 - exp(-x).
	for _, x := range []float64{0.1, 1, 5, 20} {
		if got := GammaLowerRegularized(1, x); !close(got, 1-math.Exp(-x), 1e-12) {
			t.Errorf("P(1,%v) = %v", x, got)
		}
	}
	// Monotone in x.
	prev := 0.0
	for x := 0.1; x < 30; x += 0.3 {
		v := GammaLowerRegularized(4.2, x)
		if v < prev-1e-15 {
			t.Fatalf("not monotone at x=%v", x)
		}
		prev = v
	}
}

func TestLogChoose(t *testing.T) {
	if got := LogChoose(10, 3); !close(got, math.Log(120), 1e-10) {
		t.Errorf("LogChoose(10,3) = %v", got)
	}
	if !math.IsInf(LogChoose(5, 6), -1) || !math.IsInf(LogChoose(5, -1), -1) {
		t.Error("out-of-range k should be -Inf")
	}
	if got := LogChoose(1000, 500); !close(got, 689.467261567851, 1e-6) {
		t.Errorf("LogChoose(1000,500) = %v", got)
	}
}

func TestFisherGPValueBounds(t *testing.T) {
	for _, n := range []int{5, 50, 500} {
		for _, g := range []float64{0.001, 0.01, 0.05, 0.1, 0.3, 0.7, 0.99} {
			p := FisherGPValue(g, n)
			if p < 0 || p > 1 || math.IsNaN(p) {
				t.Errorf("p-value out of range: g=%v n=%d p=%v", g, n, p)
			}
		}
	}
	if FisherGPValue(0.5, 1) != 1 {
		t.Error("n=1 should return 1")
	}
	if FisherGPValue(0, 100) != 1 {
		t.Error("g0=0 should return 1")
	}
	if FisherGPValue(1.2, 100) != 0 {
		t.Error("g0>=1 should return 0")
	}
}

func TestFisherGPValueMonotoneInG(t *testing.T) {
	n := 100
	prev := 1.1
	for g := 0.02; g < 0.9; g += 0.005 {
		p := FisherGPValue(g, n)
		if p > prev+1e-12 {
			t.Fatalf("p-value not non-increasing at g=%v: %v > %v", g, p, prev)
		}
		prev = p
	}
}

func TestFisherGPValueSmallNExact(t *testing.T) {
	// For n=2: P(g>=g0) = 2(1-g0) for g0 in [1/2, 1].
	for _, g0 := range []float64{0.5, 0.6, 0.8, 0.95} {
		want := 2 * (1 - g0)
		if got := FisherGPValue(g0, 2); !close(got, want, 1e-12) {
			t.Errorf("n=2 g0=%v: got %v want %v", g0, got, want)
		}
	}
	// For n=3, g0 >= 1/2: P = 3(1-g0)^2.
	for _, g0 := range []float64{0.5, 0.7, 0.9} {
		want := 3 * (1 - g0) * (1 - g0)
		if got := FisherGPValue(g0, 3); !close(got, want, 1e-12) {
			t.Errorf("n=3 g0=%v: got %v want %v", g0, got, want)
		}
	}
}

func TestFisherGPValueMatchesMonteCarlo(t *testing.T) {
	// Under the null (white Gaussian noise) the exact formula should
	// match the empirical distribution of g.
	rng := rand.New(rand.NewSource(42))
	n := 30
	trials := 4000
	gs := make([]float64, trials)
	for tr := 0; tr < trials; tr++ {
		// Exponential ordinates are the exact null for periodogram bins.
		sum, max := 0.0, 0.0
		for i := 0; i < n; i++ {
			e := rng.ExpFloat64()
			sum += e
			if e > max {
				max = e
			}
		}
		gs[tr] = max / sum
	}
	sort.Float64s(gs)
	for _, q := range []float64{0.5, 0.9, 0.99} {
		g0 := gs[int(q*float64(trials))]
		want := 1 - q
		got := FisherGPValue(g0, n)
		if math.Abs(got-want) > 0.03 {
			t.Errorf("quantile %v: empirical tail %v, formula %v", q, want, got)
		}
	}
}

func TestFisherGCritical(t *testing.T) {
	for _, n := range []int{10, 100, 1000} {
		for _, alpha := range []float64{0.05, 0.01, 0.001} {
			g := FisherGCritical(alpha, n)
			if p := FisherGPValue(g, n); !close(p, alpha, alpha*0.02+1e-9) {
				t.Errorf("n=%d alpha=%v: P(g>=crit)=%v", n, alpha, p)
			}
			if g <= 1/float64(n) || g >= 1 {
				t.Errorf("critical value out of range: %v", g)
			}
		}
	}
	// Larger n -> smaller critical value at fixed alpha.
	if FisherGCritical(0.05, 1000) >= FisherGCritical(0.05, 100) {
		t.Error("critical value should shrink with n")
	}
}

func TestKSStatisticNormal(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	// Gaussian sample: small D, non-significant p.
	x := make([]float64, 2000)
	for i := range x {
		x[i] = 3 + 2*rng.NormFloat64()
	}
	d := KSStatisticNormal(x, 3, 2)
	if d > 0.05 {
		t.Errorf("Gaussian D = %v, want small", d)
	}
	if p := KSPValue(d, len(x)); p < 0.01 {
		t.Errorf("Gaussian sample rejected (p=%v)", p)
	}
	// Heavy-tailed sample against normal: large D, significant p.
	y := make([]float64, 2000)
	for i := range y {
		y[i] = rng.NormFloat64() / (0.1 + math.Abs(rng.NormFloat64())) // Cauchy-ish
	}
	var mean, sd float64
	for _, v := range y {
		mean += v
	}
	mean /= float64(len(y))
	for _, v := range y {
		sd += (v - mean) * (v - mean)
	}
	sd = math.Sqrt(sd / float64(len(y)))
	dy := KSStatisticNormal(y, mean, sd)
	if dy < 0.08 {
		t.Errorf("heavy-tailed D = %v, want large", dy)
	}
	if p := KSPValue(dy, len(y)); p > 1e-4 {
		t.Errorf("heavy-tailed sample not rejected (p=%v)", p)
	}
	// Degenerate inputs.
	if KSStatisticNormal(nil, 0, 1) != 1 || KSStatisticNormal(x, 0, 0) != 1 {
		t.Error("degenerate KS should return 1")
	}
	if KSPValue(0.5, 0) != 1 || KSPValue(0, 10) != 1 {
		t.Error("degenerate KS p-value should return 1")
	}
}

func TestKSPValueMonotone(t *testing.T) {
	prev := 1.1
	for d := 0.01; d < 0.5; d += 0.01 {
		p := KSPValue(d, 200)
		if p > prev+1e-12 {
			t.Fatalf("p-value not non-increasing at d=%v", d)
		}
		prev = p
	}
}

func TestSiegelThreshold(t *testing.T) {
	th := SiegelThreshold(0.05, 0.6, 200)
	if !close(th, 0.6*FisherGCritical(0.05, 200), 1e-15) {
		t.Error("Siegel threshold should be lambda * Fisher critical")
	}
	if th <= 0 || th >= 1 {
		t.Errorf("threshold out of range: %v", th)
	}
}

func BenchmarkFisherGPValue(b *testing.B) {
	for i := 0; i < b.N; i++ {
		FisherGPValue(0.01, 1000)
	}
}

func BenchmarkFisherGCritical(b *testing.B) {
	for i := 0; i < b.N; i++ {
		FisherGCritical(0.01, 1000)
	}
}
