// Package robust provides robust location and scale estimators used
// throughout RobustPeriod: medians via quickselect, the median absolute
// deviation, the biweight midvariance, and the Huber loss family.
//
// All estimators operate on float64 slices and never mutate their input
// unless the function name says so (the ...InPlace variants).
package robust

import (
	"errors"
	"math"
)

// ErrEmpty is returned (or causes a panic in Must* helpers) when an
// estimator is asked to summarize an empty sample.
var ErrEmpty = errors.New("robust: empty sample")

// Median returns the sample median of x without mutating it.
// For even-length samples it returns the mean of the two middle order
// statistics. It panics on an empty slice.
func Median(x []float64) float64 {
	if len(x) == 0 {
		panic(ErrEmpty)
	}
	buf := make([]float64, len(x))
	copy(buf, x)
	return MedianInPlace(buf)
}

// MedianInPlace returns the median of x, reordering x as a side effect.
// It runs in expected O(n) time using quickselect.
func MedianInPlace(x []float64) float64 {
	n := len(x)
	if n == 0 {
		panic(ErrEmpty)
	}
	if n%2 == 1 {
		return SelectInPlace(x, n/2)
	}
	hi := SelectInPlace(x, n/2)
	// After selecting the n/2-th order statistic, the lower partition
	// holds all elements <= hi; its maximum is the (n/2-1)-th statistic.
	lo := math.Inf(-1)
	for _, v := range x[:n/2] {
		if v > lo {
			lo = v
		}
	}
	return (lo + hi) / 2
}

// SelectInPlace returns the k-th smallest element (0-indexed) of x,
// partially reordering x. It uses median-of-three quickselect with a
// small-array insertion sort cutoff, giving expected O(n) time.
func SelectInPlace(x []float64, k int) float64 {
	if k < 0 || k >= len(x) {
		panic("robust: select index out of range")
	}
	lo, hi := 0, len(x)-1
	for {
		if hi-lo < 12 {
			insertionSort(x[lo : hi+1])
			return x[k]
		}
		p := partition(x, lo, hi)
		switch {
		case k < p:
			hi = p - 1
		case k > p:
			lo = p + 1
		default:
			return x[p]
		}
	}
}

func insertionSort(x []float64) {
	for i := 1; i < len(x); i++ {
		v := x[i]
		j := i - 1
		for j >= 0 && x[j] > v {
			x[j+1] = x[j]
			j--
		}
		x[j+1] = v
	}
}

// partition uses a median-of-three pivot and returns the final pivot
// index after Hoare-style partitioning around it.
func partition(x []float64, lo, hi int) int {
	mid := lo + (hi-lo)/2
	if x[mid] < x[lo] {
		x[mid], x[lo] = x[lo], x[mid]
	}
	if x[hi] < x[lo] {
		x[hi], x[lo] = x[lo], x[hi]
	}
	if x[hi] < x[mid] {
		x[hi], x[mid] = x[mid], x[hi]
	}
	pivot := x[mid]
	x[mid], x[hi-1] = x[hi-1], x[mid]
	i, j := lo, hi-1
	for {
		for i++; x[i] < pivot; i++ {
		}
		for j--; x[j] > pivot; j-- {
		}
		if i >= j {
			break
		}
		x[i], x[j] = x[j], x[i]
	}
	x[i], x[hi-1] = x[hi-1], x[i]
	return i
}

// MAD returns the median absolute deviation of x about its median,
// without the Gaussian consistency constant. Use MADN for the
// normal-consistent version.
func MAD(x []float64) float64 {
	m := Median(x)
	dev := make([]float64, len(x))
	for i, v := range x {
		dev[i] = math.Abs(v - m)
	}
	return MedianInPlace(dev)
}

// MADConsistency is the constant that makes MAD a consistent estimator
// of the standard deviation under a normal model (1/Φ⁻¹(3/4)).
const MADConsistency = 1.4826022185056018

// MADN returns the normal-consistent MAD: MAD(x) * 1.4826....
func MADN(x []float64) float64 { return MAD(x) * MADConsistency }

// MedianAndMAD returns both the median and the (raw) MAD in one pass
// over the sorted copies, which is cheaper than calling Median and MAD
// separately.
func MedianAndMAD(x []float64) (med, mad float64) {
	if len(x) == 0 {
		panic(ErrEmpty)
	}
	buf := make([]float64, len(x))
	copy(buf, x)
	med = MedianInPlace(buf)
	for i, v := range x {
		buf[i] = math.Abs(v - med)
	}
	return med, MedianInPlace(buf)
}

// Mean returns the arithmetic mean of x. It panics on empty input.
func Mean(x []float64) float64 {
	if len(x) == 0 {
		panic(ErrEmpty)
	}
	s := 0.0
	for _, v := range x {
		s += v
	}
	return s / float64(len(x))
}

// Variance returns the unbiased sample variance of x (n-1 denominator).
// It returns 0 for samples of size < 2.
func Variance(x []float64) float64 {
	n := len(x)
	if n < 2 {
		return 0
	}
	m := Mean(x)
	s := 0.0
	for _, v := range x {
		d := v - m
		s += d * d
	}
	return s / float64(n-1)
}

// BiweightMidvariance returns Tukey's biweight midvariance of x, a
// robust and efficient scale estimator (Wilcox 2017). Points further
// than nine (raw) MADs from the median receive zero weight. When the
// MAD is zero (over half the sample is identical) it falls back to the
// classical variance of the non-identical part, or 0.
//
// This is the estimator RobustPeriod uses for the per-level wavelet
// variance (Eq. 4 of the paper), where it is additionally scaled by the
// number of non-boundary coefficients; see wavelet.RobustVariance.
func BiweightMidvariance(x []float64) float64 {
	n := len(x)
	if n == 0 {
		panic(ErrEmpty)
	}
	med, mad := MedianAndMAD(x)
	if mad == 0 {
		return Variance(x)
	}
	num, den := 0.0, 0.0
	for _, v := range x {
		u := (v - med) / (9 * mad)
		if math.Abs(u) >= 1 {
			continue
		}
		u2 := u * u
		w := 1 - u2
		d := v - med
		num += d * d * w * w * w * w
		den += w * (1 - 5*u2)
	}
	if den == 0 {
		return 0
	}
	return float64(n) * num / (den * den)
}

// HuberLoss evaluates the Huber loss γ_ζ at r: quadratic inside [-ζ, ζ]
// and linear outside (Eq. 7 of the paper).
func HuberLoss(r, zeta float64) float64 {
	a := math.Abs(r)
	if a <= zeta {
		return 0.5 * r * r
	}
	return zeta*a - 0.5*zeta*zeta
}

// HuberPsi is the derivative of the Huber loss: r clipped to [-ζ, ζ].
func HuberPsi(r, zeta float64) float64 {
	if r > zeta {
		return zeta
	}
	if r < -zeta {
		return -zeta
	}
	return r
}

// HuberWeight is the IRLS weight ψ(r)/r for the Huber loss, with
// weight 1 at r = 0.
func HuberWeight(r, zeta float64) float64 {
	a := math.Abs(r)
	if a <= zeta {
		return 1
	}
	return zeta / a
}

// Clip returns sign(x)·min(|x|, c): the Ψ function the paper uses for
// coarse outlier removal after normalization (§3.2).
func Clip(x, c float64) float64 {
	if x > c {
		return c
	}
	if x < -c {
		return -c
	}
	return x
}

// Winsorize returns a copy of x with every value standardized by the
// median/MADN and clipped to [-c, c] — the preprocessing transform
// y' = Ψ((y−μ)/s) from §3.2 of the paper. If the MADN is zero the
// series is centred only (scale left at 1) so constant series survive.
func Winsorize(x []float64, c float64) []float64 {
	med, mad := MedianAndMAD(x)
	s := mad * MADConsistency
	if s == 0 {
		s = 1
	}
	out := make([]float64, len(x))
	for i, v := range x {
		out[i] = Clip((v-med)/s, c)
	}
	return out
}
