package robust

import (
	"math"
	"sort"
)

// TrimmedMean returns the mean of x after discarding the lowest and
// highest trim fraction of the sample (trim in [0, 0.5)). trim = 0 is
// the ordinary mean; trim → 0.5 approaches the median.
func TrimmedMean(x []float64, trim float64) float64 {
	n := len(x)
	if n == 0 {
		panic(ErrEmpty)
	}
	if trim < 0 {
		trim = 0
	}
	if trim >= 0.5 {
		return Median(x)
	}
	buf := append([]float64(nil), x...)
	sort.Float64s(buf)
	k := int(trim * float64(n))
	kept := buf[k : n-k]
	s := 0.0
	for _, v := range kept {
		s += v
	}
	return s / float64(len(kept))
}

// HodgesLehmann returns the Hodges–Lehmann location estimator: the
// median of all pairwise Walsh averages (x_i + x_j)/2 for i <= j. It
// combines high Gaussian efficiency (~96%) with a 29% breakdown point.
// The computation is O(n²) in memory and time; samples larger than
// maxHLSample are estimated from an evenly strided subsample.
func HodgesLehmann(x []float64) float64 {
	n := len(x)
	if n == 0 {
		panic(ErrEmpty)
	}
	const maxHLSample = 1024
	if n > maxHLSample {
		stride := (n + maxHLSample - 1) / maxHLSample
		sub := make([]float64, 0, maxHLSample)
		for i := 0; i < n; i += stride {
			sub = append(sub, x[i])
		}
		x = sub
		n = len(x)
	}
	walsh := make([]float64, 0, n*(n+1)/2)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			walsh = append(walsh, (x[i]+x[j])/2)
		}
	}
	return MedianInPlace(walsh)
}

// Sn returns Rousseeuw & Croux's Sn scale estimator:
//
//	Sn = c · med_i { med_j |x_i − x_j| }
//
// with consistency constant c = 1.1926 for the normal model. Unlike
// the MAD it needs no location estimate and stays 58% efficient. This
// implementation is the direct O(n²) one, subsampled above maxSnSample
// points like HodgesLehmann.
func Sn(x []float64) float64 {
	n := len(x)
	if n == 0 {
		panic(ErrEmpty)
	}
	if n == 1 {
		return 0
	}
	const maxSnSample = 1024
	if n > maxSnSample {
		stride := (n + maxSnSample - 1) / maxSnSample
		sub := make([]float64, 0, maxSnSample)
		for i := 0; i < n; i += stride {
			sub = append(sub, x[i])
		}
		x = sub
		n = len(x)
	}
	inner := make([]float64, n)
	buf := make([]float64, n-1)
	for i := 0; i < n; i++ {
		idx := 0
		for j := 0; j < n; j++ {
			if j == i {
				continue
			}
			buf[idx] = math.Abs(x[i] - x[j])
			idx++
		}
		inner[i] = MedianInPlace(buf[:idx])
	}
	return 1.1926 * MedianInPlace(inner)
}
