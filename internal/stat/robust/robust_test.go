package robust

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	return math.Abs(a-b) <= tol
}

func TestMedianSmall(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{[]float64{1}, 1},
		{[]float64{2, 1}, 1.5},
		{[]float64{3, 1, 2}, 2},
		{[]float64{4, 1, 3, 2}, 2.5},
		{[]float64{5, 5, 5, 5}, 5},
		{[]float64{-1, 0, 1}, 0},
		{[]float64{1e9, -1e9}, 0},
	}
	for _, c := range cases {
		if got := Median(c.in); !almostEq(got, c.want, 1e-12) {
			t.Errorf("Median(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestMedianDoesNotMutate(t *testing.T) {
	in := []float64{9, 3, 7, 1, 5}
	want := append([]float64(nil), in...)
	Median(in)
	for i := range in {
		if in[i] != want[i] {
			t.Fatalf("Median mutated its input: %v", in)
		}
	}
}

func TestMedianPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on empty input")
		}
	}()
	Median(nil)
}

func TestMedianMatchesSort(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(200)
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64() * 10
		}
		got := Median(x)
		s := append([]float64(nil), x...)
		sort.Float64s(s)
		var want float64
		if n%2 == 1 {
			want = s[n/2]
		} else {
			want = (s[n/2-1] + s[n/2]) / 2
		}
		if !almostEq(got, want, 1e-9) {
			t.Fatalf("trial %d: Median=%v want %v", trial, got, want)
		}
	}
}

func TestSelectMatchesSort(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(100)
		x := make([]float64, n)
		for i := range x {
			x[i] = float64(rng.Intn(20)) // many duplicates
		}
		s := append([]float64(nil), x...)
		sort.Float64s(s)
		k := rng.Intn(n)
		buf := append([]float64(nil), x...)
		if got := SelectInPlace(buf, k); got != s[k] {
			t.Fatalf("Select(x,%d)=%v want %v (x=%v)", k, got, s[k], x)
		}
	}
}

func TestSelectPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	SelectInPlace([]float64{1, 2}, 2)
}

func TestMAD(t *testing.T) {
	// x = {1,2,3,4,5}: median 3, |dev| = {2,1,0,1,2}, MAD = 1.
	if got := MAD([]float64{1, 2, 3, 4, 5}); !almostEq(got, 1, 1e-12) {
		t.Errorf("MAD = %v, want 1", got)
	}
	if got := MAD([]float64{7, 7, 7}); got != 0 {
		t.Errorf("MAD of constant = %v, want 0", got)
	}
}

func TestMADNConsistency(t *testing.T) {
	// For a large normal sample, MADN should approximate sigma.
	rng := rand.New(rand.NewSource(3))
	x := make([]float64, 200000)
	for i := range x {
		x[i] = rng.NormFloat64() * 2.5
	}
	if got := MADN(x); !almostEq(got, 2.5, 0.03) {
		t.Errorf("MADN = %v, want ~2.5", got)
	}
}

func TestMedianAndMADAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(60)
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		med, mad := MedianAndMAD(x)
		if !almostEq(med, Median(x), 1e-12) || !almostEq(mad, MAD(x), 1e-12) {
			t.Fatalf("MedianAndMAD disagrees with Median/MAD")
		}
	}
}

func TestMeanVariance(t *testing.T) {
	x := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(x); !almostEq(got, 5, 1e-12) {
		t.Errorf("Mean = %v, want 5", got)
	}
	if got := Variance(x); !almostEq(got, 32.0/7.0, 1e-12) {
		t.Errorf("Variance = %v, want %v", got, 32.0/7.0)
	}
	if Variance([]float64{1}) != 0 {
		t.Error("Variance of single point should be 0")
	}
}

func TestBiweightMidvarianceGaussian(t *testing.T) {
	// On clean Gaussian data the biweight midvariance estimates sigma^2
	// with high efficiency.
	rng := rand.New(rand.NewSource(5))
	x := make([]float64, 100000)
	for i := range x {
		x[i] = rng.NormFloat64() * 3
	}
	got := BiweightMidvariance(x)
	if !almostEq(got, 9, 0.25) {
		t.Errorf("BiweightMidvariance = %v, want ~9", got)
	}
}

func TestBiweightMidvarianceRobustToOutliers(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	x := make([]float64, 5000)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	clean := BiweightMidvariance(x)
	// Corrupt 5% with huge spikes: classical variance explodes, the
	// biweight estimate barely moves.
	dirty := append([]float64(nil), x...)
	for i := 0; i < len(dirty)/20; i++ {
		dirty[rng.Intn(len(dirty))] = 1000
	}
	got := BiweightMidvariance(dirty)
	if math.Abs(got-clean) > 0.2*clean {
		t.Errorf("biweight moved too much under outliers: clean=%v dirty=%v", clean, got)
	}
	if v := Variance(dirty); v < 100*clean {
		t.Errorf("sanity: classical variance should explode, got %v", v)
	}
}

func TestBiweightMidvarianceConstant(t *testing.T) {
	if got := BiweightMidvariance([]float64{4, 4, 4, 4}); got != 0 {
		t.Errorf("constant sample: got %v, want 0", got)
	}
}

func TestHuberLossPieces(t *testing.T) {
	zeta := 1.5
	if got := HuberLoss(1, zeta); !almostEq(got, 0.5, 1e-12) {
		t.Errorf("quadratic piece: %v", got)
	}
	if got := HuberLoss(-1, zeta); !almostEq(got, 0.5, 1e-12) {
		t.Errorf("quadratic piece (neg): %v", got)
	}
	if got := HuberLoss(3, zeta); !almostEq(got, 1.5*3-0.5*1.5*1.5, 1e-12) {
		t.Errorf("linear piece: %v", got)
	}
	// Continuity at the knot.
	if !almostEq(HuberLoss(zeta-1e-9, zeta), HuberLoss(zeta+1e-9, zeta), 1e-6) {
		t.Error("Huber loss discontinuous at zeta")
	}
}

func TestHuberPsiAndWeight(t *testing.T) {
	zeta := 2.0
	for _, r := range []float64{-5, -2, -1, 0, 0.5, 2, 10} {
		psi := HuberPsi(r, zeta)
		if math.Abs(psi) > zeta+1e-15 {
			t.Errorf("psi(%v) = %v exceeds zeta", r, psi)
		}
		w := HuberWeight(r, zeta)
		if r != 0 && !almostEq(w*r, psi, 1e-12) {
			t.Errorf("weight identity broken at r=%v: w*r=%v psi=%v", r, w*r, psi)
		}
		if w < 0 || w > 1 {
			t.Errorf("weight out of [0,1]: %v", w)
		}
	}
}

func TestClip(t *testing.T) {
	if Clip(5, 3) != 3 || Clip(-5, 3) != -3 || Clip(2, 3) != 2 {
		t.Error("Clip broken")
	}
}

func TestWinsorize(t *testing.T) {
	x := []float64{0, 1, 2, 3, 4, 1000}
	out := Winsorize(x, 3)
	if len(out) != len(x) {
		t.Fatal("length changed")
	}
	for _, v := range out {
		if math.Abs(v) > 3 {
			t.Errorf("value %v escaped clip", v)
		}
	}
	// The outlier must be clipped to exactly +3.
	if out[5] != 3 {
		t.Errorf("outlier clipped to %v, want 3", out[5])
	}
	// Constant series: scale falls back to 1, everything maps to 0.
	for _, v := range Winsorize([]float64{5, 5, 5}, 3) {
		if v != 0 {
			t.Errorf("constant series should winsorize to 0, got %v", v)
		}
	}
}

// Property: the median minimizes the L1 distance among candidate points
// in the sample.
func TestMedianMinimizesL1Property(t *testing.T) {
	f := func(raw []int8) bool {
		if len(raw) == 0 {
			return true
		}
		x := make([]float64, len(raw))
		for i, v := range raw {
			x[i] = float64(v)
		}
		m := Median(x)
		cost := func(c float64) float64 {
			s := 0.0
			for _, v := range x {
				s += math.Abs(v - c)
			}
			return s
		}
		cm := cost(m)
		for _, v := range x {
			if cost(v) < cm-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: Winsorize output is always bounded by c and is a monotone
// transform of the input ordering.
func TestWinsorizeBoundedProperty(t *testing.T) {
	f := func(raw []int16, cRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		c := 0.5 + float64(cRaw%50)/10
		x := make([]float64, len(raw))
		for i, v := range raw {
			x[i] = float64(v)
		}
		out := Winsorize(x, c)
		for i := range out {
			if math.Abs(out[i]) > c+1e-12 {
				return false
			}
			for j := range out {
				if x[i] < x[j] && out[i] > out[j]+1e-12 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: MAD is translation invariant and scale equivariant.
func TestMADEquivarianceProperty(t *testing.T) {
	f := func(raw []int8, shift int8, scaleRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		scale := 1 + float64(scaleRaw%9)
		x := make([]float64, len(raw))
		y := make([]float64, len(raw))
		for i, v := range raw {
			x[i] = float64(v)
			y[i] = scale*float64(v) + float64(shift)
		}
		return almostEq(MAD(y), scale*MAD(x), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func BenchmarkMedian(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	x := make([]float64, 4096)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Median(x)
	}
}

func BenchmarkBiweightMidvariance(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	x := make([]float64, 4096)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BiweightMidvariance(x)
	}
}
