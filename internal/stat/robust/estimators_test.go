package robust

import (
	"math"
	"math/rand"
	"testing"
)

func TestTrimmedMean(t *testing.T) {
	x := []float64{1, 2, 3, 4, 100}
	if got := TrimmedMean(x, 0); !almostEq(got, 22, 1e-12) {
		t.Errorf("trim 0: %v", got)
	}
	// 20% trim drops 1 and 100: mean of {2,3,4} = 3.
	if got := TrimmedMean(x, 0.2); !almostEq(got, 3, 1e-12) {
		t.Errorf("trim 0.2: %v", got)
	}
	// trim >= 0.5 collapses to the median.
	if got := TrimmedMean(x, 0.6); !almostEq(got, 3, 1e-12) {
		t.Errorf("trim 0.6: %v", got)
	}
	// Negative trim treated as 0.
	if got := TrimmedMean(x, -1); !almostEq(got, 22, 1e-12) {
		t.Errorf("trim -1: %v", got)
	}
}

func TestTrimmedMeanPanicsEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	TrimmedMean(nil, 0.1)
}

func TestHodgesLehmannGaussian(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := make([]float64, 800)
	for i := range x {
		x[i] = 5 + rng.NormFloat64()
	}
	if got := HodgesLehmann(x); math.Abs(got-5) > 0.15 {
		t.Errorf("HL = %v, want ~5", got)
	}
}

func TestHodgesLehmannRobust(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x := make([]float64, 500)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	for i := 0; i < 100; i++ { // ~18% contamination (collisions)
		x[rng.Intn(len(x))] = 1000
	}
	// HL's breakdown point is 29%: the estimate shifts by a fraction
	// of σ, not toward the 1000-unit outliers (the plain mean lands
	// near 180 here).
	if got := HodgesLehmann(x); math.Abs(got) > 1.5 {
		t.Errorf("HL under contamination: %v", got)
	}
	if m := Mean(x); m < 100 {
		t.Errorf("sanity: plain mean should be destroyed, got %v", m)
	}
}

func TestHodgesLehmannSubsampling(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x := make([]float64, 5000)
	for i := range x {
		x[i] = 3 + 0.5*rng.NormFloat64()
	}
	if got := HodgesLehmann(x); math.Abs(got-3) > 0.1 {
		t.Errorf("subsampled HL = %v", got)
	}
}

func TestSnConsistencyOnGaussian(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x := make([]float64, 1000)
	for i := range x {
		x[i] = 2 * rng.NormFloat64()
	}
	if got := Sn(x); math.Abs(got-2) > 0.25 {
		t.Errorf("Sn = %v, want ~2", got)
	}
}

func TestSnRobustness(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x := make([]float64, 600)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	clean := Sn(x)
	for i := 0; i < 120; i++ {
		x[rng.Intn(len(x))] = 500
	}
	dirty := Sn(x)
	if dirty > 2*clean {
		t.Errorf("Sn moved too much under 20%% contamination: %v vs %v", dirty, clean)
	}
}

func TestSnEdgeCases(t *testing.T) {
	if Sn([]float64{7}) != 0 {
		t.Error("single point should have zero scale")
	}
	if got := Sn([]float64{3, 3, 3, 3}); got != 0 {
		t.Errorf("constant sample: %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on empty")
		}
	}()
	Sn(nil)
}

func TestHodgesLehmannMatchesMedianOnSymmetric(t *testing.T) {
	// For a symmetric sample HL and the median agree closely.
	x := []float64{-3, -1, 0, 1, 3}
	if got := HodgesLehmann(x); !almostEq(got, 0, 1e-12) {
		t.Errorf("HL on symmetric sample: %v", got)
	}
}
