package baselines

import (
	"math"

	"robustperiod/internal/dsp/fft"
	"robustperiod/internal/stat/dist"
)

// Siegel implements Siegel's (1980) extension of Fisher's test to
// compound periodicities: instead of only the largest normalized
// periodogram ordinate, every ordinate exceeding λ·g_α is declared a
// periodic component (λ = 0.6 is Siegel's recommendation; Walden 1992
// provides the asymptotics). Only local maxima of the periodogram are
// reported, deduplicated over neighbouring bins.
type Siegel struct {
	// Alpha is the significance level; <= 0 means 0.05.
	Alpha float64
	// Lambda is Siegel's threshold fraction; <= 0 means 0.6.
	Lambda float64
}

// Name implements Detector.
func (Siegel) Name() string { return "Siegel" }

// Periods implements Detector.
func (d Siegel) Periods(x []float64) []int {
	n := len(x)
	if n < 16 {
		return nil
	}
	alpha := d.Alpha
	if alpha <= 0 {
		alpha = 0.05
	}
	lambda := d.Lambda
	if lambda <= 0 {
		lambda = 0.6
	}
	p := fft.Periodogram(center(x))
	half := p[1 : n/2+1]
	sum := 0.0
	maxOrd := 0.0
	for _, v := range half {
		sum += v
		if v > maxOrd {
			maxOrd = v
		}
	}
	if sum <= 0 {
		return nil
	}
	// Global significance gate: Siegel's procedure first establishes
	// that periodicity is present at all (his T_λ statistic reduces to
	// Fisher's test when only one ordinate is large); without it, the
	// per-ordinate threshold λ·g_α alone fires on pure noise roughly
	// once per series. We gate on the exact Fisher tail of the largest
	// ordinate.
	if dist.FisherGPValue(maxOrd/sum, len(half)) >= alpha {
		return nil
	}
	threshold := dist.SiegelThreshold(alpha, lambda, len(half)) * sum
	var out []int
	for i, v := range half {
		if v <= threshold {
			continue
		}
		// Only spectral local maxima count as distinct periods.
		if i > 0 && half[i-1] > v {
			continue
		}
		if i+1 < len(half) && half[i+1] >= v {
			continue
		}
		k := i + 1
		period := int(math.Round(float64(n) / float64(k)))
		if validPeriod(period, n) {
			out = append(out, period)
		}
	}
	return dedupSorted(out)
}
