package baselines

import "robustperiod/internal/core"

// RobustPeriod adapts the core pipeline to the Detector interface so
// the evaluation harness can drive it alongside the baselines. Opts
// are passed through; note the harness hands every detector an
// already-detrended series, so SkipPreprocess is forced — the paper
// applies the HP filter once, uniformly, for all algorithms.
type RobustPeriod struct {
	Opts core.Options
}

// Name implements Detector.
func (d RobustPeriod) Name() string {
	if d.Opts.NonRobust {
		return "NR-RobustPeriod"
	}
	return "RobustPeriod"
}

// Periods implements Detector.
func (d RobustPeriod) Periods(x []float64) []int {
	opts := d.Opts
	res, err := core.Detect(x, opts)
	if err != nil {
		return nil
	}
	return res.Periods
}
