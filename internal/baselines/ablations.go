package baselines

import (
	"math"

	"robustperiod/internal/detect"
	"robustperiod/internal/spectrum"
	"robustperiod/internal/stat/dist"
)

// HuberFisher is the paper's first ablation (§4.3.1): Fisher's test on
// the Huber-periodogram of the whole series — no MODWT decoupling, no
// ACF validation. It reports at most the single dominant period, which
// is why its recall tops out near 1/m on m-periodic data (Table 5).
type HuberFisher struct {
	// Alpha is the significance level; <= 0 means 0.01.
	Alpha float64
}

// Name implements Detector.
func (HuberFisher) Name() string { return "Huber-Fisher" }

// Periods implements Detector.
func (d HuberFisher) Periods(x []float64) []int {
	n := len(x)
	if n < 16 {
		return nil
	}
	alpha := d.Alpha
	if alpha <= 0 {
		alpha = 0.01
	}
	padded := make([]float64, 2*n)
	copy(padded, center(x))
	half, err := spectrum.HybridPeriodogram(padded, 1, n-1, spectrum.Options{Loss: spectrum.LossHuber, FitLength: n})
	if err != nil {
		return nil
	}
	_, pv, kHat := detect.FisherTest(half)
	if pv >= alpha || kHat == 0 {
		return nil
	}
	period := int(math.Round(float64(2*n) / float64(kHat)))
	if !validPeriod(period, n) {
		return nil
	}
	return []int{period}
}

// HuberSiegelACF is the paper's second ablation: Siegel's multi-period
// test on the Huber-periodogram generates candidates, each validated
// on an ACF hill as in AUTOPERIOD — MODWT decoupling is the missing
// ingredient.
type HuberSiegelACF struct {
	// Alpha is the significance level; <= 0 means 0.05.
	Alpha float64
	// Lambda is Siegel's fraction; <= 0 means 0.6.
	Lambda float64
}

// Name implements Detector.
func (HuberSiegelACF) Name() string { return "Huber-Siegel-ACF" }

// Periods implements Detector.
func (d HuberSiegelACF) Periods(x []float64) []int {
	n := len(x)
	if n < 16 {
		return nil
	}
	alpha := d.Alpha
	if alpha <= 0 {
		alpha = 0.05
	}
	lambda := d.Lambda
	if lambda <= 0 {
		lambda = 0.6
	}
	xc := center(x)
	padded := make([]float64, 2*n)
	copy(padded, xc)
	half, err := spectrum.HybridPeriodogram(padded, 1, n-1, spectrum.Options{Loss: spectrum.LossHuber, FitLength: n})
	if err != nil {
		return nil
	}
	ords := half[1:] // drop DC; indices are padded-spectrum k = i+1
	sum := 0.0
	for _, v := range ords {
		sum += v
	}
	if sum <= 0 {
		return nil
	}
	threshold := dist.SiegelThreshold(alpha, lambda, len(ords)) * sum

	// Robust ACF from the same periodogram for hill validation.
	acf, err := spectrum.ACFFromPeriodogram(spectrum.FullRange(half), n)
	if err != nil {
		return nil
	}
	var out []int
	for i, v := range ords {
		if v <= threshold {
			continue
		}
		if i > 0 && ords[i-1] > v {
			continue
		}
		if i+1 < len(ords) && ords[i+1] >= v {
			continue
		}
		k := i + 1
		hint := float64(2*n) / float64(k)
		if hint > float64(n)/2 || hint < 2 {
			continue
		}
		// Resolution interval in the padded spectrum.
		if refined, ok := validateOnACFHill(acf, hint, 2*n, k); ok && validPeriod(refined, n) {
			out = append(out, refined)
		}
	}
	return dedupSorted(out)
}
