package baselines

import (
	"math"
	"sort"

	"robustperiod/internal/dsp/fft"
	"robustperiod/internal/peaks"
)

// SAZED is the parameter-free ensemble of Toller, Santos & Kern
// (DMKD 2019). Its components are computed on the series and on the
// series' autocorrelation ("downsampling" the noise):
//
//	S — argmax of the periodogram            → N/k*
//	A — highest ACF peak lag
//	Z — mean distance between zero crossings (×… the full period is
//	    twice the half-wave length)
//
// giving up to six season-length estimates. Majority() takes the
// modal estimate; Optimal() scores each estimate by the ACF value at
// that lag and returns the best-supported one. Both detect a single
// period, as in the original method.
type SAZED struct {
	// Optimal switches from the majority vote to the ACF-scored
	// selection (SAZED_opt in the paper's tables).
	Optimal bool
}

// Name implements Detector.
func (d SAZED) Name() string {
	if d.Optimal {
		return "SAZED_opt"
	}
	return "SAZED_maj"
}

// Periods implements Detector.
func (d SAZED) Periods(x []float64) []int {
	n := len(x)
	if n < 16 {
		return nil
	}
	xc := center(x)
	acf := fft.Autocorrelation(xc)
	ests := make([]int, 0, 6)
	for _, base := range [][]float64{xc, acf[1:]} {
		if p := spectralEstimate(base); validPeriod(p, n) {
			ests = append(ests, p)
		}
		if p := acfPeakEstimate(base); validPeriod(p, n) {
			ests = append(ests, p)
		}
		if p := zeroCrossEstimate(base); validPeriod(p, n) {
			ests = append(ests, p)
		}
	}
	if len(ests) == 0 {
		return nil
	}
	var chosen int
	if d.Optimal {
		chosen = bestByACF(ests, acf)
	} else {
		chosen = majority(ests)
	}
	if !validPeriod(chosen, n) {
		return nil
	}
	return []int{chosen}
}

// spectralEstimate returns N/argmax of the periodogram.
func spectralEstimate(x []float64) int {
	n := len(x)
	if n < 8 {
		return 0
	}
	p := fft.Periodogram(x)
	best := 1
	for k := 2; k <= n/2; k++ {
		if p[k] > p[best] {
			best = k
		}
	}
	return int(math.Round(float64(n) / float64(best)))
}

// acfPeakEstimate returns the lag of the highest qualifying ACF peak.
func acfPeakEstimate(x []float64) int {
	if len(x) < 8 {
		return 0
	}
	acf := fft.Autocorrelation(x)
	idx := peaks.Find(acf[:len(acf)*3/4], peaks.Options{Height: 0.05, MinDistance: 2})
	best, bestV := 0, math.Inf(-1)
	for _, i := range idx {
		if i >= 2 && acf[i] > bestV {
			best, bestV = i, acf[i]
		}
	}
	return best
}

// zeroCrossEstimate doubles the mean distance between sign changes.
func zeroCrossEstimate(x []float64) int {
	var crossings []int
	for i := 1; i < len(x); i++ {
		if (x[i-1] < 0 && x[i] >= 0) || (x[i-1] > 0 && x[i] <= 0) {
			crossings = append(crossings, i)
		}
	}
	if len(crossings) < 2 {
		return 0
	}
	mean := float64(crossings[len(crossings)-1]-crossings[0]) / float64(len(crossings)-1)
	return int(math.Round(2 * mean))
}

// majority returns the modal estimate, grouping values within 5% of
// each other; ties break toward the smaller period.
func majority(ests []int) int {
	sort.Ints(ests)
	bestVal, bestCount := ests[0], 0
	for i, e := range ests {
		count := 0
		sum := 0
		for _, f := range ests {
			if math.Abs(float64(e-f)) <= 0.05*float64(e)+1 {
				count++
				sum += f
			}
		}
		if count > bestCount {
			bestCount = count
			bestVal = int(math.Round(float64(sum) / float64(count)))
			_ = i
		}
	}
	return bestVal
}

// bestByACF picks the estimate with the strongest periodicity
// contrast: a true season length p has high autocorrelation at lag p
// and low (often negative) autocorrelation at lag p/2, while smooth
// non-periodic lags score high at both. The contrast acf[p] − acf[p/2]
// separates them.
func bestByACF(ests []int, acf []float64) int {
	best, bestV := ests[0], math.Inf(-1)
	for _, e := range ests {
		if e >= len(acf) {
			continue
		}
		score := acf[e]
		if h := e / 2; h >= 1 {
			score -= acf[h]
		}
		if score > bestV {
			best, bestV = e, score
		}
	}
	return best
}
