package baselines

import (
	"math"
	"math/rand"
	"testing"
)

func wave(n int, periods []int, sigma, eta float64, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	x := make([]float64, n)
	for _, p := range periods {
		ph := rng.Float64() * 2 * math.Pi
		for i := range x {
			x[i] += math.Sin(2*math.Pi*float64(i)/float64(p) + ph)
		}
	}
	for i := range x {
		x[i] += sigma * rng.NormFloat64()
		if eta > 0 && rng.Float64() < eta {
			x[i] += (rng.Float64()*2 - 1) * 10
		}
	}
	return x
}

func near(p, want int, tol float64) bool {
	return math.Abs(float64(p-want)) <= tol*float64(want)+1
}

func hasNear(ps []int, want int, tol float64) bool {
	for _, p := range ps {
		if near(p, want, tol) {
			return true
		}
	}
	return false
}

func TestFindFrequencyCleanSinusoid(t *testing.T) {
	x := wave(1000, []int{50}, 0.1, 0, 1)
	ps := FindFrequency{}.Periods(x)
	if len(ps) != 1 || !near(ps[0], 50, 0.05) {
		t.Errorf("findFrequency = %v, want ~50", ps)
	}
}

func TestFindFrequencyFailsUnderOutliers(t *testing.T) {
	// The paper's Table 1 shows findFrequency collapsing on outliers;
	// verify it degrades (misses sometimes) while not crashing.
	misses := 0
	for tr := 0; tr < 10; tr++ {
		x := wave(1000, []int{100}, 2, 0.2, int64(10+tr))
		ps := FindFrequency{}.Periods(x)
		if len(ps) == 0 || !near(ps[0], 100, 0.02) {
			misses++
		}
	}
	if misses == 0 {
		t.Log("findFrequency unexpectedly survived severe outliers (acceptable)")
	}
}

func TestFindFrequencyWhiteNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x := make([]float64, 500)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	ps := FindFrequency{}.Periods(x)
	if len(ps) > 0 && ps[0] < 5 {
		t.Logf("noise gave period %v (tolerated)", ps)
	}
}

func TestFindFrequencyShortSeries(t *testing.T) {
	var ff FindFrequency
	if ps := ff.Periods(make([]float64, 8)); ps != nil {
		t.Errorf("short series should yield nil, got %v", ps)
	}
}

func TestSAZEDVariantsCleanSinusoid(t *testing.T) {
	x := wave(800, []int{40}, 0.2, 0, 3)
	for _, d := range []SAZED{{}, {Optimal: true}} {
		ps := d.Periods(x)
		if len(ps) != 1 || !near(ps[0], 40, 0.05) {
			t.Errorf("%s = %v, want ~40", d.Name(), ps)
		}
	}
}

func TestSAZEDNames(t *testing.T) {
	maj := SAZED{}
	opt := SAZED{Optimal: true}
	if maj.Name() != "SAZED_maj" || opt.Name() != "SAZED_opt" {
		t.Error("names wrong")
	}
}

func TestSiegelMultiPeriodClean(t *testing.T) {
	x := wave(1000, []int{20, 50, 100}, 0.2, 0.0, 4)
	ps := Siegel{}.Periods(x)
	for _, want := range []int{20, 50, 100} {
		if !hasNear(ps, want, 0.02) {
			t.Errorf("Siegel missed %d: %v", want, ps)
		}
	}
}

func TestSiegelWhiteNoiseFewFalsePositives(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	falses := 0
	for tr := 0; tr < 10; tr++ {
		x := make([]float64, 600)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		falses += len(Siegel{}.Periods(x))
	}
	if falses > 3 {
		t.Errorf("%d false periods over 10 noise series", falses)
	}
}

func TestAutoPeriodMultiPeriod(t *testing.T) {
	x := wave(1000, []int{20, 100}, 0.1, 0, 6)
	ps := AutoPeriod{Seed: 1}.Periods(x)
	for _, want := range []int{20, 100} {
		if !hasNear(ps, want, 0.03) {
			t.Errorf("AUTOPERIOD missed %d: %v", want, ps)
		}
	}
}

func TestAutoPeriodDeterministicWithSeed(t *testing.T) {
	x := wave(600, []int{30}, 0.3, 0.02, 7)
	a := AutoPeriod{Seed: 42}.Periods(x)
	b := AutoPeriod{Seed: 42}.Periods(x)
	if len(a) != len(b) {
		t.Fatalf("non-deterministic: %v vs %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic: %v vs %v", a, b)
		}
	}
}

func TestAutoPeriodWhiteNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	falses := 0
	for tr := 0; tr < 10; tr++ {
		x := make([]float64, 500)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		falses += len(AutoPeriod{Seed: int64(tr)}.Periods(x))
	}
	if falses > 4 {
		t.Errorf("%d false periods over 10 noise series", falses)
	}
}

func TestWaveletFisherSinglePeriod(t *testing.T) {
	x := wave(1024, []int{32}, 0.1, 0, 9)
	ps := WaveletFisher{}.Periods(x)
	if !hasNear(ps, 32, 0.1) {
		t.Errorf("Wavelet-Fisher = %v, want ~32", ps)
	}
}

func TestWaveletFisherShortSeries(t *testing.T) {
	var wf WaveletFisher
	if ps := wf.Periods(make([]float64, 16)); ps != nil {
		t.Errorf("want nil, got %v", ps)
	}
}

func TestHuberFisherSingleOutputOnly(t *testing.T) {
	x := wave(1000, []int{20, 50, 100}, 0.3, 0.05, 10)
	ps := HuberFisher{}.Periods(x)
	if len(ps) > 1 {
		t.Errorf("Huber-Fisher must output at most one period: %v", ps)
	}
	if len(ps) == 1 {
		found := false
		for _, want := range []int{20, 50, 100} {
			if near(ps[0], want, 0.05) {
				found = true
			}
		}
		if !found {
			t.Errorf("Huber-Fisher period %v matches no truth", ps)
		}
	}
}

func TestHuberSiegelACFFindsSomePeriods(t *testing.T) {
	x := wave(1000, []int{20, 100}, 0.2, 0.02, 11)
	ps := HuberSiegelACF{}.Periods(x)
	if len(ps) == 0 {
		t.Error("Huber-Siegel-ACF found nothing on a clean 2-periodic series")
	}
	for _, p := range ps {
		if p < 2 || p > 500 {
			t.Errorf("invalid period %d", p)
		}
	}
}

func TestACFMedCleanSinusoid(t *testing.T) {
	x := wave(800, []int{40}, 0.1, 0, 31)
	ps := ACFMed{}.Periods(x)
	if len(ps) != 1 || !near(ps[0], 40, 0.03) {
		t.Errorf("ACF-Med = %v, want ~40", ps)
	}
}

func TestACFMedFailsOnInterlacedPeriods(t *testing.T) {
	// The paper's §4.3.2 observation: with strong 20 and 100 components,
	// the vanilla ACF has no peak near 50 — ACF-Med cannot see it.
	hits := 0
	for tr := 0; tr < 5; tr++ {
		x := wave(1000, []int{20, 50, 100}, 0.1, 0, int64(32+tr))
		ps := ACFMed{}.Periods(x)
		if hasNear(ps, 50, 0.03) {
			hits++
		}
	}
	if hits > 1 {
		t.Errorf("ACF-Med unexpectedly found the masked period 50 in %d/5 trials", hits)
	}
}

func TestACFMedDegradedByOutliers(t *testing.T) {
	missClean, missDirty := 0, 0
	for tr := 0; tr < 8; tr++ {
		clean := wave(800, []int{40}, 0.3, 0, int64(40+tr))
		dirty := wave(800, []int{40}, 0.3, 0.15, int64(40+tr))
		if !hasNear(ACFMed{}.Periods(clean), 40, 0.03) {
			missClean++
		}
		if !hasNear(ACFMed{}.Periods(dirty), 40, 0.03) {
			missDirty++
		}
	}
	if missDirty < missClean {
		t.Errorf("outliers should not improve ACF-Med (%d vs %d misses)", missDirty, missClean)
	}
}

func TestLombScargleDetectorEvenSampling(t *testing.T) {
	x := wave(1000, []int{50}, 0.2, 0, 21)
	ps := LombScargle{}.Periods(x)
	if !hasNear(ps, 50, 0.04) {
		t.Errorf("L-S periods %v, want ~50", ps)
	}
}

func TestLombScargleDetectorUnevenSampling(t *testing.T) {
	// 50% of samples dropped: the times array carries the gaps.
	rng := rand.New(rand.NewSource(22))
	var ts, y []float64
	for i := 0; i < 1200; i++ {
		if rng.Float64() < 0.5 {
			continue
		}
		ts = append(ts, float64(i))
		y = append(y, math.Sin(2*math.Pi*float64(i)/60)+0.2*rng.NormFloat64())
	}
	ps := LombScargle{Times: ts}.Periods(y)
	if !hasNear(ps, 60, 0.04) {
		t.Errorf("uneven L-S periods %v, want ~60", ps)
	}
}

func TestLombScargleDetectorNoiseQuiet(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	falses := 0
	for tr := 0; tr < 10; tr++ {
		x := make([]float64, 500)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		falses += len(LombScargle{}.Periods(x))
	}
	if falses > 2 {
		t.Errorf("%d false periods on noise", falses)
	}
}

func TestLombScargleDetectorDegenerate(t *testing.T) {
	var d LombScargle
	if d.Periods(make([]float64, 8)) != nil {
		t.Error("short series should give nil")
	}
	mismatch := LombScargle{Times: []float64{1, 2}}
	if mismatch.Periods(make([]float64, 100)) != nil {
		t.Error("length mismatch should give nil")
	}
}

func TestRobustPeriodAdapter(t *testing.T) {
	x := wave(1000, []int{24, 168}, 0.2, 0.01, 12)
	d := RobustPeriod{}
	if d.Name() != "RobustPeriod" {
		t.Error("name")
	}
	ps := d.Periods(Preprocess(x))
	if !hasNear(ps, 24, 0.02) || !hasNear(ps, 168, 0.02) {
		t.Errorf("adapter periods = %v", ps)
	}
	nr := RobustPeriod{}
	nr.Opts.NonRobust = true
	if nr.Name() != "NR-RobustPeriod" {
		t.Error("NR name")
	}
}

func TestPreprocessRemovesTrend(t *testing.T) {
	n := 800
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Sin(2*math.Pi*float64(i)/40) + 0.05*float64(i)
	}
	det := Preprocess(x)
	// Mean of first and last quarter should now be comparable.
	q := n / 4
	var head, tail float64
	for i := 0; i < q; i++ {
		head += det[i]
		tail += det[n-1-i]
	}
	if math.Abs(head-tail)/float64(q) > 0.5 {
		t.Errorf("trend not removed: head %v tail %v", head/float64(q), tail/float64(q))
	}
}

func TestDedupSorted(t *testing.T) {
	got := dedupSorted([]int{100, 101, 50, 99, 20, 20, 300})
	want := []int{20, 50, 99, 300}
	if len(got) != len(want) {
		t.Fatalf("got %v want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v want %v", got, want)
		}
	}
	if dedupSorted(nil) != nil {
		t.Error("nil in, nil out")
	}
}

func TestValidPeriod(t *testing.T) {
	if validPeriod(1, 100) || validPeriod(51, 100) || !validPeriod(50, 100) || !validPeriod(2, 100) {
		t.Error("validPeriod boundaries wrong")
	}
}

func TestAllDetectorsImplementInterface(t *testing.T) {
	ds := []Detector{
		FindFrequency{}, SAZED{}, SAZED{Optimal: true}, Siegel{},
		AutoPeriod{}, WaveletFisher{}, HuberFisher{}, HuberSiegelACF{},
		RobustPeriod{}, ACFMed{}, LombScargle{},
	}
	x := wave(256, []int{16}, 0.1, 0, 13)
	for _, d := range ds {
		if d.Name() == "" {
			t.Error("empty name")
		}
		ps := d.Periods(x) // must not panic
		for _, p := range ps {
			if p < 2 || p > 128 {
				t.Errorf("%s returned invalid period %d", d.Name(), p)
			}
		}
	}
}

func BenchmarkSiegel(b *testing.B) {
	x := wave(1000, []int{20, 50, 100}, 0.3, 0.01, 14)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Siegel{}.Periods(x)
	}
}

func BenchmarkAutoPeriod(b *testing.B) {
	x := wave(1000, []int{20, 50, 100}, 0.3, 0.01, 15)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		AutoPeriod{Seed: 1}.Periods(x)
	}
}

func BenchmarkWaveletFisher(b *testing.B) {
	x := wave(1000, []int{20, 50, 100}, 0.3, 0.01, 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		WaveletFisher{}.Periods(x)
	}
}
