package baselines

import (
	"math"
	"math/rand"
	"sort"

	"robustperiod/internal/dsp/fft"
)

// AutoPeriod implements AUTOPERIOD (Vlachos, Yu & Castelli, SDM 2005):
// periodogram "period hints" above a permutation-derived power
// threshold are validated — and refined — on the autocorrelation
// function, accepting a hint only if it lies on an ACF hill (a local
// maximum of the ACF inside the hint's spectral resolution interval).
type AutoPeriod struct {
	// Permutations sets how many random shuffles build the power
	// threshold; <= 0 means 40.
	Permutations int
	// Quantile picks the threshold among the per-permutation maximum
	// powers; <= 0 means 0.95.
	Quantile float64
	// Seed makes the permutation threshold reproducible.
	Seed int64
}

// Name implements Detector.
func (AutoPeriod) Name() string { return "AUTOPERIOD" }

// Periods implements Detector.
func (d AutoPeriod) Periods(x []float64) []int {
	n := len(x)
	if n < 16 {
		return nil
	}
	perms := d.Permutations
	if perms <= 0 {
		perms = 40
	}
	q := d.Quantile
	if q <= 0 {
		q = 0.95
	}
	xc := center(x)
	p := fft.Periodogram(xc)
	half := p[1 : n/2+1]

	threshold := permutationThreshold(xc, perms, q, d.Seed)
	acf := fft.Autocorrelation(xc)

	var out []int
	for i, v := range half {
		if v <= threshold {
			continue
		}
		k := i + 1
		hint := float64(n) / float64(k)
		if refined, ok := validateOnACFHill(acf, hint, n, k); ok {
			out = append(out, refined)
		}
	}
	out = filterValid(out, n)
	return dedupSorted(out)
}

// permutationThreshold shuffles the series repeatedly and returns the
// q-quantile of the maximum periodogram power across shuffles, the
// AUTOPERIOD criterion for "this power could not arise from the same
// marginal distribution without temporal structure".
func permutationThreshold(x []float64, perms int, q float64, seed int64) float64 {
	rng := rand.New(rand.NewSource(seed + 12345))
	n := len(x)
	buf := append([]float64(nil), x...)
	maxima := make([]float64, perms)
	for it := 0; it < perms; it++ {
		rng.Shuffle(n, func(a, b int) { buf[a], buf[b] = buf[b], buf[a] })
		p := fft.Periodogram(buf)
		m := 0.0
		for k := 1; k <= n/2; k++ {
			if p[k] > m {
				m = p[k]
			}
		}
		maxima[it] = m
	}
	sort.Float64s(maxima)
	idx := int(q * float64(perms))
	if idx >= perms {
		idx = perms - 1
	}
	return maxima[idx]
}

// validateOnACFHill checks whether the period hint sits on a hill of
// the ACF and, if so, hill-climbs to the nearest local maximum inside
// the hint's resolution interval [n/(k+1), n/(k−1)].
func validateOnACFHill(acf []float64, hint float64, n, k int) (int, bool) {
	// Widen the resolution interval by two lags on each side: ACF
	// peaks of interacting components can sit one or two lags off the
	// spectral hint, and a peak on the exact interval edge must not be
	// rejected as a "valley wall".
	lo := int(math.Floor(float64(n)/float64(k+1))) - 2
	hi := n - 1
	if k > 1 {
		hi = int(math.Ceil(float64(n)/float64(k-1))) + 2
	}
	if hi >= len(acf) {
		hi = len(acf) - 1
	}
	if lo < 2 {
		lo = 2
	}
	if lo >= hi {
		return 0, false
	}
	// Start from the hint and climb to a local maximum within [lo,hi].
	cur := int(math.Round(hint))
	if cur < lo {
		cur = lo
	}
	if cur > hi {
		cur = hi
	}
	for {
		moved := false
		if cur+1 <= hi && acf[cur+1] > acf[cur] {
			cur++
			moved = true
		} else if cur-1 >= lo && acf[cur-1] > acf[cur] {
			cur--
			moved = true
		}
		if !moved {
			break
		}
	}
	// Hill test: a genuine local maximum strictly inside the interval
	// with positive correlation. Interval-boundary maxima mean the ACF
	// is monotone here — a valley wall, not a hill.
	if cur <= lo || cur >= hi {
		return 0, false
	}
	if acf[cur] <= 0 {
		return 0, false
	}
	if acf[cur] < acf[cur-1] || acf[cur] < acf[cur+1] {
		return 0, false
	}
	return cur, true
}

func filterValid(ps []int, n int) []int {
	out := ps[:0]
	for _, p := range ps {
		if validPeriod(p, n) {
			out = append(out, p)
		}
	}
	return out
}
