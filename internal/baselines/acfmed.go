package baselines

import (
	"robustperiod/internal/dsp/fft"
	"robustperiod/internal/peaks"
)

// ACFMed is the pure time-domain baseline the paper describes as the
// second fundamental method class ("ACF can identify dominant period
// by finding the peak locations of ACF and averaging the time
// differences between them"): qualifying peaks of the classical
// autocorrelation function are summarized by their median spacing.
// It detects a single period and inherits the classical ACF's
// weaknesses — outliers, and interlaced components masking each
// other's peaks — which is exactly the foil the robust pipeline is
// measured against.
type ACFMed struct {
	// Height is the minimum peak height; <= 0 means 0.3.
	Height float64
}

// Name implements Detector.
func (ACFMed) Name() string { return "ACF-Med" }

// Periods implements Detector.
func (d ACFMed) Periods(x []float64) []int {
	n := len(x)
	if n < 16 {
		return nil
	}
	height := d.Height
	if height <= 0 {
		height = 0.3
	}
	acf := fft.Autocorrelation(center(x))
	idx := peaks.Find(acf[:3*n/4], peaks.Options{Height: height, MinDistance: 2})
	for len(idx) > 0 && idx[0] < 2 {
		idx = idx[1:]
	}
	if len(idx) == 0 {
		return nil
	}
	var period int
	if len(idx) == 1 {
		period = idx[0]
	} else {
		period = peaks.MedianDistance(idx)
	}
	if !validPeriod(period, n) {
		return nil
	}
	return []int{period}
}
