package baselines

import (
	"math"

	"robustperiod/internal/ar"
)

// FindFrequency reproduces forecast::findfrequency: fit an AR model by
// AIC, locate the spectral density maximum, and report round(1/f*) as
// the period. It returns no period when the maximum sits at the lowest
// frequency (trend residue) or implies fewer than two observed cycles.
type FindFrequency struct {
	// MaxOrder caps the AR order search; <= 0 uses 10·log10(n).
	MaxOrder int
	// Method is "yw" (default) or "burg".
	Method string
}

// Name implements Detector.
func (FindFrequency) Name() string { return "findFrequency" }

// Periods implements Detector.
func (d FindFrequency) Periods(x []float64) []int {
	n := len(x)
	if n < 16 {
		return nil
	}
	m, err := ar.FitAIC(center(x), d.MaxOrder, d.Method)
	if err != nil {
		return nil
	}
	p := m.DominantPeriod(2048)
	if p <= 0 || math.IsInf(p, 0) {
		return nil
	}
	period := int(math.Round(p))
	if !validPeriod(period, n) {
		return nil
	}
	return []int{period}
}
