package baselines

import (
	"math"

	"robustperiod/internal/spectrum"
)

// LombScargle detects periods from the Lomb–Scargle periodogram, the
// astronomy-standard estimator for unevenly sampled or gap-ridden
// series (the paper cites the astronomy period-finding literature in
// its related work). Ordinates follow an Exp(1) null for white noise,
// so a Bonferroni-corrected exponential threshold −ln(α/M) declares
// significance; every significant spectral local maximum maps to a
// period. For an evenly sampled series pass nil times.
type LombScargle struct {
	// Alpha is the family-wise significance level; <= 0 means 0.01.
	Alpha float64
	// Times are the sample instants; nil means 0..n−1 (even sampling).
	Times []float64
	// Oversample controls grid density; <= 0 means 4.
	Oversample float64
}

// Name implements Detector.
func (LombScargle) Name() string { return "Lomb-Scargle" }

// Periods implements Detector.
func (d LombScargle) Periods(x []float64) []int {
	n := len(x)
	if n < 16 {
		return nil
	}
	alpha := d.Alpha
	if alpha <= 0 {
		alpha = 0.01
	}
	ts := d.Times
	if ts == nil {
		ts = make([]float64, n)
		for i := range ts {
			ts[i] = float64(i)
		}
	}
	if len(ts) != n {
		return nil
	}
	freqs := spectrum.LombScargleFrequencyGrid(ts, d.Oversample)
	if len(freqs) == 0 {
		return nil
	}
	p, err := spectrum.LombScargle(ts, center(x), freqs)
	if err != nil {
		return nil
	}
	threshold := -math.Log(alpha / float64(len(freqs)))
	span := ts[len(ts)-1] - ts[0]
	var out []int
	for i := 1; i+1 < len(p); i++ {
		if p[i] <= threshold || p[i] < p[i-1] || p[i] < p[i+1] {
			continue
		}
		period := int(math.Round(1 / freqs[i]))
		// Demand at least two observed cycles over the time span.
		if period >= 2 && float64(period) <= span/2 {
			out = append(out, period)
		}
	}
	return dedupSorted(out)
}
