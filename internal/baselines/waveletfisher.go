package baselines

import (
	"math"

	"robustperiod/internal/detect"
	"robustperiod/internal/dsp/fft"
	"robustperiod/internal/wavelet"
)

// WaveletFisher implements the DWT + Fisher's test approach of
// Almasri (2011): the series is decomposed with a decimated Daubechies
// DWT; Fisher's g-test runs on the periodogram of each level's detail
// coefficients; a significant level-j detection at level frequency k
// maps back to an original-scale period 2^j · N_j / k.
type WaveletFisher struct {
	// Alpha is the per-level significance; <= 0 means 0.01.
	Alpha float64
	// Wavelet selects the filter; 0 means Daub8.
	Wavelet wavelet.Kind
	// MaxLevels caps the decomposition depth; <= 0 auto-selects.
	MaxLevels int
}

// Name implements Detector.
func (WaveletFisher) Name() string { return "Wavelet-Fisher" }

// Periods implements Detector.
func (d WaveletFisher) Periods(x []float64) []int {
	n := len(x)
	if n < 32 {
		return nil
	}
	alpha := d.Alpha
	if alpha <= 0 {
		alpha = 0.01
	}
	kind := d.Wavelet
	if kind == 0 {
		kind = wavelet.Daub8
	}
	f, err := wavelet.NewFilter(kind)
	if err != nil {
		return nil
	}
	levels := d.MaxLevels
	if levels <= 0 {
		// Keep at least 16 coefficients at the deepest level.
		levels = 1
		for n>>(uint(levels)+1) >= 16 {
			levels++
		}
	}
	dw, err := wavelet.DWTransform(center(x), f, levels)
	if err != nil {
		return nil
	}
	var out []int
	for j := 1; j <= levels; j++ {
		w := dw.W[j-1]
		if len(w) < 8 {
			continue
		}
		p := fft.Periodogram(w)
		half := p[1 : len(w)/2+1]
		g, pv, kIdx := fisherOnOrdinates(half)
		_ = g
		if pv >= alpha || kIdx == 0 {
			continue
		}
		levelPeriod := float64(len(w)) / float64(kIdx)
		period := int(math.Round(levelPeriod * float64(int(1)<<uint(j))))
		if validPeriod(period, n) {
			out = append(out, period)
		}
	}
	return dedupSorted(out)
}

// fisherOnOrdinates runs Fisher's test on periodogram ordinates that
// already exclude DC; it returns the 1-based argmax index.
func fisherOnOrdinates(half []float64) (g, pv float64, kIdx int) {
	padded := make([]float64, len(half)+1)
	copy(padded[1:], half)
	return detect.FisherTest(padded)
}
