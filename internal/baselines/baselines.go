// Package baselines implements every comparison algorithm of the
// paper's evaluation (§4.1.1) plus the ablation variants of §4.3.1:
//
//   - findFrequency — AR-spectral-density period estimate (Hyndman's
//     forecast::findfrequency)
//   - SAZED (majority and optimal ensembles) — Toller et al. 2019
//   - Siegel — Fisher's test extended to compound periodicities
//   - AUTOPERIOD — periodogram candidates validated on ACF hills
//     (Vlachos et al. 2005)
//   - Wavelet-Fisher — DWT levels + Fisher's test (Almasri 2011)
//   - Huber-Fisher and Huber-Siegel-ACF — the paper's ablations
//
// All detectors consume a series that has already been detrended (the
// paper applies the HP filter uniformly "for a fair comparison"); use
// Preprocess to replicate that step.
package baselines

import (
	"sort"

	"robustperiod/internal/filter/hp"
	"robustperiod/internal/stat/robust"
)

// Detector is the common interface the evaluation harness drives.
type Detector interface {
	// Name identifies the algorithm in tables.
	Name() string
	// Periods returns the detected period lengths, ascending. Single-
	// period methods return at most one element.
	Periods(x []float64) []int
}

// Preprocess applies the shared HP detrending used for every
// algorithm in the paper's comparison, with the same automatic λ as
// the RobustPeriod pipeline.
func Preprocess(y []float64) []float64 {
	det, _ := hp.Detrend(y, hp.LambdaForCutoff(float64(len(y))/2))
	return det
}

// validPeriod reports whether p can be observed at least twice in a
// series of length n.
func validPeriod(p, n int) bool { return p >= 2 && p <= n/2 }

// dedupSorted merges a set of periods, collapsing near-duplicates
// (within one sample or 3%) and returning them ascending.
func dedupSorted(ps []int) []int {
	if len(ps) == 0 {
		return nil
	}
	sort.Ints(ps)
	out := ps[:1]
	for _, p := range ps[1:] {
		last := out[len(out)-1]
		if p-last <= 1 || float64(p-last) <= 0.03*float64(last) {
			continue
		}
		out = append(out, p)
	}
	return append([]int(nil), out...)
}

// center returns x minus its mean.
func center(x []float64) []float64 {
	if len(x) == 0 {
		return nil
	}
	m := robust.Mean(x)
	out := make([]float64, len(x))
	for i, v := range x {
		out[i] = v - m
	}
	return out
}
