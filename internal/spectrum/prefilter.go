package spectrum

// The vanilla-periodogram prefilter: a certificate that lets the
// hybrid periodogram skip the exact per-frequency M-regression for
// frequencies that provably cannot pass Fisher's g-test, substituting
// a cheap FFT-derived ordinate instead.
//
// Setup. The detect pipeline solves Eq. 6 on a zero-padded series of
// length N = 2m with the regression fitted on the first m samples, so
// the design columns φ_t = (cos 2πkt/N, sin 2πkt/N) over t < m have an
// exactly orthogonal Gram: Σφ_tφ_tᵀ = (m/2)·I for every integer
// 1 ≤ k < N/2 (the angle 2πk/N = πk/m sweeps full cycles that cancel).
// The Huber loss L(β) = Σ_t ρ_ζ(φ_tᵀβ − x_t) then has:
//
//   gradient at zero   ∇L(0) = −Σ ψ_ζ(x_t)·φ_t, whose norm g_k is
//     exactly √(N·C_k) where C_k is the vanilla periodogram ordinate
//     of the ζ-clipped (winsorized) series, zero-padded like x — one
//     FFT yields g_k for every frequency at once;
//   smoothness          ψ_ζ is 1-Lipschitz, so ∇L is (m/2)-Lipschitz
//     (the Gram's largest eigenvalue), giving the lower bound
//     ‖β̂‖ ≥ g_k/(m/2) and hence P^M_k ≥ C_k: the cheap ordinate
//     never overstates the exact one;
//   strong convexity    on the ball ‖β‖ ≤ ρ, every sample with
//     |x_t| ≤ ζ − ρ keeps its residual inside the quadratic region,
//     so L is μ-strongly convex there with
//     μ(ρ) = m/2 − #{t < m : |x_t| > ζ − ρ}, and whenever
//     g_k < ρ·μ(ρ) the global minimizer lies inside the ball with
//     ‖β̂‖ ≤ g_k/μ(ρ), giving the upper bound
//     P^M_k ≤ B_k = C_k · (m/(2μ(ρ)))².
//
// Fisher's test accepts the argmax k̂ only when P[k̂]/ΣP[k] exceeds the
// critical value g_crit(α, N/2). The sum is lower-bounded without any
// exact solve: out-of-band ordinates are the classical ones verbatim,
// and in-band ordinates are at least C_k. So any frequency with
// B_k < g_crit · S_lower is certified: its exact ordinate could never
// pass the test, and the engine substitutes C_k (≤ B_k, and ≤ the
// exact ordinate) instead of running the solver. On the noise floor —
// the vast majority of bins — that removes the M-regression entirely.
//
// The certificate needs the exact Gram identity, so the prefilter arms
// only for the padded layout 2·FitLength == N, and only for the Huber
// loss (LAD has no quadratic region to make μ positive).

import "robustperiod/internal/dsp/fft"

// prefilterResult carries the per-frequency verdicts for one band.
type prefilterResult struct {
	skip  []bool    // indexed k-kLo: certified below the Fisher floor
	cheap []float64 // clipped-series vanilla ordinate C_k, same index
	skips int
}

// ballFractions is the grid of trust-ball radii, as fractions of ζ,
// over which the upper bound is minimized. Small balls keep μ large
// (few samples leave the quadratic region) but only certify small
// gradients; the first radius that contains g_k/μ wins.
var ballFractions = [...]float64{1.0 / 32, 1.0 / 16, 1.0 / 8, 1.0 / 4, 1.0 / 2}

// buildPrefilter computes the skip certificate for [kLo, kHi], or nil
// when the prefilter cannot arm (wrong loss, no alpha, not the padded
// 2m == N layout). classical is the half-range classical periodogram
// of x; robustNyq reports whether the caller will replace the Nyquist
// ordinate (its classical value then may not lower-bound the final
// array, so it is excluded from S_lower). opts must carry defaults.
func buildPrefilter(x []float64, kLo, kHi int, opts Options, classical []float64, robustNyq bool, plan *trigPlan) *prefilterResult {
	n := len(x)
	m := opts.FitLength
	if opts.NoPrefilter || opts.Loss != LossHuber || 2*m != n {
		return nil
	}
	// A narrow band cannot repay the clipped-series FFT the certificate
	// costs; solve it exactly.
	if kHi-kLo+1 < solveChunk {
		return nil
	}
	alpha := opts.PrefilterAlpha
	if !(alpha > 0 && alpha < 1) {
		return nil
	}
	zeta := opts.Zeta

	// Clipped-series vanilla periodogram: C_k = g_k²/N for all k.
	clipped := make([]float64, n)
	for t := 0; t < m; t++ {
		v := x[t]
		if v > zeta {
			v = zeta
		} else if v < -zeta {
			v = -zeta
		}
		clipped[t] = v
	}
	pClip := fft.Periodogram(clipped)

	// μ(ρ) for each ball radius: one pass over the fit samples.
	var mu [len(ballFractions)]float64
	for _, v := range x[:m] {
		if v < 0 {
			v = -v
		}
		for i, f := range ballFractions {
			if v > zeta*(1-f) {
				mu[i]++
			}
		}
	}
	anyBall := false
	for i := range mu {
		mu[i] = float64(m)/2 - mu[i]
		if mu[i] > 0 {
			anyBall = true
		}
	}
	if !anyBall {
		return nil
	}

	// S_lower: out-of-band classical ordinates are exact; in-band the
	// exact ordinate is at least C_k (the smoothness bound above). DC
	// never enters Fisher's sum; the Nyquist bin is dropped when the
	// caller is about to robustify it.
	nyq := len(classical) - 1
	sLower := 0.0
	for k := 1; k <= nyq; k++ {
		switch {
		case k >= kLo && k <= kHi:
			sLower += pClip[k]
		case k == nyq && robustNyq:
			// excluded: lower-bounded by zero
		default:
			sLower += classical[k]
		}
	}
	if !(sLower > 0) {
		return nil
	}
	floor := plan.fisherCritical(alpha) * sLower

	pre := &prefilterResult{
		skip:  make([]bool, kHi-kLo+1),
		cheap: make([]float64, kHi-kLo+1),
	}
	halfM := float64(m) / 2
	for k := kLo; k <= kHi; k++ {
		ck := pClip[k]
		pre.cheap[k-kLo] = ck
		// Smallest ball that certifies this gradient gives the largest
		// μ and the tightest bound B_k.
		gk := float64(n) * ck // g_k², compared against (ρ·μ)²
		for i, f := range ballFractions {
			if mu[i] <= 0 {
				continue
			}
			rho := zeta * f
			if gk < rho*rho*mu[i]*mu[i] {
				q := halfM / mu[i]
				if ck*q*q < floor {
					pre.skip[k-kLo] = true
					pre.skips++
				}
				break
			}
		}
	}
	if pre.skips == 0 {
		return nil
	}
	return pre
}
