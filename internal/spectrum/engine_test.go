package spectrum

import (
	"context"
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"

	"robustperiod/internal/stat/dist"
)

// paddedSeries builds a detect-layout input: n real samples (sinusoids
// + noise + sparse outliers), zero-padded to 2n after centring, the
// way detect.Single feeds the hybrid periodogram.
func paddedSeries(n int, periods []int, outlierFrac, noise float64, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	x := make([]float64, n)
	for t := 0; t < n; t++ {
		for _, p := range periods {
			x[t] += math.Sin(2 * math.Pi * float64(t) / float64(p))
		}
		x[t] += noise * rng.NormFloat64()
	}
	for t := 0; t < n; t++ {
		if rng.Float64() < outlierFrac {
			x[t] += (rng.Float64()*16 - 8)
		}
	}
	mean := 0.0
	for _, v := range x {
		mean += v
	}
	mean /= float64(n)
	padded := make([]float64, 2*n)
	for t := 0; t < n; t++ {
		padded[t] = x[t] - mean
	}
	return padded
}

// TestPrefilterNeverSkipsFisherPassable is the safety property of the
// prefilter certificate: no frequency it skips could have passed
// Fisher's g-test had it been solved exactly. Exercised over an
// adversarial mix of clean, noisy, outlier-ridden and multi-periodic
// series.
func TestPrefilterNeverSkipsFisherPassable(t *testing.T) {
	const alpha = 0.05 // looser than detect's default: a lower floor is a stricter property
	cases := []struct {
		periods     []int
		outlierFrac float64
		noise       float64
	}{
		{nil, 0, 1},                  // pure noise
		{[]int{32}, 0, 0.2},          // one strong tone
		{[]int{32}, 0.2, 0.5},        // tone + heavy outliers
		{[]int{16, 40, 100}, 0.1, 1}, // multi-periodic + outliers
		{nil, 0.3, 0.1},              // outliers dominating a quiet series
	}
	for ci, tc := range cases {
		for seed := int64(0); seed < 6; seed++ {
			n := 256
			padded := paddedSeries(n, tc.periods, tc.outlierFrac, tc.noise, 1000*int64(ci)+seed)
			kHi := len(padded)/2 - 1
			opts := Options{Loss: LossHuber, FitLength: n, PrefilterAlpha: alpha}.withDefaults(padded)
			classical := Periodogram(padded)
			pre := buildPrefilter(padded, 1, kHi, opts, classical, true, getPlan(len(padded), n))
			if pre == nil {
				continue // nothing skipped; trivially safe
			}
			exactOpts := opts
			exactOpts.NoPrefilter = true
			half, err := HybridPeriodogram(padded, 1, kHi, exactOpts)
			if err != nil {
				t.Fatalf("case %d seed %d: exact hybrid: %v", ci, seed, err)
			}
			sum := 0.0
			for _, v := range half[1:] {
				sum += v
			}
			gcrit := dist.FisherGCritical(alpha, len(half)-1)
			for k := 1; k <= kHi; k++ {
				if !pre.skip[k-1] {
					continue
				}
				if half[k] >= gcrit*sum {
					t.Errorf("case %d seed %d: skipped k=%d would pass Fisher: ordinate %g >= floor %g",
						ci, seed, k, half[k], gcrit*sum)
				}
				if pre.cheap[k-1] > half[k]*(1+1e-9) {
					t.Errorf("case %d seed %d: cheap ordinate %g above exact %g at k=%d",
						ci, seed, pre.cheap[k-1], half[k], k)
				}
			}
		}
	}
}

// TestPrefilterPreservesFisherVerdict: the full hybrid array with the
// prefilter armed must yield the same Fisher argmax and the same
// accept/reject verdict as the exact reference path.
func TestPrefilterPreservesFisherVerdict(t *testing.T) {
	const alpha = 0.01
	for seed := int64(0); seed < 8; seed++ {
		n := 500
		padded := paddedSeries(n, []int{50}, 0.1, 0.5, 42+seed)
		kHi := len(padded)/2 - 1
		opts := Options{Loss: LossHuber, FitLength: n, PrefilterAlpha: alpha}

		fast, err := HybridPeriodogram(padded, 1, kHi, opts)
		if err != nil {
			t.Fatalf("seed %d: fast: %v", seed, err)
		}
		exactOpts := opts
		exactOpts.NoPrefilter = true
		exactOpts.NoWarmStart = true
		exact, err := HybridPeriodogram(padded, 1, kHi, exactOpts)
		if err != nil {
			t.Fatalf("seed %d: exact: %v", seed, err)
		}

		argmax := func(p []float64) (int, float64, float64) {
			best, sum := 1, 0.0
			for k := 1; k < len(p); k++ {
				sum += p[k]
				if p[k] > p[best] {
					best = k
				}
			}
			return best, p[best] / sum, sum
		}
		kF, gF, _ := argmax(fast)
		kE, gE, _ := argmax(exact)
		gcrit := dist.FisherGCritical(alpha, len(fast)-1)
		if kF != kE {
			t.Errorf("seed %d: argmax moved: fast k=%d exact k=%d", seed, kF, kE)
		}
		if (gF > gcrit) != (gE > gcrit) {
			t.Errorf("seed %d: Fisher verdict flipped: fast g=%g exact g=%g crit=%g", seed, gF, gE, gcrit)
		}
	}
}

// TestWarmStartMatchesCold: warm-started solves converge to the same
// ordinates as cold OLS-started ones (the warm iterate is only taken
// when it already has lower loss, so the optimum is unchanged).
func TestWarmStartMatchesCold(t *testing.T) {
	n := 400
	padded := paddedSeries(n, []int{40}, 0.15, 0.3, 7)
	opts := Options{Loss: LossHuber, FitLength: n}
	warm, err := MPeriodogram(padded, 1, len(padded)/2-1, opts)
	if err != nil {
		t.Fatal(err)
	}
	coldOpts := opts
	coldOpts.NoWarmStart = true
	cold, err := MPeriodogram(padded, 1, len(padded)/2-1, coldOpts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range warm {
		diff := math.Abs(warm[i] - cold[i])
		if diff > 1e-6*(math.Abs(cold[i])+1e-12) {
			t.Fatalf("ordinate %d diverged: warm %g cold %g", i, warm[i], cold[i])
		}
	}
}

// TestSolverStressParallelIdentical hammers the shared worker pool,
// plan cache and prefilter from many goroutines at once (run under
// -race by the chaos CI job); every concurrent result must be bitwise
// identical to the sequential reference.
func TestSolverStressParallelIdentical(t *testing.T) {
	n := 512
	padded := paddedSeries(n, []int{32, 80}, 0.1, 0.5, 11)
	kHi := len(padded)/2 - 1
	seqOpts := Options{Loss: LossHuber, FitLength: n, PrefilterAlpha: 0.01}
	ref, err := HybridPeriodogram(padded, 1, kHi, seqOpts)
	if err != nil {
		t.Fatal(err)
	}
	parOpts := seqOpts
	parOpts.Parallel = true

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				got, err := HybridPeriodogram(padded, 1, kHi, parOpts)
				if err != nil {
					errs <- err
					return
				}
				for k := range got {
					if got[k] != ref[k] {
						t.Errorf("parallel ordinate %d = %g, sequential %g", k, got[k], ref[k])
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestSolverStressCancel cancels contexts racing against in-flight
// parallel solves; each call must either finish cleanly or surface
// the context error — never panic, race, or hang.
func TestSolverStressCancel(t *testing.T) {
	n := 512
	padded := paddedSeries(n, []int{64}, 0.1, 0.5, 13)
	kHi := len(padded)/2 - 1
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				ctx, cancel := context.WithCancel(context.Background())
				timer := time.AfterFunc(time.Duration(g*i%5)*100*time.Microsecond, cancel)
				opts := Options{Loss: LossHuber, FitLength: n, Parallel: true, Ctx: ctx}
				_, err := MPeriodogram(padded, 1, kHi, opts)
				if err != nil && err != context.Canceled {
					t.Errorf("unexpected error: %v", err)
				}
				timer.Stop()
				cancel()
			}
		}(g)
	}
	wg.Wait()
}

// TestSolveBandAllocsFlat pins the engine's allocation behaviour: the
// per-frequency hot loop is allocation-free, so widening the band must
// not add allocations beyond the fixed per-call setup.
func TestSolveBandAllocsFlat(t *testing.T) {
	n := 1024
	padded := paddedSeries(n, []int{64}, 0.1, 0.5, 17)
	opts := Options{Loss: LossHuber, FitLength: n, Zeta: 1} // fixed ζ: no MADN scratch in the measured loop
	solve := func(kHi int) func() {
		return func() {
			if _, err := MPeriodogram(padded, 1, kHi, opts); err != nil {
				t.Fatal(err)
			}
		}
	}
	solve(64)()  // warm the plan cache and scratch pool
	solve(512)() //
	narrow := testing.AllocsPerRun(10, solve(64))
	wide := testing.AllocsPerRun(10, solve(512))
	if wide > narrow+8 {
		t.Errorf("allocations scale with band width: %v at 64 freqs, %v at 512", narrow, wide)
	}
	if narrow > 32 {
		t.Errorf("narrow band allocates %v per call, want <= 32", narrow)
	}
}

// TestTrigPlanShared: repeated solves of the same layout reuse one
// cached plan (the cross-level sharing the engine is built around).
func TestTrigPlanShared(t *testing.T) {
	p1 := getPlan(2048, 1024)
	p2 := getPlan(2048, 1024)
	if p1 != p2 {
		t.Error("same (N, FitLength) returned distinct plans")
	}
	if p3 := getPlan(2048, 2048); p3 == p1 {
		t.Error("different FitLength shares a plan key")
	}
}
