package spectrum

import (
	"math"
	"math/rand"
	"testing"

	"robustperiod/internal/dsp/window"
)

func TestWelchWhiteNoiseFlat(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 16384
	sigma2 := 2.0
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Sqrt(sigma2) * rng.NormFloat64()
	}
	psd, err := Welch(x, WelchOptions{SegmentLength: 256})
	if err != nil {
		t.Fatal(err)
	}
	// One-sided white-noise PSD is 2σ² per unit frequency; averaged
	// over interior ordinates it should integrate back to σ².
	var sum float64
	for k := 1; k < len(psd)-1; k++ {
		sum += psd[k]
	}
	mean := sum / float64(len(psd)-2)
	// Total power check: Σ psd / segLen ≈ σ².
	total := 0.0
	for _, v := range psd {
		total += v
	}
	total /= 256
	if math.Abs(total-sigma2) > 0.2*sigma2 {
		t.Errorf("integrated PSD %v, want ~%v", total, sigma2)
	}
	// Flatness: no ordinate should stray wildly from the mean.
	for k := 4; k < len(psd)-4; k++ {
		if psd[k] > 3*mean || psd[k] < mean/4 {
			t.Errorf("ordinate %d = %v vs mean %v: not flat", k, psd[k], mean)
		}
	}
}

func TestWelchSinusoidPeak(t *testing.T) {
	n := 8192
	seg := 256
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Sin(2 * math.Pi * float64(i) / 16) // freq 1/16 → bin 16 of 256
	}
	psd, err := Welch(x, WelchOptions{SegmentLength: seg, Window: window.Hann})
	if err != nil {
		t.Fatal(err)
	}
	best := 1
	for k := 2; k < len(psd); k++ {
		if psd[k] > psd[best] {
			best = k
		}
	}
	if best != seg/16 {
		t.Errorf("peak at bin %d, want %d", best, seg/16)
	}
}

func TestWelchVarianceReduction(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := 8192
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	relVar := func(psd []float64) float64 {
		var s, ss float64
		c := 0.0
		for k := 4; k < len(psd)-4; k++ {
			s += psd[k]
			ss += psd[k] * psd[k]
			c++
		}
		m := s / c
		return (ss/c - m*m) / (m * m)
	}
	few, err := Welch(x, WelchOptions{SegmentLength: 4096})
	if err != nil {
		t.Fatal(err)
	}
	many, err := Welch(x, WelchOptions{SegmentLength: 128})
	if err != nil {
		t.Fatal(err)
	}
	if relVar(many) >= relVar(few) {
		t.Errorf("more segments should mean lower relative variance: %v vs %v",
			relVar(many), relVar(few))
	}
}

func TestWelchErrors(t *testing.T) {
	if _, err := Welch(make([]float64, 10), WelchOptions{SegmentLength: 100}); err == nil {
		t.Error("segment longer than series should error")
	}
	if _, err := Welch(make([]float64, 10), WelchOptions{SegmentLength: 2}); err == nil {
		t.Error("tiny segment should error")
	}
}

func TestWelchDefaultsWork(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x := make([]float64, 2048)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	psd, err := Welch(x, WelchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(psd) < 9 {
		t.Errorf("default segmentation too coarse: %d ordinates", len(psd))
	}
}
