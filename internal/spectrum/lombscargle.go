package spectrum

import (
	"fmt"
	"math"
)

// LombScargle computes the Lomb–Scargle normalized periodogram of an
// unevenly sampled series: observations y taken at times ts (not
// necessarily equispaced), evaluated at the given frequencies (cycles
// per unit time). It is the standard spectral tool when samples are
// missing or irregular — the alternative to interpolating gaps before
// an FFT periodogram, which biases power toward low frequencies.
//
//	P(f) = ½ [ (Σ ȳ_i cos ω(t_i−τ))² / Σ cos² ω(t_i−τ)
//	         + (Σ ȳ_i sin ω(t_i−τ))² / Σ sin² ω(t_i−τ) ]
//
// with ω = 2πf, ȳ the mean-centred values and τ the Lomb phase offset
// tan(2ωτ) = Σ sin 2ωt_i / Σ cos 2ωt_i. With the 1/σ̂² normalization
// applied here, each ordinate is asymptotically Exp(1) under the
// white-noise null, so Fisher-style thresholds apply directly.
func LombScargle(ts, y []float64, freqs []float64) ([]float64, error) {
	n := len(y)
	if n != len(ts) {
		return nil, fmt.Errorf("spectrum: %d times vs %d values", len(ts), n)
	}
	if n < 4 {
		return nil, fmt.Errorf("spectrum: series too short (%d)", n)
	}
	mean := 0.0
	for _, v := range y {
		mean += v
	}
	mean /= float64(n)
	variance := 0.0
	yc := make([]float64, n)
	for i, v := range y {
		yc[i] = v - mean
		variance += yc[i] * yc[i]
	}
	variance /= float64(n - 1)
	if variance == 0 {
		return make([]float64, len(freqs)), nil
	}
	out := make([]float64, len(freqs))
	for fi, f := range freqs {
		if f <= 0 {
			continue
		}
		w := 2 * math.Pi * f
		var s2, c2 float64
		for _, t := range ts {
			s, c := math.Sincos(2 * w * t)
			s2 += s
			c2 += c
		}
		tau := math.Atan2(s2, c2) / (2 * w)
		var cy, sy, cc, ss float64
		for i, t := range ts {
			s, c := math.Sincos(w * (t - tau))
			cy += yc[i] * c
			sy += yc[i] * s
			cc += c * c
			ss += s * s
		}
		p := 0.0
		if cc > 0 {
			p += cy * cy / cc
		}
		if ss > 0 {
			p += sy * sy / ss
		}
		out[fi] = p / (2 * variance)
	}
	return out, nil
}

// LombScargleFrequencyGrid returns a standard evaluation grid for a
// time span T: frequencies from 1/T up to the pseudo-Nyquist implied
// by the median sampling interval, with `oversample`× the natural
// resolution (oversample <= 0 means 4).
func LombScargleFrequencyGrid(ts []float64, oversample float64) []float64 {
	n := len(ts)
	if n < 4 {
		return nil
	}
	if oversample <= 0 {
		oversample = 4
	}
	span := ts[n-1] - ts[0]
	if span <= 0 {
		return nil
	}
	// Median gap → pseudo-Nyquist.
	gaps := make([]float64, 0, n-1)
	for i := 1; i < n; i++ {
		if d := ts[i] - ts[i-1]; d > 0 {
			gaps = append(gaps, d)
		}
	}
	if len(gaps) == 0 {
		return nil
	}
	// In-place selection of the median gap.
	med := medianFloat(gaps)
	fMax := 0.5 / med
	df := 1 / (oversample * span)
	var freqs []float64
	for f := 1 / span; f <= fMax; f += df {
		freqs = append(freqs, f)
	}
	return freqs
}

func medianFloat(x []float64) float64 {
	// Simple insertion-based selection is fine for the grid helper.
	buf := append([]float64(nil), x...)
	for i := 1; i < len(buf); i++ {
		v := buf[i]
		j := i - 1
		for j >= 0 && buf[j] > v {
			buf[j+1] = buf[j]
			j--
		}
		buf[j+1] = v
	}
	m := len(buf) / 2
	if len(buf)%2 == 1 {
		return buf[m]
	}
	return (buf[m-1] + buf[m]) / 2
}

// DominantLombScarglePeriod runs Lomb–Scargle on the default grid and
// returns the period (in time units) of the highest ordinate along
// with that ordinate's value; period 0 means no usable grid.
func DominantLombScarglePeriod(ts, y []float64) (period, power float64) {
	freqs := LombScargleFrequencyGrid(ts, 4)
	if len(freqs) == 0 {
		return 0, 0
	}
	p, err := LombScargle(ts, y, freqs)
	if err != nil {
		return 0, 0
	}
	best := 0
	for i := range p {
		if p[i] > p[best] {
			best = i
		}
	}
	return 1 / freqs[best], p[best]
}
