// Package spectrum implements the spectral estimation core of
// RobustPeriod: the classical DFT periodogram, the robust
// M-periodogram family (Huber and LAD losses, solved by IRLS or ADMM),
// the hybrid passband evaluation of §3.4.1, and the Wiener–Khinchin
// construction of the robust Huber-ACF (Eq. 13).
package spectrum

import (
	"context"
	"fmt"
	"math"

	"robustperiod/internal/dsp/fft"
	"robustperiod/internal/faults"
	"robustperiod/internal/stat/robust"
	"robustperiod/internal/trace"
)

// Loss selects the M-estimation loss of the robust periodogram.
type Loss int

// Supported losses. LossL2 reproduces the classical periodogram
// exactly; LossLAD is the Laplace periodogram of Li (2008); LossHuber
// is the paper's choice (Eq. 7).
const (
	LossHuber Loss = iota
	LossLAD
	LossL2
)

func (l Loss) String() string {
	switch l {
	case LossHuber:
		return "huber"
	case LossLAD:
		return "lad"
	case LossL2:
		return "l2"
	default:
		return fmt.Sprintf("loss(%d)", int(l))
	}
}

// Solver selects the optimizer for the per-frequency M-regression.
type Solver int

// SolverIRLS (iteratively reweighted least squares) is the default;
// SolverADMM is the alternating direction method the paper cites.
// Both converge to the same optimum; see the ablation benches.
const (
	SolverIRLS Solver = iota
	SolverADMM
)

func (s Solver) String() string {
	if s == SolverADMM {
		return "admm"
	}
	return "irls"
}

// Options configures the M-periodogram.
type Options struct {
	Loss    Loss
	Solver  Solver
	Zeta    float64 // Huber threshold; <= 0 means 1.345 × MADN of the series
	MaxIter int     // per-frequency iteration cap; <= 0 means 30
	Tol     float64 // relative convergence tolerance; <= 0 means 1e-8
	Rho     float64 // ADMM penalty; <= 0 means 1

	// Parallel enlists the bounded solver worker pool for the
	// per-frequency regressions when the requested band spans more
	// than one work chunk. Results are bitwise identical to the
	// sequential path: chunk boundaries are a fixed grid and the
	// warm-start chains reset at them (see engine.go).
	Parallel bool

	// Trace, when non-nil, accumulates the solver engine's
	// diagnostics under the "periodogram" stage: total IRLS/ADMM
	// iterations ("solver_iters"), warm starts that beat the cold OLS
	// init ("solver_warm_hits"), and frequencies skipped by the
	// prefilter ("prefilter_skips"). Tallies accumulate locally per
	// worker and merge once per call, so the hot solver loops never
	// touch a shared lock.
	Trace *trace.Trace

	// Ctx, when non-nil, is polled between per-frequency regressions
	// and between solver iterations; once it is cancelled the
	// periodogram functions stop and return Ctx.Err(). A nil Ctx (the
	// zero value) never cancels.
	Ctx context.Context

	// FitLength, when positive, restricts the M-regression to the
	// first FitLength samples while keeping the frequency grid of the
	// full (zero-padded) series, and rescales the ordinates to the
	// padded vanilla-periodogram convention. Fitting the regression on
	// the padded zeros would penalize strong ordinates more than weak
	// ones (the padding residuals grow with the fitted amplitude),
	// systematically biasing the Wiener–Khinchin ACF toward the bin
	// period; excluding the padding removes that bias. 0 fits all
	// samples.
	FitLength int

	// PrefilterAlpha, when in (0, 1), arms the vanilla-periodogram
	// prefilter inside HybridPeriodogram: any frequency whose exact
	// Huber ordinate is provably below the Fisher-g acceptance floor
	// at this significance level is not solved exactly — the
	// clipped-series vanilla ordinate is substituted (and the skip
	// counted under the "prefilter_skips" trace counter), which
	// cannot change the set of Fisher-accepted frequencies (see
	// prefilter.go for the certificate). The prefilter needs the
	// padded detect layout (2·FitLength == len(x)) and the Huber
	// loss; in any other configuration the exact path runs
	// unconditionally. 0 (the zero value) disables it. MPeriodogram
	// never prefilters: its contract is the exact band.
	PrefilterAlpha float64

	// NoPrefilter forces the exact solve for every frequency even
	// when PrefilterAlpha is set — the reference configuration of the
	// equivalence tests.
	NoPrefilter bool

	// NoWarmStart cold-starts every per-frequency solve from the OLS
	// init instead of considering the neighbouring frequency's
	// solution. Warm starts never change the optimum (the solvers are
	// descent schemes and the warm iterate is taken only when it
	// already has the lower loss); this switch exists for the
	// equivalence tests and for A/B iteration-count measurements.
	NoWarmStart bool
}

func (o Options) withDefaults(x []float64) Options {
	if o.MaxIter <= 0 {
		o.MaxIter = 30
	}
	if o.Tol <= 0 {
		o.Tol = 1e-8
	}
	if o.Rho <= 0 {
		o.Rho = 1
	}
	if o.FitLength <= 0 || o.FitLength > len(x) {
		o.FitLength = len(x)
	}
	if o.Zeta <= 0 {
		fit := x[:o.FitLength]
		s := robust.MADN(fit)
		if s == 0 {
			s = math.Sqrt(robust.Variance(fit))
		}
		if s == 0 {
			s = 1
		}
		o.Zeta = 1.345 * s
	}
	return o
}

// Periodogram returns the half-range classical periodogram
// P[k] = |Σ_t x_t e^{−i2πkt/N}|²/N for k = 0..⌊N/2⌋ (Eq. 5).
func Periodogram(x []float64) []float64 {
	full := fft.Periodogram(x)
	if full == nil {
		return nil
	}
	return full[:len(x)/2+1]
}

// MPeriodogram returns the robust M-periodogram ordinates
// P^M_k = (N/4)·‖β̂(k)‖² for every k in [kLo, kHi] (Eq. 6). The slice
// is indexed from 0: out[i] corresponds to frequency index kLo+i.
// Frequencies must satisfy 0 < kLo <= kHi < ⌈N/2⌉ (the harmonic
// regressors degenerate at DC and Nyquist; use Periodogram there).
func MPeriodogram(x []float64, kLo, kHi int, opts Options) ([]float64, error) {
	n := len(x)
	if n < 4 {
		return nil, fmt.Errorf("spectrum: series too short (%d)", n)
	}
	if kLo < 1 || kHi < kLo || kHi >= (n+1)/2 {
		return nil, fmt.Errorf("spectrum: frequency range [%d,%d] invalid for N=%d", kLo, kHi, n)
	}
	opts = opts.withDefaults(x)
	// Fault points: "spectrum/solver" simulates a robust-regression
	// failure (IRLS/ADMM divergence surrogate), "spectrum/stall" a
	// stage stall (its delay action sleeps inside the solve, so a
	// caller-imposed stage budget sees it exactly like a slow solve).
	if err := faults.Check(faults.PointSpectrumSolver); err != nil {
		return nil, err
	}
	if err := faults.Check(faults.PointSpectrumStall); err != nil {
		return nil, err
	}
	if opts.Loss == LossL2 {
		// The sum-of-squares M-periodogram is exactly the classical
		// periodogram (the paper notes the equivalence below Eq. 6);
		// take the O(N log N) FFT path instead of per-frequency OLS.
		p := fft.Periodogram(x)
		out := make([]float64, kHi-kLo+1)
		copy(out, p[kLo:kHi+1])
		return out, nil
	}
	// The exact band, never prefiltered: callers of MPeriodogram get
	// the true M-ordinate at every requested frequency.
	return solveBand(x, kLo, kHi, opts, nil)
}

// checkOrdinates rejects a solve that produced a non-finite ordinate
// (a diverged robust regression): surfacing it as an error lets the
// detector fall back to the classical periodogram instead of feeding
// NaN into Fisher's test, where it would silently void the verdict.
func checkOrdinates(out []float64, kLo int) error {
	for i, v := range out {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("spectrum: robust solver diverged (non-finite ordinate at k=%d)", kLo+i)
		}
	}
	return nil
}

// ctxDone returns the context's done channel, or nil for a nil context
// (a nil channel never receives, so cancelled() stays false).
func ctxDone(ctx context.Context) <-chan struct{} {
	if ctx == nil {
		return nil
	}
	return ctx.Done()
}

// cancelled non-blockingly reports whether done has fired.
func cancelled(done <-chan struct{}) bool {
	select {
	case <-done:
		return true
	default:
		return false
	}
}

// ctxErr is ctx.Err() tolerating a nil context.
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}

// olsInit returns the exact least-squares harmonic fit by solving the
// unweighted 2×2 normal equations; this is both the L2 solution and
// the warm start for the robust solvers. (For integer frequencies over
// the full sample this reduces to (2/N)·[Σx·cos, Σx·sin], but the
// exact solve also covers FitLength-restricted fits where the
// regressors are not orthogonal.)
func olsInit(x, cosB, sinB []float64) (a, b float64) {
	var scc, sss, scs, sxc, sxs float64
	for t := range x {
		c, s := cosB[t], sinB[t]
		scc += c * c
		sss += s * s
		scs += c * s
		sxc += x[t] * c
		sxs += x[t] * s
	}
	det := scc*sss - scs*scs
	if det == 0 || math.IsNaN(det) {
		return 0, 0
	}
	return (sxc*sss - sxs*scs) / det, (sxs*scc - sxc*scs) / det
}

// solveIRLSFrom minimizes Σ γ(a·cos + b·sin − x) by iteratively
// reweighted least squares on the 2×2 normal equations, starting from
// the given iterate (the OLS init, or a warm start the engine already
// vetted). iters reports the reweighting iterations executed (for the
// tracing layer).
func solveIRLSFrom(x, cosB, sinB []float64, a0, b0 float64, opts Options, done <-chan struct{}) (a, b float64, iters int) {
	a, b = a0, b0
	if opts.Loss == LossL2 {
		return a, b, 0
	}
	const ladEps = 1e-8
	for iter := 0; iter < opts.MaxIter; iter++ {
		if cancelled(done) {
			return a, b, iters
		}
		iters++
		var scc, sss, scs, sxc, sxs float64
		for t := range x {
			r := a*cosB[t] + b*sinB[t] - x[t]
			var w float64
			if opts.Loss == LossLAD {
				w = 1 / math.Max(math.Abs(r), ladEps)
			} else {
				w = robust.HuberWeight(r, opts.Zeta)
			}
			c, s := cosB[t], sinB[t]
			scc += w * c * c
			sss += w * s * s
			scs += w * c * s
			sxc += w * x[t] * c
			sxs += w * x[t] * s
		}
		det := scc*sss - scs*scs
		if det == 0 || math.IsNaN(det) {
			return a, b, iters
		}
		na := (sxc*sss - sxs*scs) / det
		nb := (sxs*scc - sxc*scs) / det
		da, db := na-a, nb-b
		a, b = na, nb
		if da*da+db*db <= opts.Tol*opts.Tol*(a*a+b*b+1e-12) {
			break
		}
	}
	return a, b, iters
}

// solveADMMFrom minimizes Σ γ(z) subject to z = Φβ − x via ADMM with
// penalty ρ, starting from the given iterate; the β-update solves the
// exact 2×2 normal equations of Φβ = x + z − u. z and u are
// caller-provided scratch (len ≥ len(x)), overwritten here. iters
// reports the ADMM iterations executed.
func solveADMMFrom(x, cosB, sinB []float64, a0, b0 float64, z, u []float64, opts Options, done <-chan struct{}) (a, b float64, iters int) {
	a, b = a0, b0
	if opts.Loss == LossL2 {
		return a, b, 0
	}
	var scc, sss, scs float64
	for t := range x {
		c, s := cosB[t], sinB[t]
		scc += c * c
		sss += s * s
		scs += c * s
	}
	det := scc*sss - scs*scs
	if det == 0 || math.IsNaN(det) {
		return a, b, 0
	}
	for t := range x {
		z[t] = a*cosB[t] + b*sinB[t] - x[t]
		u[t] = 0
	}
	rho := opts.Rho
	for iter := 0; iter < 4*opts.MaxIter; iter++ {
		if cancelled(done) {
			return a, b, iters
		}
		iters++
		// β-update: least squares of Φβ = x + z − u.
		var sc, ss float64
		for t := range x {
			v := x[t] + z[t] - u[t]
			sc += v * cosB[t]
			ss += v * sinB[t]
		}
		na := (sc*sss - ss*scs) / det
		nb := (ss*scc - sc*scs) / det
		// z-update: prox of the loss at v = Φβ − x + u.
		maxResid := 0.0
		for t := range x {
			v := na*cosB[t] + nb*sinB[t] - x[t] + u[t]
			var zt float64
			if opts.Loss == LossLAD {
				// soft threshold by 1/ρ
				switch {
				case v > 1/rho:
					zt = v - 1/rho
				case v < -1/rho:
					zt = v + 1/rho
				default:
					zt = 0
				}
			} else {
				zt = huberProx(v, opts.Zeta, rho)
			}
			// dual update uses the new z.
			r := na*cosB[t] + nb*sinB[t] - x[t] - zt
			u[t] += r
			z[t] = zt
			if ar := math.Abs(r); ar > maxResid {
				maxResid = ar
			}
		}
		da, db := na-a, nb-b
		a, b = na, nb
		if maxResid < opts.Tol*10 && da*da+db*db <= opts.Tol*opts.Tol*(a*a+b*b+1e-12) {
			break
		}
	}
	return a, b, iters
}

// huberProx returns argmin_z huber_ζ(z) + (ρ/2)(z − v)².
func huberProx(v, zeta, rho float64) float64 {
	if math.Abs(v) <= zeta*(1+rho)/rho {
		return rho * v / (1 + rho)
	}
	if v > 0 {
		return v - zeta/rho
	}
	return v + zeta/rho
}

// RobustNyquist returns the M-estimated ordinate at the Nyquist
// frequency of an even-length series: the harmonic regressor collapses
// to (−1)^t, so this is a one-parameter robust location fit, scaled to
// match the classical P_N = (Σ(−1)^t x)²/N under the L2 loss.
func RobustNyquist(x []float64, opts Options) float64 {
	n := len(x)
	if n < 2 || n%2 != 0 {
		return NyquistOrdinate(x)
	}
	opts = opts.withDefaults(x)
	fit := x[:opts.FitLength]
	m := len(fit)
	// OLS init: beta = Σ(−1)^t x / m.
	beta := 0.0
	sign := 1.0
	for _, v := range fit {
		beta += sign * v
		sign = -sign
	}
	beta /= float64(m)
	scale := float64(m) * float64(m) / float64(n)
	if opts.Loss == LossL2 {
		return scale * beta * beta
	}
	const ladEps = 1e-8
	done := ctxDone(opts.Ctx)
	iters := int64(0)
	defer func() { opts.Trace.Count(trace.StagePeriodogram, trace.CounterSolverIters, iters) }()
	for iter := 0; iter < opts.MaxIter; iter++ {
		if cancelled(done) {
			break
		}
		iters++
		var sw, swx float64
		sign = 1.0
		for _, v := range fit {
			r := beta*sign - v
			var w float64
			if opts.Loss == LossLAD {
				w = 1 / math.Max(math.Abs(r), ladEps)
			} else {
				w = robust.HuberWeight(r, opts.Zeta)
			}
			sw += w
			swx += w * sign * v
			sign = -sign
		}
		if sw == 0 {
			break
		}
		nb := swx / sw
		d := nb - beta
		beta = nb
		if d*d <= opts.Tol*opts.Tol*(beta*beta+1e-12) {
			break
		}
	}
	if p := scale * beta * beta; !math.IsNaN(p) && !math.IsInf(p, 0) {
		return p
	}
	// Diverged robust location fit: the classical ordinate is the
	// graceful answer for a single bin.
	return NyquistOrdinate(x)
}

// HybridPeriodogram returns the half-range periodogram of x with
// robust M-ordinates on [kLo, kHi] and classical DFT ordinates
// elsewhere — the paper's speedup of computing Eq. 6 only on the
// wavelet level's nominal passband. Indices outside (0, N/2) are
// always classical, except that when the robust band reaches the last
// interior bin the Nyquist ordinate is robustified too — otherwise a
// classical Nyquist bin would keep the full outlier energy that every
// neighbouring robust bin has downweighted, and Fisher's test would
// lock onto it. The returned slice has ⌊N/2⌋+1 entries.
func HybridPeriodogram(x []float64, kLo, kHi int, opts Options) ([]float64, error) {
	p := Periodogram(x)
	if p == nil {
		return nil, fmt.Errorf("spectrum: empty series")
	}
	if opts.Loss == LossL2 {
		// Classical ordinates everywhere — nothing to patch.
		return p, nil
	}
	if kLo < 1 {
		kLo = 1
	}
	nyq := len(x) / 2
	if kHi >= (len(x)+1)/2 {
		kHi = (len(x)+1)/2 - 1
	}
	if kHi < kLo {
		return p, nil
	}
	if len(x) < 4 {
		return nil, fmt.Errorf("spectrum: series too short (%d)", len(x))
	}
	opts = opts.withDefaults(x)
	if err := faults.Check(faults.PointSpectrumSolver); err != nil {
		return nil, err
	}
	if err := faults.Check(faults.PointSpectrumStall); err != nil {
		return nil, err
	}
	robustNyq := len(x)%2 == 0 && kHi == nyq-1 && nyq < len(p)
	// The Fisher prefilter applies here and not in MPeriodogram: only
	// the hybrid array feeds Fisher's test, so only here is "below the
	// acceptance floor" a meaningful certificate.
	pre := buildPrefilter(x, kLo, kHi, opts, p, robustNyq, getPlan(len(x), opts.FitLength))
	m, err := solveBand(x, kLo, kHi, opts, pre)
	if err != nil {
		return nil, err
	}
	copy(p[kLo:kHi+1], m)
	if robustNyq {
		p[nyq] = RobustNyquist(x, opts)
	}
	return p, nil
}
