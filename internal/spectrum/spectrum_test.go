package spectrum

import (
	"math"
	"math/rand"
	"testing"

	"robustperiod/internal/dsp/fft"
)

func sinusoid(n int, period float64, amp float64) []float64 {
	x := make([]float64, n)
	for i := range x {
		x[i] = amp * math.Sin(2*math.Pi*float64(i)/period)
	}
	return x
}

func addNoise(x []float64, sigma float64, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	out := append([]float64(nil), x...)
	for i := range out {
		out[i] += sigma * rng.NormFloat64()
	}
	return out
}

func addSpikes(x []float64, count int, mag float64, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	out := append([]float64(nil), x...)
	for i := 0; i < count; i++ {
		out[rng.Intn(len(out))] += mag
	}
	return out
}

func TestPeriodogramHalfRange(t *testing.T) {
	x := addNoise(sinusoid(128, 16, 1), 0.1, 1)
	half := Periodogram(x)
	full := fft.Periodogram(x)
	if len(half) != 65 {
		t.Fatalf("half length %d", len(half))
	}
	for k := range half {
		if half[k] != full[k] {
			t.Fatalf("half[%d] disagrees", k)
		}
	}
}

func TestMPeriodogramL2MatchesClassical(t *testing.T) {
	x := addNoise(sinusoid(200, 20, 2), 0.3, 2)
	p := Periodogram(x)
	m, err := MPeriodogram(x, 1, 99, Options{Loss: LossL2})
	if err != nil {
		t.Fatal(err)
	}
	for k := 1; k <= 99; k++ {
		if math.Abs(m[k-1]-p[k]) > 1e-8*(p[k]+1) {
			t.Fatalf("k=%d: L2 M-periodogram %v vs classical %v", k, m[k-1], p[k])
		}
	}
}

func TestMPeriodogramHuberCleanDataMatchesClassical(t *testing.T) {
	// Without outliers, residuals stay in the quadratic zone at the
	// peak frequency, so Huber ≈ L2 where it matters.
	x := sinusoid(256, 32, 1)
	p := Periodogram(x)
	m, err := MPeriodogram(x, 8, 8, Options{Loss: LossHuber})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m[0]-p[8]) > 0.05*p[8] {
		t.Errorf("clean peak: huber %v vs classical %v", m[0], p[8])
	}
}

func TestMPeriodogramHuberResistsOutliers(t *testing.T) {
	n := 400
	clean := sinusoid(n, 40, 1) // peak at k = 10
	dirty := addSpikes(clean, 20, 15, 3)
	pClean := Periodogram(clean)
	pDirty := Periodogram(dirty)
	mDirty, err := MPeriodogram(dirty, 1, 199, Options{Loss: LossHuber})
	if err != nil {
		t.Fatal(err)
	}
	// Huber estimate of the peak should be much closer to the clean
	// value than the contaminated classical ordinate off-peak noise.
	peakErrHuber := math.Abs(mDirty[9] - pClean[10])
	peakErrVanilla := math.Abs(pDirty[10] - pClean[10])
	if peakErrHuber > peakErrVanilla {
		t.Errorf("huber peak error %v not better than vanilla %v", peakErrHuber, peakErrVanilla)
	}
	// And the argmax of the Huber spectrum must still be k=10.
	best := 0
	for i := range mDirty {
		if mDirty[i] > mDirty[best] {
			best = i
		}
	}
	if best+1 != 10 {
		t.Errorf("huber argmax k=%d, want 10", best+1)
	}
	// Off-peak contamination: total spurious energy should shrink.
	var offHuber, offVanilla float64
	for k := 1; k <= 199; k++ {
		if k >= 8 && k <= 12 {
			continue
		}
		offHuber += mDirty[k-1]
		offVanilla += pDirty[k]
	}
	if offHuber > offVanilla {
		t.Errorf("huber off-peak energy %v exceeds vanilla %v", offHuber, offVanilla)
	}
}

func TestMPeriodogramADMMAgreesWithIRLS(t *testing.T) {
	x := addSpikes(addNoise(sinusoid(240, 24, 1), 0.2, 4), 10, 8, 5)
	irls, err := MPeriodogram(x, 5, 30, Options{Loss: LossHuber, Solver: SolverIRLS})
	if err != nil {
		t.Fatal(err)
	}
	admm, err := MPeriodogram(x, 5, 30, Options{Loss: LossHuber, Solver: SolverADMM, MaxIter: 100})
	if err != nil {
		t.Fatal(err)
	}
	for i := range irls {
		denom := math.Max(irls[i], 1e-3)
		if math.Abs(irls[i]-admm[i])/denom > 0.05 {
			t.Errorf("k=%d: IRLS %v vs ADMM %v", i+5, irls[i], admm[i])
		}
	}
}

func TestMPeriodogramLADRuns(t *testing.T) {
	x := addSpikes(sinusoid(200, 25, 1), 10, 10, 6)
	m, err := MPeriodogram(x, 1, 99, Options{Loss: LossLAD})
	if err != nil {
		t.Fatal(err)
	}
	best := 0
	for i := range m {
		if m[i] > m[best] {
			best = i
		}
	}
	if best+1 != 8 {
		t.Errorf("LAD argmax k=%d, want 8 (period 25 of N=200)", best+1)
	}
}

func TestMPeriodogramErrors(t *testing.T) {
	x := sinusoid(64, 8, 1)
	if _, err := MPeriodogram(x, 0, 5, Options{}); err == nil {
		t.Error("kLo=0 should error")
	}
	if _, err := MPeriodogram(x, 5, 4, Options{}); err == nil {
		t.Error("kHi<kLo should error")
	}
	if _, err := MPeriodogram(x, 1, 32, Options{}); err == nil {
		t.Error("kHi at Nyquist should error")
	}
	if _, err := MPeriodogram([]float64{1, 2}, 1, 1, Options{}); err == nil {
		t.Error("tiny series should error")
	}
}

func TestHybridPeriodogramPatchesBand(t *testing.T) {
	x := addSpikes(sinusoid(256, 32, 1), 8, 10, 7)
	base := Periodogram(x)
	hyb, err := HybridPeriodogram(x, 10, 20, Options{Loss: LossHuber})
	if err != nil {
		t.Fatal(err)
	}
	if len(hyb) != len(base) {
		t.Fatal("length mismatch")
	}
	for k := range base {
		inBand := k >= 10 && k <= 20
		same := hyb[k] == base[k]
		if inBand && same && base[k] > 1e-9 {
			t.Errorf("k=%d inside band unchanged", k)
		}
		if !inBand && !same {
			t.Errorf("k=%d outside band modified", k)
		}
	}
	// Degenerate band collapses to classical.
	hyb2, err := HybridPeriodogram(x, 50, 10, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for k := range base {
		if hyb2[k] != base[k] {
			t.Fatal("empty band should return classical periodogram")
		}
	}
}

func TestFullRangeMirror(t *testing.T) {
	x := addNoise(sinusoid(64, 8, 1), 0.2, 8)
	padded := make([]float64, 128)
	copy(padded, x)
	half := Periodogram(padded)
	full := FullRange(half)
	want := fft.Periodogram(padded)
	if len(full) != 128 {
		t.Fatalf("full length %d", len(full))
	}
	for k := range want {
		if math.Abs(full[k]-want[k]) > 1e-9 {
			t.Fatalf("k=%d: mirrored %v vs direct %v", k, full[k], want[k])
		}
	}
}

func TestACFFromPeriodogramMatchesDirect(t *testing.T) {
	x := addNoise(sinusoid(100, 20, 1), 0.1, 9)
	// Zero-mean the series the way the pipeline does (winsorized data
	// is already centred); DirectACF centres internally, so centre here.
	mean := 0.0
	for _, v := range x {
		mean += v
	}
	mean /= float64(len(x))
	for i := range x {
		x[i] -= mean
	}
	padded := make([]float64, 200)
	copy(padded, x)
	full := fft.Periodogram(padded)
	acf, err := ACFFromPeriodogram(full, 100)
	if err != nil {
		t.Fatal(err)
	}
	want := DirectACF(x)
	if math.Abs(acf[0]-1) > 1e-9 {
		t.Errorf("acf[0] = %v", acf[0])
	}
	for lag := 0; lag < 90; lag++ { // long lags amplify tiny differences
		if math.Abs(acf[lag]-want[lag]) > 1e-6 {
			t.Fatalf("lag %d: WK %v vs direct %v", lag, acf[lag], want[lag])
		}
	}
}

func TestACFFromPeriodogramLengthError(t *testing.T) {
	if _, err := ACFFromPeriodogram(make([]float64, 10), 10); err == nil {
		t.Error("short periodogram should error")
	}
}

func TestHuberACFRobustness(t *testing.T) {
	n := 300
	clean := sinusoid(n, 30, 1)
	dirty := addSpikes(clean, 15, 12, 10)
	cleanACF := DirectACF(clean)
	dirtyACF := DirectACF(dirty)
	hACF, err := HuberACF(dirty, Options{Loss: LossHuber})
	if err != nil {
		t.Fatal(err)
	}
	// Compare over informative lags.
	var errH, errD float64
	for lag := 1; lag < 150; lag++ {
		errH += math.Abs(hACF[lag] - cleanACF[lag])
		errD += math.Abs(dirtyACF[lag] - cleanACF[lag])
	}
	if errH >= errD {
		t.Errorf("Huber-ACF error %v not better than contaminated direct ACF %v", errH, errD)
	}
	// The lag-30 peak must survive.
	if hACF[30] < 0.5 {
		t.Errorf("hACF[30] = %v, want > 0.5", hACF[30])
	}
}

func TestHuberACFShortSeriesError(t *testing.T) {
	if _, err := HuberACF([]float64{1, 2, 3}, Options{}); err == nil {
		t.Error("expected error")
	}
}

func TestDirectACFBasics(t *testing.T) {
	if DirectACF(nil) != nil {
		t.Error("nil for empty")
	}
	acf := DirectACF([]float64{5, 5, 5})
	if acf[0] != 1 {
		t.Error("degenerate series should have acf[0]=1")
	}
	x := sinusoid(120, 24, 1)
	acf = DirectACF(x)
	if acf[24] < 0.9 {
		t.Errorf("acf at true period = %v", acf[24])
	}
	if acf[12] > -0.9 {
		t.Errorf("acf at half period = %v, want near -1", acf[12])
	}
}

func TestNyquistOrdinate(t *testing.T) {
	x := addNoise(sinusoid(64, 8, 1), 0.5, 11)
	want := fft.Periodogram(x)[32]
	if got := NyquistOrdinate(x); math.Abs(got-want) > 1e-9 {
		t.Errorf("Nyquist %v vs FFT %v", got, want)
	}
}

// Property: the Huber M-periodogram with auto-ζ is scale equivariant —
// P(a·x) = a²·P(x) — because ζ scales with the MADN of the data.
func TestMPeriodogramScaleEquivariance(t *testing.T) {
	x := addSpikes(addNoise(sinusoid(300, 30, 1), 0.2, 30), 8, 6, 31)
	base, err := MPeriodogram(x, 5, 30, Options{Loss: LossHuber})
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range []float64{0.1, 3, 50} {
		scaled := make([]float64, len(x))
		for i, v := range x {
			scaled[i] = a * v
		}
		got, err := MPeriodogram(scaled, 5, 30, Options{Loss: LossHuber})
		if err != nil {
			t.Fatal(err)
		}
		for k := range got {
			want := a * a * base[k]
			if math.Abs(got[k]-want) > 1e-6*(want+1e-9) {
				t.Fatalf("a=%v k=%d: got %v want %v", a, k+5, got[k], want)
			}
		}
	}
}

// Property: Parallel and sequential M-periodograms are bit-identical.
func TestMPeriodogramParallelIdentical(t *testing.T) {
	x := addSpikes(addNoise(sinusoid(600, 40, 1), 0.3, 32), 15, 8, 33)
	seq, err := MPeriodogram(x, 1, 299, Options{Loss: LossHuber})
	if err != nil {
		t.Fatal(err)
	}
	par, err := MPeriodogram(x, 1, 299, Options{Loss: LossHuber, Parallel: true})
	if err != nil {
		t.Fatal(err)
	}
	for k := range seq {
		if seq[k] != par[k] {
			t.Fatalf("k=%d: %v vs %v", k+1, seq[k], par[k])
		}
	}
}

func TestRobustNyquistMatchesClassicalOnCleanData(t *testing.T) {
	// Alternating series concentrates energy at Nyquist.
	x := make([]float64, 128)
	for i := range x {
		x[i] = 1
		if i%2 == 1 {
			x[i] = -1
		}
	}
	want := NyquistOrdinate(x)
	got := RobustNyquist(x, Options{Loss: LossHuber})
	if math.Abs(got-want) > 0.05*want {
		t.Errorf("robust Nyquist %v vs classical %v", got, want)
	}
	// Odd length falls back to the classical ordinate.
	odd := x[:127]
	if RobustNyquist(odd, Options{}) != NyquistOrdinate(odd) {
		t.Error("odd-length fallback broken")
	}
}

func TestLossSolverStrings(t *testing.T) {
	if LossHuber.String() != "huber" || LossLAD.String() != "lad" || LossL2.String() != "l2" {
		t.Error("Loss.String broken")
	}
	if SolverIRLS.String() != "irls" || SolverADMM.String() != "admm" {
		t.Error("Solver.String broken")
	}
	if Loss(99).String() == "" {
		t.Error("unknown loss should still print")
	}
}

func BenchmarkMPeriodogramIRLSBand(b *testing.B) {
	x := addSpikes(addNoise(sinusoid(2000, 100, 1), 0.3, 12), 40, 8, 13)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := MPeriodogram(x, 10, 40, Options{Loss: LossHuber}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMPeriodogramADMMBand(b *testing.B) {
	x := addSpikes(addNoise(sinusoid(2000, 100, 1), 0.3, 12), 40, 8, 13)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := MPeriodogram(x, 10, 40, Options{Loss: LossHuber, Solver: SolverADMM}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHuberACF(b *testing.B) {
	x := addNoise(sinusoid(1000, 50, 1), 0.3, 14)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := HuberACF(x, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDirectACF(b *testing.B) {
	x := addNoise(sinusoid(1000, 50, 1), 0.3, 15)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		DirectACF(x)
	}
}
