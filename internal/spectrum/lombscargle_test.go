package spectrum

import (
	"math"
	"math/rand"
	"testing"
)

func unevenSample(n int, period, noise float64, keep float64, seed int64) (ts, y []float64) {
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		if rng.Float64() > keep {
			continue
		}
		t := float64(i)
		ts = append(ts, t)
		y = append(y, math.Sin(2*math.Pi*t/period)+noise*rng.NormFloat64())
	}
	return ts, y
}

func TestLombScargleEvenSamplingMatchesPeriodogramPeak(t *testing.T) {
	n := 256
	period := 32.0
	ts := make([]float64, n)
	y := make([]float64, n)
	for i := range ts {
		ts[i] = float64(i)
		y[i] = math.Sin(2 * math.Pi * ts[i] / period)
	}
	freqs := make([]float64, 0, 100)
	for k := 1; k <= 100; k++ {
		freqs = append(freqs, float64(k)/512)
	}
	p, err := LombScargle(ts, y, freqs)
	if err != nil {
		t.Fatal(err)
	}
	best := 0
	for i := range p {
		if p[i] > p[best] {
			best = i
		}
	}
	if got := 1 / freqs[best]; math.Abs(got-period) > 1 {
		t.Errorf("L-S peak period %v, want %v", got, period)
	}
}

func TestLombScargleSurvivesMissingData(t *testing.T) {
	// 60% of samples randomly dropped — no interpolation, no bias.
	ts, y := unevenSample(1000, 50, 0.2, 0.4, 1)
	period, power := DominantLombScarglePeriod(ts, y)
	if math.Abs(period-50) > 2 {
		t.Errorf("period %v, want ~50", period)
	}
	if power < 20 {
		t.Errorf("peak power %v suspiciously low", power)
	}
}

func TestLombScargleWhiteNoiseCalibration(t *testing.T) {
	// Under the null each ordinate ~ Exp(1): the mean over many
	// ordinates should be near 1.
	rng := rand.New(rand.NewSource(2))
	ts := make([]float64, 400)
	y := make([]float64, 400)
	for i := range ts {
		ts[i] = float64(i) + 0.3*rng.Float64()
		y[i] = rng.NormFloat64()
	}
	freqs := LombScargleFrequencyGrid(ts, 1)
	p, err := LombScargle(ts, y, freqs)
	if err != nil {
		t.Fatal(err)
	}
	mean := 0.0
	for _, v := range p {
		mean += v
	}
	mean /= float64(len(p))
	if mean < 0.5 || mean > 2 {
		t.Errorf("null ordinate mean %v, want ~1", mean)
	}
}

func TestLombScargleErrors(t *testing.T) {
	if _, err := LombScargle([]float64{1, 2}, []float64{1, 2, 3}, nil); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := LombScargle([]float64{1}, []float64{1}, nil); err == nil {
		t.Error("tiny input should error")
	}
	// Constant series: all-zero spectrum, no error.
	ts := []float64{0, 1, 2, 3, 4}
	y := []float64{7, 7, 7, 7, 7}
	p, err := LombScargle(ts, y, []float64{0.1, 0.2})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range p {
		if v != 0 {
			t.Error("constant series should have zero power")
		}
	}
}

func TestLombScargleFrequencyGrid(t *testing.T) {
	ts := make([]float64, 100)
	for i := range ts {
		ts[i] = float64(i)
	}
	freqs := LombScargleFrequencyGrid(ts, 4)
	if len(freqs) == 0 {
		t.Fatal("empty grid")
	}
	if freqs[0] > 1.0/99*1.01 {
		t.Errorf("grid should start near 1/span, got %v", freqs[0])
	}
	if last := freqs[len(freqs)-1]; last > 0.5 {
		t.Errorf("grid exceeds pseudo-Nyquist: %v", last)
	}
	if LombScargleFrequencyGrid(ts[:2], 4) != nil {
		t.Error("degenerate input should give nil")
	}
	same := []float64{5, 5, 5, 5}
	if LombScargleFrequencyGrid(same, 4) != nil {
		t.Error("zero span should give nil")
	}
}

func BenchmarkLombScargle(b *testing.B) {
	ts, y := unevenSample(2000, 100, 0.3, 0.5, 3)
	freqs := LombScargleFrequencyGrid(ts, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := LombScargle(ts, y, freqs); err != nil {
			b.Fatal(err)
		}
	}
}
