package spectrum

import (
	"fmt"

	"robustperiod/internal/dsp/fft"
	"robustperiod/internal/dsp/window"
)

// WelchOptions configures the averaged PSD estimator.
type WelchOptions struct {
	// SegmentLength per segment; <= 0 picks len(x)/8 rounded down to a
	// power of two (min 16).
	SegmentLength int
	// Overlap fraction in [0, 0.95]; < 0 or unset means 0.5.
	Overlap float64
	// Window taper; default Hann.
	Window window.Kind
}

// Welch estimates the one-sided power spectral density of x by
// averaging windowed periodograms of overlapping segments (Welch
// 1967). The returned slice has SegmentLength/2+1 ordinates; ordinate
// k corresponds to frequency k/SegmentLength cycles per sample. The
// variance of the estimate shrinks with the number of segments, at
// the cost of frequency resolution — the classical trade against the
// raw periodogram.
func Welch(x []float64, opts WelchOptions) ([]float64, error) {
	n := len(x)
	seg := opts.SegmentLength
	if seg <= 0 {
		seg = 16
		for seg*2 <= n/8 {
			seg *= 2
		}
	}
	if seg < 4 || seg > n {
		return nil, fmt.Errorf("spectrum: segment length %d invalid for n=%d", seg, n)
	}
	overlap := opts.Overlap
	if overlap < 0 || opts.Overlap == 0 {
		overlap = 0.5
	}
	if overlap > 0.95 {
		overlap = 0.95
	}
	step := int(float64(seg) * (1 - overlap))
	if step < 1 {
		step = 1
	}
	coeffs := window.Coefficients(opts.Window, seg)
	gain := window.PowerGain(opts.Window, seg)

	psd := make([]float64, seg/2+1)
	buf := make([]float64, seg)
	count := 0
	for start := 0; start+seg <= n; start += step {
		// Demean the segment, then taper.
		mean := 0.0
		for i := 0; i < seg; i++ {
			mean += x[start+i]
		}
		mean /= float64(seg)
		for i := 0; i < seg; i++ {
			buf[i] = (x[start+i] - mean) * coeffs[i]
		}
		p := fft.Periodogram(buf)
		for k := 0; k <= seg/2; k++ {
			psd[k] += p[k]
		}
		count++
	}
	if count == 0 {
		return nil, fmt.Errorf("spectrum: no complete segments")
	}
	inv := 1 / (float64(count) * gain)
	for k := range psd {
		psd[k] *= inv
		// One-sided convention: double the interior ordinates.
		if k != 0 && k != seg/2 {
			psd[k] *= 2
		}
	}
	return psd, nil
}
