package spectrum

import (
	"fmt"

	"robustperiod/internal/dsp/fft"
)

// FullRange mirrors a half-range periodogram (k = 0..N, where the
// underlying series has even length N' = 2N) back to all N' ordinates
// using the conjugate symmetry of real series: P[N'−k] = P[k].
// len(half) must be N+1 (it includes both DC and Nyquist).
func FullRange(half []float64) []float64 {
	n := len(half) - 1 // Nyquist index
	if n < 1 {
		out := make([]float64, len(half))
		copy(out, half)
		return out
	}
	full := make([]float64, 2*n)
	copy(full, half)
	for k := n + 1; k < 2*n; k++ {
		full[k] = half[2*n-k]
	}
	return full
}

// ACFFromPeriodogram converts a full-range periodogram of a zero-padded
// series (original length n, padded length len(full) = 2n) into the
// unbiased normalized autocorrelation function via the Wiener–Khinchin
// theorem (Eq. 13 of the paper, with the additional factor n that makes
// ACF(0) = 1):
//
//	p_t = IDFT{P}_t,   ACF(t) = n·p_t / ((n−t)·p_0),  t = 0..n−1.
//
// Because the series was zero-padded to twice its length, the circular
// autocovariance p_t equals the linear autocovariance, so the estimate
// is exact, robust (it inherits the robustness of the periodogram),
// and costs O(n log n).
func ACFFromPeriodogram(full []float64, n int) ([]float64, error) {
	if len(full) < 2*n {
		return nil, fmt.Errorf("spectrum: full periodogram length %d < 2n = %d", len(full), 2*n)
	}
	spec := make([]complex128, len(full))
	for i, v := range full {
		spec[i] = complex(v, 0)
	}
	p := fft.IFFTReal(spec)
	acf := make([]float64, n)
	p0 := p[0]
	if p0 == 0 {
		acf[0] = 1
		return acf, nil
	}
	for t := 0; t < n; t++ {
		acf[t] = float64(n) * p[t] / (float64(n-t) * p0)
	}
	return acf, nil
}

// HuberACF is the paper's robust autocorrelation: it builds the
// half-range Huber periodogram of the zero-padded series (robust
// ordinates on the whole usable band), mirrors it, and applies the
// Wiener–Khinchin inversion. x is the (already preprocessed) series of
// length n; it is zero-padded to 2n internally.
func HuberACF(x []float64, opts Options) ([]float64, error) {
	n := len(x)
	if n < 4 {
		return nil, fmt.Errorf("spectrum: series too short (%d)", n)
	}
	padded := make([]float64, 2*n)
	copy(padded, x)
	if opts.FitLength <= 0 {
		opts.FitLength = n
	}
	half, err := HybridPeriodogram(padded, 1, n-1, opts)
	if err != nil {
		return nil, err
	}
	return ACFFromPeriodogram(FullRange(half), n)
}

// DirectACF returns the unbiased normalized sample ACF computed
// directly in O(n²); used as the reference implementation and in the
// ablation benches.
func DirectACF(x []float64) []float64 {
	n := len(x)
	if n == 0 {
		return nil
	}
	mean := 0.0
	for _, v := range x {
		mean += v
	}
	mean /= float64(n)
	var c0 float64
	for _, v := range x {
		c0 += (v - mean) * (v - mean)
	}
	c0 /= float64(n)
	out := make([]float64, n)
	if c0 == 0 {
		out[0] = 1
		return out
	}
	for t := 0; t < n; t++ {
		var s float64
		for i := 0; i+t < n; i++ {
			s += (x[i] - mean) * (x[i+t] - mean)
		}
		out[t] = s / (float64(n-t) * c0)
	}
	return out
}

// NyquistOrdinate returns the classical periodogram value at the
// Nyquist frequency of an even-length series:
// P_N = (Σ_t (−1)^t x_t)² / N'.
func NyquistOrdinate(x []float64) float64 {
	var s float64
	sign := 1.0
	for _, v := range x {
		s += sign * v
		sign = -sign
	}
	return s * s / float64(len(x))
}
