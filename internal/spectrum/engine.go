package spectrum

// The staged solver engine behind MPeriodogram and HybridPeriodogram.
//
// The per-frequency robust harmonic regressions of Eq. 6 are an
// embarrassingly parallel loop whose per-iterate work is tiny, so the
// engine is organized around keeping that loop allocation-free and
// cache-resident:
//
//   - a trig plan cache keyed by (N, FitLength) precomputes the N-th
//     roots of unity once and shares them across every wavelet level
//     (each level solves a different band of the same padded grid);
//   - the band is carved into fixed 64-frequency chunks claimed off an
//     atomic cursor by a bounded pool of persistent workers, each
//     owning a private scratch arena (trig columns, ADMM state);
//   - within a chunk, each solve is warm-started from the previous
//     frequency's solution whenever that beats the cold OLS init —
//     neighbouring ordinates share most of their structure, so the
//     IRLS/ADMM iteration count collapses on smooth spectra.
//
// Chunk boundaries are a fixed grid relative to kLo and every warm
// chain resets at a chunk boundary, so the ordinates are bitwise
// identical no matter how many workers participate (or whether the
// caller asked for Parallel at all).

import (
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"robustperiod/internal/stat/dist"
	"robustperiod/internal/trace"
)

const (
	// solveChunk is the fixed work-unit width, in frequencies. Warm
	// chains run within a chunk and never across one, which pins the
	// results to the sequential ones regardless of scheduling.
	solveChunk = 64

	// maxPoolWorkers bounds the solver pool no matter how many CPUs
	// the host exposes; the per-frequency solves are memory-light, and
	// past this width the atomic cursor and shared caches dominate.
	maxPoolWorkers = 16

	// planCacheCap bounds the trig plan cache. The detect pipeline
	// uses one plan per padded length; a handful covers every caller
	// of a serving process, and eviction only costs a rebuild.
	planCacheCap = 8
)

// trigPlan holds the precomputed cos/sin table of the N-th roots of
// unity plus the per-plan Fisher critical-value cache. Frequency k's
// design columns are cos(2πkt/N), sin(2πkt/N): index k·t mod N into
// the table, so filling a column is two loads per sample instead of a
// math.Sincos call.
type trigPlan struct {
	n, m   int
	cosTab []float64
	sinTab []float64

	mu    sync.Mutex
	gcrit map[float64]float64 // alpha -> Fisher critical g for n/2 ordinates
}

func newTrigPlan(n, m int) *trigPlan {
	p := &trigPlan{
		n:      n,
		m:      m,
		cosTab: make([]float64, n),
		sinTab: make([]float64, n),
	}
	for j := 0; j < n; j++ {
		s, c := math.Sincos(2 * math.Pi * float64(j) / float64(n))
		p.cosTab[j] = c
		p.sinTab[j] = s
	}
	return p
}

// fill writes frequency k's design columns into cosB/sinB (len ≤ n).
// Index arithmetic stays exact (k·t mod n), which is slightly more
// accurate than accumulating the angle in floating point.
func (p *trigPlan) fill(cosB, sinB []float64, k int) {
	idx, n := 0, p.n
	for t := range cosB {
		cosB[t] = p.cosTab[idx]
		sinB[t] = p.sinTab[idx]
		idx += k
		if idx >= n {
			idx -= n
		}
	}
}

// fillDot is fill fused with the data cross-products Σx·cos, Σx·sin —
// the orthogonal-layout fast path consumes both, and one fused pass
// halves the memory traffic of the per-frequency setup.
func (p *trigPlan) fillDot(cosB, sinB, x []float64, k int) (sxc, sxs float64) {
	idx, n := 0, p.n
	for t := range cosB {
		c, s := p.cosTab[idx], p.sinTab[idx]
		cosB[t] = c
		sinB[t] = s
		sxc += x[t] * c
		sxs += x[t] * s
		idx += k
		if idx >= n {
			idx -= n
		}
	}
	return sxc, sxs
}

// fisherCritical returns (caching per plan) the Fisher g critical
// value at significance alpha for this plan's n/2 half-range
// ordinates — the prefilter's acceptance floor multiplier.
func (p *trigPlan) fisherCritical(alpha float64) float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	if g, ok := p.gcrit[alpha]; ok {
		return g
	}
	g := dist.FisherGCritical(alpha, p.n/2)
	if p.gcrit == nil {
		p.gcrit = make(map[float64]float64, 2)
	}
	p.gcrit[alpha] = g
	return g
}

type planKey struct{ n, m int }

var planCache struct {
	mu    sync.Mutex
	plans map[planKey]*trigPlan
}

// getPlan returns the cached plan for (n, m), building it on a miss.
func getPlan(n, m int) *trigPlan {
	key := planKey{n, m}
	planCache.mu.Lock()
	if p, ok := planCache.plans[key]; ok {
		planCache.mu.Unlock()
		return p
	}
	planCache.mu.Unlock()

	p := newTrigPlan(n, m)

	planCache.mu.Lock()
	defer planCache.mu.Unlock()
	if q, ok := planCache.plans[key]; ok {
		// Lost a build race; keep the first one so concurrent callers
		// share tables.
		return q
	}
	if planCache.plans == nil {
		planCache.plans = make(map[planKey]*trigPlan, planCacheCap)
	}
	if len(planCache.plans) >= planCacheCap {
		for k := range planCache.plans {
			delete(planCache.plans, k)
			break
		}
	}
	planCache.plans[key] = p
	return p
}

// scratch is one worker's private arena: the trig design columns plus
// the ADMM splitting state, sized once per job and reused across every
// frequency the worker solves. Nothing in the hot loop allocates.
type scratch struct {
	cos, sin []float64
	z, u     []float64
}

func (s *scratch) ensure(m int, admm bool) {
	if cap(s.cos) < m {
		s.cos = make([]float64, m)
		s.sin = make([]float64, m)
	}
	s.cos, s.sin = s.cos[:m], s.sin[:m]
	if admm {
		if cap(s.z) < m {
			s.z = make([]float64, m)
			s.u = make([]float64, m)
		}
		s.z, s.u = s.z[:m], s.u[:m]
	}
}

// scratchPool recycles submitter-side arenas across calls; the pool
// daemons own a long-lived arena each.
var scratchPool = sync.Pool{New: func() any { return new(scratch) }}

// solverPool is the process-wide bounded worker pool. Daemons start
// lazily on the first parallel band and then live for the process —
// per-call goroutine fan-out (and its allocation churn) is gone, and
// concurrency is bounded globally rather than per call, so nested
// parallelism (per-level fan × per-band fan) cannot oversubscribe.
var solverPool struct {
	once    sync.Once
	workers int
	jobs    chan *bandJob
}

func poolWorkers() int {
	solverPool.once.Do(func() {
		w := runtime.GOMAXPROCS(0)
		if w > maxPoolWorkers {
			w = maxPoolWorkers
		}
		solverPool.workers = w
		if w < 2 {
			return // submitters run inline; no daemons needed
		}
		solverPool.jobs = make(chan *bandJob, w)
		for i := 0; i < w; i++ {
			go func() {
				sc := new(scratch)
				for job := range solverPool.jobs {
					job.run(sc)
					job.wg.Done()
				}
			}()
		}
	})
	return solverPool.workers
}

// bandJob is one band solve: the shared inputs plus the atomic chunk
// cursor the workers claim work from.
type bandJob struct {
	fit      []float64
	kLo, kHi int
	plan     *trigPlan
	scale    float64
	opts     Options
	done     <-chan struct{}

	// skip/cheap, when non-nil, carry the prefilter verdicts: skip[i]
	// means frequency kLo+i is certified below the Fisher floor and
	// out[i] takes the cheap ordinate instead of an exact solve.
	skip  []bool
	cheap []float64

	out      []float64
	nChunks  int
	cursor   atomic.Int64
	iters    atomic.Int64
	warmHits atomic.Int64
	wg       sync.WaitGroup
}

// execute runs the job to completion: the caller always participates,
// and when Parallel is set, idle pool daemons are enlisted with a
// non-blocking submit (a busy pool just means the caller does the work
// itself — never a deadlock, even from inside another parallel job).
func (j *bandJob) execute() {
	j.nChunks = (j.kHi - j.kLo + solveChunk) / solveChunk
	if j.opts.Parallel && j.nChunks > 1 && poolWorkers() > 1 {
		helpers := j.nChunks - 1
		if helpers > solverPool.workers {
			helpers = solverPool.workers
		}
		for i := 0; i < helpers; i++ {
			j.wg.Add(1)
			select {
			case solverPool.jobs <- j:
			default:
				j.wg.Done()
				i = helpers
			}
		}
	}
	sc := scratchPool.Get().(*scratch)
	j.run(sc)
	scratchPool.Put(sc)
	j.wg.Wait()
}

// run claims chunks off the cursor until the band is exhausted,
// merging this worker's iteration tallies into the job once at exit.
func (j *bandJob) run(sc *scratch) {
	sc.ensure(len(j.fit), j.opts.Solver == SolverADMM)
	var iters, warm int64
	for {
		c := int(j.cursor.Add(1)) - 1
		if c >= j.nChunks || cancelled(j.done) {
			break
		}
		j.runChunk(c, sc, &iters, &warm)
	}
	if iters != 0 {
		j.iters.Add(iters)
	}
	if warm != 0 {
		j.warmHits.Add(warm)
	}
}

// warmAttemptIters and warmMaxLosses gate the warm-start objective
// comparison, which costs one extra fused pass over the fit. It is
// attempted only where it can plausibly win: after a neighbouring
// solve that needed at least warmAttemptIters iterations (in easy
// neighbourhoods the OLS start is already near-optimal on the
// orthogonal layout — it IS the L2 optimum — and converges in a
// couple of iterations, so a comparison pass there is pure loss),
// and only while attempts keep paying off — after warmMaxLosses
// consecutive comparisons where the cold start won, the chunk stops
// attempting until a win resets the streak. On clean spectra that
// caps the overhead at two wasted passes per chunk; in hard,
// outlier-dominated neighbourhoods — where the robust neighbour
// iterate beats the outlier-corrupted OLS start — the streak stays
// alive and warm starts keep flowing. Both gates depend only on the
// deterministic within-chunk chain, never on scheduling.
const (
	warmAttemptIters = 3
	warmMaxLosses    = 2
)

func (j *bandJob) runChunk(c int, sc *scratch, iters, warm *int64) {
	kStart := j.kLo + c*solveChunk
	kEnd := kStart + solveChunk - 1
	if kEnd > j.kHi {
		kEnd = j.kHi
	}
	cosB, sinB := sc.cos, sc.sin
	// The orthogonal fast path: on the padded detect layout (N = 2m,
	// integer k) the design columns over t < m sweep whole half-cycles,
	// so the Gram matrix is exactly (m/2)·I and both the OLS init and
	// each Huber IRLS step reduce to base sums plus outlier-only
	// corrections (see solveIRLSOrthoHuber).
	ortho := 2*len(j.fit) == j.plan.n && j.opts.Solver == SolverIRLS && j.opts.Loss == LossHuber
	halfM := float64(len(j.fit)) / 2
	// The warm chain: (wa, wb) is the previous exact solution in this
	// chunk. It resets here, at the chunk boundary, so results never
	// depend on which worker solved the neighbouring chunk.
	warmOK := false
	prevIt := 0
	losses := 0
	var wa, wb float64
	for k := kStart; k <= kEnd; k++ {
		if cancelled(j.done) {
			return
		}
		i := k - j.kLo
		if j.skip != nil && j.skip[i] {
			j.out[i] = j.cheap[i]
			continue
		}
		var a0, b0, sxc, sxs float64
		if ortho {
			sxc, sxs = j.plan.fillDot(cosB, sinB, j.fit, k)
			a0, b0 = sxc/halfM, sxs/halfM
		} else {
			j.plan.fill(cosB, sinB, k)
			a0, b0 = olsInit(j.fit, cosB, sinB)
		}
		warmed := false
		if warmOK && prevIt >= warmAttemptIters && losses < warmMaxLosses &&
			!j.opts.NoWarmStart && j.opts.Loss != LossL2 {
			// Take the warm start only when it is already the better
			// iterate: IRLS/ADMM are descent schemes from any init, so
			// this can only reduce work, never change the optimum.
			ow, oc := objective2(j.fit, cosB, sinB, wa, wb, a0, b0, j.opts)
			if ow < oc {
				a0, b0 = wa, wb
				warmed = true
				losses = 0
			} else {
				losses++
			}
		}
		var a, b float64
		var it int
		switch {
		case j.opts.Solver == SolverADMM:
			a, b, it = solveADMMFrom(j.fit, cosB, sinB, a0, b0, sc.z, sc.u, j.opts, j.done)
		case ortho:
			a, b, it = solveIRLSOrthoHuber(j.fit, cosB, sinB, a0, b0, sxc, sxs, j.opts, j.done)
		default:
			a, b, it = solveIRLSFrom(j.fit, cosB, sinB, a0, b0, j.opts, j.done)
		}
		*iters += int64(it)
		if warmed {
			*warm++
		}
		wa, wb, warmOK, prevIt = a, b, true, it
		j.out[i] = j.scale * (a*a + b*b)
	}
}

// solveIRLSOrthoHuber is the Huber IRLS step specialized to the
// exactly orthogonal padded layout. Each reweighted normal-equation
// system is the closed-form unweighted one ((m/2)·I Gram, the fused
// cross-products sxc/sxs) minus corrections from the samples the
// Huber weight actually downweights (|r| > ζ); in-threshold samples —
// the vast majority on real data — cost two multiplies instead of
// nine.
func solveIRLSOrthoHuber(x, cosB, sinB []float64, a0, b0, sxc, sxs float64, opts Options, done <-chan struct{}) (a, b float64, iters int) {
	a, b = a0, b0
	halfM := float64(len(x)) / 2
	zeta := opts.Zeta
	for iter := 0; iter < opts.MaxIter; iter++ {
		if cancelled(done) {
			return a, b, iters
		}
		iters++
		var ccc, css, ccs, cxc, cxs float64
		for t := range x {
			c, s := cosB[t], sinB[t]
			r := a*c + b*s - x[t]
			if r < 0 {
				r = -r
			}
			if r > zeta {
				dw := 1 - zeta/r
				ccc += dw * c * c
				css += dw * s * s
				ccs += dw * c * s
				cxc += dw * x[t] * c
				cxs += dw * x[t] * s
			}
		}
		scc := halfM - ccc
		sss := halfM - css
		scs := -ccs
		wxc := sxc - cxc
		wxs := sxs - cxs
		det := scc*sss - scs*scs
		if det == 0 || math.IsNaN(det) {
			return a, b, iters
		}
		na := (wxc*sss - wxs*scs) / det
		nb := (wxs*scc - wxc*scs) / det
		da, db := na-a, nb-b
		a, b = na, nb
		if da*da+db*db <= opts.Tol*opts.Tol*(a*a+b*b+1e-12) {
			break
		}
	}
	return a, b, iters
}

// objective2 evaluates the M-estimation loss Σ γ(a·cos + b·sin − x)
// at two candidate iterates in one fused pass — used to decide
// whether the warm start beats the cold OLS init.
func objective2(x, cosB, sinB []float64, a1, b1, a2, b2 float64, opts Options) (o1, o2 float64) {
	if opts.Loss == LossLAD {
		for t := range x {
			c, s, v := cosB[t], sinB[t], x[t]
			o1 += math.Abs(a1*c + b1*s - v)
			o2 += math.Abs(a2*c + b2*s - v)
		}
		return o1, o2
	}
	zeta := opts.Zeta
	for t := range x {
		c, s, v := cosB[t], sinB[t], x[t]
		r := a1*c + b1*s - v
		if r < 0 {
			r = -r
		}
		if r <= zeta {
			o1 += 0.5 * r * r
		} else {
			o1 += zeta * (r - 0.5*zeta)
		}
		r = a2*c + b2*s - v
		if r < 0 {
			r = -r
		}
		if r <= zeta {
			o2 += 0.5 * r * r
		} else {
			o2 += zeta * (r - 0.5*zeta)
		}
	}
	return o1, o2
}

// solveBand runs the staged engine over [kLo, kHi] and reports the
// trace counters once per call. opts must already carry defaults; pre
// may be nil (exact solve everywhere).
func solveBand(x []float64, kLo, kHi int, opts Options, pre *prefilterResult) ([]float64, error) {
	n := len(x)
	m := opts.FitLength
	j := &bandJob{
		fit:   x[:m],
		kLo:   kLo,
		kHi:   kHi,
		plan:  getPlan(n, m),
		scale: float64(m) * float64(m) / (4 * float64(n)),
		opts:  opts,
		done:  ctxDone(opts.Ctx),
		out:   make([]float64, kHi-kLo+1),
	}
	if pre != nil {
		j.skip, j.cheap = pre.skip, pre.cheap
	}
	j.execute()
	if err := ctxErr(opts.Ctx); err != nil {
		return nil, err
	}
	opts.Trace.Count(trace.StagePeriodogram, trace.CounterSolverIters, j.iters.Load())
	opts.Trace.Count(trace.StagePeriodogram, trace.CounterSolverWarmHits, j.warmHits.Load())
	if pre != nil {
		opts.Trace.Count(trace.StagePeriodogram, trace.CounterPrefilterSkips, int64(pre.skips))
	}
	return j.out, checkOrdinates(j.out, kLo)
}
