package trace

import (
	"sync"
	"testing"
	"time"
)

// TestNilTraceAllocatesNothing pins the zero-cost contract of the
// disabled path: threading a nil *Trace through the pipeline must not
// allocate (and in particular must not read the clock or the runtime
// metrics), so production code can call it unconditionally.
func TestNilTraceAllocatesNothing(t *testing.T) {
	var tr *Trace
	allocs := testing.AllocsPerRun(200, func() {
		st := tr.StartStage(StagePeriodogram)
		tr.Count(StagePeriodogram, "solver_iters", 17)
		tr.CountBool(StageValidation, true, "accepted", "rejected")
		tr.RecordLevel(LevelOutcome{Level: 3})
		st.End()
	})
	if allocs != 0 {
		t.Fatalf("nil-trace path allocated %.1f objects per run, want 0", allocs)
	}
	if tr.Enabled() {
		t.Fatal("nil trace reports Enabled")
	}
	if s := tr.Summary(); len(s.Stages) != 0 || len(s.Levels) != 0 || s.Total != 0 {
		t.Fatalf("nil trace summary not zero: %+v", s)
	}
}

// TestStageMerging checks that repeated sections of the same stage
// merge into one Stage entry, preserving first-start order across
// stages.
func TestStageMerging(t *testing.T) {
	tr := New()
	for i := 0; i < 3; i++ {
		st := tr.StartStage(StagePeriodogram)
		time.Sleep(time.Millisecond)
		st.End()
	}
	st := tr.StartStage(StageValidation)
	st.End()
	tr.Count(StagePeriodogram, "solver_iters", 5)
	tr.Count(StagePeriodogram, "solver_iters", 7)

	s := tr.Summary()
	if len(s.Stages) != 2 {
		t.Fatalf("want 2 merged stages, got %d: %+v", len(s.Stages), s.Stages)
	}
	if s.Stages[0].Name != StagePeriodogram || s.Stages[1].Name != StageValidation {
		t.Fatalf("stage order not preserved: %+v", s.Stages)
	}
	p := s.Stage(StagePeriodogram)
	if p.Calls != 3 {
		t.Fatalf("want 3 merged calls, got %d", p.Calls)
	}
	if p.Duration < 3*time.Millisecond {
		t.Fatalf("merged duration %v shorter than slept time", p.Duration)
	}
	if p.Counters["solver_iters"] != 12 {
		t.Fatalf("counter not accumulated: %v", p.Counters)
	}
	if s.Stage("nonexistent") != nil {
		t.Fatal("lookup of unknown stage should be nil")
	}
	if s.Total <= 0 {
		t.Fatalf("total %v not positive", s.Total)
	}
}

// TestAllocationCounting checks the per-stage allocation delta sees
// work done inside the section.
func TestAllocationCounting(t *testing.T) {
	tr := New()
	st := tr.StartStage(StageMODWT)
	sink = make([]float64, 4096)
	for i := 0; i < 64; i++ {
		sink = append([]float64(nil), sink...)
	}
	st.End()
	s := tr.Summary()
	if got := s.Stage(StageMODWT).Allocs; got < 32 {
		t.Fatalf("alloc counter saw only %d objects for ~65 slice allocations", got)
	}
}

var sink []float64

// TestConcurrentRecording exercises the mutex paths under the race
// detector: per-level detections record stages and levels from many
// goroutines at once.
func TestConcurrentRecording(t *testing.T) {
	tr := New()
	var wg sync.WaitGroup
	const workers = 16
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			st := tr.StartStage(StagePeriodogram)
			tr.Count(StagePeriodogram, "solver_iters", 10)
			tr.RecordLevel(LevelOutcome{Level: w + 1})
			st.End()
		}()
	}
	wg.Wait()
	s := tr.Summary()
	p := s.Stage(StagePeriodogram)
	if p == nil || p.Calls != workers {
		t.Fatalf("want %d merged calls, got %+v", workers, p)
	}
	if p.Counters["solver_iters"] != 10*workers {
		t.Fatalf("counter %d, want %d", p.Counters["solver_iters"], 10*workers)
	}
	if len(s.Levels) != workers {
		t.Fatalf("want %d level outcomes, got %d", workers, len(s.Levels))
	}
}

// TestSummaryIsSnapshot checks mutating the trace after Summary does
// not alias into the snapshot.
func TestSummaryIsSnapshot(t *testing.T) {
	tr := New()
	tr.Count(StageHPFilter, "irls_iters", 1)
	s := tr.Summary()
	tr.Count(StageHPFilter, "irls_iters", 100)
	tr.RecordLevel(LevelOutcome{Level: 1})
	if s.Stage(StageHPFilter).Counters["irls_iters"] != 1 {
		t.Fatal("summary counters alias the live trace")
	}
	if len(s.Levels) != 0 {
		t.Fatal("summary levels alias the live trace")
	}
}

// TestPipelineStages pins the canonical stage list the serve layer
// keys its histograms on.
func TestPipelineStages(t *testing.T) {
	want := []string{StageHPFilter, StageMODWT, StageRanking, StagePeriodogram, StageValidation}
	got := PipelineStages()
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("stage %d = %q, want %q", i, got[i], want[i])
		}
	}
}
