// Package trace is the observability layer of the detection pipeline:
// a Trace value injected through core.Options (and from there into the
// wavelet, spectrum and detect stages) accumulates per-stage wall
// time, heap-allocation counts and stage-specific diagnostic counters
// (HP-filter IRLS iterations, MODWT boundary coefficients, solver
// iteration totals, Fisher/ACF verdicts).
//
// Every method is nil-safe and the nil path is allocation-free, so a
// *Trace can be threaded unconditionally through hot code: callers
// that do not want tracing pass nil and pay only a pointer comparison.
// Same-named stages recorded from concurrent goroutines (the
// per-level detections) merge into one accumulator, so a Summary
// reports each pipeline stage exactly once.
package trace

import (
	"runtime/metrics"
	"sync"
	"time"

	"robustperiod/internal/registry"
)

// Canonical stage names of the RobustPeriod pipeline (Fig. 1 of the
// paper), in execution order, aliased from internal/registry (the
// single source of truth rplint checks call sites against).
const (
	StageHPFilter    = registry.StageHPFilter    // HP detrending + winsorized normalization
	StageMODWT       = registry.StageMODWT       // maximal overlap DWT decomposition
	StageRanking     = registry.StageRanking     // robust wavelet-variance level ranking
	StagePeriodogram = registry.StagePeriodogram // Huber-periodogram + Fisher test (per level)
	StageValidation  = registry.StageValidation  // Huber-ACF validation + refinement
)

// PipelineStages lists the canonical stages in pipeline order; the
// serve layer uses it to pre-register one latency histogram per stage.
func PipelineStages() []string { return registry.TraceStages() }

// Canonical per-stage counter names, aliased from internal/registry.
// The periodogram solver engine reports its staged-solve diagnostics
// under these keys (see README "Periodogram performance").
const (
	CounterSolverIters    = registry.CounterSolverIters    // IRLS/ADMM iterations, summed over solves
	CounterSolverWarmHits = registry.CounterSolverWarmHits // warm starts that beat the cold OLS init
	CounterPrefilterSkips = registry.CounterPrefilterSkips // frequencies certified below the Fisher floor
)

// Stage is one merged stage accumulator of a Summary.
type Stage struct {
	// Name identifies the stage (one of the Stage* constants, or any
	// caller-chosen label).
	Name string
	// Calls is how many timed sections were merged into this stage
	// (e.g. one periodogram call per selected wavelet level).
	Calls int64
	// Duration is the summed wall time of all merged sections. For
	// sections that ran concurrently this can exceed elapsed time.
	Duration time.Duration
	// Allocs is the summed heap-object allocation delta observed over
	// the sections. The counter is process-wide, so concurrent
	// activity in other goroutines is attributed to whichever stages
	// were open — treat it as an indicator, not an exact account.
	Allocs uint64
	// Counters holds stage-specific diagnostics, e.g. "irls_iters",
	// "boundary_dropped", "fisher_pass".
	Counters map[string]int64
}

// LevelOutcome records the verdict trail of one wavelet level — the
// paper's Fig. 5 row, condensed for machine consumption.
type LevelOutcome struct {
	Level    int     // 1-based MODWT level
	Variance float64 // robust unbiased wavelet variance
	Boundary int     // boundary coefficients excluded from the variance
	Selected bool    // ranked into the dominating-energy set
	Fisher   bool    // Fisher g-test significant
	Periodic bool    // final per-level verdict (Fisher + ACF validation)
	Period   int     // validated period (0 when not periodic)
}

// Summary is the finished, copyable view of a Trace.
type Summary struct {
	// Total is the wall time from New to the Summary call.
	Total time.Duration
	// Stages lists every recorded stage in first-start order.
	Stages []Stage
	// Levels lists per-wavelet-level outcomes in recording order.
	Levels []LevelOutcome
}

// Stage returns the stage with the given name, or nil.
func (s *Summary) Stage(name string) *Stage {
	for i := range s.Stages {
		if s.Stages[i].Name == name {
			return &s.Stages[i]
		}
	}
	return nil
}

// stageAcc is the internal mutable accumulator behind one Stage.
type stageAcc struct {
	calls    int64
	duration time.Duration
	allocs   uint64
	counters map[string]int64
}

// Trace accumulates pipeline diagnostics. The zero value is not
// usable; create with New. All methods are safe for concurrent use
// and safe on a nil receiver (where they do nothing).
type Trace struct {
	mu     sync.Mutex
	start  time.Time
	order  []string
	stages map[string]*stageAcc
	levels []LevelOutcome

	// Span recording attached by the serving layer (AttachSpans); when
	// non-nil every closed stage section is also emitted as a span
	// parented under recParent. Nil on unsampled requests — the stage
	// path then costs exactly what it did before spans existed.
	rec       *Recording
	recParent SpanID
}

// New returns an empty Trace; its Total clock starts now.
func New() *Trace {
	return &Trace{start: time.Now(), stages: make(map[string]*stageAcc)}
}

// Enabled reports whether the trace records anything (i.e. is
// non-nil); useful to skip building expensive diagnostic values.
func (t *Trace) Enabled() bool { return t != nil }

// StageTimer is an open timed section returned by StartStage. It is a
// plain value (never heap-allocated); call End exactly once.
type StageTimer struct {
	t      *Trace
	name   string
	start  time.Time
	allocs uint64
}

// StartStage opens a timed section for the named stage. On a nil
// Trace it returns an inert timer and performs no work at all — no
// clock read, no allocation.
func (t *Trace) StartStage(name string) StageTimer {
	if t == nil {
		return StageTimer{}
	}
	return StageTimer{t: t, name: name, start: time.Now(), allocs: heapAllocs()}
}

// End closes the section, merging its wall time and allocation delta
// into the stage's accumulator. End on an inert timer is a no-op.
func (s StageTimer) End() {
	if s.t == nil {
		return
	}
	s.t.record(s.name, s.start, time.Since(s.start), heapAllocs()-s.allocs)
}

func (t *Trace) record(name string, start time.Time, d time.Duration, allocs uint64) {
	t.mu.Lock()
	acc := t.acc(name)
	acc.calls++
	acc.duration += d
	acc.allocs += allocs
	rec, parent := t.rec, t.recParent
	t.mu.Unlock()
	// Span emission happens outside t.mu (the recording has its own
	// lock) so concurrent per-level sections never pile up on the
	// trace mutex waiting for span bookkeeping.
	rec.AddSpan(name, parent, start, d)
}

// acc returns (creating if needed) the accumulator for name.
// Caller holds t.mu.
func (t *Trace) acc(name string) *stageAcc {
	acc, ok := t.stages[name]
	if !ok {
		acc = &stageAcc{}
		t.stages[name] = acc
		t.order = append(t.order, name)
	}
	return acc
}

// Count adds n to the named diagnostic counter of a stage. The stage
// is created if no timed section has touched it yet.
func (t *Trace) Count(stage, key string, n int64) {
	if t == nil || n == 0 {
		return
	}
	t.mu.Lock()
	//lint:ignore rplint/hotalloc t.acc allocates the stage accumulator once on first touch; steady-state Count — what the AllocsPerRun pin measures — reuses it
	acc := t.acc(stage)
	if acc.counters == nil {
		//lint:ignore rplint/hotalloc the counter map is created once per stage on first touch; steady-state Count is map-assign only
		acc.counters = make(map[string]int64)
	}
	acc.counters[key] += n
	t.mu.Unlock()
}

// CountBool bumps trueKey or falseKey by one depending on v —
// convenience for accept/reject tallies.
func (t *Trace) CountBool(stage string, v bool, trueKey, falseKey string) {
	if t == nil {
		return
	}
	key := falseKey
	if v {
		key = trueKey
	}
	//lint:ignore rplint/registry CountBool forwards its stage argument to Count; call sites pass registry constants and are checked there
	t.Count(stage, key, 1)
}

// RecordLevel appends one wavelet level's outcome.
func (t *Trace) RecordLevel(l LevelOutcome) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.levels = append(t.levels, l)
	t.mu.Unlock()
}

// Summary snapshots the trace. The receiver stays usable (a second
// detection can keep accumulating); a nil Trace yields a zero
// Summary.
func (t *Trace) Summary() Summary {
	if t == nil {
		return Summary{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	s := Summary{Total: time.Since(t.start)}
	s.Stages = make([]Stage, 0, len(t.order))
	for _, name := range t.order {
		acc := t.stages[name]
		st := Stage{
			Name:     name,
			Calls:    acc.calls,
			Duration: acc.duration,
			Allocs:   acc.allocs,
		}
		if len(acc.counters) > 0 {
			st.Counters = make(map[string]int64, len(acc.counters))
			for k, v := range acc.counters {
				st.Counters[k] = v
			}
		}
		s.Stages = append(s.Stages, st)
	}
	if len(t.levels) > 0 {
		s.Levels = append([]LevelOutcome(nil), t.levels...)
	}
	return s
}

// allocSamplePool recycles the one-element metrics sample slice so
// reading the allocation counter does not itself allocate per stage.
var allocSamplePool = sync.Pool{
	New: func() any {
		s := make([]metrics.Sample, 1)
		s[0].Name = "/gc/heap/allocs:objects"
		return &s
	},
}

// heapAllocs returns the process-wide cumulative count of allocated
// heap objects (runtime/metrics; cheap, no stop-the-world).
func heapAllocs() uint64 {
	sp := allocSamplePool.Get().(*[]metrics.Sample)
	metrics.Read(*sp)
	v := (*sp)[0].Value.Uint64()
	allocSamplePool.Put(sp)
	return v
}
