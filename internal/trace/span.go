// Span tracing: the correlation layer over the per-stage accumulators.
// A Recording collects the span tree of one request — admission to
// response, queue wait, every pipeline stage, WAL syscalls — under a
// W3C trace context ingested from an incoming `traceparent` header or
// minted at admission. Like the rest of the package every method is
// nil-safe and the nil (sampled-out) path is allocation-free, so span
// plumbing can be threaded unconditionally through hot code.
package trace

import (
	"encoding/binary"
	"encoding/hex"
	"sync"
	"time"
)

// SpanID is an 8-byte span identifier, rendered as 16 lowercase hex
// characters in the `traceparent` header.
type SpanID [8]byte

// IsZero reports whether the span ID is unset. The all-zero ID is
// invalid on the wire (W3C trace context §3.2.2.8).
func (id SpanID) IsZero() bool { return id == SpanID{} }

// String renders the span ID as 16 hex characters.
func (id SpanID) String() string {
	var b [16]byte
	hex.Encode(b[:], id[:])
	return string(b[:])
}

// SpanContext is the W3C trace-context triple a request carries: the
// 16-byte trace ID shared by every span of the trace, the current
// span ID, and the sampled flag (bit 0 of trace-flags).
type SpanContext struct {
	TraceID [16]byte
	SpanID  SpanID
	Sampled bool
}

// IsZero reports whether the context is unset.
func (sc SpanContext) IsZero() bool { return sc.TraceID == [16]byte{} }

// TraceIDString renders the trace ID as 32 hex characters.
func (sc SpanContext) TraceIDString() string {
	var b [32]byte
	hex.Encode(b[:], sc.TraceID[:])
	return string(b[:])
}

// Traceparent renders the context in the W3C wire form
// `00-<trace-id>-<span-id>-<flags>`.
func (sc SpanContext) Traceparent() string {
	var b [55]byte
	return string(sc.appendTraceparent(b[:0]))
}

func (sc SpanContext) appendTraceparent(dst []byte) []byte {
	dst = append(dst, '0', '0', '-')
	var tb [32]byte
	hex.Encode(tb[:], sc.TraceID[:])
	dst = append(dst, tb[:]...)
	dst = append(dst, '-')
	var sb [16]byte
	hex.Encode(sb[:], sc.SpanID[:])
	dst = append(dst, sb[:]...)
	if sc.Sampled {
		return append(dst, '-', '0', '1')
	}
	return append(dst, '-', '0', '0')
}

// ParseTraceparent decodes a W3C `traceparent` header value. Only
// version 00 is accepted; the all-zero trace ID and span ID are
// rejected per spec, so a false return means "mint a fresh context".
// Allocation-free.
func ParseTraceparent(s string) (SpanContext, bool) {
	var sc SpanContext
	if len(s) != 55 || s[0] != '0' || s[1] != '0' ||
		s[2] != '-' || s[35] != '-' || s[52] != '-' {
		return SpanContext{}, false
	}
	if !hexDecode(sc.TraceID[:], s[3:35]) || !hexDecode(sc.SpanID[:], s[36:52]) {
		return SpanContext{}, false
	}
	if sc.TraceID == [16]byte{} || sc.SpanID.IsZero() {
		return SpanContext{}, false
	}
	f1, ok1 := hexNibble(s[53])
	f2, ok2 := hexNibble(s[54])
	if !ok1 || !ok2 {
		return SpanContext{}, false
	}
	sc.Sampled = (f1<<4|f2)&0x01 != 0
	return sc, true
}

// hexDecode fills dst from the lowercase/uppercase hex string src
// without allocating (hex.Decode needs a []byte and string conversion
// would allocate on this per-request path).
func hexDecode(dst []byte, src string) bool {
	for i := range dst {
		hi, ok1 := hexNibble(src[2*i])
		lo, ok2 := hexNibble(src[2*i+1])
		if !ok1 || !ok2 {
			return false
		}
		dst[i] = hi<<4 | lo
	}
	return true
}

func hexNibble(c byte) (byte, bool) {
	switch {
	case '0' <= c && c <= '9':
		return c - '0', true
	case 'a' <= c && c <= 'f':
		return c - 'a' + 10, true
	case 'A' <= c && c <= 'F':
		return c - 'A' + 10, true
	}
	return 0, false
}

// Attr is one span attribute. Values are pre-rendered strings: spans
// are cold storage for the debug endpoints, not a typed data model.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// Span is one finished timed operation of a trace: a pipeline stage,
// the queue wait, a WAL fsync, the request root. Parent is the zero
// SpanID for the trace root (or when the root continues a remote
// trace, the remote caller's span).
type Span struct {
	Name     string
	ID       SpanID
	Parent   SpanID
	Start    time.Time
	Duration time.Duration
	Attrs    []Attr
}

// Recording collects the spans of one sampled request under a shared
// trace context. The per-request span count is bounded; past the
// bound spans are counted as dropped rather than retained, so a
// pathological request cannot balloon the trace store. All methods
// are safe for concurrent use and nil-safe, and every nil-receiver
// path is allocation-free — an unsampled request carries a nil
// *Recording everywhere and pays only pointer comparisons.
type Recording struct {
	tc SpanContext

	mu      sync.Mutex
	ctr     uint64
	spans   []Span
	limit   int
	dropped int
}

// DefaultSpanLimit bounds the spans retained per recording unless the
// caller chooses otherwise.
const DefaultSpanLimit = 128

// NewRecording opens a span recording under tc; tc.SpanID is the root
// span every top-level child should use as Parent. limit <= 0 selects
// DefaultSpanLimit.
func NewRecording(tc SpanContext, limit int) *Recording {
	if limit <= 0 {
		limit = DefaultSpanLimit
	}
	return &Recording{tc: tc, limit: limit}
}

// Context returns the recording's trace context (zero for nil).
func (r *Recording) Context() SpanContext {
	if r == nil {
		return SpanContext{}
	}
	return r.tc
}

// AddSpan appends one finished span, minting its ID. Returns the span
// ID so callers can parent further spans under it; the zero SpanID on
// a nil recording or when the span was dropped by the bound.
func (r *Recording) AddSpan(name string, parent SpanID, start time.Time, d time.Duration, attrs ...Attr) SpanID {
	if r == nil {
		return SpanID{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.spans) >= r.limit {
		r.dropped++
		return SpanID{}
	}
	id := r.nextSpanIDLocked()
	r.spans = append(r.spans, Span{
		Name: name, ID: id, Parent: parent,
		Start: start, Duration: d, Attrs: attrs,
	})
	return id
}

// FinishRoot appends the trace's root span — the one whose ID the
// recording's own SpanContext (and the echoed `traceparent` header)
// carries. parent is the remote caller's span when the trace was
// ingested from an incoming header, or the zero SpanID for a trace
// minted at admission. The root is exempt from the span bound: a
// trace without its root is unreadable.
func (r *Recording) FinishRoot(name string, parent SpanID, start time.Time, d time.Duration, attrs ...Attr) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.spans = append(r.spans, Span{
		Name: name, ID: r.tc.SpanID, Parent: parent,
		Start: start, Duration: d, Attrs: attrs,
	})
}

// Annotate attaches attributes to an already-recorded span (matched
// by ID). Used for facts learned after the span closed, e.g. the
// outcome of a coalesced flight.
func (r *Recording) Annotate(id SpanID, attrs ...Attr) {
	if r == nil || id.IsZero() {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := range r.spans {
		if r.spans[i].ID == id {
			r.spans[i].Attrs = append(r.spans[i].Attrs, attrs...)
			return
		}
	}
}

// nextSpanIDLocked mints a span ID unique within the recording: a
// splitmix64 mix of the trace ID and a counter. Caller holds r.mu.
func (r *Recording) nextSpanIDLocked() SpanID {
	hi := binary.BigEndian.Uint64(r.tc.TraceID[:8])
	for {
		r.ctr++
		v := splitmix64(hi + r.ctr)
		if v == 0 {
			continue
		}
		var id SpanID
		binary.BigEndian.PutUint64(id[:], v)
		if id != r.tc.SpanID {
			return id
		}
	}
}

// splitmix64 is a bijection on uint64 (Steele et al.), also used by
// the obs ID generator; duplicated here so trace keeps its single
// registry-only import edge.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Spans snapshots the recorded spans in recording order.
func (r *Recording) Spans() []Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Span(nil), r.spans...)
}

// Dropped reports how many spans the bound discarded.
func (r *Recording) Dropped() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// Len reports the retained span count.
func (r *Recording) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.spans)
}

// AttachSpans connects the trace's stage accumulators to a span
// recording: every timed section closed after this call is also
// emitted as a span parented under parent. A nil Trace or nil
// Recording keeps the path inert. The pipeline itself never calls
// this — the serving layer attaches the recording it minted at
// admission, and the core/spectrum stage timers gain spans with zero
// changes at their call sites.
func (t *Trace) AttachSpans(r *Recording, parent SpanID) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.rec = r
	t.recParent = parent
	t.mu.Unlock()
}
