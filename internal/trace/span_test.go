package trace

import (
	"strings"
	"testing"
	"time"

	"robustperiod/internal/registry"
)

func testContext() SpanContext {
	var sc SpanContext
	for i := range sc.TraceID {
		sc.TraceID[i] = byte(i + 1)
	}
	for i := range sc.SpanID {
		sc.SpanID[i] = byte(0xa0 + i)
	}
	sc.Sampled = true
	return sc
}

// TestTraceparentRoundTrip pins the W3C wire form both ways.
func TestTraceparentRoundTrip(t *testing.T) {
	sc := testContext()
	tp := sc.Traceparent()
	if len(tp) != 55 || !strings.HasPrefix(tp, "00-") || !strings.HasSuffix(tp, "-01") {
		t.Fatalf("traceparent wire form wrong: %q", tp)
	}
	got, ok := ParseTraceparent(tp)
	if !ok || got != sc {
		t.Fatalf("round trip: got %+v ok=%v, want %+v", got, ok, sc)
	}

	sc.Sampled = false
	got, ok = ParseTraceparent(sc.Traceparent())
	if !ok || got.Sampled {
		t.Fatalf("unsampled flag lost: %+v ok=%v", got, ok)
	}

	// Uppercase hex is legal on ingest.
	up := strings.ToUpper(tp[3:35])
	got, ok = ParseTraceparent(tp[:3] + up + tp[35:])
	if !ok || got.TraceID != testContext().TraceID {
		t.Fatal("uppercase trace ID rejected")
	}
}

// TestTraceparentRejectsMalformed enumerates the reject cases that
// must all fall back to minting a fresh context.
func TestTraceparentRejectsMalformed(t *testing.T) {
	good := testContext().Traceparent()
	bad := []string{
		"",
		good[:54],       // truncated
		good + "0",      // trailing junk
		"01" + good[2:], // unknown version
		strings.Replace(good, "-", "_", 1),
		good[:3] + strings.Repeat("0", 32) + good[35:],  // zero trace ID
		good[:36] + strings.Repeat("0", 16) + good[52:], // zero span ID
		good[:3] + "zz" + good[5:],                      // non-hex
		good[:53] + "zz",                                // non-hex flags
	}
	for _, s := range bad {
		if _, ok := ParseTraceparent(s); ok {
			t.Errorf("ParseTraceparent(%q) accepted, want reject", s)
		}
	}
}

// TestRecordingSpans covers span minting, parenting, attributes,
// annotation, and the per-request bound.
func TestRecordingSpans(t *testing.T) {
	sc := testContext()
	rec := NewRecording(sc, 3)
	if rec.Context() != sc {
		t.Fatalf("Context = %+v, want %+v", rec.Context(), sc)
	}

	start := time.Now()
	root := sc.SpanID
	a := rec.AddSpan(registry.SpanQueueWait, root, start, time.Millisecond)
	b := rec.AddSpan(registry.StageHPFilter, root, start, 2*time.Millisecond,
		Attr{Key: "series_len", Value: "1024"})
	if a.IsZero() || b.IsZero() || a == b || a == root || b == root {
		t.Fatalf("span IDs not distinct/nonzero: a=%v b=%v root=%v", a, b, root)
	}
	rec.Annotate(a, Attr{Key: "coalesced", Value: "true"})

	rec.AddSpan(registry.StageMODWT, root, start, time.Millisecond)
	if id := rec.AddSpan(registry.StageRanking, root, start, time.Millisecond); !id.IsZero() {
		t.Fatal("span over the bound was retained")
	}
	if rec.Len() != 3 || rec.Dropped() != 1 {
		t.Fatalf("len=%d dropped=%d, want 3/1", rec.Len(), rec.Dropped())
	}

	spans := rec.Spans()
	if spans[0].Name != registry.SpanQueueWait || spans[0].Parent != root {
		t.Fatalf("span 0 = %+v", spans[0])
	}
	if len(spans[0].Attrs) != 1 || spans[0].Attrs[0].Key != "coalesced" {
		t.Fatalf("annotation missing: %+v", spans[0].Attrs)
	}
	if len(spans[1].Attrs) != 1 || spans[1].Attrs[0].Value != "1024" {
		t.Fatalf("inline attrs missing: %+v", spans[1].Attrs)
	}
}

// TestAttachSpansEmitsStageSpans pins the zero-call-site contract:
// attaching a recording to a Trace makes every stage section emitted
// by existing pipeline code appear as a span, with real timestamps.
func TestAttachSpansEmitsStageSpans(t *testing.T) {
	sc := testContext()
	rec := NewRecording(sc, 0)
	tr := New()
	tr.AttachSpans(rec, sc.SpanID)

	before := time.Now()
	st := tr.StartStage(StageHPFilter)
	time.Sleep(2 * time.Millisecond)
	st.End()
	st = tr.StartStage(StagePeriodogram)
	st.End()
	st = tr.StartStage(StagePeriodogram) // second per-level section
	st.End()

	spans := rec.Spans()
	if len(spans) != 3 {
		t.Fatalf("want 3 stage spans, got %d: %+v", len(spans), spans)
	}
	if spans[0].Name != StageHPFilter || spans[0].Parent != sc.SpanID {
		t.Fatalf("stage span 0 = %+v", spans[0])
	}
	if spans[0].Duration < 2*time.Millisecond {
		t.Fatalf("stage span duration %v shorter than slept time", spans[0].Duration)
	}
	if spans[0].Start.Before(before) {
		t.Fatalf("stage span start %v before the section opened", spans[0].Start)
	}
	// The merged Summary still reports periodogram once while the
	// recording keeps both sections as separate spans.
	if s := tr.Summary(); s.Stage(StagePeriodogram).Calls != 2 {
		t.Fatalf("summary merged calls = %d, want 2", s.Stage(StagePeriodogram).Calls)
	}
}

// TestSampledOutSpanPathAllocatesNothing extends the AllocsPerRun pin
// to the span layer: with sampling off (nil *Recording) the whole
// span surface — parse, attach, add, annotate — must stay
// allocation-free, as must stage timing on a Trace with no recording
// attached beyond its pre-span cost.
func TestSampledOutSpanPathAllocatesNothing(t *testing.T) {
	var rec *Recording
	var tr *Trace
	tp := testContext().Traceparent()
	allocs := testing.AllocsPerRun(200, func() {
		if _, ok := ParseTraceparent(tp); !ok {
			t.Fatal("parse failed")
		}
		tr.AttachSpans(rec, SpanID{})
		id := rec.AddSpan(registry.SpanQueueWait, SpanID{}, time.Time{}, 0)
		rec.Annotate(id)
		_ = rec.Context()
		_ = rec.Spans()
		_ = rec.Len()
		_ = rec.Dropped()
	})
	if allocs != 0 {
		t.Fatalf("sampled-out span path allocated %.1f objects per run, want 0", allocs)
	}
}

// TestSpanStoreFiltersAndPinning drills the trace flight recorder:
// ring overflow, error pinning, lookup, and every listing filter.
func TestSpanStoreFiltersAndPinning(t *testing.T) {
	store := NewSpanStore(4)
	mk := func(i byte, outcome, tenant string, d time.Duration) TraceRecord {
		var id [16]byte
		id[0] = i
		return TraceRecord{
			TraceID: id, Time: time.Now(), Duration: d,
			Endpoint: "detect", Tenant: tenant, Outcome: outcome,
			Spans: []Span{{Name: registry.SpanRequest, Duration: d}},
		}
	}
	errRec := mk(1, "error", "acme", 50*time.Millisecond)
	store.Add(&errRec)
	for i := byte(2); i <= 9; i++ {
		r := mk(i, "ok", "default", time.Duration(i)*time.Millisecond)
		store.Add(&r)
	}

	// The error trace is long gone from the 4-slot recent ring but
	// still pinned.
	got, ok := store.Lookup(errRec.TraceID)
	if !ok || got.Outcome != "error" || len(got.Spans) != 1 {
		t.Fatalf("pinned error trace lost: %+v ok=%v", got, ok)
	}

	all := store.Snapshot(Filter{})
	if len(all) != 5 { // 4 recent + 1 pinned
		t.Fatalf("snapshot len = %d, want 5", len(all))
	}
	if all[0].TraceID[0] != 9 {
		t.Fatalf("snapshot not newest-first: %+v", all[0].TraceID)
	}

	if got := store.Snapshot(Filter{Outcome: "error"}); len(got) != 1 || got[0].Tenant != "acme" {
		t.Fatalf("outcome filter: %+v", got)
	}
	if got := store.Snapshot(Filter{Tenant: "acme"}); len(got) != 1 {
		t.Fatalf("tenant filter: %+v", got)
	}
	if got := store.Snapshot(Filter{MinDuration: 9 * time.Millisecond}); len(got) != 2 {
		t.Fatalf("minDuration filter kept %d, want 2 (the 9ms ok + 50ms error)", len(got))
	}
	if got := store.Snapshot(Filter{Limit: 2}); len(got) != 2 {
		t.Fatalf("limit: %d", len(got))
	}

	var store2 *SpanStore
	store2.Add(&errRec)
	if _, ok := store2.Lookup(errRec.TraceID); ok || store2.Len() != 0 {
		t.Fatal("nil store not inert")
	}
}
