// The trace flight recorder: a bounded dual-ring store of finished
// request traces, mirroring the obs request recorder's design — a
// ring of the most recent traces plus a ring where error/degraded
// traces are pinned so a burst of healthy traffic cannot flush the
// one trace worth debugging. Serves GET /debug/traces[/{traceid}].
package trace

import (
	"sync"
	"time"
)

// TraceRecord is one finished request's span tree as retained by the
// store: the identity and outcome facts the listing filters on, plus
// the spans themselves.
type TraceRecord struct {
	TraceID  [16]byte
	Time     time.Time // root span start (admission)
	Duration time.Duration
	Endpoint string
	Tenant   string
	Status   int    // HTTP status written
	Outcome  string // "ok", "degraded" or "error"
	Spans    []Span
	Dropped  int // spans discarded by the per-request bound
}

// Interesting reports whether the trace should be pinned: anything
// that did not complete cleanly.
func (r *TraceRecord) Interesting() bool { return r.Outcome != "ok" }

// Filter selects traces out of a store snapshot. The zero value
// matches everything.
type Filter struct {
	Limit       int           // max records returned; <= 0 means all
	Outcome     string        // exact match when non-empty
	Tenant      string        // exact match when non-empty
	MinDuration time.Duration // keep only traces at least this slow
}

func (f Filter) match(r *TraceRecord) bool {
	if f.Outcome != "" && r.Outcome != f.Outcome {
		return false
	}
	if f.Tenant != "" && r.Tenant != f.Tenant {
		return false
	}
	return r.Duration >= f.MinDuration
}

// SpanStore is the bounded trace flight recorder. Commit is a single
// mutex-guarded struct copy into a preallocated slot; the span slice
// is shared with the finished recording, never mutated after commit.
type SpanStore struct {
	mu     sync.Mutex
	recent []TraceRecord
	pinned []TraceRecord
	rHead  int
	rLen   int
	pHead  int
	pLen   int
}

// NewSpanStore builds a store retaining the last size traces (and up
// to size pinned error/degraded traces on top). size <= 0 selects the
// default of 256.
func NewSpanStore(size int) *SpanStore {
	if size <= 0 {
		size = 256
	}
	return &SpanStore{
		recent: make([]TraceRecord, size),
		pinned: make([]TraceRecord, size),
	}
}

// Add retains rec, overwriting the oldest entry when the ring is
// full. Interesting traces are additionally copied into the pinned
// ring. Nil-safe.
func (s *SpanStore) Add(rec *TraceRecord) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.recent[s.rHead] = *rec
	s.rHead = (s.rHead + 1) % len(s.recent)
	if s.rLen < len(s.recent) {
		s.rLen++
	}
	if rec.Interesting() {
		s.pinned[s.pHead] = *rec
		s.pHead = (s.pHead + 1) % len(s.pinned)
		if s.pLen < len(s.pinned) {
			s.pLen++
		}
	}
	s.mu.Unlock()
}

// Lookup returns the trace with the given ID, scanning newest-first;
// the pinned ring first, since an error trace may have already been
// flushed from the recent ring.
func (s *SpanStore) Lookup(id [16]byte) (TraceRecord, bool) {
	if s == nil {
		return TraceRecord{}, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if rec, ok := scanTraceRing(s.pinned, s.pHead, s.pLen, id); ok {
		return rec, true
	}
	return scanTraceRing(s.recent, s.rHead, s.rLen, id)
}

func scanTraceRing(ring []TraceRecord, head, n int, id [16]byte) (TraceRecord, bool) {
	for i := 1; i <= n; i++ {
		idx := (head - i + len(ring)) % len(ring)
		if ring[idx].TraceID == id {
			return ring[idx], true
		}
	}
	return TraceRecord{}, false
}

// Snapshot returns the traces matching f newest-first: the union of
// both rings with pinned-ring duplicates removed, filtered, then cut
// to f.Limit.
func (s *SpanStore) Snapshot(f Filter) []TraceRecord {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	seen := make(map[[16]byte]bool, s.rLen+s.pLen)
	out := make([]TraceRecord, 0, s.rLen+s.pLen)
	collect := func(ring []TraceRecord, head, n int) {
		for i := 1; i <= n; i++ {
			idx := (head - i + len(ring)) % len(ring)
			if seen[ring[idx].TraceID] {
				continue
			}
			seen[ring[idx].TraceID] = true
			if f.match(&ring[idx]) {
				out = append(out, ring[idx])
			}
		}
	}
	collect(s.recent, s.rHead, s.rLen)
	collect(s.pinned, s.pHead, s.pLen)
	if f.Limit > 0 && len(out) > f.Limit {
		out = out[:f.Limit]
	}
	return out
}

// Len reports how many distinct traces the store currently holds.
func (s *SpanStore) Len() int {
	return len(s.Snapshot(Filter{}))
}
