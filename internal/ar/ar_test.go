package ar

import (
	"math"
	"math/rand"
	"testing"
)

// simulateAR generates x_t = Σ a_i x_{t-i} + σ·ε_t.
func simulateAR(coeffs []float64, sigma float64, n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	p := len(coeffs)
	x := make([]float64, n+200)
	for t := p; t < len(x); t++ {
		v := sigma * rng.NormFloat64()
		for i, a := range coeffs {
			v += a * x[t-1-i]
		}
		x[t] = v
	}
	return x[200:]
}

func TestYuleWalkerRecoversAR1(t *testing.T) {
	x := simulateAR([]float64{0.7}, 1, 20000, 1)
	m, err := YuleWalker(x, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Coeffs[0]-0.7) > 0.03 {
		t.Errorf("a1 = %v, want ~0.7", m.Coeffs[0])
	}
	if math.Abs(m.Sigma2-1) > 0.1 {
		t.Errorf("sigma2 = %v, want ~1", m.Sigma2)
	}
}

func TestYuleWalkerRecoversAR2(t *testing.T) {
	want := []float64{1.2, -0.5}
	x := simulateAR(want, 1, 30000, 2)
	m, err := YuleWalker(x, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Abs(m.Coeffs[i]-want[i]) > 0.05 {
			t.Errorf("a%d = %v, want %v", i+1, m.Coeffs[i], want[i])
		}
	}
}

func TestBurgRecoversAR2(t *testing.T) {
	want := []float64{1.2, -0.5}
	x := simulateAR(want, 1, 5000, 3)
	m, err := Burg(x, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Abs(m.Coeffs[i]-want[i]) > 0.05 {
			t.Errorf("a%d = %v, want %v", i+1, m.Coeffs[i], want[i])
		}
	}
}

func TestBurgBetterThanYWOnShortSeries(t *testing.T) {
	// Aggregate estimation error over many short series; Burg should
	// be at least as good on average.
	var errYW, errBurg float64
	want := []float64{0.9}
	for seed := int64(0); seed < 40; seed++ {
		x := simulateAR(want, 1, 60, 100+seed)
		if m, err := YuleWalker(x, 1); err == nil {
			errYW += math.Abs(m.Coeffs[0] - 0.9)
		}
		if m, err := Burg(x, 1); err == nil {
			errBurg += math.Abs(m.Coeffs[0] - 0.9)
		}
	}
	if errBurg > errYW*1.1 {
		t.Errorf("Burg error %v much worse than YW %v", errBurg, errYW)
	}
}

func TestFitAICSelectsReasonableOrder(t *testing.T) {
	x := simulateAR([]float64{1.2, -0.5}, 1, 4000, 4)
	m, err := FitAIC(x, 12, "yw")
	if err != nil {
		t.Fatal(err)
	}
	if m.Order < 2 || m.Order > 6 {
		t.Errorf("selected order %d, want near 2", m.Order)
	}
	mb, err := FitAIC(x, 12, "burg")
	if err != nil {
		t.Fatal(err)
	}
	if mb.Order < 2 || mb.Order > 6 {
		t.Errorf("burg selected order %d", mb.Order)
	}
}

func TestPACFCutsOffForAR(t *testing.T) {
	// AR(2): PACF significant at lags 1-2, then within sampling noise.
	x := simulateAR([]float64{1.2, -0.5}, 1, 20000, 11)
	pacf, err := PACF(x, 8)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pacf[1]-(-0.5)) > 0.05 {
		t.Errorf("pacf[2] = %v, want ~-0.5 (the AR(2) coefficient)", pacf[1])
	}
	bound := 3 / math.Sqrt(20000)
	for lag := 3; lag <= 8; lag++ {
		if math.Abs(pacf[lag-1]) > bound {
			t.Errorf("pacf[%d] = %v, want within ±%v after the cutoff", lag, pacf[lag-1], bound)
		}
	}
}

func TestPACFWhiteNoiseSmallEverywhere(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	x := make([]float64, 10000)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	pacf, err := PACF(x, 10)
	if err != nil {
		t.Fatal(err)
	}
	bound := 4 / math.Sqrt(float64(len(x)))
	for lag, v := range pacf {
		if math.Abs(v) > bound {
			t.Errorf("white-noise pacf[%d] = %v", lag+1, v)
		}
	}
}

func TestPACFErrors(t *testing.T) {
	if _, err := PACF(make([]float64, 10), 0); err == nil {
		t.Error("maxLag 0 should error")
	}
	if _, err := PACF(make([]float64, 10), 10); err == nil {
		t.Error("maxLag >= n should error")
	}
	if _, err := PACF(make([]float64, 50), 5); err == nil {
		t.Error("constant series should error")
	}
}

func TestErrors(t *testing.T) {
	if _, err := YuleWalker([]float64{1, 2, 3}, 5); err == nil {
		t.Error("order >= n should error")
	}
	if _, err := YuleWalker(make([]float64, 50), 2); err == nil {
		t.Error("constant series should error")
	}
	if _, err := Burg(make([]float64, 50), 2); err == nil {
		t.Error("constant series should error (burg)")
	}
	if _, err := FitAIC([]float64{1, 2}, 3, "yw"); err == nil {
		t.Error("tiny series should error")
	}
}

func TestSpectralDensityPeakAtARResonance(t *testing.T) {
	// AR(2) with complex roots at frequency f0: a1 = 2r·cos(2πf0),
	// a2 = −r². Pick f0 = 0.1 (period 10), r = 0.95.
	f0 := 0.1
	r := 0.95
	coeffs := []float64{2 * r * math.Cos(2*math.Pi*f0), -r * r}
	x := simulateAR(coeffs, 1, 8000, 5)
	m, err := YuleWalker(x, 2)
	if err != nil {
		t.Fatal(err)
	}
	p := m.DominantPeriod(2048)
	if math.Abs(p-10) > 0.5 {
		t.Errorf("dominant period %v, want ~10", p)
	}
}

func TestDominantPeriodGuardOnNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	zeroCount := 0
	for trial := 0; trial < 10; trial++ {
		x := make([]float64, 500)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		m, err := FitAIC(x, 10, "yw")
		if err != nil {
			t.Fatal(err)
		}
		p := m.DominantPeriod(1024)
		if p == 0 || p > 250 {
			zeroCount++
		}
	}
	// White noise should usually trip the low-frequency guard or give
	// an implausibly long period; either way no confident period.
	if zeroCount < 3 {
		t.Logf("white-noise guard fired only %d/10 times (acceptable but noting)", zeroCount)
	}
}

func TestSpectralDensityPositive(t *testing.T) {
	x := simulateAR([]float64{0.5}, 1, 1000, 7)
	m, _ := YuleWalker(x, 1)
	_, dens := m.SpectralDensity(512)
	for i, d := range dens {
		if d <= 0 || math.IsNaN(d) {
			t.Fatalf("density[%d] = %v", i, d)
		}
	}
	// AR(1) with positive coefficient: monotone decreasing density.
	for i := 1; i < len(dens); i++ {
		if dens[i] > dens[i-1]+1e-12 {
			t.Fatalf("AR(1) density not decreasing at %d", i)
		}
	}
}

func BenchmarkFitAIC(b *testing.B) {
	x := simulateAR([]float64{1.2, -0.5}, 1, 2000, 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FitAIC(x, 20, "yw"); err != nil {
			b.Fatal(err)
		}
	}
}
