// Package ar provides autoregressive modelling: Yule-Walker and Burg
// coefficient estimation via Levinson-Durbin recursion, AIC-based
// order selection, and the AR spectral density. It is the substrate of
// the findFrequency baseline (Hyndman's forecast::findfrequency fits
// an AR model and reads the period off the spectral density maximum).
package ar

import (
	"fmt"
	"math"
)

// Model is a fitted autoregressive model
// x_t = Σ_{i=1..p} a_i x_{t−i} + e_t with innovation variance Sigma2.
type Model struct {
	Coeffs []float64 // a_1..a_p
	Sigma2 float64   // innovation variance
	Order  int
	AIC    float64
	Mean   float64 // sample mean removed before fitting
}

// autocovariance returns c_0..c_maxLag (biased estimator) of the
// mean-centred series; the mean itself is also returned.
func autocovariance(x []float64, maxLag int) (c []float64, mean float64) {
	n := len(x)
	for _, v := range x {
		mean += v
	}
	mean /= float64(n)
	c = make([]float64, maxLag+1)
	for lag := 0; lag <= maxLag; lag++ {
		var s float64
		for i := 0; i+lag < n; i++ {
			s += (x[i] - mean) * (x[i+lag] - mean)
		}
		c[lag] = s / float64(n)
	}
	return c, mean
}

// YuleWalker fits an AR(p) model by solving the Yule-Walker equations
// with the Levinson-Durbin recursion. It errors on degenerate input
// (constant series or order out of range).
func YuleWalker(x []float64, order int) (*Model, error) {
	n := len(x)
	if order < 1 || order >= n {
		return nil, fmt.Errorf("ar: order %d out of range for n=%d", order, n)
	}
	c, mean := autocovariance(x, order)
	if c[0] <= 0 {
		return nil, fmt.Errorf("ar: zero-variance series")
	}
	a, sigma2, err := levinson(c, order)
	if err != nil {
		return nil, err
	}
	m := &Model{Coeffs: a, Sigma2: sigma2, Order: order, Mean: mean}
	m.AIC = aic(n, sigma2, order)
	return m, nil
}

// levinson solves the Toeplitz system of Yule-Walker equations,
// returning the AR coefficients and the innovation variance.
func levinson(c []float64, order int) ([]float64, float64, error) {
	a := make([]float64, order)
	prev := make([]float64, order)
	e := c[0]
	for k := 1; k <= order; k++ {
		acc := c[k]
		for j := 1; j < k; j++ {
			acc -= a[j-1] * c[k-j]
		}
		if e <= 0 {
			return nil, 0, fmt.Errorf("ar: Levinson recursion broke down at order %d", k)
		}
		kappa := acc / e
		copy(prev, a[:k-1])
		a[k-1] = kappa
		for j := 1; j < k; j++ {
			a[j-1] = prev[j-1] - kappa*prev[k-1-j]
		}
		e *= 1 - kappa*kappa
	}
	return a, e, nil
}

// Burg fits an AR(p) model with Burg's method, which estimates
// reflection coefficients by minimizing forward+backward prediction
// error; it is usually more accurate than Yule-Walker on short series.
func Burg(x []float64, order int) (*Model, error) {
	n := len(x)
	if order < 1 || order >= n {
		return nil, fmt.Errorf("ar: order %d out of range for n=%d", order, n)
	}
	mean := 0.0
	for _, v := range x {
		mean += v
	}
	mean /= float64(n)
	f := make([]float64, n) // forward errors
	b := make([]float64, n) // backward errors
	e := 0.0
	for i, v := range x {
		f[i] = v - mean
		b[i] = v - mean
		e += (v - mean) * (v - mean)
	}
	e /= float64(n)
	if e == 0 {
		return nil, fmt.Errorf("ar: zero-variance series")
	}
	a := make([]float64, order)
	prev := make([]float64, order)
	for k := 1; k <= order; k++ {
		var num, den float64
		for i := k; i < n; i++ {
			num += f[i] * b[i-1]
			den += f[i]*f[i] + b[i-1]*b[i-1]
		}
		if den == 0 {
			return nil, fmt.Errorf("ar: Burg breakdown at order %d", k)
		}
		kappa := 2 * num / den
		copy(prev, a[:k-1])
		a[k-1] = kappa
		for j := 1; j < k; j++ {
			a[j-1] = prev[j-1] - kappa*prev[k-1-j]
		}
		for i := n - 1; i >= k; i-- {
			fi := f[i]
			f[i] = fi - kappa*b[i-1]
			b[i] = b[i-1] - kappa*fi
		}
		e *= 1 - kappa*kappa
	}
	m := &Model{Coeffs: a, Sigma2: e, Order: order, Mean: mean}
	m.AIC = aic(n, e, order)
	return m, nil
}

func aic(n int, sigma2 float64, order int) float64 {
	if sigma2 <= 0 {
		return math.Inf(-1)
	}
	return float64(n)*math.Log(sigma2) + 2*float64(order+1)
}

// PACF returns the partial autocorrelation function of x at lags
// 1..maxLag: the sequence of reflection coefficients produced by the
// Levinson-Durbin recursion on the sample autocovariances. The PACF of
// an AR(p) process cuts off after lag p, which is the classical order
// diagnostic.
func PACF(x []float64, maxLag int) ([]float64, error) {
	n := len(x)
	if maxLag < 1 || maxLag >= n {
		return nil, fmt.Errorf("ar: maxLag %d out of range for n=%d", maxLag, n)
	}
	c, _ := autocovariance(x, maxLag)
	if c[0] <= 0 {
		return nil, fmt.Errorf("ar: zero-variance series")
	}
	out := make([]float64, maxLag)
	a := make([]float64, maxLag)
	prev := make([]float64, maxLag)
	e := c[0]
	for k := 1; k <= maxLag; k++ {
		acc := c[k]
		for j := 1; j < k; j++ {
			acc -= a[j-1] * c[k-j]
		}
		if e <= 0 {
			// Degenerate remainder: later partials are numerically 0.
			break
		}
		kappa := acc / e
		out[k-1] = kappa
		copy(prev, a[:k-1])
		a[k-1] = kappa
		for j := 1; j < k; j++ {
			a[j-1] = prev[j-1] - kappa*prev[k-1-j]
		}
		e *= 1 - kappa*kappa
	}
	return out, nil
}

// FitAIC fits AR models of order 1..maxOrder with the given fitter
// ("yw" or "burg") and returns the model minimizing AIC. maxOrder <= 0
// picks the R default min(n−1, 10·log10(n)).
func FitAIC(x []float64, maxOrder int, method string) (*Model, error) {
	n := len(x)
	if n < 8 {
		return nil, fmt.Errorf("ar: series too short (%d)", n)
	}
	if maxOrder <= 0 {
		maxOrder = int(10 * math.Log10(float64(n)))
	}
	if maxOrder >= n {
		maxOrder = n - 1
	}
	var best *Model
	for p := 1; p <= maxOrder; p++ {
		var m *Model
		var err error
		if method == "burg" {
			m, err = Burg(x, p)
		} else {
			m, err = YuleWalker(x, p)
		}
		if err != nil {
			continue
		}
		if best == nil || m.AIC < best.AIC {
			best = m
		}
	}
	if best == nil {
		return nil, fmt.Errorf("ar: no model could be fitted")
	}
	return best, nil
}

// SpectralDensity evaluates the AR model's power spectral density at
// nFreq equally spaced frequencies in (0, 1/2):
//
//	S(f) = σ² / |1 − Σ a_j e^{−i2πfj}|²
//
// It returns the frequencies and densities.
func (m *Model) SpectralDensity(nFreq int) (freqs, density []float64) {
	if nFreq < 1 {
		nFreq = 256
	}
	freqs = make([]float64, nFreq)
	density = make([]float64, nFreq)
	for i := 0; i < nFreq; i++ {
		f := (float64(i) + 0.5) / (2 * float64(nFreq)) // (0, 1/2)
		var re, im float64
		re = 1
		for j, a := range m.Coeffs {
			ang := 2 * math.Pi * f * float64(j+1)
			re -= a * math.Cos(ang)
			im += a * math.Sin(ang)
		}
		freqs[i] = f
		density[i] = m.Sigma2 / (re*re + im*im)
	}
	return freqs, density
}

// DominantPeriod returns the period 1/f* at the spectral density
// maximum, or 0 when the maximum sits at the lowest evaluated
// frequency (no finite periodicity — R's findfrequency applies the
// same guard).
func (m *Model) DominantPeriod(nFreq int) float64 {
	freqs, dens := m.SpectralDensity(nFreq)
	best := 0
	for i := range dens {
		if dens[i] > dens[best] {
			best = i
		}
	}
	if best == 0 {
		return 0
	}
	return 1 / freqs[best]
}
