package decompose

import (
	"math"
	"math/rand"
	"testing"
)

func buildSeries(n int, periods []int, amps []float64, trendSlope, noise float64, seed int64) ([]float64, []float64, [][]float64) {
	rng := rand.New(rand.NewSource(seed))
	y := make([]float64, n)
	trend := make([]float64, n)
	seasonals := make([][]float64, len(periods))
	for i := range seasonals {
		seasonals[i] = make([]float64, n)
	}
	for t := 0; t < n; t++ {
		trend[t] = trendSlope * float64(t)
		y[t] = trend[t] + noise*rng.NormFloat64()
		for ci, p := range periods {
			s := amps[ci] * math.Sin(2*math.Pi*float64(t)/float64(p))
			seasonals[ci][t] = s
			y[t] += s
		}
	}
	return y, trend, seasonals
}

func TestDecomposeReconstructionIdentity(t *testing.T) {
	y, _, _ := buildSeries(600, []int{24, 120}, []float64{2, 3}, 0.01, 0.2, 1)
	res, err := Decompose(y, []int{24, 120}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range y {
		sum := res.Trend[i] + res.Remainder[i]
		for _, s := range res.Seasonals {
			sum += s[i]
		}
		if math.Abs(sum-y[i]) > 1e-9 {
			t.Fatalf("identity broken at %d: %v vs %v", i, sum, y[i])
		}
	}
}

func TestDecomposeRecoversComponents(t *testing.T) {
	periods := []int{24, 120}
	amps := []float64{2, 3}
	y, trueTrend, trueSeas := buildSeries(1200, periods, amps, 0.01, 0.1, 2)
	res, err := Decompose(y, periods, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Components are identified up to a constant offset between trend
	// and seasonal levels; compare after centring the error. Skip the
	// boundary where the HP trend flares.
	for ci := range periods {
		var se, count float64
		for i := 150; i < 1050; i++ {
			d := res.Seasonals[ci][i] - trueSeas[ci][i]
			se += d * d
			count++
		}
		rmse := math.Sqrt(se / count)
		if rmse > 0.25*amps[ci] {
			t.Errorf("seasonal %d: RMSE %v too high (amp %v)", periods[ci], rmse, amps[ci])
		}
	}
	// Trend should track the true line in the interior.
	var te, count float64
	for i := 150; i < 1050; i++ {
		d := res.Trend[i] - trueTrend[i]
		te += d * d
		count++
	}
	if rmse := math.Sqrt(te / count); rmse > 0.5 {
		t.Errorf("trend RMSE %v", rmse)
	}
}

func TestDecomposeRobustToSpikes(t *testing.T) {
	periods := []int{50}
	y, _, trueSeas := buildSeries(800, periods, []float64{2}, 0, 0.05, 3)
	rng := rand.New(rand.NewSource(4))
	spiked := append([]float64(nil), y...)
	spikeIdx := map[int]bool{}
	for k := 0; k < 20; k++ {
		i := rng.Intn(len(spiked))
		spiked[i] += 25
		spikeIdx[i] = true
	}
	res, err := Decompose(spiked, periods, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The seasonal estimate must stay close to the truth despite
	// spikes (medians!), and the spikes must surface in the remainder.
	var se, count float64
	for i := 100; i < 700; i++ {
		d := res.Seasonals[0][i] - trueSeas[0][i]
		se += d * d
		count++
	}
	if rmse := math.Sqrt(se / count); rmse > 0.4 {
		t.Errorf("seasonal RMSE under spikes: %v", rmse)
	}
	found := 0
	for i := range spikeIdx {
		if res.Remainder[i] > 10 {
			found++
		}
	}
	if found < len(spikeIdx)*3/4 {
		t.Errorf("only %d/%d spikes surfaced in the remainder", found, len(spikeIdx))
	}
}

func TestDecomposeMeanVariantLessRobust(t *testing.T) {
	periods := []int{40}
	y, _, trueSeas := buildSeries(800, periods, []float64{1}, 0, 0.05, 5)
	rng := rand.New(rand.NewSource(6))
	for k := 0; k < 30; k++ {
		y[rng.Intn(len(y))] += 20
	}
	med, err := Decompose(y, periods, Options{})
	if err != nil {
		t.Fatal(err)
	}
	mean, err := Decompose(y, periods, Options{Mean: true})
	if err != nil {
		t.Fatal(err)
	}
	rmse := func(s []float64) float64 {
		var se, c float64
		for i := 100; i < 700; i++ {
			d := s[i] - trueSeas[0][i]
			se += d * d
			c++
		}
		return math.Sqrt(se / c)
	}
	if rmse(med.Seasonals[0]) >= rmse(mean.Seasonals[0]) {
		t.Errorf("median variant (%v) should beat mean variant (%v) under spikes",
			rmse(med.Seasonals[0]), rmse(mean.Seasonals[0]))
	}
}

func TestDecomposeErrors(t *testing.T) {
	if _, err := Decompose(make([]float64, 4), []int{2}, Options{}); err == nil {
		t.Error("short series should error")
	}
	y := make([]float64, 100)
	if _, err := Decompose(y, []int{60}, Options{}); err == nil {
		t.Error("period not fitting twice should error")
	}
	if _, err := Decompose(y, []int{1}, Options{}); err == nil {
		t.Error("period 1 should error")
	}
	if _, err := Decompose(y, []int{10, 10}, Options{}); err == nil {
		t.Error("duplicate periods should error")
	}
}

func TestDecomposeNoPeriods(t *testing.T) {
	// Trend-only decomposition is legal: everything except noise goes
	// to the trend.
	y := make([]float64, 200)
	for i := range y {
		y[i] = 0.1 * float64(i)
	}
	res, err := Decompose(y, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Seasonals) != 0 {
		t.Fatal("no seasonal components expected")
	}
	for i := 20; i < 180; i++ {
		if math.Abs(res.Remainder[i]) > 0.05 {
			t.Fatalf("remainder %v at %d for pure trend", res.Remainder[i], i)
		}
	}
}

func TestSeasonalSumHelper(t *testing.T) {
	y, _, _ := buildSeries(400, []int{20, 100}, []float64{1, 1}, 0, 0.05, 7)
	res, err := Decompose(y, []int{20, 100}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	total := res.Seasonal()
	for i := range total {
		want := res.Seasonals[0][i] + res.Seasonals[1][i]
		if math.Abs(total[i]-want) > 1e-12 {
			t.Fatal("Seasonal() does not sum components")
		}
	}
}

func BenchmarkDecompose(b *testing.B) {
	y, _, _ := buildSeries(2000, []int{24, 168}, []float64{2, 3}, 0.01, 0.3, 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decompose(y, []int{24, 168}, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}
