// Package decompose implements robust multi-period seasonal-trend
// decomposition driven by detected periods — the downstream companion
// of RobustPeriod (the authors' RobustSTL line of work, which the
// paper's introduction motivates). Given y and its period lengths it
// produces
//
//	y_t = trend_t + Σ_i seasonal_i(t) + remainder_t
//
// with the seasonal profiles estimated by per-phase medians (robust to
// outliers) and refined by backfitting, and the trend by an HP filter
// whose cutoff sits above the longest period. Outliers land in the
// remainder, which is what the anomaly package thresholds.
package decompose

import (
	"fmt"
	"sort"

	"robustperiod/internal/filter/hp"
	"robustperiod/internal/stat/robust"
)

// Options tunes the decomposition.
type Options struct {
	// Iterations of the outer trend/seasonal backfit; <= 0 means 2.
	Iterations int
	// Lambda overrides the HP smoothing parameter; <= 0 derives it
	// from the longest period (cutoff at 4× the longest period, so the
	// trend cannot absorb seasonality).
	Lambda float64
	// Robust selects per-phase medians (default). Setting Mean to true
	// uses per-phase means instead (classical STL-style averaging).
	Mean bool
}

// Result is the additive decomposition.
type Result struct {
	Periods   []int
	Trend     []float64
	Seasonals [][]float64 // one component per period, same order as Periods
	Remainder []float64
}

// Seasonal returns the sum of all seasonal components.
func (r *Result) Seasonal() []float64 {
	out := make([]float64, len(r.Trend))
	for _, s := range r.Seasonals {
		for i, v := range s {
			out[i] += v
		}
	}
	return out
}

// Decompose splits y into trend, one seasonal component per period,
// and a remainder. Periods must each fit at least twice into the
// series; invalid or duplicate periods are rejected.
func Decompose(y []float64, periods []int, opts Options) (*Result, error) {
	n := len(y)
	if n < 8 {
		return nil, fmt.Errorf("decompose: series too short (%d)", n)
	}
	ps := append([]int(nil), periods...)
	sort.Ints(ps)
	for i, p := range ps {
		if p < 2 || 2*p > n {
			return nil, fmt.Errorf("decompose: period %d invalid for n=%d", p, n)
		}
		if i > 0 && ps[i] == ps[i-1] {
			return nil, fmt.Errorf("decompose: duplicate period %d", p)
		}
	}
	iters := opts.Iterations
	if iters <= 0 {
		iters = 2
	}
	lambda := opts.Lambda
	if lambda <= 0 {
		longest := 8
		if len(ps) > 0 {
			longest = ps[len(ps)-1]
		}
		lambda = hp.LambdaForCutoff(4 * float64(longest))
	}

	res := &Result{
		Periods:   ps,
		Trend:     make([]float64, n),
		Seasonals: make([][]float64, len(ps)),
		Remainder: make([]float64, n),
	}
	for i := range res.Seasonals {
		res.Seasonals[i] = make([]float64, n)
	}

	work := make([]float64, n)
	for iter := 0; iter < iters; iter++ {
		// Trend on the seasonally adjusted series. Reflection-pad the
		// ends before filtering so the HP trend does not bend toward
		// residual oscillation at the boundaries (which would leak
		// seasonal structure into the remainder there).
		copy(work, y)
		for _, s := range res.Seasonals {
			for i := range work {
				work[i] -= s[i]
			}
		}
		res.Trend = reflectFilter(work, lambda)

		// Backfit each seasonal component on the detrended series with
		// the other components removed, shortest period first (MSTL
		// convention): when a shorter period divides a longer one the
		// two profiles are not identified, so the shorter component
		// claims the shared structure and the longer profile is
		// orthogonalized against it below.
		for ci := 0; ci < len(ps); ci++ {
			copy(work, y)
			for i := range work {
				work[i] -= res.Trend[i]
			}
			for cj, s := range res.Seasonals {
				if cj == ci {
					continue
				}
				for i := range work {
					work[i] -= s[i]
				}
			}
			profile := seasonalProfile(work, ps[ci], opts.Mean)
			for cj := 0; cj < ci; cj++ {
				if ps[ci]%ps[cj] != 0 {
					continue
				}
				// Remove the ps[cj]-periodic average from this profile;
				// that structure belongs to the shorter component. The
				// projection always uses means: the profile values are
				// already robust estimates, and a median projection
				// would not be a linear projection (it leaves residue
				// on smooth profiles).
				sub := seasonalProfile(profile, ps[cj], true)
				for i := range profile {
					profile[i] -= sub[i%ps[cj]]
				}
			}
			for i := range work {
				res.Seasonals[ci][i] = profile[i%ps[ci]]
			}
		}
	}

	copy(res.Remainder, y)
	for i := range res.Remainder {
		res.Remainder[i] -= res.Trend[i]
	}
	for _, s := range res.Seasonals {
		for i := range res.Remainder {
			res.Remainder[i] -= s[i]
		}
	}
	return res, nil
}

// reflectFilter applies the HP filter with anti-symmetric (point)
// reflection padding of up to a quarter of the series on each side,
// cropping back afterwards. Point reflection (2·x[edge] − x[mirror])
// continues linear trends exactly, so the padded filter neither bends
// at the boundary nor distorts a trending series the way mirror
// reflection would.
func reflectFilter(x []float64, lambda float64) []float64 {
	n := len(x)
	pad := n / 4
	if pad < 2 {
		return hp.Filter(x, lambda)
	}
	ext := make([]float64, n+2*pad)
	for i := 0; i < pad; i++ {
		ext[i] = 2*x[0] - x[pad-i]
		ext[pad+n+i] = 2*x[n-1] - x[n-2-i]
	}
	copy(ext[pad:], x)
	trend := hp.Filter(ext, lambda)
	out := make([]float64, n)
	copy(out, trend[pad:pad+n])
	return out
}

// seasonalProfile estimates the period-m profile of x as per-phase
// robust locations, centred so the profile sums to ~zero (the level
// belongs to the trend).
func seasonalProfile(x []float64, m int, useMean bool) []float64 {
	buckets := make([][]float64, m)
	for i, v := range x {
		buckets[i%m] = append(buckets[i%m], v)
	}
	profile := make([]float64, m)
	for ph, b := range buckets {
		if len(b) == 0 {
			continue
		}
		if useMean {
			profile[ph] = robust.Mean(b)
		} else {
			profile[ph] = robust.MedianInPlace(b)
		}
	}
	// Centre the profile.
	var centre float64
	if useMean {
		centre = robust.Mean(profile)
	} else {
		centre = robust.Median(profile)
	}
	for i := range profile {
		profile[i] -= centre
	}
	return profile
}
