package core_test

import (
	"fmt"
	"testing"

	"robustperiod/internal/core"
	"robustperiod/internal/synthetic"
)

// tablesCorpus is a compact slice of the Tables 1-3 benchmark corpora
// (same generators and seed offsets as the eval suite) used to assert
// end-to-end solver-path equivalence.
func tablesCorpus(short bool) []synthetic.Labeled {
	const seed = 1
	var all []synthetic.Labeled
	add := func(name string, ls []synthetic.Labeled) {
		for i := range ls {
			ls[i].Name = fmt.Sprintf("%s/%s", name, ls[i].Name)
		}
		all = append(all, ls...)
	}
	add("sin-mild", synthetic.SinCorpus(2, 1000, synthetic.Sine, []int{100}, 0.1, 0.01, seed))
	add("sin-severe", synthetic.SinCorpus(2, 1000, synthetic.Sine, []int{100}, 2, 0.2, seed+1))
	add("multi-mild", synthetic.SinCorpus(2, 1000, synthetic.Sine, []int{20, 50, 100}, 0.1, 0.01, seed+100))
	add("multi-severe", synthetic.SinCorpus(2, 1000, synthetic.Sine, []int{20, 50, 100}, 1, 0.1, seed+101))
	add("yahoo-a3", synthetic.YahooA3Corpus(2, seed+102))
	add("yahoo-a4", synthetic.YahooA4Corpus(2, seed+103))
	add("square", synthetic.SinCorpus(2, 1000, synthetic.Square, []int{20, 50, 100}, 0.1, 0.01, seed+200))
	add("triangle", synthetic.SinCorpus(2, 1000, synthetic.Triangle, []int{20, 50, 100}, 0.1, 0.01, seed+201))
	if !short {
		add("cran", synthetic.CRANCorpus(seed+2))
	}
	return all
}

// TestDetectSolverPathEquivalence asserts that the staged solver
// engine's shortcuts — the Fisher prefilter, frequency warm starts,
// and the parallel worker pool — detect exactly the same periods as
// the cold sequential exact solver on the Tables 1-3 corpus. The
// shortcuts are performance features; any divergence in detected
// periods is a bug.
func TestDetectSolverPathEquivalence(t *testing.T) {
	corpus := tablesCorpus(testing.Short())

	exactOpts := core.Options{}
	exactOpts.Detect.MPOpts.NoPrefilter = true
	exactOpts.Detect.MPOpts.NoWarmStart = true

	variants := []struct {
		name string
		opts core.Options
	}{
		{"fast-sequential", core.Options{}},
		{"fast-parallel", core.Options{Parallel: true}},
	}

	for _, lab := range corpus {
		want, wantErr := core.Detect(lab.X, exactOpts)
		for _, v := range variants {
			got, gotErr := core.Detect(lab.X, v.opts)
			if (wantErr != nil) != (gotErr != nil) {
				t.Errorf("%s [%s]: error mismatch: exact=%v got=%v", lab.Name, v.name, wantErr, gotErr)
				continue
			}
			if wantErr != nil {
				continue
			}
			if !equalInts(got.Periods, want.Periods) {
				t.Errorf("%s [%s]: periods diverged: exact=%v got=%v", lab.Name, v.name, want.Periods, got.Periods)
			}
		}
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
