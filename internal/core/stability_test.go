package core

import (
	"math"
	"math/rand"
	"testing"

	"robustperiod/internal/wavelet"
)

// TestDetectWindowOffsetStability locks in the boundary-fallback fix:
// sliding a fixed-size window along a stationary periodic series must
// give (nearly) the same answer at every offset, regardless of the
// phase at the window edges. Before the reflection fallback, up to
// half the offsets failed outright.
func TestDetectWindowOffsetStability(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	long := make([]float64, 3000)
	for i := range long {
		long[i] = math.Sin(2*math.Pi*float64(i)/80) + 0.1*rng.NormFloat64()
	}
	fail := 0
	total := 0
	for off := 0; off+512 <= len(long); off += 37 {
		total++
		res, err := Detect(long[off:off+512], Options{})
		if err != nil {
			t.Fatal(err)
		}
		ok := false
		for _, p := range res.Periods {
			if p >= 77 && p <= 83 {
				ok = true
			}
		}
		if len(res.Periods) != 1 || !ok {
			fail++
		}
	}
	if fail > total/20 {
		t.Errorf("%d/%d window offsets mis-detected", fail, total)
	}
	// The pure-circular ablation must be measurably worse — this is
	// what the fallback exists for. (If this ever stops holding, the
	// fallback can be retired.)
	failCirc := 0
	for off := 0; off+512 <= len(long); off += 37 {
		res, err := Detect(long[off:off+512], Options{CircularBoundary: true})
		if err != nil {
			t.Fatal(err)
		}
		ok := false
		for _, p := range res.Periods {
			if p >= 77 && p <= 83 {
				ok = true
			}
		}
		if !ok {
			failCirc++
		}
	}
	if failCirc <= fail {
		t.Logf("circular ablation no longer worse (%d vs %d) — fallback may be unnecessary", failCirc, fail)
	}
}

// TestDetectParallelMatchesSequential verifies the goroutine path is
// a pure wall-clock optimization.
func TestDetectParallelMatchesSequential(t *testing.T) {
	for tr := 0; tr < 4; tr++ {
		x := paperSynthetic(1000, []int{20, 50, 100}, 0.5, 0.05, int64(900+tr))
		seq, err := Detect(x, Options{})
		if err != nil {
			t.Fatal(err)
		}
		par, err := Detect(x, Options{Parallel: true})
		if err != nil {
			t.Fatal(err)
		}
		if len(seq.Periods) != len(par.Periods) {
			t.Fatalf("trial %d: %v vs %v", tr, seq.Periods, par.Periods)
		}
		for i := range seq.Periods {
			if seq.Periods[i] != par.Periods[i] {
				t.Fatalf("trial %d: %v vs %v", tr, seq.Periods, par.Periods)
			}
		}
	}
}

// TestDetectLowResMerge verifies that two adjacent-level estimates of
// one long-period component merge into a single answer, while genuine
// distinct long periods (ratio >= 1.3) survive.
func TestDetectLowResMerge(t *testing.T) {
	if !sameLowResComponent(80, 92, 512) {
		t.Error("80 vs 92 at n=512 should merge")
	}
	if sameLowResComponent(80, 120, 512) {
		t.Error("80 vs 120 should stay distinct")
	}
	if sameLowResComponent(20, 24, 512) {
		t.Error("short periods must not be merged by the low-res rule")
	}
}

// TestDetectWaveletEnergyGuard: a series whose variance sits entirely
// below the deepest wavelet level (a slow cubic) must be aperiodic.
func TestDetectWaveletEnergyGuard(t *testing.T) {
	x := make([]float64, 800)
	for i := range x {
		frac := float64(i) / 800
		x[i] = 100 * frac * frac * frac
	}
	res, err := Detect(x, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Periods) != 0 {
		t.Errorf("cubic trend produced periods %v", res.Periods)
	}
}

// TestDetectReflectedFallbackRecoversDeepLevel reproduces the cloud3
// situation: a period near the top of a deep level's band with few
// observed cycles, where one boundary treatment fails and the other
// succeeds.
func TestDetectReflectedFallbackRecoversDeepLevel(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	hits := 0
	trials := 8
	for tr := 0; tr < trials; tr++ {
		n := 1000
		x := make([]float64, n)
		phase := rng.Float64() * 2 * math.Pi
		for i := range x {
			x[i] = math.Sin(2*math.Pi*float64(i)/144+phase) + 0.2*rng.NormFloat64()
		}
		res, err := Detect(x, Options{})
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range res.Periods {
			if p >= 140 && p <= 148 {
				hits++
				break
			}
		}
	}
	if hits < trials-1 {
		t.Errorf("period 144 found in only %d/%d random-phase trials", hits, trials)
	}
}

// TestDetectRobustTrendOption verifies the Huber-trend variant detects
// the same periods as the default on ordinary data and survives a
// sustained outlier block (the scenario the paper calls out: "many
// existing methods fail when outliers in the data last for some time").
func TestDetectRobustTrendOption(t *testing.T) {
	x := paperSynthetic(1000, []int{50}, 0.2, 0.01, 31)
	// Sustained block of elevated values.
	for i := 400; i < 430; i++ {
		x[i] += 15
	}
	res, err := Detect(x, Options{RobustTrend: true})
	if err != nil {
		t.Fatal(err)
	}
	if !containsNear(res.Periods, 50, 0.02) {
		t.Errorf("robust-trend variant missed the period: %v", res.Periods)
	}
	res2, err := Detect(x, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !containsNear(res2.Periods, 50, 0.02) {
		t.Logf("default variant missed under block outliers: %v (robust-trend found it)", res2.Periods)
	}
}

// TestDetectHaarDeepSeries sanity-checks an alternative filter on a
// deep-level period (Haar's short equivalent filters have the least
// boundary exposure).
func TestDetectHaarDeepSeries(t *testing.T) {
	x := paperSynthetic(2000, []int{300}, 0.1, 0.01, 13)
	res, err := Detect(x, Options{Wavelet: wavelet.Haar})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, p := range res.Periods {
		if p >= 290 && p <= 310 {
			found = true
		}
	}
	if !found {
		t.Errorf("Haar pipeline missed period 300: %v", res.Periods)
	}
}
