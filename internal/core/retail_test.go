package core

import (
	"testing"

	"robustperiod/internal/synthetic"
)

// TestDetectRetailScenario: the paper's introduction scenario — weekly
// retail seasonality with black-Friday-style promotion bursts. The
// bursts are sustained outliers; detection must still land on 7.
func TestDetectRetailScenario(t *testing.T) {
	hits := 0
	corpus := synthetic.RetailCorpus(6, 9)
	for _, s := range corpus {
		res, err := Detect(s.X, Options{})
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range res.Periods {
			if p == 7 {
				hits++
				break
			}
		}
	}
	if hits < len(corpus)-1 {
		t.Errorf("weekly period found in only %d/%d retail series", hits, len(corpus))
	}
}
