package core

import (
	"math"
	"math/rand"
	"testing"

	"robustperiod/internal/wavelet"
)

// paperSynthetic reproduces the paper's Fig. 3a generator: three
// sinusoids (T = 20, 50, 100, amplitude 1), a triangle trend of
// amplitude 10, Gaussian noise of variance sigma2 and an outlier
// fraction eta of spikes.
func paperSynthetic(n int, periods []int, sigma2, eta float64, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	x := make([]float64, n)
	for _, p := range periods {
		phase := rng.Float64() * 2 * math.Pi
		for i := range x {
			x[i] += math.Sin(2*math.Pi*float64(i)/float64(p) + phase)
		}
	}
	// Triangle trend, amplitude 10, one ramp over the series.
	for i := range x {
		frac := float64(i) / float64(n)
		tri := 1 - math.Abs(2*frac-1) // 0→1→0
		x[i] += 10 * tri
	}
	sd := math.Sqrt(sigma2)
	for i := range x {
		x[i] += sd * rng.NormFloat64()
	}
	for i := range x {
		if rng.Float64() < eta {
			x[i] += (rng.Float64()*2 - 1) * 10
		}
	}
	return x
}

func containsNear(periods []int, want int, tolFrac float64) bool {
	for _, p := range periods {
		if math.Abs(float64(p-want)) <= tolFrac*float64(want) {
			return true
		}
	}
	return false
}

func TestDetectSingleCleanPeriod(t *testing.T) {
	x := paperSynthetic(1000, []int{100}, 0.01, 0, 1)
	res, err := Detect(x, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !containsNear(res.Periods, 100, 0.02) {
		t.Fatalf("periods = %v, want ~100", res.Periods)
	}
	if len(res.Periods) > 1 {
		t.Errorf("spurious periods: %v", res.Periods)
	}
}

func TestDetectThreePeriodsMild(t *testing.T) {
	// Paper's mild condition: σ²=0.1, η=0.01.
	found := [3]int{}
	trials := 5
	for tr := 0; tr < trials; tr++ {
		x := paperSynthetic(1000, []int{20, 50, 100}, 0.1, 0.01, int64(100+tr))
		res, err := Detect(x, Options{})
		if err != nil {
			t.Fatal(err)
		}
		for i, want := range []int{20, 50, 100} {
			if containsNear(res.Periods, want, 0.02) {
				found[i]++
			}
		}
	}
	for i, want := range []int{20, 50, 100} {
		if found[i] < trials-1 {
			t.Errorf("period %d found only %d/%d times", want, found[i], trials)
		}
	}
}

func TestDetectThreePeriodsSevere(t *testing.T) {
	// Severe condition: σ²=1, η=0.1. Expect most periods still found.
	hits, total := 0, 0
	for tr := 0; tr < 5; tr++ {
		x := paperSynthetic(1000, []int{20, 50, 100}, 1, 0.1, int64(200+tr))
		res, err := Detect(x, Options{})
		if err != nil {
			t.Fatal(err)
		}
		for _, want := range []int{20, 50, 100} {
			total++
			if containsNear(res.Periods, want, 0.02) {
				hits++
			}
		}
	}
	if float64(hits) < 0.7*float64(total) {
		t.Errorf("severe condition recall %d/%d too low", hits, total)
	}
}

func TestDetectWhiteNoiseNoPeriods(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	falsePeriods := 0
	for tr := 0; tr < 5; tr++ {
		x := make([]float64, 1000)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		res, err := Detect(x, Options{})
		if err != nil {
			t.Fatal(err)
		}
		falsePeriods += len(res.Periods)
	}
	if falsePeriods > 1 {
		t.Errorf("%d false periods on white noise", falsePeriods)
	}
}

func TestDetectTrendOnlyNoPeriods(t *testing.T) {
	x := make([]float64, 800)
	for i := range x {
		frac := float64(i) / 800
		x[i] = 20*frac*frac + 5*frac
	}
	res, err := Detect(x, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Periods) != 0 {
		t.Errorf("trend-only series produced periods %v", res.Periods)
	}
}

func TestDetectShortSeriesFallback(t *testing.T) {
	// 20 points with period 5: too short for Daub8 MODWT (L=8 → level
	// 1 needs 8), so the Haar filter or fallback path must kick in.
	x := make([]float64, 20)
	for i := range x {
		x[i] = math.Sin(2 * math.Pi * float64(i) / 5)
	}
	res, err := Detect(x, Options{Wavelet: wavelet.Daub20})
	if err != nil {
		t.Fatal(err)
	}
	// Daub20 (L=40) cannot do level 1 on 20 points → fallback single
	// detection must still find the period.
	if !containsNear(res.Periods, 5, 0.1) {
		t.Errorf("fallback path missed period 5: %v", res.Periods)
	}
}

func TestDetectTooShortErrors(t *testing.T) {
	if _, err := Detect(make([]float64, 10), Options{}); err == nil {
		t.Error("expected error")
	}
}

func TestDetectRejectsNonFinite(t *testing.T) {
	x := paperSynthetic(100, []int{20}, 0.1, 0, 1)
	x[50] = math.NaN()
	if _, err := Detect(x, Options{}); err == nil {
		t.Error("NaN input should error")
	}
	x[50] = math.Inf(1)
	if _, err := Detect(x, Options{}); err == nil {
		t.Error("Inf input should error")
	}
}

func TestDetectBadWaveletErrors(t *testing.T) {
	if _, err := Detect(make([]float64, 100), Options{Wavelet: wavelet.Kind(7)}); err == nil {
		t.Error("expected error for unsupported wavelet")
	}
}

func TestDetectNonRobustAblationDegrades(t *testing.T) {
	// Under severe outliers the non-robust variant should find fewer
	// true periods (aggregate over trials to avoid flakiness).
	robustHits, plainHits := 0, 0
	for tr := 0; tr < 6; tr++ {
		x := paperSynthetic(1000, []int{20, 50, 100}, 2, 0.2, int64(400+tr))
		r1, err := Detect(x, Options{})
		if err != nil {
			t.Fatal(err)
		}
		r2, err := Detect(x, Options{NonRobust: true})
		if err != nil {
			t.Fatal(err)
		}
		for _, want := range []int{20, 50, 100} {
			if containsNear(r1.Periods, want, 0.02) {
				robustHits++
			}
			if containsNear(r2.Periods, want, 0.02) {
				plainHits++
			}
		}
	}
	if robustHits < plainHits {
		t.Errorf("robust hits %d < non-robust hits %d", robustHits, plainHits)
	}
	if robustHits == 0 {
		t.Error("robust variant found nothing under severe conditions")
	}
}

func TestDetectLevelDiagnostics(t *testing.T) {
	x := paperSynthetic(1000, []int{20, 50, 100}, 0.1, 0.01, 7)
	res, err := Detect(x, Options{EnergyShare: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Levels) < 5 {
		t.Fatalf("only %d levels", len(res.Levels))
	}
	// Every level must be selected with EnergyShare=1 and numbered
	// correctly.
	for i, lv := range res.Levels {
		if lv.Level != i+1 {
			t.Errorf("level numbering broken at %d", i)
		}
		if !lv.Selected {
			t.Errorf("level %d not selected despite EnergyShare=1", lv.Level)
		}
	}
	// Levels 4, 5, 6 isolate T=20, 50, 100 (paper Fig. 5): their
	// wavelet variances should dominate.
	varSum := func(levels ...int) float64 {
		s := 0.0
		for _, j := range levels {
			s += res.Levels[j-1].Variance.Variance
		}
		return s
	}
	if varSum(4, 5, 6) < varSum(1, 2, 3) {
		t.Errorf("periodic levels do not dominate: %v vs %v", varSum(4, 5, 6), varSum(1, 2, 3))
	}
	if res.Preprocessed == nil || res.Trend == nil {
		t.Error("diagnostics missing")
	}
}

func TestDetectEnergyShareLimitsWork(t *testing.T) {
	x := paperSynthetic(1000, []int{50}, 0.1, 0.01, 8)
	res, err := Detect(x, Options{EnergyShare: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	sel := 0
	for _, lv := range res.Levels {
		if lv.Selected {
			sel++
		}
	}
	if sel == 0 || sel == len(res.Levels) {
		t.Errorf("selection not pruning: %d of %d", sel, len(res.Levels))
	}
	if !containsNear(res.Periods, 50, 0.02) {
		t.Errorf("pruned detection missed the period: %v", res.Periods)
	}
}

func TestPassband(t *testing.T) {
	n := 1000
	// Level 1: periods [2,4] → k in [500, 1000] capped at n−1.
	kLo, kHi := Passband(n, 1)
	if kLo != 500 || kHi != 999 {
		t.Errorf("level 1: [%d,%d]", kLo, kHi)
	}
	// Level 5: periods [32,64] → k in [2000/64, 2000/32] = [31, 62].
	kLo, kHi = Passband(n, 5)
	if kLo != 31 || kHi != 62 {
		t.Errorf("level 5: [%d,%d]", kLo, kHi)
	}
	// Very deep level: clamps at 1.
	kLo, kHi = Passband(n, 20)
	if kLo != 1 || kHi < kLo {
		t.Errorf("deep level: [%d,%d]", kLo, kHi)
	}
}

func TestSamePeriod(t *testing.T) {
	cases := []struct {
		a, b int
		want bool
	}{
		{100, 100, true},
		{100, 101, true},
		{100, 103, true},
		{100, 104, false},
		{20, 21, true},
		{20, 23, false},
		{720, 721, true},
		{720, 740, true},
		{720, 800, false},
	}
	for _, c := range cases {
		if got := samePeriod(c.a, c.b); got != c.want {
			t.Errorf("samePeriod(%d,%d) = %v", c.a, c.b, got)
		}
	}
}

func TestNumLevels(t *testing.T) {
	if NumLevels(1000, Options{}) < 5 {
		t.Error("too few levels for n=1000")
	}
	if NumLevels(1000, Options{MaxLevels: 3}) != 3 {
		t.Error("MaxLevels cap ignored")
	}
	if NumLevels(100, Options{Wavelet: wavelet.Kind(9)}) != 0 {
		t.Error("bad wavelet should give 0")
	}
}

func TestDetectSkipPreprocess(t *testing.T) {
	// Pre-normalized data detected without the HP/winsorize stage.
	x := paperSynthetic(1000, []int{50}, 0.05, 0, 9)
	// Remove the trend manually so SkipPreprocess sees stationary data.
	for i := range x {
		frac := float64(i) / 1000
		x[i] -= 10 * (1 - math.Abs(2*frac-1))
	}
	res, err := Detect(x, Options{SkipPreprocess: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trend != nil {
		t.Error("trend should be nil when preprocessing is skipped")
	}
	if !containsNear(res.Periods, 50, 0.02) {
		t.Errorf("periods = %v", res.Periods)
	}
}

func BenchmarkDetectN1000(b *testing.B) {
	x := paperSynthetic(1000, []int{20, 50, 100}, 0.1, 0.01, 10)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Detect(x, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDetectN2000(b *testing.B) {
	x := paperSynthetic(2000, []int{20, 50, 100}, 0.1, 0.01, 11)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Detect(x, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}
