package core

import (
	"math/rand"
	"testing"
)

// TestDetectNoiseFalsePositiveBound pins the short-window noise
// false-positive rate. At n=512 a deep wavelet level holds only ~5
// cycles of narrow-band noise, which no spectral method can tell from
// an oscillation; the ACF persistence gate (DESIGN.md §6.11) keeps
// the rate near 13% (it was ~33% without the gate). This test fails
// if a future change regresses it past 25%.
func TestDetectNoiseFalsePositiveBound(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	fp := 0
	const trials = 30
	for tr := 0; tr < trials; tr++ {
		x := make([]float64, 512)
		for i := range x {
			x[i] = 10 + rng.NormFloat64()
		}
		res, err := Detect(x, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Periods) > 0 {
			fp++
		}
	}
	if fp > trials/4 {
		t.Errorf("noise false positives %d/%d exceed the 25%% bound", fp, trials)
	}
}
