// Package core implements the complete RobustPeriod pipeline (Fig. 1
// of the paper): HP-filter detrending and winsorized normalization,
// MODWT decoupling of multiple periodicities, robust wavelet-variance
// ranking of levels, and per-level robust single-periodicity detection
// via the Huber-periodogram Fisher test and Huber-ACF-Med validation.
package core

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"math"

	"sort"
	"sync"
	"time"

	"robustperiod/internal/detect"
	"robustperiod/internal/dsp/fft"
	"robustperiod/internal/faults"
	"robustperiod/internal/filter/hp"
	"robustperiod/internal/obs"
	"robustperiod/internal/spectrum"
	"robustperiod/internal/stat/robust"
	"robustperiod/internal/synthetic"
	"robustperiod/internal/trace"
	"robustperiod/internal/wavelet"
)

// Sentinel errors for structurally invalid input, exposed so callers
// (the HTTP service in particular) can map them to distinct client
// error codes with errors.Is rather than string matching.
var (
	// ErrNonFinite marks input containing Inf, or NaN when
	// Options.FillMissing is off.
	ErrNonFinite = errors.New("core: non-finite input")
	// ErrTooManyMissing marks input where more than half the samples
	// are NaN — too sparse for interpolation to preserve periodic
	// structure.
	ErrTooManyMissing = errors.New("core: too many missing values")
)

// Degradation records one graceful-degradation event: the pipeline
// kept going but substituted a cheaper or more conservative step, so
// the result may be lower quality than a clean run. Stage names match
// the trace package's stage constants; Level is the 1-based wavelet
// level for level-scoped events and 0 otherwise.
type Degradation struct {
	Stage  string `json:"stage"`
	Level  int    `json:"level,omitempty"`
	Reason string `json:"reason"`
}

// degrade appends one graceful-degradation annotation and logs it
// against the request scope carried in ctx (if any) — every fallback
// decision inside the pipeline is correlated with the request ID the
// client received. Outside a serving context (library use, tests) the
// log side is a no-op.
func (res *Result) degrade(ctx context.Context, d Degradation) {
	res.Degraded = append(res.Degraded, d)
	obs.Warn(ctx, "pipeline degraded",
		slog.String("stage", d.Stage),
		slog.Int("level", d.Level),
		slog.String("reason", d.Reason))
}

// Degradation reasons. The per-level detector additionally reports
// detect.ReasonBudgetExceeded and detect.ReasonSolverFailed through
// the same channel.
const (
	// ReasonConstantSeries: the input was (numerically) constant, so
	// the empty period set was returned without running the pipeline.
	ReasonConstantSeries = "constant_series"
	// ReasonTrendResidue: the HP trend fit left essentially no
	// residual; the series was declared aperiodic instead of
	// normalizing filter residue into a fake oscillation.
	ReasonTrendResidue = "trend_residue"
	// ReasonScalingBandResidue: the wavelet levels jointly carried a
	// negligible share of the variance; everything lives in the
	// slow-trend scaling band and the levels were not searched.
	ReasonScalingBandResidue = "scaling_band_residue"
	// ReasonHPRobustFallback: the robust (Huber-loss) trend solve
	// failed and the classical quadratic-loss HP trend was used.
	ReasonHPRobustFallback = "hp_robust_fallback"
	// ReasonMODWTFailed: the wavelet decomposition failed; the
	// pipeline fell back to direct single-period detection on the
	// preprocessed series.
	ReasonMODWTFailed = "modwt_failed"
	// ReasonLevelFailed: one wavelet level's detection failed; the
	// level was skipped and the remaining levels proceeded.
	ReasonLevelFailed = "level_failed"
	// ReasonLevelPanic: one wavelet level's detection panicked; the
	// panic was contained to that level.
	ReasonLevelPanic = "level_panic"
)

// Options configures the pipeline. The zero value gives the paper's
// defaults.
type Options struct {
	// Lambda is the Hodrick–Prescott smoothing parameter. <= 0 selects
	// it automatically so the trend filter's half-gain cutoff sits at
	// period n/2 — the longest period the detector can report — which
	// keeps all detectable seasonality out of the estimated trend.
	Lambda float64
	// ClipC is the winsorizing constant c of Ψ (§3.2); <= 0 means 3.
	ClipC float64
	// Wavelet selects the Daubechies family; 0 means Daub8 (db4).
	Wavelet wavelet.Kind
	// MaxLevels caps the MODWT depth; <= 0 means the deepest level
	// whose equivalent filter fits the series.
	MaxLevels int
	// EnergyShare is the cumulative share of total wavelet variance
	// that the processed levels must cover (§3.3.2); <= 0 means 0.95,
	// >= 1 processes every level.
	EnergyShare float64
	// MinLevelCount is the minimum number of non-boundary coefficients
	// required for the unbiased variance; <= 0 means 16.
	MinLevelCount int
	// MinResidualRatio guards against trend-ringing artifacts: if the
	// robust scale of the detrended series is below this fraction of
	// the raw series' scale, the series is declared aperiodic (the
	// "seasonality" would be numerical residue of the HP filter,
	// re-amplified by normalization). <= 0 means 1e-4.
	MinResidualRatio float64
	// Detect configures the per-level single-period detector.
	Detect detect.Config
	// StageBudget bounds each per-level robust periodogram solve. A
	// level that exhausts its budget degrades to the classical
	// periodogram (robust ACF validation still runs) and the result is
	// annotated in Result.Degraded. 0 (the default) derives a budget
	// from the context deadline when one is present: 80% of the
	// remaining time, split across the selected levels when they run
	// sequentially. Negative disables budgeting even under a deadline;
	// positive is an explicit per-level budget.
	StageBudget time.Duration
	// FillMissing linearly interpolates NaN runs in the input before
	// detection (flat extension at the edges) instead of rejecting
	// them; the filled share is reported in Result.FilledFraction.
	// Series that are more than half NaN are rejected with
	// ErrTooManyMissing, and Inf is always rejected.
	FillMissing bool

	// SkipPreprocess feeds the raw series to the MODWT (for data that
	// is already detrended and normalized).
	SkipPreprocess bool
	// RobustTrend replaces the quadratic HP data-fidelity term with a
	// Huber loss (IRLS-solved), keeping sustained spikes from dragging
	// the trend estimate; useful when outliers last long enough that
	// the winsorizing step alone cannot contain them.
	RobustTrend bool
	// FullRobustBand computes robust ordinates on the whole usable
	// band instead of only the level's nominal passband (ablation; the
	// paper's speedup is the passband restriction).
	FullRobustBand bool
	// NonRobust switches to classical wavelet variance, the vanilla
	// periodogram and vanilla ACF — the paper's NR-RobustPeriod
	// ablation.
	NonRobust bool
	// NoHarmonicFilter disables the full-series ACF-hill check that
	// suppresses harmonic false positives of non-sinusoidal waves
	// (ablation switch).
	NoHarmonicFilter bool
	// Parallel runs the per-level detections on separate goroutines.
	// Results are identical to the sequential path; only wall-clock
	// time changes.
	Parallel bool
	// Trace, when non-nil, collects per-stage wall time, allocation
	// counts and stage diagnostics across the whole pipeline; the
	// summary lands in Result.Trace. A nil Trace (the default) is
	// free: the pipeline performs no timing work at all.
	Trace *trace.Trace
	// CircularBoundary disables the reflection-boundary fallback
	// (ablation switch). By default a level whose detection fails on
	// the circular MODWT is retried on a reflection-extended MODWT:
	// the circular wrap joins x[N−1] to x[0] with an arbitrary phase
	// jump, while reflection joins x to its own mirror image — each
	// treatment has a data-dependent boundary defect at deep levels
	// (whose equivalent filters span most of the series), and a
	// genuine periodicity passes validation under at least one of
	// them, whereas noise must pass the full Fisher+ACF gauntlet
	// twice to false-positive.
	CircularBoundary bool
}

func (o Options) withDefaults(n int) Options {
	if o.Lambda <= 0 {
		o.Lambda = hp.LambdaForCutoff(float64(n) / 2)
	}
	if o.ClipC <= 0 {
		o.ClipC = 3
	}
	if o.Wavelet == 0 {
		o.Wavelet = wavelet.Daub8
	}
	if o.EnergyShare <= 0 {
		o.EnergyShare = 0.95
	}
	if o.MinLevelCount <= 0 {
		o.MinLevelCount = 16
	}
	if o.MinResidualRatio <= 0 {
		o.MinResidualRatio = 1e-4
	}
	if o.NonRobust {
		o.Detect.MPOpts.Loss = spectrum.LossL2
	}
	if o.Parallel {
		o.Detect.Parallel = true
	}
	return o
}

// LevelDetail reports what happened at one wavelet level.
type LevelDetail struct {
	Level     int
	Variance  wavelet.LevelVariance
	Selected  bool          // ranked into the dominating-energy set
	Detection detect.Result // populated only when Selected
}

// Result is the full pipeline output.
type Result struct {
	// Periods are the detected period lengths, ascending, deduplicated.
	Periods []int
	// Levels holds per-level diagnostics in level order (Fig. 5).
	Levels []LevelDetail
	// Preprocessed is the detrended, winsorized series fed to the MODWT.
	Preprocessed []float64
	// Trend is the HP trend removed during preprocessing (nil when
	// SkipPreprocess).
	Trend []float64
	// Trace is the per-stage timing/diagnostic summary; populated only
	// when Options.Trace was set.
	Trace *trace.Summary
	// Degraded lists every graceful-degradation event of the run, in
	// the order encountered; empty on a clean full-quality detection.
	Degraded []Degradation
	// FilledFraction is the share of input samples that were NaN and
	// interpolated before detection (Options.FillMissing only).
	FilledFraction float64
}

// Detect runs RobustPeriod on y and returns every detected periodicity.
func Detect(y []float64, opts Options) (*Result, error) {
	return DetectContext(context.Background(), y, opts)
}

// DetectContext is Detect with cooperative cancellation: ctx is
// checked between pipeline stages, before each per-level detection,
// and (through spectrum.Options.Ctx) inside the per-frequency robust
// regressions, so a cancelled or expired context stops the heavy
// periodogram work mid-flight. The first error returned after
// cancellation is ctx.Err().
func DetectContext(ctx context.Context, y []float64, opts Options) (res *Result, err error) {
	if ctx == nil {
		ctx = context.Background()
	}
	n := len(y)
	opts = opts.withDefaults(n)
	// Hand the context to every robust-periodogram solve downstream,
	// and the trace to every stage.
	opts.Detect.MPOpts.Ctx = ctx
	tr := opts.Trace
	opts.Detect.Trace = tr
	if tr.Enabled() {
		defer func() {
			if err == nil && res != nil {
				s := tr.Summary()
				res.Trace = &s
			}
		}()
	}
	if n < 16 {
		return nil, fmt.Errorf("core: series too short (%d < 16)", n)
	}
	missing := 0
	for i, v := range y {
		if math.IsInf(v, 0) {
			return nil, fmt.Errorf("%w: Inf at index %d", ErrNonFinite, i)
		}
		if math.IsNaN(v) {
			if !opts.FillMissing {
				return nil, fmt.Errorf("%w: NaN at index %d; fill gaps first (e.g. robustperiod.Interpolate) or set Options.FillMissing", ErrNonFinite, i)
			}
			missing++
		}
	}
	if missing*2 > n {
		return nil, fmt.Errorf("%w: %d of %d samples are NaN", ErrTooManyMissing, missing, n)
	}
	if missing > 0 {
		mask := make([]bool, n)
		filled := make([]float64, n)
		for i, v := range y {
			filled[i] = v
			mask[i] = math.IsNaN(v)
		}
		synthetic.InterpolateMasked(filled, mask)
		y = filled
	}

	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Validate structural options before any fast path can return, so
	// a bad configuration always errors rather than silently "working"
	// on degenerate input.
	f, err := wavelet.NewFilter(opts.Wavelet)
	if err != nil {
		return nil, err
	}

	res = &Result{FilledFraction: float64(missing) / float64(n)}

	// Degenerate input: a (numerically) constant series carries no
	// oscillation, and pushing it through detrending + normalization
	// would only amplify rounding noise. Report the empty period set
	// immediately. The peak-to-peak test is deliberate — a robust
	// scale like the MAD is zero for sparse spike trains too, and
	// those are genuinely periodic.
	lo, hi := y[0], y[0]
	for _, v := range y {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if span := math.Max(math.Abs(lo), math.Abs(hi)); hi-lo <= 1e-12*span {
		res.degrade(ctx, Degradation{Stage: trace.StageHPFilter, Reason: ReasonConstantSeries})
		res.Preprocessed = make([]float64, n)
		return res, nil
	}

	// Resolve the per-level periodogram budget: explicit > derived
	// from the deadline > none. The derived budget spends at most 80%
	// of the remaining time on periodogram solves, split across the
	// selected levels when they run one after another, so even a
	// pathological solve leaves room for validation before the
	// deadline; the split factor is applied once the selection is
	// known, below.
	budget := opts.StageBudget
	if budget == 0 {
		if dl, ok := ctx.Deadline(); ok {
			if remain := time.Until(dl); remain > 0 {
				budget = remain * 4 / 5
			}
		}
	}
	if budget > 0 {
		opts.Detect.Budget = budget
	}

	x := y
	if !opts.SkipPreprocess {
		st := tr.StartStage(trace.StageHPFilter)
		var detrended, trend []float64
		if opts.RobustTrend {
			var irlsIters int
			var herr error
			trend, irlsIters, herr = hp.RobustTrendFilter(y, opts.Lambda, 0, 0)
			if herr != nil {
				// The IRLS solve failed; RobustTrendFilter already
				// handed back the classical quadratic-loss trend, so
				// detection proceeds at slightly reduced outlier
				// resistance rather than aborting.
				res.degrade(ctx, Degradation{Stage: trace.StageHPFilter, Reason: ReasonHPRobustFallback})
				tr.Count(trace.StageHPFilter, "robust_trend_fallbacks", 1)
			}
			tr.Count(trace.StageHPFilter, "irls_iters", int64(irlsIters))
			detrended = make([]float64, n)
			for i := range y {
				detrended[i] = y[i] - trend[i]
			}
		} else {
			detrended, trend = hp.Detrend(y, opts.Lambda)
		}
		res.Trend = trend
		// Scale guard: an essentially perfect trend fit means whatever
		// remains is filter residue, not seasonality. Normalizing it
		// would manufacture a spurious oscillation at the HP filter's
		// ringing period.
		rawScale := robust.MADN(y)
		if rawScale > 0 && robust.MADN(detrended) < opts.MinResidualRatio*rawScale {
			res.degrade(ctx, Degradation{Stage: trace.StageHPFilter, Reason: ReasonTrendResidue})
			res.Preprocessed = detrended
			st.End()
			return res, nil
		}
		x = robust.Winsorize(detrended, opts.ClipC)
		st.End()
	} else {
		x = append([]float64(nil), y...)
	}
	res.Preprocessed = x

	levels := wavelet.MaxLevel(n, f)
	if opts.MaxLevels > 0 && opts.MaxLevels < levels {
		levels = opts.MaxLevels
	}
	if levels < 1 {
		// Series too short for any MODWT level with this filter:
		// degrade gracefully to direct single-period detection.
		det, derr := detect.Single(x, 1, n-1, opts.Detect)
		if derr != nil {
			return nil, derr
		}
		if det.Degraded != "" {
			res.degrade(ctx, Degradation{Stage: trace.StagePeriodogram, Reason: det.Degraded})
		}
		if det.Periodic {
			res.Periods = []int{det.Final}
		}
		res.Levels = []LevelDetail{{Level: 0, Selected: true, Detection: det}}
		return res, nil
	}

	m, err := wavelet.TransformTraced(x, f, levels, tr)
	if err != nil {
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		// The decomposition failed. Multi-periodicity separation is
		// lost, but direct single-period detection on the preprocessed
		// series still recovers the dominant component.
		det, derr := detect.Single(x, 1, n-1, opts.Detect)
		if derr != nil {
			return nil, err
		}
		res.degrade(ctx, Degradation{Stage: trace.StageMODWT, Reason: ReasonMODWTFailed})
		if det.Degraded != "" {
			res.degrade(ctx, Degradation{Stage: trace.StagePeriodogram, Reason: det.Degraded})
		}
		tr.Count(trace.StageMODWT, "modwt_fallbacks", 1)
		if det.Periodic {
			res.Periods = []int{det.Final}
		}
		res.Levels = []LevelDetail{{Level: 0, Selected: true, Detection: det}}
		return res, nil
	}
	// Reflection-extended transform, built lazily for the boundary
	// fallback below.
	var mr *wavelet.MODWT
	var mrOnce sync.Once
	reflected := func() *wavelet.MODWT {
		mrOnce.Do(func() {
			st := tr.StartStage(trace.StageMODWT)
			mr, _ = wavelet.TransformReflected(x, f, levels)
			st.End()
		})
		return mr
	}
	st := tr.StartStage(trace.StageRanking)
	var vars []wavelet.LevelVariance
	if opts.NonRobust {
		vars = m.ClassicalVariances(opts.MinLevelCount)
	} else {
		vars = m.RobustVariances(opts.MinLevelCount)
	}

	res.Levels = make([]LevelDetail, levels)
	total := 0.0
	for j := range vars {
		res.Levels[j] = LevelDetail{Level: j + 1, Variance: vars[j]}
		total += vars[j].Variance
	}

	// If the wavelet levels jointly carry a negligible share of the
	// series' variance, everything lives in the scaling (slow-trend)
	// band below the deepest level — typically the smooth ringing
	// residue of detrending a strong trend. The levels then contain
	// only a coherent echo of that residue and any "period" found in
	// them is an artifact.
	if xVar := robust.BiweightMidvariance(x); total < 0.01*xVar {
		res.degrade(ctx, Degradation{Stage: trace.StageRanking, Reason: ReasonScalingBandResidue})
		st.End()
		return res, nil
	}

	// Rank levels by variance and keep the dominating-energy prefix.
	order := make([]int, levels)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		return vars[order[a]].Variance > vars[order[b]].Variance
	})
	selected := order
	if opts.EnergyShare < 1 && total > 0 {
		cum := 0.0
		for i, idx := range order {
			cum += vars[idx].Variance
			if cum >= opts.EnergyShare*total {
				selected = order[:i+1]
				break
			}
		}
	}
	st.End()
	tr.Count(trace.StageRanking, "levels_ranked", int64(levels))
	tr.Count(trace.StageRanking, "levels_selected", int64(len(selected)))

	// A derived (deadline-based) budget is for the whole periodogram
	// stage; sequential levels share it, parallel levels each get it.
	if opts.StageBudget == 0 && opts.Detect.Budget > 0 && !opts.Parallel && len(selected) > 1 {
		opts.Detect.Budget /= time.Duration(len(selected))
	}

	detectLevel := func(idx int) (det detect.Result, deg []Degradation, err error) {
		defer func() {
			if r := recover(); r != nil {
				// Contain the blast radius to this level: record the
				// panic as a degradation and let the other levels'
				// verdicts stand.
				det, err = detect.Result{}, nil
				deg = []Degradation{{Stage: trace.StagePeriodogram, Level: idx + 1, Reason: ReasonLevelPanic}}
				tr.Count(trace.StagePeriodogram, "level_panics", 1)
			}
		}()
		if cerr := ctx.Err(); cerr != nil {
			return detect.Result{}, nil, cerr
		}
		if ferr := faults.Check(faults.PointCoreLevel); ferr != nil {
			obs.FromContext(ctx).AddFault(faults.PointCoreLevel)
			tr.Count(trace.StagePeriodogram, "level_failures", 1)
			return detect.Result{}, []Degradation{{Stage: trace.StagePeriodogram, Level: idx + 1, Reason: ReasonLevelFailed}}, nil
		}
		kLo, kHi := Passband(n, idx+1)
		if opts.FullRobustBand {
			kLo, kHi = 1, n-1
		}
		annotate := func(d detect.Result) []Degradation {
			if d.Degraded == "" {
				return nil
			}
			return []Degradation{{Stage: trace.StagePeriodogram, Level: idx + 1, Reason: d.Degraded}}
		}
		det, derr := detect.Single(m.W[idx], kLo, kHi, opts.Detect)
		if derr != nil || det.Periodic || opts.CircularBoundary {
			return det, annotate(det), derr
		}
		// Boundary fallback: retry the level on reflection-extended
		// coefficients; keep whichever verdict is periodic.
		rm := reflected()
		if rm == nil {
			return det, annotate(det), nil
		}
		det2, derr2 := detect.Single(rm.W[idx], kLo, kHi, opts.Detect)
		if derr2 == nil && det2.Periodic {
			return det2, annotate(det2), nil
		}
		return det, annotate(det), nil
	}
	results := make([]detect.Result, levels)
	degs := make([][]Degradation, levels)
	errs := make([]error, levels)
	if opts.Parallel && len(selected) > 1 {
		var wg sync.WaitGroup
		for _, idx := range selected {
			wg.Add(1)
			go func(idx int) {
				defer wg.Done()
				results[idx], degs[idx], errs[idx] = detectLevel(idx)
			}(idx)
		}
		wg.Wait()
	} else {
		for _, idx := range selected {
			results[idx], degs[idx], errs[idx] = detectLevel(idx)
		}
	}
	var hits []found
	for _, idx := range selected {
		if errs[idx] != nil {
			return nil, errs[idx]
		}
		res.Levels[idx].Selected = true
		res.Levels[idx].Detection = results[idx]
		for _, d := range degs[idx] {
			res.degrade(ctx, d)
		}
		if results[idx].Periodic {
			hits = append(hits, found{results[idx].Final, vars[idx].Variance})
		}
	}
	if tr.Enabled() {
		alpha := opts.Detect.Alpha
		if alpha <= 0 {
			alpha = 0.01
		}
		for j := range res.Levels {
			lv := res.Levels[j]
			d := lv.Detection
			tr.RecordLevel(trace.LevelOutcome{
				Level:    lv.Level,
				Variance: lv.Variance.Variance,
				Boundary: lv.Variance.Boundary,
				Selected: lv.Selected,
				Fisher:   lv.Selected && d.Candidate != 0 && d.PValue < alpha,
				Periodic: d.Periodic,
				Period:   d.Final,
			})
		}
	}

	if err := ctx.Err(); err != nil {
		return nil, err
	}
	sv := tr.StartStage(trace.StageValidation)
	acfFull := fft.Autocorrelation(x)

	// Refinement against the full-series ACF is only trustworthy when
	// the period is long relative to the series: with ten or more
	// observed cycles, the wavelet-level median-distance estimate is
	// already sharp, and interlaced shorter components can displace the
	// full-ACF peak (the interference effect of §4.3.2); with only a
	// handful of cycles the full-ACF peak is the better estimate.
	// Refining before deduplication also converges adjacent levels'
	// slightly different estimates of the same component onto one peak.
	//lint:ignore rplint/ctxloop bounded post-processing (one ACF scan per wavelet level) right after the ctx poll above
	for i := range hits {
		if hits[i].period > n/10 {
			hits[i].period = refinePeriod(acfFull, hits[i].period)
			// Refinement may not push a period past the detectable
			// maximum of n/2.
			if hits[i].period > n/2 {
				hits[i].period = n / 2
			}
		}
	}

	// Merge near-duplicate periods across adjacent levels, keeping the
	// value detected at the higher-variance level.
	sort.Slice(hits, func(a, b int) bool { return hits[a].variance > hits[b].variance })
	var merged []found
	//lint:ignore rplint/ctxloop dedup over at most a few dozen per-level hits; negligible next to the transform it follows
	for _, h := range hits {
		dup := false
		for mi := range merged {
			m := &merged[mi]
			if !samePeriod(m.period, h.period) && !sameLowResComponent(m.period, h.period, n) {
				continue
			}
			dup = true
			// Between two estimates of the same component, keep the
			// one the full-series ACF supports more strongly — the
			// level variance says which component is louder, not
			// which level measured its period better.
			if acfAt(acfFull, h.period) > acfAt(acfFull, m.period) {
				m.period = h.period
			}
			break
		}
		if !dup {
			merged = append(merged, h)
		}
	}

	if len(merged) > 1 && !opts.NoHarmonicFilter {
		merged = suppressHarmonics(merged, acfFull)
	}

	periods := make([]int, 0, len(merged))
	//lint:ignore rplint/ctxloop copies out at most a few dozen merged periods
	for _, m := range merged {
		periods = append(periods, m.period)
	}
	sort.Ints(periods)
	res.Periods = periods
	sv.End()
	return res, nil
}

// found pairs a detected period with the wavelet variance of the level
// that produced it.
type found struct {
	period   int
	variance float64
}

// suppressHarmonics drops detections that are best explained as
// harmonics of another detected period. A non-sinusoidal wave of
// period T leaks genuinely T/3-periodic energy into a finer wavelet
// level, which passes the per-level validation; but a harmonic is
// simultaneously (a) an integer divisor of a detected period, (b) far
// weaker than its fundamental (a square wave's 3rd harmonic carries
// 1/9 of the power), and (c) absent from the full-series ACF (the
// square wave's triangular ACF has no hill at T/3). A genuine
// interlaced period — daily inside weekly, or 50 beside 100 — always
// violates (b) or (c), so all three conditions must hold to suppress.
func suppressHarmonics(hits []found, acfFull []float64) []found {
	kept := make([]found, 0, len(hits))
	for _, h := range hits {
		suppress := false
		for _, q := range hits {
			if q.period <= h.period {
				continue
			}
			m := int(math.Round(float64(q.period) / float64(h.period)))
			if m < 2 {
				continue
			}
			offTarget := math.Abs(float64(q.period) - float64(m*h.period))
			if offTarget > 0.05*float64(q.period)+1 {
				continue
			}
			if h.variance >= 0.2*q.variance {
				continue
			}
			if hasACFHill(acfFull, h.period) {
				continue
			}
			suppress = true
			break
		}
		if !suppress {
			kept = append(kept, h)
		}
	}
	return kept
}

// hasACFHill reports whether the full-series ACF has a prominent local
// maximum with positive correlation within a small window around lag
// p: the candidate hill must rise meaningfully above the window edges,
// so noise wiggles on the slope of a larger period's ACF bump do not
// count.
func hasACFHill(acf []float64, p int) bool {
	w := p / 20
	if w < 2 {
		w = 2
	}
	lo, hi := p-w, p+w
	if lo < 1 {
		lo = 1
	}
	if hi > len(acf)-2 {
		hi = len(acf) - 2
	}
	if lo > hi {
		return false
	}
	best, bestV := -1, 0.01
	for i := lo; i <= hi; i++ {
		if acf[i] > bestV && acf[i] >= acf[i-1] && acf[i] >= acf[i+1] {
			best, bestV = i, acf[i]
		}
	}
	if best < 0 {
		return false
	}
	// Prominence: the peak must exceed the lower window edge by a
	// margin; a monotone slope through the window has its maximum at
	// an edge and fails automatically.
	edge := math.Min(acf[lo], acf[hi])
	return bestV-edge > 0.02
}

// refinePeriod snaps a detected period to the nearest local maximum of
// the full-series ACF within ±8%, when such a peak exists. The
// wavelet-level ACF estimates a period from band-passed coefficients,
// which can be a few percent off for long periods observed over few
// cycles; the full-series ACF peak, when present, is the sharper
// estimate. When no peak exists in the window (e.g. the period's ACF
// hill is masked by stronger interlaced components — the paper's
// AUTOPERIOD failure case), the level estimate is kept.
func refinePeriod(acf []float64, p int) int {
	w := p / 12
	if w < 2 {
		w = 2
	}
	lo, hi := p-w, p+w
	if lo < 2 {
		lo = 2
	}
	if hi > len(acf)-2 {
		hi = len(acf) - 2
	}
	best, bestV := -1, math.Inf(-1)
	for i := lo; i <= hi; i++ {
		if acf[i] >= acf[i-1] && acf[i] >= acf[i+1] && acf[i] > bestV {
			best, bestV = i, acf[i]
		}
	}
	if best < 0 || bestV <= 0 {
		return p
	}
	// Require genuine hill prominence over the window edges, as in
	// hasACFHill, so slope noise does not drag the estimate.
	if bestV-math.Min(acf[lo], acf[hi]) <= 0.02 {
		return p
	}
	return best
}

// acfAt returns the ACF value at lag p, or -Inf when out of range.
func acfAt(acf []float64, p int) float64 {
	if p < 1 || p >= len(acf) {
		return math.Inf(-1)
	}
	return acf[p]
}

// sameLowResComponent reports whether two long-period detections must
// be the same underlying component: with fewer than ~10 observed
// cycles the spectral resolution is about one padded bin, so adjacent
// wavelet levels can report the same component up to ~25% apart.
// Genuine distinct periods that close are unresolvable at this length
// by any spectral method; the higher-variance level's value wins.
func sameLowResComponent(a, b, n int) bool {
	if a > b {
		a, b = b, a
	}
	if a <= n/10 {
		return false
	}
	return float64(b) < 1.3*float64(a)
}

// samePeriod reports whether two detected period lengths should be
// treated as one periodicity (within one sample or 3% relative).
func samePeriod(a, b int) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	if d <= 1 {
		return true
	}
	lo := a
	if b < lo {
		lo = b
	}
	return float64(d) <= 0.03*float64(lo)
}

// Passband returns the padded-spectrum frequency range [kLo, kHi]
// corresponding to wavelet level j's nominal octave band
// 1/2^{j+1} <= |f| <= 1/2^j for a series of length n (padded to 2n):
// periods in [2^j, 2^{j+1}] map to k in [2n/2^{j+1}, 2n/2^j].
func Passband(n, level int) (kLo, kHi int) {
	np := 2 * n
	kLo = np >> uint(level+1)
	kHi = np >> uint(level)
	if kLo < 1 {
		kLo = 1
	}
	if kHi > n-1 {
		kHi = n - 1
	}
	if kHi < kLo {
		kHi = kLo
	}
	return kLo, kHi
}

// NumLevels returns the MODWT depth Detect will use for a series of
// length n under opts; exposed for diagnostics and tests.
func NumLevels(n int, opts Options) int {
	opts = opts.withDefaults(n)
	f, err := wavelet.NewFilter(opts.Wavelet)
	if err != nil {
		return 0
	}
	levels := wavelet.MaxLevel(n, f)
	if opts.MaxLevels > 0 && opts.MaxLevels < levels {
		levels = opts.MaxLevels
	}
	return levels
}
