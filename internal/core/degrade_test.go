package core

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"robustperiod/internal/faults"
	"robustperiod/internal/wavelet"
)

// armFaults installs a fault plan for the test and guarantees it is
// disarmed on cleanup.
func armFaults(t *testing.T, spec string) {
	t.Helper()
	faults.Enable(faults.MustParse(spec))
	t.Cleanup(faults.Disable)
}

func hasReason(degs []Degradation, reason string) bool {
	for _, d := range degs {
		if d.Reason == reason {
			return true
		}
	}
	return false
}

func TestConstantSeriesFastPath(t *testing.T) {
	for _, c := range []float64{0, 1, -273.15, 1e9} {
		x := make([]float64, 128)
		for i := range x {
			x[i] = c
		}
		res, err := Detect(x, Options{})
		if err != nil {
			t.Fatalf("constant %g: %v", c, err)
		}
		if len(res.Periods) != 0 {
			t.Errorf("constant %g: periods = %v, want none", c, res.Periods)
		}
		if !hasReason(res.Degraded, ReasonConstantSeries) {
			t.Errorf("constant %g: Degraded = %v, want %s", c, res.Degraded, ReasonConstantSeries)
		}
	}
	// Near-constant: one part in 10^14 of jitter is numerical noise,
	// not seasonality.
	x := make([]float64, 128)
	for i := range x {
		x[i] = 5e6 + 1e-8*float64(i%2)
	}
	res, err := Detect(x, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Periods) != 0 || !hasReason(res.Degraded, ReasonConstantSeries) {
		t.Errorf("near-constant: periods=%v degraded=%v", res.Periods, res.Degraded)
	}
	// A sparse spike train has MAD 0 but is genuinely periodic — it
	// must NOT take the constant fast path.
	spikes := make([]float64, 256)
	for i := 0; i < 256; i += 32 {
		spikes[i] = 10
	}
	res, err = Detect(spikes, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if hasReason(res.Degraded, ReasonConstantSeries) {
		t.Error("spike train misclassified as constant")
	}
}

func TestConstantSeriesStillValidatesOptions(t *testing.T) {
	if _, err := Detect(make([]float64, 100), Options{Wavelet: wavelet.Kind(7)}); err == nil {
		t.Error("bad wavelet must error even on degenerate input")
	}
}

func TestFillMissing(t *testing.T) {
	x := paperSynthetic(600, []int{50}, 0.05, 0, 3)
	// Punch a few holes, including a run.
	for _, i := range []int{10, 11, 12, 200, 433} {
		x[i] = math.NaN()
	}
	if _, err := Detect(x, Options{}); !errors.Is(err, ErrNonFinite) {
		t.Fatalf("NaN without FillMissing: err = %v, want ErrNonFinite", err)
	}
	res, err := Detect(x, Options{FillMissing: true})
	if err != nil {
		t.Fatal(err)
	}
	want := 5.0 / 600
	if math.Abs(res.FilledFraction-want) > 1e-12 {
		t.Errorf("FilledFraction = %g, want %g", res.FilledFraction, want)
	}
	found := false
	for _, p := range res.Periods {
		if p >= 48 && p <= 52 {
			found = true
		}
	}
	if !found {
		t.Errorf("period 50 lost after filling 5 gaps: %v", res.Periods)
	}
}

func TestFillMissingRejectsInfAndSparse(t *testing.T) {
	x := paperSynthetic(100, []int{20}, 0.05, 0, 4)
	x[30] = math.Inf(1)
	if _, err := Detect(x, Options{FillMissing: true}); !errors.Is(err, ErrNonFinite) {
		t.Errorf("Inf: err = %v, want ErrNonFinite", err)
	}
	x = paperSynthetic(100, []int{20}, 0.05, 0, 4)
	for i := 0; i < 51; i++ {
		x[i] = math.NaN()
	}
	if _, err := Detect(x, Options{FillMissing: true}); !errors.Is(err, ErrTooManyMissing) {
		t.Errorf("51%% missing: err = %v, want ErrTooManyMissing", err)
	}
}

// TestSolverFaultDegradesNotFails is the heart of the graceful
// degradation contract: with the robust periodogram solver broken,
// detection still returns and still finds the period via the
// classical-periodogram fallback (robust ACF validation unchanged).
func TestSolverFaultDegradesNotFails(t *testing.T) {
	armFaults(t, "spectrum/solver:error")
	hits := 0
	const trials = 5
	for s := int64(0); s < trials; s++ {
		x := paperSynthetic(1000, []int{50}, 0.1, 0, 100+s)
		res, err := Detect(x, Options{})
		if err != nil {
			t.Fatalf("seed %d: degraded detection errored: %v", s, err)
		}
		if len(res.Degraded) == 0 {
			t.Fatalf("seed %d: no degradation annotation under solver fault", s)
		}
		for _, p := range res.Periods {
			if p >= 48 && p <= 52 {
				hits++
				break
			}
		}
	}
	if hits < trials-1 {
		t.Errorf("degraded pipeline found period 50 in %d/%d trials", hits, trials)
	}
}

func TestHPRobustFaultFallsBackToClassicalTrend(t *testing.T) {
	armFaults(t, "hp/robust_solver:error")
	x := paperSynthetic(800, []int{40}, 0.1, 0, 7)
	res, err := Detect(x, Options{RobustTrend: true})
	if err != nil {
		t.Fatal(err)
	}
	if !hasReason(res.Degraded, ReasonHPRobustFallback) {
		t.Errorf("Degraded = %v, want %s", res.Degraded, ReasonHPRobustFallback)
	}
	if len(res.Periods) == 0 {
		t.Error("no periods after HP fallback")
	}
}

func TestMODWTFaultDegradesToDirectDetection(t *testing.T) {
	armFaults(t, "wavelet/transform:error")
	x := paperSynthetic(1000, []int{50}, 0.1, 0, 9)
	res, err := Detect(x, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !hasReason(res.Degraded, ReasonMODWTFailed) {
		t.Fatalf("Degraded = %v, want %s", res.Degraded, ReasonMODWTFailed)
	}
	found := false
	for _, p := range res.Periods {
		if p >= 48 && p <= 52 {
			found = true
		}
	}
	if !found {
		t.Errorf("direct fallback lost period 50: %v", res.Periods)
	}
}

func TestLevelFaultSkipsLevelOnly(t *testing.T) {
	// One level fails; the others still report. times=1 so exactly one
	// of the selected levels is hit.
	armFaults(t, "core/level:error:times=1")
	x := paperSynthetic(1000, []int{20, 100}, 0.1, 0, 11)
	res, err := Detect(x, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !hasReason(res.Degraded, ReasonLevelFailed) {
		t.Fatalf("Degraded = %v, want %s", res.Degraded, ReasonLevelFailed)
	}
	if len(res.Periods) == 0 {
		t.Error("losing one level lost every period")
	}
}

func TestLevelPanicIsContained(t *testing.T) {
	for _, parallel := range []bool{false, true} {
		armFaults(t, "core/level:panic:times=1")
		x := paperSynthetic(1000, []int{20, 100}, 0.1, 0, 13)
		res, err := Detect(x, Options{Parallel: parallel})
		faults.Disable()
		if err != nil {
			t.Fatalf("parallel=%v: %v", parallel, err)
		}
		if !hasReason(res.Degraded, ReasonLevelPanic) {
			t.Fatalf("parallel=%v: Degraded = %v, want %s", parallel, res.Degraded, ReasonLevelPanic)
		}
		if len(res.Periods) == 0 {
			t.Errorf("parallel=%v: one panicking level lost every period", parallel)
		}
	}
}

func TestStageBudgetDegradesWithinLiveContext(t *testing.T) {
	// A 1ns explicit budget forces every robust solve past its budget
	// immediately; the parent context stays live, so each level must
	// fall back to the classical periodogram rather than error.
	x := paperSynthetic(1000, []int{50}, 0.1, 0, 17)
	res, err := Detect(x, Options{StageBudget: time.Nanosecond})
	if err != nil {
		t.Fatal(err)
	}
	if !hasReason(res.Degraded, "periodogram_budget_exceeded") {
		t.Fatalf("Degraded = %v, want periodogram_budget_exceeded", res.Degraded)
	}
	found := false
	for _, p := range res.Periods {
		if p >= 48 && p <= 52 {
			found = true
		}
	}
	if !found {
		t.Errorf("budget fallback lost period 50: %v", res.Periods)
	}
}

func TestExpiredDeadlineStillErrors(t *testing.T) {
	// Degradation must never mask a dead caller: an already-expired
	// context returns the context error, not a degraded result.
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	x := paperSynthetic(1000, []int{50}, 0.1, 0, 19)
	if _, err := DetectContext(ctx, x, Options{}); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err = %v, want DeadlineExceeded", err)
	}
}

func TestNegativeStageBudgetDisablesDerivation(t *testing.T) {
	// With StageBudget < 0 a generous deadline must not introduce
	// budget machinery: the result is identical to the unbounded run.
	x := paperSynthetic(1000, []int{20, 100}, 0.1, 0, 23)
	plain, err := Detect(x, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Hour)
	defer cancel()
	bounded, err := DetectContext(ctx, x, Options{StageBudget: -1})
	if err != nil {
		t.Fatal(err)
	}
	if len(plain.Periods) != len(bounded.Periods) {
		t.Fatalf("periods differ: %v vs %v", plain.Periods, bounded.Periods)
	}
	for i := range plain.Periods {
		if plain.Periods[i] != bounded.Periods[i] {
			t.Fatalf("periods differ: %v vs %v", plain.Periods, bounded.Periods)
		}
	}
	if len(bounded.Degraded) != 0 {
		t.Errorf("unexpected degradations: %v", bounded.Degraded)
	}
}

// TestDisabledFaultsZeroOverhead pins the hot-path cost of the fault
// framework at zero allocations when no plan is armed.
func TestDisabledFaultsZeroOverhead(t *testing.T) {
	faults.Disable()
	if n := testing.AllocsPerRun(1000, func() {
		if faults.Check(faults.PointCoreLevel) != nil {
			t.Fail()
		}
		if faults.Check(faults.PointSpectrumSolver) != nil {
			t.Fail()
		}
	}); n != 0 {
		t.Errorf("disabled fault checks allocate %v objects/op, want 0", n)
	}
}
