package core

import (
	"reflect"
	"testing"

	"robustperiod/internal/trace"
)

// TestTracedDetectionIdentical pins the tracing layer's observability
// contract: attaching a Trace must not change any detection output —
// periods, per-level verdicts, preprocessed series — bit for bit.
func TestTracedDetectionIdentical(t *testing.T) {
	x := paperSynthetic(1000, []int{20, 50, 100}, 0.1, 0.01, 7)

	plain, err := Detect(x, Options{})
	if err != nil {
		t.Fatal(err)
	}
	traced, err := Detect(x, Options{Trace: trace.New()})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain.Periods, traced.Periods) {
		t.Fatalf("periods differ: %v vs %v", plain.Periods, traced.Periods)
	}
	if !reflect.DeepEqual(plain.Preprocessed, traced.Preprocessed) {
		t.Fatal("preprocessed series differ")
	}
	if len(plain.Levels) != len(traced.Levels) {
		t.Fatalf("level count differs: %d vs %d", len(plain.Levels), len(traced.Levels))
	}
	for i := range plain.Levels {
		a, b := plain.Levels[i], traced.Levels[i]
		if a.Selected != b.Selected || a.Detection.Periodic != b.Detection.Periodic ||
			a.Detection.Final != b.Detection.Final || a.Variance != b.Variance {
			t.Fatalf("level %d differs: %+v vs %+v", i+1, a, b)
		}
	}
	if plain.Trace != nil {
		t.Fatal("untraced detection carries a trace summary")
	}
	if traced.Trace == nil {
		t.Fatal("traced detection carries no trace summary")
	}
}

// TestTraceCoversPipeline checks a full multi-period detection records
// every canonical stage exactly once, with sane contents.
func TestTraceCoversPipeline(t *testing.T) {
	x := paperSynthetic(1000, []int{20, 50, 100}, 0.1, 0.01, 3)
	tr := trace.New()
	res, err := Detect(x, Options{Trace: tr})
	if err != nil {
		t.Fatal(err)
	}
	s := res.Trace
	seen := map[string]int{}
	for _, st := range s.Stages {
		seen[st.Name]++
	}
	for _, name := range trace.PipelineStages() {
		if seen[name] != 1 {
			t.Errorf("stage %q appears %d times in summary, want exactly 1 (stages: %v)",
				name, seen[name], stageNames(s))
		}
	}
	pg := s.Stage(trace.StagePeriodogram)
	if pg.Duration <= 0 || pg.Calls < 1 {
		t.Fatalf("periodogram stage empty: %+v", pg)
	}
	if pg.Counters["solver_iters"] <= 0 {
		t.Fatalf("no solver iterations recorded: %v", pg.Counters)
	}
	md := s.Stage(trace.StageMODWT)
	if md.Counters["levels"] < 1 || md.Counters["boundary_dropped"] < 1 {
		t.Fatalf("modwt diagnostics missing: %v", md.Counters)
	}
	if got := s.Stage(trace.StageRanking).Counters["levels_selected"]; got < 1 {
		t.Fatalf("no selected levels recorded: %d", got)
	}
	if len(s.Levels) != len(res.Levels) {
		t.Fatalf("trace has %d level outcomes, result has %d levels", len(s.Levels), len(res.Levels))
	}
	periodicInTrace := 0
	for _, lv := range s.Levels {
		if lv.Periodic {
			periodicInTrace++
		}
	}
	if periodicInTrace == 0 {
		t.Fatal("no periodic level outcome recorded for a 3-periodic series")
	}
	if s.Total <= 0 {
		t.Fatalf("total %v not positive", s.Total)
	}
}

// TestTracedParallelDetection exercises the trace's concurrency paths
// through the parallel per-level fan-out (run under -race in CI).
func TestTracedParallelDetection(t *testing.T) {
	x := paperSynthetic(1000, []int{20, 50, 100}, 0.1, 0.01, 11)
	tr := trace.New()
	res, err := Detect(x, Options{Trace: tr, Parallel: true})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := Detect(x, Options{Parallel: true})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Periods, plain.Periods) {
		t.Fatalf("traced parallel periods differ: %v vs %v", res.Periods, plain.Periods)
	}
	if res.Trace.Stage(trace.StagePeriodogram) == nil {
		t.Fatal("parallel detection recorded no periodogram stage")
	}
}

func stageNames(s *trace.Summary) []string {
	names := make([]string, len(s.Stages))
	for i, st := range s.Stages {
		names[i] = st.Name
	}
	return names
}
