// Package jobs is the asynchronous execution tier between the HTTP
// handlers and the detection pipeline: POST /v1/jobs submissions
// become Jobs that are coalesced, fairly scheduled, executed on the
// serving layer's worker pool, and retained for polling clients.
//
// Three mechanisms make it fit duplicate-rich, multi-tenant traffic
// (the paper's cloud-monitoring deployment, where dashboards, alerting
// and downstream consumers all re-detect the same KPI series):
//
//   - Request coalescing: submissions are keyed by the same FNV
//     fingerprint the result cache uses; while an execution for a key
//     is in flight, further submissions attach to it as followers and
//     one pipeline run fans its result out to every attached job.
//   - Fair-share admission: queued executions dispatch under deficit
//     round-robin across tenants, with per-tenant and global pending
//     bounds, so one heavy client cannot starve the rest no matter how
//     fast it submits.
//   - A bounded TTL store: terminal jobs are retained in dual rings
//     (failed/degraded jobs pinned preferentially, after the flight
//     recorder's design) and reaped once their TTL elapses.
//
// The package is pure standard library plus the repository's own
// internal packages, and never imports the serving layer: the manager
// receives its pipeline entry point and worker-pool hook as callbacks.
package jobs

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"time"

	"robustperiod/internal/faults"
	"robustperiod/internal/obs"
	"robustperiod/internal/registry"
	"robustperiod/internal/trace"
	"robustperiod/internal/wal"
)

// State is a job's lifecycle position. The wire form is the lowercase
// name; transitions are queued → running → done|failed.
type State uint8

// Job lifecycle states.
const (
	StateQueued State = iota
	StateRunning
	StateDone
	StateFailed
)

func (s State) String() string {
	switch s {
	case StateQueued:
		return "queued"
	case StateRunning:
		return "running"
	case StateDone:
		return "done"
	case StateFailed:
		return "failed"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// StateNames lists the lifecycle states in transition order, for the
// per-state metric gauges.
func StateNames() []string {
	return []string{
		StateQueued.String(), StateRunning.String(),
		StateDone.String(), StateFailed.String(),
	}
}

// Key identifies one detection request for coalescing: the serving
// layer's dual-FNV (series, options) fingerprint plus the series
// length. Two submissions with equal keys are the same computation.
type Key struct {
	H1, H2 uint64
	N      int
}

// Job is one async detection submission. The manager hands out value
// copies; the canonical job is mutated only under the manager's lock.
type Job struct {
	ID        obs.ID
	Tenant    string
	Key       Key
	Cost      int  // scheduling cost in series points
	Coalesced bool // attached to another submission's execution
	Payload   any  // opaque request payload handed to Exec

	Submitted time.Time
	Started   time.Time
	Finished  time.Time
	Expires   time.Time // terminal retention deadline

	State    State
	Result   any
	Degraded bool // execution completed with degradation annotations
	Err      error

	// Durable encodings of Payload/Result (codec output), retained so
	// snapshots re-serialize without re-encoding. Empty when the
	// manager runs in-memory.
	payloadRaw []byte
	resultRaw  []byte
}

// Sentinel submission failures. The serving layer maps them onto 429
// (queue bounds) and 503 (shutdown) responses.
var (
	ErrQueueFull       = errors.New("jobs: pending-job queue is full")
	ErrTenantQueueFull = errors.New("jobs: tenant's pending-job bound reached")
	ErrClosed          = errors.New("jobs: manager closed")
)

// Exec runs one detection for a leader job's payload. It executes on a
// worker-pool goroutine with ctx bounding the run; degraded reports
// whether the result carries graceful-degradation annotations (which
// pins the finished job preferentially, like the flight recorder).
type Exec func(ctx context.Context, payload any) (result any, degraded bool, err error)

// Config assembles a Manager. Exec and PoolSubmit are required; every
// other zero value selects a production-safe default.
type Config struct {
	// Exec is the pipeline entry point (required).
	Exec Exec
	// PoolSubmit hands one execution to the serving layer's worker
	// pool (required). It may block while the pool is saturated — that
	// backpressure is what keeps fairness decisions late, at dequeue
	// time, instead of buried in a long pool queue.
	PoolSubmit func(run func()) error
	// Timeout bounds one execution; 0 means 30s.
	Timeout time.Duration
	// TTL is how long terminal jobs stay retrievable; 0 means 5m.
	TTL time.Duration
	// StoreCap bounds retained healthy terminal jobs (plus StoreCap/4,
	// at least 64, pinned failed/degraded jobs on top); 0 means 4096.
	StoreCap int
	// MaxQueued bounds undispatched executions across all tenants;
	// 0 means 4096.
	MaxQueued int
	// MaxQueuedPerTenant bounds one tenant's live (queued, coalesced,
	// running) jobs; 0 means MaxQueued/4.
	MaxQueuedPerTenant int
	// Quantum is the deficit-round-robin budget added per scheduling
	// visit, in series points; 0 means 4096.
	Quantum int
	// ReapEvery is the TTL reaper period; 0 means TTL/4, at most 30s.
	ReapEvery time.Duration
	// OnDone observes every job reaching a terminal state (latency
	// metrics). Called outside the manager lock. Nil disables.
	OnDone func(Job)
	// IDs mints job IDs; nil creates a fresh generator.
	IDs *obs.IDGen
	// Now is the clock, injectable for TTL tests; nil means time.Now.
	Now func() time.Time
	// Durability enables WAL persistence (see persist.go); nil keeps
	// the manager fully in-memory.
	Durability *Durability
}

func (c Config) withDefaults() Config {
	if c.Timeout <= 0 {
		c.Timeout = 30 * time.Second
	}
	if c.TTL <= 0 {
		c.TTL = 5 * time.Minute
	}
	if c.StoreCap <= 0 {
		c.StoreCap = 4096
	}
	if c.MaxQueued <= 0 {
		c.MaxQueued = 4096
	}
	if c.MaxQueuedPerTenant <= 0 {
		c.MaxQueuedPerTenant = c.MaxQueued / 4
		if c.MaxQueuedPerTenant < 1 {
			c.MaxQueuedPerTenant = 1
		}
	}
	if c.Quantum <= 0 {
		c.Quantum = 4096
	}
	if c.ReapEvery <= 0 {
		c.ReapEvery = c.TTL / 4
		if c.ReapEvery > 30*time.Second {
			c.ReapEvery = 30 * time.Second
		}
		if c.ReapEvery < 10*time.Millisecond {
			c.ReapEvery = 10 * time.Millisecond
		}
	}
	if c.IDs == nil {
		c.IDs = obs.NewIDGen()
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// flight is one in-progress execution and every job riding it; the
// leader (the submission that created the flight) is jobs[0].
type flight struct {
	jobs []*Job
}

// Counters is a snapshot of the manager's cumulative counters.
type Counters struct {
	Submitted  int64 // accepted submissions, followers included
	Coalesced  int64 // follower submissions
	Executions int64 // pipeline runs actually started
	DoneOK     int64 // jobs finished without error
	DoneFailed int64 // jobs finished with an error
	Expired    int64 // terminal jobs reaped past their TTL
	Shed       int64 // submissions rejected by the admission bounds
}

// Manager owns the async tier: the live-job table, the coalescing
// flights, the fair-share queue, its dispatcher goroutine, the
// terminal store and its TTL reaper.
type Manager struct {
	cfg Config

	mu      sync.Mutex
	cond    *sync.Cond
	live    map[obs.ID]*Job // queued and running jobs
	flights map[Key]*flight
	fq      *fairQueue
	store   *store
	closed  bool

	submitted  int64
	coalesced  int64
	executions int64
	doneOK     int64
	doneFailed int64
	shed       int64

	// Durability tier (nil/zero when in-memory; see persist.go).
	wlog          *wal.Log
	codec         Codec
	compactBytes  int64
	recovered     int64
	lost          int64
	walEncodeErrs int64

	stop   chan struct{}
	wg     sync.WaitGroup
	execWG sync.WaitGroup // executions handed to the worker pool
}

// New assembles and starts a Manager, panicking on failure. In-memory
// managers (Durability nil) cannot fail; durable callers that want
// the error — a bad data dir, a corrupt snapshot, an injected replay
// fault — should use Open.
func New(cfg Config) *Manager {
	m, err := Open(cfg)
	if err != nil {
		panic(err)
	}
	return m
}

// Open assembles and starts a Manager (dispatcher + reaper
// goroutines). Exec and PoolSubmit must be set; Close releases the
// goroutines. With Config.Durability set, Open replays the data
// directory's snapshot+log and restores the previous process's jobs
// before accepting new work (see persist.go).
func Open(cfg Config) (*Manager, error) {
	if cfg.Exec == nil || cfg.PoolSubmit == nil {
		panic("jobs: Config.Exec and Config.PoolSubmit are required")
	}
	cfg = cfg.withDefaults()
	pinCap := cfg.StoreCap / 4
	if pinCap < 64 {
		pinCap = 64
	}
	m := &Manager{
		cfg:     cfg,
		live:    make(map[obs.ID]*Job),
		flights: make(map[Key]*flight),
		fq:      newFairQueue(cfg.Quantum),
		store:   newStore(cfg.StoreCap, pinCap),
		stop:    make(chan struct{}),
	}
	m.cond = sync.NewCond(&m.mu)
	if d := cfg.Durability; d != nil {
		if d.Dir == "" || d.Codec == nil {
			return nil, errors.New("jobs: Durability needs Dir and Codec")
		}
		l, err := wal.Open(d.Dir, wal.Options{
			Policy:    d.Policy,
			Interval:  d.SyncInterval,
			MaxRecord: d.MaxRecord,
		})
		if err != nil {
			return nil, err
		}
		m.wlog = l
		m.codec = d.Codec
		m.compactBytes = d.CompactBytes
		if m.compactBytes <= 0 {
			m.compactBytes = 8 << 20
		}
		if err := m.recover(); err != nil {
			l.Close()
			return nil, err
		}
	}
	m.wg.Add(2)
	go m.dispatch()
	go m.reapLoop()
	return m, nil
}

// Submit accepts one job. Identical in-flight work coalesces: when an
// execution for key is already queued or running, the job attaches to
// it as a follower and consumes no execution slot. Otherwise the job
// becomes a flight leader and enters its tenant's fair-share queue.
// Returns a copy of the accepted job, or ErrQueueFull /
// ErrTenantQueueFull / ErrClosed (or an injected jobs/store fault).
//
// ctx carries the submitting request's observability scope: when the
// serving layer sampled the request into a span recording, the WAL
// append/fsync and any coalesced-flight attach performed by this
// submission are emitted as spans of that request's trace.
func (m *Manager) Submit(ctx context.Context, tenant string, key Key, cost int, payload any) (Job, error) {
	rec := recordingFrom(ctx)
	// Fault point "jobs/store": a failure registering the job (the
	// store tier is unavailable or rejecting writes).
	if err := faults.Check(faults.PointJobsStore); err != nil {
		return Job{}, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return Job{}, ErrClosed
	}
	tq := m.fq.tenant(tenant)
	if tq.pending >= m.cfg.MaxQueuedPerTenant {
		m.shed++
		m.dropTenantIfIdle(tenant)
		return Job{}, ErrTenantQueueFull
	}
	j := &Job{
		ID:        m.cfg.IDs.Next(),
		Tenant:    tenant,
		Key:       key,
		Cost:      cost,
		Payload:   payload,
		Submitted: m.cfg.Now(),
		State:     StateQueued,
	}
	fl, coalescing := m.flights[key]
	if !coalescing && m.fq.depth >= m.cfg.MaxQueued {
		m.shed++
		m.dropTenantIfIdle(tenant)
		return Job{}, ErrQueueFull
	}
	if coalescing {
		leader := fl.jobs[0]
		j.Coalesced = true
		j.State = leader.State
		j.Started = leader.Started
	}
	// Durable managers log the submission *before* mutating state: an
	// append failure rejects the job so an unacknowledged submission
	// can never resurrect after a restart.
	if m.wlog != nil {
		raw, err := m.codec.EncodePayload(payload)
		if err != nil {
			m.walEncodeErrs++
			m.dropTenantIfIdle(tenant)
			return Job{}, fmt.Errorf("jobs: encode payload for WAL: %w", err)
		}
		j.payloadRaw = raw
		var appendStart time.Time
		if rec != nil {
			appendStart = time.Now()
		}
		syncDur, err := m.logAppendLocked(&walRecord{
			Kind:        recSubmit,
			ID:          j.ID.String(),
			Tenant:      tenant,
			Key:         &walKey{key.H1, key.H2, key.N},
			Cost:        cost,
			Coalesced:   j.Coalesced,
			SubmittedNS: tsNS(j.Submitted),
			Payload:     raw,
		})
		if err != nil {
			m.dropTenantIfIdle(tenant)
			return Job{}, fmt.Errorf("jobs: durable submit: %w", err)
		}
		if rec != nil {
			// The fsync is the tail of the append; nest it so the trace
			// shows how much of the durable-submit cost was the disk.
			end := time.Now()
			appendID := rec.AddSpan(registry.SpanWALAppend, rec.Context().SpanID,
				appendStart, end.Sub(appendStart),
				trace.Attr{Key: "bytes", Value: strconv.Itoa(len(raw))})
			if syncDur > 0 {
				rec.AddSpan(registry.SpanWALFsync, appendID,
					end.Add(-syncDur), syncDur)
			}
		}
	}
	if coalescing {
		fl.jobs = append(fl.jobs, j)
		m.live[j.ID] = j
		tq.pending++
		m.submitted++
		m.coalesced++
		rec.AddSpan(registry.SpanCoalesce, rec.Context().SpanID, j.Submitted, 0,
			trace.Attr{Key: "leader_job", Value: fl.jobs[0].ID.String()},
			trace.Attr{Key: "job", Value: j.ID.String()})
		return *j, nil
	}
	m.flights[key] = &flight{jobs: []*Job{j}}
	m.live[j.ID] = j
	tq.pending++
	m.submitted++
	m.fq.push(j)
	m.cond.Signal()
	return *j, nil
}

// recordingFrom unwraps the span recording of the request scope in
// ctx, if the serving layer sampled this request. Nil (the common,
// sampled-out case) keeps every span call site allocation-free.
func recordingFrom(ctx context.Context) *trace.Recording {
	if sc := obs.FromContext(ctx); sc != nil {
		if r, ok := sc.Spans.(*trace.Recording); ok {
			return r
		}
	}
	return nil
}

// dropTenantIfIdle forgets a tenant's scheduling state once it has
// nothing live and nothing queued, so distinct API keys do not grow
// the tenant table without bound. Callers hold m.mu.
func (m *Manager) dropTenantIfIdle(tenant string) {
	if tq, ok := m.fq.tenants[tenant]; ok && tq.pending == 0 && len(tq.jobs) == 0 {
		delete(m.fq.tenants, tenant)
	}
}

// Get returns a copy of the job with the given ID, from the live table
// or the terminal store. A terminal job past its TTL is reaped on
// sight and reported missing.
func (m *Manager) Get(id obs.ID) (Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if j, ok := m.live[id]; ok {
		return *j, true
	}
	if j, ok := m.store.get(id, m.cfg.Now()); ok {
		return *j, true
	}
	return Job{}, false
}

// Reap removes every terminal job past its TTL. The reaper goroutine
// calls this periodically; tests with an injected clock call it
// directly.
func (m *Manager) Reap() {
	m.mu.Lock()
	m.store.reap(m.cfg.Now())
	m.mu.Unlock()
}

// QueueDepth reports undispatched executions across all tenants.
func (m *Manager) QueueDepth() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.fq.depth
}

// Counters snapshots the cumulative counters.
func (m *Manager) Counters() Counters {
	m.mu.Lock()
	defer m.mu.Unlock()
	return Counters{
		Submitted:  m.submitted,
		Coalesced:  m.coalesced,
		Executions: m.executions,
		DoneOK:     m.doneOK,
		DoneFailed: m.doneFailed,
		Expired:    m.store.expired,
		Shed:       m.shed,
	}
}

// StateCounts reports how many retained jobs sit in each lifecycle
// state: queued/running from the live table, done/failed from the
// terminal store.
func (m *Manager) StateCounts() map[string]int {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := map[string]int{
		StateQueued.String():  0,
		StateRunning.String(): 0,
		StateDone.String():    0,
		StateFailed.String():  0,
	}
	for _, j := range m.live {
		out[j.State.String()]++
	}
	done, failed := m.store.counts()
	out[StateDone.String()] = done
	out[StateFailed.String()] = failed
	return out
}

// dispatch is the scheduler goroutine: it pops the next job under
// deficit round-robin and hands it to the worker pool, blocking there
// when the pool is saturated so fairness is decided as late as
// possible.
func (m *Manager) dispatch() {
	defer m.wg.Done()
	for {
		m.mu.Lock()
		for m.fq.depth == 0 && !m.closed {
			m.cond.Wait()
		}
		if m.closed {
			m.mu.Unlock()
			return
		}
		j := m.fq.pop()
		m.mu.Unlock()
		if j == nil {
			continue
		}
		m.execWG.Add(1)
		if err := m.cfg.PoolSubmit(func() { defer m.execWG.Done(); m.execute(j) }); err != nil {
			m.execWG.Done()
			m.finishFlight(j.Key, nil, false, err)
		}
	}
}

// execute runs one leader job's flight on the worker goroutine: state
// transition, the jobs/exec fault point, the bounded pipeline call,
// and result fan-out. A panic anywhere inside fails the flight instead
// of killing the pool worker.
func (m *Manager) execute(j *Job) {
	defer func() {
		if v := recover(); v != nil {
			m.finishFlight(j.Key, nil, false, fmt.Errorf("jobs: execution panicked: %v", v))
		}
	}()
	m.mu.Lock()
	if fl, ok := m.flights[j.Key]; ok {
		now := m.cfg.Now()
		for _, jb := range fl.jobs {
			jb.State = StateRunning
			jb.Started = now
		}
		m.logStartLocked(j.Key, now)
	}
	m.executions++
	m.mu.Unlock()
	// Fault point "jobs/exec": a failure between dequeue and the
	// pipeline call (a poisoned payload, a dead dependency).
	if err := faults.Check(faults.PointJobsExec); err != nil {
		m.finishFlight(j.Key, nil, false, err)
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), m.cfg.Timeout)
	defer cancel()
	res, degraded, err := m.cfg.Exec(ctx, j.Payload)
	m.finishFlight(j.Key, res, degraded, err)
}

// finishFlight fans one execution's outcome out to every job attached
// to the key's flight, moves them from the live table to the terminal
// store, and fires the OnDone hook. Idempotent: a second call for the
// same key (e.g. from the panic net) finds no flight and does nothing.
func (m *Manager) finishFlight(key Key, res any, degraded bool, err error) {
	// Encode the result outside the lock; marshal cost scales with the
	// series, the append itself must stay inside the critical section.
	var resRaw []byte
	if m.wlog != nil && res != nil && err == nil {
		b, encErr := m.codec.EncodeResult(res)
		if encErr != nil {
			m.mu.Lock()
			m.walEncodeErrs++
			m.mu.Unlock()
		} else {
			resRaw = b
		}
	}
	m.mu.Lock()
	fl, ok := m.flights[key]
	if !ok {
		m.mu.Unlock()
		return
	}
	delete(m.flights, key)
	done := m.finishJobsLocked(fl.jobs, res, degraded, err, resRaw)
	if len(done) > 0 {
		m.logFinishLocked(key, &done[0], resRaw)
	}
	m.mu.Unlock()
	if m.cfg.OnDone != nil {
		for i := range done {
			m.cfg.OnDone(done[i])
		}
	}
}

// finishJobsLocked applies a terminal outcome to jobs under m.mu and
// returns copies for the OnDone hook.
func (m *Manager) finishJobsLocked(jobs []*Job, res any, degraded bool, err error, resRaw []byte) []Job {
	now := m.cfg.Now()
	expires := now.Add(m.cfg.TTL)
	out := make([]Job, 0, len(jobs))
	for _, jb := range jobs {
		jb.Finished = now
		jb.Expires = expires
		jb.Result = res
		jb.resultRaw = resRaw
		jb.Degraded = degraded
		jb.Err = err
		if err != nil {
			jb.State = StateFailed
			m.doneFailed++
		} else {
			jb.State = StateDone
			m.doneOK++
		}
		delete(m.live, jb.ID)
		if tq, ok := m.fq.tenants[jb.Tenant]; ok {
			tq.pending--
		}
		m.dropTenantIfIdle(jb.Tenant)
		m.store.put(jb)
		out = append(out, *jb)
	}
	return out
}

// reapLoop expires terminal jobs on a timer until Close.
func (m *Manager) reapLoop() {
	defer m.wg.Done()
	t := time.NewTicker(m.cfg.ReapEvery)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			m.Reap()
			m.maybeCompact()
		case <-m.stop:
			return
		}
	}
}

// Close stops accepting submissions, fails every still-queued flight
// with ErrClosed, and waits for the dispatcher and reaper to exit.
// Executions already handed to the worker pool finish normally (the
// pool drains after the manager closes) and their results remain
// retrievable until the process exits. Idempotent.
func (m *Manager) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	queued := m.fq.drain()
	var failed []Job
	for _, j := range queued {
		fl, ok := m.flights[j.Key]
		if !ok {
			continue
		}
		delete(m.flights, j.Key)
		done := m.finishJobsLocked(fl.jobs, nil, false, ErrClosed, nil)
		if len(done) > 0 {
			m.logFinishLocked(j.Key, &done[0], nil)
		}
		failed = append(failed, done...)
	}
	m.cond.Broadcast()
	m.mu.Unlock()
	close(m.stop)
	if m.cfg.OnDone != nil {
		for i := range failed {
			m.cfg.OnDone(failed[i])
		}
	}
	m.wg.Wait()
	if m.wlog != nil {
		// Wait for executions still draining on the worker pool so
		// their finish records land in the log, then seal the durable
		// state as one snapshot. A restart after a clean Close
		// restores only terminal jobs.
		m.execWG.Wait()
		m.mu.Lock()
		m.compactLocked() // failure leaves the log as the source of truth
		m.mu.Unlock()
		m.wlog.Close()
	}
}
