package jobs

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"robustperiod/internal/faults"
	"robustperiod/internal/obs"
)

// testClock is an injectable manual clock for TTL tests.
type testClock struct {
	mu  sync.Mutex
	now time.Time
}

func newTestClock() *testClock {
	return &testClock{now: time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)}
}

func (c *testClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *testClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

// inlinePool runs executions synchronously on the dispatcher
// goroutine: dispatch order becomes execution order, which makes the
// fair-share tests deterministic.
func inlinePool(run func()) error {
	run()
	return nil
}

// asyncPool runs each execution on its own goroutine (an unbounded
// stand-in for the serve worker pool).
func asyncPool(run func()) error {
	go run()
	return nil
}

// doneCollector gathers OnDone callbacks and lets tests await a count.
type doneCollector struct {
	mu   sync.Mutex
	jobs []Job
}

func (d *doneCollector) add(j Job) {
	d.mu.Lock()
	d.jobs = append(d.jobs, j)
	d.mu.Unlock()
}

func (d *doneCollector) snapshot() []Job {
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([]Job(nil), d.jobs...)
}

func (d *doneCollector) await(t *testing.T, n int) []Job {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if got := d.snapshot(); len(got) >= n {
			return got
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %d OnDone callbacks (got %d)", n, len(d.snapshot()))
	return nil
}

func key(i int) Key { return Key{H1: uint64(i), H2: ^uint64(i), N: 64} }

// TestCoalesceExactlyOnce is the core coalescing guarantee: many
// concurrent submissions of one key run the pipeline exactly once and
// every job receives the result.
func TestCoalesceExactlyOnce(t *testing.T) {
	const clients = 100
	var execs atomic.Int64
	started := make(chan struct{})
	release := make(chan struct{})
	done := &doneCollector{}
	m := New(Config{
		Exec: func(ctx context.Context, payload any) (any, bool, error) {
			if execs.Add(1) == 1 {
				close(started)
			}
			<-release
			return payload, false, nil
		},
		PoolSubmit: asyncPool,
		OnDone:     done.add,
	})
	defer m.Close()

	leader, err := m.Submit(context.Background(), "tenant-a", key(1), 64, "answer")
	if err != nil {
		t.Fatalf("leader submit: %v", err)
	}
	if leader.Coalesced {
		t.Fatal("leader reported coalesced")
	}
	<-started // the execution is in flight; every further submit must attach

	var wg sync.WaitGroup
	errs := make(chan error, clients-1)
	for i := 1; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			j, err := m.Submit(context.Background(), "tenant-a", key(1), 64, "answer")
			if err != nil {
				errs <- err
				return
			}
			if !j.Coalesced {
				errs <- errors.New("concurrent duplicate was not coalesced")
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	close(release)

	finished := done.await(t, clients)
	if got := execs.Load(); got != 1 {
		t.Fatalf("executions = %d, want exactly 1", got)
	}
	for _, j := range finished {
		if j.State != StateDone || j.Err != nil {
			t.Fatalf("job %s finished %v err=%v", j.ID, j.State, j.Err)
		}
		if j.Result != "answer" {
			t.Fatalf("job %s result = %v", j.ID, j.Result)
		}
	}
	c := m.Counters()
	if c.Submitted != clients || c.Coalesced != clients-1 || c.Executions != 1 {
		t.Fatalf("counters = %+v, want submitted=%d coalesced=%d executions=1",
			c, clients, clients-1)
	}
}

// TestDistinctKeysDoNotCoalesce guards against over-merging.
func TestDistinctKeysDoNotCoalesce(t *testing.T) {
	var execs atomic.Int64
	done := &doneCollector{}
	m := New(Config{
		Exec: func(ctx context.Context, payload any) (any, bool, error) {
			execs.Add(1)
			return payload, false, nil
		},
		PoolSubmit: asyncPool,
		OnDone:     done.add,
	})
	defer m.Close()
	for i := 0; i < 8; i++ {
		if _, err := m.Submit(context.Background(), "t", key(i), 64, i); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	done.await(t, 8)
	if got := execs.Load(); got != 8 {
		t.Fatalf("executions = %d, want 8", got)
	}
	if c := m.Counters(); c.Coalesced != 0 {
		t.Fatalf("coalesced = %d, want 0", c.Coalesced)
	}
}

// TestGetLifecycle polls a job through queued/running/done and checks
// the result round-trips.
func TestGetLifecycle(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{})
	done := &doneCollector{}
	m := New(Config{
		Exec: func(ctx context.Context, payload any) (any, bool, error) {
			close(started)
			<-release
			return 42, true, nil
		},
		PoolSubmit: asyncPool,
		OnDone:     done.add,
	})
	defer m.Close()
	j, err := m.Submit(context.Background(), "t", key(1), 64, nil)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	<-started
	if got, ok := m.Get(j.ID); !ok || got.State != StateRunning {
		t.Fatalf("mid-flight Get = %+v ok=%v, want running", got, ok)
	}
	close(release)
	done.await(t, 1)
	got, ok := m.Get(j.ID)
	if !ok || got.State != StateDone || got.Result != 42 || !got.Degraded {
		t.Fatalf("final Get = %+v ok=%v, want done result=42 degraded", got, ok)
	}
	if _, ok := m.Get(obs.ID{1, 2, 3}); ok {
		t.Fatal("Get of unknown ID reported a job")
	}
}

// TestTTLExpiry checks lazy (on-Get) expiry under an injected clock.
func TestTTLExpiry(t *testing.T) {
	clk := newTestClock()
	done := &doneCollector{}
	m := New(Config{
		Exec: func(ctx context.Context, payload any) (any, bool, error) {
			return nil, false, nil
		},
		PoolSubmit: asyncPool,
		OnDone:     done.add,
		TTL:        time.Minute,
		Now:        clk.Now,
	})
	defer m.Close()
	j, err := m.Submit(context.Background(), "t", key(1), 64, nil)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	done.await(t, 1)
	if _, ok := m.Get(j.ID); !ok {
		t.Fatal("finished job not retrievable inside its TTL")
	}
	clk.Advance(61 * time.Second)
	if _, ok := m.Get(j.ID); ok {
		t.Fatal("job still retrievable after its TTL")
	}
	if c := m.Counters(); c.Expired != 1 {
		t.Fatalf("expired = %d, want 1", c.Expired)
	}
}

// TestTTLReaper checks the batch reap path: expired jobs vanish from
// the store (and the state gauges) without being polled.
func TestTTLReaper(t *testing.T) {
	clk := newTestClock()
	done := &doneCollector{}
	failErr := errors.New("boom")
	m := New(Config{
		Exec: func(ctx context.Context, payload any) (any, bool, error) {
			if payload == "fail" {
				return nil, false, failErr
			}
			return nil, false, nil
		},
		PoolSubmit: asyncPool,
		OnDone:     done.add,
		TTL:        time.Minute,
		Now:        clk.Now,
	})
	defer m.Close()
	for i := 0; i < 5; i++ {
		payload := any(nil)
		if i == 0 {
			payload = "fail" // lands in the pinned ring; must still expire
		}
		if _, err := m.Submit(context.Background(), "t", key(i), 64, payload); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	done.await(t, 5)
	states := m.StateCounts()
	if states["done"] != 4 || states["failed"] != 1 {
		t.Fatalf("states before reap = %v", states)
	}
	clk.Advance(30 * time.Second)
	m.Reap() // nothing expired yet
	if c := m.Counters(); c.Expired != 0 {
		t.Fatalf("premature expiry: %d", c.Expired)
	}
	clk.Advance(31 * time.Second)
	m.Reap()
	if c := m.Counters(); c.Expired != 5 {
		t.Fatalf("expired = %d, want 5", c.Expired)
	}
	states = m.StateCounts()
	if states["done"] != 0 || states["failed"] != 0 {
		t.Fatalf("states after reap = %v", states)
	}
}

// TestPinnedRetention: a failed job survives healthy churn that
// overflows the done ring, after the flight-recorder design.
func TestPinnedRetention(t *testing.T) {
	done := &doneCollector{}
	failErr := errors.New("boom")
	m := New(Config{
		Exec: func(ctx context.Context, payload any) (any, bool, error) {
			if payload == "fail" {
				return nil, false, failErr
			}
			return nil, false, nil
		},
		PoolSubmit: asyncPool,
		OnDone:     done.add,
		StoreCap:   4,
	})
	defer m.Close()
	bad, err := m.Submit(context.Background(), "t", key(1000), 64, "fail")
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	done.await(t, 1)
	var healthy []obs.ID
	for i := 0; i < 20; i++ {
		j, err := m.Submit(context.Background(), "t", key(i), 64, nil)
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		healthy = append(healthy, j.ID)
	}
	done.await(t, 21)
	if _, ok := m.Get(healthy[0]); ok {
		t.Fatal("oldest healthy job survived a full done ring")
	}
	got, ok := m.Get(bad.ID)
	if !ok || got.State != StateFailed || !errors.Is(got.Err, failErr) {
		t.Fatalf("pinned failed job lost to healthy churn: %+v ok=%v", got, ok)
	}
}

// TestStorePinEviction exercises the pinned ring's own bound directly.
func TestStorePinEviction(t *testing.T) {
	s := newStore(2, 2)
	expires := time.Now().Add(time.Hour)
	mk := func(i int, fail bool) *Job {
		j := &Job{ID: obs.ID{byte(i)}, Expires: expires}
		if fail {
			j.Err = errors.New("x")
		}
		return j
	}
	for i := 1; i <= 3; i++ {
		s.put(mk(i, true))
	}
	if _, ok := s.get(obs.ID{1}, time.Now()); ok {
		t.Fatal("oldest pinned entry survived past pinCap")
	}
	for i := 2; i <= 3; i++ {
		if _, ok := s.get(obs.ID{byte(i)}, time.Now()); !ok {
			t.Fatalf("pinned entry %d missing", i)
		}
	}
	done, failed := s.counts()
	if done != 0 || failed != 2 {
		t.Fatalf("counts = (%d, %d), want (0, 2)", done, failed)
	}
}

// TestFairShareStarvationBound: with a heavy tenant's backlog already
// queued, a light tenant's job is dispatched within a bounded number
// of turns instead of waiting out the whole backlog.
func TestFairShareStarvationBound(t *testing.T) {
	var mu sync.Mutex
	var order []string
	release := make(chan struct{})
	started := make(chan struct{})
	done := &doneCollector{}
	m := New(Config{
		Exec: func(ctx context.Context, payload any) (any, bool, error) {
			tenant := payload.(string)
			mu.Lock()
			order = append(order, tenant)
			n := len(order)
			mu.Unlock()
			if n == 1 {
				close(started)
				<-release // hold the dispatcher so the backlog builds
			}
			return nil, false, nil
		},
		PoolSubmit: inlinePool, // dispatch order == execution order
		OnDone:     done.add,
		Quantum:    64,
	})
	defer m.Close()

	// The heavy tenant floods first: one job executing (held), 16 more
	// queued behind it.
	for i := 0; i < 17; i++ {
		if _, err := m.Submit(context.Background(), "heavy", key(i), 64, "heavy"); err != nil {
			t.Fatalf("heavy submit %d: %v", i, err)
		}
	}
	<-started
	// The light tenant arrives late with 2 jobs.
	for i := 100; i < 102; i++ {
		if _, err := m.Submit(context.Background(), "light", key(i), 64, "light"); err != nil {
			t.Fatalf("light submit %d: %v", i, err)
		}
	}
	close(release)
	done.await(t, 19)

	mu.Lock()
	defer mu.Unlock()
	// Deficit round-robin alternates tenants while both have backlog:
	// both light jobs must run within the first 6 executions, not after
	// the heavy tenant's 17.
	lightDone := 0
	for i, tenant := range order {
		if tenant == "light" {
			lightDone++
			if i >= 6 {
				t.Fatalf("light job starved until position %d (order %v)", i, order)
			}
		}
	}
	if lightDone != 2 {
		t.Fatalf("light jobs executed = %d, want 2 (order %v)", lightDone, order)
	}
}

// TestFairQueueCostWeighting: a tenant of expensive jobs drains at the
// same cost rate as a tenant of cheap ones, not the same job rate.
func TestFairQueueCostWeighting(t *testing.T) {
	q := newFairQueue(100)
	mk := func(tenant string, cost int) *Job {
		return &Job{Tenant: tenant, Cost: cost}
	}
	// big: 3 jobs of cost 300; small: 9 jobs of cost 100.
	for i := 0; i < 3; i++ {
		q.push(mk("big", 300))
	}
	for i := 0; i < 9; i++ {
		q.push(mk("small", 100))
	}
	var order []string
	for j := q.pop(); j != nil; j = q.pop() {
		order = append(order, j.Tenant)
	}
	if len(order) != 12 {
		t.Fatalf("popped %d jobs, want 12", len(order))
	}
	// In any prefix, the big tenant should have dispatched roughly a
	// third as many jobs as the small one (equal cost share). After 8
	// dispatches the small tenant must have at least twice big's count.
	bigN, smallN := 0, 0
	for _, tenant := range order[:8] {
		if tenant == "big" {
			bigN++
		} else {
			smallN++
		}
	}
	if smallN < 2*bigN {
		t.Fatalf("cost weighting off: first 8 dispatches big=%d small=%d (order %v)",
			bigN, smallN, order)
	}
}

// blockedPool is a PoolSubmit stand-in that reports each dispatch on
// popped, then parks the dispatcher on gate — so tests control exactly
// how many jobs leave the fair-share queue.
type blockedPool struct {
	popped chan struct{}
	gate   chan struct{}
}

func newBlockedPool() *blockedPool {
	return &blockedPool{popped: make(chan struct{}, 64), gate: make(chan struct{})}
}

func (p *blockedPool) submit(run func()) error {
	p.popped <- struct{}{}
	<-p.gate
	go run()
	return nil
}

// TestAdmissionBounds covers both shed paths: the global queue bound
// and the per-tenant pending bound.
func TestAdmissionBounds(t *testing.T) {
	pool := newBlockedPool()
	m := New(Config{
		Exec: func(ctx context.Context, payload any) (any, bool, error) {
			return nil, false, nil
		},
		PoolSubmit:         pool.submit,
		MaxQueued:          4,
		MaxQueuedPerTenant: 3,
	})
	defer m.Close()
	defer close(pool.gate) // unblock the dispatcher so Close can drain
	// One job dispatched (held at the pool) + 2 queued saturates tenant
	// "a": pending counts the dispatched job too.
	if _, err := m.Submit(context.Background(), "a", key(0), 64, nil); err != nil {
		t.Fatalf("submit 0: %v", err)
	}
	<-pool.popped // the dispatcher holds job 0; nothing else will leave the queue
	for i := 1; i < 3; i++ {
		if _, err := m.Submit(context.Background(), "a", key(i), 64, nil); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	if _, err := m.Submit(context.Background(), "a", key(10), 64, nil); !errors.Is(err, ErrTenantQueueFull) {
		t.Fatalf("tenant bound: err = %v, want ErrTenantQueueFull", err)
	}
	// Other tenants can still fill the global queue (depth 2 so far).
	if _, err := m.Submit(context.Background(), "b", key(20), 64, nil); err != nil {
		t.Fatalf("tenant b submit: %v", err)
	}
	if _, err := m.Submit(context.Background(), "c", key(21), 64, nil); err != nil {
		t.Fatalf("tenant c submit: %v", err)
	}
	if _, err := m.Submit(context.Background(), "d", key(22), 64, nil); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("global bound: err = %v, want ErrQueueFull", err)
	}
	if c := m.Counters(); c.Shed != 2 {
		t.Fatalf("shed = %d, want 2", c.Shed)
	}
}

// TestCloseFailsQueuedJobs: Close fails undispatched jobs with
// ErrClosed (dispatched ones finish normally) and later submissions
// are rejected outright.
func TestCloseFailsQueuedJobs(t *testing.T) {
	pool := newBlockedPool()
	m := New(Config{
		Exec: func(ctx context.Context, payload any) (any, bool, error) {
			return "late", false, nil
		},
		PoolSubmit: pool.submit,
	})
	dispatched, err := m.Submit(context.Background(), "t", key(1), 64, nil)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	<-pool.popped // job 1 is at the pool; job 2 will stay queued
	queued, err := m.Submit(context.Background(), "t", key(2), 64, nil)
	if err != nil {
		t.Fatalf("submit queued: %v", err)
	}
	closed := make(chan struct{})
	go func() {
		m.Close()
		close(closed)
	}()
	// Wait until Close has flipped the closed flag (and, in the same
	// critical section, drained the queue) before releasing the pool.
	for {
		if _, err := m.Submit(context.Background(), "t", key(3), 64, nil); errors.Is(err, ErrClosed) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	close(pool.gate)
	<-closed
	if got, ok := m.Get(queued.ID); !ok || got.State != StateFailed || !errors.Is(got.Err, ErrClosed) {
		t.Fatalf("queued job after Close = %+v ok=%v, want failed ErrClosed", got, ok)
	}
	// The dispatched job was not aborted; await its normal completion.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if got, ok := m.Get(dispatched.ID); ok && got.State == StateDone {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("dispatched job did not complete after Close")
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := m.Submit(context.Background(), "t", key(4), 64, nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit after Close: err = %v, want ErrClosed", err)
	}
}

// TestExecTimeout: a stuck execution is bounded by Config.Timeout and
// fails with the context error.
func TestExecTimeout(t *testing.T) {
	done := &doneCollector{}
	m := New(Config{
		Exec: func(ctx context.Context, payload any) (any, bool, error) {
			<-ctx.Done()
			return nil, false, ctx.Err()
		},
		PoolSubmit: asyncPool,
		OnDone:     done.add,
		Timeout:    20 * time.Millisecond,
	})
	defer m.Close()
	j, err := m.Submit(context.Background(), "t", key(1), 64, nil)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	done.await(t, 1)
	got, _ := m.Get(j.ID)
	if got.State != StateFailed || !errors.Is(got.Err, context.DeadlineExceeded) {
		t.Fatalf("timed-out job = %+v, want failed DeadlineExceeded", got)
	}
}

// TestChaosFaultJobsStore: an armed jobs/store fault fails submissions
// with an injected error before any state is created.
func TestChaosFaultJobsStore(t *testing.T) {
	faults.Enable(faults.MustParse(faults.PointJobsStore + ":error"))
	t.Cleanup(faults.Disable)
	m := New(Config{
		Exec: func(ctx context.Context, payload any) (any, bool, error) {
			return nil, false, nil
		},
		PoolSubmit: asyncPool,
	})
	defer m.Close()
	if _, err := m.Submit(context.Background(), "t", key(1), 64, nil); !faults.IsInjected(err) {
		t.Fatalf("submit err = %v, want injected", err)
	}
	if c := m.Counters(); c.Submitted != 0 {
		t.Fatalf("submitted = %d after store fault, want 0", c.Submitted)
	}
}

// TestChaosFaultJobsExec: an armed jobs/exec fault fails the whole
// flight — leader and coalesced followers — with the injected error.
func TestChaosFaultJobsExec(t *testing.T) {
	faults.Enable(faults.MustParse(faults.PointJobsExec + ":error"))
	t.Cleanup(faults.Disable)
	done := &doneCollector{}
	m := New(Config{
		Exec: func(ctx context.Context, payload any) (any, bool, error) {
			t.Error("Exec ran despite armed jobs/exec fault")
			return nil, false, nil
		},
		PoolSubmit: asyncPool,
		OnDone:     done.add,
	})
	defer m.Close()
	j, err := m.Submit(context.Background(), "t", key(1), 64, nil)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	done.await(t, 1)
	got, _ := m.Get(j.ID)
	if got.State != StateFailed || !faults.IsInjected(got.Err) {
		t.Fatalf("job under exec fault = %+v, want failed injected", got)
	}
}

// TestChaosFaultJobsExecPanic: a panic action at jobs/exec is caught
// by the execution's recovery net and becomes a failed flight, not a
// dead worker.
func TestChaosFaultJobsExecPanic(t *testing.T) {
	faults.Enable(faults.MustParse(faults.PointJobsExec + ":panic:times=1"))
	t.Cleanup(faults.Disable)
	done := &doneCollector{}
	m := New(Config{
		Exec: func(ctx context.Context, payload any) (any, bool, error) {
			return "ok", false, nil
		},
		PoolSubmit: asyncPool,
		OnDone:     done.add,
	})
	defer m.Close()
	j, err := m.Submit(context.Background(), "t", key(1), 64, nil)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	done.await(t, 1)
	got, _ := m.Get(j.ID)
	if got.State != StateFailed || got.Err == nil {
		t.Fatalf("job under exec panic = %+v, want failed", got)
	}
	// The tier keeps working after the panic (times=1 disarms it).
	j2, err := m.Submit(context.Background(), "t", key(2), 64, nil)
	if err != nil {
		t.Fatalf("submit after panic: %v", err)
	}
	done.await(t, 2)
	if got, _ := m.Get(j2.ID); got.State != StateDone {
		t.Fatalf("job after recovered panic = %+v, want done", got)
	}
}

// TestStateStrings pins the wire vocabulary.
func TestStateStrings(t *testing.T) {
	want := []string{"queued", "running", "done", "failed"}
	got := StateNames()
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("StateNames() = %v, want %v", got, want)
	}
	if State(99).String() != "state(99)" {
		t.Fatalf("unknown state = %q", State(99))
	}
}
