package jobs

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"robustperiod/internal/faults"
	"robustperiod/internal/obs"
)

// testCodec persists string payloads/results as JSON, standing in for
// the serving layer's detect codec.
type testCodec struct{}

func (testCodec) EncodePayload(p any) ([]byte, error) {
	s, ok := p.(string)
	if !ok {
		return nil, fmt.Errorf("testCodec: payload %T", p)
	}
	return json.Marshal(s)
}

func (testCodec) DecodePayload(b []byte) (any, error) {
	var s string
	err := json.Unmarshal(b, &s)
	return s, err
}

func (testCodec) EncodeResult(r any) ([]byte, error) {
	s, ok := r.(string)
	if !ok {
		return nil, fmt.Errorf("testCodec: result %T", r)
	}
	return json.Marshal(s)
}

func (testCodec) DecodeResult(b []byte) (any, error) {
	var s string
	err := json.Unmarshal(b, &s)
	return s, err
}

// echoExec completes with payload+"-result".
func echoExec(ctx context.Context, payload any) (any, bool, error) {
	return payload.(string) + "-result", false, nil
}

func waitJobState(t *testing.T, m *Manager, id obs.ID, want State) Job {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if j, ok := m.Get(id); ok && j.State == want {
			return j
		}
		time.Sleep(time.Millisecond)
	}
	j, ok := m.Get(id)
	t.Fatalf("job %s never reached %v (now %v, found=%v)", id, want, j.State, ok)
	return Job{}
}

func TestRecoveryFinishedJobsSurviveRestart(t *testing.T) {
	dir := t.TempDir()
	clk := newTestClock()
	done := &doneCollector{}
	cfg := Config{
		Exec:       echoExec,
		PoolSubmit: inlinePool,
		TTL:        10 * time.Minute,
		Now:        clk.Now,
		OnDone:     done.add,
		Durability: &Durability{Dir: dir, Codec: testCodec{}},
	}
	m1, err := Open(cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	j1, err := m1.Submit(context.Background(), "tenant-a", key(1), 64, "p1")
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	j2, err := m1.Submit(context.Background(), "tenant-b", key(2), 64, "p2")
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	done.await(t, 2)
	wantExpires := waitJobState(t, m1, j1.ID, StateDone).Expires
	m1.Close()

	// A clean Close compacts: everything durable lives in the
	// snapshot and the log segment is back to its bare header.
	st, err := os.Stat(filepath.Join(dir, "jobs.wal"))
	if err != nil {
		t.Fatalf("stat post-Close log: %v", err)
	}
	if st.Size() != 8 {
		t.Fatalf("post-Close log not compacted: %d bytes", st.Size())
	}
	if _, err := os.Stat(filepath.Join(dir, "jobs.snap")); err != nil {
		t.Fatalf("post-Close snapshot missing: %v", err)
	}

	clk.Advance(3 * time.Minute)
	m2, err := Open(cfg)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer m2.Close()
	got, ok := m2.Get(j1.ID)
	if !ok || got.State != StateDone {
		t.Fatalf("job 1 after restart: ok=%v state=%v", ok, got.State)
	}
	if got.Result != "p1-result" {
		t.Fatalf("job 1 result = %v, want p1-result", got.Result)
	}
	if !got.Expires.Equal(wantExpires) {
		t.Fatalf("job 1 expiry %v, want original %v", got.Expires, wantExpires)
	}
	if got2, ok := m2.Get(j2.ID); !ok || got2.Result != "p2-result" {
		t.Fatalf("job 2 after restart: ok=%v result=%v", ok, got2.Result)
	}
	ws := m2.WALStats()
	if !ws.Enabled || ws.Recovered != 2 || ws.Lost != 0 {
		t.Fatalf("WALStats = %+v, want enabled, 2 recovered, 0 lost", ws)
	}
	// The original deadline still governs: 3m elapsed + 8m > 10m TTL.
	clk.Advance(8 * time.Minute)
	if _, ok := m2.Get(j1.ID); ok {
		t.Fatal("job survived past its original TTL deadline")
	}
}

func TestRecoveryRequeuesQueuedJobs(t *testing.T) {
	dir := t.TempDir()
	pool := newBlockedPool()
	defer close(pool.gate)
	cfg1 := Config{
		Exec:       echoExec,
		PoolSubmit: pool.submit,
		Durability: &Durability{Dir: dir, Codec: testCodec{}},
	}
	m1, err := Open(cfg1)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	leader, err := m1.Submit(context.Background(), "tenant-a", key(1), 64, "p1")
	if err != nil {
		t.Fatalf("Submit leader: %v", err)
	}
	follower, err := m1.Submit(context.Background(), "tenant-b", key(1), 64, "p1")
	if err != nil {
		t.Fatalf("Submit follower: %v", err)
	}
	if !follower.Coalesced {
		t.Fatal("second submission of one key did not coalesce")
	}
	other, err := m1.Submit(context.Background(), "tenant-a", key(2), 64, "p2")
	if err != nil {
		t.Fatalf("Submit other: %v", err)
	}
	<-pool.popped // dispatcher holds the leader, blocked pre-execution
	m1.crash()

	done := &doneCollector{}
	m2, err := Open(Config{
		Exec:       echoExec,
		PoolSubmit: inlinePool,
		OnDone:     done.add,
		Durability: &Durability{Dir: dir, Codec: testCodec{}},
	})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer m2.Close()
	done.await(t, 3)
	for _, want := range []struct {
		id  obs.ID
		res string
	}{{leader.ID, "p1-result"}, {follower.ID, "p1-result"}, {other.ID, "p2-result"}} {
		j, ok := m2.Get(want.id)
		if !ok || j.State != StateDone || j.Result != want.res {
			t.Fatalf("job %s after restart: ok=%v state=%v result=%v", want.id, ok, j.State, j.Result)
		}
	}
	if f, _ := m2.Get(follower.ID); !f.Coalesced {
		t.Fatal("follower lost its Coalesced mark across restart")
	}
	if ws := m2.WALStats(); ws.Recovered != 3 || ws.Lost != 0 {
		t.Fatalf("WALStats = %+v, want 3 recovered, 0 lost", ws)
	}
}

func TestRecoveryRunningJobLostToRestart(t *testing.T) {
	dir := t.TempDir()
	release := make(chan struct{})
	defer close(release)
	m1, err := Open(Config{
		Exec: func(ctx context.Context, payload any) (any, bool, error) {
			<-release
			return "late", false, nil
		},
		PoolSubmit: asyncPool,
		Durability: &Durability{Dir: dir, Codec: testCodec{}},
	})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	leader, err := m1.Submit(context.Background(), "tenant-a", key(1), 64, "p1")
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	waitJobState(t, m1, leader.ID, StateRunning)
	// A follower attaching to the running flight shares its fate.
	follower, err := m1.Submit(context.Background(), "tenant-b", key(1), 64, "p1")
	if err != nil {
		t.Fatalf("Submit follower: %v", err)
	}
	m1.crash()

	m2, err := Open(Config{
		Exec:       echoExec,
		PoolSubmit: inlinePool,
		Durability: &Durability{Dir: dir, Codec: testCodec{}},
	})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer m2.Close()
	for _, id := range []obs.ID{leader.ID, follower.ID} {
		j, ok := m2.Get(id)
		if !ok {
			t.Fatalf("job %s 404 after restart", id)
		}
		if j.State != StateFailed || !errors.Is(j.Err, ErrLostToRestart) {
			t.Fatalf("job %s after restart: state=%v err=%v, want failed/ErrLostToRestart", id, j.State, j.Err)
		}
		if errors.Is(j.Err, ErrClosed) {
			t.Fatalf("lost-to-restart conflated with graceful close: %v", j.Err)
		}
	}
	if ws := m2.WALStats(); ws.Lost != 2 {
		t.Fatalf("WALStats = %+v, want 2 lost", ws)
	}
}

func TestChaosWALAppendAndFsyncFaultsRejectSubmit(t *testing.T) {
	defer faults.Disable()
	dir := t.TempDir()
	cfg := Config{
		Exec:       echoExec,
		PoolSubmit: inlinePool,
		Durability: &Durability{Dir: dir, Codec: testCodec{}},
	}
	done := &doneCollector{}
	cfg.OnDone = done.add
	m1, err := Open(cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for _, spec := range []string{"wal/append:error", "wal/fsync:error"} {
		faults.Enable(faults.MustParse(spec))
		if _, err := m1.Submit(context.Background(), "tenant-a", key(1), 64, "p1"); err == nil || !faults.IsInjected(err) {
			t.Fatalf("%s armed: Submit err = %v, want injected", spec, err)
		}
		faults.Disable()
		// No half-registered state: counters untouched, queue empty.
		if c := m1.Counters(); c.Submitted != 0 {
			t.Fatalf("%s armed: submitted = %d, want 0", spec, c.Submitted)
		}
		if d := m1.QueueDepth(); d != 0 {
			t.Fatalf("%s armed: queue depth = %d, want 0", spec, d)
		}
	}
	// Disarmed, the same submission goes through and survives a
	// restart — the failed attempts never wrote a resurrectable record.
	j, err := m1.Submit(context.Background(), "tenant-a", key(1), 64, "p1")
	if err != nil {
		t.Fatalf("Submit after disarm: %v", err)
	}
	done.await(t, 1)
	m1.Close()
	m2, err := Open(cfg)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer m2.Close()
	if got, ok := m2.Get(j.ID); !ok || got.Result != "p1-result" {
		t.Fatalf("job after restart: ok=%v result=%v", ok, got.Result)
	}
	if ws := m2.WALStats(); ws.Recovered != 1 {
		t.Fatalf("WALStats = %+v, want 1 recovered", ws)
	}
}

func TestChaosWALReplayFaultFailsOpen(t *testing.T) {
	defer faults.Disable()
	dir := t.TempDir()
	cfg := Config{
		Exec:       echoExec,
		PoolSubmit: inlinePool,
		Durability: &Durability{Dir: dir, Codec: testCodec{}},
	}
	m1, err := Open(cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if _, err := m1.Submit(context.Background(), "tenant-a", key(1), 64, "p1"); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	m1.Close()

	faults.Enable(faults.MustParse("wal/replay:error"))
	if _, err := Open(cfg); err == nil || !faults.IsInjected(err) {
		t.Fatalf("armed wal/replay: Open err = %v, want injected", err)
	}
	faults.Disable()
	m2, err := Open(cfg)
	if err != nil {
		t.Fatalf("Open after disarm: %v", err)
	}
	m2.Close()
}

func TestRecoveryTornLogTail(t *testing.T) {
	dir := t.TempDir()
	done := &doneCollector{}
	cfg := Config{
		Exec:       echoExec,
		PoolSubmit: inlinePool,
		OnDone:     done.add,
		Durability: &Durability{Dir: dir, Codec: testCodec{}},
	}
	m1, err := Open(cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	j1, err := m1.Submit(context.Background(), "tenant-a", key(1), 64, "p1")
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	done.await(t, 1)
	m1.crash() // crash, not Close: the log keeps its record history

	// Tear the log mid-frame, as a crash mid-write would.
	path := filepath.Join(dir, "jobs.wal")
	st, err := os.Stat(path)
	if err != nil {
		t.Fatalf("stat: %v", err)
	}
	if err := os.Truncate(path, st.Size()-3); err != nil {
		t.Fatalf("truncate: %v", err)
	}

	m2, err := Open(cfg)
	if err != nil {
		t.Fatalf("reopen over torn log: %v", err)
	}
	defer m2.Close()
	// The torn record was the finish; the clean prefix still holds
	// submit+start, so the job resolves as lost — never a 404, never
	// a panic.
	j, ok := m2.Get(j1.ID)
	if !ok {
		t.Fatal("job 404 after torn-log recovery")
	}
	if j.State == StateDone {
		// Depending on frame sizes the tear may have only clipped the
		// finish record's tail bytes; either done or lost is a valid
		// account, silence or panic is not.
		return
	}
	if j.State != StateFailed || !errors.Is(j.Err, ErrLostToRestart) {
		t.Fatalf("torn-log job state=%v err=%v", j.State, j.Err)
	}
}
