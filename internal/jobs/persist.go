package jobs

// Durability: the manager's write-ahead-log integration. Submissions,
// flight state transitions, and results append typed records to an
// internal/wal log; on startup the manager replays snapshot+log and
// restores what the previous process owed its clients — finished jobs
// go back into the TTL store with their original deadlines, jobs that
// were still queued are re-enqueued for execution, and jobs that were
// mid-execution (their computation died with the process) fail with
// ErrLostToRestart so pollers get a distinguishable "resubmit me"
// answer instead of a 404.
//
// Record ordering is the correctness backbone: every record is
// appended while holding the manager lock, in the same critical
// section as the state change it describes, so the log is a
// linearization of the manager's history. Submissions append *before*
// the state mutation and reject the submission if the append fails
// (an unacknowledged job may never resurrect); transition records
// append after their mutation but inside the same critical section,
// so a client can never observe a state the log does not yet imply.
// Replay is idempotent — re-applying a record already covered by the
// snapshot is a no-op — which is what lets compaction swap files
// non-atomically (see wal.Compact).

import (
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"robustperiod/internal/obs"
	"robustperiod/internal/wal"
)

// ErrLostToRestart marks jobs that were mid-execution when the
// process died: their computation is gone and the client should
// resubmit. Distinguishable from ErrClosed (graceful drain) via
// errors.Is.
var ErrLostToRestart = errors.New("jobs: execution lost to restart, resubmit")

// Codec translates the serving layer's opaque job payloads and
// results to and from durable bytes. The jobs package never learns
// the concrete types; the codec lives with whoever owns them.
type Codec interface {
	EncodePayload(payload any) ([]byte, error)
	DecodePayload(data []byte) (any, error)
	EncodeResult(result any) ([]byte, error)
	DecodeResult(data []byte) (any, error)
}

// Durability enables WAL persistence for a Manager.
type Durability struct {
	// Dir is the data directory (required).
	Dir string
	// Codec encodes payloads/results (required).
	Codec Codec
	// Policy is the fsync policy; the zero value is wal.SyncAlways.
	Policy wal.Policy
	// SyncInterval is the background fsync period under
	// wal.SyncInterval; <= 0 means the wal default.
	SyncInterval time.Duration
	// CompactBytes triggers snapshot+compaction when the log segment
	// exceeds it; <= 0 means 8 MiB.
	CompactBytes int64
	// MaxRecord caps one WAL record; <= 0 means the wal default.
	MaxRecord int
}

// WAL record kinds. submit/start/finish are the incremental log;
// "job" is a full-state snapshot entry.
const (
	recSubmit = "submit"
	recStart  = "start"
	recFinish = "finish"
	recJob    = "job"
)

// Terminal error classes persisted in finish records. Free-form
// messages survive in ErrMsg; the kind is what restores sentinels.
const (
	errKindClosed = "closed"
	errKindLost   = "lost"
	errKindOther  = "error"
)

// walKey is the coalescing key's wire form.
type walKey struct {
	H1 uint64 `json:"h1"`
	H2 uint64 `json:"h2"`
	N  int    `json:"n"`
}

func (k *walKey) key() Key { return Key{H1: k.H1, H2: k.H2, N: k.N} }

// walRecord is the JSON envelope inside every WAL frame. submit and
// job records carry identity; start/finish are flight-level (keyed)
// and fan out to every member on replay, mirroring finishFlight.
type walRecord struct {
	Kind        string          `json:"kind"`
	ID          string          `json:"id,omitempty"`
	Tenant      string          `json:"tenant,omitempty"`
	Key         *walKey         `json:"key,omitempty"`
	Cost        int             `json:"cost,omitempty"`
	Coalesced   bool            `json:"coalesced,omitempty"`
	State       string          `json:"state,omitempty"` // snapshot entries only
	SubmittedNS int64           `json:"subNs,omitempty"`
	StartedNS   int64           `json:"startNs,omitempty"`
	FinishedNS  int64           `json:"finNs,omitempty"`
	ExpiresNS   int64           `json:"expNs,omitempty"`
	Degraded    bool            `json:"degraded,omitempty"`
	ErrKind     string          `json:"errKind,omitempty"`
	ErrMsg      string          `json:"errMsg,omitempty"`
	Payload     json.RawMessage `json:"payload,omitempty"`
	Result      json.RawMessage `json:"result,omitempty"`
}

// walSnapshot is the single snapshot frame: terminal jobs first (in
// ring order), then live flights with each leader before its
// followers, so replay rebuilds flight membership leader-first.
type walSnapshot struct {
	Jobs []walRecord `json:"jobs"`
}

func tsNS(t time.Time) int64 {
	if t.IsZero() {
		return 0
	}
	return t.UnixNano()
}

func fromNS(ns int64) time.Time {
	if ns == 0 {
		return time.Time{}
	}
	return time.Unix(0, ns)
}

func errKindOf(err error) (kind, msg string) {
	switch {
	case err == nil:
		return "", ""
	case errors.Is(err, ErrClosed):
		return errKindClosed, err.Error()
	case errors.Is(err, ErrLostToRestart):
		return errKindLost, err.Error()
	default:
		return errKindOther, err.Error()
	}
}

func errFromKind(kind, msg string) error {
	switch kind {
	case "":
		return nil
	case errKindClosed:
		return ErrClosed
	case errKindLost:
		return ErrLostToRestart
	default:
		if msg == "" {
			msg = "jobs: failed before restart"
		}
		return errors.New(msg)
	}
}

// WALStats is the durability tier's observability snapshot; zero with
// Enabled=false when the manager runs in-memory.
type WALStats struct {
	Enabled       bool
	Appends       int64 // records appended (incl. snapshot frames)
	AppendErrs    int64 // failed appends (injected or real I/O)
	Fsyncs        int64 // successful fsyncs
	SyncErrs      int64 // failed fsyncs
	Bytes         int64 // current log segment size
	ReplayRecords int64 // records decoded at startup
	Compactions   int64 // snapshot+compaction cycles
	EncodeErrs    int64 // payload/result marshal failures
	Recovered     int64 // jobs restored pollable (finished + re-enqueued)
	Lost          int64 // jobs failed as lost to restart
}

// WALStats snapshots the durability counters.
func (m *Manager) WALStats() WALStats {
	if m.wlog == nil {
		return WALStats{}
	}
	st := m.wlog.Stats()
	m.mu.Lock()
	recovered, lost, encodeErrs := m.recovered, m.lost, m.walEncodeErrs
	m.mu.Unlock()
	return WALStats{
		Enabled:       true,
		Appends:       st.Appends,
		AppendErrs:    st.AppendErrs,
		Fsyncs:        st.Fsyncs,
		SyncErrs:      st.SyncErrs,
		Bytes:         st.Bytes,
		ReplayRecords: st.ReplayRecords,
		Compactions:   st.Compactions,
		EncodeErrs:    encodeErrs,
		Recovered:     recovered,
		Lost:          lost,
	}
}

// logAppendLocked marshals and appends one record under m.mu. Append
// failures on transition records are counted, not propagated: the
// in-memory state machine stays authoritative for this process, and
// at worst a restart replays the flight one transition behind
// (re-running a queued flight, or losing a finished result to a
// resubmit) — never inventing a job.
func (m *Manager) logAppendLocked(rec *walRecord) (time.Duration, error) {
	b, err := json.Marshal(rec)
	if err != nil {
		m.walEncodeErrs++
		return 0, fmt.Errorf("jobs: encode WAL record: %w", err)
	}
	return m.wlog.AppendTimed(b)
}

func (m *Manager) logStartLocked(key Key, now time.Time) {
	if m.wlog == nil {
		return
	}
	k := walKey{key.H1, key.H2, key.N}
	m.logAppendLocked(&walRecord{Kind: recStart, Key: &k, StartedNS: tsNS(now)})
}

// logFinishLocked records a flight's terminal outcome; done is any
// finished member (they share outcome and deadlines).
func (m *Manager) logFinishLocked(key Key, done *Job, resRaw []byte) {
	if m.wlog == nil {
		return
	}
	k := walKey{key.H1, key.H2, key.N}
	kind, msg := errKindOf(done.Err)
	m.logAppendLocked(&walRecord{
		Kind:       recFinish,
		Key:        &k,
		FinishedNS: tsNS(done.Finished),
		ExpiresNS:  tsNS(done.Expires),
		Degraded:   done.Degraded,
		ErrKind:    kind,
		ErrMsg:     msg,
		Result:     resRaw,
	})
}

// recordFromJob builds a snapshot entry carrying a job's full state.
func recordFromJob(j *Job) walRecord {
	kind, msg := errKindOf(j.Err)
	return walRecord{
		Kind:        recJob,
		ID:          j.ID.String(),
		Tenant:      j.Tenant,
		Key:         &walKey{j.Key.H1, j.Key.H2, j.Key.N},
		Cost:        j.Cost,
		Coalesced:   j.Coalesced,
		State:       j.State.String(),
		SubmittedNS: tsNS(j.Submitted),
		StartedNS:   tsNS(j.Started),
		FinishedNS:  tsNS(j.Finished),
		ExpiresNS:   tsNS(j.Expires),
		Degraded:    j.Degraded,
		ErrKind:     kind,
		ErrMsg:      msg,
		Payload:     j.payloadRaw,
		Result:      j.resultRaw,
	}
}

// replayState folds the snapshot and log into per-job latest state
// plus flight membership (leader first), mirroring the manager's own
// transition rules: start/finish records fan out to every member of
// the key's flight at that point in the history.
type replayState struct {
	jobs    map[string]*walRecord
	order   []string
	flights map[Key][]string
}

func newReplayState() *replayState {
	return &replayState{jobs: make(map[string]*walRecord), flights: make(map[Key][]string)}
}

// terminalState reports whether a folded record is done/failed.
func terminalState(rec *walRecord) bool {
	return rec.State == StateDone.String() || rec.State == StateFailed.String()
}

func (st *replayState) apply(rec *walRecord) {
	switch rec.Kind {
	case recSubmit, recJob:
		if rec.ID == "" || rec.Key == nil {
			return
		}
		if _, seen := st.jobs[rec.ID]; !seen {
			st.order = append(st.order, rec.ID)
		}
		st.jobs[rec.ID] = rec
		if terminalState(rec) {
			return
		}
		k := rec.Key.key()
		for _, id := range st.flights[k] {
			if id == rec.ID {
				return
			}
		}
		st.flights[k] = append(st.flights[k], rec.ID)
	case recStart:
		if rec.Key == nil {
			return
		}
		for _, id := range st.flights[rec.Key.key()] {
			j := st.jobs[id]
			j.State = StateRunning.String()
			j.StartedNS = rec.StartedNS
		}
	case recFinish:
		if rec.Key == nil {
			return
		}
		k := rec.Key.key()
		for _, id := range st.flights[k] {
			j := st.jobs[id]
			if rec.ErrKind != "" {
				j.State = StateFailed.String()
			} else {
				j.State = StateDone.String()
			}
			j.FinishedNS = rec.FinishedNS
			j.ExpiresNS = rec.ExpiresNS
			j.Degraded = rec.Degraded
			j.ErrKind = rec.ErrKind
			j.ErrMsg = rec.ErrMsg
			j.Result = rec.Result
		}
		delete(st.flights, k)
	}
}

// jobFromRecord rebuilds a Job. needPayload is true for jobs that
// will execute again (their payload must decode); for terminal jobs a
// payload decode failure only costs the payload-derived details, not
// the job.
func (m *Manager) jobFromRecord(rec *walRecord, needPayload bool) (*Job, error) {
	id, ok := obs.ParseID(rec.ID)
	if !ok {
		return nil, fmt.Errorf("jobs: replay: bad job ID %q", rec.ID)
	}
	j := &Job{
		ID:         id,
		Tenant:     rec.Tenant,
		Key:        rec.Key.key(),
		Cost:       rec.Cost,
		Coalesced:  rec.Coalesced,
		Submitted:  fromNS(rec.SubmittedNS),
		Started:    fromNS(rec.StartedNS),
		Finished:   fromNS(rec.FinishedNS),
		Expires:    fromNS(rec.ExpiresNS),
		Degraded:   rec.Degraded,
		Err:        errFromKind(rec.ErrKind, rec.ErrMsg),
		payloadRaw: rec.Payload,
		resultRaw:  rec.Result,
	}
	switch rec.State {
	case StateRunning.String():
		j.State = StateRunning
	case StateDone.String():
		j.State = StateDone
	case StateFailed.String():
		j.State = StateFailed
	default:
		j.State = StateQueued
	}
	if len(rec.Payload) > 0 {
		p, perr := m.codec.DecodePayload(rec.Payload)
		if perr != nil {
			if needPayload {
				return nil, fmt.Errorf("jobs: replay: decode payload: %w", perr)
			}
			m.walEncodeErrs++
		} else {
			j.Payload = p
		}
	}
	if len(rec.Result) > 0 && j.Err == nil {
		r, rerr := m.codec.DecodeResult(rec.Result)
		if rerr != nil {
			return nil, fmt.Errorf("jobs: replay: decode result: %w", rerr)
		}
		j.Result = r
	}
	return j, nil
}

// recover replays the durable state and restores it into the
// manager's structures. Runs from Open, before the dispatcher and
// reaper goroutines start, so it needs no lock.
func (m *Manager) recover() error {
	st := newReplayState()
	applyBytes := func(b []byte) error {
		var rec walRecord
		if err := json.Unmarshal(b, &rec); err != nil {
			// A CRC-valid frame that does not decode is corruption
			// past the framing layer (or a future record kind);
			// skipping it loses at most that transition.
			m.walEncodeErrs++
			return nil
		}
		st.apply(&rec)
		return nil
	}
	err := m.wlog.Replay(
		func(snap []byte) error {
			var s walSnapshot
			if err := json.Unmarshal(snap, &s); err != nil {
				return fmt.Errorf("jobs: decode snapshot: %w", err)
			}
			for i := range s.Jobs {
				st.apply(&s.Jobs[i])
			}
			return nil
		},
		applyBytes,
	)
	if err != nil {
		return err
	}
	m.restore(st)
	// Compact immediately: the restored state (including jobs just
	// failed as lost) becomes one snapshot and the replayed history
	// is dropped, so startup cost stays bounded across restarts.
	if err := m.compactLocked(); err != nil {
		return fmt.Errorf("jobs: post-recovery compaction: %w", err)
	}
	return nil
}

// restore moves folded replay state into the manager: live terminal
// jobs back into the TTL store with their original deadlines, queued
// flights back onto the fair-share queue, and running flights — whose
// computation died with the old process — failed as ErrLostToRestart.
func (m *Manager) restore(st *replayState) {
	now := m.cfg.Now()
	handledFlight := make(map[Key]bool)
	for _, id := range st.order {
		rec := st.jobs[id]
		if terminalState(rec) {
			if fromNS(rec.ExpiresNS).IsZero() || !fromNS(rec.ExpiresNS).After(now) {
				m.store.expired++
				continue
			}
			j, err := m.jobFromRecord(rec, false)
			if err != nil {
				m.walEncodeErrs++
				continue
			}
			m.store.put(j)
			m.recovered++
			continue
		}
		k := rec.Key.key()
		if handledFlight[k] {
			continue
		}
		handledFlight[k] = true
		ids := st.flights[k]
		members := make([]*Job, 0, len(ids))
		running := false
		var decodeErr error
		for _, mid := range ids {
			mrec := st.jobs[mid]
			if mrec.State == StateRunning.String() {
				running = true
			}
			j, err := m.jobFromRecord(mrec, true)
			if err != nil {
				decodeErr = err
				// Keep a pollable shell so the ID still resolves.
				if shell, serr := m.jobFromRecord(mrec, false); serr == nil {
					j = shell
				} else {
					m.walEncodeErrs++
					continue
				}
			}
			members = append(members, j)
		}
		if len(members) == 0 {
			continue
		}
		if running || decodeErr != nil {
			// The execution died with the old process (or its payload
			// no longer decodes): fail every member distinguishably.
			err := ErrLostToRestart
			if decodeErr != nil {
				err = fmt.Errorf("jobs: payload undecodable after restart: %w: %w", decodeErr, ErrLostToRestart)
			}
			m.finishJobsLocked(members, nil, false, err, nil)
			m.lost += int64(len(members))
			continue
		}
		// Still queued at crash time: re-enqueue the whole flight.
		// Admission bounds are not re-checked — these jobs were
		// already acknowledged with a 202.
		m.flights[k] = &flight{jobs: members}
		for _, j := range members {
			m.live[j.ID] = j
			m.fq.tenant(j.Tenant).pending++
		}
		m.fq.push(members[0])
		m.recovered += int64(len(members))
	}
}

// snapshotLocked marshals the full retained state under m.mu:
// terminal jobs in ring order, then live flights leader-first.
func (m *Manager) snapshotLocked() ([]byte, error) {
	var snap walSnapshot
	for _, j := range m.store.all() {
		snap.Jobs = append(snap.Jobs, recordFromJob(j))
	}
	for _, fl := range m.flights {
		for _, j := range fl.jobs {
			snap.Jobs = append(snap.Jobs, recordFromJob(j))
		}
	}
	return json.Marshal(&snap)
}

// compactLocked snapshots and compacts the log. Callers hold m.mu (or
// are single-threaded startup).
func (m *Manager) compactLocked() error {
	if m.wlog == nil {
		return nil
	}
	b, err := m.snapshotLocked()
	if err != nil {
		m.walEncodeErrs++
		return fmt.Errorf("jobs: encode snapshot: %w", err)
	}
	return m.wlog.Compact(b)
}

// maybeCompact compacts when the log segment outgrows the configured
// bound; called from the reaper tick.
func (m *Manager) maybeCompact() {
	if m.wlog == nil || m.wlog.Size() < m.compactBytes {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return
	}
	m.compactLocked() // failure already counted; retried next tick
}

// crash abandons the manager without draining queues, failing flights
// or flushing the log — the in-process stand-in for kill -9 that
// recovery tests use. Production code uses Close.
func (m *Manager) crash() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	m.cond.Broadcast()
	m.mu.Unlock()
	close(m.stop)
	if m.wlog != nil {
		m.wlog.Close()
	}
}
