package jobs

import (
	"container/list"
	"time"

	"robustperiod/internal/obs"
)

// store retains terminal jobs for polling clients, modeled on the
// flight recorder's dual-ring design (internal/obs): a bounded ring of
// recently finished healthy jobs plus a second bounded ring where
// failed and degraded jobs are pinned, so a burst of healthy churn
// cannot flush the one job a client needs to debug. Every retained job
// carries an expiry stamp; expired jobs are reaped lazily on lookup
// and periodically by the manager's reaper.
//
// The store is not internally synchronized — the manager owns it and
// serializes access under its own mutex.
type store struct {
	done    *list.List // healthy terminal jobs, front = newest
	pinned  *list.List // failed/degraded terminal jobs, front = newest
	doneIdx map[obs.ID]*list.Element
	pinIdx  map[obs.ID]*list.Element
	doneCap int
	pinCap  int

	expired int64 // jobs reaped past their TTL
}

func newStore(doneCap, pinCap int) *store {
	return &store{
		done:    list.New(),
		pinned:  list.New(),
		doneIdx: make(map[obs.ID]*list.Element, doneCap),
		pinIdx:  make(map[obs.ID]*list.Element, pinCap),
		doneCap: doneCap,
		pinCap:  pinCap,
	}
}

// pinworthy reports whether a terminal job belongs in the pinned ring:
// it failed, or it completed with degradation annotations.
func pinworthy(j *Job) bool { return j.Err != nil || j.Degraded }

// put retains a terminal job, evicting the oldest entry of the target
// ring when it is full.
func (s *store) put(j *Job) {
	ll, idx, capacity := s.done, s.doneIdx, s.doneCap
	if pinworthy(j) {
		ll, idx, capacity = s.pinned, s.pinIdx, s.pinCap
	}
	idx[j.ID] = ll.PushFront(j)
	if ll.Len() > capacity {
		oldest := ll.Back()
		ll.Remove(oldest)
		delete(idx, oldest.Value.(*Job).ID)
	}
}

// get returns the retained job with the given ID. A job past its
// expiry is reaped on sight and reported missing.
func (s *store) get(id obs.ID, now time.Time) (*Job, bool) {
	for _, half := range [2]struct {
		ll  *list.List
		idx map[obs.ID]*list.Element
	}{{s.pinned, s.pinIdx}, {s.done, s.doneIdx}} {
		if el, ok := half.idx[id]; ok {
			j := el.Value.(*Job)
			if !j.Expires.After(now) {
				half.ll.Remove(el)
				delete(half.idx, id)
				s.expired++
				return nil, false
			}
			return j, true
		}
	}
	return nil, false
}

// reap removes every job whose TTL has elapsed. Jobs finish in time
// order, so each ring is scanned oldest-first and the scan stops at
// the first live entry.
func (s *store) reap(now time.Time) {
	for _, half := range [2]struct {
		ll  *list.List
		idx map[obs.ID]*list.Element
	}{{s.pinned, s.pinIdx}, {s.done, s.doneIdx}} {
		for el := half.ll.Back(); el != nil; {
			j := el.Value.(*Job)
			if j.Expires.After(now) {
				break
			}
			prev := el.Prev()
			half.ll.Remove(el)
			delete(half.idx, j.ID)
			s.expired++
			el = prev
		}
	}
}

// all returns every retained terminal job, oldest first, so re-putting
// them in order (crash recovery) reproduces the ring order and
// therefore the eviction order.
func (s *store) all() []*Job {
	out := make([]*Job, 0, s.done.Len()+s.pinned.Len())
	for _, ll := range [2]*list.List{s.done, s.pinned} {
		for el := ll.Back(); el != nil; el = el.Prev() {
			out = append(out, el.Value.(*Job))
		}
	}
	return out
}

// counts reports how many retained terminal jobs are in each outcome
// bucket.
func (s *store) counts() (done, failed int) {
	for el := s.done.Front(); el != nil; el = el.Next() {
		if el.Value.(*Job).Err != nil {
			failed++
		} else {
			done++
		}
	}
	for el := s.pinned.Front(); el != nil; el = el.Next() {
		if el.Value.(*Job).Err != nil {
			failed++
		} else {
			done++
		}
	}
	return done, failed
}
