package jobs

// fairQueue schedules pending job executions across tenants with
// deficit round-robin: each tenant keeps a FIFO of its queued leader
// jobs and a deficit counter topped up by one quantum per scheduling
// visit; a job is dispatched when its cost (series points — the best
// cheap proxy for detection work) fits the accumulated deficit. A
// tenant flooding the queue with long series therefore drains at the
// same long-run cost rate as a light tenant submitting short ones,
// instead of monopolizing the worker pool by arrival order.
//
// Not internally synchronized — the manager owns it under its mutex.
type fairQueue struct {
	quantum int
	tenants map[string]*tenantQueue
	active  []*tenantQueue // tenants with queued jobs, round-robin order
	next    int            // round-robin cursor into active
	depth   int            // total queued (undispatched) jobs
}

// tenantQueue is one tenant's pending executions and scheduling state.
type tenantQueue struct {
	name    string
	jobs    []*Job // queued leader jobs, FIFO
	deficit int    // accumulated dispatch budget, in cost units
	pending int    // live jobs (queued, coalesced, running) for admission
}

func newFairQueue(quantum int) *fairQueue {
	return &fairQueue{quantum: quantum, tenants: make(map[string]*tenantQueue)}
}

// tenant returns (creating if needed) the named tenant's queue.
func (q *fairQueue) tenant(name string) *tenantQueue {
	tq, ok := q.tenants[name]
	if !ok {
		tq = &tenantQueue{name: name}
		q.tenants[name] = tq
	}
	return tq
}

// push enqueues a leader job for dispatch.
func (q *fairQueue) push(j *Job) {
	tq := q.tenant(j.Tenant)
	if len(tq.jobs) == 0 {
		q.active = append(q.active, tq)
	}
	tq.jobs = append(tq.jobs, j)
	q.depth++
}

// pop returns the next job under deficit round-robin, or nil when
// nothing is queued. Each visit to a tenant adds one quantum to its
// deficit; the head job dispatches once the deficit covers its cost,
// so an over-quantum job waits a few rounds instead of starving or
// jumping the line.
func (q *fairQueue) pop() *Job {
	for len(q.active) > 0 {
		if q.next >= len(q.active) {
			q.next = 0
		}
		tq := q.active[q.next]
		tq.deficit += q.quantum
		head := tq.jobs[0]
		cost := head.Cost
		if cost < 1 {
			cost = 1
		}
		if cost > tq.deficit {
			q.next++
			continue
		}
		tq.deficit -= cost
		tq.jobs[0] = nil
		tq.jobs = tq.jobs[1:]
		q.depth--
		if len(tq.jobs) == 0 {
			// An empty tenant leaves the round-robin ring and forfeits
			// its deficit: fairness is about the backlog, not a savings
			// account for future bursts.
			tq.deficit = 0
			q.active = append(q.active[:q.next], q.active[q.next+1:]...)
		} else {
			q.next++
		}
		return head
	}
	return nil
}

// drain removes and returns every queued job (shutdown path).
func (q *fairQueue) drain() []*Job {
	var out []*Job
	for _, tq := range q.active {
		out = append(out, tq.jobs...)
		tq.jobs = nil
		tq.deficit = 0
	}
	q.active = nil
	q.next = 0
	q.depth = 0
	return out
}
