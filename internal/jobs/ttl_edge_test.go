package jobs

// TTL-store edge cases: the zero-TTL default, expiry racing Close,
// and eviction order under overflow in both rings (degraded jobs are
// pinworthy too, not only failed ones).

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"robustperiod/internal/obs"
)

// TestTTLZeroUsesDefault: TTL=0 is not "expire immediately" — it
// selects the 5m production default, so a finished job is still
// retrievable right after completion and for the default window.
func TestTTLZeroUsesDefault(t *testing.T) {
	clk := newTestClock()
	done := &doneCollector{}
	m := New(Config{
		Exec: func(ctx context.Context, payload any) (any, bool, error) {
			return "ok", false, nil
		},
		PoolSubmit: asyncPool,
		OnDone:     done.add,
		TTL:        0,
		Now:        clk.Now,
	})
	defer m.Close()
	j, err := m.Submit(context.Background(), "t", key(1), 64, nil)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	done.await(t, 1)
	got, ok := m.Get(j.ID)
	if !ok {
		t.Fatal("finished job not retrievable with TTL=0")
	}
	if want := got.Finished.Add(5 * time.Minute); !got.Expires.Equal(want) {
		t.Fatalf("TTL=0 expiry %v, want default-5m %v", got.Expires, want)
	}
	clk.Advance(5*time.Minute - time.Second)
	if _, ok := m.Get(j.ID); !ok {
		t.Fatal("job expired before the default TTL elapsed")
	}
	clk.Advance(2 * time.Second)
	if _, ok := m.Get(j.ID); ok {
		t.Fatal("job survived past the default TTL")
	}
}

// TestChaosTTLExpiryRacesClose drives expiry (lazy Gets + reaper
// ticks on a real clock with a tiny TTL) concurrently with Close,
// for the race detector: no lookup may observe a torn store.
func TestChaosTTLExpiryRacesClose(t *testing.T) {
	const jobs = 64
	done := &doneCollector{}
	m := New(Config{
		Exec: func(ctx context.Context, payload any) (any, bool, error) {
			return "ok", false, nil
		},
		PoolSubmit: asyncPool,
		OnDone:     done.add,
		TTL:        time.Millisecond,
		ReapEvery:  time.Millisecond,
	})
	ids := make([]obs.ID, 0, jobs)
	for i := 0; i < jobs; i++ {
		j, err := m.Submit(context.Background(), "t", key(i), 64, nil)
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		ids = append(ids, j.ID)
	}
	done.await(t, jobs)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				m.Get(ids[g%len(ids)])
				m.Reap()
			}
		}(g)
	}
	time.Sleep(5 * time.Millisecond) // let expiry and lookups overlap
	m.Close()
	close(stop)
	wg.Wait()
	// After TTL + Close every job is gone, each accounted as expired
	// exactly once.
	for _, id := range ids {
		if _, ok := m.Get(id); ok {
			t.Fatalf("job %s survived TTL+Close", id)
		}
	}
	if c := m.Counters(); c.Expired != jobs {
		t.Fatalf("expired = %d, want %d", c.Expired, jobs)
	}
}

// TestStoreOverflowEvictionOrder pins down eviction order in both
// rings: overflow evicts strictly oldest-first, degraded (not just
// failed) jobs land in the pinned ring, and healthy churn can never
// evict a pinned job or vice versa.
func TestStoreOverflowEvictionOrder(t *testing.T) {
	s := newStore(2, 2)
	expires := time.Now().Add(time.Hour)
	mk := func(i int, failed, degraded bool) *Job {
		j := &Job{ID: obs.ID{byte(i)}, Expires: expires, Degraded: degraded}
		if failed {
			j.Err = errors.New("x")
		}
		return j
	}
	// Pinned ring: one failed, one degraded-but-successful, then a
	// third pinworthy job evicts the oldest (1), not the degraded (2).
	s.put(mk(1, true, false))
	s.put(mk(2, false, true))
	s.put(mk(3, true, true))
	if _, ok := s.get(obs.ID{1}, time.Now()); ok {
		t.Fatal("pinned overflow did not evict oldest-first")
	}
	for i := 2; i <= 3; i++ {
		if _, ok := s.get(obs.ID{byte(i)}, time.Now()); !ok {
			t.Fatalf("pinned entry %d missing", i)
		}
	}
	// Healthy ring overflow evicts its own oldest and leaves the
	// pinned ring untouched.
	for i := 10; i <= 12; i++ {
		s.put(mk(i, false, false))
	}
	if _, ok := s.get(obs.ID{10}, time.Now()); ok {
		t.Fatal("done overflow did not evict oldest-first")
	}
	for i := 11; i <= 12; i++ {
		if _, ok := s.get(obs.ID{byte(i)}, time.Now()); !ok {
			t.Fatalf("done entry %d missing", i)
		}
	}
	for i := 2; i <= 3; i++ {
		if _, ok := s.get(obs.ID{byte(i)}, time.Now()); !ok {
			t.Fatalf("done churn evicted pinned entry %d", i)
		}
	}
	done, failed := s.counts()
	if done+failed != 4 {
		t.Fatalf("retained %d jobs, want 4", done+failed)
	}
}
