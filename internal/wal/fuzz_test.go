package wal

import (
	"bytes"
	"testing"
)

// FuzzWALDecode drives DecodeFrames — the exact decoder Replay uses —
// with arbitrary bytes, including truncations and bit-flips of valid
// logs, and checks the replay invariants: never panic, never allocate
// past the input (a length prefix is only trusted up to the bytes
// present and MaxRecord), and always terminate with a clean prefix
// that re-encodes byte-identically.
func FuzzWALDecode(f *testing.F) {
	valid := appendFrame(nil, []byte("alpha"))
	valid = appendFrame(valid, []byte(""))
	valid = appendFrame(valid, bytes.Repeat([]byte{0x5A}, 300))
	f.Add([]byte{})
	f.Add(valid)
	f.Add(valid[:len(valid)-7]) // torn tail
	flipped := append([]byte(nil), valid...)
	flipped[10] ^= 0x80
	f.Add(flipped)
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0}) // absurd length claim
	f.Add(append(append([]byte(nil), valid...), 0xDE, 0xAD, 0xBE, 0xEF))

	const maxRecord = 1 << 20
	f.Fuzz(func(t *testing.T, b []byte) {
		payloads, clean := DecodeFrames(b, maxRecord)
		if clean < 0 || clean > len(b) {
			t.Fatalf("clean prefix %d out of range [0,%d]", clean, len(b))
		}
		total := 0
		for _, p := range payloads {
			total += len(p)
			if len(p) > maxRecord {
				t.Fatalf("payload of %d bytes exceeds maxRecord", len(p))
			}
		}
		if total > clean {
			t.Fatalf("payload bytes %d exceed clean prefix %d (over-allocation)", total, clean)
		}
		// The clean prefix is exactly the re-encoding of the decoded
		// payloads, and decoding it again is a fixed point.
		var enc []byte
		for _, p := range payloads {
			enc = appendFrame(enc, p)
		}
		if !bytes.Equal(enc, b[:clean]) {
			t.Fatalf("re-encoded prefix differs from clean prefix")
		}
		again, cleanAgain := DecodeFrames(b[:clean], maxRecord)
		if len(again) != len(payloads) || cleanAgain != clean {
			t.Fatalf("re-decode of clean prefix: %d records/%d bytes, want %d/%d",
				len(again), cleanAgain, len(payloads), clean)
		}
	})
}
