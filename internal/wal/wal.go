// Package wal implements the append-only write-ahead log that makes
// the async job tier durable across process death. Records are
// length-prefixed frames checksummed with CRC32-C (Castagnoli); the
// fsync policy is configurable (every append, a background interval,
// or never); replay tolerates torn writes and trailing garbage by
// truncating the log at the first corrupt frame — it never panics and
// never trusts a length prefix beyond the bytes actually on disk.
// Periodic snapshot+compaction (Compact) rewrites the durable state
// as a single snapshot frame and swaps in a fresh empty log, so disk
// usage is bounded by the live job set rather than by history.
//
// On-disk layout inside the data directory:
//
//	jobs.wal   append-only record log: 8-byte magic, then frames
//	jobs.snap  latest snapshot: 8-byte magic, then one frame
//	*.tmp      in-progress snapshot/log rewrites (removed on Open)
//
// Frame format (all integers little-endian):
//
//	uint32 payload length | uint32 CRC32-C of payload | payload
//
// Snapshots become visible only by atomic rename of a fully fsynced
// temp file, so jobs.snap is either absent or complete. A crash
// between the snapshot rename and the log reset leaves old records in
// the log that are also covered by the snapshot; callers must make
// replay idempotent (re-applying a record observed in the snapshot is
// a no-op).
//
// The `wal/append`, `wal/fsync`, and `wal/replay` fault points
// (internal/faults) inject disk failures at the three I/O seams for
// chaos testing.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"robustperiod/internal/faults"
)

// Policy says when appended records are fsynced to disk.
type Policy int

// Fsync policies, in decreasing order of durability.
const (
	// SyncAlways fsyncs after every append: an acknowledged record
	// survives kill -9 and power loss. Highest latency per submit.
	SyncAlways Policy = iota
	// SyncInterval fsyncs from a background timer: bounded data loss
	// (up to one interval of acknowledged records) at near-SyncNever
	// throughput.
	SyncInterval
	// SyncNever leaves flushing to the OS page cache: records survive
	// process death (the write hit the kernel) but not power loss.
	SyncNever
)

func (p Policy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncNever:
		return "never"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// ParsePolicy parses the rpserved -fsync flag value: "always",
// "never", or a positive Go duration (e.g. "100ms") selecting
// SyncInterval with that period. The empty string means "always".
func ParsePolicy(s string) (Policy, time.Duration, error) {
	switch strings.TrimSpace(s) {
	case "", "always":
		return SyncAlways, 0, nil
	case "never":
		return SyncNever, 0, nil
	}
	d, err := time.ParseDuration(strings.TrimSpace(s))
	if err != nil {
		return 0, 0, fmt.Errorf("wal: fsync policy %q is not always, never, or a duration: %w", s, err)
	}
	if d <= 0 {
		return 0, 0, fmt.Errorf("wal: fsync interval %q must be positive", s)
	}
	return SyncInterval, d, nil
}

// Options configures a Log.
type Options struct {
	// Policy is the fsync policy; the zero value is SyncAlways.
	Policy Policy
	// Interval is the background fsync period under SyncInterval;
	// <= 0 means 100ms.
	Interval time.Duration
	// MaxRecord caps a single record payload; <= 0 means 64 MiB.
	// Replay treats a frame claiming a larger payload as corrupt.
	MaxRecord int
}

const (
	logMagic     = "RPWAL01\n"
	snapMagic    = "RPSNP01\n"
	magicLen     = 8
	frameHdrLen  = 8 // uint32 length + uint32 CRC32-C
	logName      = "jobs.wal"
	snapName     = "jobs.snap"
	defMaxRecord = 64 << 20
	defInterval  = 100 * time.Millisecond
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrRecordTooLarge is returned by Append for payloads over
// Options.MaxRecord.
var ErrRecordTooLarge = errors.New("wal: record exceeds MaxRecord")

// Stats is a point-in-time snapshot of a Log's counters.
type Stats struct {
	Appends       int64 // records appended (log + snapshot frames)
	AppendErrs    int64 // appends that failed (injected or real I/O)
	Fsyncs        int64 // fsync calls that succeeded
	SyncErrs      int64 // fsync calls that failed
	Bytes         int64 // size of the current log segment, bytes
	ReplayRecords int64 // records decoded by Replay (snapshot + log)
	Compactions   int64 // snapshot+compaction cycles completed
	Truncated     int64 // bytes of torn/garbage tail dropped by Replay
}

// Log is an append-only record log bound to one data directory. All
// methods are safe for concurrent use; callers that need record order
// to match their own state transitions (internal/jobs does) should
// serialize Append under their own lock.
type Log struct {
	dir  string
	opts Options

	mu     sync.Mutex
	f      *os.File
	size   int64 // current log segment size including magic
	dirty  bool  // appended since the last successful fsync
	closed bool
	stats  Stats

	stop chan struct{}
	wg   sync.WaitGroup
}

// Open creates or opens the log in dir, creating the directory as
// needed and removing leftover temp files from interrupted
// compactions. It does not read existing records — call Replay before
// the first Append to restore state and trim any torn tail.
func Open(dir string, opts Options) (*Log, error) {
	if opts.MaxRecord <= 0 {
		opts.MaxRecord = defMaxRecord
	}
	if opts.Interval <= 0 {
		opts.Interval = defInterval
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: create data dir: %w", err)
	}
	// Temp files are only ever intermediate states of Compact; a
	// leftover one is an interrupted rewrite and is garbage.
	tmps, _ := filepath.Glob(filepath.Join(dir, "*.tmp"))
	for _, t := range tmps {
		os.Remove(t)
	}
	f, err := os.OpenFile(filepath.Join(dir, logName), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: open log: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: stat log: %w", err)
	}
	size := st.Size()
	if size < magicLen {
		// New log, or a crash tore the initial header write. Start
		// clean: nothing after a partial header can be valid.
		if err := initLogFile(f); err != nil {
			f.Close()
			return nil, err
		}
		size = magicLen
	} else {
		var hdr [magicLen]byte
		if _, err := f.ReadAt(hdr[:], 0); err != nil {
			f.Close()
			return nil, fmt.Errorf("wal: read log header: %w", err)
		}
		if string(hdr[:]) != logMagic {
			f.Close()
			return nil, fmt.Errorf("wal: %s is not a RobustPeriod job log (bad magic)", filepath.Join(dir, logName))
		}
		if _, err := f.Seek(0, io.SeekEnd); err != nil {
			f.Close()
			return nil, fmt.Errorf("wal: seek log: %w", err)
		}
	}
	l := &Log{dir: dir, opts: opts, f: f, size: size, stop: make(chan struct{})}
	l.stats.Bytes = size
	if opts.Policy == SyncInterval {
		l.wg.Add(1)
		go l.syncLoop()
	}
	return l, nil
}

func initLogFile(f *os.File) error {
	if err := f.Truncate(0); err != nil {
		return fmt.Errorf("wal: reset log: %w", err)
	}
	if _, err := f.WriteAt([]byte(logMagic), 0); err != nil {
		return fmt.Errorf("wal: write log header: %w", err)
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("wal: sync log header: %w", err)
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		return fmt.Errorf("wal: seek log: %w", err)
	}
	return nil
}

// appendFrame appends one encoded frame for payload to dst.
func appendFrame(dst, payload []byte) []byte {
	var hdr [frameHdrLen]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, castagnoli))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// DecodeFrames decodes the longest clean prefix of a frame stream
// (the log file contents after the magic header). It returns the
// decoded payloads and the byte length of that clean prefix; bytes
// past it are a torn write or trailing garbage. The returned payloads
// alias b — callers that retain them must copy. DecodeFrames never
// panics on arbitrary input and never allocates based on a length
// prefix alone: a frame claiming more bytes than remain in b (or more
// than maxRecord, <= 0 meaning the 64 MiB default) terminates the
// clean prefix.
func DecodeFrames(b []byte, maxRecord int) (payloads [][]byte, clean int) {
	if maxRecord <= 0 {
		maxRecord = defMaxRecord
	}
	off := 0
	for len(b)-off >= frameHdrLen {
		n := int(binary.LittleEndian.Uint32(b[off : off+4]))
		if n > maxRecord || n > len(b)-off-frameHdrLen {
			break
		}
		want := binary.LittleEndian.Uint32(b[off+4 : off+8])
		payload := b[off+frameHdrLen : off+frameHdrLen+n]
		if crc32.Checksum(payload, castagnoli) != want {
			break
		}
		payloads = append(payloads, payload)
		off += frameHdrLen + n
	}
	return payloads, off
}

// Replay restores durable state: it reads the snapshot (if one
// exists) through snapshotFn, then every clean log record in append
// order through recordFn, then truncates the log file to the clean
// prefix so a torn tail cannot shadow future appends. A torn or
// garbage log tail is tolerated silently; a corrupt snapshot is an
// error (jobs.snap only ever appears by atomic rename of a fully
// synced file, so corruption there is real disk damage an operator
// should see). Callback errors abort the replay.
func (l *Log) Replay(snapshotFn func(payload []byte) error, recordFn func(payload []byte) error) error {
	if err := faults.Check(faults.PointWALReplay); err != nil {
		return fmt.Errorf("wal: replay: %w", err)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return errors.New("wal: replay on closed log")
	}

	snap, err := os.ReadFile(filepath.Join(l.dir, snapName))
	switch {
	case errors.Is(err, os.ErrNotExist):
		// No snapshot yet: replay the log alone.
	case err != nil:
		return fmt.Errorf("wal: read snapshot: %w", err)
	default:
		if len(snap) < magicLen || string(snap[:magicLen]) != snapMagic {
			return fmt.Errorf("wal: snapshot %s is corrupt (bad magic)", filepath.Join(l.dir, snapName))
		}
		payloads, clean := DecodeFrames(snap[magicLen:], l.opts.MaxRecord)
		if len(payloads) != 1 || clean != len(snap)-magicLen {
			return fmt.Errorf("wal: snapshot %s is corrupt (want one clean frame)", filepath.Join(l.dir, snapName))
		}
		if snapshotFn != nil {
			if err := snapshotFn(payloads[0]); err != nil {
				return fmt.Errorf("wal: apply snapshot: %w", err)
			}
		}
		l.stats.ReplayRecords++
	}

	data, err := io.ReadAll(io.NewSectionReader(l.f, magicLen, l.size-magicLen))
	if err != nil {
		return fmt.Errorf("wal: read log: %w", err)
	}
	payloads, clean := DecodeFrames(data, l.opts.MaxRecord)
	for _, p := range payloads {
		if recordFn != nil {
			if err := recordFn(p); err != nil {
				return fmt.Errorf("wal: apply record: %w", err)
			}
		}
		l.stats.ReplayRecords++
	}
	if torn := int64(len(data) - clean); torn > 0 {
		end := int64(magicLen + clean)
		if err := l.f.Truncate(end); err != nil {
			return fmt.Errorf("wal: trim torn tail: %w", err)
		}
		if _, err := l.f.Seek(0, io.SeekEnd); err != nil {
			return fmt.Errorf("wal: seek log: %w", err)
		}
		if err := l.f.Sync(); err != nil {
			return fmt.Errorf("wal: sync trimmed log: %w", err)
		}
		l.size = end
		l.stats.Bytes = end
		l.stats.Truncated += torn
	}
	return nil
}

// Append writes one record and, under SyncAlways, fsyncs it before
// returning. On any failure the file is restored (best effort) to its
// pre-append length so a half-written frame cannot linger mid-log,
// and the record must be treated as not durable.
func (l *Log) Append(payload []byte) error {
	_, err := l.AppendTimed(payload)
	return err
}

// AppendTimed is Append, additionally reporting how long the
// SyncAlways fsync took (zero under the other policies, where the
// append returns without waiting on the disk). Callers use it to
// attribute WAL latency in request span traces.
func (l *Log) AppendTimed(payload []byte) (time.Duration, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.appendLocked(payload)
}

func (l *Log) appendLocked(payload []byte) (time.Duration, error) {
	if l.closed {
		return 0, errors.New("wal: append on closed log")
	}
	if len(payload) > l.opts.MaxRecord {
		l.stats.AppendErrs++
		return 0, fmt.Errorf("%w (%d > %d bytes)", ErrRecordTooLarge, len(payload), l.opts.MaxRecord)
	}
	if err := faults.Check(faults.PointWALAppend); err != nil {
		l.stats.AppendErrs++
		return 0, fmt.Errorf("wal: append: %w", err)
	}
	frame := appendFrame(make([]byte, 0, frameHdrLen+len(payload)), payload)
	pre := l.size
	if _, err := l.f.Write(frame); err != nil {
		l.rollbackTo(pre)
		l.stats.AppendErrs++
		return 0, fmt.Errorf("wal: append: %w", err)
	}
	l.size = pre + int64(len(frame))
	l.stats.Bytes = l.size
	var syncDur time.Duration
	if l.opts.Policy == SyncAlways {
		syncStart := time.Now()
		if err := l.syncLocked(); err != nil {
			l.rollbackTo(pre)
			l.stats.AppendErrs++
			return 0, fmt.Errorf("wal: append: %w", err)
		}
		syncDur = time.Since(syncStart)
	} else {
		l.dirty = true
	}
	l.stats.Appends++
	return syncDur, nil
}

// rollbackTo restores the log file to a pre-append length after a
// failed write or fsync, best effort: if the truncate itself fails
// the next Replay's CRC check drops the torn frame instead.
func (l *Log) rollbackTo(n int64) {
	if l.f.Truncate(n) == nil {
		l.f.Seek(0, io.SeekEnd)
		l.size = n
		l.stats.Bytes = n
	}
}

func (l *Log) syncLocked() error {
	if err := faults.Check(faults.PointWALFsync); err != nil {
		l.stats.SyncErrs++
		return fmt.Errorf("fsync: %w", err)
	}
	if err := l.f.Sync(); err != nil {
		l.stats.SyncErrs++
		return fmt.Errorf("fsync: %w", err)
	}
	l.stats.Fsyncs++
	l.dirty = false
	return nil
}

// Sync forces an fsync of the log regardless of policy.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return errors.New("wal: sync on closed log")
	}
	return l.syncLocked()
}

func (l *Log) syncLoop() {
	defer l.wg.Done()
	t := time.NewTicker(l.opts.Interval)
	defer t.Stop()
	for {
		select {
		case <-l.stop:
			return
		case <-t.C:
			l.mu.Lock()
			if !l.closed && l.dirty {
				l.syncLocked() // error already counted in SyncErrs
			}
			l.mu.Unlock()
		}
	}
}

// Compact atomically replaces the durable state with one snapshot
// frame and swaps in a fresh empty log segment. The snapshot bytes
// must fully describe live state as of the call; the caller is
// responsible for excluding concurrent appends (internal/jobs holds
// its manager lock across marshal+Compact). Sequence: write
// jobs.snap.tmp (magic + frame), fsync, rename over jobs.snap, fsync
// the directory, then build a fresh jobs.wal the same way. A crash
// between the two renames leaves old log records alongside the new
// snapshot, which idempotent replay absorbs.
func (l *Log) Compact(snapshot []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return errors.New("wal: compact on closed log")
	}
	if len(snapshot) > l.opts.MaxRecord {
		return fmt.Errorf("%w (snapshot %d > %d bytes)", ErrRecordTooLarge, len(snapshot), l.opts.MaxRecord)
	}
	if err := faults.Check(faults.PointWALAppend); err != nil {
		l.stats.AppendErrs++
		return fmt.Errorf("wal: compact: %w", err)
	}
	buf := appendFrame(append(make([]byte, 0, magicLen+frameHdrLen+len(snapshot)), snapMagic...), snapshot)
	if err := l.writeFileSynced(snapName, buf); err != nil {
		return fmt.Errorf("wal: compact snapshot: %w", err)
	}
	if err := l.writeFileSynced(logName, []byte(logMagic)); err != nil {
		return fmt.Errorf("wal: compact log reset: %w", err)
	}
	// The old fd points at the unlinked pre-compaction segment;
	// reopen the fresh one.
	nf, err := os.OpenFile(filepath.Join(l.dir, logName), os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("wal: reopen log: %w", err)
	}
	if _, err := nf.Seek(0, io.SeekEnd); err != nil {
		nf.Close()
		return fmt.Errorf("wal: seek log: %w", err)
	}
	l.f.Close()
	l.f = nf
	l.size = magicLen
	l.dirty = false
	l.stats.Bytes = magicLen
	l.stats.Appends++
	l.stats.Compactions++
	return nil
}

// writeFileSynced writes name atomically: temp file, fsync, rename,
// directory fsync. The wal/fsync fault point covers the file sync.
func (l *Log) writeFileSynced(name string, data []byte) error {
	path := filepath.Join(l.dir, name)
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := faults.Check(faults.PointWALFsync); err != nil {
		l.stats.SyncErrs++
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("fsync: %w", err)
	}
	if err := f.Sync(); err != nil {
		l.stats.SyncErrs++
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("fsync: %w", err)
	}
	l.stats.Fsyncs++
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return l.syncDir()
}

// syncDir fsyncs the data directory so renames are durable.
func (l *Log) syncDir() error {
	d, err := os.Open(l.dir)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		l.stats.SyncErrs++
		return fmt.Errorf("fsync dir: %w", err)
	}
	l.stats.Fsyncs++
	return nil
}

// Size returns the current log segment size in bytes (including the
// header, excluding the snapshot file).
func (l *Log) Size() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.size
}

// Stats returns a snapshot of the log's counters.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.stats
}

// Close flushes unsynced appends and closes the log. Further calls on
// the Log error.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	var err error
	if l.dirty {
		if serr := l.f.Sync(); serr == nil {
			l.stats.Fsyncs++
		} else {
			l.stats.SyncErrs++
			err = fmt.Errorf("wal: close: fsync: %w", serr)
		}
	}
	if cerr := l.f.Close(); cerr != nil && err == nil {
		err = fmt.Errorf("wal: close: %w", cerr)
	}
	l.mu.Unlock()
	close(l.stop)
	l.wg.Wait()
	return err
}
