package wal

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"robustperiod/internal/faults"
)

// replayAll opens dir, replays, and returns (snapshot, records) as
// copies. It fails the test on any error.
func replayAll(t *testing.T, dir string, opts Options) (snap []byte, recs [][]byte) {
	t.Helper()
	l, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer l.Close()
	err = l.Replay(
		func(p []byte) error { snap = append([]byte(nil), p...); return nil },
		func(p []byte) error { recs = append(recs, append([]byte(nil), p...)); return nil },
	)
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	return snap, recs
}

func TestWALRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Policy: SyncAlways})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if err := l.Replay(nil, nil); err != nil {
		t.Fatalf("Replay empty: %v", err)
	}
	want := [][]byte{[]byte("one"), []byte(""), []byte("three-3"), bytes.Repeat([]byte{0xAB}, 4096)}
	for _, p := range want {
		if err := l.Append(p); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	st := l.Stats()
	if st.Appends != int64(len(want)) || st.Fsyncs < int64(len(want)) {
		t.Fatalf("stats = %+v, want %d appends and >= that many fsyncs", st, len(want))
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	snap, recs := replayAll(t, dir, Options{})
	if snap != nil {
		t.Fatalf("unexpected snapshot %q", snap)
	}
	if len(recs) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(recs), len(want))
	}
	for i := range want {
		if !bytes.Equal(recs[i], want[i]) {
			t.Fatalf("record %d = %q, want %q", i, recs[i], want[i])
		}
	}
}

func TestWALTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Policy: SyncAlways})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for i := 0; i < 3; i++ {
		if err := l.Append([]byte(fmt.Sprintf("rec-%d", i))); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	goodSize := l.Size()
	if err := l.Append([]byte("doomed")); err != nil {
		t.Fatalf("Append: %v", err)
	}
	l.Close()
	path := filepath.Join(dir, logName)

	// A torn write: the last frame is half on disk.
	if err := os.Truncate(path, goodSize+5); err != nil {
		t.Fatalf("truncate: %v", err)
	}
	_, recs := replayAll(t, dir, Options{})
	if len(recs) != 3 {
		t.Fatalf("after torn write replayed %d records, want 3", len(recs))
	}
	if st, _ := os.Stat(path); st.Size() != goodSize {
		t.Fatalf("log not trimmed: size %d, want %d", st.Size(), goodSize)
	}

	// Trailing garbage after valid frames.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	f.Write([]byte{0xFF, 0x01, 0xEE, 0xDD, 0xCC, 0x00, 0x00})
	f.Close()
	_, recs = replayAll(t, dir, Options{})
	if len(recs) != 3 {
		t.Fatalf("after garbage tail replayed %d records, want 3", len(recs))
	}

	// A bit flip inside a frame's payload kills that frame and the
	// clean prefix ends before it.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	data[len(data)-1] ^= 0x40
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatalf("write: %v", err)
	}
	_, recs = replayAll(t, dir, Options{})
	if len(recs) != 2 {
		t.Fatalf("after bit flip replayed %d records, want 2", len(recs))
	}

	// Appends after recovery extend the clean prefix.
	l2, err := Open(dir, Options{Policy: SyncAlways})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if err := l2.Replay(nil, nil); err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if err := l2.Append([]byte("after")); err != nil {
		t.Fatalf("Append: %v", err)
	}
	l2.Close()
	_, recs = replayAll(t, dir, Options{})
	if len(recs) != 3 || string(recs[2]) != "after" {
		t.Fatalf("post-recovery log = %q, want 2 old + \"after\"", recs)
	}
}

func TestWALHeaderRecovery(t *testing.T) {
	dir := t.TempDir()
	// A crash mid-header leaves fewer than magicLen bytes: Open
	// resets to a fresh log.
	path := filepath.Join(dir, logName)
	if err := os.WriteFile(path, []byte("RPW"), 0o644); err != nil {
		t.Fatalf("write: %v", err)
	}
	_, recs := replayAll(t, dir, Options{})
	if len(recs) != 0 {
		t.Fatalf("replayed %d records from reset log, want 0", len(recs))
	}
	// A full-size header that is not ours is a foreign file: error,
	// never silent truncation.
	if err := os.WriteFile(path, []byte("NOTAWAL!data"), 0o644); err != nil {
		t.Fatalf("write: %v", err)
	}
	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("Open accepted a foreign file")
	}
}

func TestWALCompact(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Policy: SyncAlways})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for i := 0; i < 10; i++ {
		if err := l.Append([]byte(fmt.Sprintf("pre-%d", i))); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	grown := l.Size()
	if err := l.Compact([]byte("SNAPSHOT")); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if got := l.Size(); got >= grown || got != magicLen {
		t.Fatalf("post-compact size %d, want %d", got, magicLen)
	}
	if err := l.Append([]byte("post")); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if st := l.Stats(); st.Compactions != 1 {
		t.Fatalf("compactions = %d, want 1", st.Compactions)
	}
	l.Close()

	snap, recs := replayAll(t, dir, Options{})
	if string(snap) != "SNAPSHOT" {
		t.Fatalf("snapshot = %q", snap)
	}
	if len(recs) != 1 || string(recs[0]) != "post" {
		t.Fatalf("post-compact records = %q, want [post]", recs)
	}
	if tmps, _ := filepath.Glob(filepath.Join(dir, "*.tmp")); len(tmps) != 0 {
		t.Fatalf("leftover temp files: %v", tmps)
	}
}

func TestWALCorruptSnapshotErrors(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if err := l.Compact([]byte("state")); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	l.Close()
	path := filepath.Join(dir, snapName)
	data, _ := os.ReadFile(path)
	data[len(data)-1] ^= 0x01
	os.WriteFile(path, data, 0o644)
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer l2.Close()
	if err := l2.Replay(nil, nil); err == nil {
		t.Fatal("Replay accepted a corrupt snapshot")
	}
}

func TestWALMaxRecord(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{MaxRecord: 16})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer l.Close()
	if err := l.Append(bytes.Repeat([]byte("x"), 17)); !errors.Is(err, ErrRecordTooLarge) {
		t.Fatalf("oversized append: %v, want ErrRecordTooLarge", err)
	}
	if err := l.Append(bytes.Repeat([]byte("x"), 16)); err != nil {
		t.Fatalf("max-size append: %v", err)
	}
	// A frame whose header claims a huge payload terminates the
	// clean prefix instead of allocating.
	var recs [][]byte
	recs, clean := DecodeFrames([]byte{0xFF, 0xFF, 0xFF, 0x7F, 1, 2, 3, 4, 9, 9}, 0)
	if len(recs) != 0 || clean != 0 {
		t.Fatalf("huge length claim decoded recs=%d clean=%d, want 0,0", len(recs), clean)
	}
}

func TestWALPolicies(t *testing.T) {
	cases := []struct {
		in      string
		pol     Policy
		iv      time.Duration
		wantErr bool
	}{
		{"always", SyncAlways, 0, false},
		{"", SyncAlways, 0, false},
		{"never", SyncNever, 0, false},
		{"100ms", SyncInterval, 100 * time.Millisecond, false},
		{" 2s ", SyncInterval, 2 * time.Second, false},
		{"-5ms", 0, 0, true},
		{"0s", 0, 0, true},
		{"sometimes", 0, 0, true},
	}
	for _, c := range cases {
		pol, iv, err := ParsePolicy(c.in)
		if c.wantErr != (err != nil) {
			t.Fatalf("ParsePolicy(%q) err = %v, wantErr=%v", c.in, err, c.wantErr)
		}
		if err == nil && (pol != c.pol || iv != c.iv) {
			t.Fatalf("ParsePolicy(%q) = %v,%v want %v,%v", c.in, pol, iv, c.pol, c.iv)
		}
	}

	// SyncInterval flushes dirty appends from the background timer.
	dir := t.TempDir()
	l, err := Open(dir, Options{Policy: SyncInterval, Interval: 5 * time.Millisecond})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if err := l.Append([]byte("buffered")); err != nil {
		t.Fatalf("Append: %v", err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for l.Stats().Fsyncs == 0 {
		if time.Now().After(deadline) {
			t.Fatal("interval syncer never fsynced")
		}
		time.Sleep(time.Millisecond)
	}
	l.Close()
}

func TestWALFaultPoints(t *testing.T) {
	defer faults.Disable()
	dir := t.TempDir()
	l, err := Open(dir, Options{Policy: SyncAlways})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if err := l.Append([]byte("pre-fault")); err != nil {
		t.Fatalf("Append: %v", err)
	}
	preSize := l.Size()

	faults.Enable(faults.MustParse("wal/append:error"))
	if err := l.Append([]byte("blocked")); err == nil || !faults.IsInjected(err) {
		t.Fatalf("armed wal/append: err = %v, want injected", err)
	}
	if l.Size() != preSize {
		t.Fatalf("failed append changed size %d -> %d", preSize, l.Size())
	}

	// An fsync failure under SyncAlways rolls the record back: it is
	// reported undurable and does not linger as a torn frame.
	faults.Enable(faults.MustParse("wal/fsync:error"))
	if err := l.Append([]byte("unsynced")); err == nil || !faults.IsInjected(err) {
		t.Fatalf("armed wal/fsync: err = %v, want injected", err)
	}
	if l.Size() != preSize {
		t.Fatalf("fsync-failed append changed size %d -> %d", preSize, l.Size())
	}
	st := l.Stats()
	if st.AppendErrs != 2 || st.SyncErrs != 1 {
		t.Fatalf("stats = %+v, want 2 append errs, 1 sync err", st)
	}
	faults.Disable()
	if err := l.Append([]byte("recovered")); err != nil {
		t.Fatalf("Append after disarm: %v", err)
	}
	l.Close()

	faults.Enable(faults.MustParse("wal/replay:error"))
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if err := l2.Replay(nil, nil); err == nil || !faults.IsInjected(err) {
		t.Fatalf("armed wal/replay: err = %v, want injected", err)
	}
	faults.Disable()
	var recs int
	if err := l2.Replay(nil, func([]byte) error { recs++; return nil }); err != nil {
		t.Fatalf("Replay after disarm: %v", err)
	}
	if recs != 2 {
		t.Fatalf("replayed %d records, want 2 (pre-fault, recovered)", recs)
	}
	l2.Close()
}
