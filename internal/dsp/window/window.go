// Package window provides the classical taper windows used by
// averaged spectral estimators (Welch's method): rectangular, Hann,
// Hamming and Blackman, together with their coherent and power gains
// for correct PSD normalization.
package window

import "math"

// Kind selects a taper shape.
type Kind int

// Supported windows.
const (
	Rectangular Kind = iota
	Hann
	Hamming
	Blackman
)

func (k Kind) String() string {
	switch k {
	case Rectangular:
		return "rectangular"
	case Hann:
		return "hann"
	case Hamming:
		return "hamming"
	case Blackman:
		return "blackman"
	default:
		return "window?"
	}
}

// Coefficients returns the n window coefficients (symmetric form).
func Coefficients(k Kind, n int) []float64 {
	w := make([]float64, n)
	if n == 1 {
		w[0] = 1
		return w
	}
	d := float64(n - 1)
	for i := range w {
		x := float64(i) / d
		switch k {
		case Hann:
			w[i] = 0.5 - 0.5*math.Cos(2*math.Pi*x)
		case Hamming:
			w[i] = 0.54 - 0.46*math.Cos(2*math.Pi*x)
		case Blackman:
			w[i] = 0.42 - 0.5*math.Cos(2*math.Pi*x) + 0.08*math.Cos(4*math.Pi*x)
		default:
			w[i] = 1
		}
	}
	return w
}

// Apply multiplies x by the window in place and returns x.
func Apply(x []float64, k Kind) []float64 {
	w := Coefficients(k, len(x))
	for i := range x {
		x[i] *= w[i]
	}
	return x
}

// PowerGain returns Σ w²/n, the factor that normalizes a windowed
// periodogram into an asymptotically unbiased PSD estimate.
func PowerGain(k Kind, n int) float64 {
	w := Coefficients(k, n)
	s := 0.0
	for _, v := range w {
		s += v * v
	}
	return s / float64(n)
}
