package window

import (
	"math"
	"testing"
)

func TestCoefficientsShapes(t *testing.T) {
	n := 64
	for _, k := range []Kind{Rectangular, Hann, Hamming, Blackman} {
		w := Coefficients(k, n)
		if len(w) != n {
			t.Fatalf("%v: length %d", k, len(w))
		}
		// Symmetry.
		for i := 0; i < n/2; i++ {
			if math.Abs(w[i]-w[n-1-i]) > 1e-12 {
				t.Fatalf("%v: not symmetric at %d", k, i)
			}
		}
		// Peak at the centre (or flat for rectangular), bounded by 1.
		for i, v := range w {
			if v < -1e-12 || v > 1+1e-9 {
				t.Fatalf("%v: coefficient %v out of range at %d", k, v, i)
			}
		}
	}
	// Known endpoints.
	if h := Coefficients(Hann, 64); math.Abs(h[0]) > 1e-12 {
		t.Error("Hann should start at 0")
	}
	if h := Coefficients(Hamming, 64); math.Abs(h[0]-0.08) > 1e-12 {
		t.Error("Hamming should start at 0.08")
	}
	if r := Coefficients(Rectangular, 5); r[0] != 1 || r[4] != 1 {
		t.Error("rectangular must be all ones")
	}
}

func TestCoefficientsSinglePoint(t *testing.T) {
	for _, k := range []Kind{Rectangular, Hann, Blackman} {
		w := Coefficients(k, 1)
		if len(w) != 1 || w[0] != 1 {
			t.Errorf("%v: n=1 should be [1]", k)
		}
	}
}

func TestPowerGain(t *testing.T) {
	if g := PowerGain(Rectangular, 128); math.Abs(g-1) > 1e-12 {
		t.Errorf("rectangular gain %v", g)
	}
	// Hann power gain → 3/8 for large n.
	if g := PowerGain(Hann, 4096); math.Abs(g-0.375) > 0.001 {
		t.Errorf("hann gain %v, want ~0.375", g)
	}
}

func TestApplyInPlace(t *testing.T) {
	x := []float64{1, 1, 1, 1}
	got := Apply(x, Hann)
	if &got[0] != &x[0] {
		t.Error("Apply should operate in place")
	}
	if x[0] != 0 {
		t.Error("Hann taper not applied")
	}
}

func TestKindString(t *testing.T) {
	if Hann.String() != "hann" || Rectangular.String() != "rectangular" ||
		Hamming.String() != "hamming" || Blackman.String() != "blackman" {
		t.Error("names wrong")
	}
}
