package fft

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

// naiveDFT is the O(N²) reference transform.
func naiveDFT(x []complex128, inverse bool) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for k := 0; k < n; k++ {
		var s complex128
		for t := 0; t < n; t++ {
			ang := sign * 2 * math.Pi * float64(k) * float64(t) / float64(n)
			s += x[t] * cmplx.Exp(complex(0, ang))
		}
		out[k] = s
		if inverse {
			out[k] /= complex(float64(n), 0)
		}
	}
	return out
}

func maxErr(a, b []complex128) float64 {
	m := 0.0
	for i := range a {
		if d := cmplx.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

func randComplex(rng *rand.Rand, n int) []complex128 {
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return x
}

func TestFFTMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 3, 4, 5, 7, 8, 12, 16, 17, 31, 32, 60, 64, 100, 127, 128, 255, 1000} {
		x := randComplex(rng, n)
		got := FFT(x)
		want := naiveDFT(x, false)
		if e := maxErr(got, want); e > 1e-8*float64(n) {
			t.Errorf("n=%d: max error %g", n, e)
		}
	}
}

func TestIFFTMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{2, 3, 8, 15, 16, 50, 64, 81} {
		x := randComplex(rng, n)
		got := IFFT(x)
		want := naiveDFT(x, true)
		if e := maxErr(got, want); e > 1e-9*float64(n) {
			t.Errorf("n=%d: max error %g", n, e)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{1, 2, 6, 16, 33, 100, 256, 999, 1024, 2048} {
		x := randComplex(rng, n)
		y := IFFT(FFT(x))
		if e := maxErr(x, y); e > 1e-9*float64(n) {
			t.Errorf("round trip n=%d: max error %g", n, e)
		}
	}
}

func TestFFTDoesNotMutateInput(t *testing.T) {
	x := []complex128{1, 2, 3, 4, 5}
	orig := append([]complex128(nil), x...)
	FFT(x)
	IFFT(x)
	for i := range x {
		if x[i] != orig[i] {
			t.Fatal("FFT or IFFT mutated its input")
		}
	}
}

func TestFFTEmptyAndSingle(t *testing.T) {
	if got := FFT(nil); len(got) != 0 {
		t.Error("FFT(nil) should be empty")
	}
	got := FFT([]complex128{42})
	if len(got) != 1 || got[0] != 42 {
		t.Errorf("FFT of singleton = %v", got)
	}
}

func TestParseval(t *testing.T) {
	// Σ|x|² == (1/N)Σ|X|² for every size, including Bluestein sizes.
	rng := rand.New(rand.NewSource(4))
	for _, n := range []int{9, 16, 37, 128, 300} {
		x := randComplex(rng, n)
		spec := FFT(x)
		var et, ef float64
		for i := range x {
			et += real(x[i] * cmplx.Conj(x[i]))
			ef += real(spec[i] * cmplx.Conj(spec[i]))
		}
		ef /= float64(n)
		if math.Abs(et-ef) > 1e-8*et {
			t.Errorf("Parseval violated at n=%d: %g vs %g", n, et, ef)
		}
	}
}

func TestFFTRealKnownSinusoid(t *testing.T) {
	// x[t] = cos(2π·5t/64): energy concentrated at bins 5 and 59.
	n := 64
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Cos(2 * math.Pi * 5 * float64(i) / float64(n))
	}
	spec := FFTReal(x)
	for k := 0; k < n; k++ {
		mag := cmplx.Abs(spec[k])
		if k == 5 || k == 59 {
			if math.Abs(mag-32) > 1e-9 {
				t.Errorf("bin %d magnitude %v, want 32", k, mag)
			}
		} else if mag > 1e-9 {
			t.Errorf("bin %d magnitude %v, want 0", k, mag)
		}
	}
}

func TestFFTRealMatchesComplexPath(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	// Cover the optimized even-power-of-two path against the plain
	// complex transform, plus odd/non-pow2 fallbacks.
	for _, n := range []int{4, 8, 16, 64, 128, 256, 1024, 6, 10, 100, 97} {
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		got := FFTReal(x)
		c := make([]complex128, n)
		for i, v := range x {
			c[i] = complex(v, 0)
		}
		Transform(c)
		for k := range c {
			if cmplx.Abs(got[k]-c[k]) > 1e-9*float64(n) {
				t.Fatalf("n=%d k=%d: %v vs %v", n, k, got[k], c[k])
			}
		}
	}
}

func TestFFTRealConjugateSymmetry(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, n := range []int{16, 21, 100} {
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		spec := FFTReal(x)
		for k := 1; k < n; k++ {
			if cmplx.Abs(spec[k]-cmplx.Conj(spec[n-k])) > 1e-9 {
				t.Fatalf("n=%d: conjugate symmetry broken at k=%d", n, k)
			}
		}
	}
}

func TestPeriodogramPeak(t *testing.T) {
	n := 200
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Sin(2 * math.Pi * float64(i) / 20) // freq bin 10
	}
	p := Periodogram(x)
	if len(p) != n {
		t.Fatalf("length %d", len(p))
	}
	best := 1
	for k := 2; k < n/2; k++ {
		if p[k] > p[best] {
			best = k
		}
	}
	if best != 10 {
		t.Errorf("peak at bin %d, want 10", best)
	}
	// DC bin of a zero-mean sinusoid is ~0.
	if p[0] > 1e-18 {
		t.Errorf("DC leakage %v", p[0])
	}
}

func TestPeriodogramEmpty(t *testing.T) {
	if Periodogram(nil) != nil {
		t.Error("want nil for empty input")
	}
}

func TestCircularConvolveKnown(t *testing.T) {
	a := []float64{1, 2, 3, 4}
	b := []float64{1, 0, 0, 0}
	got := CircularConvolve(a, b)
	for i := range a {
		if math.Abs(got[i]-a[i]) > 1e-10 {
			t.Fatalf("identity convolution broken: %v", got)
		}
	}
	// Shift kernel: delta at index 1 rotates the signal.
	b = []float64{0, 1, 0, 0}
	got = CircularConvolve(a, b)
	want := []float64{4, 1, 2, 3}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-10 {
			t.Fatalf("shift convolution: got %v want %v", got, want)
		}
	}
}

func TestCircularConvolveMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	CircularConvolve([]float64{1, 2}, []float64{1})
}

func TestLinearConvolveMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 30; trial++ {
		na := 1 + rng.Intn(40)
		nb := 1 + rng.Intn(40)
		a := make([]float64, na)
		b := make([]float64, nb)
		for i := range a {
			a[i] = rng.NormFloat64()
		}
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		got := LinearConvolve(a, b)
		want := make([]float64, na+nb-1)
		for i := 0; i < na; i++ {
			for j := 0; j < nb; j++ {
				want[i+j] += a[i] * b[j]
			}
		}
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-9 {
				t.Fatalf("trial %d: idx %d got %v want %v", trial, i, got[i], want[i])
			}
		}
	}
}

func TestAutocorrelationProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	x := make([]float64, 500)
	for i := range x {
		x[i] = math.Sin(2*math.Pi*float64(i)/25) + 0.1*rng.NormFloat64()
	}
	acf := Autocorrelation(x)
	if math.Abs(acf[0]-1) > 1e-12 {
		t.Errorf("acf[0] = %v, want 1", acf[0])
	}
	for t2 := 1; t2 < len(acf); t2++ {
		if acf[t2] > 1+1e-9 {
			t.Errorf("acf[%d] = %v exceeds 1", t2, acf[t2])
		}
	}
	// Period-25 sinusoid: strong positive correlation at lag 25.
	if acf[25] < 0.8 {
		t.Errorf("acf[25] = %v, want > 0.8", acf[25])
	}
	if acf[12] > 0 {
		t.Errorf("acf[12] = %v, want negative (half period)", acf[12])
	}
}

func TestAutocorrelationMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	x := make([]float64, 80)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	got := Autocorrelation(x)
	// Direct biased estimator.
	mean := 0.0
	for _, v := range x {
		mean += v
	}
	mean /= float64(len(x))
	var r0 float64
	for _, v := range x {
		r0 += (v - mean) * (v - mean)
	}
	for lag := 0; lag < len(x); lag++ {
		var s float64
		for i := 0; i+lag < len(x); i++ {
			s += (x[i] - mean) * (x[i+lag] - mean)
		}
		want := s / r0
		if math.Abs(got[lag]-want) > 1e-9 {
			t.Fatalf("lag %d: got %v want %v", lag, got[lag], want)
		}
	}
}

func TestAutocorrelationConstantSeries(t *testing.T) {
	acf := Autocorrelation([]float64{3, 3, 3, 3})
	if acf[0] != 1 {
		t.Errorf("acf[0] = %v, want 1 for degenerate series", acf[0])
	}
}

// Property: linearity of the transform.
func TestFFTLinearityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	f := func(seed int64, nRaw uint8) bool {
		n := 2 + int(nRaw%60)
		r := rand.New(rand.NewSource(seed))
		x := randComplex(r, n)
		y := randComplex(r, n)
		alpha := complex(rng.NormFloat64(), rng.NormFloat64())
		sum := make([]complex128, n)
		for i := range sum {
			sum[i] = x[i] + alpha*y[i]
		}
		fs := FFT(sum)
		fx := FFT(x)
		fy := FFT(y)
		for i := range fs {
			if cmplx.Abs(fs[i]-(fx[i]+alpha*fy[i])) > 1e-7 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func BenchmarkFFTPow2(b *testing.B) {
	rng := rand.New(rand.NewSource(10))
	x := randComplex(rng, 2048)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FFT(x)
	}
}

func BenchmarkFFTBluestein(b *testing.B) {
	rng := rand.New(rand.NewSource(11))
	x := randComplex(rng, 2000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FFT(x)
	}
}

func BenchmarkAutocorrelation(b *testing.B) {
	rng := rand.New(rand.NewSource(12))
	x := make([]float64, 4096)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Autocorrelation(x)
	}
}
