// Package fft implements the fast Fourier transform substrate that
// RobustPeriod's spectral machinery is built on: an iterative radix-2
// Cooley-Tukey transform for power-of-two sizes, Bluestein's chirp-z
// algorithm for arbitrary sizes, real-input helpers, and fast circular
// convolution. Only the standard library is used.
//
// Conventions: FFT computes X[k] = Σ_t x[t]·exp(-2πi·kt/N) (no
// normalization); IFFT divides by N so IFFT(FFT(x)) == x.
package fft

import (
	"math"
	"math/bits"
	"math/cmplx"
	"sync"
)

// FFT returns the forward discrete Fourier transform of x. The input
// is not modified. Any length is supported: power-of-two lengths use
// radix-2 Cooley-Tukey, other lengths use Bluestein's algorithm.
// An empty input yields an empty output.
func FFT(x []complex128) []complex128 {
	out := make([]complex128, len(x))
	copy(out, x)
	Transform(out)
	return out
}

// IFFT returns the inverse discrete Fourier transform of x, normalized
// by 1/N. The input is not modified.
func IFFT(x []complex128) []complex128 {
	out := make([]complex128, len(x))
	copy(out, x)
	InverseTransform(out)
	return out
}

// Transform performs an in-place forward DFT of x.
func Transform(x []complex128) {
	n := len(x)
	if n <= 1 {
		return
	}
	if n&(n-1) == 0 {
		radix2(x, false)
		return
	}
	bluestein(x, false)
}

// InverseTransform performs an in-place inverse DFT of x (with 1/N
// normalization).
func InverseTransform(x []complex128) {
	n := len(x)
	if n <= 1 {
		return
	}
	if n&(n-1) == 0 {
		radix2(x, true)
	} else {
		bluestein(x, true)
	}
	inv := 1 / float64(n)
	for i := range x {
		x[i] *= complex(inv, 0)
	}
}

// radix2 runs an iterative in-place Cooley-Tukey transform; len(x)
// must be a power of two. If inverse is true the conjugate twiddles
// are used (no normalization here).
func radix2(x []complex128, inverse bool) {
	n := len(x)
	shift := 64 - uint(bits.TrailingZeros(uint(n)))
	// Bit-reversal permutation.
	for i := 0; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if j > i {
			x[i], x[j] = x[j], x[i]
		}
	}
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		step := sign * 2 * math.Pi / float64(size)
		// Precompute the twiddle increment with a stable recurrence.
		wStep := cmplx.Exp(complex(0, step))
		for start := 0; start < n; start += size {
			w := complex(1, 0)
			for k := 0; k < half; k++ {
				a := x[start+k]
				b := x[start+k+half] * w
				x[start+k] = a + b
				x[start+k+half] = a - b
				w *= wStep
			}
		}
	}
}

// chirpPlan holds the input-independent half of a Bluestein transform
// of one (length, direction) pair: the chirp itself and the forward
// transform of the chirp filter. Building it costs n complex
// exponentials plus one radix-2 transform — the majority of a
// Bluestein call — so plans are cached: the detect pipeline transforms
// the same non-power-of-two padded length dozens of times per request.
type chirpPlan struct {
	chirp []complex128 // exp(sign·iπt²/n), t < n
	bhat  []complex128 // FFT of the chirp filter, length m
}

type chirpKey struct {
	n       int
	inverse bool
}

var chirpCache struct {
	mu    sync.Mutex
	plans map[chirpKey]*chirpPlan
}

// chirpCacheCap bounds the cache; one entry per distinct transform
// length and direction, a handful per process in practice.
const chirpCacheCap = 16

func getChirpPlan(n, m int, inverse bool) *chirpPlan {
	key := chirpKey{n, inverse}
	chirpCache.mu.Lock()
	if p, ok := chirpCache.plans[key]; ok {
		chirpCache.mu.Unlock()
		return p
	}
	chirpCache.mu.Unlock()

	sign := -1.0
	if inverse {
		sign = 1.0
	}
	// chirp[t] = exp(sign * i*pi*t^2/n). Reduce t^2 mod 2n to keep the
	// angle small and accurate for large n.
	p := &chirpPlan{
		chirp: make([]complex128, n),
		bhat:  make([]complex128, m),
	}
	for t := 0; t < n; t++ {
		sq := (int64(t) * int64(t)) % int64(2*n)
		ang := sign * math.Pi * float64(sq) / float64(n)
		p.chirp[t] = cmplx.Exp(complex(0, ang))
	}
	for t := 0; t < n; t++ {
		p.bhat[t] = cmplx.Conj(p.chirp[t])
	}
	for t := 1; t < n; t++ {
		p.bhat[m-t] = cmplx.Conj(p.chirp[t])
	}
	radix2(p.bhat, false)

	chirpCache.mu.Lock()
	defer chirpCache.mu.Unlock()
	if q, ok := chirpCache.plans[key]; ok {
		return q // lost a build race; share the first
	}
	if chirpCache.plans == nil {
		chirpCache.plans = make(map[chirpKey]*chirpPlan, chirpCacheCap)
	}
	if len(chirpCache.plans) >= chirpCacheCap {
		for k := range chirpCache.plans {
			delete(chirpCache.plans, k)
			break
		}
	}
	chirpCache.plans[key] = p
	return p
}

// bluestein computes an arbitrary-length DFT as a convolution with a
// chirp, using two power-of-two radix-2 transforms internally (the
// third — the chirp filter's — comes precomputed from the plan cache).
func bluestein(x []complex128, inverse bool) {
	n := len(x)
	m := 1
	for m < 2*n-1 {
		m <<= 1
	}
	p := getChirpPlan(n, m, inverse)
	a := make([]complex128, m)
	for t := 0; t < n; t++ {
		a[t] = x[t] * p.chirp[t]
	}
	radix2(a, false)
	for i := range a {
		a[i] *= p.bhat[i]
	}
	radix2(a, true)
	scale := complex(1/float64(m), 0)
	for t := 0; t < n; t++ {
		x[t] = a[t] * scale * p.chirp[t]
	}
}

// FFTReal returns the DFT of a real-valued series as a full-length
// complex spectrum. Even power-of-two lengths use the half-size
// complex-FFT trick (packing even samples into the real part and odd
// samples into the imaginary part), which roughly halves the work;
// other lengths fall back to a complex transform.
func FFTReal(x []float64) []complex128 {
	n := len(x)
	if n >= 4 && n%2 == 0 && (n/2)&(n/2-1) == 0 {
		return fftRealEven(x)
	}
	c := make([]complex128, n)
	for i, v := range x {
		c[i] = complex(v, 0)
	}
	Transform(c)
	return c
}

// fftRealEven computes the DFT of a real series of even length n with
// one complex FFT of length n/2: z[t] = x[2t] + i·x[2t+1], then the
// even/odd sub-spectra are unpacked from z's conjugate symmetry and
// recombined with twiddles.
func fftRealEven(x []float64) []complex128 {
	n := len(x)
	h := n / 2
	z := make([]complex128, h)
	for t := 0; t < h; t++ {
		z[t] = complex(x[2*t], x[2*t+1])
	}
	radix2(z, false)
	out := make([]complex128, n)
	for k := 0; k <= h/2; k++ {
		var zk, zmk complex128
		zk = z[k%h]
		if k == 0 {
			zmk = z[0]
		} else {
			zmk = z[h-k]
		}
		// Even/odd sub-spectra from the packed transform.
		e := complex(0.5, 0) * (zk + cmplx.Conj(zmk))
		o := complex(0, -0.5) * (zk - cmplx.Conj(zmk))
		s, c := math.Sincos(-2 * math.Pi * float64(k) / float64(n))
		tw := complex(c, s)
		out[k] = e + tw*o
		if k > 0 && k < h {
			// Conjugate symmetry of a real input fills the top half;
			// the lower half below h is completed via X[h−k] relation.
			out[n-k] = cmplx.Conj(out[k])
		}
	}
	// X[k] for h/2 < k < h follows from the same unpacking evaluated
	// directly (equivalently conjugate relations on the packed FFT).
	for k := h/2 + 1; k < h; k++ {
		zk := z[k]
		zmk := z[h-k]
		e := complex(0.5, 0) * (zk + cmplx.Conj(zmk))
		o := complex(0, -0.5) * (zk - cmplx.Conj(zmk))
		s, c := math.Sincos(-2 * math.Pi * float64(k) / float64(n))
		tw := complex(c, s)
		out[k] = e + tw*o
		out[n-k] = cmplx.Conj(out[k])
	}
	// Nyquist bin: X[h] = E[0] − O[0] with twiddle e^{−iπ} = −1.
	e0 := complex(0.5, 0) * (z[0] + cmplx.Conj(z[0]))
	o0 := complex(0, -0.5) * (z[0] - cmplx.Conj(z[0]))
	out[h] = e0 - o0
	return out
}

// IFFTReal inverts a spectrum that is known to come from a real series
// and returns only the real parts. The caller guarantees conjugate
// symmetry; imaginary residue is discarded.
func IFFTReal(spec []complex128) []float64 {
	c := IFFT(spec)
	out := make([]float64, len(c))
	for i, v := range c {
		out[i] = real(v)
	}
	return out
}

// Periodogram returns P[k] = |X[k]|² / N for k = 0..N-1, the classical
// (full-range) DFT periodogram of a real series (Eq. 5 of the paper).
func Periodogram(x []float64) []float64 {
	n := len(x)
	if n == 0 {
		return nil
	}
	spec := FFTReal(x)
	p := make([]float64, n)
	inv := 1 / float64(n)
	for k, v := range spec {
		re, im := real(v), imag(v)
		p[k] = (re*re + im*im) * inv
	}
	return p
}

// CircularConvolve returns the circular convolution of a and b, which
// must have equal length. Runs in O(N log N) via the FFT.
func CircularConvolve(a, b []float64) []float64 {
	if len(a) != len(b) {
		panic("fft: CircularConvolve length mismatch")
	}
	fa := FFTReal(a)
	fb := FFTReal(b)
	for i := range fa {
		fa[i] *= fb[i]
	}
	return IFFTReal(fa)
}

// LinearConvolve returns the full linear convolution of a and b
// (length len(a)+len(b)-1) computed by zero-padded FFTs.
func LinearConvolve(a, b []float64) []float64 {
	if len(a) == 0 || len(b) == 0 {
		return nil
	}
	n := len(a) + len(b) - 1
	m := 1
	for m < n {
		m <<= 1
	}
	fa := make([]complex128, m)
	fb := make([]complex128, m)
	for i, v := range a {
		fa[i] = complex(v, 0)
	}
	for i, v := range b {
		fb[i] = complex(v, 0)
	}
	Transform(fa)
	Transform(fb)
	for i := range fa {
		fa[i] *= fb[i]
	}
	InverseTransform(fa)
	out := make([]float64, n)
	for i := range out {
		out[i] = real(fa[i])
	}
	return out
}

// Autocorrelation returns the biased sample autocovariance-based ACF
// r[t] = Σ_{n} x̄[n]·x̄[n+t] / Σ x̄[n]² for lags 0..len(x)-1, computed
// in O(N log N) via zero-padded FFTs (x̄ is the mean-centred series).
// This is the classical fast ACF used by the non-robust baselines.
func Autocorrelation(x []float64) []float64 {
	n := len(x)
	if n == 0 {
		return nil
	}
	mean := 0.0
	for _, v := range x {
		mean += v
	}
	mean /= float64(n)
	m := 1
	for m < 2*n {
		m <<= 1
	}
	buf := make([]complex128, m)
	for i, v := range x {
		buf[i] = complex(v-mean, 0)
	}
	Transform(buf)
	for i, v := range buf {
		re, im := real(v), imag(v)
		buf[i] = complex(re*re+im*im, 0)
	}
	InverseTransform(buf)
	out := make([]float64, n)
	r0 := real(buf[0])
	if r0 == 0 {
		out[0] = 1
		return out
	}
	for t := 0; t < n; t++ {
		out[t] = real(buf[t]) / r0
	}
	return out
}
