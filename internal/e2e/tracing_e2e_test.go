// End-to-end drill of the tracing and SLO surfaces against a real
// rpserved binary: hand it a W3C traceparent over TCP and follow the
// trace ID through the response header, the span store, and an
// OpenMetrics exemplar; then arm a latency fault plan and watch the
// burn-rate engine fire its fast-burn alert, degrade /healthz, and
// capture pprof profiles into the on-disk ring.
package e2e

import (
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"robustperiod/internal/obs"
)

func TestTracingEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("e2e builds and boots a real binary")
	}
	profileDir := t.TempDir()
	// Every compute request sleeps 120ms against a 50ms latency-SLO
	// target, so 100% of traffic blows the latency budget while
	// succeeding — exactly the burn the availability SLO must ignore
	// and the latency SLO must page on.
	api, debug, _, _ := startServer(t, "serve/worker:delay=120ms",
		"-trace-sample", "1",
		"-slo-interval", "250ms",
		"-slo-latency-target", "50ms",
		"-profile-dir", profileDir,
		"-profile-cpu", "50ms",
	)

	body := detectBody(256, 32)

	// 1. Trace continuation over the wire: the response traceparent
	// keeps the incoming trace ID, mints a fresh span ID, and stays
	// sampled.
	const traceID = "0af7651916cd43dd8448eb211c80319c"
	const remoteSpan = "b7ad6b7169203331"
	req, err := http.NewRequest(http.MethodPost, api+"/v1/detect", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("traceparent", "00-"+traceID+"-"+remoteSpan+"-01")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("traced detect: %d", resp.StatusCode)
	}
	echo := resp.Header.Get("traceparent")
	parts := strings.Split(echo, "-")
	if len(parts) != 4 || parts[1] != traceID || parts[2] == remoteSpan || parts[3] != "01" {
		t.Fatalf("response traceparent %q does not continue trace %s", echo, traceID)
	}

	// 2. The span store serves the trace by ID, root span parented
	// under the caller's span, with queue and execution children.
	var entry struct {
		TraceID string `json:"traceId"`
		Status  int    `json:"status"`
		Spans   []struct {
			Name   string `json:"name"`
			Parent string `json:"parent"`
		} `json:"spans"`
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		r, raw := get(t, debug+"/debug/traces/"+traceID)
		if r.StatusCode == http.StatusOK {
			if err := json.Unmarshal(raw, &entry); err != nil {
				t.Fatal(err)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("trace %s never appeared: %d (%s)", traceID, r.StatusCode, raw)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if entry.TraceID != traceID || entry.Status != http.StatusOK {
		t.Fatalf("trace entry = %+v", entry)
	}
	spanNames := map[string]string{}
	for _, sp := range entry.Spans {
		spanNames[sp.Name] = sp.Parent
	}
	if parent, ok := spanNames["request"]; !ok || parent != remoteSpan {
		t.Fatalf("root request span missing or misparented: %v", spanNames)
	}
	for _, name := range []string{"queue_wait", "job_exec"} {
		if _, ok := spanNames[name]; !ok {
			t.Fatalf("span %q missing from the trace: %v", name, spanNames)
		}
	}

	// 3. An OpenMetrics scrape is conformant and carries the trace ID
	// as a latency-bucket exemplar.
	mreq, _ := http.NewRequest(http.MethodGet, api+"/metrics", nil)
	mreq.Header.Set("Accept", "application/openmetrics-text; version=1.0.0; charset=utf-8")
	mresp, err := http.DefaultClient.Do(mreq)
	if err != nil {
		t.Fatal(err)
	}
	scrape, err := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if ct := mresp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/openmetrics-text") {
		t.Fatalf("OM negotiation failed, Content-Type = %q", ct)
	}
	if err := obs.CheckOpenMetrics(scrape); err != nil {
		t.Fatalf("live OM scrape fails conformance: %v", err)
	}
	if !strings.Contains(string(scrape), `trace_id="`+traceID+`"`) {
		t.Fatalf("trace %s not exemplified on the OM scrape", traceID)
	}

	// 4. Burn the latency budget: a handful more slow-but-successful
	// requests, then wait for the 250ms-interval engine to trip the
	// fast-burn alert.
	for i := 0; i < 4; i++ {
		r, _ := post(t, api+"/v1/detect", body)
		if r.StatusCode != http.StatusOK {
			t.Fatalf("burn traffic request: %d", r.StatusCode)
		}
	}
	var slo struct {
		Firing     bool `json:"firing"`
		Objectives []struct {
			Name    string `json:"name"`
			Windows []struct {
				Severity string `json:"severity"`
				Firing   bool   `json:"firing"`
			} `json:"windows"`
		} `json:"objectives"`
	}
	deadline = time.Now().Add(15 * time.Second)
	for !slo.Firing {
		if time.Now().After(deadline) {
			t.Fatal("latency fast-burn alert never fired under the delay fault plan")
		}
		time.Sleep(100 * time.Millisecond)
		_, raw := get(t, debug+"/debug/slo")
		if err := json.Unmarshal(raw, &slo); err != nil {
			t.Fatal(err)
		}
	}
	latencyFires, availabilityFires := false, false
	for _, o := range slo.Objectives {
		for _, w := range o.Windows {
			if w.Firing && o.Name == "latency" {
				latencyFires = true
			}
			if w.Firing && o.Name == "availability" {
				availabilityFires = true
			}
		}
	}
	if !latencyFires {
		t.Fatalf("firing, but not on the latency objective: %+v", slo)
	}
	if availabilityFires {
		t.Fatalf("availability burns on successful traffic: %+v", slo)
	}

	// 5. /healthz reports degraded but stays 200, and the scrape shows
	// the burn.
	hresp, hraw := get(t, api+"/healthz")
	if hresp.StatusCode != http.StatusOK || !strings.Contains(string(hraw), `"degraded"`) {
		t.Fatalf("/healthz under fast burn = %d (%s)", hresp.StatusCode, hraw)
	}
	_, raw := get(t, api+"/metrics")
	if !strings.Contains(string(raw), `rp_slo_alert{severity="fast",slo="latency"} 1`) {
		t.Fatal("rp_slo_alert not raised on the scrape")
	}

	// 6. The alert's rising edge captured a pprof bundle into the ring.
	deadline = time.Now().Add(10 * time.Second)
	for {
		found := false
		entries, _ := os.ReadDir(profileDir)
		for _, e := range entries {
			if !e.IsDir() || !strings.Contains(e.Name(), "fast_burn-latency") {
				continue
			}
			cpu, errCPU := os.Stat(filepath.Join(profileDir, e.Name(), "cpu.pprof"))
			heap, errHeap := os.Stat(filepath.Join(profileDir, e.Name(), "heap.pprof"))
			if errCPU == nil && errHeap == nil && cpu.Size() > 0 && heap.Size() > 0 {
				found = true
			}
		}
		if found {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no fast-burn profile capture landed in %s", profileDir)
		}
		time.Sleep(100 * time.Millisecond)
	}
}
