// End-to-end crash-recovery drill: boot a durable rpserved, get one
// job finished, one mid-execution, and one queued, kill the process
// with SIGKILL (no drain, no final fsync beyond the per-append ones),
// restart on the same data directory, and hold the recovery contract:
// every acknowledged job ID still resolves — the finished job with its
// original result and no recomputation, the mid-execution job failed
// with the distinguishable lost_to_restart code, the queued job
// re-enqueued to completion — and the recovery counters surface in a
// live /metrics scrape.
package e2e

import (
	"encoding/json"
	"net/http"
	"syscall"
	"testing"
	"time"

	"robustperiod/internal/obs"
)

func TestCrashRecoveryEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("e2e builds and boots a real binary")
	}
	dataDir := t.TempDir()
	durable := []string{"-data-dir", dataDir, "-fsync", "always", "-workers", "1"}

	// The first execution runs clean; every later one stalls for 30s
	// (far past the kill below), pinning job B mid-execution and job C
	// queued behind it on the single worker.
	api, _, cmd, done := startServer(t, "jobs/exec:delay=30s:after=1", durable...)

	bodyA, bodyB, bodyC := detectBody(512, 24), detectBody(512, 32), detectBody(512, 48)

	// A: submitted, executed, finished — its result is on disk.
	subA := submitJob(t, api, bodyA)
	if st := pollJob(t, api, subA); st.State != "done" || st.Result == nil || st.Result.Periods[0] != 24 {
		t.Fatalf("job A finished as %q (result %v), want done with period 24", st.State, st.Result)
	}

	// B: dispatched onto the worker, then stalled by the fault — wait
	// until the server reports it running so the start record is
	// durably on disk before the kill.
	subB := submitJob(t, api, bodyB)
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, raw := get(t, api+subB.StatusURL)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("poll B: %d (%s)", resp.StatusCode, raw)
		}
		var st jobStatus
		if err := json.Unmarshal(raw, &st); err != nil {
			t.Fatal(err)
		}
		if st.State == "running" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job B still %q after 10s, want running", st.State)
		}
		time.Sleep(20 * time.Millisecond)
	}

	// C: acknowledged with 202, queued behind B's stalled execution.
	subC := submitJob(t, api, bodyC)

	// kill -9: no drain, no Close, no compaction — recovery must work
	// from the per-append fsyncs alone.
	if err := cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	<-done // SIGKILL exit is non-zero by design

	// Restart on the same data directory, faults disarmed.
	api2, _, _, _ := startServer(t, "", durable...)

	// A: done with its original result on the very first poll — the
	// answer survived the crash, it was not recomputed and not 404'd.
	resp, raw := get(t, api2+subA.StatusURL)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("recovered poll A: %d (%s), want 200", resp.StatusCode, raw)
	}
	var stA jobStatus
	if err := json.Unmarshal(raw, &stA); err != nil {
		t.Fatal(err)
	}
	if stA.State != "done" || stA.Result == nil || len(stA.Result.Periods) == 0 || stA.Result.Periods[0] != 24 {
		t.Fatalf("recovered job A = %q (result %v), want done with period 24", stA.State, stA.Result)
	}

	// B: its computation died with the process — failed, with the
	// distinguishable resubmit-me code, not shutting_down and not 404.
	stB := pollJob(t, api2, subB)
	if stB.State != "failed" || stB.Error == nil {
		t.Fatalf("recovered job B = %q (error %v), want failed", stB.State, stB.Error)
	}
	if stB.Error.Code != "lost_to_restart" {
		t.Fatalf("recovered job B error code = %q, want lost_to_restart", stB.Error.Code)
	}

	// C: was queued at crash time; recovery re-enqueued it and it runs
	// to completion on the restarted worker.
	stC := pollJob(t, api2, subC)
	if stC.State != "done" || stC.Result == nil || stC.Result.Periods[0] != 48 {
		t.Fatalf("recovered job C = %q (result %v), want done with period 48", stC.State, stC.Result)
	}

	// The recovery counters surface in a conformant scrape: A restored
	// finished + C re-enqueued, B lost.
	mresp, mraw := get(t, api2+"/metrics")
	if mresp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: %d", mresp.StatusCode)
	}
	if err := obs.CheckExposition(mraw); err != nil {
		t.Fatalf("/metrics fails conformance: %v", err)
	}
	fams, err := obs.ParseExposition(mraw)
	if err != nil {
		t.Fatal(err)
	}
	wantValue(t, fams, "rp_jobs_recovered_total", "", "", 2)
	wantValue(t, fams, "rp_jobs_lost_total", "", "", 1)
	if obs.FindFamily(fams, "rp_wal_appends_total") == nil {
		t.Error("rp_wal_appends_total missing from a durable server's scrape")
	}
}
