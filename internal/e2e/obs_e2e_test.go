// End-to-end drill of the observability surfaces against a real
// rpserved binary: build it, boot it with fault injection armed,
// drive error/degraded/batch traffic over TCP, scrape /metrics
// through the Prometheus conformance checker, pull the failed
// request's post-mortem out of the flight recorder by the
// X-Request-ID the client saw, and drain it with SIGTERM.
package e2e

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"robustperiod/internal/obs"
)

// logEvent is one JSON line from rpserved's structured stderr.
type logEvent struct {
	Msg  string `json:"msg"`
	Addr string `json:"addr"`
}

// startServer builds rpserved, starts it on ephemeral ports with the
// given fault plan plus any extra command-line flags, and returns the
// API base URL, the debug base URL, the running process, and a channel
// that receives its exit error.
func startServer(t *testing.T, faultPlan string, extra ...string) (api, debug string, cmd *exec.Cmd, done chan error) {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "rpserved")
	build := exec.Command("go", "build", "-o", bin, "robustperiod/cmd/rpserved")
	build.Dir = "../.."
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build rpserved: %v\n%s", err, out)
	}

	args := []string{
		"-addr", "127.0.0.1:0",
		"-debug-addr", "127.0.0.1:0",
		"-log-format", "json",
		"-access-log-every", "1",
		"-cache", "-1",
		"-breaker-threshold", "-1",
	}
	args = append(args, extra...)
	cmd = exec.Command(bin, args...)
	cmd.Env = append(os.Environ(), "RP_FAULTS="+faultPlan)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cmd.Process.Kill() })

	// The server logs its actual bound addresses; that is the e2e port
	// discovery contract for -addr 127.0.0.1:0.
	addrs := make(chan [2]string, 1)
	done = make(chan error, 1)
	go func() {
		var apiAddr, dbgAddr string
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			var ev logEvent
			if json.Unmarshal(sc.Bytes(), &ev) != nil {
				continue
			}
			switch ev.Msg {
			case "api listening":
				apiAddr = ev.Addr
			case "debug listening":
				dbgAddr = ev.Addr
			}
			if apiAddr != "" && dbgAddr != "" {
				select {
				case addrs <- [2]string{apiAddr, dbgAddr}:
				default:
				}
			}
		}
		done <- cmd.Wait()
	}()
	select {
	case a := <-addrs:
		return "http://" + a[0], "http://" + a[1], cmd, done
	case err := <-done:
		t.Fatalf("rpserved exited before listening: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("rpserved did not report its listen addresses within 10s")
	}
	return "", "", nil, nil
}

func post(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

func get(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

func detectBody(n, period int) string {
	var sb strings.Builder
	sb.WriteString(`{"series":[`)
	for i := 0; i < n; i++ {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%.4f", 10*math.Sin(2*math.Pi*float64(i)/float64(period)))
	}
	sb.WriteString(`]}`)
	return sb.String()
}

func TestObservabilityEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("e2e builds and boots a real binary")
	}
	// First detect hits the worker fault once (500); every later
	// detection loses the robust solver and degrades to the fallback.
	api, debug, cmd, done := startServer(t, "serve/worker:error:times=1,spectrum/solver:error")

	body := detectBody(1024, 64)

	// 1. The faulted request: a structured 500 that still hands the
	// client a correlation ID.
	resp, raw := post(t, api+"/v1/detect", body)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("faulted detect: %d (%s), want 500", resp.StatusCode, raw)
	}
	errID := resp.Header.Get("X-Request-ID")
	if _, ok := obs.ParseID(errID); !ok {
		t.Fatalf("500 response X-Request-ID %q unusable", errID)
	}

	// 2. Subsequent detections succeed, degraded by the solver fault.
	resp, raw = post(t, api+"/v1/detect", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("degraded detect: %d (%s)", resp.StatusCode, raw)
	}
	var dr struct {
		Periods  []int            `json:"periods"`
		Degraded []map[string]any `json:"degraded"`
	}
	if err := json.Unmarshal(raw, &dr); err != nil {
		t.Fatal(err)
	}
	if len(dr.Degraded) == 0 {
		t.Errorf("solver fault armed but response not degraded: %s", raw)
	}
	degradedID := resp.Header.Get("X-Request-ID")

	// 3. Batch traffic.
	resp, raw = post(t, api+"/v1/detect/batch", `{"series":[[1,2,1,2,1,2,1,2,1,2,1,2,1,2,1,2]]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch: %d (%s)", resp.StatusCode, raw)
	}

	// 4. /metrics passes the in-repo Prometheus conformance checker
	// and reflects the traffic above.
	resp, raw = get(t, api+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("/metrics Content-Type = %q", ct)
	}
	if err := obs.CheckExposition(raw); err != nil {
		t.Fatalf("/metrics fails conformance: %v\n%s", err, raw)
	}
	fams, err := obs.ParseExposition(raw)
	if err != nil {
		t.Fatal(err)
	}
	wantValue(t, fams, "rp_request_errors_total", "endpoint", "detect", 1)
	wantValue(t, fams, "rp_degraded_total", "", "", 1)
	wantValue(t, fams, "rp_requests_total", "endpoint", "batch", 1)
	if obs.FindFamily(fams, "rp_build_info") == nil {
		t.Error("rp_build_info missing from a live scrape")
	}
	if obs.FindFamily(fams, "rp_go_goroutines") == nil {
		t.Error("runtime gauges missing from a live scrape")
	}

	// 5. The flight recorder returns the error request's post-mortem
	// by the ID the client received.
	resp, raw = get(t, debug+"/debug/requests/"+errID)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("flight recorder lookup of %s: %d (%s)", errID, resp.StatusCode, raw)
	}
	var rec struct {
		ID          string   `json:"id"`
		Status      int      `json:"status"`
		Outcome     string   `json:"outcome"`
		ErrorCode   string   `json:"errorCode"`
		FaultPoints []string `json:"faultPoints"`
	}
	if err := json.Unmarshal(raw, &rec); err != nil {
		t.Fatal(err)
	}
	if rec.ID != errID || rec.Status != http.StatusInternalServerError || rec.Outcome != "error" {
		t.Errorf("error record = %+v, want id %s status 500 outcome error", rec, errID)
	}
	if !contains(rec.FaultPoints, "serve/worker") {
		t.Errorf("error record faultPoints = %v, want serve/worker", rec.FaultPoints)
	}

	// The degraded request is pinned too, with its annotations.
	resp, raw = get(t, debug+"/debug/requests/"+degradedID)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("flight recorder lookup of degraded %s: %d", degradedID, resp.StatusCode)
	}
	var drec struct {
		Outcome       string           `json:"outcome"`
		DegradedCount int              `json:"degradedCount"`
		Trace         *json.RawMessage `json:"trace"`
	}
	if err := json.Unmarshal(raw, &drec); err != nil {
		t.Fatal(err)
	}
	if drec.Outcome != "degraded" || drec.DegradedCount < 1 || drec.Trace == nil {
		t.Errorf("degraded record = outcome %q count %d trace %v", drec.Outcome, drec.DegradedCount, drec.Trace != nil)
	}

	// 6. SIGTERM drains cleanly.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("rpserved exited non-zero after SIGTERM: %v", err)
		}
	case <-time.After(35 * time.Second):
		t.Fatal("rpserved did not exit within the drain window")
	}
}

// wantValue asserts one sample (optionally label-filtered) is >= min.
func wantValue(t *testing.T, fams []obs.PromFamily, name, labelName, labelValue string, min float64) {
	t.Helper()
	f := obs.FindFamily(fams, familyOf(name))
	if f == nil {
		t.Errorf("family for %s missing", name)
		return
	}
	for _, s := range f.Samples {
		if s.Name != name {
			continue
		}
		if labelName != "" && s.Label(labelName) != labelValue {
			continue
		}
		if s.Value < min {
			t.Errorf("%s{%s=%s} = %v, want >= %v", name, labelName, labelValue, s.Value, min)
		}
		return
	}
	t.Errorf("no sample %s{%s=%s} in exposition", name, labelName, labelValue)
}

// familyOf maps a sample name to its family name (identity here: the
// samples this test asserts on are plain counters/gauges).
func familyOf(name string) string { return name }

func contains(xs []string, want string) bool {
	for _, x := range xs {
		if x == want {
			return true
		}
	}
	return false
}
