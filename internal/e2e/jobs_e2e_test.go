// End-to-end drill of the async job API against a real rpserved
// binary: submit over TCP, poll with a backoff that honors the
// Retry-After hint, read the result back, coalesce a concurrent
// duplicate burst onto one execution, and confirm the job counters in
// a live /metrics scrape.
package e2e

import (
	"encoding/json"
	"net/http"
	"strconv"
	"sync"
	"testing"
	"time"

	"robustperiod/internal/obs"
)

// jobSubmit mirrors serve.JobSubmitResponse (decoded, not imported:
// the e2e package speaks only the wire format a real client sees).
type jobSubmit struct {
	JobID     string `json:"jobId"`
	State     string `json:"state"`
	StatusURL string `json:"statusUrl"`
}

// jobStatus mirrors serve.JobStatusResponse.
type jobStatus struct {
	State     string `json:"state"`
	Coalesced bool   `json:"coalesced"`
	Result    *struct {
		Periods []int `json:"periods"`
	} `json:"result"`
	Error *struct {
		Code string `json:"code"`
	} `json:"error"`
}

// submitJob POSTs one async submission and decodes the 202 body.
func submitJob(t *testing.T, api, body string) jobSubmit {
	t.Helper()
	resp, raw := post(t, api+"/v1/jobs", body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d (%s), want 202", resp.StatusCode, raw)
	}
	var sub jobSubmit
	if err := json.Unmarshal(raw, &sub); err != nil {
		t.Fatal(err)
	}
	if _, ok := obs.ParseID(sub.JobID); !ok {
		t.Fatalf("submit returned unusable job id %q", sub.JobID)
	}
	if loc := resp.Header.Get("Location"); loc != sub.StatusURL {
		t.Fatalf("Location %q != statusUrl %q", loc, sub.StatusURL)
	}
	return sub
}

// pollJob polls a job until it reaches a terminal state, sleeping per
// the server's Retry-After hint (capped so the test stays fast).
func pollJob(t *testing.T, api string, sub jobSubmit) jobStatus {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		resp, raw := get(t, api+sub.StatusURL)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("poll %s: %d (%s)", sub.JobID, resp.StatusCode, raw)
		}
		var st jobStatus
		if err := json.Unmarshal(raw, &st); err != nil {
			t.Fatal(err)
		}
		if st.State == "done" || st.State == "failed" {
			return st
		}
		// Pending polls must carry the Retry-After hint; honor it,
		// capped so the test stays fast on a hint meant for humans.
		wait := 50 * time.Millisecond
		ra := resp.Header.Get("Retry-After")
		secs, err := strconv.Atoi(ra)
		if err != nil || secs < 1 {
			t.Fatalf("pending poll Retry-After = %q, want a positive integer", ra)
		}
		if hinted := time.Duration(secs) * time.Second; hinted < wait {
			wait = hinted
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still %s after 60s", sub.JobID, st.State)
		}
		time.Sleep(wait)
	}
}

func TestJobsEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("e2e builds and boots a real binary")
	}
	// A 300ms execution delay holds flights open long enough for a
	// concurrent duplicate burst to coalesce deterministically.
	api, _, _, _ := startServer(t, "jobs/exec:delay=300ms")

	body := detectBody(512, 24)

	// 1. Submit -> poll -> result: the async path agrees with the
	// synchronous endpoint on the same series.
	sub := submitJob(t, api, body)
	st := pollJob(t, api, sub)
	if st.State != "done" || st.Result == nil || st.Error != nil {
		t.Fatalf("job finished as %q (result %v, error %v), want done with result",
			st.State, st.Result != nil, st.Error)
	}
	if len(st.Result.Periods) == 0 || st.Result.Periods[0] != 24 {
		t.Fatalf("async periods = %v, want [24]", st.Result.Periods)
	}

	// 2. A concurrent burst of identical submissions coalesces: every
	// follower reports Coalesced and the same periods.
	const followers = 4
	leader := submitJob(t, api, body)
	subs := make([]jobSubmit, followers)
	var wg sync.WaitGroup
	for i := 0; i < followers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			subs[i] = submitJob(t, api, body)
		}(i)
	}
	wg.Wait()
	if lst := pollJob(t, api, leader); lst.State != "done" {
		t.Fatalf("leader finished as %q", lst.State)
	}
	coalesced := 0
	for _, s := range subs {
		fst := pollJob(t, api, s)
		if fst.State != "done" || fst.Result == nil {
			t.Fatalf("follower %s finished as %q", s.JobID, fst.State)
		}
		if fst.Result.Periods[0] != 24 {
			t.Fatalf("follower periods = %v", fst.Result.Periods)
		}
		if fst.Coalesced {
			coalesced++
		}
	}
	if coalesced == 0 {
		t.Errorf("no follower coalesced out of %d concurrent duplicates", followers)
	}

	// 3. The job counters surface in a live scrape.
	resp, raw := get(t, api+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: %d", resp.StatusCode)
	}
	if err := obs.CheckExposition(raw); err != nil {
		t.Fatalf("/metrics fails conformance: %v", err)
	}
	fams, err := obs.ParseExposition(raw)
	if err != nil {
		t.Fatal(err)
	}
	wantValue(t, fams, "rp_jobs_submitted_total", "", "", float64(2+followers))
	wantValue(t, fams, "rp_jobs_coalesced_total", "", "", float64(coalesced))
	wantValue(t, fams, "rp_jobs_completed_total", "outcome", "ok", 2)
}
