package faults

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// arm installs a plan for the duration of the test; the global
// registry is restored on cleanup so tests cannot leak faults.
func arm(t *testing.T, spec string) *Plan {
	t.Helper()
	p, err := Parse(spec)
	if err != nil {
		t.Fatal(err)
	}
	Enable(p)
	t.Cleanup(Disable)
	return p
}

func TestDisabledCheckIsFreeAndAllocationless(t *testing.T) {
	Disable()
	if err := Check(PointSpectrumSolver); err != nil {
		t.Fatalf("disabled Check returned %v", err)
	}
	if n := testing.AllocsPerRun(1000, func() {
		if Check(PointSpectrumSolver) != nil {
			t.Fail()
		}
	}); n != 0 {
		t.Errorf("disabled Check allocates %v objects/op, want 0", n)
	}
}

func TestErrorAction(t *testing.T) {
	arm(t, "spectrum/solver:error")
	err := Check(PointSpectrumSolver)
	if err == nil {
		t.Fatal("armed point did not fire")
	}
	if !IsInjected(err) {
		t.Errorf("err %v not recognized as injected", err)
	}
	var ie *InjectedError
	if !errors.As(err, &ie) || ie.Point != PointSpectrumSolver {
		t.Errorf("wrong point: %v", err)
	}
	// Unarmed points stay inert under an armed plan.
	if err := Check(PointCoreLevel); err != nil {
		t.Errorf("unarmed point fired: %v", err)
	}
}

func TestPanicAction(t *testing.T) {
	arm(t, "core/level:panic")
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("panic action did not panic")
		}
		if ie, ok := r.(*InjectedError); !ok || ie.Point != PointCoreLevel {
			t.Errorf("panic value = %v", r)
		}
	}()
	Check(PointCoreLevel) //nolint:errcheck // panics
}

func TestDelayAction(t *testing.T) {
	arm(t, "serve/worker:delay=30ms")
	start := time.Now()
	if err := Check(PointServeWorker); err != nil {
		t.Fatalf("delay action returned error %v", err)
	}
	if d := time.Since(start); d < 25*time.Millisecond {
		t.Errorf("delay action slept %v, want >= 30ms", d)
	}
}

func TestSeededProbabilityIsDeterministic(t *testing.T) {
	run := func() []bool {
		p := MustParse("spectrum/solver:error:p=0.5:seed=42")
		Enable(p)
		defer Disable()
		out := make([]bool, 64)
		for i := range out {
			out[i] = Check(PointSpectrumSolver) != nil
		}
		return out
	}
	a, b := run(), run()
	fires := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("fire sequence diverged at hit %d", i)
		}
		if a[i] {
			fires++
		}
	}
	if fires == 0 || fires == len(a) {
		t.Errorf("p=0.5 fired %d/%d times — probability gate inert", fires, len(a))
	}
}

func TestAfterAndTimesWindows(t *testing.T) {
	arm(t, "serve/cache:error:after=2:times=3")
	var fired []int
	for i := 0; i < 10; i++ {
		if Check(PointServeCache) != nil {
			fired = append(fired, i)
		}
	}
	want := []int{2, 3, 4} // skips hits 0,1; fires exactly 3 times
	if len(fired) != len(want) {
		t.Fatalf("fired at %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired at %v, want %v", fired, want)
		}
	}
}

func TestParseRejectsMalformedSpecs(t *testing.T) {
	bad := []string{
		"spectrum/solver",                 // no action
		"spectrum/solver:p=0.5",           // modifiers only
		"spectrum/solver:delay",           // delay without duration
		"spectrum/solver:delay=squid",     // unparseable duration
		"spectrum/solver:error:p=2",       // probability out of range
		"spectrum/solver:error:p=0",       // zero probability
		"spectrum/solver:error:times=-1",  // negative times
		"spectrum/solver:error:wat",       // unknown directive
		"a:error,a:panic",                 // duplicate point
		"spectrum/solver:error:seed=pony", // bad seed
		"spectrum/solver:error:after=-3",  // negative after
	}
	for _, spec := range bad {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) accepted a malformed spec", spec)
		}
	}
	if p, err := Parse("  "); err != nil || p != nil {
		t.Errorf("blank spec: plan=%v err=%v, want nil,nil", p, err)
	}
}

func TestConcurrentChecksAreRaceFree(t *testing.T) {
	arm(t, "serve/worker:error:p=0.3:seed=7")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				Check(PointServeWorker) //nolint:errcheck // firing or not both fine
			}
		}()
	}
	wg.Wait()
	stats := active.Load().Stats()
	if s := stats[PointServeWorker]; s[0] != 8*200 {
		t.Errorf("hits = %d, want %d", s[0], 8*200)
	}
	if Describe() == "" {
		t.Error("Describe empty while armed")
	}
}
