// Package faults is a deterministic fault-injection framework for
// testing the pipeline's graceful-degradation and the service's
// overload-protection paths. Named fault points are compiled into the
// production code (hp, wavelet, spectrum, core, serve); a Plan arms a
// subset of them with an action — return an error, panic, or stall
// for a fixed latency — optionally gated by a seeded firing
// probability and hit-count windows, so every chaos scenario replays
// bit-identically.
//
// When no plan is armed (the production default) a fault point costs
// one atomic pointer load and performs no allocation, so Check can be
// threaded through hot paths unconditionally. Plans are armed
// programmatically (Enable) or from the RP_FAULTS environment
// variable in rpserved, e.g.
//
//	RP_FAULTS="spectrum/solver:error:p=0.5:seed=7,serve/worker:delay=200ms"
//
// Spec grammar: comma-separated clauses, each
//
//	point:action[:key=value]...
//
// with action one of "error", "panic", "delay=<duration>", and
// optional modifiers p=<probability in (0,1]>, seed=<int64>,
// after=<skip first N hits>, times=<fire at most N times>.
package faults

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"robustperiod/internal/registry"
)

// Canonical fault-point names compiled into the pipeline and the
// serving layer, aliased from internal/registry (the single source of
// truth rplint checks call sites against). Checks on other names are
// legal (the framework is open-ended) but these are the ones
// production code hits.
const (
	PointHPRobustSolver  = registry.FaultHPRobustSolver  // robust HP trend IRLS solve
	PointWaveletTransfrm = registry.FaultWaveletTransfrm // circular MODWT pyramid
	PointWaveletReflect  = registry.FaultWaveletReflect  // reflection-boundary MODWT fallback
	PointSpectrumSolver  = registry.FaultSpectrumSolver  // per-frequency IRLS/ADMM regressions
	PointSpectrumStall   = registry.FaultSpectrumStall   // latency surrogate inside the periodogram
	PointCoreLevel       = registry.FaultCoreLevel       // one wavelet level's detection
	PointServeHandler    = registry.FaultServeHandler    // HTTP handler body
	PointServeWorker     = registry.FaultServeWorker     // worker-pool job start
	PointServeCache      = registry.FaultServeCache      // result-cache read (corruption surrogate)
	PointJobsStore       = registry.FaultJobsStore       // async job-store insert (submission path)
	PointJobsExec        = registry.FaultJobsExec        // async job execution start
	PointWALAppend       = registry.FaultWALAppend       // write-ahead-log record append
	PointWALFsync        = registry.FaultWALFsync        // write-ahead-log fsync
	PointWALReplay       = registry.FaultWALReplay       // write-ahead-log startup replay
)

// Points lists the canonical fault points, for documentation and
// exhaustive chaos sweeps.
func Points() []string { return registry.FaultPoints() }

// Action is what an armed fault point does when it fires.
type Action int

// Supported actions.
const (
	ActError Action = iota // Check returns an *InjectedError
	ActPanic               // Check panics with an *InjectedError
	ActDelay               // Check sleeps Delay, then reports no fault
)

func (a Action) String() string {
	switch a {
	case ActError:
		return "error"
	case ActPanic:
		return "panic"
	case ActDelay:
		return "delay"
	default:
		return fmt.Sprintf("action(%d)", int(a))
	}
}

// InjectedError is the error every firing fault point produces (or
// panics with). Degradation code uses IsInjected/errors.As to treat
// injected failures exactly like organic ones while tests can still
// tell them apart.
type InjectedError struct {
	Point string
}

func (e *InjectedError) Error() string {
	return "faults: injected failure at " + e.Point
}

// IsInjected reports whether err originates from a fault point.
func IsInjected(err error) bool {
	var ie *InjectedError
	return errors.As(err, &ie)
}

// point is one armed fault point.
type point struct {
	name   string
	action Action
	delay  time.Duration
	p      float64 // firing probability per hit, (0, 1]
	after  int64   // skip the first `after` hits
	times  int64   // fire at most `times` times; 0 = unlimited

	mu    sync.Mutex
	rng   *rand.Rand
	hits  int64
	fires int64
}

// fire decides (deterministically, under the point's own seeded RNG)
// whether this hit fires.
func (pt *point) fire() bool {
	pt.mu.Lock()
	defer pt.mu.Unlock()
	pt.hits++
	if pt.hits <= pt.after {
		return false
	}
	if pt.times > 0 && pt.fires >= pt.times {
		return false
	}
	if pt.p < 1 && pt.rng.Float64() >= pt.p {
		return false
	}
	pt.fires++
	return true
}

// Plan is a parsed, armable set of fault points.
type Plan struct {
	points map[string]*point
	spec   string
}

// String returns the spec the plan was parsed from.
func (p *Plan) String() string {
	if p == nil {
		return ""
	}
	return p.spec
}

// Stats reports hits and fires per armed point, for tests and the
// debug surfaces.
func (p *Plan) Stats() map[string][2]int64 {
	if p == nil {
		return nil
	}
	out := make(map[string][2]int64, len(p.points))
	for name, pt := range p.points {
		pt.mu.Lock()
		out[name] = [2]int64{pt.hits, pt.fires}
		pt.mu.Unlock()
	}
	return out
}

// Parse compiles a fault spec (see the package comment for the
// grammar) into a Plan. An empty spec yields a nil Plan, which arms
// nothing.
func Parse(spec string) (*Plan, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	plan := &Plan{points: make(map[string]*point), spec: spec}
	for _, clause := range strings.Split(spec, ",") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		fields := strings.Split(clause, ":")
		if len(fields) < 2 {
			return nil, fmt.Errorf("faults: clause %q needs point:action", clause)
		}
		pt := &point{name: fields[0], p: 1}
		var seed int64 = 1
		haveAction := false
		for _, f := range fields[1:] {
			key, val, hasVal := strings.Cut(f, "=")
			switch key {
			case "error":
				pt.action, haveAction = ActError, true
			case "panic":
				pt.action, haveAction = ActPanic, true
			case "delay":
				d, err := time.ParseDuration(val)
				if err != nil || !hasVal {
					return nil, fmt.Errorf("faults: bad delay in %q", clause)
				}
				pt.action, pt.delay, haveAction = ActDelay, d, true
			case "p":
				v, err := strconv.ParseFloat(val, 64)
				if err != nil || !hasVal || v <= 0 || v > 1 {
					return nil, fmt.Errorf("faults: bad probability in %q", clause)
				}
				pt.p = v
			case "seed":
				v, err := strconv.ParseInt(val, 10, 64)
				if err != nil || !hasVal {
					return nil, fmt.Errorf("faults: bad seed in %q", clause)
				}
				seed = v
			case "after":
				v, err := strconv.ParseInt(val, 10, 64)
				if err != nil || !hasVal || v < 0 {
					return nil, fmt.Errorf("faults: bad after in %q", clause)
				}
				pt.after = v
			case "times":
				v, err := strconv.ParseInt(val, 10, 64)
				if err != nil || !hasVal || v < 0 {
					return nil, fmt.Errorf("faults: bad times in %q", clause)
				}
				pt.times = v
			default:
				return nil, fmt.Errorf("faults: unknown directive %q in %q", f, clause)
			}
		}
		if !haveAction {
			return nil, fmt.Errorf("faults: clause %q has no action (error|panic|delay=<dur>)", clause)
		}
		pt.rng = rand.New(rand.NewSource(seed))
		if _, dup := plan.points[pt.name]; dup {
			return nil, fmt.Errorf("faults: point %q armed twice", pt.name)
		}
		plan.points[pt.name] = pt
	}
	if len(plan.points) == 0 {
		return nil, nil
	}
	return plan, nil
}

// MustParse is Parse for tests and hand-written specs; it panics on a
// malformed spec.
func MustParse(spec string) *Plan {
	p, err := Parse(spec)
	if err != nil {
		panic(err)
	}
	return p
}

// active is the armed plan; nil means every fault point is inert.
var active atomic.Pointer[Plan]

// Enable arms a plan process-wide, replacing any previous one. A nil
// plan is equivalent to Disable.
func Enable(p *Plan) {
	if p == nil {
		active.Store(nil)
		return
	}
	active.Store(p)
}

// Disable disarms all fault points.
func Disable() { active.Store(nil) }

// Active reports whether any plan is armed.
func Active() bool { return active.Load() != nil }

// Describe returns the armed spec plus per-point hit/fire counts, or
// "" when disabled — the string rpserved exposes on its debug surface.
func Describe() string {
	p := active.Load()
	if p == nil {
		return ""
	}
	stats := p.Stats()
	names := make([]string, 0, len(stats))
	for n := range stats {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	b.WriteString(p.spec)
	for _, n := range names {
		s := stats[n]
		fmt.Fprintf(&b, " [%s hits=%d fires=%d]", n, s[0], s[1])
	}
	return b.String()
}

// Check is the fault-point hook compiled into production code. With
// no plan armed it is a single atomic load returning nil — no
// allocation, no lock. With the named point armed and firing, it
// returns an *InjectedError (ActError), panics with one (ActPanic),
// or sleeps and returns nil (ActDelay).
func Check(name string) error {
	plan := active.Load()
	if plan == nil {
		return nil
	}
	pt, ok := plan.points[name]
	if !ok || !pt.fire() {
		return nil
	}
	switch pt.action {
	case ActPanic:
		//lint:ignore rplint/hotalloc allocating the injected panic value happens only when a fault actually fires; the AllocsPerRun pin covers the disabled fast path above
		panic(&InjectedError{Point: name})
	case ActDelay:
		time.Sleep(pt.delay)
		return nil
	default:
		//lint:ignore rplint/hotalloc allocating the injected error happens only when a fault actually fires; the AllocsPerRun pin covers the disabled fast path above
		return &InjectedError{Point: name}
	}
}
