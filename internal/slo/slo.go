// Package slo is the error-budget engine of the serving stack: it
// periodically samples cumulative good/total event counters supplied
// by the serving layer, retains a bounded ring of timestamped
// snapshots per objective, and computes multi-window multi-burn-rate
// alerting the way the SRE workbook prescribes — a fast-burn pair
// (5m/1h at 14.4x the budget rate) that pages on sharp regressions
// and a slow-burn pair (30m/6h at 6x) that catches sustained leaks.
//
// Burn rate is the ratio of the observed error rate in a window to
// the rate the objective allows: burn = errRate / (1 - target). A
// burn of 1 consumes exactly the error budget; 14.4 empties a 30-day
// budget in ~2 days. An alert fires only when BOTH windows of a pair
// exceed the factor: the long window proves the problem is real, the
// short window proves it is still happening.
//
// Like the rest of the repository the package is pure standard
// library; the clock and the sampling cadence are injectable so tests
// can replay hours of traffic in microseconds.
package slo

import (
	"sync"
	"time"
)

// Source supplies one objective's cumulative event counts: good
// events and total events since process start. Monotone by contract;
// the engine works on deltas between snapshots.
type Source func() (good, total float64)

// Objective is one SLO: a name, a target good-fraction, and the
// counter source measuring it.
type Objective struct {
	Name   string  // e.g. "availability", "latency"
	Target float64 // e.g. 0.999
	Source Source
}

// Window is one burn-rate alerting pair.
type Window struct {
	Severity string        // "fast" or "slow"
	Short    time.Duration // still-happening window
	Long     time.Duration // is-it-real window
	Factor   float64       // burn-rate threshold for both windows
}

// DefaultWindows is the SRE-workbook multiwindow configuration.
func DefaultWindows() []Window {
	return []Window{
		{Severity: "fast", Short: 5 * time.Minute, Long: time.Hour, Factor: 14.4},
		{Severity: "slow", Short: 30 * time.Minute, Long: 6 * time.Hour, Factor: 6},
	}
}

// Config assembles an Engine.
type Config struct {
	Objectives []Objective
	Windows    []Window         // nil selects DefaultWindows
	Interval   time.Duration    // sampling cadence; <= 0 selects 10s
	Now        func() time.Time // injectable clock; nil selects time.Now
	// OnFastBurn is invoked once per rising edge of a fast-severity
	// alert (not on every tick it stays firing), from the Tick
	// goroutine — the serving layer hooks post-mortem profile capture
	// here. May be nil.
	OnFastBurn func(objective string)
}

// sample is one snapshot of a source.
type sample struct {
	t           time.Time
	good, total float64
}

// series is the bounded snapshot history of one objective.
type series struct {
	obj     Objective
	ring    []sample
	head    int // next slot
	n       int
	firing  map[string]bool // by window severity
	current Status
}

// WindowStatus is the evaluated state of one alerting pair for one
// objective.
type WindowStatus struct {
	Severity  string        `json:"severity"`
	Short     time.Duration `json:"-"`
	Long      time.Duration `json:"-"`
	ShortStr  string        `json:"shortWindow"`
	LongStr   string        `json:"longWindow"`
	Factor    float64       `json:"factor"`
	ShortBurn float64       `json:"shortBurn"`
	LongBurn  float64       `json:"longBurn"`
	Firing    bool          `json:"firing"`
}

// Status is the evaluated state of one objective, as served on
// GET /debug/slo and exported as rp_slo_* families.
type Status struct {
	Name            string         `json:"name"`
	Target          float64        `json:"target"`
	Good            float64        `json:"good"`
	Total           float64        `json:"total"`
	BudgetRemaining float64        `json:"budgetRemaining"`
	Windows         []WindowStatus `json:"windows"`
	Firing          bool           `json:"firing"`
	FastBurn        bool           `json:"fastBurn"`
}

// Engine samples the objectives and evaluates the windows. Create
// with New; drive with Tick (the serving layer runs a ticker
// goroutine, tests call it directly).
type Engine struct {
	windows  []Window
	interval time.Duration
	now      func() time.Time
	onFast   func(string)

	mu     sync.Mutex
	series []*series
}

// New builds an engine and takes the first sample of every objective
// so burn rates have a baseline from the very first tick.
func New(cfg Config) *Engine {
	e := &Engine{
		windows:  cfg.Windows,
		interval: cfg.Interval,
		now:      cfg.Now,
		onFast:   cfg.OnFastBurn,
	}
	if e.windows == nil {
		e.windows = DefaultWindows()
	}
	if e.interval <= 0 {
		e.interval = 10 * time.Second
	}
	if e.now == nil {
		e.now = time.Now
	}
	var longest time.Duration
	for _, w := range e.windows {
		if w.Long > longest {
			longest = w.Long
		}
	}
	// Ring capacity: enough samples to span the longest window at the
	// sampling cadence, plus one baseline slot beyond it.
	capSlots := int(longest/e.interval) + 2
	for _, obj := range cfg.Objectives {
		s := &series{
			obj:    obj,
			ring:   make([]sample, capSlots),
			firing: make(map[string]bool, len(e.windows)),
		}
		e.series = append(e.series, s)
	}
	e.Tick()
	return e
}

// Interval reports the sampling cadence the engine was built with.
func (e *Engine) Interval() time.Duration { return e.interval }

// Tick takes one snapshot of every objective and re-evaluates all
// windows. Safe for concurrent use with Status/Firing.
func (e *Engine) Tick() {
	if e == nil {
		return
	}
	now := e.now()
	// Read the sources outside the lock: they reach into the serving
	// layer's counters and must not nest under e.mu.
	type reading struct{ good, total float64 }
	readings := make([]reading, len(e.series))
	for i, s := range e.series {
		g, t := s.obj.Source()
		readings[i] = reading{g, t}
	}
	var fastEdges []string
	e.mu.Lock()
	for i, s := range e.series {
		s.push(sample{t: now, good: readings[i].good, total: readings[i].total})
		st, edge := s.evaluate(now, e.windows)
		s.current = st
		if edge {
			fastEdges = append(fastEdges, s.obj.Name)
		}
	}
	e.mu.Unlock()
	if e.onFast != nil {
		for _, name := range fastEdges {
			e.onFast(name)
		}
	}
}

func (s *series) push(sm sample) {
	s.ring[s.head] = sm
	s.head = (s.head + 1) % len(s.ring)
	if s.n < len(s.ring) {
		s.n++
	}
}

// at returns the retained sample closest to (and no newer than)
// cutoff, falling back to the oldest retained sample when history is
// still shorter than the window.
func (s *series) at(cutoff time.Time) sample {
	best := sample{}
	found := false
	for i := 1; i <= s.n; i++ {
		idx := (s.head - i + len(s.ring)) % len(s.ring)
		sm := s.ring[idx]
		if !sm.t.After(cutoff) {
			return sm
		}
		best, found = sm, true
	}
	if found {
		return best
	}
	return sample{}
}

// burn computes the burn rate over the window ending now.
func (s *series) burn(now time.Time, window time.Duration, target float64) float64 {
	latest := s.ring[(s.head-1+len(s.ring))%len(s.ring)]
	then := s.at(now.Add(-window))
	dTotal := latest.total - then.total
	if dTotal <= 0 {
		return 0
	}
	dBad := (latest.total - latest.good) - (then.total - then.good)
	errRate := dBad / dTotal
	budget := 1 - target
	if budget <= 0 {
		budget = 1e-9
	}
	return errRate / budget
}

// evaluate recomputes the objective's status; the returned edge flag
// is true when a fast-severity window transitioned into firing on
// this tick. Caller holds e.mu.
func (s *series) evaluate(now time.Time, windows []Window) (Status, bool) {
	latest := s.ring[(s.head-1+len(s.ring))%len(s.ring)]
	st := Status{
		Name:   s.obj.Name,
		Target: s.obj.Target,
		Good:   latest.good,
		Total:  latest.total,
	}
	edge := false
	var longest time.Duration
	for _, w := range windows {
		ws := WindowStatus{
			Severity: w.Severity,
			Short:    w.Short, Long: w.Long,
			ShortStr: w.Short.String(), LongStr: w.Long.String(),
			Factor:    w.Factor,
			ShortBurn: s.burn(now, w.Short, s.obj.Target),
			LongBurn:  s.burn(now, w.Long, s.obj.Target),
		}
		ws.Firing = ws.ShortBurn >= w.Factor && ws.LongBurn >= w.Factor
		if ws.Firing {
			st.Firing = true
			if w.Severity == "fast" {
				st.FastBurn = true
				if !s.firing[w.Severity] {
					edge = true
				}
			}
		}
		s.firing[w.Severity] = ws.Firing
		st.Windows = append(st.Windows, ws)
		if w.Long > longest {
			longest = w.Long
		}
	}
	// Budget remaining over the longest window, as if that window were
	// the whole SLO period: 1 at zero errors, 0 when the window alone
	// would have consumed the budget, floored at 0.
	remaining := 1 - s.burn(now, longest, s.obj.Target)
	if remaining < 0 {
		remaining = 0
	}
	st.BudgetRemaining = remaining
	return st, edge
}

// Status snapshots every objective's evaluated state, in
// configuration order.
func (e *Engine) Status() []Status {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]Status, 0, len(e.series))
	for _, s := range e.series {
		st := s.current
		st.Windows = append([]WindowStatus(nil), s.current.Windows...)
		out = append(out, st)
	}
	return out
}

// Firing reports whether any objective has any window firing —
// the /healthz degraded-but-up condition.
func (e *Engine) Firing() bool {
	if e == nil {
		return false
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, s := range e.series {
		if s.current.Firing {
			return true
		}
	}
	return false
}

// Run drives Tick on the engine's interval until ctx is done. The
// serving layer calls this on its own goroutine.
func (e *Engine) Run(done <-chan struct{}) {
	t := time.NewTicker(e.interval)
	defer t.Stop()
	for {
		select {
		case <-done:
			return
		case <-t.C:
			e.Tick()
		}
	}
}
