// Post-mortem profile capture: when a fast-burn alert fires, the
// serving layer grabs a CPU and a heap profile into a bounded on-disk
// ring so the offending interval can be analyzed after the fact with
// `go tool pprof`, even if nobody was watching the debug port when it
// happened. The ring is directory-per-capture; past the retention
// bound the oldest capture directory is deleted.
package slo

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime/pprof"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// ProfileRing writes capture sets under dir, retaining the newest max
// of them.
type ProfileRing struct {
	dir    string
	max    int
	cpuDur time.Duration

	busy atomic.Bool // one capture at a time; overlapping triggers skip
	mu   sync.Mutex  // serializes pruning
}

// NewProfileRing builds a ring rooted at dir. max <= 0 selects 8
// retained captures; cpuDur <= 0 selects a 2-second CPU profile.
func NewProfileRing(dir string, max int, cpuDur time.Duration) *ProfileRing {
	if max <= 0 {
		max = 8
	}
	if cpuDur <= 0 {
		cpuDur = 2 * time.Second
	}
	return &ProfileRing{dir: dir, max: max, cpuDur: cpuDur}
}

// Capture writes one capture set — cpu.pprof (profiled over the
// ring's CPU window, so this call blocks for that long) and
// heap.pprof — into a fresh timestamped directory named after reason,
// then prunes the ring. Returns the capture directory. A capture
// already in flight (or a CPU profile started elsewhere, e.g. via the
// pprof debug endpoint) makes it a no-op returning "". Nil-safe.
func (r *ProfileRing) Capture(reason string) (string, error) {
	if r == nil {
		return "", nil
	}
	if !r.busy.CompareAndSwap(false, true) {
		return "", nil
	}
	defer r.busy.Store(false)

	name := fmt.Sprintf("%d-%s", time.Now().UnixMilli(), sanitizeReason(reason))
	dir := filepath.Join(r.dir, name)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}

	cpu, err := os.Create(filepath.Join(dir, "cpu.pprof"))
	if err != nil {
		return "", err
	}
	// StartCPUProfile fails if profiling is already active (the pprof
	// HTTP handler could own it); treat that as a skip, keep the heap.
	if err := pprof.StartCPUProfile(cpu); err == nil {
		time.Sleep(r.cpuDur)
		pprof.StopCPUProfile()
	}
	if err := cpu.Close(); err != nil {
		return "", err
	}

	heap, err := os.Create(filepath.Join(dir, "heap.pprof"))
	if err != nil {
		return "", err
	}
	if err := pprof.WriteHeapProfile(heap); err != nil {
		heap.Close()
		return "", err
	}
	if err := heap.Close(); err != nil {
		return "", err
	}

	return dir, r.prune()
}

// Captures lists the retained capture directories, oldest first.
func (r *ProfileRing) Captures() []string {
	if r == nil {
		return nil
	}
	entries, err := os.ReadDir(r.dir)
	if err != nil {
		return nil
	}
	var out []string
	for _, e := range entries {
		if e.IsDir() {
			out = append(out, e.Name())
		}
	}
	// Millisecond-timestamp prefixes of equal digit count sort
	// chronologically as strings.
	sort.Strings(out)
	return out
}

// prune deletes the oldest capture directories beyond the bound.
func (r *ProfileRing) prune() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	caps := r.Captures()
	for len(caps) > r.max {
		if err := os.RemoveAll(filepath.Join(r.dir, caps[0])); err != nil {
			return err
		}
		caps = caps[1:]
	}
	return nil
}

// sanitizeReason restricts the reason to filename-safe characters.
func sanitizeReason(s string) string {
	if s == "" {
		return "capture"
	}
	var b strings.Builder
	for _, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z',
			c >= '0' && c <= '9', c == '-', c == '_':
			b.WriteRune(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}
