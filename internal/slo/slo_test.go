package slo

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

// fakeCounters is a controllable Source.
type fakeCounters struct {
	good, total float64
}

func (f *fakeCounters) source() (float64, float64) { return f.good, f.total }

// engine with a fake clock at 1s cadence.
func testEngine(t *testing.T, f *fakeCounters, onFast func(string)) (*Engine, *time.Time) {
	t.Helper()
	now := time.Unix(1_700_000_000, 0)
	e := New(Config{
		Objectives: []Objective{{Name: "availability", Target: 0.999, Source: f.source}},
		Windows: []Window{
			{Severity: "fast", Short: 5 * time.Second, Long: 60 * time.Second, Factor: 14.4},
			{Severity: "slow", Short: 30 * time.Second, Long: 360 * time.Second, Factor: 6},
		},
		Interval:   time.Second,
		Now:        func() time.Time { return now },
		OnFastBurn: onFast,
	})
	return e, &now
}

// step advances the clock and ticks once.
func step(e *Engine, now *time.Time, d time.Duration) {
	*now = now.Add(d)
	e.Tick()
}

// TestHealthyTrafficDoesNotFire: at the objective's exact error rate
// the burn is ~1, far under both factors.
func TestHealthyTrafficDoesNotFire(t *testing.T) {
	f := &fakeCounters{}
	e, now := testEngine(t, f, nil)
	for i := 0; i < 120; i++ {
		f.total += 1000
		f.good += 999 // 0.1% errors = burn 1 at a 99.9% target
		step(e, now, time.Second)
	}
	if e.Firing() {
		t.Fatalf("firing at burn ~1: %+v", e.Status())
	}
	st := e.Status()[0]
	ws := st.Windows[0]
	if ws.ShortBurn < 0.5 || ws.ShortBurn > 1.5 {
		t.Fatalf("short burn = %v, want ~1", ws.ShortBurn)
	}
	if st.BudgetRemaining > 0.5 {
		t.Fatalf("budget remaining %v at exactly-budget burn, want ~0", st.BudgetRemaining)
	}
}

// TestFastBurnFiresOnceOnEdge: a hard error spike trips the fast pair
// and the capture hook runs exactly once while it keeps firing.
func TestFastBurnFiresOnceOnEdge(t *testing.T) {
	var edges []string
	f := &fakeCounters{}
	e, now := testEngine(t, f, func(name string) { edges = append(edges, name) })

	// One minute of clean traffic to fill the long window.
	for i := 0; i < 60; i++ {
		f.total += 1000
		f.good += 1000
		step(e, now, time.Second)
	}
	if e.Firing() {
		t.Fatal("firing on clean traffic")
	}

	// 100% errors: short (5s) and long (60s) windows both blow past
	// 14.4x within a few seconds.
	for i := 0; i < 20; i++ {
		f.total += 1000
		step(e, now, time.Second)
	}
	st := e.Status()[0]
	if !st.Firing || !st.FastBurn {
		t.Fatalf("fast burn not firing: %+v", st)
	}
	if len(edges) != 1 || edges[0] != "availability" {
		t.Fatalf("fast-burn edge callback fired %d times (%v), want exactly 1", len(edges), edges)
	}
	if st.BudgetRemaining != 0 {
		t.Fatalf("budget remaining = %v under total outage, want 0", st.BudgetRemaining)
	}

	// Recovery: clean traffic ages the errors out of both windows; the
	// alert clears and a second spike re-arms the edge.
	for i := 0; i < 120; i++ {
		f.total += 1000
		f.good += 1000
		step(e, now, time.Second)
	}
	if e.Firing() {
		t.Fatalf("still firing after recovery: %+v", e.Status())
	}
	for i := 0; i < 20; i++ {
		f.total += 1000
		step(e, now, time.Second)
	}
	if len(edges) != 2 {
		t.Fatalf("edge callback after recovery fired %d times total, want 2", len(edges))
	}
}

// TestSlowBurnNeedsSustainedErrors: an error rate that trips the
// 6x slow factor but not the 14.4x fast factor fires only the slow
// pair, and only once the 30s short window fills.
func TestSlowBurnNeedsSustainedErrors(t *testing.T) {
	f := &fakeCounters{}
	e, now := testEngine(t, f, nil)
	for i := 0; i < 360; i++ {
		f.total += 1000
		f.good += 990 // 1% errors = burn 10: above 6, below 14.4
		step(e, now, time.Second)
	}
	st := e.Status()[0]
	var fast, slow WindowStatus
	for _, w := range st.Windows {
		if w.Severity == "fast" {
			fast = w
		} else {
			slow = w
		}
	}
	if fast.Firing {
		t.Fatalf("fast pair firing at burn 10: %+v", fast)
	}
	if !slow.Firing {
		t.Fatalf("slow pair not firing at sustained burn 10: %+v", slow)
	}
	if !st.Firing || st.FastBurn {
		t.Fatalf("status rollup wrong: %+v", st)
	}
}

// TestIdleServiceStaysQuiet: zero traffic must read as burn 0, not
// NaN or firing.
func TestIdleServiceStaysQuiet(t *testing.T) {
	f := &fakeCounters{}
	e, now := testEngine(t, f, nil)
	for i := 0; i < 30; i++ {
		step(e, now, time.Second)
	}
	st := e.Status()[0]
	if st.Firing || st.Windows[0].ShortBurn != 0 || st.BudgetRemaining != 1 {
		t.Fatalf("idle service not quiet: %+v", st)
	}
	var nilEngine *Engine
	if nilEngine.Firing() || nilEngine.Status() != nil {
		t.Fatal("nil engine not inert")
	}
	nilEngine.Tick()
}

// TestProfileRingCaptureAndPrune drills the on-disk ring: captures
// land with both profiles, the bound evicts oldest-first, and
// overlapping captures are skipped (busy flag) rather than queued.
func TestProfileRingCaptureAndPrune(t *testing.T) {
	dir := t.TempDir()
	r := NewProfileRing(filepath.Join(dir, "profiles"), 2, time.Millisecond)

	var dirs []string
	for i := 0; i < 3; i++ {
		d, err := r.Capture("fast_burn-availability")
		if err != nil {
			t.Fatalf("capture %d: %v", i, err)
		}
		if d == "" {
			t.Fatalf("capture %d skipped unexpectedly", i)
		}
		dirs = append(dirs, d)
		time.Sleep(2 * time.Millisecond) // distinct UnixMilli prefixes
	}

	for _, f := range []string{"cpu.pprof", "heap.pprof"} {
		if fi, err := os.Stat(filepath.Join(dirs[2], f)); err != nil || fi.Size() == 0 {
			t.Fatalf("capture missing %s: %v", f, err)
		}
	}

	caps := r.Captures()
	if len(caps) != 2 {
		t.Fatalf("retained %d captures, want 2 (bound): %v", len(caps), caps)
	}
	if got := filepath.Join(filepath.Join(dir, "profiles"), caps[0]); got == dirs[0] {
		t.Fatalf("oldest capture %s not pruned: %v", dirs[0], caps)
	}

	var nilRing *ProfileRing
	if d, err := nilRing.Capture("x"); d != "" || err != nil {
		t.Fatal("nil ring not inert")
	}
}
