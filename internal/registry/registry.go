// Package registry is the single source of truth for every
// cross-cutting string name the pipeline and the serving layer bake
// into production code: fault-injection point names, trace stage
// names, and Prometheus metric family names. The names used to live
// as bare literals scattered across ~28 files; concentrating them
// here lets the rplint static-analysis suite (cmd/rplint) verify that
// every name used anywhere in the tree resolves to a registry
// constant, is unique, and — for metric families — is documented in
// the README metric table.
//
// The package imports nothing and is imported by faults, trace,
// serve, and obs, so it can never participate in an import cycle.
package registry

// Fault-injection point names (internal/faults). One constant per
// point compiled into the pipeline or the serving layer; see
// faults.Check call sites.
const (
	FaultHPRobustSolver  = "hp/robust_solver"  // robust HP trend IRLS solve
	FaultWaveletTransfrm = "wavelet/transform" // circular MODWT pyramid
	FaultWaveletReflect  = "wavelet/reflect"   // reflection-boundary MODWT fallback
	FaultSpectrumSolver  = "spectrum/solver"   // per-frequency IRLS/ADMM regressions
	FaultSpectrumStall   = "spectrum/stall"    // latency surrogate inside the periodogram
	FaultCoreLevel       = "core/level"        // one wavelet level's detection
	FaultServeHandler    = "serve/handler"     // HTTP handler body
	FaultServeWorker     = "serve/worker"      // worker-pool job start
	FaultServeCache      = "serve/cache"       // result-cache read (corruption surrogate)
	FaultJobsStore       = "jobs/store"        // async job-store insert (submission path)
	FaultJobsExec        = "jobs/exec"         // async job execution start
	FaultWALAppend       = "wal/append"        // write-ahead-log record append
	FaultWALFsync        = "wal/fsync"         // write-ahead-log fsync
	FaultWALReplay       = "wal/replay"        // write-ahead-log startup replay
)

// FaultPoints lists every canonical fault point, in pipeline-then-
// serving order.
func FaultPoints() []string {
	return []string{
		FaultHPRobustSolver, FaultWaveletTransfrm, FaultWaveletReflect,
		FaultSpectrumSolver, FaultSpectrumStall, FaultCoreLevel,
		FaultServeHandler, FaultServeWorker, FaultServeCache,
		FaultJobsStore, FaultJobsExec,
		FaultWALAppend, FaultWALFsync, FaultWALReplay,
	}
}

// Trace stage names of the RobustPeriod pipeline (Fig. 1 of the
// paper), in execution order (internal/trace).
const (
	StageHPFilter    = "hp_filter"        // HP detrending + winsorized normalization
	StageMODWT       = "modwt"            // maximal overlap DWT decomposition
	StageRanking     = "variance_ranking" // robust wavelet-variance level ranking
	StagePeriodogram = "periodogram"      // Huber-periodogram + Fisher test (per level)
	StageValidation  = "validation"       // Huber-ACF validation + refinement
)

// TraceStages lists the canonical pipeline stages in execution order.
func TraceStages() []string {
	return []string{StageHPFilter, StageMODWT, StageRanking, StagePeriodogram, StageValidation}
}

// Trace counter names accumulated under the pipeline stages above
// (internal/trace Count call sites). Counters are per-request
// diagnostics, not Prometheus families; they surface in Result.Trace
// and the ?debug=1 response body.
const (
	CounterSolverIters    = "solver_iters"     // IRLS/ADMM iterations across all per-frequency solves
	CounterSolverWarmHits = "solver_warm_hits" // solves whose warm start beat the cold OLS init
	CounterPrefilterSkips = "prefilter_skips"  // frequencies certified below the Fisher floor and skipped
)

// TraceCounters lists the canonical per-stage trace counter names.
func TraceCounters() []string {
	return []string{CounterSolverIters, CounterSolverWarmHits, CounterPrefilterSkips}
}

// Span names of the serving layer (internal/trace span recordings).
// Pipeline-stage spans reuse the Stage* constants above; the names
// here cover everything around the pipeline: the request root span,
// queue wait, async-job execution, coalesced-flight attachment, and
// the durability syscalls.
const (
	SpanRequest   = "request"         // root span: admission to response
	SpanQueueWait = "queue_wait"      // submit-to-start wait in the worker or fair-share queue
	SpanJobExec   = "job_exec"        // async job execution (dequeue to terminal state)
	SpanCoalesce  = "coalesce_attach" // follower attaching to an identical in-flight execution
	SpanWALAppend = "wal_append"      // write-ahead-log record append (encode + write)
	SpanWALFsync  = "wal_fsync"       // write-ahead-log fsync before admission is acknowledged
)

// SpanNames lists the canonical non-stage span names.
func SpanNames() []string {
	return []string{SpanRequest, SpanQueueWait, SpanJobExec, SpanCoalesce, SpanWALAppend, SpanWALFsync}
}

// Lock classes of the serving and durability layers, named
// "pkg.Type.field" (or "pkg.var" for a package-level mutex). The
// list is the canonical acquisition order, outermost first: code may
// acquire a class only while holding classes that appear strictly
// earlier. The rplint lockdiscipline analyzer derives every
// lock-nesting edge in the tree (including edges through calls, via
// its call-summary layer) and rejects any edge that contradicts this
// order, plus any mutex in jobs/wal/serve/obs/trace/slo that is
// missing from the catalog — so adding a mutex to those packages
// means declaring, here, where it nests.
const (
	LockServeWorkerPool  = "serve.workerPool.mu"   // worker-pool state (outermost serve lock)
	LockServeResultCache = "serve.resultCache.mu"  // LRU result cache
	LockServeBreaker     = "serve.breaker.mu"      // per-endpoint circuit breaker
	LockServeTenants     = "serve.tenantCounts.mu" // tenant-label cardinality fold
	LockServeHistogram   = "serve.histogram.mu"    // per-stage latency histograms
	LockJobsManager      = "jobs.Manager.mu"       // async job manager (flights, queues, store)
	LockWALLog           = "wal.Log.mu"            // write-ahead-log segment state
	LockSLOEngine        = "slo.Engine.mu"         // burn-rate engine windows
	LockSLOProfileRing   = "slo.ProfileRing.mu"    // on-disk pprof capture ring
	LockTraceTrace       = "trace.Trace.mu"        // per-request stage trace accumulation
	LockTraceSpanStore   = "trace.SpanStore.mu"    // trace flight-recorder dual ring
	LockTraceRecording   = "trace.Recording.mu"    // per-request span recording
	LockObsScopeFault    = "obs.Scope.faultMu"     // request-scope fault annotations
	LockObsRecorder      = "obs.Recorder.mu"       // request flight-recorder dual ring
	LockObsQuantiles     = "obs.Quantiles.mu"      // P2 streaming quantile estimator
)

// LockOrder returns the canonical lock acquisition order, outermost
// first. Holding a class and acquiring one at the same or an earlier
// rank is a static lockdiscipline violation.
func LockOrder() []string {
	return []string{
		LockServeWorkerPool,
		LockServeResultCache,
		LockServeBreaker,
		LockServeTenants,
		LockServeHistogram,
		LockJobsManager,
		LockWALLog,
		LockSLOEngine,
		LockSLOProfileRing,
		LockTraceTrace,
		LockTraceSpanStore,
		LockTraceRecording,
		LockObsScopeFault,
		LockObsRecorder,
		LockObsQuantiles,
	}
}

// Hot-path catalog: functions pinned allocation-free (or
// allocation-flat) by AllocsPerRun tests. The rplint hotalloc
// analyzer holds their bodies to allocation discipline — no fmt
// calls, no growth-by-append without visible preallocation, no
// escaping closure captures, no interface-boxing conversions — and,
// when compiler escape facts are loaded (rplint -facts), rejects any
// heap-escape the compiler reports inside them. Names are in
// FuncDisplay form: pkg.Func, pkg.Type.Method, or pkg.(*Type).Method.
func HotPaths() []string {
	return []string{
		// internal/trace: the nil-trace and sampled-out span paths
		// (TestNilTraceAllocatesNothing, TestSampledOutSpanPathAllocatesNothing).
		"trace.(*Trace).StartStage",
		"trace.(*Trace).Count",
		"trace.(*Trace).CountBool",
		"trace.(*Trace).RecordLevel",
		"trace.(*Trace).AttachSpans",
		"trace.(*Recording).AddSpan",
		"trace.(*Recording).Annotate",
		"trace.ParseTraceparent",
		// internal/obs: the per-request steady-state observation path
		// (TestQuantilesObserveAllocationFree, recorder/IDGen pins).
		"obs.(*Quantiles).Observe",
		"obs.(*Recorder).Record",
		"obs.(*IDGen).Next",
		// internal/faults: the disabled-check fast path pinned at zero
		// overhead (TestDisabledCheckIsFreeAndAllocationless).
		"faults.Check",
	}
}

// Prometheus metric family names exposed on GET /metrics. Every
// family emitted anywhere in the tree must be declared here and
// documented in the README metric table (rplint enforces both).
const (
	MetricBuildInfo = "rp_build_info"

	MetricRequestsTotal      = "rp_requests_total"
	MetricRequestErrorsTotal = "rp_request_errors_total"
	MetricRequestsShedTotal  = "rp_requests_shed_total"
	MetricRequestsInFlight   = "rp_requests_in_flight"
	MetricWorkerQueueDepth   = "rp_worker_queue_depth"

	MetricCacheEntries          = "rp_cache_entries"
	MetricCacheHitsTotal        = "rp_cache_hits_total"
	MetricCacheMissesTotal      = "rp_cache_misses_total"
	MetricCacheCorruptionsTotal = "rp_cache_corruptions_total"

	MetricPanicsRecoveredTotal = "rp_panics_recovered_total"
	MetricDegradedTotal        = "rp_degraded_total"
	MetricBreakerState         = "rp_breaker_state"
	MetricBreakerOpensTotal    = "rp_breaker_opens_total"

	MetricAdmissionJobTime = "rp_admission_job_time_seconds"

	MetricJobsSubmittedTotal = "rp_jobs_submitted_total"
	MetricJobsCoalescedTotal = "rp_jobs_coalesced_total"
	MetricJobsCompletedTotal = "rp_jobs_completed_total"
	MetricJobsExpiredTotal   = "rp_jobs_expired_total"
	MetricJobsShedTotal      = "rp_jobs_shed_total"
	MetricJobsQueueDepth     = "rp_jobs_queue_depth"
	MetricJobsState          = "rp_jobs_state"
	MetricJobLatencyQuantile = "rp_job_latency_seconds_quantile"

	MetricWALAppendsTotal       = "rp_wal_appends_total"
	MetricWALFsyncsTotal        = "rp_wal_fsyncs_total"
	MetricWALBytes              = "rp_wal_bytes"
	MetricWALReplayRecordsTotal = "rp_wal_replay_records_total"
	MetricJobsRecoveredTotal    = "rp_jobs_recovered_total"
	MetricJobsLostTotal         = "rp_jobs_lost_total"

	MetricRequestDuration        = "rp_request_duration_seconds"
	MetricStageDuration          = "rp_stage_duration_seconds"
	MetricRequestLatencyQuantile = "rp_request_latency_seconds_quantile"
	MetricStageLatencyQuantile   = "rp_stage_latency_seconds_quantile"

	MetricTracesSampledTotal  = "rp_traces_sampled_total"
	MetricTraceSpansTotal     = "rp_trace_spans_total"
	MetricTenantRequestsTotal = "rp_tenant_requests_total"

	MetricSLOObjective            = "rp_slo_objective"
	MetricSLOBurnRate             = "rp_slo_burn_rate"
	MetricSLOErrorBudgetRemaining = "rp_slo_error_budget_remaining"
	MetricSLOAlert                = "rp_slo_alert"
	MetricSLOProfileCapturesTotal = "rp_slo_profile_captures_total"

	MetricGoGoroutines          = "rp_go_goroutines"
	MetricGoHeapObjectsBytes    = "rp_go_heap_objects_bytes"
	MetricGoMemoryTotalBytes    = "rp_go_memory_total_bytes"
	MetricGoGCCyclesTotal       = "rp_go_gc_cycles_total"
	MetricGoHeapAllocsBytes     = "rp_go_heap_allocs_bytes_total"
	MetricGoGCPauseSeconds      = "rp_go_gc_pause_seconds"
	MetricGoSchedLatencySeconds = "rp_go_sched_latency_seconds"
)

// Metric describes one Prometheus family: its name, exposition type
// (counter, gauge, histogram) and HELP docstring. The help text lives
// here, next to the name, so the exposition and the README table
// cannot drift apart silently. Exemplars marks the histogram families
// whose buckets may carry OpenMetrics trace-ID exemplars; the rplint
// registry analyzer rejects exemplar-attaching writer calls against
// any other family.
type Metric struct {
	Name      string
	Type      string
	Help      string
	Exemplars bool
}

// metrics is the full catalog, in exposition order.
var metrics = []Metric{
	{MetricBuildInfo, "gauge", "Build metadata of the running binary (value is always 1).", false},

	{MetricRequestsTotal, "counter", "HTTP requests served, by endpoint.", false},
	{MetricRequestErrorsTotal, "counter", "Requests answered with status >= 400, by endpoint.", false},
	{MetricRequestsShedTotal, "counter", "Requests shed before compute (429 or 503), by endpoint.", false},
	{MetricRequestsInFlight, "gauge", "Requests currently inside a handler.", false},
	{MetricWorkerQueueDepth, "gauge", "Detection jobs waiting in the worker queue.", false},

	{MetricCacheEntries, "gauge", "Entries currently in the result cache.", false},
	{MetricCacheHitsTotal, "counter", "Result-cache hits.", false},
	{MetricCacheMissesTotal, "counter", "Result-cache misses.", false},
	{MetricCacheCorruptionsTotal, "counter", "Cache entries dropped by the integrity check on read.", false},

	{MetricPanicsRecoveredTotal, "counter", "Panics recovered in handlers and detection workers.", false},
	{MetricDegradedTotal, "counter", "Detections that returned graceful-degradation annotations.", false},
	{MetricBreakerState, "gauge", "Circuit-breaker state by endpoint: 0 closed, 1 open, 2 half-open.", false},
	{MetricBreakerOpensTotal, "counter", "Circuit-breaker open transitions by endpoint.", false},

	{MetricAdmissionJobTime, "gauge", "EWMA estimate of one detection's service time feeding the admission controller's Retry-After values.", false},

	{MetricJobsSubmittedTotal, "counter", "Async job submissions accepted (coalesced followers included).", false},
	{MetricJobsCoalescedTotal, "counter", "Async jobs that coalesced onto an identical in-flight execution.", false},
	{MetricJobsCompletedTotal, "counter", "Async jobs reaching a terminal state, by outcome (ok or failed).", false},
	{MetricJobsExpiredTotal, "counter", "Terminal async jobs reaped from the store after their TTL.", false},
	{MetricJobsShedTotal, "counter", "Async job submissions rejected by the fair-share admission bounds.", false},
	{MetricJobsQueueDepth, "gauge", "Async job executions waiting in the fair-share queues.", false},
	{MetricJobsState, "gauge", "Async jobs currently retained, by state (queued, running, done, failed).", false},
	{MetricJobLatencyQuantile, "gauge", "Streaming submit-to-completion job-latency quantile estimates (P2 algorithm).", false},

	{MetricWALAppendsTotal, "counter", "Records appended to the jobs write-ahead log.", false},
	{MetricWALFsyncsTotal, "counter", "Fsyncs issued by the jobs write-ahead log.", false},
	{MetricWALBytes, "gauge", "Size of the current jobs write-ahead-log segment in bytes.", false},
	{MetricWALReplayRecordsTotal, "counter", "Log records decoded during startup replay.", false},
	{MetricJobsRecoveredTotal, "counter", "Jobs restored to a pollable state by crash recovery (finished results plus re-enqueued submissions).", false},
	{MetricJobsLostTotal, "counter", "Jobs that were mid-execution at a crash and failed as lost to restart.", false},

	{Name: MetricRequestDuration, Type: "histogram", Help: "Request latency by endpoint.", Exemplars: true},
	{Name: MetricStageDuration, Type: "histogram", Help: "Pipeline stage latency by stage (microsecond-resolution low buckets).", Exemplars: true},
	{MetricRequestLatencyQuantile, "gauge", "Streaming request-latency quantile estimates (P2 algorithm) by endpoint.", false},
	{MetricStageLatencyQuantile, "gauge", "Streaming stage-latency quantile estimates (P2 algorithm) by stage.", false},

	{MetricTracesSampledTotal, "counter", "Requests whose span tree was sampled into the trace flight recorder.", false},
	{MetricTraceSpansTotal, "counter", "Spans recorded into the trace flight recorder.", false},
	{MetricTenantRequestsTotal, "counter", "Requests by tenant; unknown API keys beyond the tracked set fold into the other label.", false},

	{MetricSLOObjective, "gauge", "Configured SLO objective (target good-event fraction), by SLO.", false},
	{MetricSLOBurnRate, "gauge", "Error-budget burn rate by SLO and window (1 means burning exactly the budget).", false},
	{MetricSLOErrorBudgetRemaining, "gauge", "Fraction of the SLO error budget remaining over the long window, by SLO.", false},
	{MetricSLOAlert, "gauge", "SLO alert state by SLO and severity: 1 while the multi-window burn-rate condition holds.", false},
	{MetricSLOProfileCapturesTotal, "counter", "pprof profile captures triggered by fast-burn SLO alerts.", false},

	{MetricGoGoroutines, "gauge", "Current number of live goroutines.", false},
	{MetricGoHeapObjectsBytes, "gauge", "Bytes of memory occupied by live heap objects.", false},
	{MetricGoMemoryTotalBytes, "gauge", "All memory mapped by the Go runtime.", false},
	{MetricGoGCCyclesTotal, "gauge", "Completed GC cycles since process start.", false},
	{MetricGoHeapAllocsBytes, "gauge", "Cumulative bytes allocated on the heap.", false},
	{MetricGoGCPauseSeconds, "gauge", "Distribution of stop-the-world GC pause latencies (quantiles).", false},
	{MetricGoSchedLatencySeconds, "gauge", "Distribution of goroutine scheduling latencies (quantiles).", false},
}

// Metrics returns the full metric catalog, in exposition order. The
// returned slice is a copy.
func Metrics() []Metric {
	return append([]Metric(nil), metrics...)
}

// MetricNames returns every family name in catalog order.
func MetricNames() []string {
	out := make([]string, len(metrics))
	for i, m := range metrics {
		out[i] = m.Name
	}
	return out
}

// LookupMetric returns the catalog entry for name.
func LookupMetric(name string) (Metric, bool) {
	for _, m := range metrics {
		if m.Name == name {
			return m, true
		}
	}
	return Metric{}, false
}

// MustMetric is LookupMetric for compiled-in names; it panics on a
// name missing from the catalog (a programming error rplint catches
// statically anyway).
func MustMetric(name string) Metric {
	m, ok := LookupMetric(name)
	if !ok {
		panic("registry: unknown metric family " + name)
	}
	return m
}

// Validate checks the registry's own internal consistency: every
// fault point, stage, and metric family name must be non-empty and
// unique across its namespace. rplint runs this once per invocation
// and the registry tests pin it.
func Validate() []string {
	var problems []string
	check := func(kind string, names []string) {
		seen := make(map[string]bool, len(names))
		for _, n := range names {
			if n == "" {
				problems = append(problems, kind+": empty name")
				continue
			}
			if seen[n] {
				problems = append(problems, kind+": duplicate name "+n)
			}
			seen[n] = true
		}
	}
	check("fault point", FaultPoints())
	check("trace stage", TraceStages())
	check("trace counter", TraceCounters())
	check("metric family", MetricNames())
	check("lock class", LockOrder())
	check("hot path", HotPaths())
	return problems
}
