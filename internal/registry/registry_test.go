package registry

import (
	"strings"
	"testing"
)

func TestValidate(t *testing.T) {
	if problems := Validate(); len(problems) != 0 {
		t.Fatalf("registry invalid:\n%s", strings.Join(problems, "\n"))
	}
}

func TestLookupMetric(t *testing.T) {
	m, ok := LookupMetric(MetricRequestsTotal)
	if !ok {
		t.Fatalf("LookupMetric(%q) not found", MetricRequestsTotal)
	}
	if m.Type != "counter" || m.Help == "" {
		t.Errorf("unexpected catalog entry: %+v", m)
	}
	if _, ok := LookupMetric("rp_no_such_family"); ok {
		t.Error("LookupMetric found a family that does not exist")
	}
}

func TestNamingConventions(t *testing.T) {
	for _, name := range MetricNames() {
		if !strings.HasPrefix(name, "rp_") {
			t.Errorf("metric %q does not carry the rp_ namespace", name)
		}
	}
	for _, p := range FaultPoints() {
		if !strings.Contains(p, "/") {
			t.Errorf("fault point %q is not package/site-shaped", p)
		}
	}
	if len(TraceStages()) == 0 {
		t.Error("no trace stages registered")
	}
}

func TestLockOrderShape(t *testing.T) {
	order := LockOrder()
	if len(order) == 0 {
		t.Fatal("no lock classes registered")
	}
	for _, class := range order {
		// Classes are "pkg.Type.field" or "pkg.var": dotted, no
		// pointer/paren syntax.
		if strings.Count(class, ".") < 1 || strings.ContainsAny(class, "(*) ") {
			t.Errorf("lock class %q is not pkg.Type.field / pkg.var shaped", class)
		}
	}
	// The empirically-validated critical edges: the job manager's
	// mutex must rank before the WAL's and the recording's (dispatch
	// appends to the WAL and attaches spans while holding it).
	rank := make(map[string]int, len(order))
	for i, class := range order {
		rank[class] = i
	}
	for _, edge := range [][2]string{
		{LockJobsManager, LockWALLog},
		{LockJobsManager, LockTraceRecording},
	} {
		ri, iok := rank[edge[0]]
		rj, jok := rank[edge[1]]
		if !iok || !jok {
			t.Fatalf("edge %v references unranked classes", edge)
		}
		if ri >= rj {
			t.Errorf("%s must rank before %s (observed nesting in jobs dispatch)", edge[0], edge[1])
		}
	}
}

func TestHotPathsShape(t *testing.T) {
	paths := HotPaths()
	if len(paths) == 0 {
		t.Fatal("no hot paths registered")
	}
	for _, p := range paths {
		if !strings.Contains(p, ".") {
			t.Errorf("hot path %q is not pkg.Func / pkg.(*Type).Method shaped", p)
		}
	}
}
