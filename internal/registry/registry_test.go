package registry

import (
	"strings"
	"testing"
)

func TestValidate(t *testing.T) {
	if problems := Validate(); len(problems) != 0 {
		t.Fatalf("registry invalid:\n%s", strings.Join(problems, "\n"))
	}
}

func TestLookupMetric(t *testing.T) {
	m, ok := LookupMetric(MetricRequestsTotal)
	if !ok {
		t.Fatalf("LookupMetric(%q) not found", MetricRequestsTotal)
	}
	if m.Type != "counter" || m.Help == "" {
		t.Errorf("unexpected catalog entry: %+v", m)
	}
	if _, ok := LookupMetric("rp_no_such_family"); ok {
		t.Error("LookupMetric found a family that does not exist")
	}
}

func TestNamingConventions(t *testing.T) {
	for _, name := range MetricNames() {
		if !strings.HasPrefix(name, "rp_") {
			t.Errorf("metric %q does not carry the rp_ namespace", name)
		}
	}
	for _, p := range FaultPoints() {
		if !strings.Contains(p, "/") {
			t.Errorf("fault point %q is not package/site-shaped", p)
		}
	}
	if len(TraceStages()) == 0 {
		t.Error("no trace stages registered")
	}
}
