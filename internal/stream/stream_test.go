package stream

import (
	"math"
	"math/rand"
	"testing"

	"robustperiod/internal/core"
)

func push(t *testing.T, m *Monitor, vals []float64) []Event {
	t.Helper()
	var events []Event
	for _, v := range vals {
		ev, err := m.Push(v)
		if err != nil {
			t.Fatal(err)
		}
		if ev != nil {
			events = append(events, *ev)
		}
	}
	return events
}

func sine(n, period int, noise float64, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Sin(2*math.Pi*float64(i)/float64(period)) + noise*rng.NormFloat64()
	}
	return x
}

func TestMonitorDetectsInitialPeriod(t *testing.T) {
	m := NewMonitor(512, 64, core.Options{})
	events := push(t, m, sine(600, 32, 0.1, 1))
	if len(events) == 0 {
		t.Fatal("no events")
	}
	first := events[0]
	if first.Kind != PeriodsDetected {
		t.Fatalf("first event kind %v", first.Kind)
	}
	if len(first.Periods) != 1 || first.Periods[0] < 31 || first.Periods[0] > 33 {
		t.Fatalf("periods %v, want ~32", first.Periods)
	}
	cur := m.Current()
	if len(cur) != 1 || cur[0] != first.Periods[0] {
		t.Fatalf("Current() %v inconsistent", cur)
	}
}

func TestMonitorReportsPeriodChange(t *testing.T) {
	m := NewMonitor(512, 64, core.Options{})
	// Period 32 for 800 points, then period 80 for another 1200.
	events := push(t, m, sine(800, 32, 0.1, 2))
	events = append(events, push(t, m, sine(1200, 80, 0.1, 3))...)
	// The transition may surface either as a direct PeriodsChanged or
	// as PeriodsLost (mixed-regime window) followed by a fresh
	// PeriodsDetected — both are correct narrations of the change.
	var sawNew bool
	for _, ev := range events {
		if ev.Kind != PeriodsChanged && ev.Kind != PeriodsDetected {
			continue
		}
		for _, p := range ev.Periods {
			if p >= 76 && p <= 84 {
				sawNew = true
			}
		}
	}
	if !sawNew {
		t.Fatalf("no event carrying period ~80; events: %+v", events)
	}
	cur := m.Current()
	if len(cur) == 0 || cur[0] < 76 || cur[0] > 84 {
		t.Fatalf("final period set %v, want ~80", cur)
	}
}

func TestMonitorPeriodsLost(t *testing.T) {
	m := NewMonitor(512, 64, core.Options{})
	events := push(t, m, sine(640, 32, 0.1, 4))
	rng := rand.New(rand.NewSource(5))
	noise := make([]float64, 1400)
	for i := range noise {
		noise[i] = rng.NormFloat64()
	}
	events = append(events, push(t, m, noise)...)
	last := events[len(events)-1]
	if last.Kind != PeriodsLost || len(m.Current()) != 0 {
		t.Fatalf("expected a lost event and empty current set; last=%+v current=%v", last, m.Current())
	}
}

func TestMonitorStrideControlsCadence(t *testing.T) {
	// Detection must not run on every push once primed; with a huge
	// stride no further events can fire after the first.
	m := NewMonitor(256, 1000000, core.Options{})
	events := push(t, m, sine(900, 32, 0.1, 6))
	if len(events) != 1 {
		t.Fatalf("expected exactly the priming event, got %d", len(events))
	}
}

func TestMonitorClampsArguments(t *testing.T) {
	m := NewMonitor(1, 0, core.Options{})
	if m.Window() != 32 {
		t.Errorf("window clamped to %d", m.Window())
	}
	if _, err := m.Push(1); err != nil {
		t.Fatal(err)
	}
	if m.Seen() != 1 {
		t.Error("Seen broken")
	}
}

func TestSamePeriodSetTolerance(t *testing.T) {
	if !samePeriodSet([]int{100}, []int{101}) {
		t.Error("1-sample jitter should match")
	}
	if !samePeriodSet([]int{100}, []int{102}) {
		t.Error("2% jitter should match")
	}
	if samePeriodSet([]int{100}, []int{110}) {
		t.Error("10% shift should differ")
	}
	if samePeriodSet([]int{100}, []int{100, 200}) {
		t.Error("different cardinality should differ")
	}
	if !samePeriodSet(nil, nil) {
		t.Error("empty sets match")
	}
}

func TestMonitorConfirmDebounces(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	// With Confirm(2), isolated one-off detections on a noise stream
	// must be suppressed; a persistent periodicity must still surface.
	m := NewMonitor(512, 64, core.Options{})
	m.SetConfirm(2)
	var events []Event
	for i := 0; i < 2000; i++ {
		ev, err := m.Push(rng.NormFloat64())
		if err != nil {
			t.Fatal(err)
		}
		if ev != nil {
			events = append(events, *ev)
		}
	}
	noiseEvents := len(events)
	for i := 0; i < 1200; i++ {
		v := math.Sin(2*math.Pi*float64(i)/40) + 0.2*rng.NormFloat64()
		ev, err := m.Push(v)
		if err != nil {
			t.Fatal(err)
		}
		if ev != nil {
			events = append(events, *ev)
		}
	}
	if noiseEvents > 2 {
		t.Errorf("%d events on pure noise despite confirmation", noiseEvents)
	}
	cur := m.Current()
	if len(cur) != 1 || cur[0] < 38 || cur[0] > 42 {
		t.Errorf("persistent period not confirmed: %v", cur)
	}
}

func TestMonitorReset(t *testing.T) {
	m := NewMonitor(512, 64, core.Options{})
	push(t, m, sine(700, 32, 0.1, 8))
	if len(m.Current()) == 0 {
		t.Fatal("precondition: something detected")
	}
	m.Reset()
	if m.Seen() != 0 || len(m.Current()) != 0 {
		t.Error("Reset did not clear state")
	}
	// The monitor works again after a reset.
	events := push(t, m, sine(600, 48, 0.1, 9))
	if len(events) == 0 || events[0].Kind != PeriodsDetected {
		t.Fatalf("post-reset detection broken: %+v", events)
	}
}

func TestSetConfirmClamp(t *testing.T) {
	m := NewMonitor(64, 1, core.Options{})
	m.SetConfirm(-3)
	if m.confirm != 1 {
		t.Error("confirm not clamped")
	}
}

func TestEventKindString(t *testing.T) {
	if PeriodsDetected.String() != "detected" || PeriodsChanged.String() != "changed" || PeriodsLost.String() != "lost" {
		t.Error("kind strings wrong")
	}
}
