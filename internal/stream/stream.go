// Package stream provides sliding-window periodicity monitoring — the
// "apply RobustPeriod in more time series tasks" direction the paper's
// conclusion sketches (and the setting of its reference [40]):
// observations arrive one at a time, the detector re-runs every Stride
// points over the trailing Window, and subscribers get an event
// whenever the set of detected periods changes.
package stream

import (
	"fmt"

	"robustperiod/internal/core"
)

// EventKind classifies a monitor event.
type EventKind int

// Event kinds: the first successful detection, a change in the period
// set, and a loss of periodicity.
const (
	PeriodsDetected EventKind = iota
	PeriodsChanged
	PeriodsLost
)

func (k EventKind) String() string {
	switch k {
	case PeriodsDetected:
		return "detected"
	case PeriodsChanged:
		return "changed"
	case PeriodsLost:
		return "lost"
	default:
		return fmt.Sprintf("event(%d)", int(k))
	}
}

// Event reports a change in the monitored series' periodicity.
type Event struct {
	Kind    EventKind
	At      int   // index of the observation that triggered the re-detection
	Periods []int // the new period set (empty for PeriodsLost)
	Prev    []int // the previous period set
}

// Monitor watches a stream of observations.
type Monitor struct {
	window  int
	stride  int
	confirm int
	opts    core.Options
	buf     []float64 // ring of the last `window` values
	n       int       // total observations seen
	current []int
	primed  bool

	pending      []int
	pendingCount int
	havePending  bool
}

// NewMonitor creates a monitor that re-detects over the trailing
// window of the given size every stride observations. window must be
// at least 32; stride at least 1 (values are clamped). Events fire on
// the first detection immediately; use SetConfirm to require changed
// period sets to persist over several consecutive re-detections before
// an event fires (debouncing against borderline windows).
func NewMonitor(window, stride int, opts core.Options) *Monitor {
	if window < 32 {
		window = 32
	}
	if stride < 1 {
		stride = 1
	}
	return &Monitor{
		window:  window,
		stride:  stride,
		confirm: 1,
		opts:    opts,
		buf:     make([]float64, 0, window),
	}
}

// SetConfirm requires a changed period set to be observed in k
// consecutive re-detections before the change event fires (k < 1 is
// treated as 1). Narrow-band noise over a handful of cycles can fool a
// single detection; it rarely fools two in a row on disjoint strides.
func (m *Monitor) SetConfirm(k int) {
	if k < 1 {
		k = 1
	}
	m.confirm = k
}

// Window returns the monitor's window length.
func (m *Monitor) Window() int { return m.window }

// Reset clears the buffer and all detection state, keeping the
// configuration; use it after a known discontinuity (restart, backfill)
// so stale samples do not blend regimes.
func (m *Monitor) Reset() {
	m.buf = m.buf[:0]
	m.n = 0
	m.current = nil
	m.primed = false
	m.havePending = false
	m.pendingCount = 0
}

// Current returns the most recent period set (nil before the first
// detection).
func (m *Monitor) Current() []int { return append([]int(nil), m.current...) }

// Seen returns the number of observations pushed so far.
func (m *Monitor) Seen() int { return m.n }

// Push appends one observation and returns a non-nil event when the
// detected period set changed at this step. Detection runs only once
// the window is full and then every stride observations.
func (m *Monitor) Push(v float64) (*Event, error) {
	if len(m.buf) < m.window {
		m.buf = append(m.buf, v)
	} else {
		copy(m.buf, m.buf[1:])
		m.buf[m.window-1] = v
	}
	m.n++
	if len(m.buf) < m.window {
		return nil, nil
	}
	if m.primed && (m.n%m.stride) != 0 {
		return nil, nil
	}
	m.primed = true
	res, err := core.Detect(m.buf, m.opts)
	if err != nil {
		return nil, fmt.Errorf("stream: %w", err)
	}
	if samePeriodSet(res.Periods, m.current) {
		m.havePending = false
		return nil, nil
	}
	if m.confirm > 1 {
		if m.havePending && samePeriodSet(res.Periods, m.pending) {
			m.pendingCount++
		} else {
			m.pending = append(m.pending[:0], res.Periods...)
			m.pendingCount = 1
			m.havePending = true
		}
		if m.pendingCount < m.confirm {
			return nil, nil
		}
		m.havePending = false
	}
	ev := &Event{
		At:      m.n - 1,
		Periods: append([]int(nil), res.Periods...),
		Prev:    append([]int(nil), m.current...),
	}
	switch {
	case len(m.current) == 0:
		ev.Kind = PeriodsDetected
	case len(res.Periods) == 0:
		ev.Kind = PeriodsLost
	default:
		ev.Kind = PeriodsChanged
	}
	m.current = append(m.current[:0], res.Periods...)
	return ev, nil
}

// samePeriodSet compares period sets with a 3% tolerance per entry so
// one-sample jitter in a re-detection does not spam change events.
func samePeriodSet(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		d := a[i] - b[i]
		if d < 0 {
			d = -d
		}
		lim := a[i]
		if b[i] < lim {
			lim = b[i]
		}
		if d > 1 && float64(d) > 0.03*float64(lim) {
			return false
		}
	}
	return true
}
