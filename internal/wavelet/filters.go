// Package wavelet implements the wavelet substrate of RobustPeriod:
// Daubechies filter banks, the maximal overlap discrete wavelet
// transform (MODWT) and its inverse, the classical decimated DWT (used
// by the Wavelet-Fisher baseline), and the robust unbiased wavelet
// variance of Eq. 4 of the paper.
//
// Conventions follow Percival & Walden, "Wavelet Methods for Time
// Series Analysis" (2000): g is the scaling (low-pass) filter with
// Σg_l = √2 and Σg_l² = 1; the wavelet (high-pass) filter is the
// quadrature mirror h_l = (−1)^l g_{L−1−l}. MODWT filters are
// g̃ = g/√2, h̃ = h/√2.
package wavelet

import (
	"fmt"
	"strings"
)

// Kind names a Daubechies filter by its width L (number of taps).
type Kind int

// Supported Daubechies filters. DaubN has N taps and N/2 vanishing
// moments; Haar is Daub2. The LA (least-asymmetric, "symlet") variants
// trade extremal phase for near-linear phase — Percival & Walden's
// recommended family for aligning wavelet coefficients with events in
// time; they are encoded as the negative of their tap count.
const (
	Haar   Kind = 2
	Daub4  Kind = 4
	Daub6  Kind = 6
	Daub8  Kind = 8
	Daub10 Kind = 10
	Daub12 Kind = 12
	Daub16 Kind = 16
	Daub20 Kind = 20
	LA8    Kind = -8
	LA16   Kind = -16
)

// String returns the conventional name of the filter.
func (k Kind) String() string {
	if k == Haar {
		return "haar"
	}
	if k < 0 {
		return fmt.Sprintf("la%d", -int(k))
	}
	return fmt.Sprintf("db%d", int(k)/2)
}

// Kinds returns every supported filter family, shortest filter first.
// It is the single source of truth for name parsing and for help text
// listing the accepted wavelets.
func Kinds() []Kind {
	return []Kind{Haar, Daub4, Daub6, Daub8, Daub10, Daub12, Daub16, Daub20, LA8, LA16}
}

// KindNames returns the canonical names of Kinds(), in order.
func KindNames() []string {
	ks := Kinds()
	names := make([]string, len(ks))
	for i, k := range ks {
		names[i] = k.String()
	}
	return names
}

// ParseKind maps a conventional filter name — exactly the strings
// Kind.String produces ("haar", "db2" … "db10", "la8", "la16"), plus
// the alias "db1" for Haar — back to its Kind. Matching is
// case-insensitive; an unknown name is an error naming the accepted
// set, never a silent default.
func ParseKind(name string) (Kind, error) {
	s := strings.ToLower(strings.TrimSpace(name))
	if s == "db1" {
		s = "haar"
	}
	for _, k := range Kinds() {
		if k.String() == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("wavelet: unknown filter %q (accepted: %s)",
		name, strings.Join(KindNames(), ", "))
}

// scaling filter coefficients (low-pass, Σ=√2, Σ²=1), indexed by Kind.
var scalingCoeffs = map[Kind][]float64{
	Haar: {
		0.7071067811865475, 0.7071067811865475,
	},
	Daub4: {
		0.4829629131445341, 0.8365163037378077,
		0.2241438680420134, -0.1294095225512603,
	},
	Daub6: {
		0.3326705529500827, 0.8068915093110928,
		0.4598775021184915, -0.1350110200102546,
		-0.0854412738820267, 0.0352262918857096,
	},
	Daub8: {
		0.2303778133074431, 0.7148465705484058,
		0.6308807679358788, -0.0279837694166834,
		-0.1870348117179132, 0.0308413818353661,
		0.0328830116666778, -0.0105974017850021,
	},
	Daub10: {
		0.1601023979741930, 0.6038292697971898,
		0.7243085284377729, 0.1384281459013204,
		-0.2422948870663824, -0.0322448695846381,
		0.0775714938400459, -0.0062414902127983,
		-0.0125807519990820, 0.0033357252854738,
	},
	Daub12: {
		0.1115407433501094, 0.4946238903984530,
		0.7511339080210954, 0.3152503517091980,
		-0.2262646939654398, -0.1297668675672624,
		0.0975016055873224, 0.0275228655303053,
		-0.0315820393174862, 0.0005538422011614,
		0.0047772575109455, -0.0010773010853085,
	},
	Daub16: {
		0.0544158422431049, 0.3128715909143031,
		0.6756307362972904, 0.5853546836541907,
		-0.0158291052563816, -0.2840155429615702,
		0.0004724845739124, 0.1287474266204837,
		-0.0173693010018083, -0.0440882539307952,
		0.0139810279173995, 0.0087460940474065,
		-0.0048703529934518, -0.0003917403733770,
		0.0006754494064506, -0.0001174767841248,
	},
	LA8: {
		-0.0757657147892733, -0.0296355276459985,
		0.4976186676320155, 0.8037387518059161,
		0.2978577956052774, -0.0992195435768472,
		-0.0126039672620378, 0.0322231006040427,
	},
	LA16: {
		-0.0033824159510061, -0.0005421323317911,
		0.0316950878114930, 0.0076074873249176,
		-0.1432942383508097, -0.0612733590676585,
		0.4813596512583722, 0.7771857517005235,
		0.3644418948353314, -0.0519458381077090,
		-0.0272190299170560, 0.0491371796736075,
		0.0038087520138906, -0.0149522583370482,
		-0.0003029205147214, 0.0018899503327595,
	},
	Daub20: {
		0.0266700579005473, 0.1881768000776347,
		0.5272011889315757, 0.6884590394534363,
		0.2811723436605715, -0.2498464243271598,
		-0.1959462743772862, 0.1273693403357541,
		0.0930573646035547, -0.0713941471663501,
		-0.0294575368218399, 0.0332126740593612,
		0.0036065535669870, -0.0107331754833007,
		0.0013953517469940, 0.0019924052951925,
		-0.0006858566949564, -0.0001164668551285,
		0.0000935886703202, -0.0000132642028945,
	},
}

// Filter bundles the analysis filter pair of one Daubechies family.
type Filter struct {
	kind Kind
	g    []float64 // scaling (low-pass)
	h    []float64 // wavelet (high-pass), QMF of g
}

// NewFilter returns the filter bank for k, or an error for an
// unsupported width.
func NewFilter(k Kind) (*Filter, error) {
	g, ok := scalingCoeffs[k]
	if !ok {
		return nil, fmt.Errorf("wavelet: unsupported filter %d (Daubechies widths 2,4,6,8,10,12,16,20 or LA8/LA16)", int(k))
	}
	L := len(g)
	h := make([]float64, L)
	for l := 0; l < L; l++ {
		h[l] = g[L-1-l]
		if l%2 == 1 {
			h[l] = -h[l]
		}
	}
	return &Filter{kind: k, g: g, h: h}, nil
}

// MustFilter is NewFilter that panics on error; for use with the
// package constants.
func MustFilter(k Kind) *Filter {
	f, err := NewFilter(k)
	if err != nil {
		panic(err)
	}
	return f
}

// Kind returns the filter family identifier.
func (f *Filter) Kind() Kind { return f.kind }

// Len returns the number of taps L of the base filter.
func (f *Filter) Len() int { return len(f.g) }

// Scaling returns a copy of the scaling (low-pass) coefficients.
func (f *Filter) Scaling() []float64 { return append([]float64(nil), f.g...) }

// Wavelet returns a copy of the wavelet (high-pass) coefficients.
func (f *Filter) Wavelet() []float64 { return append([]float64(nil), f.h...) }

// EquivalentWidth returns L_j = (2^j − 1)(L − 1) + 1, the width of the
// level-j equivalent MODWT filter; the first L_j − 1 coefficients of
// level j are affected by the circular boundary.
func (f *Filter) EquivalentWidth(level int) int {
	return (1<<uint(level)-1)*(f.Len()-1) + 1
}

// sumSq is a small internal helper shared by the transform code.
func sumSq(x []float64) float64 {
	s := 0.0
	for _, v := range x {
		s += v * v
	}
	return s
}
