package wavelet

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFilterProperties(t *testing.T) {
	kinds := []Kind{Haar, Daub4, Daub6, Daub8, Daub10, Daub12, Daub16, Daub20, LA8, LA16}
	for _, k := range kinds {
		f, err := NewFilter(k)
		if err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		g := f.Scaling()
		h := f.Wavelet()
		width := int(k)
		if width < 0 {
			width = -width
		}
		if len(g) != width || len(h) != width {
			t.Fatalf("%v: wrong length", k)
		}
		// Σg = √2, Σg² = 1.
		var sg, sg2, sh, sh2 float64
		for i := range g {
			sg += g[i]
			sg2 += g[i] * g[i]
			sh += h[i]
			sh2 += h[i] * h[i]
		}
		if math.Abs(sg-math.Sqrt2) > 1e-9 {
			t.Errorf("%v: Σg = %v, want √2", k, sg)
		}
		if math.Abs(sg2-1) > 1e-9 {
			t.Errorf("%v: Σg² = %v, want 1", k, sg2)
		}
		if math.Abs(sh) > 1e-9 {
			t.Errorf("%v: Σh = %v, want 0", k, sh)
		}
		if math.Abs(sh2-1) > 1e-9 {
			t.Errorf("%v: Σh² = %v, want 1", k, sh2)
		}
		// Orthogonality to even shifts: Σ g_l g_{l+2m} = 0 for m != 0,
		// and Σ g_l h_{l+2m} = 0 for all m.
		L := len(g)
		for m := 1; m < L/2; m++ {
			var gg, gh float64
			for l := 0; l+2*m < L; l++ {
				gg += g[l] * g[l+2*m]
				gh += g[l] * h[l+2*m]
			}
			if math.Abs(gg) > 1e-8 {
				t.Errorf("%v: scaling not orthogonal to shift %d: %v", k, m, gg)
			}
			if math.Abs(gh) > 1e-8 {
				t.Errorf("%v: g/h not orthogonal at shift %d: %v", k, m, gh)
			}
		}
	}
}

func TestNewFilterUnsupported(t *testing.T) {
	if _, err := NewFilter(Kind(5)); err == nil {
		t.Fatal("expected error for unsupported width")
	}
}

func TestMustFilterPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustFilter(Kind(3))
}

func TestKindString(t *testing.T) {
	if Haar.String() != "haar" || Daub8.String() != "db4" || Daub20.String() != "db10" {
		t.Error("Kind.String naming wrong")
	}
	if LA8.String() != "la8" || LA16.String() != "la16" {
		t.Error("LA naming wrong")
	}
}

func TestEquivalentWidth(t *testing.T) {
	f := MustFilter(Daub8) // L = 8
	// L_j = (2^j − 1)(L−1) + 1.
	for j, want := range map[int]int{1: 8, 2: 22, 3: 50, 4: 106} {
		if got := f.EquivalentWidth(j); got != want {
			t.Errorf("L_%d = %d, want %d", j, got, want)
		}
	}
}

func TestMaxLevel(t *testing.T) {
	f := MustFilter(Daub8)
	n := 1000
	j := MaxLevel(n, f)
	if f.EquivalentWidth(j) > n {
		t.Errorf("MaxLevel %d has L_j = %d > %d", j, f.EquivalentWidth(j), n)
	}
	if f.EquivalentWidth(j+1) <= n {
		t.Errorf("MaxLevel %d not maximal", j)
	}
	if got := MaxLevel(1, f); got != 0 {
		t.Errorf("tiny series MaxLevel = %d, want 0", got)
	}
}

func TestMODWTHaarLevel1Known(t *testing.T) {
	// Haar MODWT level-1: w[t] = (x[t] − x[t−1])/2, v[t] = (x[t]+x[t−1])/2.
	x := []float64{4, 8, 2, 6}
	m, err := Transform(x, MustFilter(Haar), 1)
	if err != nil {
		t.Fatal(err)
	}
	wantW := []float64{(4.0 - 6) / 2, (8.0 - 4) / 2, (2.0 - 8) / 2, (6.0 - 2) / 2}
	wantV := []float64{(4.0 + 6) / 2, (8.0 + 4) / 2, (2.0 + 8) / 2, (6.0 + 2) / 2}
	for i := range x {
		if math.Abs(m.W[0][i]-wantW[i]) > 1e-12 {
			t.Errorf("w[%d] = %v, want %v", i, m.W[0][i], wantW[i])
		}
		if math.Abs(m.V[i]-wantV[i]) > 1e-12 {
			t.Errorf("v[%d] = %v, want %v", i, m.V[i], wantV[i])
		}
	}
}

func TestMODWTEnergyPreservation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, k := range []Kind{Haar, Daub4, Daub8, Daub20} {
		f := MustFilter(k)
		for _, n := range []int{64, 100, 333} {
			x := make([]float64, n)
			for i := range x {
				x[i] = rng.NormFloat64()
			}
			levels := MaxLevel(n, f)
			if levels < 1 {
				continue
			}
			m, err := Transform(x, f, levels)
			if err != nil {
				t.Fatal(err)
			}
			ex := sumSq(x)
			if em := m.Energy(); math.Abs(em-ex) > 1e-8*ex {
				t.Errorf("%v n=%d: energy %v vs %v", k, n, em, ex)
			}
		}
	}
}

func TestMODWTInverseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, k := range []Kind{Haar, Daub8, Daub12} {
		f := MustFilter(k)
		n := 200
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64() * 5
		}
		levels := MaxLevel(n, f)
		m, err := Transform(x, f, levels)
		if err != nil {
			t.Fatal(err)
		}
		y := m.Inverse()
		for i := range x {
			if math.Abs(x[i]-y[i]) > 1e-9 {
				t.Fatalf("%v: round trip broke at %d: %v vs %v", k, i, x[i], y[i])
			}
		}
	}
}

func TestMODWTErrors(t *testing.T) {
	f := MustFilter(Daub8)
	if _, err := Transform([]float64{1, 2, 3}, f, 1); err == nil {
		t.Error("series shorter than filter should error")
	}
	if _, err := Transform(make([]float64, 100), f, 0); err == nil {
		t.Error("levels=0 should error")
	}
	if _, err := Transform(make([]float64, 16), MustFilter(Haar), 10); err == nil {
		t.Error("excessive depth should error")
	}
}

func TestMODWTIsolatesPeriodicComponent(t *testing.T) {
	// A period-32 sinusoid (frequency 1/32) lies in the level-5
	// passband [1/64, 1/32]; its energy should concentrate at level 5.
	n := 512
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Sin(2 * math.Pi * float64(i) / 32)
	}
	f := MustFilter(Daub8)
	levels := MaxLevel(n, f)
	m, err := Transform(x, f, levels)
	if err != nil {
		t.Fatal(err)
	}
	best, bestE := 0, -1.0
	for j := 1; j <= levels; j++ {
		if e := sumSq(m.W[j-1]); e > bestE {
			bestE = e
			best = j
		}
	}
	// Period T=32: 2^j <= T < 2^{j+1} gives j=5.
	if best != 5 {
		t.Errorf("dominant level = %d, want 5", best)
	}
}

func TestRobustVariancesRanking(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 1024
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Sin(2*math.Pi*float64(i)/50) + 0.05*rng.NormFloat64()
	}
	f := MustFilter(Daub8)
	levels := MaxLevel(n, f)
	m, _ := Transform(x, f, levels)
	vars := m.RobustVariances(16)
	if len(vars) != levels {
		t.Fatalf("got %d variances", len(vars))
	}
	best := 0
	for i, lv := range vars {
		if lv.Level != i+1 {
			t.Fatalf("level numbering broken")
		}
		if lv.Variance < 0 {
			t.Fatalf("negative variance at level %d", lv.Level)
		}
		if lv.Variance > vars[best].Variance {
			best = i
		}
	}
	// T=50 sits in [32, 64) → level 5.
	if vars[best].Level != 5 {
		t.Errorf("max-variance level = %d, want 5", vars[best].Level)
	}
}

func TestRobustVariancesResistOutliers(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n := 512
	clean := make([]float64, n)
	for i := range clean {
		clean[i] = math.Sin(2*math.Pi*float64(i)/50) + 0.05*rng.NormFloat64()
	}
	dirty := append([]float64(nil), clean...)
	for k := 0; k < n/50; k++ {
		dirty[rng.Intn(n)] += 30
	}
	f := MustFilter(Daub8)
	levels := MaxLevel(n, f)
	mc, _ := Transform(clean, f, levels)
	md, _ := Transform(dirty, f, levels)
	vc := mc.RobustVariances(16)
	vd := md.RobustVariances(16)
	// The dominant (periodic) level must stay the same despite spikes.
	argmax := func(v []LevelVariance) int {
		b := 0
		for i := range v {
			if v[i].Variance > v[b].Variance {
				b = i
			}
		}
		return v[b].Level
	}
	if argmax(vc) != argmax(vd) {
		t.Errorf("outliers changed the dominant level: %d vs %d", argmax(vc), argmax(vd))
	}
	// Classical variances, by contrast, inflate a lot at the spike-
	// dominated fine levels.
	cd := md.ClassicalVariances(16)
	if cd[0].Variance < 5*vd[0].Variance {
		t.Errorf("sanity: classical level-1 variance should blow up (classical %v robust %v)",
			cd[0].Variance, vd[0].Variance)
	}
}

func TestVarianceBoundaryExclusion(t *testing.T) {
	f := MustFilter(Daub8)
	n := 300
	x := make([]float64, n)
	for i := range x {
		x[i] = float64(i % 7)
	}
	m, _ := Transform(x, f, 3)
	vars := m.RobustVariances(16)
	for _, lv := range vars {
		lj := f.EquivalentWidth(lv.Level)
		if n-lj+1 >= 16 {
			if lv.Boundary != lj-1 || lv.Count != n-lj+1 {
				t.Errorf("level %d: boundary=%d count=%d, want %d/%d",
					lv.Level, lv.Boundary, lv.Count, lj-1, n-lj+1)
			}
		} else if lv.Boundary != 0 || lv.Count != n {
			t.Errorf("level %d: fallback not applied", lv.Level)
		}
	}
}

func TestDWTHaarKnown(t *testing.T) {
	// Periodic Haar DWT of {4,8,2,6}, level 1:
	// V[t] = (x[2t] + x[2t+1])/√2, W[t] = (x[2t+1] − x[2t])/√2
	// (sign convention depends on QMF; check energy and magnitudes).
	x := []float64{4, 8, 2, 6}
	d, err := DWTransform(x, MustFilter(Haar), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.W[0]) != 2 || len(d.V) != 2 {
		t.Fatalf("wrong sizes: %d %d", len(d.W[0]), len(d.V))
	}
	s2 := math.Sqrt2
	wantV := []float64{12 / s2, 8 / s2}
	wantWAbs := []float64{4 / s2, 4 / s2}
	for i := range wantV {
		if math.Abs(d.V[i]-wantV[i]) > 1e-12 {
			t.Errorf("V[%d] = %v, want %v", i, d.V[i], wantV[i])
		}
		if math.Abs(math.Abs(d.W[0][i])-wantWAbs[i]) > 1e-12 {
			t.Errorf("|W[%d]| = %v, want %v", i, math.Abs(d.W[0][i]), wantWAbs[i])
		}
	}
}

func TestDWTEnergyPreservation(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, k := range []Kind{Haar, Daub4, Daub8} {
		f := MustFilter(k)
		n := 256
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		d, err := DWTransform(x, f, 4)
		if err != nil {
			t.Fatal(err)
		}
		ex := sumSq(x)
		if e := d.Energy(); math.Abs(e-ex) > 1e-8*ex {
			t.Errorf("%v: DWT energy %v vs %v", k, e, ex)
		}
	}
}

func TestDWTTruncatesOddLengths(t *testing.T) {
	x := make([]float64, 103)
	for i := range x {
		x[i] = float64(i)
	}
	d, err := DWTransform(x, MustFilter(Haar), 3)
	if err != nil {
		t.Fatal(err)
	}
	// 103 → truncated to 96; level sizes 48, 24, 12.
	if len(d.W[0]) != 48 || len(d.W[1]) != 24 || len(d.W[2]) != 12 || len(d.V) != 12 {
		t.Errorf("level sizes: %d %d %d %d", len(d.W[0]), len(d.W[1]), len(d.W[2]), len(d.V))
	}
}

func TestDWTErrors(t *testing.T) {
	if _, err := DWTransform([]float64{1}, MustFilter(Haar), 1); err == nil {
		t.Error("too-short series should error")
	}
	if _, err := DWTransform(make([]float64, 64), MustFilter(Haar), 0); err == nil {
		t.Error("levels=0 should error")
	}
}

// Property: MODWT of a constant series has (near-)zero wavelet
// coefficients at every level — the wavelet filter kills constants.
func TestMODWTKillsConstantsProperty(t *testing.T) {
	f := func(cRaw int8, nRaw uint8) bool {
		n := 64 + int(nRaw)
		c := float64(cRaw)
		x := make([]float64, n)
		for i := range x {
			x[i] = c
		}
		m, err := Transform(x, MustFilter(Daub4), 3)
		if err != nil {
			return false
		}
		for _, w := range m.W {
			for _, v := range w {
				if math.Abs(v) > 1e-9*(math.Abs(c)+1) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: MODWT is linear.
func TestMODWTLinearityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 100
		x := make([]float64, n)
		y := make([]float64, n)
		z := make([]float64, n)
		a := rng.NormFloat64()
		for i := range x {
			x[i] = rng.NormFloat64()
			y[i] = rng.NormFloat64()
			z[i] = x[i] + a*y[i]
		}
		fl := MustFilter(Daub4)
		mx, _ := Transform(x, fl, 3)
		my, _ := Transform(y, fl, 3)
		mz, _ := Transform(z, fl, 3)
		for j := 0; j < 3; j++ {
			for t := 0; t < n; t++ {
				if math.Abs(mz.W[j][t]-(mx.W[j][t]+a*my.W[j][t])) > 1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func BenchmarkMODWT(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	x := make([]float64, 2048)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	f := MustFilter(Daub8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Transform(x, f, 8); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRobustVariances(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	x := make([]float64, 2048)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	f := MustFilter(Daub8)
	m, _ := Transform(x, f, 7)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.RobustVariances(16)
	}
}
