package wavelet

import (
	"math"
	"math/rand"
	"testing"

	"robustperiod/internal/stat/dist"
)

func TestMRAAdditivity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, k := range []Kind{Haar, Daub8} {
		f := MustFilter(k)
		n := 256
		x := make([]float64, n)
		for i := range x {
			x[i] = math.Sin(2*math.Pi*float64(i)/32) + 0.3*rng.NormFloat64()
		}
		m, err := Transform(x, f, 4)
		if err != nil {
			t.Fatal(err)
		}
		mra, err := m.MultiResolution()
		if err != nil {
			t.Fatal(err)
		}
		if len(mra.Details) != 4 {
			t.Fatalf("%d details", len(mra.Details))
		}
		for i := range x {
			sum := mra.Smooth[i]
			for _, d := range mra.Details {
				sum += d[i]
			}
			if math.Abs(sum-x[i]) > 1e-9 {
				t.Fatalf("%v: additivity broken at %d: %v vs %v", k, i, sum, x[i])
			}
		}
	}
}

func TestMRADetailIsolatesBand(t *testing.T) {
	// A period-32 sinusoid lives in level 5's octave [32,64); its MRA
	// detail must carry most of the energy.
	n := 512
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Sin(2 * math.Pi * float64(i) / 32)
	}
	m, err := Transform(x, MustFilter(Daub8), 6)
	if err != nil {
		t.Fatal(err)
	}
	mra, err := m.MultiResolution()
	if err != nil {
		t.Fatal(err)
	}
	energies := make([]float64, 6)
	for j, d := range mra.Details {
		energies[j] = sumSq(d)
	}
	best := 0
	for j := range energies {
		if energies[j] > energies[best] {
			best = j
		}
	}
	if best+1 != 5 {
		t.Errorf("dominant detail level %d, want 5 (energies %v)", best+1, energies)
	}
}

func TestMRARejectsReflected(t *testing.T) {
	x := make([]float64, 128)
	for i := range x {
		x[i] = float64(i % 7)
	}
	m, err := TransformReflected(x, MustFilter(Haar), 3)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Reflected() {
		t.Fatal("Reflected() should be true")
	}
	if _, err := m.MultiResolution(); err == nil {
		t.Error("MRA on reflected transform should error")
	}
}

func TestInversePanicsOnReflected(t *testing.T) {
	x := make([]float64, 128)
	m, _ := TransformReflected(x, MustFilter(Haar), 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.Inverse()
}

func TestRobustVariancesCI(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := 1024
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Sin(2*math.Pi*float64(i)/50) + 0.2*rng.NormFloat64()
	}
	m, err := Transform(x, MustFilter(Daub8), 6)
	if err != nil {
		t.Fatal(err)
	}
	cis := m.RobustVariancesCI(16, 0.05)
	if len(cis) != 6 {
		t.Fatalf("%d CIs", len(cis))
	}
	for _, ci := range cis {
		if ci.Lo > ci.Variance || ci.Hi < ci.Variance {
			t.Errorf("level %d: CI [%v,%v] excludes estimate %v", ci.Level, ci.Lo, ci.Hi, ci.Variance)
		}
		if ci.Lo < 0 {
			t.Errorf("level %d: negative lower bound", ci.Level)
		}
		if ci.EDOF < 1 {
			t.Errorf("level %d: EDOF %v < 1", ci.Level, ci.EDOF)
		}
	}
	// Coarser levels (fewer EDOF) must have relatively wider intervals.
	relWidth := func(ci VarianceCI) float64 {
		if ci.Variance == 0 {
			return 0
		}
		return (ci.Hi - ci.Lo) / ci.Variance
	}
	if relWidth(cis[5]) <= relWidth(cis[0]) {
		t.Errorf("level-6 CI (%v) should be relatively wider than level-1 (%v)",
			relWidth(cis[5]), relWidth(cis[0]))
	}
	// Bad alpha falls back without exploding.
	if got := m.RobustVariancesCI(16, 2); len(got) != 6 {
		t.Error("alpha fallback broken")
	}
}

// TestMODWTGaussianizes empirically verifies the paper's §3.3.1 claim
// (via its reference [35], Mallows: "linear processes are nearly
// Gaussian"): wavelet coefficients of heavy-tailed noise are closer to
// Gaussian than the raw series, because each coefficient is a weighted
// sum. The KS distance to a fitted normal must shrink at coarser
// levels, where the effective filters are longer.
func TestMODWTGaussianizes(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := 4096
	x := make([]float64, n)
	for i := range x {
		// Student-t(3)-like heavy tails: normal over sqrt(chi2/df).
		den := math.Sqrt((sq(rng.NormFloat64()) + sq(rng.NormFloat64()) + sq(rng.NormFloat64())) / 3)
		if den < 0.05 {
			den = 0.05
		}
		x[i] = rng.NormFloat64() / den
	}
	m, err := Transform(x, MustFilter(Daub8), 5)
	if err != nil {
		t.Fatal(err)
	}
	ksOf := func(v []float64) float64 {
		var mean, sd float64
		for _, u := range v {
			mean += u
		}
		mean /= float64(len(v))
		for _, u := range v {
			sd += (u - mean) * (u - mean)
		}
		sd = math.Sqrt(sd / float64(len(v)))
		return dist.KSStatisticNormal(v, mean, sd)
	}
	raw := ksOf(x)
	level4 := ksOf(m.W[3])
	if level4 >= raw {
		t.Errorf("level-4 coefficients (D=%v) should be more Gaussian than raw data (D=%v)", level4, raw)
	}
	// And the coarser the level, the more Gaussian (longer filters).
	level1 := ksOf(m.W[0])
	if level4 >= level1 {
		t.Errorf("level 4 (D=%v) should beat level 1 (D=%v)", level4, level1)
	}
}

func sq(v float64) float64 { return v * v }

func TestChiSquareQuantile(t *testing.T) {
	// Known values: χ²_1(0.95) ≈ 3.841, χ²_10(0.95) ≈ 18.307.
	for _, c := range []struct{ p, k, want float64 }{
		{0.95, 1, 3.841458820694124},
		{0.95, 10, 18.307038053275146},
		{0.05, 10, 3.940299136075622},
	} {
		if got := chiSquareQuantile(c.p, c.k); math.Abs(got-c.want) > 1e-6 {
			t.Errorf("Q_%v(%v) = %v, want %v", c.k, c.p, got, c.want)
		}
	}
	if chiSquareQuantile(0, 5) != 0 {
		t.Error("p=0 should give 0")
	}
	if !math.IsInf(chiSquareQuantile(1, 5), 1) {
		t.Error("p=1 should give +Inf")
	}
}
