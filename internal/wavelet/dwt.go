package wavelet

import "fmt"

// DWT holds a classical decimated discrete wavelet transform with
// periodic boundary handling. Level j holds ⌊N/2^j⌋ coefficients.
// It is the substrate of the Wavelet-Fisher baseline (Almasri 2011).
type DWT struct {
	Filter *Filter
	Levels int
	W      [][]float64 // W[j-1] = level-j detail coefficients
	V      []float64   // final approximation coefficients
}

// DWTransform computes a level-J periodic DWT of x. The series is
// truncated to a multiple of 2^J first (the decimated transform halves
// the length at each stage). It errors if the truncated series is too
// short for the requested depth.
func DWTransform(x []float64, f *Filter, levels int) (*DWT, error) {
	if levels < 1 {
		return nil, fmt.Errorf("wavelet: levels must be >= 1, got %d", levels)
	}
	block := 1 << uint(levels)
	n := (len(x) / block) * block
	if n == 0 {
		return nil, fmt.Errorf("wavelet: series length %d too short for %d DWT levels", len(x), levels)
	}
	v := append([]float64(nil), x[:n]...)
	out := &DWT{Filter: f, Levels: levels}
	out.W = make([][]float64, levels)
	L := f.Len()
	for j := 1; j <= levels; j++ {
		half := len(v) / 2
		wj := make([]float64, half)
		vj := make([]float64, half)
		for t := 0; t < half; t++ {
			var sw, sv float64
			idx := 2*t + 1
			for l := 0; l < L; l++ {
				sw += f.h[l] * v[idx]
				sv += f.g[l] * v[idx]
				idx--
				if idx < 0 {
					idx += len(v)
				}
			}
			wj[t] = sw
			vj[t] = sv
		}
		out.W[j-1] = wj
		v = vj
	}
	out.V = v
	return out, nil
}

// Energy returns the total energy in the transform, which equals the
// energy of the (truncated) input by orthonormality.
func (d *DWT) Energy() float64 {
	e := sumSq(d.V)
	for _, w := range d.W {
		e += sumSq(w)
	}
	return e
}
