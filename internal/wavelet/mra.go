package wavelet

import (
	"fmt"
	"math"

	"robustperiod/internal/stat/dist"
)

// MRA is a multiresolution analysis: the additive decomposition of the
// original series into per-level detail series and a final smooth,
//
//	x_t = Σ_j D_j(t) + S_J(t),
//
// obtained by inverting the MODWT with all but one level's
// coefficients zeroed (Percival & Walden §5.5). Each detail isolates
// the series' variation in one octave band in the time domain.
type MRA struct {
	Details [][]float64 // Details[j-1] = level-j detail series
	Smooth  []float64   // level-J smooth
}

// MultiResolution computes the MRA of the transform. It is only
// available for circular (invertible) transforms.
func (m *MODWT) MultiResolution() (*MRA, error) {
	if m.reflected {
		return nil, fmt.Errorf("wavelet: MRA requires a circular (invertible) transform")
	}
	out := &MRA{Details: make([][]float64, m.Levels)}
	// Invert with only level j's wavelet coefficients retained.
	zeros := make([]float64, m.N)
	withOnly := func(keepW int, keepV bool) []float64 {
		saveW := m.W
		saveV := m.V
		wv := make([][]float64, m.Levels)
		for j := range wv {
			if j == keepW {
				wv[j] = saveW[j]
			} else {
				wv[j] = zeros
			}
		}
		m.W = wv
		if !keepV {
			m.V = zeros
		}
		x := m.Inverse()
		m.W = saveW
		m.V = saveV
		return x
	}
	for j := 0; j < m.Levels; j++ {
		out.Details[j] = withOnly(j, false)
	}
	out.Smooth = withOnly(-1, true)
	return out, nil
}

// VarianceCI augments a level variance with an approximate
// 100(1−α)% confidence interval.
type VarianceCI struct {
	LevelVariance
	Lo, Hi float64
	EDOF   float64 // equivalent degrees of freedom used
}

// RobustVariancesCI returns the robust per-level wavelet variances
// with chi-square confidence intervals based on the band-limited
// equivalent degrees of freedom η_j = max(M_j / 2^j, 1) (Percival &
// Walden Eq. 313c): the interval is
//
//	[ η ν² / Q_η(1−α/2) ,  η ν² / Q_η(α/2) ]
//
// where Q_η is the χ²_η quantile function.
func (m *MODWT) RobustVariancesCI(minCount int, alpha float64) []VarianceCI {
	if alpha <= 0 || alpha >= 1 {
		alpha = 0.05
	}
	vars := m.RobustVariances(minCount)
	out := make([]VarianceCI, len(vars))
	for i, lv := range vars {
		eta := math.Max(float64(lv.Count)/math.Pow(2, float64(lv.Level)), 1)
		qLo := chiSquareQuantile(1-alpha/2, eta)
		qHi := chiSquareQuantile(alpha/2, eta)
		ci := VarianceCI{LevelVariance: lv, EDOF: eta}
		if qLo > 0 {
			ci.Lo = eta * lv.Variance / qLo
		}
		if qHi > 0 {
			ci.Hi = eta * lv.Variance / qHi
		} else {
			ci.Hi = math.Inf(1)
		}
		out[i] = ci
	}
	return out
}

// chiSquareQuantile inverts the χ² CDF by bisection.
func chiSquareQuantile(p, k float64) float64 {
	if p <= 0 {
		return 0
	}
	if p >= 1 {
		return math.Inf(1)
	}
	lo, hi := 0.0, k+1
	for dist.ChiSquareCDF(hi, k) < p {
		hi *= 2
		if hi > 1e12 {
			break
		}
	}
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if dist.ChiSquareCDF(mid, k) < p {
			lo = mid
		} else {
			hi = mid
		}
		if hi-lo < 1e-10*(1+hi) {
			break
		}
	}
	return (lo + hi) / 2
}
