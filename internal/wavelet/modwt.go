package wavelet

import (
	"fmt"
	"math"

	"robustperiod/internal/faults"
	"robustperiod/internal/stat/robust"
	"robustperiod/internal/trace"
)

// MODWT holds a maximal overlap discrete wavelet transform of a series:
// J levels of wavelet coefficients (each the same length as the input)
// plus the final level's scaling coefficients.
type MODWT struct {
	Filter    *Filter
	Levels    int
	W         [][]float64 // W[j-1] = level-j wavelet coefficients, len N each
	V         []float64   // level-J scaling coefficients, len N
	N         int
	nonZero   bool
	reflected bool
}

// MaxLevel returns the deepest MODWT level for which the level's
// equivalent filter still fits inside the series (L_j <= N), i.e. at
// least one non-boundary coefficient exists for the unbiased variance.
func MaxLevel(n int, f *Filter) int {
	j := 0
	for f.EquivalentWidth(j+1) <= n {
		j++
		if j >= 30 {
			break
		}
	}
	return j
}

// Transform computes a level-J MODWT of x with filter f using the
// pyramid algorithm with circular boundary treatment. It errors if
// J < 1, if x is shorter than the base filter, or if J exceeds the
// depth supported by len(x) for power-of-two scale growth.
func Transform(x []float64, f *Filter, levels int) (*MODWT, error) {
	n := len(x)
	if levels < 1 {
		return nil, fmt.Errorf("wavelet: levels must be >= 1, got %d", levels)
	}
	if n < f.Len() {
		return nil, fmt.Errorf("wavelet: series length %d shorter than filter %d", n, f.Len())
	}
	if (1 << uint(levels)) > n*2 {
		return nil, fmt.Errorf("wavelet: level %d too deep for series length %d", levels, n)
	}
	L := f.Len()
	gt := make([]float64, L) // MODWT scaling filter g/√2
	ht := make([]float64, L) // MODWT wavelet filter h/√2
	for l := 0; l < L; l++ {
		gt[l] = f.g[l] / math.Sqrt2
		ht[l] = f.h[l] / math.Sqrt2
	}
	out := &MODWT{Filter: f, Levels: levels, N: n}
	out.W = make([][]float64, levels)
	v := append([]float64(nil), x...)
	for j := 1; j <= levels; j++ {
		stride := 1 << uint(j-1)
		wj := make([]float64, n)
		vj := make([]float64, n)
		for t := 0; t < n; t++ {
			var sw, sv float64
			idx := t
			for l := 0; l < L; l++ {
				sw += ht[l] * v[idx]
				sv += gt[l] * v[idx]
				idx -= stride
				if idx < 0 {
					idx += n
					// stride can exceed n for deep levels; fold fully.
					for idx < 0 {
						idx += n
					}
				}
			}
			wj[t] = sw
			vj[t] = sv
		}
		out.W[j-1] = wj
		v = vj
	}
	out.V = v
	out.nonZero = true
	return out, nil
}

// TransformTraced is Transform instrumented with the pipeline trace:
// the pyramid computation is timed under trace.StageMODWT, and the
// stage records the levels computed and the total boundary
// coefficients that the unbiased wavelet variance will exclude
// (each level loses L_j − 1 coefficients, capped at the series
// length). A nil tr makes this exactly Transform.
func TransformTraced(x []float64, f *Filter, levels int, tr *trace.Trace) (*MODWT, error) {
	// Fault point "wavelet/transform": an allocation-failure surrogate
	// for the pyramid buffers (J levels × N coefficients each) — the
	// pipeline degrades to direct single-period detection on it.
	if err := faults.Check(faults.PointWaveletTransfrm); err != nil {
		return nil, err
	}
	st := tr.StartStage(trace.StageMODWT)
	m, err := Transform(x, f, levels)
	st.End()
	if err != nil || !tr.Enabled() {
		return m, err
	}
	tr.Count(trace.StageMODWT, "levels", int64(levels))
	boundary := int64(0)
	for j := 1; j <= levels; j++ {
		b := f.EquivalentWidth(j) - 1
		if b > len(x) {
			b = len(x)
		}
		boundary += int64(b)
	}
	tr.Count(trace.StageMODWT, "boundary_dropped", boundary)
	return m, nil
}

// TransformReflected computes a MODWT of x with reflection boundary
// treatment: the series is extended by its mirror image to length 2N,
// transformed circularly, and the first N coefficients of every level
// are returned. The circular wrap point then joins x with its own
// reflection — a smooth continuation — instead of joining x[N−1] to
// x[0] with an arbitrary phase jump, which for wide equivalent filters
// (deep levels) otherwise distorts most coefficients. The result is
// not energy-preserving or invertible; use Transform when you need
// reconstruction.
func TransformReflected(x []float64, f *Filter, levels int) (*MODWT, error) {
	// Fault point "wavelet/reflect": the reflection-extended transform
	// doubles the working set, so it is the likeliest allocation to
	// fail first; the pipeline just skips the boundary fallback.
	if err := faults.Check(faults.PointWaveletReflect); err != nil {
		return nil, err
	}
	n := len(x)
	ext := make([]float64, 2*n)
	copy(ext, x)
	for i := 0; i < n; i++ {
		ext[n+i] = x[n-1-i]
	}
	m, err := Transform(ext, f, levels)
	if err != nil {
		return nil, err
	}
	for j := range m.W {
		m.W[j] = m.W[j][:n]
	}
	m.V = m.V[:n]
	m.N = n
	m.reflected = true
	return m, nil
}

// Reflected reports whether the transform used reflection boundary
// treatment (in which case Inverse is unavailable).
func (m *MODWT) Reflected() bool { return m.reflected }

// Inverse reconstructs the original series from the transform. It is
// the exact inverse of Transform up to floating point error. It
// panics on a reflection-boundary transform, which is not invertible
// from the retained coefficients.
func (m *MODWT) Inverse() []float64 {
	if m.reflected {
		panic("wavelet: reflected MODWT is not invertible")
	}
	L := m.Filter.Len()
	gt := make([]float64, L)
	ht := make([]float64, L)
	for l := 0; l < L; l++ {
		gt[l] = m.Filter.g[l] / math.Sqrt2
		ht[l] = m.Filter.h[l] / math.Sqrt2
	}
	v := append([]float64(nil), m.V...)
	n := m.N
	for j := m.Levels; j >= 1; j-- {
		stride := 1 << uint(j-1)
		w := m.W[j-1]
		prev := make([]float64, n)
		for t := 0; t < n; t++ {
			var s float64
			idx := t
			for l := 0; l < L; l++ {
				s += ht[l]*w[idx] + gt[l]*v[idx]
				idx += stride
				for idx >= n {
					idx -= n
				}
			}
			prev[t] = s
		}
		v = prev
	}
	return v
}

// Energy returns Σ over all wavelet levels of ‖W_j‖² plus ‖V_J‖².
// By the energy-preservation property of the MODWT this equals ‖x‖².
func (m *MODWT) Energy() float64 {
	e := sumSq(m.V)
	for _, w := range m.W {
		e += sumSq(w)
	}
	return e
}

// LevelVariance describes one level's robust unbiased wavelet variance
// and how trustworthy it is.
type LevelVariance struct {
	Level    int     // 1-based level j
	Variance float64 // robust unbiased wavelet variance ν²_j (Eq. 4)
	Boundary int     // number of excluded boundary coefficients L_j − 1
	Count    int     // M_j = N − L_j + 1 non-boundary coefficients used
}

// RobustVariances returns the per-level robust unbiased wavelet
// variances of the transform (Eq. 4 of the paper): the biweight
// midvariance of each level's non-boundary coefficients. Levels whose
// equivalent filter no longer leaves minCount non-boundary
// coefficients fall back to using all coefficients (biased but usable)
// and report Count accordingly.
func (m *MODWT) RobustVariances(minCount int) []LevelVariance {
	if minCount < 2 {
		minCount = 2
	}
	out := make([]LevelVariance, m.Levels)
	for j := 1; j <= m.Levels; j++ {
		lj := m.Filter.EquivalentWidth(j)
		w := m.W[j-1]
		start := lj - 1
		if len(w)-start < minCount {
			start = 0
		}
		seg := w[start:]
		out[j-1] = LevelVariance{
			Level:    j,
			Variance: robust.BiweightMidvariance(seg),
			Boundary: start,
			Count:    len(seg),
		}
	}
	return out
}

// ClassicalVariances mirrors RobustVariances but uses the ordinary
// sample variance; used by the non-robust ablation (NR-RobustPeriod).
func (m *MODWT) ClassicalVariances(minCount int) []LevelVariance {
	if minCount < 2 {
		minCount = 2
	}
	out := make([]LevelVariance, m.Levels)
	for j := 1; j <= m.Levels; j++ {
		lj := m.Filter.EquivalentWidth(j)
		w := m.W[j-1]
		start := lj - 1
		if len(w)-start < minCount {
			start = 0
		}
		seg := w[start:]
		out[j-1] = LevelVariance{
			Level:    j,
			Variance: robust.Variance(seg),
			Boundary: start,
			Count:    len(seg),
		}
	}
	return out
}
