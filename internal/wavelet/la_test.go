package wavelet

import (
	"math"
	"testing"
)

func TestLAFilterEndToEnd(t *testing.T) {
	f := MustFilter(LA8)
	n := 256
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Sin(2 * math.Pi * float64(i) / 32)
	}
	m, err := Transform(x, f, 5)
	if err != nil {
		t.Fatal(err)
	}
	if e := m.Energy(); math.Abs(e-sumSq(x)) > 1e-8*sumSq(x) {
		t.Errorf("LA8 energy %v vs %v", e, sumSq(x))
	}
	y := m.Inverse()
	for i := range x {
		if math.Abs(x[i]-y[i]) > 1e-9 {
			t.Fatalf("LA8 round trip broke at %d", i)
		}
	}
}
