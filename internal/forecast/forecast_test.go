package forecast

import (
	"math"
	"math/rand"
	"testing"
)

func seasonalSeries(n int, periods []int, noise float64, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	x := make([]float64, n)
	for i := range x {
		for _, p := range periods {
			x[i] += math.Sin(2 * math.Pi * float64(i) / float64(p))
		}
		x[i] += noise * rng.NormFloat64()
	}
	return x
}

func TestNelderMeadQuadratic(t *testing.T) {
	f := func(x []float64) float64 {
		return (x[0]-3)*(x[0]-3) + 2*(x[1]+1)*(x[1]+1)
	}
	x, v := NelderMead(f, []float64{0, 0}, nil, 0)
	if math.Abs(x[0]-3) > 1e-4 || math.Abs(x[1]+1) > 1e-4 || v > 1e-7 {
		t.Errorf("minimum at %v (v=%v), want (3,-1)", x, v)
	}
}

func TestNelderMeadRosenbrock(t *testing.T) {
	f := func(x []float64) float64 {
		a := 1 - x[0]
		b := x[1] - x[0]*x[0]
		return a*a + 100*b*b
	}
	x, v := NelderMead(f, []float64{-1.2, 1}, nil, 20000)
	if v > 1e-5 {
		t.Errorf("Rosenbrock not solved: x=%v v=%v", x, v)
	}
}

func TestNelderMeadRespectsBounds(t *testing.T) {
	f := func(x []float64) float64 { return -x[0] } // wants x→∞
	bounds := [][2]float64{{0, 1}}
	x, _ := NelderMead(f, []float64{0.5}, bounds, 500)
	if x[0] > 1+1e-12 {
		t.Errorf("bound violated: %v", x[0])
	}
}

func TestNelderMeadEmpty(t *testing.T) {
	_, v := NelderMead(func([]float64) float64 { return 7 }, nil, nil, 10)
	if v != 7 {
		t.Error("dim-0 should just evaluate")
	}
}

func TestMetrics(t *testing.T) {
	f := []float64{1, 2, 3}
	y := []float64{1, 2, 5}
	if got := MAE(f, y); math.Abs(got-2.0/3) > 1e-12 {
		t.Errorf("MAE = %v", got)
	}
	if got := RMSE(f, y); math.Abs(got-math.Sqrt(4.0/3)) > 1e-12 {
		t.Errorf("RMSE = %v", got)
	}
	if !math.IsNaN(RMSE(nil, nil)) || !math.IsNaN(MAE(nil, nil)) {
		t.Error("empty inputs should give NaN")
	}
}

func TestMASE(t *testing.T) {
	// Train with seasonal-naive error 2 per step at period 2.
	train := []float64{0, 0, 2, 2, 4, 4, 6, 6}
	truth := []float64{8, 8}
	perfect := []float64{8, 8}
	if got := MASE(perfect, truth, train, 2); got != 0 {
		t.Errorf("perfect forecast MASE %v", got)
	}
	// Forecast off by exactly the naive scale (2) → MASE 1.
	naiveLike := []float64{6, 6}
	if got := MASE(naiveLike, truth, train, 2); math.Abs(got-1) > 1e-12 {
		t.Errorf("naive-equivalent MASE %v, want 1", got)
	}
	if !math.IsNaN(MASE(perfect, truth, []float64{1}, 2)) {
		t.Error("too-short train should give NaN")
	}
	if !math.IsNaN(MASE(perfect, truth, []float64{3, 3, 3, 3}, 1)) {
		t.Error("constant train (zero scale) should give NaN")
	}
}

func TestMASEGradesForecasters(t *testing.T) {
	x := seasonalSeries(600, []int{24}, 0.2, 9)
	train, test := x[:480], x[480:]
	good, err := MultiSeasonal{Periods: []int{24}}.Forecast(train, len(test))
	if err != nil {
		t.Fatal(err)
	}
	bad, _ := Mean{}.Forecast(train, len(test))
	mGood := MASE(good, test, train, 24)
	mBad := MASE(bad, test, train, 24)
	if mGood >= mBad {
		t.Errorf("seasonal model MASE %v should beat mean %v", mGood, mBad)
	}
	if mGood > 1 {
		t.Errorf("seasonal model MASE %v should beat the naive benchmark", mGood)
	}
}

func TestMeanForecaster(t *testing.T) {
	fc, err := Mean{}.Forecast([]float64{1, 2, 3}, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range fc {
		if v != 2 {
			t.Errorf("mean forecast %v", v)
		}
	}
	if _, err := (Mean{}).Forecast(nil, 2); err == nil {
		t.Error("empty train should error")
	}
}

func TestSeasonalNaive(t *testing.T) {
	train := []float64{1, 2, 3, 4, 1, 2, 3, 4}
	fc, err := SeasonalNaive{Period: 4}.Forecast(train, 6)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 2, 3, 4, 1, 2}
	for i := range want {
		if fc[i] != want[i] {
			t.Fatalf("got %v want %v", fc, want)
		}
	}
	if _, err := (SeasonalNaive{Period: 100}).Forecast(train, 2); err == nil {
		t.Error("oversized period should error")
	}
}

func TestMultiSeasonalRecoversCleanPattern(t *testing.T) {
	periods := []int{12, 48}
	x := seasonalSeries(600, periods, 0.05, 1)
	train, test := x[:480], x[480:]
	fc, err := MultiSeasonal{Periods: periods}.Forecast(train, len(test))
	if err != nil {
		t.Fatal(err)
	}
	if e := RMSE(fc, test); e > 0.3 {
		t.Errorf("RMSE %v too high for near-clean multi-seasonal data", e)
	}
}

func TestMultiSeasonalBeatsMeanAndWrongPeriod(t *testing.T) {
	periods := []int{24, 168}
	x := seasonalSeries(1680, periods, 0.2, 2)
	train, test := x[:840], x[840:1008]
	right, err := MultiSeasonal{Periods: periods}.Forecast(train, len(test))
	if err != nil {
		t.Fatal(err)
	}
	wrong, err := MultiSeasonal{Periods: []int{37}}.Forecast(train, len(test))
	if err != nil {
		t.Fatal(err)
	}
	meanFc, _ := Mean{}.Forecast(train, len(test))
	eRight := RMSE(right, test)
	eWrong := RMSE(wrong, test)
	eMean := RMSE(meanFc, test)
	if eRight >= eWrong || eRight >= eMean {
		t.Errorf("correct periods should win: right=%v wrong=%v mean=%v", eRight, eWrong, eMean)
	}
}

func TestMultiSeasonalHandlesTrend(t *testing.T) {
	n := 400
	x := make([]float64, n)
	for i := range x {
		x[i] = 0.02*float64(i) + math.Sin(2*math.Pi*float64(i)/20)
	}
	train, test := x[:320], x[320:]
	fc, err := MultiSeasonal{Periods: []int{20}}.Forecast(train, len(test))
	if err != nil {
		t.Fatal(err)
	}
	if e := RMSE(fc, test); e > 0.6 {
		t.Errorf("trend+seasonal RMSE %v", e)
	}
}

func TestMultiSeasonalDropsInvalidPeriods(t *testing.T) {
	x := seasonalSeries(100, []int{10}, 0.05, 3)
	// Period 90 can't fit twice in 100 points; must be ignored, not fatal.
	fc, err := MultiSeasonal{Periods: []int{10, 90}}.Forecast(x[:80], 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(fc) != 20 {
		t.Fatal("wrong horizon")
	}
}

func TestMultiSeasonalTooShort(t *testing.T) {
	if _, err := (MultiSeasonal{}).Forecast(make([]float64, 4), 2); err == nil {
		t.Error("expected error")
	}
}

func TestHoltWinters(t *testing.T) {
	x := seasonalSeries(300, []int{25}, 0.1, 4)
	fc, err := HoltWinters{Period: 25}.Forecast(x[:250], 50)
	if err != nil {
		t.Fatal(err)
	}
	if e := RMSE(fc, x[250:]); e > 0.5 {
		t.Errorf("HW RMSE %v", e)
	}
	if _, err := (HoltWinters{Period: 1}).Forecast(x, 5); err == nil {
		t.Error("period 1 should error")
	}
}

func TestFourierRegressionCleanFit(t *testing.T) {
	periods := []int{12, 60}
	x := seasonalSeries(600, periods, 0.02, 5)
	train, test := x[:480], x[480:]
	fc, err := FourierRegression{Periods: periods}.Forecast(train, len(test))
	if err != nil {
		t.Fatal(err)
	}
	if e := RMSE(fc, test); e > 0.15 {
		t.Errorf("Fourier RMSE %v", e)
	}
}

func TestFourierRegressionErrors(t *testing.T) {
	if _, err := (FourierRegression{}).Forecast(make([]float64, 4), 2); err == nil {
		t.Error("short series should error")
	}
	// Too many regressors for the sample.
	fr := FourierRegression{Periods: []int{50, 60, 70}, Harmonics: 10}
	if _, err := fr.Forecast(seasonalSeries(40, []int{10}, 0, 6), 5); err == nil {
		t.Error("over-parameterized fit should error")
	}
}

func TestSolveCholeskyKnownSystem(t *testing.T) {
	a := [][]float64{{4, 2}, {2, 3}}
	b := []float64{10, 8}
	x, err := solveCholesky(a, b)
	if err != nil {
		t.Fatal(err)
	}
	// Solution of [[4,2],[2,3]] x = [10,8] is x = (1.75, 1.5).
	if math.Abs(x[0]-1.75) > 1e-12 || math.Abs(x[1]-1.5) > 1e-12 {
		t.Errorf("x = %v", x)
	}
	if _, err := solveCholesky([][]float64{{-1}}, []float64{1}); err == nil {
		t.Error("indefinite matrix should error")
	}
}

func BenchmarkMultiSeasonalFit(b *testing.B) {
	x := seasonalSeries(840, []int{12, 24, 168}, 0.2, 7)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (MultiSeasonal{Periods: []int{12, 24, 168}}).Forecast(x, 168); err != nil {
			b.Fatal(err)
		}
	}
}
