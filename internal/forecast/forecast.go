// Package forecast provides the multi-seasonal forecasting substrate
// for the paper's downstream task (Table 6). The paper feeds detected
// periods into TBATS; we substitute a multi-seasonal exponential
// smoothing model with per-period seasonal states and a damped trend,
// with smoothing parameters fitted by Nelder-Mead — the property Table
// 6 measures (wrong or missing periods degrade forecasts) is preserved
// by any competent multi-seasonal model. A Fourier-regression
// forecaster, classic Holt-Winters and a seasonal-naive baseline
// complete the toolbox.
package forecast

import (
	"fmt"
	"math"
)

// Forecaster fits on a training series and predicts h future points.
type Forecaster interface {
	Name() string
	// Forecast trains on train and returns h predictions. It returns
	// an error if the model cannot be fitted (e.g. period too long).
	Forecast(train []float64, h int) ([]float64, error)
}

// RMSE returns the root mean squared error between forecast and truth.
func RMSE(forecast, truth []float64) float64 {
	n := min(len(forecast), len(truth))
	if n == 0 {
		return math.NaN()
	}
	s := 0.0
	for i := 0; i < n; i++ {
		d := forecast[i] - truth[i]
		s += d * d
	}
	return math.Sqrt(s / float64(n))
}

// MAE returns the mean absolute error between forecast and truth.
func MAE(forecast, truth []float64) float64 {
	n := min(len(forecast), len(truth))
	if n == 0 {
		return math.NaN()
	}
	s := 0.0
	for i := 0; i < n; i++ {
		s += math.Abs(forecast[i] - truth[i])
	}
	return s / float64(n)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// MASE returns the mean absolute scaled error (Hyndman & Koehler
// 2006): the forecast MAE divided by the in-sample MAE of the
// seasonal-naive method at the given period (period <= 1 scales by the
// naive one-step method). A value below 1 means the forecast beats
// the naive benchmark. It returns NaN when the scale is degenerate.
func MASE(forecast, truth, train []float64, period int) float64 {
	if period < 1 {
		period = 1
	}
	if len(train) <= period {
		return math.NaN()
	}
	scale := 0.0
	for i := period; i < len(train); i++ {
		scale += math.Abs(train[i] - train[i-period])
	}
	scale /= float64(len(train) - period)
	if scale == 0 {
		return math.NaN()
	}
	return MAE(forecast, truth) / scale
}

// Mean is the no-seasonality fallback: it predicts the training mean.
type Mean struct{}

// Name implements Forecaster.
func (Mean) Name() string { return "mean" }

// Forecast implements Forecaster.
func (Mean) Forecast(train []float64, h int) ([]float64, error) {
	if len(train) == 0 {
		return nil, fmt.Errorf("forecast: empty training series")
	}
	m := 0.0
	for _, v := range train {
		m += v
	}
	m /= float64(len(train))
	out := make([]float64, h)
	for i := range out {
		out[i] = m
	}
	return out, nil
}

// SeasonalNaive repeats the last observed cycle of the given period.
type SeasonalNaive struct {
	Period int
}

// Name implements Forecaster.
func (SeasonalNaive) Name() string { return "seasonal-naive" }

// Forecast implements Forecaster.
func (f SeasonalNaive) Forecast(train []float64, h int) ([]float64, error) {
	n := len(train)
	if f.Period < 1 || f.Period > n {
		return nil, fmt.Errorf("forecast: period %d invalid for n=%d", f.Period, n)
	}
	out := make([]float64, h)
	for i := range out {
		out[i] = train[n-f.Period+(i%f.Period)]
	}
	return out, nil
}
