package forecast

import (
	"math"
	"sort"
)

// NelderMead minimizes f over R^dim starting from x0 using the
// standard downhill-simplex method with adaptive coefficients. bounds,
// when non-nil, clamps every candidate coordinate into
// [bounds[i][0], bounds[i][1]] before evaluation, which is how the
// smoothing parameters stay in (0, 1). It returns the best point and
// its value.
func NelderMead(f func([]float64) float64, x0 []float64, bounds [][2]float64, maxIter int) ([]float64, float64) {
	dim := len(x0)
	if dim == 0 {
		return nil, f(nil)
	}
	if maxIter <= 0 {
		maxIter = 400 * dim
	}
	clamp := func(x []float64) {
		if bounds == nil {
			return
		}
		for i := range x {
			if x[i] < bounds[i][0] {
				x[i] = bounds[i][0]
			}
			if x[i] > bounds[i][1] {
				x[i] = bounds[i][1]
			}
		}
	}
	type vertex struct {
		x []float64
		v float64
	}
	eval := func(x []float64) vertex {
		clamp(x)
		return vertex{x, f(x)}
	}
	simplex := make([]vertex, dim+1)
	simplex[0] = eval(append([]float64(nil), x0...))
	for i := 0; i < dim; i++ {
		p := append([]float64(nil), x0...)
		step := 0.1
		if p[i] != 0 {
			step = 0.1 * math.Abs(p[i])
		}
		p[i] += step
		simplex[i+1] = eval(p)
	}
	const (
		alpha = 1.0 // reflection
		gamma = 2.0 // expansion
		rho   = 0.5 // contraction
		sigma = 0.5 // shrink
	)
	for iter := 0; iter < maxIter; iter++ {
		sort.Slice(simplex, func(a, b int) bool { return simplex[a].v < simplex[b].v })
		if math.Abs(simplex[dim].v-simplex[0].v) < 1e-12*(math.Abs(simplex[0].v)+1e-12) {
			break
		}
		// Centroid of all but the worst.
		cen := make([]float64, dim)
		for _, vx := range simplex[:dim] {
			for i := range cen {
				cen[i] += vx.x[i]
			}
		}
		for i := range cen {
			cen[i] /= float64(dim)
		}
		worst := simplex[dim]
		refl := make([]float64, dim)
		for i := range refl {
			refl[i] = cen[i] + alpha*(cen[i]-worst.x[i])
		}
		r := eval(refl)
		switch {
		case r.v < simplex[0].v:
			exp := make([]float64, dim)
			for i := range exp {
				exp[i] = cen[i] + gamma*(refl[i]-cen[i])
			}
			if e := eval(exp); e.v < r.v {
				simplex[dim] = e
			} else {
				simplex[dim] = r
			}
		case r.v < simplex[dim-1].v:
			simplex[dim] = r
		default:
			con := make([]float64, dim)
			for i := range con {
				con[i] = cen[i] + rho*(worst.x[i]-cen[i])
			}
			if c := eval(con); c.v < worst.v {
				simplex[dim] = c
			} else {
				for j := 1; j <= dim; j++ {
					for i := range simplex[j].x {
						simplex[j].x[i] = simplex[0].x[i] + sigma*(simplex[j].x[i]-simplex[0].x[i])
					}
					simplex[j] = eval(simplex[j].x)
				}
			}
		}
	}
	sort.Slice(simplex, func(a, b int) bool { return simplex[a].v < simplex[b].v })
	return simplex[0].x, simplex[0].v
}
