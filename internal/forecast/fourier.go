package forecast

import (
	"fmt"
	"math"
)

// FourierRegression forecasts with a deterministic harmonic model:
// ordinary least squares on [1, t, cos/sin harmonics for each period].
// It is the fully deterministic cousin of the smoothing model — useful
// when the seasonal pattern is stable over the training window.
type FourierRegression struct {
	// Periods lists the seasonal period lengths.
	Periods []int
	// Harmonics per period; <= 0 means min(3, period/2).
	Harmonics int
	// Ridge adds an L2 penalty for numerical stability; <= 0 means 1e-8.
	Ridge float64
}

// Name implements Forecaster.
func (FourierRegression) Name() string { return "fourier-regression" }

// Forecast implements Forecaster.
func (f FourierRegression) Forecast(train []float64, h int) ([]float64, error) {
	n := len(train)
	if n < 8 {
		return nil, fmt.Errorf("forecast: training series too short (%d)", n)
	}
	ridge := f.Ridge
	if ridge <= 0 {
		ridge = 1e-8
	}
	design := f.designRow
	// Count columns.
	cols := len(design(0, n))
	if cols >= n {
		return nil, fmt.Errorf("forecast: %d regressors for %d observations", cols, n)
	}
	// Normal equations with ridge.
	ata := make([][]float64, cols)
	for i := range ata {
		ata[i] = make([]float64, cols)
	}
	atb := make([]float64, cols)
	for t := 0; t < n; t++ {
		row := design(t, n)
		for i := 0; i < cols; i++ {
			atb[i] += row[i] * train[t]
			for j := i; j < cols; j++ {
				ata[i][j] += row[i] * row[j]
			}
		}
	}
	for i := 0; i < cols; i++ {
		ata[i][i] += ridge
		for j := 0; j < i; j++ {
			ata[i][j] = ata[j][i]
		}
	}
	beta, err := solveCholesky(ata, atb)
	if err != nil {
		return nil, err
	}
	out := make([]float64, h)
	for k := 0; k < h; k++ {
		row := design(n+k, n)
		v := 0.0
		for i := range row {
			v += beta[i] * row[i]
		}
		out[k] = v
	}
	return out, nil
}

// designRow builds the regression row for time t (time is scaled by
// the training length so the trend coefficient stays well-conditioned
// when extrapolating).
func (f FourierRegression) designRow(t, n int) []float64 {
	row := []float64{1, float64(t) / float64(n)}
	for _, p := range f.Periods {
		if p < 2 {
			continue
		}
		k := f.Harmonics
		if k <= 0 {
			k = 3
		}
		if k > p/2 {
			k = p / 2
		}
		if k < 1 {
			k = 1
		}
		for j := 1; j <= k; j++ {
			ang := 2 * math.Pi * float64(j) * float64(t) / float64(p)
			s, c := math.Sincos(ang)
			row = append(row, c, s)
		}
	}
	return row
}

// solveCholesky solves the symmetric positive-definite system Ax = b.
func solveCholesky(a [][]float64, b []float64) ([]float64, error) {
	n := len(a)
	l := make([][]float64, n)
	for i := range l {
		l[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			sum := a[i][j]
			for k := 0; k < j; k++ {
				sum -= l[i][k] * l[j][k]
			}
			if i == j {
				if sum <= 0 {
					return nil, fmt.Errorf("forecast: normal equations not positive definite")
				}
				l[i][i] = math.Sqrt(sum)
			} else {
				l[i][j] = sum / l[j][j]
			}
		}
	}
	// Forward then back substitution.
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		s := b[i]
		for k := 0; k < i; k++ {
			s -= l[i][k] * y[k]
		}
		y[i] = s / l[i][i]
	}
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for k := i + 1; k < n; k++ {
			s -= l[k][i] * x[k]
		}
		x[i] = s / l[i][i]
	}
	return x, nil
}
