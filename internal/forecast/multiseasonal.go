package forecast

import "fmt"

// MultiSeasonal is the TBATS substitute: additive exponential
// smoothing with level, damped trend and one seasonal state array per
// period (a multi-seasonal generalization of Holt-Winters / Taylor's
// double-seasonal method). The smoothing parameters — α (level), β
// (trend), φ (damping) and one γ_i per seasonal component — are fitted
// by Nelder-Mead on the in-sample one-step squared error.
type MultiSeasonal struct {
	// Periods lists the seasonal period lengths (deduplicated,
	// ascending is not required). Empty periods → damped-trend-only.
	Periods []int
	// MaxIter caps the optimizer; <= 0 means the optimizer default.
	MaxIter int
}

// Name implements Forecaster.
func (f MultiSeasonal) Name() string { return "multi-seasonal-es" }

// Forecast implements Forecaster.
func (f MultiSeasonal) Forecast(train []float64, h int) ([]float64, error) {
	n := len(train)
	if n < 8 {
		return nil, fmt.Errorf("forecast: training series too short (%d)", n)
	}
	var periods []int
	for _, p := range f.Periods {
		if p >= 2 && 2*p <= n {
			periods = append(periods, p)
		}
	}
	dim := 3 + len(periods) // alpha, beta, phi, gammas
	x0 := make([]float64, dim)
	x0[0], x0[1], x0[2] = 0.2, 0.05, 0.98
	bounds := make([][2]float64, dim)
	bounds[0] = [2]float64{1e-4, 0.999}
	bounds[1] = [2]float64{0, 0.5}
	bounds[2] = [2]float64{0.8, 1}
	for i := range periods {
		x0[3+i] = 0.1
		bounds[3+i] = [2]float64{0, 0.999}
	}
	obj := func(p []float64) float64 {
		sse, _ := runSmoother(train, periods, p, 0)
		return sse
	}
	best, _ := NelderMead(obj, x0, bounds, f.MaxIter)
	_, fc := runSmoother(train, periods, best, h)
	return fc, nil
}

// runSmoother runs the additive multi-seasonal smoother over the
// training data with parameters p = [alpha, beta, phi, gamma...]; it
// returns the in-sample one-step SSE and, when h > 0, the h-step
// forecast from the final state.
func runSmoother(y []float64, periods []int, p []float64, h int) (float64, []float64) {
	alpha, beta, phi := p[0], p[1], p[2]
	gammas := p[3:]
	n := len(y)

	// Initialize seasonal arrays from cycle-mean deviations.
	seasonal := make([][]float64, len(periods))
	for i, m := range periods {
		seasonal[i] = initialSeasonal(y, m)
	}
	// Initial level/trend from the first cycle (or few points).
	window := 8
	if len(periods) > 0 && periods[len(periods)-1] < n {
		window = periods[len(periods)-1]
	}
	if window > n {
		window = n
	}
	level := 0.0
	for i := 0; i < window; i++ {
		level += y[i]
	}
	level /= float64(window)
	trend := 0.0
	if window*2 <= n {
		second := 0.0
		for i := window; i < 2*window; i++ {
			second += y[i]
		}
		second /= float64(window)
		trend = (second - level) / float64(window)
	}

	sse := 0.0
	warm := window
	for t := 0; t < n; t++ {
		seas := 0.0
		for i, m := range periods {
			seas += seasonal[i][t%m]
		}
		pred := level + phi*trend + seas
		err := y[t] - pred
		if t >= warm {
			sse += err * err
		}
		newLevel := level + phi*trend + alpha*err
		trend = phi*trend + beta*err
		level = newLevel
		for i, m := range periods {
			seasonal[i][t%m] += gammas[i] * err
		}
	}
	if h == 0 {
		return sse, nil
	}
	fc := make([]float64, h)
	phiSum := 0.0
	phiPow := 1.0
	for k := 1; k <= h; k++ {
		phiSum += phiPow * phi
		phiPow *= phi
		v := level + phiSum*trend
		for i, m := range periods {
			v += seasonal[i][(n+k-1)%m]
		}
		fc[k-1] = v
	}
	return sse, fc
}

// initialSeasonal estimates the additive seasonal profile of period m
// as per-phase means minus the grand mean.
func initialSeasonal(y []float64, m int) []float64 {
	s := make([]float64, m)
	cnt := make([]int, m)
	grand := 0.0
	for i, v := range y {
		s[i%m] += v
		cnt[i%m]++
		grand += v
	}
	grand /= float64(len(y))
	for i := range s {
		if cnt[i] > 0 {
			s[i] = s[i]/float64(cnt[i]) - grand
		}
	}
	return s
}

// HoltWinters is the classic additive single-seasonality model,
// provided for comparison; it is MultiSeasonal with one period but the
// familiar name.
type HoltWinters struct {
	Period int
}

// Name implements Forecaster.
func (HoltWinters) Name() string { return "holt-winters" }

// Forecast implements Forecaster.
func (f HoltWinters) Forecast(train []float64, h int) ([]float64, error) {
	if f.Period < 2 {
		return nil, fmt.Errorf("forecast: Holt-Winters needs a period >= 2")
	}
	return MultiSeasonal{Periods: []int{f.Period}}.Forecast(train, h)
}
