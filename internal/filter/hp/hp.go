// Package hp implements the Hodrick–Prescott trend filter used by
// RobustPeriod's preprocessing stage (Eq. 2 of the paper):
//
//	τ̂ = argmin_τ ½ Σ (y_t − τ_t)² + λ Σ (τ_{t−1} − 2τ_t + τ_{t+1})²
//
// The first-order condition is the symmetric positive-definite
// pentadiagonal linear system (I + 2λ DᵀD) τ = y, where D is the
// (N−2)×N second-difference operator. We solve it exactly in O(N)
// with a banded LDLᵀ (Cholesky-style) factorization, no iteration.
package hp

import (
	"errors"
	"math"
	"sort"

	"robustperiod/internal/faults"
)

// ErrShort is returned when the input is too short to detrend.
var ErrShort = errors.New("hp: series shorter than 3 points")

// Filter returns the HP trend of y for smoothing parameter lambda > 0.
// The input is not modified. Series of length < 3 return a copy of y
// unchanged (there is no curvature to penalize); lambda <= 0 also
// returns a copy (no smoothing requested).
func Filter(y []float64, lambda float64) []float64 {
	n := len(y)
	out := make([]float64, n)
	copy(out, y)
	if n < 3 || lambda <= 0 {
		return out
	}
	solvePentadiagonal(out, lambda)
	return out
}

// LambdaForCutoff returns the smoothing parameter λ whose trend-filter
// frequency response has gain 1/2 at the given cutoff period (in
// samples): λ = 1 / (4·(1 − cos(2π/P))²). Oscillations slower than the
// cutoff are mostly absorbed into the trend; faster ones mostly
// survive detrending. Use a cutoff comfortably above the longest
// period you want to detect (RobustPeriod defaults to n/2, the longest
// detectable period).
func LambdaForCutoff(period float64) float64 {
	if period <= 2 {
		return 0
	}
	d := 1 - math.Cos(2*math.Pi/period)
	return 1 / (4 * d * d)
}

// Detrend returns y minus its HP trend, along with the trend itself.
func Detrend(y []float64, lambda float64) (detrended, trend []float64) {
	trend = Filter(y, lambda)
	detrended = make([]float64, len(y))
	for i := range y {
		detrended[i] = y[i] - trend[i]
	}
	return detrended, trend
}

// solvePentadiagonal solves (I + 2λ DᵀD) x = y in place, where y is
// passed in x. The matrix A = I + 2λDᵀD has bandwidth 2 with rows
// (away from the boundary): [c, -4c, 1+6c, -4c, c] for c = 2λ, and the
// well-known boundary corrections in the first/last two rows.
func solvePentadiagonal(x []float64, lambda float64) {
	n := len(x)
	c := 2 * lambda

	// Assemble the three distinct bands of the symmetric matrix:
	// d[i] = A[i][i], e[i] = A[i][i+1], f[i] = A[i][i+2].
	d := make([]float64, n)
	e := make([]float64, n-1)
	f := make([]float64, n-2)
	for i := 0; i < n; i++ {
		d[i] = 1 + 6*c
	}
	d[0], d[n-1] = 1+c, 1+c
	if n >= 2 {
		d[1], d[n-2] = 1+5*c, 1+5*c
	}
	if n == 3 {
		// With a single curvature term the middle row is 1+4c.
		d[1] = 1 + 4*c
	}
	for i := range e {
		e[i] = -4 * c
	}
	e[0], e[n-2] = -2*c, -2*c
	for i := range f {
		f[i] = c
	}

	// Banded LDLᵀ factorization: A = L D Lᵀ with unit lower-triangular
	// L having bands l1 (sub-diagonal) and l2 (second sub-diagonal).
	dd := make([]float64, n) // D
	l1 := make([]float64, n) // L[i][i-1]
	l2 := make([]float64, n) // L[i][i-2]
	dd[0] = d[0]
	if n >= 2 {
		l1[1] = e[0] / dd[0]
		dd[1] = d[1] - l1[1]*l1[1]*dd[0]
	}
	for i := 2; i < n; i++ {
		l2[i] = f[i-2] / dd[i-2]
		l1[i] = (e[i-1] - l2[i]*l1[i-1]*dd[i-2]) / dd[i-1]
		dd[i] = d[i] - l2[i]*l2[i]*dd[i-2] - l1[i]*l1[i]*dd[i-1]
	}

	// Forward substitution L z = y (z overwrites x).
	for i := 1; i < n; i++ {
		x[i] -= l1[i] * x[i-1]
		if i >= 2 {
			x[i] -= l2[i] * x[i-2]
		}
	}
	// Diagonal scaling.
	for i := 0; i < n; i++ {
		x[i] /= dd[i]
	}
	// Back substitution Lᵀ x = z.
	for i := n - 2; i >= 0; i-- {
		x[i] -= l1[i+1] * x[i+1]
		if i+2 < n {
			x[i] -= l2[i+2] * x[i+2]
		}
	}
}

// RobustFilter returns an outlier-resistant HP trend: the quadratic
// data-fidelity term is replaced by a Huber loss (the direction of the
// authors' RobustTrend work, IJCAI'19 [59] in the paper) and solved by
// iteratively reweighted least squares — each iteration solves a
// weighted pentadiagonal system
//
//	(W + 2λ DᵀD) τ = W y,  w_t = ψ_huber(y_t − τ_t)/(y_t − τ_t),
//
// so isolated spikes stop dragging the trend toward themselves. zeta
// <= 0 derives the Huber threshold from the residual MADN each
// iteration (1.345·MADN). Series shorter than 3 points or lambda <= 0
// return a copy of y, matching Filter.
func RobustFilter(y []float64, lambda, zeta float64, maxIter int) []float64 {
	trend, _ := RobustFilterN(y, lambda, zeta, maxIter)
	return trend
}

// RobustFilterN is RobustFilter additionally reporting how many IRLS
// iterations were executed before convergence (0 when the input is too
// short or lambda <= 0, i.e. no reweighting happened) — the pipeline's
// tracing layer surfaces this as an HP-stage diagnostic.
func RobustFilterN(y []float64, lambda, zeta float64, maxIter int) ([]float64, int) {
	trend, iters, _ := RobustTrendFilter(y, lambda, zeta, maxIter)
	return trend, iters
}

// RobustTrendFilter is RobustFilterN with an explicit failure channel:
// when the IRLS solve cannot be trusted (today only reachable through
// the "hp/robust_solver" fault point; a genuine solver breakdown would
// surface the same way), it returns the plain quadratic-loss HP trend
// together with a non-nil error so the pipeline can degrade to the
// classical filter and annotate the detection instead of aborting.
func RobustTrendFilter(y []float64, lambda, zeta float64, maxIter int) ([]float64, int, error) {
	if err := faults.Check(faults.PointHPRobustSolver); err != nil {
		return Filter(y, lambda), 0, err
	}
	trend, iters := robustFilterN(y, lambda, zeta, maxIter)
	return trend, iters, nil
}

// robustFilterN is the IRLS loop behind RobustFilterN/RobustTrendFilter.
func robustFilterN(y []float64, lambda, zeta float64, maxIter int) ([]float64, int) {
	n := len(y)
	trend := Filter(y, lambda)
	if n < 3 || lambda <= 0 {
		return trend, 0
	}
	if maxIter <= 0 {
		maxIter = 10
	}
	iters := 0
	w := make([]float64, n)
	resid := make([]float64, n)
	for iter := 0; iter < maxIter; iter++ {
		iters = iter + 1
		for i := range resid {
			resid[i] = y[i] - trend[i]
		}
		z := zeta
		if z <= 0 {
			z = 1.345 * madn(resid)
			if z == 0 {
				return trend, iters
			}
		}
		for i, r := range resid {
			a := math.Abs(r)
			if a <= z {
				w[i] = 1
			} else {
				w[i] = z / a
			}
		}
		next := solveWeightedPentadiagonal(y, w, lambda)
		maxDelta := 0.0
		for i := range next {
			if d := math.Abs(next[i] - trend[i]); d > maxDelta {
				maxDelta = d
			}
		}
		copy(trend, next)
		if maxDelta < 1e-9*(1+math.Abs(trend[0])) {
			break
		}
	}
	return trend, iters
}

// madn is a local normal-consistent MAD (kept here to avoid an import
// cycle with the robust statistics package, which imports nothing but
// also should not be required for a filter primitive).
func madn(x []float64) float64 {
	n := len(x)
	buf := append([]float64(nil), x...)
	sort.Float64s(buf)
	med := buf[n/2]
	if n%2 == 0 {
		med = (buf[n/2-1] + buf[n/2]) / 2
	}
	for i, v := range x {
		buf[i] = math.Abs(v - med)
	}
	sort.Float64s(buf)
	mad := buf[n/2]
	if n%2 == 0 {
		mad = (buf[n/2-1] + buf[n/2]) / 2
	}
	return 1.4826022185056018 * mad
}

// solveWeightedPentadiagonal solves (W + 2λ DᵀD) τ = W y for diagonal
// weights w ∈ (0, 1].
func solveWeightedPentadiagonal(y, w []float64, lambda float64) []float64 {
	n := len(y)
	c := 2 * lambda
	d := make([]float64, n)
	e := make([]float64, n-1)
	f := make([]float64, n-2)
	for i := 0; i < n; i++ {
		d[i] = w[i] + 6*c
	}
	d[0], d[n-1] = w[0]+c, w[n-1]+c
	if n >= 2 {
		d[1], d[n-2] = w[1]+5*c, w[n-2]+5*c
	}
	if n == 3 {
		d[1] = w[1] + 4*c
	}
	for i := range e {
		e[i] = -4 * c
	}
	e[0], e[n-2] = -2*c, -2*c
	for i := range f {
		f[i] = c
	}
	x := make([]float64, n)
	for i := range x {
		x[i] = w[i] * y[i]
	}
	// Banded LDLᵀ, as in solvePentadiagonal.
	dd := make([]float64, n)
	l1 := make([]float64, n)
	l2 := make([]float64, n)
	dd[0] = d[0]
	if n >= 2 {
		l1[1] = e[0] / dd[0]
		dd[1] = d[1] - l1[1]*l1[1]*dd[0]
	}
	for i := 2; i < n; i++ {
		l2[i] = f[i-2] / dd[i-2]
		l1[i] = (e[i-1] - l2[i]*l1[i-1]*dd[i-2]) / dd[i-1]
		dd[i] = d[i] - l2[i]*l2[i]*dd[i-2] - l1[i]*l1[i]*dd[i-1]
	}
	for i := 1; i < n; i++ {
		x[i] -= l1[i] * x[i-1]
		if i >= 2 {
			x[i] -= l2[i] * x[i-2]
		}
	}
	for i := 0; i < n; i++ {
		x[i] /= dd[i]
	}
	for i := n - 2; i >= 0; i-- {
		x[i] -= l1[i+1] * x[i+1]
		if i+2 < n {
			x[i] -= l2[i+2] * x[i+2]
		}
	}
	return x
}

// Objective evaluates the HP objective ½Σ(y−τ)² + λΣ(Δ²τ)² for a
// candidate trend τ; exposed for testing and diagnostics.
func Objective(y, trend []float64, lambda float64) float64 {
	if len(y) != len(trend) {
		panic("hp: length mismatch")
	}
	fit := 0.0
	for i := range y {
		d := y[i] - trend[i]
		fit += d * d
	}
	pen := 0.0
	for i := 1; i+1 < len(trend); i++ {
		d2 := trend[i-1] - 2*trend[i] + trend[i+1]
		pen += d2 * d2
	}
	return 0.5*fit + lambda*pen
}
