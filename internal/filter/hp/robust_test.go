package hp

import (
	"math"
	"math/rand"
	"testing"
)

func TestRobustFilterMatchesFilterOnCleanData(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	y := make([]float64, 300)
	for i := range y {
		y[i] = 0.02*float64(i) + 0.3*rng.NormFloat64()
	}
	plain := Filter(y, 1600)
	robustT := RobustFilter(y, 1600, 0, 0)
	for i := range y {
		if math.Abs(plain[i]-robustT[i]) > 0.2 {
			t.Fatalf("clean data: trends diverge at %d: %v vs %v", i, plain[i], robustT[i])
		}
	}
}

func TestRobustFilterResistsSpikes(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := 400
	truth := make([]float64, n)
	y := make([]float64, n)
	for i := range y {
		truth[i] = 5 + 0.01*float64(i)
		y[i] = truth[i] + 0.2*rng.NormFloat64()
	}
	spikeAt := map[int]bool{}
	for k := 0; k < 20; k++ {
		i := rng.Intn(n)
		y[i] += 30
		spikeAt[i] = true
	}
	plain := Filter(y, 1e4)
	robustT := RobustFilter(y, 1e4, 0, 0)
	var errPlain, errRobust float64
	for i := range y {
		errPlain += math.Abs(plain[i] - truth[i])
		errRobust += math.Abs(robustT[i] - truth[i])
	}
	if errRobust >= errPlain {
		t.Errorf("robust trend error %v not better than plain %v under spikes", errRobust, errPlain)
	}
	// The robust trend should stay near the truth even at spike sites.
	for i := range spikeAt {
		if math.Abs(robustT[i]-truth[i]) > 2 {
			t.Errorf("robust trend dragged to %v at spike %d (truth %v)", robustT[i], i, truth[i])
		}
	}
}

func TestRobustFilterDegenerate(t *testing.T) {
	y := []float64{1, 2}
	got := RobustFilter(y, 100, 0, 5)
	for i := range y {
		if got[i] != y[i] {
			t.Error("short series should pass through")
		}
	}
	// Constant series: zero residual MADN → early return without NaNs.
	c := RobustFilter([]float64{3, 3, 3, 3, 3}, 10, 0, 5)
	for _, v := range c {
		if math.IsNaN(v) {
			t.Fatal("NaN on constant input")
		}
	}
}

func TestRobustFilterFixedZeta(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	y := make([]float64, 200)
	for i := range y {
		y[i] = rng.NormFloat64()
	}
	y[100] += 50
	got := RobustFilter(y, 1e4, 1.0, 8)
	if math.Abs(got[100]) > 1.5 {
		t.Errorf("fixed-zeta robust trend pulled to %v by the spike", got[100])
	}
}

func TestWeightedSolverReducesToPlain(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	y := make([]float64, 120)
	for i := range y {
		y[i] = rng.NormFloat64()
	}
	w := make([]float64, len(y))
	for i := range w {
		w[i] = 1
	}
	got := solveWeightedPentadiagonal(y, w, 42)
	want := Filter(y, 42)
	for i := range y {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Fatalf("unit weights should reproduce Filter at %d", i)
		}
	}
}

func BenchmarkRobustFilter(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	y := make([]float64, 5000)
	for i := range y {
		y[i] = rng.NormFloat64()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		RobustFilter(y, 1e5, 0, 0)
	}
}
