package hp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// naiveSolve solves (I + 2λ DᵀD) τ = y with dense Gaussian elimination
// as a reference implementation.
func naiveSolve(y []float64, lambda float64) []float64 {
	n := len(y)
	a := make([][]float64, n)
	for i := range a {
		a[i] = make([]float64, n)
		a[i][i] = 1
	}
	c := 2 * lambda
	// A += c * DᵀD, building DᵀD row by row from D's rows [1,-2,1].
	for t := 1; t+1 < n; t++ {
		idx := [3]int{t - 1, t, t + 1}
		coef := [3]float64{1, -2, 1}
		for i := 0; i < 3; i++ {
			for j := 0; j < 3; j++ {
				a[idx[i]][idx[j]] += c * coef[i] * coef[j]
			}
		}
	}
	b := append([]float64(nil), y...)
	// Gaussian elimination with partial pivoting.
	for col := 0; col < n; col++ {
		piv := col
		for r := col + 1; r < n; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[piv][col]) {
				piv = r
			}
		}
		a[col], a[piv] = a[piv], a[col]
		b[col], b[piv] = b[piv], b[col]
		for r := col + 1; r < n; r++ {
			m := a[r][col] / a[col][col]
			if m == 0 {
				continue
			}
			for cc := col; cc < n; cc++ {
				a[r][cc] -= m * a[col][cc]
			}
			b[r] -= m * b[col]
		}
	}
	x := make([]float64, n)
	for r := n - 1; r >= 0; r-- {
		s := b[r]
		for cc := r + 1; cc < n; cc++ {
			s -= a[r][cc] * x[cc]
		}
		x[r] = s / a[r][r]
	}
	return x
}

func TestFilterMatchesDenseSolver(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{3, 4, 5, 8, 17, 50, 120} {
		for _, lambda := range []float64{0.1, 1, 100, 1e5} {
			y := make([]float64, n)
			for i := range y {
				y[i] = rng.NormFloat64()*3 + math.Sin(float64(i)/5)
			}
			got := Filter(y, lambda)
			want := naiveSolve(y, lambda)
			for i := range got {
				if math.Abs(got[i]-want[i]) > 1e-8 {
					t.Fatalf("n=%d λ=%v idx=%d: got %v want %v", n, lambda, i, got[i], want[i])
				}
			}
		}
	}
}

func TestFilterShortSeries(t *testing.T) {
	for _, y := range [][]float64{nil, {1}, {1, 2}} {
		got := Filter(y, 100)
		if len(got) != len(y) {
			t.Fatal("length changed")
		}
		for i := range y {
			if got[i] != y[i] {
				t.Errorf("short series should be returned unchanged")
			}
		}
	}
}

func TestFilterZeroLambdaIsIdentity(t *testing.T) {
	y := []float64{3, 1, 4, 1, 5, 9, 2, 6}
	got := Filter(y, 0)
	for i := range y {
		if got[i] != y[i] {
			t.Fatal("λ=0 must return the series itself")
		}
	}
}

func TestFilterDoesNotMutate(t *testing.T) {
	y := []float64{3, 1, 4, 1, 5, 9}
	orig := append([]float64(nil), y...)
	Filter(y, 10)
	for i := range y {
		if y[i] != orig[i] {
			t.Fatal("input mutated")
		}
	}
}

func TestLinearSeriesIsFixedPoint(t *testing.T) {
	// A perfectly linear series has zero curvature penalty, so the
	// trend equals the series for any lambda.
	n := 64
	y := make([]float64, n)
	for i := range y {
		y[i] = 2.5*float64(i) - 7
	}
	for _, lambda := range []float64{1, 1e4, 1e8} {
		got := Filter(y, lambda)
		for i := range y {
			if math.Abs(got[i]-y[i]) > 1e-6 {
				t.Fatalf("λ=%v: linear series distorted at %d: %v vs %v", lambda, i, got[i], y[i])
			}
		}
	}
}

func TestLargeLambdaApproachesLinearFit(t *testing.T) {
	// As λ→∞ the trend tends to the least-squares line.
	rng := rand.New(rand.NewSource(2))
	n := 200
	y := make([]float64, n)
	for i := range y {
		y[i] = 0.3*float64(i) + 5 + rng.NormFloat64()
	}
	trend := Filter(y, 1e12)
	// Fit LS line.
	var sx, sy, sxx, sxy float64
	for i := range y {
		x := float64(i)
		sx += x
		sy += y[i]
		sxx += x * x
		sxy += x * y[i]
	}
	fn := float64(n)
	b := (fn*sxy - sx*sy) / (fn*sxx - sx*sx)
	a := (sy - b*sx) / fn
	for i := range y {
		want := a + b*float64(i)
		if math.Abs(trend[i]-want) > 0.01 {
			t.Fatalf("idx %d: trend %v, LS line %v", i, trend[i], want)
		}
	}
}

func TestSmallLambdaApproachesData(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	y := make([]float64, 100)
	for i := range y {
		y[i] = rng.NormFloat64()
	}
	trend := Filter(y, 1e-9)
	for i := range y {
		if math.Abs(trend[i]-y[i]) > 1e-6 {
			t.Fatalf("tiny λ should reproduce data at %d", i)
		}
	}
}

func TestDetrendSumsBack(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	y := make([]float64, 150)
	for i := range y {
		y[i] = math.Sin(float64(i)/7) + 0.01*float64(i) + rng.NormFloat64()*0.2
	}
	det, tr := Detrend(y, 1600)
	for i := range y {
		if math.Abs(det[i]+tr[i]-y[i]) > 1e-10 {
			t.Fatal("detrended + trend != original")
		}
	}
}

func TestDetrendRemovesTrendKeepsSeasonality(t *testing.T) {
	n := 500
	y := make([]float64, n)
	for i := range y {
		y[i] = 0.05*float64(i) + math.Sin(2*math.Pi*float64(i)/25)
	}
	det, _ := Detrend(y, 1e5)
	// The detrended series should be roughly zero-mean and retain the
	// period-25 oscillation.
	mean := 0.0
	for _, v := range det {
		mean += v
	}
	mean /= float64(n)
	if math.Abs(mean) > 0.05 {
		t.Errorf("detrended mean = %v, want ~0", mean)
	}
	// Interior amplitude should stay near 1.
	maxAmp := 0.0
	for i := 50; i < n-50; i++ {
		if a := math.Abs(det[i] - mean); a > maxAmp {
			maxAmp = a
		}
	}
	if maxAmp < 0.8 || maxAmp > 1.3 {
		t.Errorf("seasonal amplitude after detrend = %v, want ~1", maxAmp)
	}
}

// Property: the solver's output minimizes the HP objective — no
// perturbation direction improves it.
func TestFilterIsMinimizerProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	f := func(seed int64, lamRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		n := 10 + r.Intn(60)
		lambda := math.Pow(10, float64(lamRaw%7)-1)
		y := make([]float64, n)
		for i := range y {
			y[i] = r.NormFloat64() * 5
		}
		trend := Filter(y, lambda)
		base := Objective(y, trend, lambda)
		for trial := 0; trial < 10; trial++ {
			pert := append([]float64(nil), trend...)
			for k := 0; k < 3; k++ {
				pert[rng.Intn(n)] += (rng.Float64() - 0.5) * 0.1
			}
			if Objective(y, pert, lambda) < base-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestLambdaForCutoff(t *testing.T) {
	// The trend filter's gain at the cutoff period must be 1/2:
	// gain(ω) = 1/(1 + 4λ(1−cos ω)²).
	for _, p := range []float64{20, 112, 500, 2880} {
		lambda := LambdaForCutoff(p)
		w := 2 * math.Pi / p
		gain := 1 / (1 + 4*lambda*math.Pow(1-math.Cos(w), 2))
		if math.Abs(gain-0.5) > 1e-9 {
			t.Errorf("cutoff %v: gain %v, want 0.5", p, gain)
		}
	}
	// Known anchor: quarterly λ=1600 corresponds to ~40-quarter cutoff.
	if l := LambdaForCutoff(39.7); math.Abs(l-1600) > 50 {
		t.Errorf("cutoff 39.7: λ = %v, want ≈1600", l)
	}
	if LambdaForCutoff(2) != 0 || LambdaForCutoff(-1) != 0 {
		t.Error("degenerate cutoffs should give 0")
	}
	// Longer cutoff → larger λ.
	if LambdaForCutoff(100) >= LambdaForCutoff(200) {
		t.Error("λ should grow with cutoff")
	}
}

func TestFilterSeparatesSeasonalityFromTrend(t *testing.T) {
	// With the cutoff at n/2, a period-168 component must survive
	// detrending nearly intact while a period-2n trend is removed.
	n := 1000
	y := make([]float64, n)
	for i := range y {
		y[i] = math.Sin(2*math.Pi*float64(i)/168) + 10*math.Sin(math.Pi*float64(i)/float64(n))
	}
	det, _ := Detrend(y, LambdaForCutoff(float64(n)/2))
	// Compare against the pure seasonal component in the interior.
	var num, den float64
	for i := 100; i < n-100; i++ {
		s := math.Sin(2 * math.Pi * float64(i) / 168)
		num += (det[i] - s) * (det[i] - s)
		den += s * s
	}
	if rel := math.Sqrt(num / den); rel > 0.25 {
		t.Errorf("seasonal distortion %.2f too high after detrend", rel)
	}
}

func TestObjectiveMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Objective([]float64{1, 2}, []float64{1}, 1)
}

func BenchmarkFilter(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	y := make([]float64, 10000)
	for i := range y {
		y[i] = rng.NormFloat64()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Filter(y, 1e5)
	}
}
