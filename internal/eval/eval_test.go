package eval

import (
	"strings"
	"testing"

	"robustperiod/internal/baselines"
	"robustperiod/internal/synthetic"
)

func TestMatchExact(t *testing.T) {
	c := Match([]int{20, 50, 100}, []int{20, 50, 100}, 0)
	if c.TP != 3 || c.FP != 0 || c.FN != 0 {
		t.Errorf("counts %+v", c)
	}
	if c.Precision() != 1 || c.Recall() != 1 || c.F1() != 1 {
		t.Error("perfect match should score 1")
	}
}

func TestMatchTolerance(t *testing.T) {
	// 102 matches 100 at ±2% but not ±0%.
	c0 := Match([]int{102}, []int{100}, 0)
	if c0.TP != 0 || c0.FP != 1 || c0.FN != 1 {
		t.Errorf("±0%%: %+v", c0)
	}
	c2 := Match([]int{102}, []int{100}, 0.02)
	if c2.TP != 1 || c2.FP != 0 || c2.FN != 0 {
		t.Errorf("±2%%: %+v", c2)
	}
	// 103 fails even at ±2%.
	if c := Match([]int{103}, []int{100}, 0.02); c.TP != 0 {
		t.Errorf("103 should not match 100 at 2%%: %+v", c)
	}
}

func TestMatchOneToOne(t *testing.T) {
	// Two detections near one truth: only one may match.
	c := Match([]int{100, 101}, []int{100}, 0.02)
	if c.TP != 1 || c.FP != 1 {
		t.Errorf("%+v", c)
	}
	// Each truth needs its own detection.
	c = Match([]int{100}, []int{100, 101}, 0.02)
	if c.TP != 1 || c.FN != 1 {
		t.Errorf("%+v", c)
	}
}

func TestMatchGreedyPrefersClosest(t *testing.T) {
	// detected 24 should pair with truth 24, not 25.
	c := Match([]int{24, 25}, []int{24, 25}, 0.1)
	if c.TP != 2 {
		t.Errorf("%+v", c)
	}
}

func TestMatchEmpty(t *testing.T) {
	c := Match(nil, nil, 0)
	if c.TP != 0 || c.FP != 0 || c.FN != 0 {
		t.Error("empty")
	}
	if c.Precision() != 0 || c.Recall() != 0 || c.F1() != 0 {
		t.Error("degenerate metrics should be 0")
	}
	if Match([]int{5}, nil, 0).FP != 1 {
		t.Error("unmatched detection is FP")
	}
	if Match(nil, []int{5}, 0).FN != 1 {
		t.Error("missed truth is FN")
	}
}

func TestCountsAddAndScores(t *testing.T) {
	var c Counts
	c.Add(Counts{TP: 3, FP: 1, FN: 2})
	c.Add(Counts{TP: 1, FP: 1, FN: 0})
	if c.TP != 4 || c.FP != 2 || c.FN != 2 {
		t.Errorf("%+v", c)
	}
	if p := c.Precision(); p != 4.0/6 {
		t.Errorf("precision %v", p)
	}
	if r := c.Recall(); r != 4.0/6 {
		t.Errorf("recall %v", r)
	}
}

func TestRunOnSmallCorpus(t *testing.T) {
	corpus := synthetic.SinCorpus(4, 800, synthetic.Sine, []int{40}, 0.1, 0.01, 1)
	out := Run(baselines.RobustPeriod{}, corpus, 0.02, true)
	if out.Detector != "RobustPeriod" {
		t.Error("name")
	}
	if out.Metrics.Recall < 0.7 {
		t.Errorf("recall %v too low on easy corpus", out.Metrics.Recall)
	}
	if out.MeanTime <= 0 {
		t.Error("timing missing")
	}
}

func TestResample(t *testing.T) {
	s := synthetic.Labeled{Name: "x", X: []float64{0, 1, 2, 3, 4, 5, 6, 7}, Truth: []int{4}}
	up := Resample(s, 2)
	if len(up.X) != 16 || up.Truth[0] != 8 {
		t.Errorf("upsample: n=%d truth=%v", len(up.X), up.Truth)
	}
	// Interpolation midpoints.
	if up.X[1] != 0.5 || up.X[2] != 1 {
		t.Errorf("interp values %v", up.X[:4])
	}
	down := Resample(s, -2)
	if len(down.X) != 4 || down.Truth[0] != 2 {
		t.Errorf("downsample: n=%d truth=%v", len(down.X), down.Truth)
	}
	if down.X[0] != 0 || down.X[1] != 2 {
		t.Errorf("decimation values %v", down.X)
	}
	same := Resample(s, 1)
	if len(same.X) != len(s.X) {
		t.Error("factor 1 must be identity")
	}
}

func TestTableString(t *testing.T) {
	tb := Table{
		Title:  "demo",
		Header: []string{"a", "bbbb"},
		Rows:   [][]string{{"xx", "y"}},
	}
	s := tb.String()
	if !strings.Contains(s, "demo") || !strings.Contains(s, "bbbb") || !strings.Contains(s, "xx") {
		t.Errorf("render: %q", s)
	}
}

// Smoke tests for the drivers at tiny trial counts: every table must
// render with the right shape. The headline claims (who wins) are
// verified in the repo-level bench/experiment tests with more trials.
func TestTableDriversSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	t1 := Table1(2, 1)
	if len(t1.Rows) != 4 || len(t1.Rows[0]) != 7 {
		t.Errorf("table1 shape: %dx%d", len(t1.Rows), len(t1.Rows[0]))
	}
	t2 := Table2(2, 2)
	if len(t2.Rows) != 4 || len(t2.Rows[0]) != 9 {
		t.Errorf("table2 shape")
	}
	t3 := Table3(2, 3)
	if len(t3.Rows) != 4 || len(t3.Rows[0]) != 5 {
		t.Errorf("table3 shape")
	}
	t5 := Table5(2, 5)
	if len(t5.Rows) != 4 || len(t5.Rows[0]) != 7 {
		t.Errorf("table5 shape")
	}
	t8 := Table8(2, 8)
	if len(t8.Rows) != 4 || len(t8.Rows[0]) != 4 {
		t.Errorf("table8 shape")
	}
}

func TestTableImplAblationsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	tb := TableImplAblations(2, 9)
	if len(tb.Rows) != 4 || len(tb.Rows[0]) != 4 {
		t.Fatalf("shape %dx%d", len(tb.Rows), len(tb.Rows[0]))
	}
	if tb.Rows[0][0] != "default" {
		t.Error("first variant should be the default configuration")
	}
}

func TestFigure5Driver(t *testing.T) {
	fig := Figure5(1)
	if len(fig.Rows) < 5 {
		t.Fatalf("figure 5 rows: %d", len(fig.Rows))
	}
	if !strings.Contains(fig.Title, "20") && !strings.Contains(fig.Title, "50") {
		t.Errorf("figure 5 title should list detected periods: %s", fig.Title)
	}
}

func TestFigure6Driver(t *testing.T) {
	fig := Figure6(1)
	if len(fig.Rows) != 6 {
		t.Fatalf("figure 6 rows: %d", len(fig.Rows))
	}
	// The Huber/abnormal row must recover a period near 144.
	for _, row := range fig.Rows {
		if row[0] == "Huber" && row[1] == "abnormal" {
			if !strings.HasPrefix(row[2], "14") {
				t.Errorf("Huber abnormal spectral period %s, want ~144", row[2])
			}
			if row[3] != "144" && row[3] != "143" && row[3] != "145" {
				t.Errorf("Huber abnormal ACF lag %s, want ~144", row[3])
			}
		}
		if row[0] == "Original" && row[1] == "normal" {
			if !strings.HasPrefix(row[2], "14") {
				t.Errorf("Original normal spectral period %s, want ~144", row[2])
			}
		}
	}
}
