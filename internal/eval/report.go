package eval

import (
	"fmt"
	"strings"
)

// Report runs the complete evaluation — every table, both figures, and
// the implementation ablations — and renders one markdown document.
// This is the single-command regeneration target behind
// `rpbench -report`. Trials bounds the per-corpus series count
// (forecasting and ablations are internally capped harder because
// they are the slow stages).
func Report(trials int, seed int64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "# RobustPeriod evaluation report\n\n")
	fmt.Fprintf(&b, "Regenerated with %d trials per synthetic corpus (seed %d).\n", trials, seed)
	fmt.Fprintf(&b, "See EXPERIMENTS.md for the paper-vs-measured comparison.\n\n")

	sections := []struct {
		title string
		body  func() Table
	}{
		{"Table 1 — single-period precision", func() Table { return Table1(trials, seed) }},
		{"Table 2 — multi-period F1", func() Table { return Table2(trials, seed+100) }},
		{"Table 3 — square/triangle F1", func() Table { return Table3(trials, seed+200) }},
		{"Table 4 — cloud-monitoring datasets", func() Table { return Table4(seed + 300) }},
		{"Table 5 — ablations", func() Table { return Table5(trials, seed+400) }},
		{"Table 6 — downstream forecasting", func() Table { return Table6(capInt(trials, 20), seed+500) }},
		{"Table 7 — running time", func() Table { return Table7(trials, seed+600) }},
		{"Table 8 — F1 vs length", func() Table { return Table8(trials, seed+700) }},
		{"Figure 5 — per-level intermediates", func() Table { return Figure5(seed + 800) }},
		{"Figure 6 — periodogram/ACF schemes", func() Table { return Figure6(seed + 900) }},
		{"Implementation ablations (DESIGN.md §6)", func() Table { return TableImplAblations(capInt(trials, 25), seed+1000) }},
		{"Noise false-positive rate", func() Table { return TableNoiseFPR(capInt(trials, 30), seed+1100) }},
	}
	for _, s := range sections {
		fmt.Fprintf(&b, "## %s\n\n```\n%s```\n\n", s.title, s.body().String())
	}
	return b.String()
}

func capInt(v, max int) int {
	if v > max {
		return max
	}
	return v
}
