package eval

import (
	"fmt"
	"math/rand"

	"robustperiod/internal/baselines"
	"robustperiod/internal/synthetic"
)

// TableNoiseFPR measures each detector's false-positive behaviour on
// pure Gaussian noise — a deployment-critical dimension the paper does
// not tabulate: an alerting pipeline re-runs detection continuously,
// so a detector that "finds" a period in noise creates phantom
// seasonality downstream. Reported per series length: the fraction of
// noise series on which the detector emitted at least one period
// (FPR) and the mean number of periods emitted.
func TableNoiseFPR(trials int, seed int64) Table {
	if trials < 1 {
		trials = 1
	}
	lengths := []int{512, 1000, 2000}
	detectors := append(multiDetectors(),
		baselines.ACFMed{}, baselines.LombScargle{})
	t := Table{
		Title:  "Noise false-positive rate (pure Gaussian noise; FPR = share of series with any period)",
		Header: []string{"Algorithm"},
	}
	for _, n := range lengths {
		t.Header = append(t.Header, fmt.Sprintf("FPR n=%d", n), fmt.Sprintf("mean# n=%d", n))
	}
	corpora := make(map[int][]synthetic.Labeled, len(lengths))
	for _, n := range lengths {
		rng := rand.New(rand.NewSource(seed + int64(n)))
		series := make([]synthetic.Labeled, trials)
		for i := range series {
			x := make([]float64, n)
			for j := range x {
				x[j] = rng.NormFloat64()
			}
			series[i] = synthetic.Labeled{Name: fmt.Sprintf("noise-%d-%d", n, i), X: x}
		}
		corpora[n] = series
	}
	for _, d := range detectors {
		row := []string{d.Name()}
		for _, n := range lengths {
			flagged, total := 0, 0
			for _, s := range corpora[n] {
				got := d.Periods(baselines.Preprocess(s.X))
				if len(got) > 0 {
					flagged++
				}
				total += len(got)
			}
			row = append(row,
				f3(float64(flagged)/float64(trials)),
				fmt.Sprintf("%.2f", float64(total)/float64(trials)))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}
