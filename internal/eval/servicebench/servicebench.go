// The service leg of the benchmark: the perf-suite series pushed
// through an in-process rpserved handler stack, proving the admission
// controller, circuit breakers and degradation layer stay inert on a
// healthy, correctly-sized service. Sheds or degraded detections here
// mean overload protection fires on normal traffic — a regression the
// CI gate must catch.
//
// This lives outside internal/eval because it imports internal/serve
// (and through it the root robustperiod package); keeping eval free
// of that edge lets the root package's own tests keep importing eval
// without an import cycle.
package servicebench

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"

	"robustperiod/internal/eval"
	"robustperiod/internal/serve"
	"robustperiod/internal/synthetic"
)

// Run pushes the perf-suite series through a fresh in-process
// serve.Server and reports request outcomes plus the service's own
// shed/degraded counters read back from /metrics. The cache is
// disabled so every request is a real detection.
func Run(quick bool, seed int64) eval.ServiceRow {
	reps := 3
	if quick {
		reps = 1
	}
	srv := serve.New(serve.Config{CacheSize: -1})
	defer srv.Close()
	h := srv.Handler()

	row := eval.ServiceRow{}
	for _, n := range []int{500, 1000, 2000} {
		cfg := synthetic.PaperConfig(n, synthetic.Sine, []int{20, 50, 100}, 0.1, 0.01, seed)
		x := synthetic.Generate(cfg)
		body, _ := json.Marshal(map[string]any{"series": x})
		for i := 0; i < reps; i++ {
			req := httptest.NewRequest("POST", "/v1/detect", bytes.NewReader(body))
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, req)
			row.Requests++
			if rec.Code != 200 {
				row.Errors++
			}
		}
	}

	// Read the service's own view back through the metrics endpoint,
	// so the bench also proves the counters are wired.
	req := httptest.NewRequest("GET", "/metrics", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	var vars struct {
		Shed     map[string]int64 `json:"requests_shed_total"`
		Degraded int64            `json:"degraded_total"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &vars); err == nil {
		for _, n := range vars.Shed {
			row.Shed += n
		}
		row.Degraded = vars.Degraded
	}
	return row
}
