// The service leg of the benchmark: the perf-suite series pushed
// through an in-process rpserved handler stack, proving the admission
// controller, circuit breakers and degradation layer stay inert on a
// healthy, correctly-sized service. Sheds or degraded detections here
// mean overload protection fires on normal traffic — a regression the
// CI gate must catch.
//
// This lives outside internal/eval because it imports internal/serve
// (and through it the root robustperiod package); keeping eval free
// of that edge lets the root package's own tests keep importing eval
// without an import cycle.
package servicebench

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"

	"robustperiod/internal/eval"
	"robustperiod/internal/obs"
	"robustperiod/internal/registry"
	"robustperiod/internal/serve"
	"robustperiod/internal/synthetic"
)

// Run pushes the perf-suite series through a fresh in-process
// serve.Server and reports request outcomes plus the service's own
// shed/degraded counters read back from /metrics. The cache is
// disabled so every request is a real detection.
func Run(quick bool, seed int64) eval.ServiceRow {
	reps := 3
	if quick {
		reps = 1
	}
	srv := serve.New(serve.Config{CacheSize: -1})
	defer srv.Close()
	h := srv.Handler()

	row := eval.ServiceRow{}
	for _, n := range []int{500, 1000, 2000} {
		cfg := synthetic.PaperConfig(n, synthetic.Sine, []int{20, 50, 100}, 0.1, 0.01, seed)
		x := synthetic.Generate(cfg)
		body, _ := json.Marshal(map[string]any{"series": x})
		for i := 0; i < reps; i++ {
			req := httptest.NewRequest("POST", "/v1/detect", bytes.NewReader(body))
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, req)
			row.Requests++
			if rec.Code != 200 {
				row.Errors++
			}
		}
	}

	// Read the service's own view back through the Prometheus metrics
	// endpoint, so the bench also proves the exposition is wired and
	// parseable.
	req := httptest.NewRequest("GET", "/metrics", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if fams, err := obs.ParseExposition(rec.Body.Bytes()); err == nil {
		if f := obs.FindFamily(fams, registry.MetricRequestsShedTotal); f != nil {
			for _, s := range f.Samples {
				row.Shed += int64(s.Value)
			}
		}
		if f := obs.FindFamily(fams, registry.MetricDegradedTotal); f != nil && len(f.Samples) == 1 {
			row.Degraded = int64(f.Samples[0].Value)
		}
	}
	return row
}
