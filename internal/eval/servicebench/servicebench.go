// The service leg of the benchmark: the perf-suite series pushed
// through an in-process rpserved handler stack, proving the admission
// controller, circuit breakers and degradation layer stay inert on a
// healthy, correctly-sized service. Sheds or degraded detections here
// mean overload protection fires on normal traffic — a regression the
// CI gate must catch.
//
// This lives outside internal/eval because it imports internal/serve
// (and through it the root robustperiod package); keeping eval free
// of that edge lets the root package's own tests keep importing eval
// without an import cycle.
package servicebench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"robustperiod/internal/eval"
	"robustperiod/internal/obs"
	"robustperiod/internal/registry"
	"robustperiod/internal/serve"
	"robustperiod/internal/synthetic"
)

// Run pushes the perf-suite series through a fresh in-process
// serve.Server and reports request outcomes plus the service's own
// shed/degraded counters read back from /metrics. The cache is
// disabled so every request is a real detection.
func Run(quick bool, seed int64) eval.ServiceRow {
	reps := 3
	if quick {
		reps = 1
	}
	// Every bench request is trace-sampled so the slowest one per leg
	// lands in the bench JSON with its span breakdown attached.
	srv, err := serve.New(serve.Config{CacheSize: -1, TraceSampleEvery: 1})
	if err != nil {
		panic(err)
	}
	defer srv.Close()
	h := srv.Handler()
	dbg := srv.DebugHandler()

	row := eval.ServiceRow{}
	for _, n := range []int{500, 1000, 2000} {
		cfg := synthetic.PaperConfig(n, synthetic.Sine, []int{20, 50, 100}, 0.1, 0.01, seed)
		x := synthetic.Generate(cfg)
		body, _ := json.Marshal(map[string]any{"series": x})
		slow := eval.SlowTrace{Leg: fmt.Sprintf("detect/n=%d", n)}
		for i := 0; i < reps; i++ {
			req := httptest.NewRequest("POST", "/v1/detect", bytes.NewReader(body))
			rec := httptest.NewRecorder()
			start := time.Now()
			h.ServeHTTP(rec, req)
			elapsed := float64(time.Since(start)) / float64(time.Millisecond)
			row.Requests++
			if rec.Code != 200 {
				row.Errors++
			}
			if tp := rec.Header().Get("traceparent"); tp != "" && elapsed > slow.DurationMS {
				slow.DurationMS = elapsed
				if parts := strings.Split(tp, "-"); len(parts) == 4 {
					slow.TraceID = parts[1]
				}
			}
		}
		if slow.TraceID != "" {
			slow.Spans = spanBreakdown(dbg, slow.TraceID)
			row.Slowest = append(row.Slowest, slow)
		}
	}

	// Read the service's own view back through the Prometheus metrics
	// endpoint, so the bench also proves the exposition is wired and
	// parseable.
	req := httptest.NewRequest("GET", "/metrics", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if fams, err := obs.ParseExposition(rec.Body.Bytes()); err == nil {
		if f := obs.FindFamily(fams, registry.MetricRequestsShedTotal); f != nil {
			for _, s := range f.Samples {
				row.Shed += int64(s.Value)
			}
		}
		if f := obs.FindFamily(fams, registry.MetricDegradedTotal); f != nil && len(f.Samples) == 1 {
			row.Degraded = int64(f.Samples[0].Value)
		}
	}
	return row
}

// spanBreakdown reads one trace's spans back through /debug/traces —
// the same surface an operator would use — and flattens them to
// name/duration slices for the bench JSON. In-process the trace is
// committed by the time ServeHTTP returns, so no polling is needed.
func spanBreakdown(dbg http.Handler, traceID string) []eval.SpanSlice {
	rec := httptest.NewRecorder()
	dbg.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces/"+traceID, nil))
	if rec.Code != 200 {
		return nil
	}
	var entry serve.TraceEntry
	if err := json.Unmarshal(rec.Body.Bytes(), &entry); err != nil {
		return nil
	}
	out := make([]eval.SpanSlice, 0, len(entry.Spans))
	for _, sp := range entry.Spans {
		out = append(out, eval.SpanSlice{Name: sp.Name, DurationMS: sp.DurationMs})
	}
	return out
}

// RunJobs pushes a deliberately duplicate-heavy burst through the
// async job API: jobsClients concurrent submitters spread across
// jobsTenants API keys share only jobsUnique distinct series, so well
// over half the submissions are duplicates of an in-flight key and
// must coalesce. Queues are sized above the offered load and the
// cache is disabled, so every shed, error, or failed job — and a zero
// coalesce count — is a subsystem regression, not workload noise.
const (
	jobsClients = 10000
	jobsUnique  = 48
	jobsTenants = 16
)

func RunJobs(seed int64) eval.JobsRow {
	// Durability is on for the benchmark — every submission and result
	// goes through the WAL — so a regression in the persistence path
	// shows up in the jobs row, not only in a dedicated microbench.
	// Interval fsync matches a production latency-sensitive deployment;
	// SyncAlways would measure the disk, not the service.
	dataDir, err := os.MkdirTemp("", "rp-jobsbench-")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dataDir)
	srv, err := serve.New(serve.Config{
		CacheSize:     -1,
		JobsQueue:     2 * jobsClients,
		JobsPerTenant: 2 * jobsClients / jobsTenants,
		// Every client holds a finished job until its first poll, so
		// the retention ring must cover the full client count: with
		// fast detections all jobs can complete before the scheduler
		// gets any poller its first turn, and a default-sized store
		// would evict early results into job_not_found 404s.
		JobsStore:   2 * jobsClients,
		JobsDataDir: dataDir,
		JobsFsync:   "25ms",
	})
	if err != nil {
		panic(err)
	}
	defer srv.Close()
	h := srv.Handler()

	bodies := make([][]byte, jobsUnique)
	for i := range bodies {
		cfg := synthetic.PaperConfig(512, synthetic.Sine, []int{20, 50, 100}, 0.1, 0.01, seed+int64(i))
		bodies[i], _ = json.Marshal(map[string]any{"series": synthetic.Generate(cfg)})
	}

	row := eval.JobsRow{Clients: jobsClients, Tenants: jobsTenants, Unique: jobsUnique}
	latMS := make([]float64, jobsClients)
	for i := range latMS {
		latMS[i] = -1
	}
	var errCount atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < jobsClients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			start := time.Now()
			req := httptest.NewRequest("POST", "/v1/jobs", bytes.NewReader(bodies[i%jobsUnique]))
			req.Header.Set(serve.TenantHeader, fmt.Sprintf("tenant-%d", i%jobsTenants))
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, req)
			var sub serve.JobSubmitResponse
			if rec.Code != 202 || json.Unmarshal(rec.Body.Bytes(), &sub) != nil || sub.StatusURL == "" {
				errCount.Add(1)
				return
			}
			// Poll with capped exponential backoff; in-process there is
			// no network to spare, so the cadence can be much tighter
			// than the API's Retry-After hints.
			wait := 2 * time.Millisecond
			for {
				prec := httptest.NewRecorder()
				h.ServeHTTP(prec, httptest.NewRequest("GET", sub.StatusURL, nil))
				var st serve.JobStatusResponse
				if prec.Code != 200 || json.Unmarshal(prec.Body.Bytes(), &st) != nil {
					errCount.Add(1)
					return
				}
				if st.State == "done" || st.State == "failed" {
					break
				}
				time.Sleep(wait)
				if wait *= 2; wait > 250*time.Millisecond {
					wait = 250 * time.Millisecond
				}
			}
			latMS[i] = float64(time.Since(start)) / float64(time.Millisecond)
		}(i)
	}
	wg.Wait()
	row.Errors = int(errCount.Load())

	var done []float64
	for _, ms := range latMS {
		if ms >= 0 {
			done = append(done, ms)
		}
	}
	if len(done) > 0 {
		sort.Float64s(done)
		row.P99MS = done[len(done)*99/100]
	}

	req := httptest.NewRequest("GET", "/metrics", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if fams, err := obs.ParseExposition(rec.Body.Bytes()); err == nil {
		var submitted float64
		if f := obs.FindFamily(fams, registry.MetricJobsSubmittedTotal); f != nil && len(f.Samples) == 1 {
			submitted = f.Samples[0].Value
		}
		if f := obs.FindFamily(fams, registry.MetricJobsCoalescedTotal); f != nil && len(f.Samples) == 1 {
			row.Coalesced = int64(f.Samples[0].Value)
		}
		if f := obs.FindFamily(fams, registry.MetricJobsShedTotal); f != nil && len(f.Samples) == 1 {
			row.Shed = int64(f.Samples[0].Value)
		}
		if f := obs.FindFamily(fams, registry.MetricJobsCompletedTotal); f != nil {
			for _, s := range f.Samples {
				if s.Label("outcome") == "failed" {
					row.Failed += int64(s.Value)
				}
			}
		}
		if submitted > 0 {
			row.HitRate = float64(row.Coalesced) / submitted
		}
	}
	return row
}
