package servicebench

import (
	"encoding/json"
	"testing"
)

// TestSlowestTracePerLeg pins the bench JSON's trace attribution: a
// quick service run must record, for each series-size leg, the
// slowest request's 32-hex trace ID and a non-empty span breakdown
// read back through /debug/traces.
func TestSlowestTracePerLeg(t *testing.T) {
	row := Run(true, 42)
	if row.Errors > 0 {
		t.Fatalf("%d bench requests failed", row.Errors)
	}
	if len(row.Slowest) != 3 {
		t.Fatalf("slowest legs = %d, want one per series size", len(row.Slowest))
	}
	for _, s := range row.Slowest {
		if len(s.TraceID) != 32 || s.DurationMS <= 0 || len(s.Spans) == 0 {
			b, _ := json.Marshal(s)
			t.Fatalf("incomplete slow-trace record: %s", b)
		}
	}
}
