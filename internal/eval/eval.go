// Package eval is the evaluation harness: tolerance-based matching of
// detected periods against ground truth, precision/recall/F1
// aggregation over corpora, per-detector timing, and the experiment
// drivers that regenerate every table and figure of the paper's
// evaluation section (§4).
package eval

import (
	"math"
	"time"

	"robustperiod/internal/baselines"
	"robustperiod/internal/synthetic"
)

// Counts aggregates confusion counts over a corpus.
type Counts struct {
	TP, FP, FN int
}

// Add accumulates another count set.
func (c *Counts) Add(o Counts) { c.TP += o.TP; c.FP += o.FP; c.FN += o.FN }

// Precision returns TP/(TP+FP), defined as 0 when nothing was detected.
func (c Counts) Precision() float64 {
	if c.TP+c.FP == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FP)
}

// Recall returns TP/(TP+FN), defined as 0 when there is no truth.
func (c Counts) Recall() float64 {
	if c.TP+c.FN == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FN)
}

// F1 returns the harmonic mean of precision and recall.
func (c Counts) F1() float64 {
	p, r := c.Precision(), c.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// Match compares detected periods against the truth with a relative
// tolerance: a detection d matches truth t when |d−t| <= tol·t (tol=0
// demands exact equality). Matching is greedy one-to-one from the
// closest pair outward, following the paper's "±0% / ±2% tolerance
// interval around the ground truth".
func Match(detected, truth []int, tol float64) Counts {
	usedD := make([]bool, len(detected))
	usedT := make([]bool, len(truth))
	tp := 0
	for {
		bestD, bestT := -1, -1
		bestErr := math.Inf(1)
		for i, d := range detected {
			if usedD[i] {
				continue
			}
			for j, tr := range truth {
				if usedT[j] {
					continue
				}
				e := math.Abs(float64(d - tr))
				if e <= tol*float64(tr) && e < bestErr {
					bestErr = e
					bestD, bestT = i, j
				}
			}
		}
		if bestD < 0 {
			break
		}
		usedD[bestD] = true
		usedT[bestT] = true
		tp++
	}
	return Counts{TP: tp, FP: len(detected) - tp, FN: len(truth) - tp}
}

// Metrics bundles the three headline scores.
type Metrics struct {
	Precision, Recall, F1 float64
}

// Outcome is the result of evaluating one detector on one corpus.
type Outcome struct {
	Detector string
	Counts   Counts
	Metrics  Metrics
	// MeanTime is the average wall time per series.
	MeanTime time.Duration
}

// Run evaluates a detector over a labeled corpus at the given
// tolerance. When preprocess is true the shared HP detrending is
// applied before detection (the paper detrends uniformly for all
// algorithms).
func Run(d baselines.Detector, corpus []synthetic.Labeled, tol float64, preprocess bool) Outcome {
	var counts Counts
	var elapsed time.Duration
	for _, s := range corpus {
		x := s.X
		start := time.Now()
		if preprocess {
			x = baselines.Preprocess(x)
		}
		got := d.Periods(x)
		elapsed += time.Since(start)
		counts.Add(Match(got, s.Truth, tol))
	}
	out := Outcome{Detector: d.Name(), Counts: counts}
	out.Metrics = Metrics{counts.Precision(), counts.Recall(), counts.F1()}
	if len(corpus) > 0 {
		out.MeanTime = elapsed / time.Duration(len(corpus))
	}
	return out
}
