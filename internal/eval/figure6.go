package eval

import (
	"fmt"
	"math"
	"math/rand"

	"robustperiod/internal/peaks"
	"robustperiod/internal/spectrum"
)

// Figure6 reproduces the periodogram/ACF scheme comparison of the
// paper's Fig. 6: a 4-day Flink-TPS-like series (576 points, T=144) in
// a normal and an outlier-contaminated version, analysed with the
// original, LAD and Huber periodograms and their Wiener–Khinchin ACFs.
// For each scheme it reports the spectral argmax, the top ACF peak
// lag, and the resulting period estimate — the paper's claim is that
// only Huber recovers the normal-data answer from the abnormal data.
func Figure6(seed int64) Table {
	n := 576
	period := 144.0
	rng := rand.New(rand.NewSource(seed))
	normal := make([]float64, n)
	for i := range normal {
		pos := float64(i) / period
		normal[i] = 5 + 4*math.Sin(2*math.Pi*pos) + 1.2*math.Sin(4*math.Pi*pos+0.8) + 0.3*rng.NormFloat64()
	}
	abnormal := append([]float64(nil), normal...)
	// A burst of large one-sided spikes, as in the paper's abnormal case.
	for k := 0; k < 18; k++ {
		abnormal[rng.Intn(n)] += 10 + rng.Float64()*20
	}

	t := Table{
		Title:  "Figure 6: periodogram/ACF schemes on normal vs abnormal Flink-like data (true T=144)",
		Header: []string{"Scheme", "Data", "SpecArgmaxPeriod", "ACFPeakMedianDist"},
	}
	type scheme struct {
		name string
		loss spectrum.Loss
	}
	schemes := []scheme{
		{"Original", spectrum.LossL2},
		{"LAD", spectrum.LossLAD},
		{"Huber", spectrum.LossHuber},
	}
	for _, sc := range schemes {
		for _, d := range []struct {
			name string
			x    []float64
		}{{"normal", normal}, {"abnormal", abnormal}} {
			specP, acfLag := analyzeScheme(d.x, sc.loss)
			t.Rows = append(t.Rows, []string{
				sc.name, d.name,
				fmt.Sprintf("%.1f", specP),
				fmt.Sprintf("%d", acfLag),
			})
		}
	}
	return t
}

// analyzeScheme returns the period implied by the spectral argmax and
// the median distance between qualifying ACF peaks — the same
// summarizer the pipeline's Huber-ACF-Med step uses, which is what the
// paper reads off the Fig. 6 ACF panels.
func analyzeScheme(x []float64, loss spectrum.Loss) (specPeriod float64, acfLag int) {
	n := len(x)
	mean := 0.0
	for _, v := range x {
		mean += v
	}
	mean /= float64(n)
	padded := make([]float64, 2*n)
	for i, v := range x {
		padded[i] = v - mean
	}
	half, err := spectrum.HybridPeriodogram(padded, 1, n-1, spectrum.Options{Loss: loss, FitLength: n})
	if err != nil {
		return 0, 0
	}
	kBest := 1
	for k := 2; k < len(half); k++ {
		if half[k] > half[kBest] {
			kBest = k
		}
	}
	specPeriod = float64(2*n) / float64(kBest)
	acf, err := spectrum.ACFFromPeriodogram(spectrum.FullRange(half), n)
	if err != nil {
		return specPeriod, 0
	}
	idx := peaks.Find(acf[:3*n/4], peaks.Options{Height: 0.3, MinDistance: 36})
	// Skip the short-lag shoulder (residual noise autocorrelation);
	// the periods of interest in this figure are ≥ the daily scale.
	for len(idx) > 0 && idx[0] < 24 {
		idx = idx[1:]
	}
	if len(idx) == 1 {
		return specPeriod, idx[0]
	}
	return specPeriod, peaks.MedianDistance(idx)
}
