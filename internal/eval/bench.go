// The machine-readable benchmark harness behind `rpbench -json` and
// the CI bench-guard job: a quality suite scoring the RobustPeriod
// detector on the Tables 1–3 corpora, a perf suite timing whole
// detections plus the per-stage breakdown from the trace layer, and a
// comparator that turns a committed baseline report into a regression
// gate.
package eval

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"time"

	"robustperiod/internal/baselines"
	"robustperiod/internal/core"
	"robustperiod/internal/synthetic"
	"robustperiod/internal/trace"
)

// BenchSchema identifies the report layout; bump on incompatible
// changes so CompareBench can refuse stale baselines.
const BenchSchema = "robustperiod-bench/v1"

// QualityRow scores the RobustPeriod detector on one corpus at one
// tolerance. Score repeats the table's headline metric (precision for
// Table 1, F1 for Tables 2–3) so the regression gate needs no
// per-table knowledge.
type QualityRow struct {
	Table     int     `json:"table"`
	Corpus    string  `json:"corpus"`
	Tol       float64 `json:"tol"`
	Metric    string  `json:"metric"`
	Score     float64 `json:"score"`
	Precision float64 `json:"precision"`
	Recall    float64 `json:"recall"`
	F1        float64 `json:"f1"`
}

// Key identifies the row for baseline matching.
func (q QualityRow) Key() string {
	return fmt.Sprintf("table%d/%s/tol=%g", q.Table, q.Corpus, q.Tol)
}

// PerfRow times whole detections at one series length, with the
// per-stage wall-time breakdown from a traced run.
type PerfRow struct {
	Name        string           `json:"name"`
	N           int              `json:"n"`
	Iters       int              `json:"iters"`
	NsPerOp     int64            `json:"nsPerOp"`
	AllocsPerOp int64            `json:"allocsPerOp"`
	BytesPerOp  int64            `json:"bytesPerOp"`
	StageNs     map[string]int64 `json:"stageNs"`
}

// BenchReport is the full machine-readable result written to
// BENCH_<timestamp>.json and consumed by CompareBench.
type BenchReport struct {
	Schema    string       `json:"schema"`
	Generated string       `json:"generated"`
	GoVersion string       `json:"goVersion"`
	GOOS      string       `json:"goos"`
	GOARCH    string       `json:"goarch"`
	Quick     bool         `json:"quick"`
	Trials    int          `json:"trials"`
	Seed      int64        `json:"seed"`
	Quality   []QualityRow `json:"quality"`
	Perf      []PerfRow    `json:"perf"`
	// PerfAsym holds the long-series N=8192/16384 legs that pin down
	// the detector's asymptotic scaling (additive; absent in older
	// baselines, so CompareBench skips rows the baseline lacks).
	PerfAsym []PerfRow `json:"perfAsym,omitempty"`
	// Service is the in-process service leg (additive since the
	// schema's introduction; absent in older baselines).
	Service *ServiceRow `json:"service,omitempty"`
	// Jobs is the duplicate-rich async-job heavy-traffic leg
	// (additive; absent in older baselines).
	Jobs *JobsRow `json:"jobs,omitempty"`
}

// benchCorpus names one Tables 1–3 corpus for the quality suite. The
// seed offsets mirror the table drivers above so a bench run scores
// the detector on exactly the corpora the rendered tables use.
type benchCorpus struct {
	table  int
	name   string
	metric string
	build  func(trials int, seed int64) []synthetic.Labeled
}

func benchCorpora() []benchCorpus {
	return []benchCorpus{
		{1, "sin-mild", "precision", func(tr int, s int64) []synthetic.Labeled {
			return synthetic.SinCorpus(tr, 1000, synthetic.Sine, []int{100}, 0.1, 0.01, s)
		}},
		{1, "sin-severe", "precision", func(tr int, s int64) []synthetic.Labeled {
			return synthetic.SinCorpus(tr, 1000, synthetic.Sine, []int{100}, 2, 0.2, s+1)
		}},
		{1, "cran", "precision", func(_ int, s int64) []synthetic.Labeled {
			return synthetic.CRANCorpus(s + 2)
		}},
		{2, "multi-mild", "f1", func(tr int, s int64) []synthetic.Labeled {
			return synthetic.SinCorpus(tr, 1000, synthetic.Sine, []int{20, 50, 100}, 0.1, 0.01, s+100)
		}},
		{2, "multi-severe", "f1", func(tr int, s int64) []synthetic.Labeled {
			return synthetic.SinCorpus(tr, 1000, synthetic.Sine, []int{20, 50, 100}, 1, 0.1, s+101)
		}},
		{2, "yahoo-a3", "f1", func(tr int, s int64) []synthetic.Labeled {
			return synthetic.YahooA3Corpus(tr, s+102)
		}},
		{2, "yahoo-a4", "f1", func(tr int, s int64) []synthetic.Labeled {
			return synthetic.YahooA4Corpus(tr, s+103)
		}},
		{3, "square", "f1", func(tr int, s int64) []synthetic.Labeled {
			return synthetic.SinCorpus(tr, 1000, synthetic.Square, []int{20, 50, 100}, 0.1, 0.01, s+200)
		}},
		{3, "triangle", "f1", func(tr int, s int64) []synthetic.Labeled {
			return synthetic.SinCorpus(tr, 1000, synthetic.Triangle, []int{20, 50, 100}, 0.1, 0.01, s+201)
		}},
	}
}

// BenchQuality scores the RobustPeriod detector on every Tables 1–3
// corpus at tolerances ±0% and ±2%. Fully deterministic in (trials,
// seed), so a baseline generated with the same arguments reproduces
// bit-identical scores and the gate can reject any drop.
func BenchQuality(trials int, seed int64) []QualityRow {
	d := baselines.RobustPeriod{}
	var rows []QualityRow
	for _, bc := range benchCorpora() {
		corpus := bc.build(trials, seed)
		for _, tol := range []float64{0, 0.02} {
			m := Run(d, corpus, tol, true).Metrics
			row := QualityRow{
				Table: bc.table, Corpus: bc.name, Tol: tol, Metric: bc.metric,
				Precision: m.Precision, Recall: m.Recall, F1: m.F1,
			}
			if bc.metric == "precision" {
				row.Score = m.Precision
			} else {
				row.Score = m.F1
			}
			rows = append(rows, row)
		}
	}
	return rows
}

// BenchPerf times whole detections on the canonical 3-periodic
// synthetic series at N=500/1000/2000. NsPerOp/AllocsPerOp come from
// an untraced loop (the production path); StageNs comes from separate
// traced runs so the breakdown never contaminates the headline
// number.
func BenchPerf(quick bool, seed int64) []PerfRow {
	iters := 10
	if quick {
		iters = 3
	}
	var rows []PerfRow
	for _, n := range []int{500, 1000, 2000} {
		cfg := synthetic.PaperConfig(n, synthetic.Sine, []int{20, 50, 100}, 0.1, 0.01, seed)
		x := synthetic.Generate(cfg)
		rows = append(rows, measureDetect(fmt.Sprintf("detect/N=%d", n), x, iters))
	}
	return rows
}

// BenchPerfAsym times whole detections on the same canonical series
// at N=8192 and N=16384, where one run costs seconds to tens of
// seconds. At that scale a warm-up plus an iteration loop would turn
// the bench into minutes, so each leg is a single traced run: the
// wall time doubles as the headline number and the trace supplies the
// stage breakdown in the same pass. Baseline and current measure
// identically, so the regression ratio stays meaningful. The legs run
// in quick mode too: the committed baseline is quick-generated and
// the gate skips rows the baseline lacks.
func BenchPerfAsym(seed int64) []PerfRow {
	var rows []PerfRow
	for _, n := range []int{8192, 16384} {
		cfg := synthetic.PaperConfig(n, synthetic.Sine, []int{20, 50, 100}, 0.1, 0.01, seed)
		x := synthetic.Generate(cfg)
		rows = append(rows, measureDetectOnce(fmt.Sprintf("detect/N=%d", n), x))
	}
	return rows
}

// measureDetectOnce times a single traced detection, reading wall
// time, allocations, and the per-stage breakdown from the same run.
func measureDetectOnce(name string, x []float64) PerfRow {
	opts := core.Options{Trace: trace.New()}
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	res, err := core.Detect(x, opts)
	wall := time.Since(start)
	runtime.ReadMemStats(&after)
	if err != nil {
		return PerfRow{Name: name, N: len(x), Iters: 0}
	}
	row := PerfRow{
		Name:        name,
		N:           len(x),
		Iters:       1,
		NsPerOp:     wall.Nanoseconds(),
		AllocsPerOp: int64(after.Mallocs - before.Mallocs),
		BytesPerOp:  int64(after.TotalAlloc - before.TotalAlloc),
		StageNs:     map[string]int64{},
	}
	if res != nil && res.Trace != nil {
		for _, st := range res.Trace.Stages {
			row.StageNs[st.Name] += st.Duration.Nanoseconds()
		}
	}
	return row
}

// measureDetect runs one warm-up detection, then an untraced timing
// loop for wall time and allocation rates, then traced runs for the
// per-stage breakdown.
func measureDetect(name string, x []float64, iters int) PerfRow {
	opts := core.Options{}
	if _, err := core.Detect(x, opts); err != nil { // warm-up
		return PerfRow{Name: name, N: len(x), Iters: 0}
	}

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	for i := 0; i < iters; i++ {
		core.Detect(x, opts) //nolint:errcheck // warm-up proved it succeeds
	}
	wall := time.Since(start)
	runtime.ReadMemStats(&after)

	row := PerfRow{
		Name:        name,
		N:           len(x),
		Iters:       iters,
		NsPerOp:     wall.Nanoseconds() / int64(iters),
		AllocsPerOp: int64(after.Mallocs-before.Mallocs) / int64(iters),
		BytesPerOp:  int64(after.TotalAlloc-before.TotalAlloc) / int64(iters),
		StageNs:     map[string]int64{},
	}

	// Per-stage breakdown: fewer repetitions are enough since each
	// trace already averages the stage over every call inside one run.
	traceReps := max(1, iters/3)
	for i := 0; i < traceReps; i++ {
		tr := trace.New()
		topts := opts
		topts.Trace = tr
		res, err := core.Detect(x, topts)
		if err != nil || res == nil || res.Trace == nil {
			continue
		}
		for _, st := range res.Trace.Stages {
			row.StageNs[st.Name] += st.Duration.Nanoseconds()
		}
	}
	for k := range row.StageNs {
		row.StageNs[k] /= int64(traceReps)
	}
	return row
}

// RunBench produces the full report. Generated is stamped and the
// Service leg attached by the caller (cmd/rpbench) so this package
// stays clock-free, serve-free and testable.
func RunBench(quick bool, trials int, seed int64) BenchReport {
	return BenchReport{
		Schema:    BenchSchema,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Quick:     quick,
		Trials:    trials,
		Seed:      seed,
		Quality:   BenchQuality(trials, seed),
		Perf:      BenchPerf(quick, seed),
		PerfAsym:  BenchPerfAsym(seed),
	}
}

// qualityEps absorbs float formatting noise; corpora are seeded and
// the detector is deterministic, so any real drop exceeds this.
const qualityEps = 1e-9

// CompareBench gates current against baseline: any quality-score drop
// on the Tables 1–3 corpora is a violation, and any whole-detection
// wall-time regression beyond maxRegress (e.g. 0.20 for +20%) is a
// violation. A negative maxRegress disables the perf gate (useful
// when baseline and current ran on different hardware). Returns a
// human-readable violation list, empty when the gate passes.
func CompareBench(baseline, current BenchReport, maxRegress float64) []string {
	var violations []string
	if baseline.Schema != BenchSchema {
		return []string{fmt.Sprintf("baseline schema %q is not %q — regenerate the baseline", baseline.Schema, BenchSchema)}
	}
	if baseline.Trials != current.Trials || baseline.Seed != current.Seed {
		violations = append(violations, fmt.Sprintf(
			"baseline ran with trials=%d seed=%d but current ran with trials=%d seed=%d — quality scores are not comparable",
			baseline.Trials, baseline.Seed, current.Trials, current.Seed))
	}

	base := make(map[string]QualityRow, len(baseline.Quality))
	for _, q := range baseline.Quality {
		base[q.Key()] = q
	}
	cur := make(map[string]QualityRow, len(current.Quality))
	for _, q := range current.Quality {
		cur[q.Key()] = q
	}
	keys := make([]string, 0, len(base))
	for k := range base {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		b := base[k]
		c, ok := cur[k]
		if !ok {
			violations = append(violations, fmt.Sprintf("quality row %s missing from current run", k))
			continue
		}
		if c.Score < b.Score-qualityEps {
			violations = append(violations, fmt.Sprintf(
				"%s: %s dropped %.4f -> %.4f", k, b.Metric, b.Score, c.Score))
		}
	}

	violations = append(violations, compareService(current.Service)...)
	violations = append(violations, compareJobs(current.Jobs)...)

	if maxRegress >= 0 {
		basePerf := make(map[string]PerfRow, len(baseline.Perf)+len(baseline.PerfAsym))
		for _, p := range baseline.Perf {
			basePerf[p.Name] = p
		}
		for _, p := range baseline.PerfAsym {
			basePerf[p.Name] = p
		}
		for _, c := range append(append([]PerfRow(nil), current.Perf...), current.PerfAsym...) {
			b, ok := basePerf[c.Name]
			if !ok || b.NsPerOp <= 0 {
				continue
			}
			limit := float64(b.NsPerOp) * (1 + maxRegress)
			if float64(c.NsPerOp) > limit {
				violations = append(violations, fmt.Sprintf(
					"%s: wall time regressed %.2fms -> %.2fms (>%.0f%% over baseline)",
					c.Name, float64(b.NsPerOp)/1e6, float64(c.NsPerOp)/1e6, maxRegress*100))
			}
		}
	}
	return violations
}

// FormatStageDiff renders a GitHub-flavoured markdown table comparing
// the current report's per-stage wall times against a baseline, one
// block per perf leg (short legs first, then the asymptotic ones).
// Informational only — the regression gate is CompareBench; this
// feeds the perf-guard job summary so a reviewer can see where time
// went without downloading artifacts. Legs or stages the baseline
// lacks render with an em dash in the baseline column.
func FormatStageDiff(baseline, current BenchReport) string {
	basePerf := make(map[string]PerfRow, len(baseline.Perf)+len(baseline.PerfAsym))
	for _, p := range append(append([]PerfRow(nil), baseline.Perf...), baseline.PerfAsym...) {
		basePerf[p.Name] = p
	}

	var b strings.Builder
	b.WriteString("| Leg | Stage | Baseline (ms) | Current (ms) | Speedup |\n")
	b.WriteString("|---|---|---:|---:|---:|\n")
	ms := func(ns int64) string { return fmt.Sprintf("%.2f", float64(ns)/1e6) }
	row := func(leg, stage string, baseNs int64, haveBase bool, curNs int64) {
		baseCol, speedCol := "—", "—"
		if haveBase && baseNs > 0 {
			baseCol = ms(baseNs)
			if curNs > 0 {
				speedCol = fmt.Sprintf("%.2fx", float64(baseNs)/float64(curNs))
			}
		}
		fmt.Fprintf(&b, "| %s | %s | %s | %s | %s |\n", leg, stage, baseCol, ms(curNs), speedCol)
	}
	for _, c := range append(append([]PerfRow(nil), current.Perf...), current.PerfAsym...) {
		base, ok := basePerf[c.Name]
		row(c.Name, "total", base.NsPerOp, ok, c.NsPerOp)
		stages := make([]string, 0, len(c.StageNs))
		for s := range c.StageNs {
			stages = append(stages, s)
		}
		sort.Strings(stages)
		for _, s := range stages {
			baseNs, haveStage := base.StageNs[s]
			row(c.Name, s, baseNs, ok && haveStage, c.StageNs[s])
		}
	}
	return b.String()
}
