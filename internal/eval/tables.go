package eval

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"robustperiod/internal/baselines"
	"robustperiod/internal/core"
	"robustperiod/internal/forecast"
	"robustperiod/internal/synthetic"
)

// Table is a rendered experiment result.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// String renders the table with aligned columns.
func (t Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", t.Title)
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	return b.String()
}

func f3(v float64) string { return fmt.Sprintf("%.2f", v) }

// singleDetectors are Table 1's comparison set.
func singleDetectors() []baselines.Detector {
	return []baselines.Detector{
		baselines.FindFrequency{},
		baselines.SAZED{},
		baselines.SAZED{Optimal: true},
		baselines.RobustPeriod{},
	}
}

// multiDetectors are Table 2/3/4's comparison set.
func multiDetectors() []baselines.Detector {
	return []baselines.Detector{
		baselines.Siegel{},
		baselines.AutoPeriod{Seed: 7},
		baselines.WaveletFisher{},
		baselines.RobustPeriod{},
	}
}

// ablationDetectors are Table 5's comparison set.
func ablationDetectors() []baselines.Detector {
	nr := baselines.RobustPeriod{}
	nr.Opts.NonRobust = true
	return []baselines.Detector{
		baselines.HuberFisher{},
		baselines.HuberSiegelACF{},
		nr,
		baselines.RobustPeriod{},
	}
}

// Table1 reproduces "Precision comparisons of single-period detection
// algorithms on synthetic sin-wave data and public CRAN data".
func Table1(trials int, seed int64) Table {
	mild := synthetic.SinCorpus(trials, 1000, synthetic.Sine, []int{100}, 0.1, 0.01, seed)
	severe := synthetic.SinCorpus(trials, 1000, synthetic.Sine, []int{100}, 2, 0.2, seed+1)
	cran := synthetic.CRANCorpus(seed + 2)
	t := Table{
		Title: "Table 1: single-period precision (synthetic sin mild/severe, CRAN surrogate)",
		Header: []string{"Algorithm",
			"mild±0%", "mild±2%", "severe±0%", "severe±2%", "CRAN±0%", "CRAN±2%"},
	}
	for _, d := range singleDetectors() {
		row := []string{d.Name()}
		for _, c := range [][]synthetic.Labeled{mild, severe} {
			for _, tol := range []float64{0, 0.02} {
				row = append(row, f3(Run(d, c, tol, true).Metrics.Precision))
			}
		}
		for _, tol := range []float64{0, 0.02} {
			row = append(row, f3(Run(d, cran, tol, true).Metrics.Precision))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// Table2 reproduces "F1 score comparisons of multi-period detection
// algorithms on synthetic sin-wave data and public Yahoo data".
func Table2(trials int, seed int64) Table {
	mild := synthetic.SinCorpus(trials, 1000, synthetic.Sine, []int{20, 50, 100}, 0.1, 0.01, seed)
	severe := synthetic.SinCorpus(trials, 1000, synthetic.Sine, []int{20, 50, 100}, 1, 0.1, seed+1)
	a3 := synthetic.YahooA3Corpus(trials, seed+2)
	a4 := synthetic.YahooA4Corpus(trials, seed+3)
	t := Table{
		Title: "Table 2: multi-period F1 (synthetic sin mild/severe, Yahoo-A3/A4 surrogates)",
		Header: []string{"Algorithm",
			"mild±0%", "mild±2%", "severe±0%", "severe±2%", "A3±0%", "A3±2%", "A4±0%", "A4±2%"},
	}
	for _, d := range multiDetectors() {
		row := []string{d.Name()}
		for _, c := range [][]synthetic.Labeled{mild, severe, a3, a4} {
			for _, tol := range []float64{0, 0.02} {
				row = append(row, f3(Run(d, c, tol, true).Metrics.F1))
			}
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// Table3 reproduces "F1 score comparisons ... on synthetic square- and
// triangle-wave datasets" (σ²=0.1, η=0.01).
func Table3(trials int, seed int64) Table {
	square := synthetic.SinCorpus(trials, 1000, synthetic.Square, []int{20, 50, 100}, 0.1, 0.01, seed)
	triangle := synthetic.SinCorpus(trials, 1000, synthetic.Triangle, []int{20, 50, 100}, 0.1, 0.01, seed+1)
	t := Table{
		Title:  "Table 3: multi-period F1 on square- and triangle-wave data",
		Header: []string{"Algorithm", "square±0%", "square±2%", "triangle±0%", "triangle±2%"},
	}
	for _, d := range multiDetectors() {
		row := []string{d.Name()}
		for _, c := range [][]synthetic.Labeled{square, triangle} {
			for _, tol := range []float64{0, 0.02} {
				row = append(row, f3(Run(d, c, tol, true).Metrics.F1))
			}
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// Table4 reproduces "Comparisons of periodicity detection on 6
// real-world datasets from Alibaba cloud database/computing": the raw
// detected period sets on each cloud surrogate.
func Table4(seed int64) Table {
	data := synthetic.CloudAll(seed)
	t := Table{
		Title:  "Table 4: detected periods on the 6 cloud-monitoring surrogates",
		Header: []string{"Algorithm"},
	}
	for _, s := range data {
		t.Header = append(t.Header, fmt.Sprintf("%s T=%v", s.Name, s.Truth))
	}
	for _, d := range multiDetectors() {
		row := []string{d.Name()}
		for _, s := range data {
			got := d.Periods(baselines.Preprocess(s.X))
			sort.Ints(got)
			if len(got) == 0 {
				row = append(row, "none")
			} else {
				cells := make([]string, len(got))
				for i, p := range got {
					cells[i] = fmt.Sprintf("%d", p)
				}
				row = append(row, strings.Join(cells, ","))
			}
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// Table5 reproduces the ablation study: precision/recall/F1 at ±0%/±2%
// on the severe synthetic sin-wave data (σ²=2, η=0.2).
func Table5(trials int, seed int64) Table {
	corpus := synthetic.SinCorpus(trials, 1000, synthetic.Sine, []int{20, 50, 100}, 2, 0.2, seed)
	t := Table{
		Title: "Table 5: ablations on severe synthetic data (σ²=2, η=0.2)",
		Header: []string{"Algorithm",
			"pre±0%", "rec±0%", "f1±0%", "pre±2%", "rec±2%", "f1±2%"},
	}
	for _, d := range ablationDetectors() {
		row := []string{d.Name()}
		for _, tol := range []float64{0, 0.02} {
			m := Run(d, corpus, tol, true).Metrics
			row = append(row, f3(m.Precision), f3(m.Recall), f3(m.F1))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// Table6 reproduces the downstream forecasting comparison: detected
// periods from each multi-period algorithm feed the multi-seasonal
// forecaster (TBATS substitute) on Yahoo-A4 surrogates; RMSE and MAE
// are averaged over the corpus for horizons 84 and 168.
func Table6(trials int, seed int64) Table {
	corpus := synthetic.YahooA4Corpus(trials, seed)
	horizons := []int{84, 168}
	t := Table{
		Title:  "Table 6: forecasting with detected periods (Yahoo-A4 surrogate, multi-seasonal ES)",
		Header: []string{"Algorithm", "RMSE h=84", "RMSE h=168", "MAE h=84", "MAE h=168"},
	}
	type scores struct{ rmse, mae [2]float64 }
	for _, d := range multiDetectors() {
		var sc scores
		count := 0
		for _, s := range corpus {
			n := len(s.X)
			train := s.X[:n/2]
			periods := d.Periods(baselines.Preprocess(train))
			if len(periods) == 0 {
				periods = []int{len(train) / 4} // arbitrary fallback, as a period-less TBATS would flatline
			}
			fc, err := (forecast.MultiSeasonal{Periods: periods}).Forecast(train, horizons[1])
			if err != nil {
				continue
			}
			count++
			for hi, h := range horizons {
				test := s.X[n/2 : n/2+h]
				sc.rmse[hi] += forecast.RMSE(fc[:h], test)
				sc.mae[hi] += forecast.MAE(fc[:h], test)
			}
		}
		row := []string{d.Name()}
		if count == 0 {
			row = append(row, "-", "-", "-", "-")
		} else {
			row = append(row,
				fmt.Sprintf("%.3f", sc.rmse[0]/float64(count)),
				fmt.Sprintf("%.3f", sc.rmse[1]/float64(count)),
				fmt.Sprintf("%.3f", sc.mae[0]/float64(count)),
				fmt.Sprintf("%.3f", sc.mae[1]/float64(count)))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// Resample changes a labeled series' length by an integer factor:
// positive factors upsample by linear interpolation, negative factors
// decimate. Truth periods scale accordingly. This is the "sampling
// technique" of §4.5.1 used to build the length-scaling corpora.
func Resample(s synthetic.Labeled, factor int) synthetic.Labeled {
	if factor == 1 || factor == 0 || factor == -1 {
		return s
	}
	out := synthetic.Labeled{Name: fmt.Sprintf("%s(x%d)", s.Name, factor)}
	if factor > 1 {
		n := len(s.X)
		x := make([]float64, n*factor)
		for i := range x {
			pos := float64(i) / float64(factor)
			lo := int(pos)
			frac := pos - float64(lo)
			hi := lo + 1
			if hi >= n {
				hi = n - 1
			}
			x[i] = s.X[lo]*(1-frac) + s.X[hi]*frac
		}
		out.X = x
		for _, p := range s.Truth {
			out.Truth = append(out.Truth, p*factor)
		}
		return out
	}
	dec := -factor
	x := make([]float64, 0, len(s.X)/dec)
	for i := 0; i < len(s.X); i += dec {
		x = append(x, s.X[i])
	}
	out.X = x
	for _, p := range s.Truth {
		out.Truth = append(out.Truth, p/dec)
	}
	return out
}

// lengthCorpora builds the 500/1000/2000-point corpora of §4.5.1 by
// resampling the canonical 1000-point 3-periodic series.
func lengthCorpora(trials int, seed int64) map[int][]synthetic.Labeled {
	base := synthetic.SinCorpus(trials, 1000, synthetic.Sine, []int{20, 50, 100}, 0.1, 0.01, seed)
	half := make([]synthetic.Labeled, 0, len(base))
	double := make([]synthetic.Labeled, 0, len(base))
	for _, s := range base {
		half = append(half, Resample(s, -2))
		double = append(double, Resample(s, 2))
	}
	return map[int][]synthetic.Labeled{500: half, 1000: base, 2000: double}
}

// Table7 reproduces the running-time comparison across series lengths.
func Table7(trials int, seed int64) Table {
	corpora := lengthCorpora(trials, seed)
	t := Table{
		Title:  "Table 7: mean running time per series",
		Header: []string{"Algorithm", "N=500", "N=1000", "N=2000"},
	}
	for _, d := range multiDetectors() {
		row := []string{d.Name()}
		for _, n := range []int{500, 1000, 2000} {
			o := Run(d, corpora[n], 0.02, true)
			row = append(row, o.MeanTime.Round(time.Microsecond).String())
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// Table8 reproduces the F1-vs-length comparison.
func Table8(trials int, seed int64) Table {
	corpora := lengthCorpora(trials, seed)
	t := Table{
		Title:  "Table 8: F1 score vs series length (tolerance ±2%)",
		Header: []string{"Algorithm", "N=500", "N=1000", "N=2000"},
	}
	for _, d := range multiDetectors() {
		row := []string{d.Name()}
		for _, n := range []int{500, 1000, 2000} {
			row = append(row, f3(Run(d, corpora[n], 0.02, true).Metrics.F1))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// Figure5 renders the intermediate results of RobustPeriod on the
// canonical 3-periodic synthetic series: per-level wavelet variance,
// Fisher-test outcome, and ACF validation — the paper's Fig. 5.
func Figure5(seed int64) Table {
	cfg := synthetic.PaperConfig(1000, synthetic.Sine, []int{20, 50, 100}, 0.1, 0.01, seed)
	x := synthetic.Generate(cfg)
	res, err := core.Detect(x, core.Options{EnergyShare: 1})
	t := Table{
		Title:  fmt.Sprintf("Figure 5: per-level intermediate results (detected periods %v)", resultPeriods(res, err)),
		Header: []string{"Level", "WaveletVar", "Selected", "p-value", "per_T", "acf_T", "fin_T", "Periodic"},
	}
	if err != nil {
		t.Rows = append(t.Rows, []string{"error", err.Error()})
		return t
	}
	for _, lv := range res.Levels {
		d := lv.Detection
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", lv.Level),
			fmt.Sprintf("%.4f", lv.Variance.Variance),
			fmt.Sprintf("%v", lv.Selected),
			fmt.Sprintf("%.2e", d.PValue),
			fmt.Sprintf("%d", d.Candidate),
			fmt.Sprintf("%d", d.ACFPeriod),
			fmt.Sprintf("%d", d.Final),
			fmt.Sprintf("%v", d.Periodic),
		})
	}
	return t
}

func resultPeriods(res *core.Result, err error) []int {
	if err != nil || res == nil {
		return nil
	}
	return res.Periods
}
