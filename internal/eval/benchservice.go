// The data and gate halves of the benchmark's service leg. The run
// half lives in internal/eval/servicebench: it imports internal/serve
// (and through it the root robustperiod package), an edge eval itself
// must not take because the root package's tests import eval.
package eval

import "fmt"

// ServiceRow summarizes the in-process service run of the benchmark
// (see servicebench.Run): the perf-suite series served through a real
// rpserved handler stack.
type ServiceRow struct {
	Requests int   `json:"requests"`
	Errors   int   `json:"errors"`   // non-200 responses
	Shed     int64 `json:"shed"`     // requests_shed_total across endpoints
	Degraded int64 `json:"degraded"` // detections with degradation annotations
}

// compareService gates the service leg: a healthy single-tenant run
// over the perf corpora must admit and fully serve every request.
func compareService(current *ServiceRow) []string {
	if current == nil {
		return nil
	}
	var violations []string
	if current.Shed > 0 {
		violations = append(violations, fmt.Sprintf(
			"service: %d of %d bench requests were shed — admission control fires on an idle service", current.Shed, current.Requests))
	}
	if current.Errors > 0 {
		violations = append(violations, fmt.Sprintf(
			"service: %d of %d bench requests failed", current.Errors, current.Requests))
	}
	if current.Degraded > 0 {
		violations = append(violations, fmt.Sprintf(
			"service: %d of %d bench detections degraded on clean input", current.Degraded, current.Requests))
	}
	return violations
}
