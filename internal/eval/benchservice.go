// The data and gate halves of the benchmark's service leg. The run
// half lives in internal/eval/servicebench: it imports internal/serve
// (and through it the root robustperiod package), an edge eval itself
// must not take because the root package's tests import eval.
package eval

import "fmt"

// ServiceRow summarizes the in-process service run of the benchmark
// (see servicebench.Run): the perf-suite series served through a real
// rpserved handler stack.
type ServiceRow struct {
	Requests int         `json:"requests"`
	Errors   int         `json:"errors"`            // non-200 responses
	Shed     int64       `json:"shed"`              // requests_shed_total across endpoints
	Degraded int64       `json:"degraded"`          // detections with degradation annotations
	Slowest  []SlowTrace `json:"slowest,omitempty"` // per-leg slowest request, with its span tree
}

// SlowTrace pins the slowest request of one bench leg to its trace:
// the trace ID from the response's traceparent header (greppable in
// logs and metric exemplars) and the server-side span breakdown, so a
// perf regression in the bench JSON arrives pre-attributed to a
// pipeline stage instead of as a bare wall-clock number.
type SlowTrace struct {
	Leg        string      `json:"leg"`     // e.g. "detect/n=2000"
	TraceID    string      `json:"traceId"` // 32-hex W3C trace ID
	DurationMS float64     `json:"durationMS"`
	Spans      []SpanSlice `json:"spans,omitempty"`
}

// SpanSlice is one span of a SlowTrace's breakdown.
type SpanSlice struct {
	Name       string  `json:"name"`
	DurationMS float64 `json:"durationMS"`
}

// JobsRow summarizes the duplicate-rich async-job heavy-traffic leg
// (see servicebench.RunJobs): thousands of concurrent submitters with
// a deliberately duplicate-heavy key mix, exercising coalescing and
// fair-share admission on the async path.
type JobsRow struct {
	Clients   int     `json:"clients"`   // concurrent submitters
	Tenants   int     `json:"tenants"`   // distinct X-API-Key values
	Unique    int     `json:"unique"`    // distinct (series, options) keys
	Errors    int     `json:"errors"`    // submissions or polls that failed outright
	Failed    int64   `json:"failed"`    // jobs reaching the failed terminal state
	Shed      int64   `json:"shed"`      // rp_jobs_shed_total — unexpected on a sized queue
	Coalesced int64   `json:"coalesced"` // rp_jobs_coalesced_total
	HitRate   float64 `json:"hitRate"`   // coalesced / submitted
	P99MS     float64 `json:"p99MS"`     // submit-to-result latency, 99th percentile
}

// compareJobs gates the async leg: queues are sized for the offered
// load, the input is clean, and more than half the keys are
// duplicates — so sheds, failures, or a zero coalesce hit-rate each
// mean the subsystem (not the workload) regressed.
func compareJobs(current *JobsRow) []string {
	if current == nil {
		return nil
	}
	var violations []string
	if current.Errors > 0 {
		violations = append(violations, fmt.Sprintf(
			"jobs: %d of %d async clients hit a request error", current.Errors, current.Clients))
	}
	if current.Failed > 0 {
		violations = append(violations, fmt.Sprintf(
			"jobs: %d jobs failed on clean input", current.Failed))
	}
	if current.Shed > 0 {
		violations = append(violations, fmt.Sprintf(
			"jobs: %d submissions shed on a queue sized for the load", current.Shed))
	}
	if current.Coalesced == 0 {
		violations = append(violations, fmt.Sprintf(
			"jobs: zero coalesced submissions on a %d-client/%d-key duplicate-rich run — coalescing is inert",
			current.Clients, current.Unique))
	}
	// Deliberately generous absolute bound (hosted runners vary): the
	// leg's short series finish in seconds when coalescing and
	// fair-share dequeue work, so a minute-scale P99 means submissions
	// serialized or stalled.
	const jobsP99BoundMS = 60_000
	if current.P99MS > jobsP99BoundMS {
		violations = append(violations, fmt.Sprintf(
			"jobs: submit-to-result P99 %.0fms exceeds the %dms bound", current.P99MS, int(jobsP99BoundMS)))
	}
	return violations
}

// compareService gates the service leg: a healthy single-tenant run
// over the perf corpora must admit and fully serve every request.
func compareService(current *ServiceRow) []string {
	if current == nil {
		return nil
	}
	var violations []string
	if current.Shed > 0 {
		violations = append(violations, fmt.Sprintf(
			"service: %d of %d bench requests were shed — admission control fires on an idle service", current.Shed, current.Requests))
	}
	if current.Errors > 0 {
		violations = append(violations, fmt.Sprintf(
			"service: %d of %d bench requests failed", current.Errors, current.Requests))
	}
	if current.Degraded > 0 {
		violations = append(violations, fmt.Sprintf(
			"service: %d of %d bench detections degraded on clean input", current.Degraded, current.Requests))
	}
	return violations
}
