package eval

import (
	"strings"
	"testing"
)

func benchFixture() BenchReport {
	return BenchReport{
		Schema: BenchSchema,
		Trials: 5,
		Seed:   1,
		Quality: []QualityRow{
			{Table: 1, Corpus: "sin-mild", Tol: 0, Metric: "precision", Score: 1.0},
			{Table: 2, Corpus: "multi-mild", Tol: 0.02, Metric: "f1", Score: 0.95},
		},
		Perf: []PerfRow{
			{Name: "detect/N=1000", N: 1000, NsPerOp: 100_000_000},
		},
	}
}

func TestCompareBenchPasses(t *testing.T) {
	base := benchFixture()
	if v := CompareBench(base, base, 0.20); len(v) != 0 {
		t.Fatalf("identical reports flagged: %v", v)
	}
	// Improvements and small speedups are never violations.
	cur := benchFixture()
	cur.Quality[1].Score = 0.99
	cur.Perf[0].NsPerOp = 90_000_000
	if v := CompareBench(base, cur, 0.20); len(v) != 0 {
		t.Fatalf("improvement flagged: %v", v)
	}
	// A regression inside the allowance passes.
	cur = benchFixture()
	cur.Perf[0].NsPerOp = 115_000_000
	if v := CompareBench(base, cur, 0.20); len(v) != 0 {
		t.Fatalf("+15%% wall time flagged under a 20%% allowance: %v", v)
	}
}

func TestCompareBenchFlagsQualityDrop(t *testing.T) {
	base := benchFixture()
	cur := benchFixture()
	cur.Quality[1].Score = 0.94
	v := CompareBench(base, cur, 0.20)
	if len(v) != 1 || !strings.Contains(v[0], "f1 dropped") {
		t.Fatalf("F1 drop not flagged: %v", v)
	}
	// Any drop counts — there is no quality allowance.
	cur.Quality[1].Score = base.Quality[1].Score - 1e-6
	if v := CompareBench(base, cur, 0.20); len(v) != 1 {
		t.Fatalf("tiny F1 drop not flagged: %v", v)
	}
}

func TestCompareBenchFlagsServiceTrouble(t *testing.T) {
	base := benchFixture()
	cur := benchFixture()
	// Absent service leg (older runs, library-only runs): no gate.
	if v := CompareBench(base, cur, 0.20); len(v) != 0 {
		t.Fatalf("nil service row flagged: %v", v)
	}
	cur.Service = &ServiceRow{Requests: 9}
	if v := CompareBench(base, cur, 0.20); len(v) != 0 {
		t.Fatalf("clean service row flagged: %v", v)
	}
	// Any shed, error or degradation on the idle bench service is a
	// violation — overload protection must stay inert on clean input.
	cur.Service = &ServiceRow{Requests: 9, Shed: 1, Errors: 2, Degraded: 3}
	v := CompareBench(base, cur, 0.20)
	if len(v) != 3 {
		t.Fatalf("want 3 service violations, got %v", v)
	}
	for _, s := range v {
		if !strings.Contains(s, "service:") {
			t.Errorf("violation missing service prefix: %s", s)
		}
	}
}

func TestCompareBenchFlagsPerfRegression(t *testing.T) {
	base := benchFixture()
	cur := benchFixture()
	cur.Perf[0].NsPerOp = 130_000_000
	v := CompareBench(base, cur, 0.20)
	if len(v) != 1 || !strings.Contains(v[0], "wall time regressed") {
		t.Fatalf("+30%% wall time not flagged: %v", v)
	}
	// Negative maxRegress disables the perf gate entirely.
	if v := CompareBench(base, cur, -1); len(v) != 0 {
		t.Fatalf("perf gate ran while disabled: %v", v)
	}
}

func TestCompareBenchRejectsIncomparableRuns(t *testing.T) {
	base := benchFixture()
	cur := benchFixture()

	stale := base
	stale.Schema = "robustperiod-bench/v0"
	if v := CompareBench(stale, cur, 0.20); len(v) != 1 || !strings.Contains(v[0], "schema") {
		t.Fatalf("stale schema not rejected: %v", v)
	}

	cur.Seed = 2
	if v := CompareBench(base, cur, 0.20); len(v) == 0 || !strings.Contains(v[0], "not comparable") {
		t.Fatalf("seed mismatch not rejected: %v", v)
	}

	cur = benchFixture()
	cur.Quality = cur.Quality[:1]
	if v := CompareBench(base, cur, 0.20); len(v) != 1 || !strings.Contains(v[0], "missing") {
		t.Fatalf("missing quality row not flagged: %v", v)
	}
}

// TestBenchPerfSmoke runs the perf measurement on one short series to
// check the trace-backed stage breakdown is populated and sane.
func TestBenchPerfSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("perf smoke is seconds-long")
	}
	rows := BenchPerf(true, 1)
	if len(rows) != 3 {
		t.Fatalf("want 3 perf rows, got %d", len(rows))
	}
	for _, r := range rows {
		if r.NsPerOp <= 0 {
			t.Errorf("%s: NsPerOp %d", r.Name, r.NsPerOp)
		}
		if r.AllocsPerOp <= 0 {
			t.Errorf("%s: AllocsPerOp %d", r.Name, r.AllocsPerOp)
		}
		if len(r.StageNs) == 0 {
			t.Errorf("%s: no per-stage breakdown", r.Name)
		}
		var stageSum int64
		for _, ns := range r.StageNs {
			stageSum += ns
		}
		if stageSum <= 0 {
			t.Errorf("%s: stage breakdown sums to %d", r.Name, stageSum)
		}
	}
}

func TestFormatStageDiff(t *testing.T) {
	base := benchFixture()
	base.Perf[0].StageNs = map[string]int64{"periodogram": 80_000_000}
	cur := benchFixture()
	cur.Perf[0].NsPerOp = 10_000_000
	cur.Perf[0].StageNs = map[string]int64{"periodogram": 8_000_000}
	cur.PerfAsym = []PerfRow{{Name: "detect/N=8192", N: 8192, NsPerOp: 500_000_000}}

	out := FormatStageDiff(base, cur)
	for _, want := range []string{
		"| detect/N=1000 | total | 100.00 | 10.00 | 10.00x |",
		"| detect/N=1000 | periodogram | 80.00 | 8.00 | 10.00x |",
		"| detect/N=8192 | total | — | 500.00 | — |", // leg absent from baseline
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing row %q in:\n%s", want, out)
		}
	}
}
