package eval

import "testing"

func TestTableNoiseFPRShape(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	tb := TableNoiseFPR(3, 1)
	if len(tb.Rows) != 6 {
		t.Fatalf("%d rows", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		if len(row) != 7 {
			t.Fatalf("row width %d", len(row))
		}
	}
}
