package eval

import (
	"math"
	"math/rand"

	"robustperiod/internal/baselines"
	"robustperiod/internal/core"
	"robustperiod/internal/synthetic"
)

// TableImplAblations measures the implementation decisions documented
// in DESIGN.md §6 that have dedicated ablation switches: the harmonic
// filter (§6.5), the boundary-treatment fallback (§6.13), and the
// passband restriction (paper §3.4.1, via FullRobustBand). Columns:
//
//	square F1   — 3-period square waves, where harmonics of the
//	              fundamental are the failure mode
//	severe F1   — 3-period sine under σ²=1, η=0.1
//	slide fail  — fraction of window offsets on a clean period-80 sine
//	              that mis-detect (boundary-defect sensitivity)
func TableImplAblations(trials int, seed int64) Table {
	square := synthetic.SinCorpus(trials, 1000, synthetic.Square, []int{20, 50, 100}, 0.1, 0.01, seed)
	severe := synthetic.SinCorpus(trials, 1000, synthetic.Sine, []int{20, 50, 100}, 1, 0.1, seed+1)

	variants := []struct {
		name string
		opts core.Options
	}{
		{"default", core.Options{}},
		{"no-harmonic-filter", core.Options{NoHarmonicFilter: true}},
		{"circular-only", core.Options{CircularBoundary: true}},
		{"full-robust-band", core.Options{FullRobustBand: true}},
	}

	t := Table{
		Title:  "Implementation ablations (DESIGN.md §6): harmonic filter, boundary fallback, passband",
		Header: []string{"Variant", "squareF1±2%", "severeF1±2%", "slideFail"},
	}
	for _, v := range variants {
		d := baselines.RobustPeriod{Opts: v.opts}
		row := []string{v.name}
		row = append(row, f3(Run(d, square, 0.02, true).Metrics.F1))
		row = append(row, f3(Run(d, severe, 0.02, true).Metrics.F1))
		row = append(row, f3(slideFailRate(v.opts, seed+2)))
		t.Rows = append(t.Rows, row)
	}
	return t
}

// slideFailRate slides a 512-point window along a clean period-80
// sine and reports the fraction of offsets whose detection is not
// exactly one period in [77, 83].
func slideFailRate(opts core.Options, seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	long := make([]float64, 3000)
	for i := range long {
		long[i] = math.Sin(2*math.Pi*float64(i)/80) + 0.1*rng.NormFloat64()
	}
	fail, total := 0, 0
	for off := 0; off+512 <= len(long); off += 37 {
		total++
		res, err := core.Detect(long[off:off+512], opts)
		if err != nil {
			fail++
			continue
		}
		ok := len(res.Periods) == 1 && res.Periods[0] >= 77 && res.Periods[0] <= 83
		if !ok {
			fail++
		}
	}
	if total == 0 {
		return 0
	}
	return float64(fail) / float64(total)
}
