package obs

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// exactQuantile is the reference: the empirical quantile of the full
// sample (nearest-rank on the sorted data).
func exactQuantile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p * float64(len(sorted)-1))
	return sorted[idx]
}

// relErr compares est against the exact sample quantile, normalized by
// the sample spread so uniform and heavy-tailed inputs use one scale.
func relErr(est, exact, spread float64) float64 {
	if spread == 0 {
		return math.Abs(est - exact)
	}
	return math.Abs(est-exact) / spread
}

func TestQuantileAccuracy(t *testing.T) {
	const n = 50000
	dists := []struct {
		name string
		gen  func(r *rand.Rand) float64
		tol  float64 // tolerated error relative to the IQR-ish spread
	}{
		{"uniform", func(r *rand.Rand) float64 { return r.Float64() * 100 }, 0.02},
		{"normal", func(r *rand.Rand) float64 { return 50 + 10*r.NormFloat64() }, 0.02},
		{"exponential", func(r *rand.Rand) float64 { return r.ExpFloat64() * 5 }, 0.05},
		{"lognormal", func(r *rand.Rand) float64 { return math.Exp(r.NormFloat64()) }, 0.08},
	}
	for _, d := range dists {
		t.Run(d.name, func(t *testing.T) {
			r := rand.New(rand.NewSource(42))
			q := NewQuantiles()
			sample := make([]float64, n)
			for i := range sample {
				v := d.gen(r)
				sample[i] = v
				q.Observe(v)
			}
			if q.Count() != n {
				t.Fatalf("Count = %d, want %d", q.Count(), n)
			}
			sort.Float64s(sample)
			spread := exactQuantile(sample, 0.99) - exactQuantile(sample, 0.5)
			got := q.Values()
			for i, p := range QuantileTargets {
				exact := exactQuantile(sample, p)
				if e := relErr(got[i], exact, spread); e > d.tol {
					t.Errorf("p%v: est %v exact %v (rel err %.4f > %.4f)",
						p, got[i], exact, e, d.tol)
				}
			}
			// Monotone across the tracked quantiles.
			if !(got[0] <= got[1] && got[1] <= got[2]) {
				t.Errorf("quantile estimates not monotone: %v", got)
			}
		})
	}
}

func TestQuantileSmallSamples(t *testing.T) {
	q := NewQuantiles()
	if v := q.Values(); v != [3]float64{} {
		t.Fatalf("empty Values = %v", v)
	}
	q.Observe(7)
	v := q.Values()
	for i := range v {
		if v[i] != 7 {
			t.Fatalf("single observation: Values = %v, want all 7", v)
		}
	}
	q.Observe(1)
	q.Observe(3)
	got := q.Values()
	if got[0] < 1 || got[2] > 7 {
		t.Fatalf("3-sample Values out of range: %v", got)
	}
}

func TestQuantileNilSafe(t *testing.T) {
	var q *Quantiles
	q.Observe(1)
	if q.Values() != [3]float64{} || q.Count() != 0 {
		t.Fatal("nil Quantiles not inert")
	}
}

func TestQuantileObserveAllocFree(t *testing.T) {
	q := NewQuantiles()
	for i := 0; i < 100; i++ {
		q.Observe(float64(i))
	}
	allocs := testing.AllocsPerRun(1000, func() { q.Observe(3.5) })
	if allocs != 0 {
		t.Fatalf("Observe allocates %v per call, want 0", allocs)
	}
}

func BenchmarkQuantilesObserve(b *testing.B) {
	q := NewQuantiles()
	for i := 0; i < b.N; i++ {
		q.Observe(float64(i % 1000))
	}
}
