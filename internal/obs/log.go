package obs

import (
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// LogFormats lists the accepted NewLogger formats.
func LogFormats() []string { return []string{"text", "json"} }

// NewLogger builds a *slog.Logger writing to w in the given format
// ("text" or "json", case-insensitive). Unknown formats error so a
// typo in -log-format fails loudly at startup instead of silently
// switching encodings.
func NewLogger(format string, level slog.Level, w io.Writer) (*slog.Logger, error) {
	opts := &slog.HandlerOptions{Level: level}
	switch strings.ToLower(format) {
	case "", "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	default:
		return nil, fmt.Errorf("obs: unknown log format %q (want %s)",
			format, strings.Join(LogFormats(), "|"))
	}
}
