package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"strings"
	"sync"
	"testing"
)

func TestIDRoundTrip(t *testing.T) {
	g := NewIDGen()
	id := g.Next()
	if id.IsZero() {
		t.Fatal("generated ID is zero")
	}
	s := id.String()
	if len(s) != 32 {
		t.Fatalf("String() length = %d, want 32", len(s))
	}
	back, ok := ParseID(s)
	if !ok || back != id {
		t.Fatalf("ParseID(%q) = %v, %v; want original", s, back, ok)
	}
	if got := string(id.AppendHex(nil)); got != s {
		t.Fatalf("AppendHex = %q, want %q", got, s)
	}
}

func TestParseIDRejectsBadInput(t *testing.T) {
	for _, s := range []string{"", "abc", strings.Repeat("g", 32), strings.Repeat("a", 33)} {
		if _, ok := ParseID(s); ok {
			t.Errorf("ParseID(%q) accepted", s)
		}
	}
}

func TestIDGenUnique(t *testing.T) {
	g := NewIDGen()
	const n = 10000
	seen := make(map[ID]bool, n)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := make([]ID, 0, n/8)
			for i := 0; i < n/8; i++ {
				local = append(local, g.Next())
			}
			mu.Lock()
			for _, id := range local {
				if seen[id] {
					t.Errorf("duplicate ID %s", id)
				}
				seen[id] = true
			}
			mu.Unlock()
		}()
	}
	wg.Wait()
}

func TestIDGenNextAllocFree(t *testing.T) {
	g := NewIDGen()
	var sink ID
	allocs := testing.AllocsPerRun(1000, func() {
		sink = g.Next()
	})
	if allocs != 0 {
		t.Fatalf("IDGen.Next allocates %v per call, want 0", allocs)
	}
	_ = sink
}

func TestScopeLogAttachesRequestID(t *testing.T) {
	var buf bytes.Buffer
	lg, err := NewLogger("json", slog.LevelInfo, &buf)
	if err != nil {
		t.Fatal(err)
	}
	s := &Scope{ID: NewIDGen().Next(), Logger: lg}
	ctx := NewContext(context.Background(), s)
	if got := FromContext(ctx); got != s {
		t.Fatal("FromContext did not return the attached scope")
	}
	Warn(ctx, "degraded", slog.String("stage", "modwt"))
	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("log line is not JSON: %v (%q)", err, buf.String())
	}
	if rec["request_id"] != s.ID.String() {
		t.Fatalf("request_id = %v, want %s", rec["request_id"], s.ID)
	}
	if rec["stage"] != "modwt" || rec["msg"] != "degraded" {
		t.Fatalf("unexpected record %v", rec)
	}
}

func TestScopeNilSafe(t *testing.T) {
	var s *Scope
	s.Log(context.Background(), slog.LevelInfo, "ignored")
	s.AddFault("ignored")
	// No scope in context: must not panic either.
	Warn(context.Background(), "ignored")
	Info(context.Background(), "ignored")
}

func TestScopeAddFault(t *testing.T) {
	var buf bytes.Buffer
	lg, _ := NewLogger("text", slog.LevelWarn, &buf)
	s := &Scope{ID: NewIDGen().Next(), Logger: lg}
	s.AddFault("serve/worker")
	s.AddFault("spectrum/solver")
	if len(s.FaultPoints) != 2 || s.FaultPoints[0] != "serve/worker" {
		t.Fatalf("FaultPoints = %v", s.FaultPoints)
	}
	if !strings.Contains(buf.String(), "fault injected") {
		t.Fatalf("fault not logged: %q", buf.String())
	}
}

func TestNewLoggerRejectsUnknownFormat(t *testing.T) {
	if _, err := NewLogger("yaml", slog.LevelInfo, &bytes.Buffer{}); err == nil {
		t.Fatal("unknown format accepted")
	}
	for _, f := range []string{"", "text", "json", "JSON"} {
		if _, err := NewLogger(f, slog.LevelInfo, &bytes.Buffer{}); err != nil {
			t.Fatalf("NewLogger(%q): %v", f, err)
		}
	}
}

func TestBuildInfo(t *testing.T) {
	b := GetBuildInfo()
	if b.GoVersion == "" {
		t.Fatal("GoVersion empty")
	}
	if !strings.Contains(b.String(), b.GoVersion) {
		t.Fatalf("String() %q missing go version", b.String())
	}
	var buf bytes.Buffer
	p := NewPromWriter(&buf)
	b.WriteProm(p)
	if err := p.Err(); err != nil {
		t.Fatal(err)
	}
	if err := CheckExposition(buf.Bytes()); err != nil {
		t.Fatalf("build info exposition invalid: %v\n%s", err, buf.String())
	}
	fams, _ := ParseExposition(buf.Bytes())
	f := FindFamily(fams, "rp_build_info")
	if f == nil || len(f.Samples) != 1 || f.Samples[0].Value != 1 {
		t.Fatalf("rp_build_info malformed: %+v", f)
	}
	if f.Samples[0].Label("go_version") != b.GoVersion {
		t.Fatalf("go_version label = %q", f.Samples[0].Label("go_version"))
	}
}

func TestRuntimeSampler(t *testing.T) {
	var buf bytes.Buffer
	p := NewPromWriter(&buf)
	NewRuntimeSampler().WriteProm(p)
	if err := p.Err(); err != nil {
		t.Fatal(err)
	}
	if err := CheckExposition(buf.Bytes()); err != nil {
		t.Fatalf("runtime exposition invalid: %v\n%s", err, buf.String())
	}
	fams, _ := ParseExposition(buf.Bytes())
	gr := FindFamily(fams, "rp_go_goroutines")
	if gr == nil || len(gr.Samples) != 1 || gr.Samples[0].Value < 1 {
		t.Fatalf("rp_go_goroutines missing or implausible: %+v", gr)
	}
	heap := FindFamily(fams, "rp_go_heap_objects_bytes")
	if heap == nil || heap.Samples[0].Value <= 0 {
		t.Fatalf("rp_go_heap_objects_bytes missing or zero: %+v", heap)
	}
	pause := FindFamily(fams, "rp_go_gc_pause_seconds")
	if pause == nil || len(pause.Samples) != 3 {
		t.Fatalf("rp_go_gc_pause_seconds should have 3 quantile samples: %+v", pause)
	}
	for _, s := range pause.Samples {
		if s.Label("q") == "" {
			t.Fatalf("quantile sample missing q label: %+v", s)
		}
	}
}
