package obs

import (
	"bytes"
	"strings"
	"testing"
)

// TestOpenMetricsWriterRoundTrip drives the writer in OpenMetrics
// mode — counter family on the base name, bucket exemplars, terminal
// EOF — and feeds the output back through the OM conformance checker.
func TestOpenMetricsWriterRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	p := NewOpenMetricsWriter(&buf)
	if !p.OpenMetrics() {
		t.Fatal("mode flag lost")
	}
	p.Family("rp_requests_total", "Requests by endpoint.", "counter")
	p.Sample("rp_requests_total", []Label{{"endpoint", "detect"}}, 42)
	p.Family("rp_latency_seconds", "Latency.", "histogram")
	p.HistogramExemplars("rp_latency_seconds", []Label{{"endpoint", "detect"}},
		[]float64{0.001, 0.01, 0.1}, []uint64{5, 3, 1, 2}, 0.345,
		[]Exemplar{
			{},
			{Labels: []Label{{"trace_id", "4bf92f3577b34da6a3ce929d0e0e4736"}}, Value: 0.004, Ts: 1712000000.123},
			{},
			{Labels: []Label{{"trace_id", "00f067aa0ba902b7aabbccddeeff0011"}}, Value: 2.5},
		})
	p.EOF()
	if p.Err() != nil {
		t.Fatal(p.Err())
	}
	data := buf.Bytes()

	if !strings.Contains(buf.String(), "# TYPE rp_requests counter") {
		t.Fatalf("counter TYPE keeps _total suffix in OM mode:\n%s", data)
	}
	if !strings.HasSuffix(strings.TrimRight(buf.String(), "\n"), "# EOF") {
		t.Fatalf("no terminal # EOF:\n%s", data)
	}
	if err := CheckOpenMetrics(data); err != nil {
		t.Fatalf("OM writer output fails OM conformance: %v\n%s", err, data)
	}
	// The same bytes stay acceptable to the plain checker.
	if err := CheckExposition(data); err != nil {
		t.Fatalf("OM writer output fails base conformance: %v\n%s", err, data)
	}

	fams, err := ParseExposition(data)
	if err != nil {
		t.Fatal(err)
	}
	c := FindFamily(fams, "rp_requests")
	if c == nil || c.Type != "counter" || len(c.Samples) != 1 || c.Samples[0].Name != "rp_requests_total" {
		t.Fatalf("OM counter family: %+v", c)
	}
	h := FindFamily(fams, "rp_latency_seconds")
	if h == nil || len(h.Samples) != 6 {
		t.Fatalf("histogram family: %+v", h)
	}
	ex := h.Samples[1].Exemplar
	if ex == nil || ex.Labels["trace_id"] != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Fatalf("bucket 2 exemplar lost: %+v", h.Samples[1])
	}
	if ex.Value != 0.004 || !ex.HasTs || ex.Ts != 1712000000.123 {
		t.Fatalf("exemplar value/ts: %+v", ex)
	}
	if h.Samples[0].Exemplar != nil || h.Samples[2].Exemplar != nil {
		t.Fatal("zero exemplars emitted")
	}
	inf := h.Samples[3].Exemplar
	if inf == nil || inf.HasTs || inf.Value != 2.5 {
		t.Fatalf("+Inf bucket exemplar: %+v", inf)
	}
}

// TestExemplarsSuppressedIn004Mode pins that one metrics pipeline can
// serve both formats: in 0.0.4 mode exemplars vanish and the counter
// TYPE keeps its full name.
func TestExemplarsSuppressedIn004Mode(t *testing.T) {
	var buf bytes.Buffer
	p := NewPromWriter(&buf)
	p.Family("rp_requests_total", "Requests.", "counter")
	p.HistogramExemplars("rp_h", nil, []float64{1}, []uint64{1, 0}, 0.5,
		[]Exemplar{{Labels: []Label{{"trace_id", "abc"}}, Value: 0.5}})
	p.EOF()
	out := buf.String()
	if strings.Contains(out, "trace_id") || strings.Contains(out, "# EOF") {
		t.Fatalf("OM constructs leaked into 0.0.4 output:\n%s", out)
	}
	if !strings.Contains(out, "# TYPE rp_requests_total counter") {
		t.Fatalf("0.0.4 counter TYPE rewritten:\n%s", out)
	}
}

// TestOpenMetricsConformanceRejections enumerates the OM-specific
// reject cases.
func TestOpenMetricsConformanceRejections(t *testing.T) {
	histo := func(bucketLine string) string {
		return "# TYPE rp_h histogram\n" + bucketLine + "\n" +
			"rp_h_bucket{le=\"+Inf\"} 5\nrp_h_sum 3\nrp_h_count 5\n# EOF\n"
	}
	longLabel := strings.Repeat("x", 129)
	cases := []struct {
		name string
		src  string
	}{
		{"missing EOF", "# TYPE rp_x counter\nrp_x_total 1\n"},
		{"content after EOF", "# TYPE rp_x counter\nrp_x_total 1\n# EOF\nrp_y 2\n"},
		{"malformed EOF", "# EOFF\n"},
		{"exemplar on gauge", "# TYPE rp_g gauge\nrp_g 1 # {trace_id=\"a\"} 1\n# EOF\n"},
		{"exemplar on _sum", "# TYPE rp_h histogram\nrp_h_bucket{le=\"+Inf\"} 1\n" +
			"rp_h_sum 1 # {trace_id=\"a\"} 1\nrp_h_count 1\n# EOF\n"},
		{"exemplar above bucket bound", histo(`rp_h_bucket{le="1"} 2 # {trace_id="a"} 4.0`)},
		{"overlong exemplar labelset", histo(`rp_h_bucket{le="1"} 2 # {trace_id="` + longLabel + `"} 0.5`)},
		{"bad exemplar label name", histo(`rp_h_bucket{le="1"} 2 # {1bad="a"} 0.5`)},
		{"exemplar without labelset", histo(`rp_h_bucket{le="1"} 2 # 0.5`)},
		{"bad exemplar timestamp", histo(`rp_h_bucket{le="1"} 2 # {trace_id="a"} 0.5 NaN`)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := CheckOpenMetrics([]byte(tc.src)); err == nil {
				t.Fatalf("accepted invalid OM exposition:\n%s", tc.src)
			}
		})
	}

	// Valid exemplar within its bucket passes.
	ok := histo(`rp_h_bucket{le="1"} 2 # {trace_id="a"} 0.5 1712000000.5`)
	if err := CheckOpenMetrics([]byte(ok)); err != nil {
		t.Fatalf("valid exemplar rejected: %v", err)
	}
}

// TestNegotiateContentType pins the Accept-header negotiation.
func TestNegotiateContentType(t *testing.T) {
	cases := []struct {
		accept string
		want   string
	}{
		{"", PromContentType},
		{"text/plain", PromContentType},
		{"application/openmetrics-text; version=1.0.0", OpenMetricsContentType},
		{"application/openmetrics-text;version=1.0.0;q=0.75,text/plain;version=0.0.4;q=0.5", OpenMetricsContentType},
	}
	for _, tc := range cases {
		if got := NegotiateContentType(tc.accept); got != tc.want {
			t.Errorf("NegotiateContentType(%q) = %q, want %q", tc.accept, got, tc.want)
		}
	}
}
