// Package obs is the unified observability layer of the serving
// stack: per-request correlation IDs propagated through context,
// structured logging on log/slog, streaming latency quantiles (the P²
// algorithm), a Prometheus text-exposition writer plus a conformance
// checker for it, runtime gauges sourced from runtime/metrics, build
// information, and a post-mortem flight recorder retaining the last K
// request records with error/degraded requests pinned preferentially.
//
// Like the rest of the repository the package is pure standard
// library. The hot-path primitives (ID generation, flight-recorder
// commit) are allocation-free so they can ride on the cached-result
// path of the service without showing up in allocation profiles; the
// serve tests pin that with testing.AllocsPerRun.
package obs

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"log/slog"
	"sync"
	"sync/atomic"
	"time"
)

// ID is a 16-byte request correlation identifier, rendered as 32
// lowercase hex characters (e.g. in the X-Request-ID header).
type ID [16]byte

// IsZero reports whether the ID is unset.
func (id ID) IsZero() bool { return id == ID{} }

// String renders the ID as 32 hex characters. It allocates; hot paths
// that only need the bytes should use AppendHex.
func (id ID) String() string {
	var b [32]byte
	hex.Encode(b[:], id[:])
	return string(b[:])
}

// AppendHex appends the 32-character hex form to dst and returns the
// extended slice, allocation-free when dst has capacity.
func (id ID) AppendHex(dst []byte) []byte {
	var b [32]byte
	hex.Encode(b[:], id[:])
	return append(dst, b[:]...)
}

// ParseID decodes the 32-hex-character wire form of an ID.
func ParseID(s string) (ID, bool) {
	var id ID
	if len(s) != 32 {
		return ID{}, false
	}
	if _, err := hex.Decode(id[:], []byte(s)); err != nil {
		return ID{}, false
	}
	return id, true
}

// IDGen mints process-unique request IDs: an 8-byte random per-process
// prefix plus a bijective mix of an atomic counter, so Next is
// lock-free, allocation-free, and never repeats within a process.
type IDGen struct {
	prefix [8]byte
	ctr    atomic.Uint64
}

// NewIDGen seeds a generator from crypto/rand (falling back to the
// clock if the system entropy source is unreadable).
func NewIDGen() *IDGen {
	g := &IDGen{}
	if _, err := rand.Read(g.prefix[:]); err != nil {
		binary.BigEndian.PutUint64(g.prefix[:], uint64(time.Now().UnixNano()))
	}
	return g
}

// splitmix64 is a bijection on uint64 (Steele et al.), spreading the
// sequential counter across the ID space.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Next returns a fresh ID. Safe for concurrent use; allocation-free.
func (g *IDGen) Next() ID {
	var id ID
	copy(id[:8], g.prefix[:])
	binary.BigEndian.PutUint64(id[8:], splitmix64(g.ctr.Add(1)))
	return id
}

// Scope carries one request's observability state: the correlation ID
// and the logger every pipeline event should correlate against, plus
// the request annotations the serving layer accumulates for the
// flight recorder. A Scope belongs to a single request; most fields
// are written by the request's own handler goroutine (worker handoffs
// are ordered through the result channel), so they carry no lock.
// FaultPoints is the exception — a batch fans one scope out to many
// concurrent workers, any of which may hit a fault — so AddFault is
// internally synchronized.
type Scope struct {
	ID     ID
	Logger *slog.Logger // nil disables logging

	// Request annotations for the flight-recorder record, filled in by
	// the serving layer as the request progresses.
	Endpoint      string
	Tenant        string // cardinality-capped tenant label (X-API-Key)
	Start         time.Time
	SeriesLen     int    // points of the series (detect)
	BatchSize     int    // series count (batch)
	OptionsDigest uint64 // FNV-1a of the canonical options encoding
	Cached        bool
	ErrorCode     string
	DegradedCount int // degradation annotations on the result(s)
	ItemErrors    int // failed items inside a batch
	Degraded      any // e.g. []core.Degradation; set only when non-empty
	Trace         any // e.g. *trace.Summary of the detection
	Spans         any // e.g. *trace.Recording when the request is sampled

	faultMu     sync.Mutex
	FaultPoints []string
}

// AddFault notes a fired fault point on the record and logs it with
// the request ID. Safe for concurrent use (batch workers share one
// scope).
func (s *Scope) AddFault(point string) {
	if s == nil {
		return
	}
	s.faultMu.Lock()
	s.FaultPoints = append(s.FaultPoints, point)
	s.faultMu.Unlock()
	s.Log(context.Background(), slog.LevelWarn, "fault injected",
		slog.String("point", point))
}

// Faults returns a snapshot of the fired fault points.
func (s *Scope) Faults() []string {
	if s == nil {
		return nil
	}
	s.faultMu.Lock()
	defer s.faultMu.Unlock()
	return append([]string(nil), s.FaultPoints...)
}

// Log emits one structured record on the scope's logger with the
// request_id attribute attached. Nil-safe: a nil scope or nil logger
// makes it a no-op.
func (s *Scope) Log(ctx context.Context, level slog.Level, msg string, attrs ...slog.Attr) {
	if s == nil || s.Logger == nil {
		return
	}
	if !s.Logger.Enabled(ctx, level) {
		return
	}
	attrs = append(attrs, slog.String("request_id", s.ID.String()))
	s.Logger.LogAttrs(ctx, level, msg, attrs...)
}

// ctxKey is the context key type for the request scope.
type ctxKey struct{}

// NewContext attaches a request scope to ctx; the pipeline retrieves
// it with FromContext to correlate degradation and fault events.
func NewContext(ctx context.Context, s *Scope) context.Context {
	return context.WithValue(ctx, ctxKey{}, s)
}

// FromContext returns the request scope attached to ctx, or nil.
func FromContext(ctx context.Context) *Scope {
	s, _ := ctx.Value(ctxKey{}).(*Scope)
	return s
}

// Warn logs a warning against the request scope in ctx, if any — the
// one-liner the pipeline uses for degradation events. No scope, no
// work.
func Warn(ctx context.Context, msg string, attrs ...slog.Attr) {
	FromContext(ctx).Log(ctx, slog.LevelWarn, msg, attrs...)
}

// Info logs an informational record against the request scope in ctx.
func Info(ctx context.Context, msg string, attrs ...slog.Attr) {
	FromContext(ctx).Log(ctx, slog.LevelInfo, msg, attrs...)
}
